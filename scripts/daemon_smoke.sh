#!/bin/sh
# Daemon smoke: start straightd on a scratch socket + cache, drive the
# load generator twice with the same request mix, and require
#   - the cold run to complete with zero request errors,
#   - the warm (identical) run to be served >= 90% from the memo cache,
#   - a clean shutdown (daemon exit 0, socket unlinked).
# The straightd-bench/1 reports land in _daemon_smoke/ for CI to
# archive.  Run via `make daemon-smoke`.
set -eu

DIR=_daemon_smoke
SOCK=$DIR/straightd.sock
CACHE=$DIR/cache
MIX="simulate:fib,simulate:iota,simulate:sort:straight-re,compile:dhrystone:straight-re,status"
CLIENTS=8
REQUESTS=10

rm -rf "$DIR"
mkdir -p "$DIR"

# build once up front: the daemon runs in the background, so later dune
# invocations would contend for the build lock
dune build bin/straightd.exe bin/straightd_client.exe
STRAIGHTD=_build/default/bin/straightd.exe
CLIENT=_build/default/bin/straightd_client.exe

"$STRAIGHTD" -socket "$SOCK" -j 4 -cache-dir "$CACHE" \
  >"$DIR/daemon.log" 2>&1 &
DPID=$!
trap 'kill "$DPID" 2>/dev/null || true' EXIT

# wait for the socket to come up
i=0
until [ -S "$SOCK" ]; do
  i=$((i + 1))
  [ "$i" -le 100 ] || { echo "daemon-smoke: daemon never came up"; exit 1; }
  kill -0 "$DPID" 2>/dev/null || {
    echo "daemon-smoke: daemon died at startup"
    cat "$DIR/daemon.log"
    exit 1
  }
  sleep 0.1
done

echo "daemon-smoke: cold run ($CLIENTS clients x $REQUESTS requests)"
"$CLIENT" -socket "$SOCK" -bench -clients "$CLIENTS" -requests "$REQUESTS" \
  -mix "$MIX" -out "$DIR/bench-cold.json"

echo "daemon-smoke: warm run (identical mix)"
"$CLIENT" -socket "$SOCK" -bench -clients "$CLIENTS" -requests "$REQUESTS" \
  -mix "$MIX" -out "$DIR/bench-warm.json"

# the warm run must be served (almost) entirely from the memo cache
awk -F': ' '/"cache_hit_rate"/ {
  gsub(/[,"]/, "", $2)
  rate = $2 + 0
  printf "daemon-smoke: warm cache hit rate %.3f\n", rate
  exit !(rate >= 0.90)
}' "$DIR/bench-warm.json" || {
  echo "daemon-smoke: warm hit rate below 0.90"
  exit 1
}

"$CLIENT" -socket "$SOCK" -op status -quiet >"$DIR/status.json"

echo "daemon-smoke: shutting down"
"$CLIENT" -socket "$SOCK" -op shutdown -quiet >/dev/null

i=0
while kill -0 "$DPID" 2>/dev/null; do
  i=$((i + 1))
  [ "$i" -le 100 ] || { echo "daemon-smoke: daemon ignored shutdown"; exit 1; }
  sleep 0.1
done
wait "$DPID" 2>/dev/null || {
  echo "daemon-smoke: daemon exited non-zero"
  cat "$DIR/daemon.log"
  exit 1
}
trap - EXIT

[ ! -e "$SOCK" ] || { echo "daemon-smoke: socket not unlinked"; exit 1; }

echo "daemon-smoke: clean shutdown, warm mix served from cache"
