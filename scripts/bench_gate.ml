(* CI perf-regression gate: compare a freshly measured bench JSON
   (bench/main.exe --json) against the checked-in baseline.

     bench_gate [BASELINE.json] [FRESH.json]

   Defaults: BENCH_baseline.json and bench.json in the current
   directory.  The gate fails (exit 1) when, for any model x workload
   entry of the baseline:

   - the entry is missing from the fresh measurement,
   - host throughput regressed by more than 10% (the engine got slower
     to run) — compared on the best-of-N repetition ("khz_best", the
     noise-robust statistic; "khz_median" is the fallback for files
     that predate it), or
   - IPC drifted by more than +/-0.5% (simulated timing changed: the
     engine is supposed to be cycle-exact across optimization work, so
     any drift is a correctness signal, not noise — reference cycle
     counts are also pinned exactly by test/test_stats.ml).

   Throughput improvements and new entries are reported but never
   fail. *)

module Json = Ooo_common.Stats.Json

let thr_tolerance = 0.10  (* fractional host-throughput regression *)
let ipc_tolerance = 0.005 (* fractional IPC drift, either direction *)

let die fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt

let load path =
  if not (Sys.file_exists path) then die "bench_gate: %s not found" path;
  let text = In_channel.with_open_text path In_channel.input_all in
  match Json.of_string text with
  | j -> j
  | exception Json.Parse_error m -> die "bench_gate: %s: %s" path m

let entries path j =
  match Json.get_list (Json.member "entries" j) with
  | Some es -> es
  | None -> die "bench_gate: %s has no \"entries\" list" path

let entry_key e =
  match
    ( Json.get_string (Json.member "model" e),
      Json.get_string (Json.member "target" e),
      Json.get_string (Json.member "workload" e) )
  with
  | Some m, Some t, Some w -> Printf.sprintf "%s|%s|%s" m t w
  | _ -> die "bench_gate: entry missing model/target/workload"

let need_float name e =
  match Json.get_float (Json.member name e) with
  | Some f -> f
  | None -> die "bench_gate: entry %s missing %s" (entry_key e) name

let khz e =
  match Json.get_float (Json.member "khz_best" e) with
  | Some f -> f
  | None -> need_float "khz_median" e

(* On GitHub Actions, mirror the comparison table onto the run's summary
   page ($GITHUB_STEP_SUMMARY is a file path; appending markdown to it
   renders on the workflow run).  A no-op everywhere else. *)
let write_step_summary ~rows ~failures =
  match Sys.getenv_opt "GITHUB_STEP_SUMMARY" with
  | None | Some "" -> ()
  | Some path ->
    (* Entry keys are "model|target|workload"; a raw '|' splits a
       markdown table cell even inside a code span, so escape it. *)
    let escape_pipes s =
      String.concat "\\|" (String.split_on_char '|' s)
    in
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
    output_string oc "### Perf gate\n\n";
    output_string oc
      "| entry | base kc/s | fresh kc/s | speed | IPC drift |\n\
       |---|---:|---:|---:|---:|\n";
    List.iter
      (fun (key, b_khz, f_khz, speed, drift) ->
         Printf.fprintf oc "| `%s` | %.1f | %.1f | %.2fx | %+.3f%% |\n"
           (escape_pipes key) b_khz f_khz speed (100.0 *. drift))
      (List.rev rows);
    if failures > 0 then
      Printf.fprintf oc "\n**FAIL** — %d regression(s); see the job log.\n"
        failures
    else output_string oc "\nOK — no regressions.\n";
    close_out oc

let () =
  let baseline_path = ref "BENCH_baseline.json" in
  let fresh_path = ref "bench.json" in
  (match Array.to_list Sys.argv |> List.tl with
   | [] -> ()
   | [ b ] -> baseline_path := b
   | [ b; f ] -> baseline_path := b; fresh_path := f
   | _ -> die "usage: bench_gate [BASELINE.json] [FRESH.json]");
  let baseline = load !baseline_path and fresh = load !fresh_path in
  let base_entries = entries !baseline_path baseline in
  let fresh_entries = entries !fresh_path fresh in
  let fresh_tbl = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace fresh_tbl (entry_key e) e) fresh_entries;
  let failures = ref 0 in
  let rows = ref [] in
  let fail fmt =
    Printf.ksprintf (fun m -> incr failures; Printf.printf "FAIL  %s\n" m) fmt
  in
  Printf.printf "bench_gate: %s (baseline) vs %s (fresh)\n" !baseline_path
    !fresh_path;
  Printf.printf "%-42s %10s %10s %8s %9s\n" "entry" "base kc/s" "fresh kc/s"
    "speed" "ipc drift";
  List.iter
    (fun be ->
       let key = entry_key be in
       match Hashtbl.find_opt fresh_tbl key with
       | None -> fail "%s: missing from fresh measurement" key
       | Some fe ->
         let b_khz = khz be in
         let f_khz = khz fe in
         let b_ipc = need_float "ipc" be in
         let f_ipc = need_float "ipc" fe in
         let speed = f_khz /. b_khz in
         let drift = (f_ipc -. b_ipc) /. b_ipc in
         Printf.printf "%-42s %10.1f %10.1f %7.2fx %8.3f%%\n" key b_khz f_khz
           speed (100.0 *. drift);
         rows := (key, b_khz, f_khz, speed, drift) :: !rows;
         if speed < 1.0 -. thr_tolerance then
           fail "%s: host throughput regressed %.1f%% (%.1f -> %.1f kc/s)"
             key (100.0 *. (1.0 -. speed)) b_khz f_khz;
         if Float.abs drift > ipc_tolerance then
           fail "%s: IPC drifted %.3f%% (%.4f -> %.4f): simulated timing \
                 changed" key (100.0 *. drift) b_ipc f_ipc)
    base_entries;
  List.iter
    (fun fe ->
       let key = entry_key fe in
       if not (List.exists (fun be -> entry_key be = key) base_entries) then
         Printf.printf "NOTE  %s: new entry (not in baseline)\n" key)
    fresh_entries;
  write_step_summary ~rows:!rows ~failures:!failures;
  if !failures > 0 then begin
    Printf.printf "bench_gate: %d failure(s)\n" !failures;
    exit 1
  end;
  print_endline "bench_gate: OK"
