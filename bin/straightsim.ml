(* Cycle-level simulation driver: compile a MiniC file (or a built-in
   workload) for a chosen Table-I model and report timing statistics.

     straightsim [-model ss-2way|straight-2way|ss-4way|straight-4way]
                 [-target straight|straight-raw|riscv] [-tage] [-ideal]
                 [-maxdist N] [-rob N] [-sched N] [-no-check]
                 [-inject all|flip,tag,spurious,stretch] [-seed N]
                 [-inject-period N] [-dump-on-error FILE]
                 [-stats-json FILE] [-checkpoint FILE]
                 [-checkpoint-every N] [-stop-at N] [-restore FILE]
                 [-fast-forward N] [-warm]
                 [-sample interval=1M,warmup=100k[,every=K]] [-j N]
                 [-store DIR] [-sample-json FILE] [-sample-check]
                 [-sample-floor F]
                 [-workload NAME] [FILE]

   Fast-forward: [-fast-forward N] skips the first N retired
   instructions at functional-simulation speed and runs the detailed
   model over the rest; with [-warm] the skipped prefix functionally
   warms the caches, branch predictor and RAS before the handoff (cold
   otherwise).

   Sampling: [-sample interval=1M,warmup=100k] slices the run into
   fixed-length intervals, materializes each as a warmed checkpoint
   under the content-addressed store ([-store], default _sweep), fans
   them out over [-j] worker processes, and recombines the per-interval
   CPI stacks into a whole-run estimate with 95% error bars.
   [-sample-json] writes the straight-sample/1 report; [-sample-check]
   additionally simulates the run exactly and fails (exit 1) unless the
   estimate lands within max(ci95, [-sample-floor] x exact CPI) of the
   exact CPI.

   Checkpointing: [-checkpoint FILE] names the snapshot file;
   [-checkpoint-every N] saves it every N cycles; [-stop-at N] saves it
   at cycle N and exits without finishing (a simulated kill, for
   recovery drills); [-restore FILE] resumes a run from a snapshot
   alone — the file embeds the workload source and model, so no other
   flags are needed.  A watchdog deadlock with [-dump-on-error FILE]
   additionally writes a restorable snapshot to FILE.snap.

   Every failure is reported as a structured diagnostic and mapped to a
   distinct exit code per failure class (see Diag.exit_code): 2 usage or
   configuration, 3 compile-family, 4 execution or memory faults, 5 fuel
   exhaustion, 6 simulator deadlock, 7 checker divergence, 9 snapshot
   rejected.  With [-dump-on-error FILE] the diagnostic's
   machine-readable context (for a deadlock: the full pipeline snapshot)
   is also written to FILE ("-" for stderr). *)

module Params = Ooo_common.Params
module Inject = Ooo_common.Inject
module Exp = Straight_core.Experiment
module Diagnostics = Straight_core.Diagnostics
module Engine = Ooo_common.Engine
module Stats = Ooo_common.Stats
module Sim = Snapshot.Sim

let workloads : (string * (unit -> Workloads.t)) list =
  [ ("dhrystone", fun () -> Workloads.dhrystone ~iterations:100 ());
    ("coremark", fun () -> Workloads.coremark ~iterations:2 ());
    ("fib", fun () -> Workloads.fib ());
    ("iota", fun () -> Workloads.iota ());
    ("sort", fun () -> Workloads.sort ());
    ("quicksort", fun () -> Workloads.quicksort ());
    ("pointer-chase", fun () -> Workloads.pointer_chase ());
    ("stream", fun () -> Workloads.stream ());
    ("stream-short", fun () -> Workloads.stream ~iterations:1 ());
    ("wasm-sieve", fun () -> Workloads.wasm_sieve ());
    ("wasm-crc32", fun () -> Workloads.wasm_crc32 ());
    ("wasm-expr", fun () -> Workloads.wasm_expr ()) ]

let parse_inject_kinds (s : string) : Inject.kind list =
  if s = "all" then
    [ Inject.Flip_prediction; Inject.Corrupt_cache_tag;
      Inject.Spurious_recovery; Inject.Stretch_fu_latency ]
  else
    String.split_on_char ',' s
    |> List.map (fun k ->
        match String.trim k with
        | "flip" -> Inject.Flip_prediction
        | "tag" -> Inject.Corrupt_cache_tag
        | "spurious" -> Inject.Spurious_recovery
        | "stretch" -> Inject.Stretch_fu_latency
        | other ->
          Printf.eprintf
            "unknown fault kind %s (valid: flip, tag, spurious, stretch, \
             all)\n"
            other;
          exit 2)

let () =
  let model_name = ref "straight-4way" in
  let target_name = ref "straight" in
  let tage = ref false in
  let ideal = ref false in
  let maxdist = ref Params.straight_max_dist in
  let rob = ref 0 in
  let sched = ref (-1) in
  let no_check = ref false in
  let inject = ref "" in
  let seed = ref 1 in
  let inject_period = ref 1000 in
  let dump_on_error = ref "" in
  let stats_json = ref "" in
  let checkpoint = ref "" in
  let checkpoint_every = ref 0 in
  let stop_at = ref 0 in
  let restore = ref "" in
  let fast_forward = ref 0 in
  let warm = ref false in
  let sample = ref "" in
  let jobs = ref 1 in
  let store = ref "_sweep" in
  let sample_json = ref "" in
  let sample_check = ref false in
  let sample_floor = ref 0.02 in
  let workload = ref "" in
  let file = ref "" in
  let spec =
    [ ("-model", Arg.Set_string model_name, "ss-2way|straight-2way|ss-4way|straight-4way");
      ("-target", Arg.Set_string target_name, "straight|straight-raw|riscv");
      ("-tage", Arg.Set tage, "use the TAGE branch predictor");
      ("-ideal", Arg.Set ideal, "idealize misprediction recovery (fig 13)");
      ("-maxdist", Arg.Set_int maxdist, "maximum source distance (STRAIGHT)");
      ("-rob", Arg.Set_int rob, "override ROB entries");
      ("-sched", Arg.Set_int sched, "override scheduler entries");
      ("-no-check", Arg.Set no_check, "disable the lockstep golden-model checker");
      ("-inject", Arg.Set_string inject,
       "arm fault injection: all or a comma list of flip,tag,spurious,stretch");
      ("-seed", Arg.Set_int seed, "fault-injection seed (default 1)");
      ("-inject-period", Arg.Set_int inject_period,
       "mean opportunities between faults (default 1000)");
      ("-dump-on-error", Arg.Set_string dump_on_error,
       "on failure, write the diagnostic context to FILE (- for stderr)");
      ("-stats-json", Arg.Set_string stats_json,
       "write run statistics (cycles, IPC, CPI stack, mix) as JSON to FILE \
        (- for stdout)");
      ("-checkpoint", Arg.Set_string checkpoint,
       "snapshot file for -checkpoint-every / -stop-at");
      ("-checkpoint-every", Arg.Set_int checkpoint_every,
       "save a checkpoint every N cycles (requires -checkpoint)");
      ("-stop-at", Arg.Set_int stop_at,
       "checkpoint at cycle N and exit without finishing (simulated kill; \
        requires -checkpoint)");
      ("-restore", Arg.Set_string restore,
       "resume from a snapshot file (self-contained: no other flags needed)");
      ("-fast-forward", Arg.Set_int fast_forward,
       "skip the first N retired instructions at functional speed");
      ("-warm", Arg.Set warm,
       "functionally warm caches/predictors over the fast-forwarded prefix");
      ("-sample", Arg.Set_string sample,
       "sampled simulation, e.g. interval=1M,warmup=100k,every=4");
      ("-j", Arg.Set_int jobs, "sampling worker processes (default 1)");
      ("-store", Arg.Set_string store,
       "content-addressed checkpoint store directory (default _sweep)");
      ("-sample-json", Arg.Set_string sample_json,
       "write the sampled-CPI report (straight-sample/1) to FILE (- for \
        stdout)");
      ("-sample-check", Arg.Set sample_check,
       "also simulate exactly and fail unless the estimate is within its \
        error bars");
      ("-sample-floor", Arg.Set_float sample_floor,
       "relative tolerance floor for -sample-check (default 0.02)");
      ("-workload", Arg.Set_string workload, "built-in workload name") ]
  in
  Arg.parse spec (fun f -> file := f) "straightsim [options] [FILE]";
  let model =
    match !model_name with
    | "ss-2way" -> Params.ss_2way
    | "straight-2way" -> Params.straight_2way
    | "ss-4way" -> Params.ss_4way
    | "straight-4way" -> Params.straight_4way
    | m -> Printf.eprintf "unknown model %s\n" m; exit 2
  in
  let model = if !tage then Params.with_tage model else model in
  let model = if !ideal then Params.with_ideal_recovery model else model in
  let model =
    if !rob > 0 then { model with Params.rob_entries = !rob } else model
  in
  let model =
    if !sched >= 0 then { model with Params.scheduler_entries = !sched }
    else model
  in
  let model =
    if !inject = "" then model
    else
      Params.with_faults
        (Inject.plan ~period:!inject_period
           ~kinds:(parse_inject_kinds !inject) !seed)
        model
  in
  let target =
    match !target_name with
    | "straight" -> Exp.Straight_re
    | "straight-raw" -> Exp.Straight_raw
    | "riscv" -> Exp.Riscv
    | t -> Printf.eprintf "unknown target %s\n" t; exit 2
  in
  (match target, model.Params.rename with
   | Exp.Riscv, Params.Rp
   | (Exp.Straight_re | Exp.Straight_raw), (Params.Rmt _ | Params.Rmt_checkpoint _) ->
     Printf.eprintf "warning: %s target on %s model mixes the ISA and the core\n"
       !target_name model.Params.name
   | _ -> ());
  let resolve_workload () =
    match !workload, !file with
    | "", f when f <> "" ->
      { Workloads.name = Filename.basename f;
        source = In_channel.with_open_text f In_channel.input_all;
        iterations = 1 }
    | "", _ ->
      prerr_endline "need a FILE, -workload, or -restore"; exit 2
    | name, _ ->
      (match List.assoc_opt name workloads with
       | Some mk -> mk ()
       | None ->
         Printf.eprintf "unknown workload %s (valid: %s)\n" name
           (String.concat ", " (List.map fst workloads));
         exit 2)
  in
  let outcome () =
    (* a snapshot is self-contained: -restore rebuilds the workload and
       model from the file and ignores the selection flags *)
    let session =
      if !restore <> "" then Sim.restore !restore
      else
        Sim.start
          (Sim.spec ~max_dist:!maxdist ~check:(not !no_check) ~model ~target
             (resolve_workload ()))
    in
    Sim.drive ~checkpoint_every:!checkpoint_every
      ?checkpoint_path:(if !checkpoint = "" then None else Some !checkpoint)
      ?stop_at:(if !stop_at > 0 then Some !stop_at else None)
      ?deadlock_snapshot:
        (match !dump_on_error with
         | "" | "-" -> None
         | p -> Some (p ^ ".snap"))
      session
  in
  let handle_failure e =
    match Diagnostics.of_exn e with
    | None -> raise e
    | Some d ->
      Printf.eprintf "straightsim: %s\n" (Diagnostics.to_string d);
      (match !dump_on_error with
       | "" -> ()
       | "-" -> prerr_string (Diagnostics.context_dump d)
       | path ->
         Out_channel.with_open_text path (fun oc ->
             output_string oc (Diagnostics.context_dump d));
         Printf.eprintf "straightsim: diagnostic context written to %s\n"
           path);
      exit (Diagnostics.exit_code d.Diagnostics.code)
  in
  let print_cpi_stack stack =
    Printf.printf "CPI stack    : %s\n"
      (String.concat ", "
         (List.map
            (fun (k, v) -> Printf.sprintf "%s=%d" k v)
            (Stats.cpi_to_assoc stack)))
  in
  (* -fast-forward: functional skip (optionally warming), then the
     detailed model over the remainder only *)
  let run_fast_forward () =
    let spec =
      Sim.spec ~max_dist:!maxdist ~check:(not !no_check) ~model ~target
        (resolve_workload ())
    in
    let image = Sim.compile spec in
    let engine, finish =
      match target with
      | Exp.Riscv ->
        let s =
          Ooo_riscv.Pipeline.start_region ~check:spec.Sim.check ~warm:!warm
            ~from:!fast_forward model image
        in
        ( s.Ooo_riscv.Pipeline.engine,
          fun () ->
            let r = Ooo_riscv.Pipeline.finish s in
            (r.Ooo_riscv.Pipeline.stats, r.Ooo_riscv.Pipeline.output) )
      | Exp.Straight_raw | Exp.Straight_re ->
        let s =
          Ooo_straight.Pipeline.start_region ~check:spec.Sim.check
            ~max_dist:!maxdist ~warm:!warm ~from:!fast_forward model image
        in
        ( s.Ooo_straight.Pipeline.engine,
          fun () ->
            let r = Ooo_straight.Pipeline.finish s in
            (r.Ooo_straight.Pipeline.stats, r.Ooo_straight.Pipeline.output) )
    in
    while not (Engine.finished engine) do
      Engine.step engine
    done;
    let committed = Engine.committed_count engine in
    let stats, output = finish () in
    Printf.printf "model        : %s\n" model.Params.name;
    Printf.printf "target       : %s\n" (Exp.target_label target);
    Printf.printf "fast-forward : %d instructions (%s handoff)\n"
      !fast_forward (if !warm then "warmed" else "cold");
    Printf.printf "cycles       : %d (measured region only)\n"
      stats.Engine.cycles;
    Printf.printf "instructions : %d\n" committed;
    Printf.printf "IPC          : %.3f\n"
      (float_of_int committed /. float_of_int (max 1 stats.Engine.cycles));
    print_cpi_stack stats.Engine.cpi_stack;
    print_string "--- program output ---\n";
    print_string output
  in
  (* -sample: materialize interval checkpoints, fan out, recombine *)
  let run_sampled () =
    let sp =
      try Sample.Spec.parse !sample
      with Sample.Spec.Parse_error m ->
        Printf.eprintf "straightsim: -sample %S: %s\n" !sample m;
        exit 2
    in
    let w = resolve_workload () in
    let spec =
      Sim.spec ~max_dist:!maxdist ~check:(not !no_check) ~model ~target w
    in
    let plan, cached = Sample.Interval.materialize ~dir:!store spec sp in
    let entries = Array.of_list plan.Sample.Interval.entries in
    Printf.printf "plan %s: %d interval(s) over %d retired insns%s\n"
      (String.sub plan.Sample.Interval.key 0 12)
      (Array.length entries) plan.Sample.Interval.total_retired
      (if cached then " (store hit, ISS pass skipped)" else "");
    flush stdout;
    flush stderr;
    let results = Array.make (Array.length entries) None in
    let failures = ref [] in
    Sweep.Pool.run ~jobs:(Array.length entries)
      ~worker:(fun i ->
          Stats.Json.to_string ~indent:false
            (Sample.Interval.result_to_json
               (Sample.Interval.run_file entries.(i).Sample.Interval.path)))
      ~procs:!jobs
      ~on_result:(fun i -> function
          | Ok line ->
            results.(i) <-
              Some
                (Sample.Interval.result_of_json (Stats.Json.of_string line))
          | Error msg -> failures := (i, msg) :: !failures)
      ();
    List.iter
      (fun (i, msg) ->
         Printf.eprintf "straightsim: interval %d failed: %s\n" i msg)
      (List.rev !failures);
    if !failures <> [] then exit 4;
    let est =
      Sample.Recombine.recombine
        ~total_insns:plan.Sample.Interval.total_retired
        (Array.to_list results |> List.filter_map Fun.id)
    in
    Printf.printf
      "sampled CPI  : %.4f +/- %.4f (95%% CI, %d intervals, %d of %d insns \
       measured)\n"
      est.Sample.Recombine.cpi est.Sample.Recombine.ci95
      est.Sample.Recombine.intervals est.Sample.Recombine.measured_insns
      est.Sample.Recombine.total_insns;
    Printf.printf "est cycles   : %.0f\n" est.Sample.Recombine.est_cycles;
    Printf.printf "CPI stack    : %s\n"
      (String.concat ", "
         (List.map
            (fun (k, v) -> Printf.sprintf "%s=%.4f" k v)
            est.Sample.Recombine.stack));
    (if !sample_json <> "" then begin
       let text =
         Stats.Json.to_string
           (Sample.Recombine.report_json ~workload:w.Workloads.name
              ~target:(Exp.target_label target) ~spec:sp est)
       in
       match !sample_json with
       | "-" -> print_string text
       | path ->
         Out_channel.with_open_text path (fun oc -> output_string oc text)
     end);
    if !sample_check then begin
      let exact =
        Exp.run ~max_dist:!maxdist ~check:(not !no_check) ~model ~target w
      in
      let v =
        Sample.Recombine.check est ~exact_cycles:exact.Exp.cycles
          ~floor:!sample_floor
      in
      Printf.printf "exact CPI    : %.4f (err %.4f, tolerance %.4f) -> %s\n"
        v.Sample.Recombine.exact_cpi v.Sample.Recombine.err
        v.Sample.Recombine.tolerance
        (if v.Sample.Recombine.ok then "OK" else "FAIL");
      if not v.Sample.Recombine.ok then exit 1
    end
  in
  if !sample <> "" then
    try run_sampled () with
    | Sweep.Pool.Interrupted _ -> exit 130
    | e -> handle_failure e
  else if !fast_forward > 0 then
    try run_fast_forward () with e -> handle_failure e
  else
  match outcome () with
  | Sim.Stopped { cycle; path } ->
    Printf.printf "stopped at cycle %d; checkpoint written to %s\n" cycle path
  | Sim.Completed r ->
    let s = r.Exp.stats in
    Printf.printf "model        : %s\n" r.Exp.model;
    Printf.printf "target       : %s\n" (Exp.target_label r.Exp.target);
    Printf.printf "cycles       : %d\n" r.Exp.cycles;
    Printf.printf "instructions : %d\n" r.Exp.committed;
    Printf.printf "IPC          : %.3f\n" r.Exp.ipc;
    Printf.printf "branch misp  : %d (+%d returns)\n" s.Engine.branch_mispredicts
      s.Engine.return_mispredicts;
    Printf.printf "memdep viols : %d\n" s.Engine.memdep_violations;
    Printf.printf "walk stalls  : %d cycles\n" s.Engine.walk_stall_cycles;
    Printf.printf "L1I misses   : %d\n" s.Engine.l1i_misses;
    Printf.printf "L1D misses   : %d / %d accesses\n" s.Engine.l1d_misses
      s.Engine.l1d_accesses;
    Printf.printf "wrong-path   : %d fetched\n" s.Engine.wrong_path_fetched;
    if !inject <> "" then
      Printf.printf "faults       : %d injected (seed %d)\n"
        s.Engine.faults_injected !seed;
    if not !no_check then
      Printf.printf "checked      : %d commits, zero divergence\n"
        s.Engine.commits_checked;
    Printf.printf "mix          : %s\n"
      (String.concat ", "
         (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) s.Engine.mix));
    Printf.printf "CPI stack    : %s\n"
      (String.concat ", "
         (List.map
            (fun (k, v) -> Printf.sprintf "%s=%d" k v)
            (Stats.cpi_to_assoc s.Engine.cpi_stack)));
    (if !stats_json <> "" then begin
       let json =
         Stats.Json.Obj
           [ ("schema", Stats.Json.Str "straightsim-stats/1");
             ("model", Stats.Json.Str r.Exp.model);
             ("target", Stats.Json.Str (Exp.target_label r.Exp.target));
             ("workload", Stats.Json.Str r.Exp.workload);
             ("cycles", Stats.Json.Int r.Exp.cycles);
             ("instructions", Stats.Json.Int r.Exp.committed);
             ("ipc", Stats.Json.Float r.Exp.ipc);
             ("cpi_stack", Stats.cpi_to_json s.Engine.cpi_stack);
             ("branch_mispredicts", Stats.Json.Int s.Engine.branch_mispredicts);
             ("return_mispredicts", Stats.Json.Int s.Engine.return_mispredicts);
             ("memdep_violations", Stats.Json.Int s.Engine.memdep_violations);
             ("walk_stall_cycles", Stats.Json.Int s.Engine.walk_stall_cycles);
             ("l1i_misses", Stats.Json.Int s.Engine.l1i_misses);
             ("l1d_misses", Stats.Json.Int s.Engine.l1d_misses);
             ("l1d_accesses", Stats.Json.Int s.Engine.l1d_accesses);
             ("wrong_path_fetched", Stats.Json.Int s.Engine.wrong_path_fetched);
             ("faults_injected", Stats.Json.Int s.Engine.faults_injected);
             ("commits_checked", Stats.Json.Int s.Engine.commits_checked);
             ("mix",
              Stats.Json.Obj
                (List.map (fun (k, v) -> (k, Stats.Json.Int v)) s.Engine.mix)) ]
       in
       let text = Stats.Json.to_string json in
       match !stats_json with
       | "-" -> print_string text
       | path ->
         Out_channel.with_open_text path (fun oc -> output_string oc text)
     end);
    print_string "--- program output ---\n";
    print_string r.Exp.output
  | exception e -> handle_failure e
