(* fuzz — differential fuzzer and static verifier driver.

   Default mode generates [count] seeded random MiniC programs starting
   at [seed], runs each through every toolchain consumer (SSA
   interpreter, straight_cc at both optimization levels and two max_dist
   settings, riscv_cc) and compares console output, exit value and final
   global memory against the unoptimized-interpreter reference; the
   STRAIGHT images are additionally passed through the static linter.

     fuzz -seed 1 -count 200            # a fixed, reproducible campaign
     fuzz -seed 7 -count 1 -shrink      # minimize a known-bad seed
     fuzz -lint-only -count 500         # linter coverage without execution
     fuzz -lint-workloads               # verify every benchmark image
     fuzz ... -json report.json         # machine-readable failure report
     fuzz ... -corpus DIR               # persist failures incrementally

   With -corpus, each failure is written to DIR the moment it is found
   (atomic tmp+rename, so a kill can never leave a torn file), and a
   progress marker records the last completed seed so a restarted
   campaign with the same -seed/-count resumes where it was killed
   instead of re-fuzzing from the start. *)

let usage = "usage: fuzz [-seed N] [-count N] [-target minic|wasm] [-shrink] [-lint-only] [-lint-workloads] [-tv] [-tv-workloads] [-tv-mutations N] [-json FILE] [-corpus DIR] [-v]"

type failure = {
  f_seed : int;
  f_kind : string;                (* "diverged" | "crashed" | "lint" *)
  f_detail : string list;
  f_source : string;              (* MiniC source, "" for workload lints *)
  f_minimized : string option;
}

let json_escape (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\r' -> Buffer.add_string buf "\\r"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let failure_json_string ?(indent = "    ") (f : failure) : string =
  let buf = Buffer.create 256 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "%s{\n" indent;
  out "%s  \"seed\": %d,\n" indent f.f_seed;
  out "%s  \"kind\": \"%s\",\n" indent (json_escape f.f_kind);
  out "%s  \"detail\": [%s],\n" indent
    (String.concat ", "
       (List.map (fun d -> "\"" ^ json_escape d ^ "\"") f.f_detail));
  out "%s  \"source\": \"%s\"" indent (json_escape f.f_source);
  (match f.f_minimized with
   | Some m -> out ",\n%s  \"minimized\": \"%s\"\n" indent (json_escape m)
   | None -> out "\n");
  out "%s}" indent;
  Buffer.contents buf

let write_json (file : string) (failures : failure list) : unit =
  let oc = open_out file in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n  \"failures\": [";
  List.iteri
    (fun i f ->
       if i > 0 then out ",";
       out "\n%s" (failure_json_string f))
    failures;
  out "\n  ]\n}\n";
  close_out oc

(* -corpus persistence: every write is tmp+rename so a SIGKILL mid-write
   can never leave a torn or half-visible file in the corpus. *)
let write_atomic (path : string) (contents : string) : unit =
  let tmp = path ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
  let oc = open_out tmp in
  (try output_string oc contents; close_out oc
   with e -> close_out_noerr oc; (try Sys.remove tmp with Sys_error _ -> ()); raise e);
  Sys.rename tmp path

let ensure_dir path =
  if not (Sys.file_exists path) then
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let corpus_save (dir : string) ~(ext : string) (f : failure) : unit =
  let stem = Filename.concat dir (Printf.sprintf "seed-%05d" f.f_seed) in
  write_atomic (stem ^ ".json") (failure_json_string ~indent:"" f ^ "\n");
  if f.f_source <> "" then write_atomic (stem ^ ext) f.f_source;
  match f.f_minimized with
  | Some m -> write_atomic (stem ^ ".min" ^ ext) m
  | None -> ()

(* progress marker: last fully processed seed, updated after each seed
   so a restarted campaign resumes at the next one. *)
let corpus_mark (dir : string) (s : int) : unit =
  write_atomic (Filename.concat dir "progress") (string_of_int s ^ "\n")

let corpus_last_done (dir : string) : int option =
  let path = Filename.concat dir "progress" in
  if Sys.file_exists path then
    In_channel.with_open_text path (fun ic ->
        Option.bind (In_channel.input_line ic) int_of_string_opt)
  else None

(* Coarse failure fingerprint used by the shrinker: a candidate must
   reproduce the same kind of failure on the same target.  (Field names
   include memory indices that legitimately shift while shrinking, so
   they are not part of the signature.) *)
let signature (o : Fuzz.Diff.outcome) : string option =
  match o with
  | Fuzz.Diff.Agree _ -> None
  | Fuzz.Diff.Diverged divs ->
    let targets =
      List.sort_uniq compare (List.map (fun d -> d.Fuzz.Diff.target) divs)
    in
    Some ("diverged:" ^ String.concat "," targets)
  | Fuzz.Diff.Crashed { target; _ } -> Some ("crashed:" ^ target)

let outcome_detail (o : Fuzz.Diff.outcome) : string list =
  match o with
  | Fuzz.Diff.Agree _ -> []
  | Fuzz.Diff.Diverged divs ->
    List.map (Format.asprintf "%a" Fuzz.Diff.pp_divergence) divs
  | Fuzz.Diff.Crashed { target; message } ->
    [ Printf.sprintf "%s: %s" target message ]

(* Compile one source to every target and run the static verifiers over
   the linked images: STRAIGHT at both codegen levels through
   [Straight_lint], RV32IM through the full [Riscv_lint] dataflow
   verifier.  [opt] selects the shared middle-end level.  Compile
   crashes are only reported in lint-only mode: the differential run
   already reports them. *)
let lint_source ?(opt = Ssa_ir.Passes.O2) ~(report_crash : bool)
    (src : string) : string list =
  let lint_one label image =
    List.map
      (fun f ->
         Printf.sprintf "%s: %s" label (Lint_report.finding_to_string f))
      (Straight_lint.Lint.lint image)
  in
  let straight level label =
    match
      Straight_core.Compile.to_straight ~opt
        ~max_dist:Straight_isa.Isa.max_dist ~level src
    with
    | image, _ -> lint_one label image
    | exception e when report_crash ->
      [ Printf.sprintf "%s: compile crashed: %s" label (Printexc.to_string e) ]
    | exception _ -> []
  in
  let riscv () =
    match Straight_core.Compile.to_riscv ~opt src with
    | image ->
      List.map
        (fun f ->
           Printf.sprintf "riscv: %s" (Lint_report.finding_to_string f))
        (Riscv_lint.Lint.lint image)
    | exception e when report_crash ->
      [ Printf.sprintf "riscv: compile crashed: %s" (Printexc.to_string e) ]
    | exception _ -> []
  in
  straight Straight_cc.Codegen.Re_plus "straight-re+"
  @ straight Straight_cc.Codegen.Raw "straight-raw"
  @ riscv ()

let opt_levels =
  [ (Ssa_ir.Passes.O0, "O0"); (Ssa_ir.Passes.O1, "O1");
    (Ssa_ir.Passes.O2, "O2") ]

(* ---- translation validation (lib/tv) ---- *)

let tv_config level =
  { Straight_cc.Codegen.max_dist = Straight_isa.Isa.max_dist; level }

(* Validate one source through every back-end configuration.  Only
   [Error] findings are failures; [tv-abstain] Infos are the validator
   explicitly giving up on a function and are reported separately. *)
let tv_runs ?(opt = Ssa_ir.Passes.O2) (src : string) :
  (string * (unit -> Lint_report.finding list)) list =
  let prog () = Straight_core.Compile.frontend ~opt src in
  [ ("straight-re+",
     fun () ->
       Tv.Validate.validate_straight
         ~config:(tv_config Straight_cc.Codegen.Re_plus) (prog ()));
    ("straight-raw",
     fun () ->
       Tv.Validate.validate_straight
         ~config:(tv_config Straight_cc.Codegen.Raw) (prog ()));
    ("riscv", fun () -> Tv.Validate.validate_riscv (prog ())) ]

let tv_source ?(opt = Ssa_ir.Passes.O2) ~(report_crash : bool)
    (src : string) : string list =
  List.concat_map
    (fun (tname, run) ->
       match run () with
       | findings ->
         List.map
           (fun f ->
              Printf.sprintf "%s: %s" tname (Lint_report.finding_to_string f))
           (Lint_report.errors findings)
       | exception e when report_crash ->
         [ Printf.sprintf "%s: tv crashed: %s" tname (Printexc.to_string e) ]
       | exception _ -> [])
    (tv_runs ~opt src)

(* [-tv-workloads]: every benchmark x middle-end level x back-end
   configuration.  Returns the labeled finding groups (for the
   [straight-tv/1] JSON report) alongside the failures. *)
let tv_workloads () :
  (string * Lint_report.finding list) list * failure list =
  let workloads =
    [ Workloads.dhrystone (); Workloads.coremark (); Workloads.fib ();
      Workloads.iota (); Workloads.sort (); Workloads.quicksort ();
      Workloads.pointer_chase () ]
    @ Workloads.all_wasm ()
  in
  let groups = ref [] and failures = ref [] in
  List.iter
    (fun (w : Workloads.t) ->
       List.iter
         (fun (opt, oname) ->
            List.iter
              (fun (tname, run) ->
                 let label =
                   Printf.sprintf "%s:%s:%s" w.Workloads.name tname oname
                 in
                 match run () with
                 | findings ->
                   groups := (label, findings) :: !groups;
                   let errs = Lint_report.errors findings in
                   let abstained =
                     List.length
                       (List.filter
                          (fun f -> f.Lint_report.check = "tv-abstain")
                          findings)
                   in
                   if errs = [] then
                     Printf.printf "tv %-32s validated%s\n%!" label
                       (if abstained = 0 then ""
                        else Printf.sprintf " (%d abstained)" abstained)
                   else begin
                     Printf.printf "tv %-32s %d error%s\n%!" label
                       (List.length errs)
                       (if List.length errs = 1 then "" else "s");
                     failures :=
                       { f_seed = -1; f_kind = "tv";
                         f_detail =
                           List.map
                             (fun f ->
                                label ^ ": " ^ Lint_report.finding_to_string f)
                             errs;
                         f_source = ""; f_minimized = None }
                       :: !failures
                   end
                 | exception e ->
                   failures :=
                     { f_seed = -1; f_kind = "tv";
                       f_detail =
                         [ Printf.sprintf "%s: tv crashed: %s" label
                             (Printexc.to_string e) ];
                       f_source = ""; f_minimized = None }
                     :: !failures)
              (tv_runs ~opt w.Workloads.source))
         opt_levels)
    workloads;
  (List.rev !groups, List.rev !failures)

(* Behavioral fingerprint of an image on the functional simulator:
   console output plus main's return value, or the failure class.  Used
   to separate genuine validator misses from semantically invisible
   mutations (e.g. dropping a copy of a value nothing deeper reads). *)
let iss_fingerprint (image : Assembler.Image.t) : string =
  let config =
    { Iss.Straight_iss.default_config with
      Iss.Straight_iss.max_insns = 2_000_000 }
  in
  match Iss.Straight_iss.start ~config image with
  | session ->
    (match Iss.Straight_iss.run_session session with
     | () ->
       let r = Iss.Straight_iss.finish session in
       Printf.sprintf "ok:%ld:%s"
         (Iss.Straight_iss.exit_value session) r.Iss.Trace.output
     | exception e -> "fault:" ^ Printexc.to_string e)
  | exception e -> "fault:" ^ Printexc.to_string e

(* [-tv-mutations N]: seeded single-instruction breakage of freshly
   generated STRAIGHT code; the validator must reject each one with an
   [Error] finding naming the mutated function.  Seeds walk upward from
   [base] until [n] mutations were caught; an uncaught mutation whose
   ISS behavior actually changed is an immediate failure (a validator
   blind spot), an uncaught behavior-preserving one is skipped, and
   running out of the seed budget without [n] catches fails too. *)
let tv_mutations ~(base : int) (n : int) : failure list =
  let caught = ref 0 and tried = ref 0 and fails = ref [] in
  let seed = ref base in
  let budget = base + (40 * n) in
  while !caught < n && !fails = [] && !seed < budget do
    let s = !seed in
    incr seed;
    let fresh () =
      Straight_core.Compile.frontend ~opt:Ssa_ir.Passes.O1
        (Fuzz.Gen.render (Fuzz.Gen.generate s))
    in
    match Tv.Validate.mutation_trial ~config:(tv_config Straight_cc.Codegen.Re_plus) ~fresh ~seed:s () with
    | None -> ()
    | Some m ->
      incr tried;
      if m.Tv.Validate.m_caught then begin
        incr caught;
        Printf.printf "tv-mutation seed %-4d caught     %s\n%!" s
          m.Tv.Validate.m_desc
      end
      else begin
        let equivalent =
          match m.Tv.Validate.m_images with
          | Some (orig, mutated) ->
            iss_fingerprint orig = iss_fingerprint mutated
          | None -> false
        in
        if equivalent then begin
          decr tried;
          Printf.printf "tv-mutation seed %-4d equivalent %s (skipped)\n%!"
            s m.Tv.Validate.m_desc
        end
        else begin
          Printf.printf "tv-mutation seed %-4d MISSED     %s\n%!" s
            m.Tv.Validate.m_desc;
          fails :=
            [ { f_seed = s; f_kind = "tv-mutation";
                f_detail =
                  (Printf.sprintf "validator missed: %s" m.Tv.Validate.m_desc)
                  :: List.map Lint_report.finding_to_string
                       m.Tv.Validate.m_findings;
                f_source = ""; f_minimized = None } ]
        end
      end
    | exception e ->
      fails :=
        [ { f_seed = s; f_kind = "tv-mutation";
            f_detail =
              [ Printf.sprintf "mutation trial crashed: %s"
                  (Printexc.to_string e) ];
            f_source = ""; f_minimized = None } ]
  done;
  if !caught < n && !fails = [] then
    fails :=
      [ { f_seed = -1; f_kind = "tv-mutation";
          f_detail =
            [ Printf.sprintf
                "only %d/%d mutations caught within the seed budget (%d \
                 trials)" !caught n !tried ];
          f_source = ""; f_minimized = None } ];
  if !fails = [] then
    Printf.printf "tv-mutations: %d/%d injected bugs rejected (%d trials)\n%!"
      !caught n !tried;
  !fails

(* [-lint-workloads]: every benchmark, every middle-end level, both
   ISAs.  Also writes a JSON report when [-json] is given (handled by
   the caller through the returned failures). *)
let lint_workloads () : failure list =
  let workloads =
    [ Workloads.dhrystone (); Workloads.coremark (); Workloads.fib ();
      Workloads.iota (); Workloads.sort (); Workloads.quicksort ();
      Workloads.pointer_chase () ]
    @ Workloads.all_wasm ()
  in
  List.concat_map
    (fun (w : Workloads.t) ->
       List.filter_map
         (fun (opt, oname) ->
            let label = Printf.sprintf "%s -%s" w.Workloads.name oname in
            let findings =
              List.map (fun d -> label ^ ": " ^ d)
                (lint_source ~opt ~report_crash:true w.Workloads.source)
            in
            if findings = [] then begin
              Printf.printf "lint %-14s %s clean\n%!" w.Workloads.name oname;
              None
            end
            else
              Some { f_seed = -1; f_kind = "lint"; f_detail = findings;
                     f_source = ""; f_minimized = None })
         opt_levels)
    workloads

let () =
  let seed = ref 1 in
  let count = ref 100 in
  let do_shrink = ref false in
  let lint_only = ref false in
  let workloads_only = ref false in
  let do_tv = ref false in
  let tv_workloads_only = ref false in
  let tv_mutations_n = ref 0 in
  let json_file = ref "" in
  let corpus = ref "" in
  let verbose = ref false in
  let gen_target = ref "minic" in
  Arg.parse
    [ ("-seed", Arg.Set_int seed, "N  first seed (default 1)");
      ("-count", Arg.Set_int count, "N  number of seeds (default 100)");
      ("-target", Arg.Set_string gen_target,
       "minic|wasm  program generator for the campaign (default minic)");
      ("-shrink", Arg.Set do_shrink, "  minimize each failing program");
      ("-lint-only", Arg.Set lint_only,
       "  only lint the generated images, skip differential execution");
      ("-lint-workloads", Arg.Set workloads_only,
       "  lint every benchmark image from both back ends, then exit");
      ("-tv", Arg.Set do_tv,
       "  also run the translation validator over every generated seed");
      ("-tv-workloads", Arg.Set tv_workloads_only,
       "  validate every benchmark translation from both back ends, then \
        exit (-json writes a straight-tv/1 report)");
      ("-tv-mutations", Arg.Set_int tv_mutations_n,
       "N  inject N seeded codegen bugs; each must be rejected");
      ("-json", Arg.Set_string json_file, "FILE  write a JSON failure report");
      ("-corpus", Arg.Set_string corpus,
       "DIR  persist each failure as it is found; resume a killed campaign");
      ("-v", Arg.Set verbose, "  print every seed as it runs") ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    usage;
  if !gen_target <> "minic" && !gen_target <> "wasm" then begin
    Printf.eprintf "fuzz: unknown -target %s (minic|wasm)\n" !gen_target;
    exit 2
  end;
  let src_ext = if !gen_target = "wasm" then ".wat" else ".minic" in
  let failures = ref [] in
  (* prior failures already persisted in the corpus for this seed range
     (from the killed run we are resuming) still count toward the exit
     status even though this invocation skips their seeds *)
  let prior_failures = ref 0 in
  let first = ref !seed in
  let batch_mode =
    !workloads_only || !tv_workloads_only || !tv_mutations_n > 0
  in
  if !corpus <> "" && not batch_mode then begin
    ensure_dir !corpus;
    (match corpus_last_done !corpus with
     | Some last when last >= !seed ->
       first := last + 1;
       Array.iter
         (fun f ->
            try
              Scanf.sscanf f "seed-%d.json%!" (fun s ->
                  if s >= !seed && s < !first then incr prior_failures)
            with Scanf.Scan_failure _ | Failure _ | End_of_file -> ())
         (Sys.readdir !corpus);
       if !first < !seed + !count then
         Printf.eprintf
           "fuzz: corpus %s covers seeds %d-%d (%d failure%s); resuming at %d\n%!"
           !corpus !seed last !prior_failures
           (if !prior_failures = 1 then "" else "s") !first
     | _ -> ())
  end;
  let tv_groups = ref [] in
  if !workloads_only then failures := lint_workloads ()
  else if !tv_workloads_only then begin
    let groups, fs = tv_workloads () in
    tv_groups := groups;
    failures := List.rev fs
  end
  else if !tv_mutations_n > 0 then
    failures := List.rev (tv_mutations ~base:!seed !tv_mutations_n)
  else begin
    for s = !first to !seed + !count - 1 do
      (* [shrink_min keep] re-renders the minimized program; the keep
         predicate sees rendered source, so one shrink loop serves both
         generators *)
      let src, shrink_min =
        if !gen_target = "wasm" then begin
          let prog = Fuzz.Gen_wasm.generate s in
          ( Fuzz.Gen_wasm.render prog,
            fun (keep : string -> bool) ->
              Fuzz.Gen_wasm.render
                (Fuzz.Gen_wasm.shrink
                   ~still_fails:(fun p -> keep (Fuzz.Gen_wasm.render p))
                   prog) )
        end
        else begin
          let prog = Fuzz.Gen.generate s in
          ( Fuzz.Gen.render prog,
            fun (keep : string -> bool) ->
              Fuzz.Gen.render
                (Fuzz.Shrink.shrink
                   ~still_fails:(fun p -> keep (Fuzz.Gen.render p))
                   prog) )
        end
      in
      if !verbose then Printf.printf "seed %d (%d bytes)\n%!" s (String.length src);
      (* static verification of the images this seed produces *)
      let add_failure f =
        failures := f :: !failures;
        if !corpus <> "" then corpus_save !corpus ~ext:src_ext f
      in
      let lint_findings = lint_source ~report_crash:!lint_only src in
      if lint_findings <> [] then
        add_failure
          { f_seed = s; f_kind = "lint"; f_detail = lint_findings;
            f_source = src; f_minimized = None };
      if !do_tv then begin
        let tv_findings = tv_source ~report_crash:!lint_only src in
        if tv_findings <> [] then
          add_failure
            { f_seed = s; f_kind = "tv"; f_detail = tv_findings;
              f_source = src; f_minimized = None }
      end;
      (* differential execution *)
      if not !lint_only then begin
        match Fuzz.Diff.check src with
        | Fuzz.Diff.Agree _ -> ()
        | outcome ->
          let sig_ = signature outcome in
          let minimized =
            if !do_shrink then begin
              let keep src' =
                match signature (Fuzz.Diff.check src') with
                | s' -> s' = sig_
                | exception _ -> false
              in
              Some (shrink_min keep)
            end
            else None
          in
          let kind =
            match outcome with
            | Fuzz.Diff.Crashed _ -> "crashed"
            | _ -> "diverged"
          in
          add_failure
            { f_seed = s; f_kind = kind; f_detail = outcome_detail outcome;
              f_source = src; f_minimized = minimized }
      end;
      if !corpus <> "" then corpus_mark !corpus s
    done
  end;
  let failures = List.rev !failures in
  if !json_file <> "" then begin
    if !tv_workloads_only then
      (* the machine-readable TV report keeps every finding, including
         abstentions, under the straight-tv/1 schema *)
      Out_channel.with_open_text !json_file (fun oc ->
          output_string oc
            (Lint_report.report_to_json ~schema:"straight-tv/1" !tv_groups))
    else write_json !json_file failures
  end;
  match failures with
  | [] when !prior_failures > 0 ->
    Printf.eprintf
      "fuzz: no new failures, but corpus %s holds %d failure%s from the \
       resumed range\n" !corpus !prior_failures
      (if !prior_failures = 1 then "" else "s");
    exit (Diag.exit_code Diag.Checker_divergence)
  | [] ->
    if not batch_mode then
      Printf.printf "fuzz: %d seeds from %d: all executions agree, images lint clean\n"
        !count !seed;
    exit 0
  | fs ->
    List.iter
      (fun f ->
         let d =
           Diag.make ~context:[ ("seed", string_of_int f.f_seed) ]
             Diag.Checker_divergence
             (Printf.sprintf "%s (%d finding%s)" f.f_kind
                (List.length f.f_detail)
                (if List.length f.f_detail = 1 then "" else "s"))
         in
         Printf.eprintf "%s\n" (Diag.to_string d);
         List.iter (fun line -> Printf.eprintf "  %s\n" line) f.f_detail;
         if f.f_source <> "" then
           Printf.eprintf "--- source (seed %d) ---\n%s" f.f_seed f.f_source;
         (match f.f_minimized with
          | Some m -> Printf.eprintf "--- minimized ---\n%s" m
          | None -> ()))
      fs;
    Printf.eprintf "fuzz: %d failing seed%s\n" (List.length fs)
      (if List.length fs = 1 then "" else "s");
    exit (Diag.exit_code Diag.Checker_divergence)
