(* straightd: the resident simulation service.

     dune exec bin/straightd.exe -- [options]

   Listens on a Unix-domain socket and speaks straightd-proto/1 (one
   JSON object per line, see EXPERIMENTS.md): compile / simulate /
   sample / sweep / status / shutdown.  Simulation points run on a
   -j-bounded fork pool, results are memoized in the content-addressed
   _sweep/ store, identical in-flight requests coalesce onto one job,
   and progress streams back as event lines.  Runs in the foreground;
   SIGINT/SIGTERM shut it down cleanly (workers dismissed, socket
   unlinked).

   Exit codes: 0 clean shutdown; 2 usage error; 10 service failure
   (socket bind, daemon already running). *)

let usage () =
  prerr_endline
    "usage: straightd [options]\n\
     \  -socket PATH    listen path (default straightd.sock)\n\
     \  -j N            concurrent simulation jobs (default: host cores)\n\
     \  -cache-dir DIR  content-addressed result store (default _sweep)\n\
     \  -timeout SEC    per-job budget before the worker is killed\n\
     \                  (default 600)\n\
     \  -quiet          no progress lines on stderr";
  exit 2

let () =
  let socket = ref "straightd.sock" in
  let procs = ref (Domain.recommended_domain_count ()) in
  let cache_dir = ref "_sweep" in
  let timeout = ref 600.0 in
  let quiet = ref false in
  let rec parse = function
    | [] -> ()
    | "-socket" :: v :: rest ->
      socket := v;
      parse rest
    | "-j" :: v :: rest ->
      (match int_of_string_opt v with
       | Some n when n >= 1 -> procs := n
       | _ -> usage ());
      parse rest
    | "-cache-dir" :: v :: rest ->
      cache_dir := v;
      parse rest
    | "-timeout" :: v :: rest ->
      (match float_of_string_opt v with
       | Some t when t > 0.0 -> timeout := t
       | _ -> usage ());
      parse rest
    | "-quiet" :: rest ->
      quiet := true;
      parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let log =
    if !quiet then fun _ -> ()
    else fun m -> Printf.eprintf "straightd: %s\n%!" m
  in
  match
    Service.Server.run ~socket_path:!socket ~procs:!procs
      ~cache_dir:!cache_dir ~timeout_job:!timeout ~log ()
  with
  | () -> ()
  | exception Diag.Error d ->
    Printf.eprintf "straightd: %s\n%!" (Diag.to_string d);
    exit (Diag.exit_code d.Diag.code)
