(* Command-line compiler driver: MiniC or WAT -> STRAIGHT or RV32IM
   assembly / execution / static verification.  See also examples/ for
   API-level usage.  The WASM front-end is selected by -wasm, a .wat
   file extension, or content sniffing (WAT starts with '(').

   Failures are reported as structured diagnostics with a distinct exit
   code per failure class (see Diag.exit_code): 2 usage, 3 compile
   errors, 4 execution/memory faults, 5 fuel exhaustion, 8 lint
   findings. *)

module Diagnostics = Straight_core.Diagnostics

let main () =
  let usage =
    "straightc [-target straight|riscv] [-O0|-O1|-O2] [-raw] [-maxdist N] \
     [-wasm] [-run] [-asm] [-lint] [-lint-json FILE] [-tv] [-tv-json FILE] \
     FILE"
  in
  let target = ref "straight" in
  let opt = ref Ssa_ir.Passes.O2 in
  let raw = ref false in
  let maxdist = ref Straight_isa.Isa.max_dist in
  let run = ref false in
  let show_asm = ref false in
  let dump = ref false in
  let lint = ref false in
  let lint_json = ref "" in
  let tv = ref false in
  let tv_json = ref "" in
  let wasm = ref false in
  let file = ref "" in
  let spec =
    [ ("-target", Arg.Set_string target, "straight|riscv");
      ("-O0", Arg.Unit (fun () -> opt := Ssa_ir.Passes.O0),
       " disable the SSA optimization pipeline");
      ("-O1", Arg.Unit (fun () -> opt := Ssa_ir.Passes.O1),
       " folding + DCE + CFG cleanup");
      ("-O2", Arg.Unit (fun () -> opt := Ssa_ir.Passes.O2),
       " additionally CSE and LICM (default)");
      ("-raw", Arg.Set raw, "disable RE+ redundancy elimination");
      ("-maxdist", Arg.Set_int maxdist, "maximum source distance");
      ("-wasm", Arg.Set wasm,
       " treat the input as WASM text format (implied by a .wat file)");
      ("-run", Arg.Set run, "execute on the functional simulator");
      ("-asm", Arg.Set show_asm, "print generated assembly");
      ("-dump", Arg.Set dump, "disassemble the linked image");
      ("-lint", Arg.Set lint,
       " run the static binary verifier on the linked image");
      ("-lint-json", Arg.Set_string lint_json,
       "FILE  write the lint report as JSON (implies -lint)");
      ("-tv", Arg.Set tv,
       " validate the translation: IR vs linked image, per function");
      ("-tv-json", Arg.Set_string tv_json,
       "FILE  write the TV report as JSON (implies -tv)") ]
  in
  Arg.parse spec (fun f -> file := f) usage;
  if !file = "" then begin prerr_endline usage; exit 2 end;
  if !lint_json <> "" then lint := true;
  if !tv_json <> "" then tv := true;
  let src = In_channel.with_open_text !file In_channel.input_all in
  let prog =
    if !wasm || Wasm.Front.is_wat_filename !file then Wasm.Front.compile src
    else Wasm.Front.compile_any src
  in
  (* the driver always takes the checked pipeline: a middle-end bug is
     reported as "pass X broke the IR", not as corrupt output *)
  List.iter (Ssa_ir.Passes.checked_at !opt) prog.Ssa_ir.Ir.funcs;
  (* [finish_lint label findings] prints the findings, optionally writes
     the JSON report, and exits 8 if any is an error. *)
  let finish_lint (label : string) (findings : Lint_report.finding list) =
    List.iter
      (fun f -> Printf.printf "%s\n" (Lint_report.finding_to_string f))
      findings;
    if !lint_json <> "" then
      Out_channel.with_open_text !lint_json (fun oc ->
          output_string oc (Lint_report.report_to_json [ (label, findings) ]));
    match Lint_report.errors findings with
    | [] -> Printf.printf "%s: lint clean\n" label
    | errs ->
      Printf.eprintf "%s: %d lint error%s\n" label (List.length errs)
        (if List.length errs = 1 then "" else "s");
      exit (Diagnostics.exit_code Diagnostics.Lint_finding)
  in
  (* [finish_tv] mirrors [finish_lint] for the translation validator:
     abstentions are Info findings and stay visible, only Errors fail. *)
  let finish_tv (label : string) (findings : Lint_report.finding list) =
    List.iter
      (fun f -> Printf.printf "%s\n" (Lint_report.finding_to_string f))
      findings;
    if !tv_json <> "" then
      Out_channel.with_open_text !tv_json (fun oc ->
          output_string oc
            (Lint_report.report_to_json ~schema:"straight-tv/1"
               [ (label, findings) ]));
    match Lint_report.errors findings with
    | [] ->
      let abstained =
        List.length
          (List.filter
             (fun f -> f.Lint_report.check = "tv-abstain")
             findings)
      in
      Printf.printf "%s: translation validated%s\n" label
        (if abstained = 0 then ""
         else
           Printf.sprintf " (%d function%s abstained)" abstained
             (if abstained = 1 then "" else "s"))
    | errs ->
      Printf.eprintf "%s: %d translation-validation error%s\n" label
        (List.length errs)
        (if List.length errs = 1 then "" else "s");
      exit (Diagnostics.exit_code Diagnostics.Lint_finding)
  in
  let olabel =
    match !opt with
    | Ssa_ir.Passes.O0 -> "O0"
    | Ssa_ir.Passes.O1 -> "O1"
    | Ssa_ir.Passes.O2 -> "O2"
  in
  match !target with
  | "straight" ->
    let level = if !raw then Straight_cc.Codegen.Raw else Straight_cc.Codegen.Re_plus in
    let config = { Straight_cc.Codegen.max_dist = !maxdist; level } in
    (* TV first: the back end mutates the IR in place, and the validator
       wants to clone-and-compile the pristine program itself. *)
    if !tv then
      finish_tv
        (Printf.sprintf "%s:straight:%s" !file olabel)
        (Tv.Validate.validate_straight ~config prog);
    let items = Straight_cc.Codegen.compile ~config prog in
    if !show_asm then
      print_string (Assembler.Asm.Straight.program_to_string items);
    if !dump then
      print_string
        (Assembler.Asm.disassemble_straight
           (Assembler.Asm.Straight.assemble ~entry:"_start" items));
    if !run then begin
      let image = Assembler.Asm.Straight.assemble ~entry:"_start" items in
      let r = Iss.Straight_iss.run image in
      print_string r.Iss.Trace.output;
      Printf.printf "[retired %d instructions]\n" r.Iss.Trace.retired
    end;
    if !lint then begin
      let image = Assembler.Asm.Straight.assemble ~entry:"_start" items in
      finish_lint
        (Printf.sprintf "%s:straight:%s" !file olabel)
        (Straight_lint.Lint.lint ~max_dist:!maxdist image)
    end
  | "riscv" ->
    if !tv then
      finish_tv
        (Printf.sprintf "%s:riscv:%s" !file olabel)
        (Tv.Validate.validate_riscv prog);
    let items = Riscv_cc.Codegen.compile prog in
    if !show_asm then
      print_string (Assembler.Asm.Riscv.program_to_string items);
    if !dump then
      print_string
        (Assembler.Asm.disassemble_riscv
           (Assembler.Asm.Riscv.assemble ~entry:"_start" items));
    if !run then begin
      let image = Assembler.Asm.Riscv.assemble ~entry:"_start" items in
      let r = Iss.Riscv_iss.run image in
      print_string r.Iss.Trace.output;
      Printf.printf "[retired %d instructions]\n" r.Iss.Trace.retired
    end;
    if !lint then begin
      let image = Assembler.Asm.Riscv.assemble ~entry:"_start" items in
      finish_lint
        (Printf.sprintf "%s:riscv:%s" !file olabel)
        (Riscv_lint.Lint.lint image)
    end
  | t -> Printf.eprintf "unknown target %s\n" t; exit 2

let () =
  try main () with
  | e ->
    (match Diagnostics.of_exn e with
     | None -> raise e
     | Some d ->
       Printf.eprintf "straightc: %s\n" (Diagnostics.to_string d);
       exit (Diagnostics.exit_code d.Diagnostics.code))
