(* Command-line compiler driver: MiniC -> STRAIGHT or RV32IM assembly /
   execution.  See also examples/ for API-level usage.

   Failures are reported as structured diagnostics with a distinct exit
   code per failure class (see Diag.exit_code): 2 usage, 3 compile
   errors, 4 execution/memory faults, 5 fuel exhaustion. *)

module Diagnostics = Straight_core.Diagnostics

let main () =
  let usage = "straightc [-target straight|riscv] [-raw] [-maxdist N] [-run] [-asm] FILE" in
  let target = ref "straight" in
  let raw = ref false in
  let maxdist = ref Straight_isa.Isa.max_dist in
  let run = ref false in
  let show_asm = ref false in
  let dump = ref false in
  let file = ref "" in
  let spec =
    [ ("-target", Arg.Set_string target, "straight|riscv");
      ("-raw", Arg.Set raw, "disable RE+ redundancy elimination");
      ("-maxdist", Arg.Set_int maxdist, "maximum source distance");
      ("-run", Arg.Set run, "execute on the functional simulator");
      ("-asm", Arg.Set show_asm, "print generated assembly");
      ("-dump", Arg.Set dump, "disassemble the linked image") ]
  in
  Arg.parse spec (fun f -> file := f) usage;
  if !file = "" then begin prerr_endline usage; exit 2 end;
  let src = In_channel.with_open_text !file In_channel.input_all in
  let prog = Minic.Lower.compile src in
  List.iter Ssa_ir.Passes.optimize prog.Ssa_ir.Ir.funcs;
  match !target with
  | "straight" ->
    let level = if !raw then Straight_cc.Codegen.Raw else Straight_cc.Codegen.Re_plus in
    let config = { Straight_cc.Codegen.max_dist = !maxdist; level } in
    let items = Straight_cc.Codegen.compile ~config prog in
    if !show_asm then
      print_string (Assembler.Asm.Straight.program_to_string items);
    if !dump then
      print_string
        (Assembler.Asm.disassemble_straight
           (Assembler.Asm.Straight.assemble ~entry:"_start" items));
    if !run then begin
      let image = Assembler.Asm.Straight.assemble ~entry:"_start" items in
      let r = Iss.Straight_iss.run image in
      print_string r.Iss.Trace.output;
      Printf.printf "[retired %d instructions]\n" r.Iss.Trace.retired
    end
  | "riscv" ->
    let items = Riscv_cc.Codegen.compile prog in
    if !show_asm then
      print_string (Assembler.Asm.Riscv.program_to_string items);
    if !dump then
      print_string
        (Assembler.Asm.disassemble_riscv
           (Assembler.Asm.Riscv.assemble ~entry:"_start" items));
    if !run then begin
      let image = Assembler.Asm.Riscv.assemble ~entry:"_start" items in
      let r = Iss.Riscv_iss.run image in
      print_string r.Iss.Trace.output;
      Printf.printf "[retired %d instructions]\n" r.Iss.Trace.retired
    end
  | t -> Printf.eprintf "unknown target %s\n" t; exit 2

let () =
  try main () with
  | e ->
    (match Diagnostics.of_exn e with
     | None -> raise e
     | Some d ->
       Printf.eprintf "straightc: %s\n" (Diagnostics.to_string d);
       exit (Diagnostics.exit_code d.Diagnostics.code))
