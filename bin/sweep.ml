(* Parallel design-space sweep driver.

     dune exec bin/sweep.exe -- [options]

   Expands a declarative grid over the microarchitectural parameter
   space (Figs. 12-14 axes: machine width, window sizes, rename model,
   predictor, recovery idealization, workload), fans the points out
   across a fork-based worker pool, streams one JSON line per finished
   point, and aggregates into sweep.json plus per-figure FIGURES.md
   tables.  Results are content-addressed under the cache directory, so
   a re-run only simulates the points whose inputs changed (see
   EXPERIMENTS.md, "Design-space sweeps").

   In-flight points checkpoint their engine state under
   <cache-dir>/ckpt/ every -checkpoint-every cycles; a retry after a
   worker death resumes from the last checkpoint, and SIGINT/SIGTERM
   reaps every worker and sweeps torn temp files before exiting.

   Exit codes: 0 ok; 1 some points failed; 2 usage error; 3 the
   -expect-cached contract was violated (something simulated);
   128+signal when interrupted by SIGINT/SIGTERM. *)

module Params = Ooo_common.Params
module J = Ooo_common.Stats.Json

let usage () =
  prerr_endline
    "usage: sweep [options]\n\
     \  -j N              worker processes (default: host cores; 0 = in-process)\n\
     \  -grid NAME        preset: default | smoke | golden\n\
     \  -quick            small workload iteration counts\n\
     \  -machines LIST    ss,ss-ckptN,straight-raw,straight-re\n\
     \  -widths LIST      issue widths (2 and 4 are the Table-I pairs)\n\
     \  -robs LIST        ROB entries; 'default' keeps the model value\n\
     \  -scheds LIST      scheduler entries; 'default' keeps the model value\n\
     \  -predictors LIST  gshare,tage\n\
     \  -ideal LIST       real,ideal (recovery model)\n\
     \  -workloads LIST   dhrystone,coremark,fib,iota,sort,quicksort,pointer_chase\n\
     \  -samples LIST     ';'-separated fidelity axis: exact and/or sampling\n\
     \                    specs like interval=1M,warmup=100k,every=4\n\
     \  -out FILE         aggregated output (default sweep.json)\n\
     \  -figures FILE     derived tables (default FIGURES.md; 'none' skips)\n\
     \  -cache-dir DIR    result cache root (default _sweep)\n\
     \  -timeout SEC      per-point budget before kill+retry (default 600)\n\
     \  -retries N        retries after a failure (default 1)\n\
     \  -checkpoint-every N  cycles between crash-recovery checkpoints\n\
     \                    (default 20000; 0 disables)\n\
     \  -expect-cached    fail (exit 3) if any point had to simulate\n\
     \  -no-stream        suppress the per-point JSONL stream on stdout\n\
     \  -list             print the expanded points and exit";
  exit 2

let split_list s = String.split_on_char ',' s |> List.filter (fun x -> x <> "")

let parse_machines s =
  List.map
    (fun m ->
       match Sweep.Grid.machine_of_label m with
       | Some m -> m
       | None ->
         Printf.eprintf "unknown machine %S\n" m;
         usage ())
    (split_list s)

let parse_ints what s =
  List.map
    (fun v ->
       match int_of_string_opt v with
       | Some n -> n
       | None ->
         Printf.eprintf "bad %s %S\n" what v;
         usage ())
    (split_list s)

let parse_opt_ints what s =
  List.map
    (fun v ->
       if v = "default" then None
       else
         match int_of_string_opt v with
         | Some n -> Some n
         | None ->
           Printf.eprintf "bad %s %S\n" what v;
           usage ())
    (split_list s)

let parse_predictors s =
  List.map
    (fun p ->
       match Params.predictor_of_name p with
       | Some p -> p
       | None ->
         Printf.eprintf "unknown predictor %S\n" p;
         usage ())
    (split_list s)

let parse_ideal s =
  List.map
    (function
      | "real" | "false" | "0" -> false
      | "ideal" | "true" | "1" -> true
      | v ->
        Printf.eprintf "bad recovery model %S (want real|ideal)\n" v;
        usage ())
    (split_list s)

let () =
  let procs = ref (Domain.recommended_domain_count ()) in
  let grid = ref "default" in
  let quick = ref false in
  let spec_override :
    (Sweep.Grid.spec -> Sweep.Grid.spec) list ref = ref [] in
  let out = ref "sweep.json" in
  let figures = ref "FIGURES.md" in
  let cache_dir = ref "_sweep" in
  let timeout = ref 600.0 in
  let retries = ref 1 in
  let checkpoint_every = ref 20_000 in
  let expect_cached = ref false in
  let stream = ref true in
  let list_only = ref false in
  let override f = spec_override := f :: !spec_override in
  let rec parse = function
    | [] -> ()
    | "-j" :: n :: rest ->
      (match int_of_string_opt n with
       | Some n when n >= 0 -> procs := n
       | _ -> usage ());
      parse rest
    | "-grid" :: g :: rest -> grid := g; parse rest
    | "-quick" :: rest -> quick := true; parse rest
    | "-machines" :: v :: rest ->
      let ms = parse_machines v in
      override (fun s -> { s with Sweep.Grid.machines = ms });
      parse rest
    | "-widths" :: v :: rest ->
      let ws = parse_ints "width" v in
      override (fun s -> { s with Sweep.Grid.widths = ws });
      parse rest
    | "-robs" :: v :: rest ->
      let rs = parse_opt_ints "rob size" v in
      override (fun s -> { s with Sweep.Grid.robs = rs });
      parse rest
    | "-scheds" :: v :: rest ->
      let ss = parse_opt_ints "scheduler size" v in
      override (fun s -> { s with Sweep.Grid.scheds = ss });
      parse rest
    | "-predictors" :: v :: rest ->
      let ps = parse_predictors v in
      override (fun s -> { s with Sweep.Grid.predictors = ps });
      parse rest
    | "-ideal" :: v :: rest ->
      let is = parse_ideal v in
      override (fun s -> { s with Sweep.Grid.ideal = is });
      parse rest
    | "-workloads" :: v :: rest ->
      let ws = split_list v in
      override (fun s -> { s with Sweep.Grid.workloads = ws });
      parse rest
    | "-samples" :: v :: rest ->
      let ss =
        String.split_on_char ';' v
        |> List.filter (fun x -> String.trim x <> "")
        |> List.map (fun x ->
            let x = String.trim x in
            if x = "exact" then None
            else
              try Some (Sample.Spec.parse x)
              with Sample.Spec.Parse_error m ->
                Printf.eprintf "bad sample spec %S: %s\n" x m;
                usage ())
      in
      if ss = [] then usage ();
      override (fun s -> { s with Sweep.Grid.samples = ss });
      parse rest
    | "-out" :: f :: rest -> out := f; parse rest
    | "-figures" :: f :: rest -> figures := f; parse rest
    | "-cache-dir" :: d :: rest -> cache_dir := d; parse rest
    | "-timeout" :: v :: rest ->
      (match float_of_string_opt v with
       | Some t when t > 0. -> timeout := t
       | _ -> usage ());
      parse rest
    | "-retries" :: n :: rest ->
      (match int_of_string_opt n with
       | Some n when n >= 0 -> retries := n
       | _ -> usage ());
      parse rest
    | "-checkpoint-every" :: n :: rest ->
      (match int_of_string_opt n with
       | Some n when n >= 0 -> checkpoint_every := n
       | _ -> usage ());
      parse rest
    | "-expect-cached" :: rest -> expect_cached := true; parse rest
    | "-no-stream" :: rest -> stream := false; parse rest
    | "-list" :: rest -> list_only := true; parse rest
    | ("-help" | "--help") :: _ -> usage ()
    | arg :: _ ->
      Printf.eprintf "unknown argument %S\n" arg;
      usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let base_spec =
    match !grid with
    | "default" -> Sweep.Grid.default ~quick:!quick
    | "smoke" -> Sweep.Grid.smoke
    | "golden" -> Sweep.Grid.golden
    | g ->
      Printf.eprintf "unknown grid %S (default|smoke|golden)\n" g;
      usage ()
  in
  (* presets carry their own quick flag; -quick forces it on *)
  let base_spec =
    if !quick then { base_spec with Sweep.Grid.quick = true } else base_spec
  in
  let spec =
    List.fold_left (fun s f -> f s) base_spec (List.rev !spec_override)
  in
  let points =
    try Sweep.Grid.expand spec
    with Invalid_argument m ->
      prerr_endline m;
      exit 2
  in
  if !list_only then begin
    List.iter
      (fun (pt : Sweep.Grid.point) ->
         Printf.printf "%-28s %-14s %-14s %s\n"
           pt.Sweep.Grid.params.Params.name
           (Straight_core.Experiment.target_label pt.Sweep.Grid.target)
           pt.Sweep.Grid.workload.Workloads.name
           (Sweep.Store.key pt))
      points;
    Printf.printf "%d points\n" (List.length points);
    exit 0
  end;
  Printf.eprintf "sweep: %d points, %d worker(s), cache %s\n%!"
    (List.length points) !procs !cache_dir;
  let on_record r =
    if !stream then
      print_endline (J.to_string ~indent:false (Sweep.Runner.to_json r))
  in
  let on_retry (pt : Sweep.Grid.point) ~attempt ~backoff reason =
    if !stream then
      print_endline
        (J.to_string ~indent:false
           (J.Obj
              [ ("event", J.Str "retry");
                ("model", J.Str pt.Sweep.Grid.params.Params.name);
                ("workload", J.Str pt.Sweep.Grid.workload.Workloads.name);
                ("target",
                 J.Str
                   (Straight_core.Experiment.target_label pt.Sweep.Grid.target));
                ("attempt", J.Int attempt);
                ("backoff_seconds", J.Float backoff);
                ("reason", J.Str reason) ]));
    Printf.eprintf "sweep: retrying %s/%s (attempt %d, backoff %.2fs): %s\n%!"
      pt.Sweep.Grid.params.Params.name pt.Sweep.Grid.workload.Workloads.name
      attempt backoff reason
  in
  (* OCaml's Sys.sig* numbers are runtime-internal negatives; map the
     two we trap back to the POSIX values for the 128+N exit code. *)
  let posix_signal s =
    if s = Sys.sigint then 2 else if s = Sys.sigterm then 15 else 15
  in
  let records, summary =
    try
      Sweep.Driver.sweep ~procs:!procs ~timeout:!timeout ~retries:!retries
        ~cache_dir:!cache_dir ~checkpoint_every:!checkpoint_every ~on_record
        ~on_retry spec
    with Sweep.Pool.Interrupted s ->
      let n = posix_signal s in
      Printf.eprintf
        "sweep: interrupted by signal %d; workers reaped, completed points \
         cached\n%!" n;
      exit (128 + n)
  in
  let doc = Sweep.Driver.to_json spec summary records in
  (match Filename.dirname !out with
   | "" | "." -> ()
   | d -> if not (Sys.file_exists d) then Unix.mkdir d 0o755);
  Out_channel.with_open_text !out (fun oc ->
      output_string oc (J.to_string doc));
  if !figures <> "none" then
    Out_channel.with_open_text !figures (fun oc ->
        output_string oc (Sweep.Figures.render records));
  Printf.eprintf
    "sweep: %d total, %d simulated, %d cached, %d failed in %.1fs -> %s%s\n%!"
    summary.Sweep.Driver.total summary.Sweep.Driver.executed
    summary.Sweep.Driver.cached summary.Sweep.Driver.failed
    summary.Sweep.Driver.wall_seconds !out
    (if !figures <> "none" then ", " ^ !figures else "");
  if summary.Sweep.Driver.failed > 0 then exit 1;
  if !expect_cached && summary.Sweep.Driver.executed > 0 then begin
    Printf.eprintf
      "sweep: -expect-cached but %d point(s) had to simulate\n%!"
      summary.Sweep.Driver.executed;
    exit 3
  end
