(* straightd-client: one-shot requests and a load generator for the
   resident simulation service.

     dune exec bin/straightd_client.exe -- -socket PATH [options]

   One-shot mode builds a single straightd-proto/1 request from flags
   (or ships -json verbatim), streams its event lines to stderr, prints
   the terminal reply on stdout, and exits 0 on "result" or with the
   Diag exit code of the reply's error code.

   Load-generator mode (-bench) forks -clients N concurrent client
   processes, each sending -requests M requests drawn round-robin from
   -mix, and reports requests/sec, p50/p95 latency, and cache hit rate
   as straightd-bench/1 JSON on stdout (or -out FILE) — the artifact CI
   uploads from the daemon-smoke job (see EXPERIMENTS.md).

   Exit codes: 0 ok; 1 bench saw request errors; 2 usage; 10 cannot
   reach the daemon; otherwise the error reply's Diag exit code. *)

module J = Ooo_common.Stats.Json

let usage () =
  prerr_endline
    "usage: straightd-client -socket PATH [options]\n\
     one-shot:\n\
     \  -op OP          compile|simulate|sample|sweep|status|shutdown\n\
     \                  (default status)\n\
     \  -workload W     workload name (compile/simulate/sample)\n\
     \  -machine M      ss|ss-ckptN|straight-raw|straight-re (default ss)\n\
     \  -width N        issue width (default 2)\n\
     \  -predictor P    gshare|tage (default gshare)\n\
     \  -ideal          idealized recovery\n\
     \  -sample SPEC    sampling spec (op sample), e.g. interval=2k,every=2\n\
     \  -target T       compile target: ss|straight-raw|straight-re\n\
     \  -grid G         sweep preset: default|smoke|golden (default smoke)\n\
     \  -machines LIST  sweep machine override (comma list)\n\
     \  -widths LIST    sweep width override (comma list)\n\
     \  -workloads LIST sweep workload override (comma list)\n\
     \  -no-quick       full iteration counts (default quick)\n\
     \  -json REQ       ship REQ verbatim instead of building from flags\n\
     \  -quiet          do not echo event lines to stderr\n\
     load generator:\n\
     \  -bench          run the load generator and print straightd-bench/1\n\
     \  -clients N      concurrent client processes (default 8)\n\
     \  -requests M     requests per client (default 16)\n\
     \  -mix LIST       comma list of op[:workload[:machine]] items\n\
     \                  (default simulate:fib,simulate:iota,status)\n\
     \  -out FILE       write the bench report to FILE too";
  exit 2

(* ---------- one-shot ---------- *)

let one_shot ~socket ~quiet (req : J.t) =
  let cl = Service.Client.connect socket in
  let on_event j =
    if not quiet then Printf.eprintf "%s\n%!" (J.to_string ~indent:false j)
  in
  let reply = Service.Client.request ~on_event cl req in
  Service.Client.close cl;
  print_endline (J.to_string reply);
  match J.get_string (J.member "type" reply) with
  | Some "result" -> exit 0
  | _ ->
    (match J.get_string (J.member "code" reply) with
     | Some name ->
       let code =
         (* map the reply's code name back to an exit code *)
         let all =
           [ Diag.Lex_error; Diag.Parse_error; Diag.Lower_error;
             Diag.Invalid_ir; Diag.Interp_error; Diag.Codegen_error;
             Diag.Encode_error; Diag.Asm_error; Diag.Exec_error;
             Diag.Mem_unaligned; Diag.Mem_mmio; Diag.Fuel_exhausted;
             Diag.Sim_deadlock; Diag.Checker_divergence; Diag.Lint_finding;
             Diag.Config_error; Diag.Snapshot_error; Diag.Proto_error;
             Diag.Service_error ]
         in
         match List.find_opt (fun c -> Diag.code_name c = name) all with
         | Some c -> Diag.exit_code c
         | None -> 1
       in
       exit code
     | None -> exit 1)

(* ---------- load generator ---------- *)

type mix_item = { mi_op : string; mi_workload : string; mi_machine : string }

let parse_mix s =
  let items =
    String.split_on_char ',' s |> List.filter (fun x -> x <> "")
  in
  if items = [] then usage ();
  List.map
    (fun item ->
       match String.split_on_char ':' item with
       | [ op ] -> { mi_op = op; mi_workload = "fib"; mi_machine = "ss" }
       | [ op; w ] -> { mi_op = op; mi_workload = w; mi_machine = "ss" }
       | [ op; w; m ] -> { mi_op = op; mi_workload = w; mi_machine = m }
       | _ -> usage ())
    items

let mix_request (mi : mix_item) : J.t =
  match mi.mi_op with
  | "status" -> J.Obj [ ("op", J.Str "status") ]
  | "compile" ->
    J.Obj
      [ ("op", J.Str "compile");
        ("workload", J.Str mi.mi_workload);
        ("target", J.Str mi.mi_machine);
        ("quick", J.Bool true) ]
  | "simulate" ->
    J.Obj
      [ ("op", J.Str "simulate");
        ("workload", J.Str mi.mi_workload);
        ("machine", J.Str mi.mi_machine);
        ("quick", J.Bool true) ]
  | "sample" ->
    J.Obj
      [ ("op", J.Str "sample");
        ("workload", J.Str mi.mi_workload);
        ("machine", J.Str mi.mi_machine);
        ("sample", J.Str "interval=2k,warmup=500,every=2");
        ("quick", J.Bool true) ]
  | "sweep" ->
    J.Obj [ ("op", J.Str "sweep"); ("grid", J.Str "smoke") ]
  | op ->
    Printf.eprintf "straightd-client: unknown mix op %S\n%!" op;
    usage ()

(* one forked client: M requests round-robin over the mix; per-request
   latency, cached flag, and error count land in [out] as one JSON
   line the parent aggregates *)
let bench_client ~socket ~requests ~(mix : mix_item list) ~seq out =
  let cl = Service.Client.connect socket in
  let n_mix = List.length mix in
  let lats = ref [] in
  let cached = ref 0 in
  let results = ref 0 in
  let memoizable = ref 0 in
  let errors = ref 0 in
  for i = 0 to requests - 1 do
    let mi = List.nth mix ((seq + i) mod n_mix) in
    let req =
      match mix_request mi with
      | J.Obj fields ->
        J.Obj (("id", J.Str (Printf.sprintf "c%d-%d" seq i)) :: fields)
      | j -> j
    in
    let t0 = Unix.gettimeofday () in
    (match Service.Client.request cl req with
     | reply ->
       lats := (Unix.gettimeofday () -. t0) :: !lats;
       (match J.get_string (J.member "type" reply) with
        | Some "result" ->
          incr results;
          (* status/shutdown replies are never memoized; the hit rate
             only means something over the ops the store can serve *)
          (match J.get_string (J.member "op" reply) with
           | Some ("status" | "shutdown") -> ()
           | _ ->
             incr memoizable;
             (match J.member "cached" reply with
              | Some (J.Bool true) -> incr cached
              | _ -> ()))
        | _ -> incr errors)
     | exception Diag.Error _ -> incr errors)
  done;
  Service.Client.close cl;
  let doc =
    J.Obj
      [ ("latencies", J.List (List.rev_map (fun l -> J.Float l) !lats));
        ("results", J.Int !results);
        ("memoizable", J.Int !memoizable);
        ("cached", J.Int !cached);
        ("errors", J.Int !errors) ]
  in
  let oc = open_out out in
  output_string oc (J.to_string ~indent:false doc);
  output_char oc '\n';
  close_out oc

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.0
  | n ->
    let i = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) i))

let bench ~socket ~clients ~requests ~mix_str ~out =
  let mix = parse_mix mix_str in
  (* fail fast (exit 10) if nothing is listening before forking a fleet *)
  Service.Client.close (Service.Client.connect socket);
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "straightd-bench.%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let t0 = Unix.gettimeofday () in
  let pids =
    List.init clients (fun seq ->
        let outfile = Filename.concat dir (Printf.sprintf "c%d.json" seq) in
        match Unix.fork () with
        | 0 ->
          (match bench_client ~socket ~requests ~mix ~seq outfile with
           | () -> Unix._exit 0
           | exception _ -> Unix._exit 1)
        | pid -> pid)
  in
  let spawn_failures =
    List.fold_left
      (fun acc pid ->
         match Unix.waitpid [] pid with
         | _, Unix.WEXITED 0 -> acc
         | _ -> acc + 1)
      0 pids
  in
  let wall = Unix.gettimeofday () -. t0 in
  let lats = ref [] in
  let results = ref 0 in
  let memoizable = ref 0 in
  let cached = ref 0 in
  let errors = ref (spawn_failures * requests) in
  List.iteri
    (fun seq _ ->
       let file = Filename.concat dir (Printf.sprintf "c%d.json" seq) in
       match
         let ic = open_in file in
         let line = input_line ic in
         close_in ic;
         J.of_string line
       with
       | doc ->
         (match J.member "latencies" doc with
          | Some (J.List ls) ->
            List.iter
              (function J.Float l -> lats := l :: !lats | _ -> ())
              ls
          | _ -> ());
         results := !results + Option.value ~default:0 (J.get_int (J.member "results" doc));
         memoizable := !memoizable + Option.value ~default:0 (J.get_int (J.member "memoizable" doc));
         cached := !cached + Option.value ~default:0 (J.get_int (J.member "cached" doc));
         errors := !errors + Option.value ~default:0 (J.get_int (J.member "errors" doc))
       | exception _ -> ())
    pids;
  (try
     Array.iter
       (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
       (Sys.readdir dir);
     Unix.rmdir dir
   with _ -> ());
  let sorted = Array.of_list !lats in
  Array.sort compare sorted;
  let total = (clients * requests) - (spawn_failures * requests) in
  let rps = if wall > 0.0 then float_of_int total /. wall else 0.0 in
  let hit_rate =
    if !memoizable > 0 then float_of_int !cached /. float_of_int !memoizable
    else 0.0
  in
  let report =
    J.Obj
      [ ("schema", J.Str Service.Proto.bench_schema);
        ("socket", J.Str socket);
        ("mix", J.Str mix_str);
        ("clients", J.Int clients);
        ("requests_per_client", J.Int requests);
        ("total_requests", J.Int total);
        ("results", J.Int !results);
        ("errors", J.Int !errors);
        ("memoizable", J.Int !memoizable);
        ("cache_hits", J.Int !cached);
        ("cache_hit_rate", J.Float hit_rate);
        ("wall_seconds", J.Float wall);
        ("requests_per_second", J.Float rps);
        ("latency_p50_ms", J.Float (1000.0 *. percentile sorted 0.50));
        ("latency_p95_ms", J.Float (1000.0 *. percentile sorted 0.95));
        ("latency_max_ms", J.Float (1000.0 *. percentile sorted 1.0)) ]
  in
  let text = J.to_string report in
  print_endline text;
  (match out with
   | None -> ()
   | Some f ->
     let oc = open_out f in
     output_string oc text;
     output_char oc '\n';
     close_out oc);
  exit (if !errors > 0 then 1 else 0)

(* ---------- CLI ---------- *)

let () =
  let socket = ref "straightd.sock" in
  let op = ref "status" in
  let workload = ref None in
  let machine = ref "ss" in
  let width = ref 2 in
  let predictor = ref "gshare" in
  let ideal = ref false in
  let sample = ref None in
  let target = ref "straight-re" in
  let grid = ref "smoke" in
  let machines = ref None in
  let widths = ref None in
  let workloads = ref None in
  let quick = ref true in
  let raw = ref None in
  let quiet = ref false in
  let do_bench = ref false in
  let clients = ref 8 in
  let requests = ref 16 in
  let mix = ref "simulate:fib,simulate:iota,status" in
  let out = ref None in
  let rec parse = function
    | [] -> ()
    | "-socket" :: v :: rest -> socket := v; parse rest
    | "-op" :: v :: rest -> op := v; parse rest
    | "-workload" :: v :: rest -> workload := Some v; parse rest
    | "-machine" :: v :: rest -> machine := v; parse rest
    | "-width" :: v :: rest ->
      (match int_of_string_opt v with
       | Some n when n > 0 -> width := n
       | _ -> usage ());
      parse rest
    | "-predictor" :: v :: rest -> predictor := v; parse rest
    | "-ideal" :: rest -> ideal := true; parse rest
    | "-sample" :: v :: rest -> sample := Some v; parse rest
    | "-target" :: v :: rest -> target := v; parse rest
    | "-grid" :: v :: rest -> grid := v; parse rest
    | "-machines" :: v :: rest -> machines := Some v; parse rest
    | "-widths" :: v :: rest -> widths := Some v; parse rest
    | "-workloads" :: v :: rest -> workloads := Some v; parse rest
    | "-no-quick" :: rest -> quick := false; parse rest
    | "-json" :: v :: rest -> raw := Some v; parse rest
    | "-quiet" :: rest -> quiet := true; parse rest
    | "-bench" :: rest -> do_bench := true; parse rest
    | "-clients" :: v :: rest ->
      (match int_of_string_opt v with
       | Some n when n > 0 -> clients := n
       | _ -> usage ());
      parse rest
    | "-requests" :: v :: rest ->
      (match int_of_string_opt v with
       | Some n when n > 0 -> requests := n
       | _ -> usage ());
      parse rest
    | "-mix" :: v :: rest -> mix := v; parse rest
    | "-out" :: v :: rest -> out := Some v; parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  try
    if !do_bench then
      bench ~socket:!socket ~clients:!clients ~requests:!requests
        ~mix_str:!mix ~out:!out
    else begin
      let req =
        match !raw with
        | Some line ->
          (match J.of_string line with
           | j -> j
           | exception J.Parse_error m ->
             Printf.eprintf "straightd-client: bad -json: %s\n%!" m;
             exit 2)
        | None ->
          let need_workload () =
            match !workload with
            | Some w -> w
            | None ->
              Printf.eprintf "straightd-client: -op %s needs -workload\n%!"
                !op;
              exit 2
          in
          (match !op with
           | "status" -> J.Obj [ ("op", J.Str "status") ]
           | "shutdown" -> J.Obj [ ("op", J.Str "shutdown") ]
           | "compile" ->
             J.Obj
               [ ("op", J.Str "compile");
                 ("workload", J.Str (need_workload ()));
                 ("target", J.Str !target);
                 ("quick", J.Bool !quick) ]
           | "simulate" | "sample" ->
             J.Obj
               ([ ("op", J.Str !op);
                  ("workload", J.Str (need_workload ()));
                  ("machine", J.Str !machine);
                  ("width", J.Int !width);
                  ("predictor", J.Str !predictor);
                  ("ideal", J.Bool !ideal);
                  ("quick", J.Bool !quick) ]
                @ (match !sample with
                   | None -> []
                   | Some s -> [ ("sample", J.Str s) ]))
           | "sweep" ->
             J.Obj
               ([ ("op", J.Str "sweep");
                  ("grid", J.Str !grid);
                  ("quick", J.Bool !quick) ]
                @ (match !machines with
                   | None -> []
                   | Some s -> [ ("machines", J.Str s) ])
                @ (match !widths with
                   | None -> []
                   | Some s -> [ ("widths", J.Str s) ])
                @ (match !workloads with
                   | None -> []
                   | Some s -> [ ("workloads", J.Str s) ]))
           | op ->
             Printf.eprintf "straightd-client: unknown op %S\n%!" op;
             usage ())
      in
      one_shot ~socket:!socket ~quiet:!quiet req
    end
  with Diag.Error d ->
    Printf.eprintf "straightd-client: %s\n%!" (Diag.to_string d);
    exit (Diag.exit_code d.Diag.code)
