(* White-box tests of the STRAIGHT back end: distance bounds on every
   generated program, frame/tail structure, RE+ mechanisms (localization,
   return-address spill, argument-in-position calls), memory tails and
   pressure spilling under tight maximum distances, and the IR
   optimization levels. *)

module Isa = Straight_isa.Isa
module Ir = Ssa_ir.Ir
module CC = Straight_cc.Codegen

let compile_items ?(opt = Ssa_ir.Passes.O2) ~level ~max_dist src =
  let p = Minic.Lower.compile src in
  List.iter (Ssa_ir.Passes.optimize_at opt) p.Ir.funcs;
  CC.compile ~config:{ CC.max_dist; level } p

let insns items =
  List.filter_map
    (function Assembler.Asm.Insn i -> Some i | _ -> None)
    items

let run_items items =
  let image = Assembler.Asm.Straight.assemble ~entry:"_start" items in
  (Iss.Straight_iss.run image).Iss.Trace.output

(* every source distance of every generated instruction respects the
   configured bound, on real workloads and tight bounds *)
let test_distance_bounds_workloads () =
  List.iter
    (fun (w : Workloads.t) ->
       List.iter
         (fun max_dist ->
            List.iter
              (fun level ->
                 let items =
                   compile_items ~level ~max_dist w.Workloads.source
                 in
                 List.iter
                   (fun insn ->
                      List.iter
                        (fun d ->
                           if d > max_dist then
                             Alcotest.failf
                               "%s maxdist=%d: %s uses distance %d"
                               w.Workloads.name max_dist
                               (Isa.to_string_sym
                                  (Isa.map_label (fun _ -> "L") insn))
                               d)
                        (Isa.sources insn))
                   (insns items))
              [ CC.Raw; CC.Re_plus ])
         [ 21; 31; 63 ])
    [ Workloads.coremark ~iterations:1 ();
      Workloads.dhrystone ~iterations:2 ();
      Workloads.quicksort ~n:24 () ]

(* RE+ spills the return address exactly once per function with merges:
   functions containing loops must not RMOV-relay the JAL value *)
let test_retaddr_spilled_in_loops () =
  let src = (Workloads.iota ~n:16 ()).Workloads.source in
  let items = compile_items ~level:CC.Re_plus ~max_dist:31 src in
  (* iota has a loop; its code must contain a prologue store and an
     epilogue load adjacent to the JR *)
  let text = Assembler.Asm.Straight.program_to_string items in
  Alcotest.(check bool) "has SPADD frame" true
    (String.length text > 0
     &&
     let contains needle hay =
       let nl = String.length needle and hl = String.length hay in
       let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
       go 0
     in
     contains "SPADD -" text && contains "JR" text)

(* localization: a global address used in two blocks is re-materialized in
   each rather than carried through frames *)
let test_localization () =
  let src = {|
int g[8];
int main() {
  int s = 0;
  for (int i = 0; i < 8; i++) {
    g[i] = i;
    s += g[i];
  }
  putint(s);
}
|} in
  let items = compile_items ~level:CC.Re_plus ~max_dist:31 src in
  (* correctness (the differential suites cover this too) *)
  Alcotest.(check string) "output" "28\n" (run_items items);
  (* the loop body should re-materialize &g (LUI) instead of relaying it:
     at least two LUI of the data base must exist *)
  let luis =
    List.length
      (List.filter (function Isa.Lui _ -> true | _ -> false) (insns items))
  in
  Alcotest.(check bool) (Printf.sprintf "%d LUIs (localized)" luis) true
    (luis >= 2)

(* argument-in-position: a call whose argument is produced immediately
   before it needs no RMOV padding *)
let test_arg_in_position () =
  let src = {|
int f(int x) { return x + 1; }
int main() { putint(f(41)); }
|} in
  let items = compile_items ~level:CC.Re_plus ~max_dist:31 src in
  Alcotest.(check string) "output" "42\n" (run_items items);
  let re_rmovs =
    List.length
      (List.filter (function Isa.Rmov _ -> true | _ -> false) (insns items))
  in
  let raw_items = compile_items ~level:CC.Raw ~max_dist:31 src in
  let raw_rmovs =
    List.length
      (List.filter (function Isa.Rmov _ -> true | _ -> false) (insns raw_items))
  in
  Alcotest.(check bool)
    (Printf.sprintf "RE+ %d RMOVs <= RAW %d RMOVs" re_rmovs raw_rmovs)
    true (re_rmovs <= raw_rmovs)

(* memory tails: a merge with many live values compiles and runs at a
   maximum distance too small for a register tail *)
let test_memory_tail_pressure () =
  let src = {|
int main() {
  int a = 1; int b = 2; int c = 3; int d = 4; int e = 5; int f = 6;
  int g = 7; int h = 8; int i = 9; int j = 10; int k = 11; int l = 12;
  int s = 0;
  for (int t = 0; t < 10; t++) {
    s += a + b + c + d + e + f + g + h + i + j + k + l;
    if (s > 300) s -= (a * b + c * d + e * f + g * h + i * j + k * l);
  }
  putint(s + a - b + c - d + e - f + g - h + i - j + k - l);
}
|} in
  let reference =
    let p = Minic.Lower.compile src in
    List.iter Ssa_ir.Passes.optimize p.Ir.funcs;
    fst (Ssa_ir.Interp.run p)
  in
  List.iter
    (fun max_dist ->
       let items = compile_items ~level:CC.Re_plus ~max_dist src in
       Alcotest.(check string)
         (Printf.sprintf "maxdist %d output" max_dist)
         reference (run_items items);
       let raw = compile_items ~level:CC.Raw ~max_dist src in
       Alcotest.(check string)
         (Printf.sprintf "maxdist %d raw output" max_dist)
         reference (run_items raw))
    [ 21; 25; 31 ]

(* SPADD placeholders must never leak into generated code *)
let test_no_placeholder_spadds () =
  List.iter
    (fun (w : Workloads.t) ->
       let items = compile_items ~level:CC.Re_plus ~max_dist:31 w.Workloads.source in
       List.iter
         (fun insn ->
            match insn with
            | Isa.Spadd i ->
              Alcotest.(check bool)
                (Printf.sprintf "spadd %d sane" i)
                true (abs i < 1_000_000)
            | _ -> ())
         (insns items))
    [ Workloads.coremark ~iterations:1 (); Workloads.fib ~n:8 () ]

(* optimization levels are semantically transparent and monotone in code
   quality for the baseline *)
let test_opt_levels () =
  let src = (Workloads.coremark ~iterations:1 ()).Workloads.source in
  let out_at opt =
    let p = Minic.Lower.compile src in
    List.iter (Ssa_ir.Passes.optimize_at opt) p.Ir.funcs;
    fst (Ssa_ir.Interp.run p)
  in
  let o0 = out_at Ssa_ir.Passes.O0 in
  Alcotest.(check string) "O1 = O0" o0 (out_at Ssa_ir.Passes.O1);
  Alcotest.(check string) "O2 = O0" o0 (out_at Ssa_ir.Passes.O2);
  (* compiled-output equivalence at O0 as well *)
  let items = compile_items ~opt:Ssa_ir.Passes.O0 ~level:CC.Re_plus ~max_dist:31 src in
  Alcotest.(check string) "straight at O0" o0 (run_items items)

(* ST short-form selection at the format boundaries.  The short form
   encodes a signed 6-bit *word* offset, so it requires BOTH the byte
   range [-128, 124] AND word alignment; three codegen sites used to
   test the range only, committing to an ST the encoder then rejected.
   MiniC always scales indices by 4, so the boundary/unaligned offsets
   only arise from hand-built IR. *)
let test_st_boundary_offsets () =
  let open Ir in
  (* distinct (base displacement, store offset) pairs; each resulting
     byte address inside the 80-word buffer must be unique *)
  let cases =
    [ (0, 0); (0, 124); (0, 128);            (* short max, first long *)
      (160, -128); (160, -132); (160, -4);   (* short min, first long *)
      (160, 120); (160, 124); (160, 128);
      (2, 2) ]                               (* unaligned offset, aligned sum *)
  in
  let next = ref 0 in
  let fresh () = let v = !next in next := v + 1; v in
  let insts = ref [] in
  let add i = let v = fresh () in insts := (v, i) :: !insts; v in
  let base0 = add (Global_addr "buf") in
  let bases = Hashtbl.create 4 in
  Hashtbl.replace bases 0 base0;
  let base_for disp =
    match Hashtbl.find_opt bases disp with
    | Some v -> v
    | None ->
      let v = add (Bin (Add, Val base0, Const (Int32.of_int disp))) in
      Hashtbl.replace bases disp v;
      v
  in
  let expected =
    List.map
      (fun (disp, off) ->
         let b = base_for disp in
         let addr = disp + off in
         let value = Int32.of_int (1000 + addr) in
         ignore (add (Store (Const value, Val b, off)));
         (addr, value))
      cases
  in
  let main =
    { name = "main"; nparams = 0; nvalues = !next;
      blocks = [ { bid = 0; insts = List.rev !insts; term = Ret (Const 0l) } ];
      frame_bytes = 0 }
  in
  let words = List.init 80 (fun _ -> 0l) in
  List.iter
    (fun (level, max_dist) ->
       let p =
         { funcs = [ main ]; data = [ { sym = "buf"; words; extra_bytes = 0 } ] }
       in
       let image =
         CC.compile_to_image ~config:{ CC.max_dist; level } p
       in
       (* the generated image must also satisfy the static verifier *)
       (match Straight_lint.Lint.lint ~max_dist image with
        | [] -> ()
        | f :: _ ->
          Alcotest.failf "lint: %s"
            (Format.asprintf "%a" Straight_lint.Lint.pp_finding f));
       let session = Iss.Straight_iss.start image in
       Iss.Straight_iss.run_session session;
       ignore (Iss.Straight_iss.finish session);
       let mem = Iss.Straight_iss.session_memory session in
       let buf_addr =
         match Assembler.Image.find_symbol image "buf" with
         | Some a -> a
         | None -> Alcotest.fail "no buf symbol"
       in
       List.iter
         (fun (addr, value) ->
            Alcotest.(check int32)
              (Printf.sprintf "%s maxdist=%d buf+%d"
                 (match level with CC.Raw -> "raw" | CC.Re_plus -> "re+")
                 max_dist addr)
              value
              (Iss.Memory.read mem (buf_addr + addr)))
         expected)
    [ (CC.Re_plus, 1023); (CC.Raw, 1023); (CC.Re_plus, 31); (CC.Raw, 31) ]

(* the static RMOV share shrinks monotonically RAW -> RE+ on all workloads *)
let test_rmov_monotone () =
  List.iter
    (fun (w : Workloads.t) ->
       let stats level =
         CC.stats_of_items (compile_items ~level ~max_dist:31 w.Workloads.source)
       in
       let raw = stats CC.Raw in
       let re = stats CC.Re_plus in
       Alcotest.(check bool)
         (Printf.sprintf "%s: RE+ rmov %d <= RAW rmov %d" w.Workloads.name
            re.CC.rmov raw.CC.rmov)
         true
         (re.CC.rmov <= raw.CC.rmov))
    [ Workloads.coremark ~iterations:1 ();
      Workloads.dhrystone ~iterations:2 ();
      Workloads.sort ~n:16 ();
      Workloads.quicksort ~n:24 () ]

let suite =
  [ ("distance bounds on workloads", `Slow, test_distance_bounds_workloads);
    ("retaddr spilled in loops", `Quick, test_retaddr_spilled_in_loops);
    ("localization", `Quick, test_localization);
    ("argument in position", `Quick, test_arg_in_position);
    ("memory-tail pressure", `Quick, test_memory_tail_pressure);
    ("no placeholder spadds", `Quick, test_no_placeholder_spadds);
    ("optimization levels", `Quick, test_opt_levels);
    ("st boundary offsets", `Quick, test_st_boundary_offsets);
    ("rmov monotone RAW->RE+", `Quick, test_rmov_monotone) ]

let () = Alcotest.run "straight_cc" [ ("straight_cc", suite) ]
