(* Property tests for the CFG analyses the compilers rely on: dominators
   (checked against the set-based definition on random CFGs), natural
   loops, liveness, and whole-image disassembly round-trips. *)

module Ir = Ssa_ir.Ir
module Analysis = Ssa_ir.Analysis

(* Build a function whose CFG has [n] blocks with the given edges (block 0
   is the entry).  Blocks carry no instructions; terminators encode the
   out-edges (0 = Ret, 1 = Br, 2 = Cond_br on a dummy constant). *)
let func_of_edges n (edges : (int * int) list) : Ir.func =
  let succs = Array.make n [] in
  List.iter
    (fun (a, b) ->
       if a < n && b < n && List.length succs.(a) < 2
          && not (List.mem b succs.(a))
       then succs.(a) <- succs.(a) @ [ b ])
    edges;
  let blocks =
    List.init n (fun i ->
        let term =
          match succs.(i) with
          | [] -> Ir.Ret (Ir.Const 0l)
          | [ t ] -> Ir.Br t
          | [ t1; t2 ] -> Ir.Cond_br (Ir.Const 1l, t1, t2)
          | _ -> assert false
        in
        { Ir.bid = i; insts = []; term })
  in
  { Ir.name = "cfg"; nparams = 0; nvalues = 0; blocks; frame_bytes = 0 }

(* Reference dominance: a dominates b iff every path from the entry to b
   passes through a — equivalently, b is unreachable when a is removed. *)
let reference_dominates (cfg : Analysis.cfg) a b =
  if a = b then true
  else begin
    let n = Array.length cfg.Analysis.blocks in
    let reach = Array.make n false in
    let rec dfs i =
      if (not reach.(i)) && i <> a then begin
        reach.(i) <- true;
        List.iter dfs cfg.Analysis.succs.(i)
      end
    in
    if a <> 0 then dfs 0;
    not reach.(b)
  end

let gen_cfg : (int * (int * int) list) QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* n = int_range 2 9 in
  let* extra = list_size (int_range 0 14) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) in
  (* a spine keeps most blocks reachable *)
  let spine = List.init (n - 1) (fun i -> (i, i + 1)) in
  return (n, spine @ extra)

let prop_dominators =
  QCheck2.Test.make ~count:300 ~name:"idom matches set-based dominance"
    ~print:(fun (n, es) ->
        Printf.sprintf "n=%d edges=[%s]" n
          (String.concat ";"
             (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) es)))
    gen_cfg
    (fun (n, edges) ->
       let f = func_of_edges n edges in
       let cfg = Analysis.build f in
       let idom = Analysis.idom cfg in
       let m = Array.length cfg.Analysis.blocks in
       let ok = ref true in
       for a = 0 to m - 1 do
         for b = 0 to m - 1 do
           if Analysis.dominates idom a b <> reference_dominates cfg a b then
             ok := false
         done
       done;
       !ok)

let prop_loops_have_back_edges =
  QCheck2.Test.make ~count:300 ~name:"every natural loop has its back edge"
    gen_cfg
    (fun (n, edges) ->
       let f = func_of_edges n edges in
       let cfg = Analysis.build f in
       let idom = Analysis.idom cfg in
       let loops = Analysis.natural_loops cfg idom in
       List.for_all
         (fun (l : Analysis.loop) ->
            (* the header is in the body, the body is dominated by the
               header, and some body block branches back to the header *)
            Analysis.IntSet.mem l.Analysis.header l.Analysis.body
            && Analysis.IntSet.for_all
              (fun b -> Analysis.dominates idom l.Analysis.header b)
              l.Analysis.body
            && Analysis.IntSet.exists
              (fun b -> List.mem l.Analysis.header cfg.Analysis.succs.(b))
              l.Analysis.body)
         loops)

let prop_entry_dominates_all =
  QCheck2.Test.make ~count:200 ~name:"entry dominates every reachable block"
    gen_cfg
    (fun (n, edges) ->
       let f = func_of_edges n edges in
       let cfg = Analysis.build f in
       let idom = Analysis.idom cfg in
       let ok = ref true in
       Array.iteri
         (fun i _ -> if not (Analysis.dominates idom 0 i) then ok := false)
         cfg.Analysis.blocks;
       !ok)

(* liveness sanity on a concrete diamond *)
let test_liveness_diamond () =
  let f = Minic.Lower.compile {|
int main() {
  int a = 40;
  int b = 2;
  int c;
  if (a > b) c = a + b; else c = a - b;
  putint(c);
}
|} in
  let main = List.find (fun g -> g.Ir.name = "main") f.Ir.funcs in
  Ssa_ir.Passes.optimize main;
  ignore (Ssa_ir.Passes.remove_unreachable main);
  let cfg = Analysis.build main in
  let lv = Analysis.liveness cfg in
  (* the entry block's live-in must be empty: everything is defined inside *)
  Alcotest.(check bool) "entry live-in empty" true
    (Analysis.IntSet.is_empty lv.Analysis.live_in.(0))

(* whole-image disassembly round trip for compiled programs: every word
   decodes, and re-encoding the decoded instruction gives the same word *)
let test_disassembly_roundtrip () =
  let src = (Workloads.coremark ~iterations:1 ()).Workloads.source in
  let prog = Minic.Lower.compile src in
  List.iter Ssa_ir.Passes.optimize prog.Ir.funcs;
  let simage =
    Straight_cc.Codegen.compile_to_image
      ~config:{ Straight_cc.Codegen.max_dist = 31;
                level = Straight_cc.Codegen.Re_plus }
      prog
  in
  Array.iter
    (fun w ->
       match Straight_isa.Encoding.decode w with
       | None -> Alcotest.failf "illegal straight word %08lx" w
       | Some insn ->
         Alcotest.(check int32) "straight re-encode" w
           (Straight_isa.Encoding.encode insn))
    simage.Assembler.Image.text;
  let prog2 = Minic.Lower.compile src in
  List.iter Ssa_ir.Passes.optimize prog2.Ir.funcs;
  let rimage = Riscv_cc.Codegen.compile_to_image prog2 in
  Array.iter
    (fun w ->
       match Riscv_isa.Encoding.decode w with
       | None -> Alcotest.failf "illegal riscv word %08lx" w
       | Some insn ->
         Alcotest.(check int32) "riscv re-encode" w
           (Riscv_isa.Encoding.encode insn))
    rimage.Assembler.Image.text;
  (* the textual disassemblers must render every instruction *)
  let contains ~needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  let d = Assembler.Asm.disassemble_straight simage in
  Alcotest.(check bool) "straight disasm nonempty" true (String.length d > 0);
  Alcotest.(check bool) "no illegal in straight disasm" false
    (contains ~needle:"illegal" d)

(* assembly text round trip: print a compiled program, re-parse, assemble,
   and check the images match *)
let test_asm_text_roundtrip () =
  let src = (Workloads.fib ~n:10 ()).Workloads.source in
  let prog = Minic.Lower.compile src in
  List.iter Ssa_ir.Passes.optimize prog.Ir.funcs;
  let items =
    Straight_cc.Codegen.compile
      ~config:{ Straight_cc.Codegen.max_dist = 31;
                level = Straight_cc.Codegen.Re_plus }
      prog
  in
  let direct = Assembler.Asm.Straight.assemble ~entry:"_start" items in
  let text = Assembler.Asm.Straight.program_to_string items in
  let reparsed = Assembler.Asm.Straight.assemble_source ~entry:"_start" text in
  Alcotest.(check bool) "text sections equal" true
    (direct.Assembler.Image.text = reparsed.Assembler.Image.text);
  Alcotest.(check bool) "data sections equal" true
    (direct.Assembler.Image.data = reparsed.Assembler.Image.data)

(* ---------- validate: structural rejections ---------- *)

let lowered src =
  let p = Minic.Lower.compile src in
  List.find (fun g -> g.Ir.name = "main") p.Ir.funcs

let expect_invalid name f =
  match Analysis.validate f with
  | () -> Alcotest.failf "%s: validate accepted a broken function" name
  | exception Analysis.Invalid_ir _ -> ()
  | exception e ->
    Alcotest.failf "%s: expected Invalid_ir, got %s" name (Printexc.to_string e)

let test_validate_structural () =
  (* a terminator that targets a nonexistent block must be Invalid_ir,
     not Not_found out of the CFG builder *)
  let f = func_of_edges 3 [ (0, 1); (1, 2) ] in
  (Ir.block f 2).Ir.term <- Ir.Br 99;
  expect_invalid "dangling target" f;
  (* duplicate block ids *)
  let f = func_of_edges 2 [ (0, 1) ] in
  f.Ir.blocks <- f.Ir.blocks @ [ { Ir.bid = 1; insts = []; term = Ir.Ret (Ir.Const 0l) } ];
  expect_invalid "duplicate bid" f;
  (* a phi in the entry block *)
  let f = func_of_edges 2 [ (0, 1) ] in
  f.Ir.nvalues <- 1;
  (Ir.entry_block f).Ir.insts <- [ (0, Ir.Phi [ (1, Ir.Const 0l) ]) ];
  expect_invalid "entry phi" f;
  (* a value id at or above nvalues *)
  let f = func_of_edges 2 [ (0, 1) ] in
  (Ir.block f 1).Ir.insts <- [ (7, Ir.Bin (Ir.Add, Ir.Const 1l, Ir.Const 2l)) ];
  expect_invalid "value id out of range" f;
  (* a phi arm naming a reachable block that is not a predecessor *)
  let f = func_of_edges 3 [ (0, 1); (0, 2); (1, 2) ] in
  f.Ir.nvalues <- 1;
  (Ir.block f 1).Ir.insts <- [ (0, Ir.Phi [ (0, Ir.Const 0l); (2, Ir.Const 1l) ]) ];
  expect_invalid "non-pred arm" f;
  (* and a well-formed lowered function passes *)
  let f = lowered {|
int main() {
  int s = 0;
  for (int i = 0; i < 4; i = i + 1) s = s + i;
  return s;
}
|} in
  Analysis.validate f

(* ---------- the checked pass pipeline ---------- *)

let test_checked_pipeline_clean () =
  (* every workload survives the checked O0/O1/O2 pipelines *)
  List.iter
    (fun (w : Workloads.t) ->
       List.iter
         (fun opt ->
            let p = Minic.Lower.compile w.Workloads.source in
            List.iter (Ssa_ir.Passes.checked_at opt) p.Ir.funcs)
         [ Ssa_ir.Passes.O0; Ssa_ir.Passes.O1; Ssa_ir.Passes.O2 ])
    [ Workloads.fib ~n:10 (); Workloads.sort ~n:16 ();
      Workloads.coremark ~iterations:1 () ]

let test_checked_blames_broken_pass () =
  (* inject a deliberately broken pass between two honest ones: the
     failure must name it, not its neighbours *)
  let sabotage =
    { Ssa_ir.Passes.pass_name = "sabotage";
      pass_run =
        (fun f ->
           (* redirect the entry terminator at a nonexistent block *)
           (Ir.entry_block f).Ir.term <- Ir.Br 9999;
           true) }
  in
  let pipeline =
    match Ssa_ir.Passes.pipeline Ssa_ir.Passes.O1 with
    | first :: rest -> (first :: sabotage :: rest)
    | [] -> assert false
  in
  let f = lowered "int main() { return 1 + 2; }" in
  match Ssa_ir.Passes.run_passes ~validate:true pipeline f with
  | () -> Alcotest.fail "broken pass went unnoticed"
  | exception Analysis.Invalid_ir msg ->
    let contains ~needle hay =
      let nl = String.length needle and hl = String.length hay in
      let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "blames sabotage: %S" msg)
      true (contains ~needle:"pass sabotage broke the IR" msg);
    Alcotest.(check bool)
      (Printf.sprintf "does not blame const-fold: %S" msg)
      false (contains ~needle:"const-fold broke" msg)

let test_checked_accepts_unoptimized () =
  (* ~validate:true also validates the input before any pass runs *)
  let f = lowered "int main() { putint(42); return 0; }" in
  Ssa_ir.Passes.run_passes ~validate:true [] f

let suite =
  [ QCheck_alcotest.to_alcotest prop_dominators;
    QCheck_alcotest.to_alcotest prop_loops_have_back_edges;
    QCheck_alcotest.to_alcotest prop_entry_dominates_all;
    ("liveness diamond", `Quick, test_liveness_diamond);
    ("disassembly roundtrip", `Quick, test_disassembly_roundtrip);
    ("asm text roundtrip", `Quick, test_asm_text_roundtrip);
    ("validate rejects structural breakage", `Quick, test_validate_structural);
    ("checked pipeline clean on workloads", `Quick, test_checked_pipeline_clean);
    ("checked pipeline blames culprit pass", `Quick, test_checked_blames_broken_pass);
    ("checked pipeline validates input", `Quick, test_checked_accepts_unoptimized) ]

let () = Alcotest.run "analysis" [ ("analysis", suite) ]
