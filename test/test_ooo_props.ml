(* Property-based tests for the shared microarchitectural components,
   driven by the seeded splitmix64 generator (Fuzz.Rng) so every failure
   reproduces from its seed.  Each component property runs >= 1000
   seeded iterations.

   - Cache: LRU behavior equals a reference model (per-set MRU lists)
     on random address streams, a touched line always hits immediately
     after its fill, and the tag/set decomposition round-trips to the
     line address.
   - Branch_pred: gshare and TAGE are deterministic state machines
     (identical histories -> identical predictions), and the RAS
     balances push/pop under bounded call nesting, including across a
     save/restore recovery with wrong-path pushes.
   - Memdep: the predictor guarantees a load PC that once bypassed an
     older overlapping store never bypasses again — replaying any
     random load/store program a second time produces zero
     memory-order violations. *)

module Params = Ooo_common.Params
module Cache = Ooo_common.Cache
module Bp = Ooo_common.Branch_pred
module Memdep = Ooo_common.Memdep
module Rng = Fuzz.Rng

let iterations = 1000

(* ---------- Cache vs a reference LRU model ---------- *)

(* Reference: per-set list of line numbers, MRU first. *)
module Ref_lru = struct
  type t = { sets : int; ways : int; mutable sets_v : int list array }

  let create ~sets ~ways = { sets; ways; sets_v = Array.make sets [] }

  let touch t line =
    let s = line mod t.sets in
    let l = t.sets_v.(s) in
    let hit = List.mem line l in
    let l' = line :: List.filter (fun x -> x <> line) l in
    let l' = List.filteri (fun i _ -> i < t.ways) l' in
    t.sets_v.(s) <- l';
    hit
end

(* a small cache so random streams cause constant eviction *)
let small_params ways =
  { Params.size_bytes = 64 * 8 * ways; ways; line_bytes = 64; hit_latency = 1 }

let test_cache_lru_equivalence () =
  for seed = 1 to iterations do
    let r = Rng.make seed in
    let ways = Rng.choose r [ 1; 2; 4 ] in
    let p = small_params ways in
    let c = Cache.create p in
    let m = Ref_lru.create ~sets:c.Cache.sets ~ways in
    let hits = ref 0 and accesses = ref 0 in
    for step = 0 to 199 do
      (* 4x the cache's line capacity, so misses and evictions dominate *)
      let addr = Rng.int r (4 * p.Params.size_bytes) in
      let got = Cache.touch c addr in
      let want = Ref_lru.touch m (addr lsr c.Cache.line_shift) in
      incr accesses;
      if want then incr hits;
      if got <> want then
        Alcotest.failf
          "seed %d step %d ways %d addr %#x: cache %s but reference %s" seed
          step ways addr
          (if got then "hit" else "missed")
          (if want then "hit" else "missed")
    done;
    Alcotest.(check int)
      (Printf.sprintf "seed %d: access count" seed)
      !accesses c.Cache.accesses;
    Alcotest.(check int)
      (Printf.sprintf "seed %d: miss count" seed)
      (!accesses - !hits) c.Cache.misses
  done

let test_cache_hit_after_fill () =
  for seed = 1 to iterations do
    let r = Rng.make (seed + 0x10000) in
    let p = small_params (Rng.choose r [ 2; 4 ]) in
    let c = Cache.create p in
    for _ = 0 to 99 do
      let addr = Rng.int r (8 * p.Params.size_bytes) in
      if Rng.bool r then begin
        (* a touched line is resident immediately afterwards *)
        ignore (Cache.touch c addr);
        if not (Cache.touch c addr) then
          Alcotest.failf "seed %d: miss right after touch of %#x" seed addr
      end
      else begin
        (* prefetch fill installs the line but books no access *)
        let acc = c.Cache.accesses and miss = c.Cache.misses in
        Cache.fill c addr;
        Alcotest.(check int) "fill books no access" acc c.Cache.accesses;
        Alcotest.(check int) "fill books no miss" miss c.Cache.misses;
        if not (Cache.touch c addr) then
          Alcotest.failf "seed %d: miss right after fill of %#x" seed addr
      end
    done
  done

let test_cache_index_roundtrip () =
  for seed = 1 to iterations do
    let r = Rng.make (seed + 0x20000) in
    let ways = Rng.choose r [ 1; 2; 4 ] in
    let p = small_params ways in
    let c = Cache.create p in
    let addr = Rng.int r (16 * p.Params.size_bytes) in
    ignore (Cache.touch c addr);
    let line = addr lsr c.Cache.line_shift in
    let set = line mod c.Cache.sets in
    let tag = line / c.Cache.sets in
    (* the line must sit in exactly the set its address names, and the
       stored tag must reconstruct the line address *)
    let found = ref false in
    for w = 0 to ways - 1 do
      if c.Cache.tags.((set * ways) + w) = tag then found := true
    done;
    if not !found then
      Alcotest.failf "seed %d: %#x not resident in set %d after touch" seed
        addr set;
    Alcotest.(check int)
      (Printf.sprintf "seed %d: tag/set reconstruct line" seed)
      line
      ((tag * c.Cache.sets) + set)
  done

(* ---------- branch predictors ---------- *)

(* Identical histories must produce identical predictions: predictors
   are deterministic state machines, seeded only by their update
   stream.  A biased outcome function keeps the TAGE allocation path
   busy (always-random outcomes never train long histories). *)
let test_predictor_determinism mk label =
  for seed = 1 to iterations do
    let r = Rng.make (seed + 0x30000) in
    let a : Bp.t = mk () and b : Bp.t = mk () in
    let n_pcs = 1 + Rng.int r 31 in
    let pcs = Array.init n_pcs (fun _ -> Rng.int r 0x40000 * 4) in
    for step = 0 to 99 do
      let pc = pcs.(Rng.int r n_pcs) in
      let taken = (pc lsr 2) mod 3 <> 0 in
      let taken = if Rng.chance r 10 then not taken else taken in
      let pa = a.Bp.predict pc and pb = b.Bp.predict pc in
      if pa <> pb then
        Alcotest.failf "%s seed %d step %d pc %#x: twin predictors diverge"
          label seed step pc;
      a.Bp.update pc taken;
      b.Bp.update pc taken
    done
  done

let test_gshare_determinism () = test_predictor_determinism Bp.gshare "gshare"
let test_tage_determinism () = test_predictor_determinism Bp.tage "tage"

(* RAS: under nesting bounded by the stack depth, every return pops the
   matching call's address; pops of an empty stack say so. *)
let test_ras_balance () =
  let depth = 16 in
  for seed = 1 to iterations do
    let r = Rng.make (seed + 0x40000) in
    let ras = Bp.Ras.create ~depth () in
    let model = ref [] in
    for step = 0 to 199 do
      if Rng.bool r && List.length !model < depth then begin
        let addr = Rng.int r 0x100000 in
        Bp.Ras.push ras addr;
        model := addr :: !model
      end
      else
        match !model with
        | [] ->
          (match Bp.Ras.pop ras with
           | None -> ()
           | Some v ->
             Alcotest.failf "seed %d step %d: pop of empty RAS gave %#x" seed
               step v)
        | expect :: rest ->
          model := rest;
          (match Bp.Ras.pop ras with
           | Some got when got = expect -> ()
           | Some got ->
             Alcotest.failf "seed %d step %d: popped %#x, pushed %#x" seed
               step got expect
           | None ->
             Alcotest.failf "seed %d step %d: empty RAS, expected %#x" seed
               step expect)
    done
  done

(* Misprediction recovery: save the top pointer, pollute with
   wrong-path pushes (bounded so the circular buffer cannot wrap into
   live entries), restore, and the stack must behave as if the wrong
   path never happened. *)
let test_ras_save_restore () =
  let depth = 16 in
  for seed = 1 to iterations do
    let r = Rng.make (seed + 0x50000) in
    let ras = Bp.Ras.create ~depth () in
    let good = 1 + Rng.int r (depth / 2) in
    let stack = ref [] in
    for _ = 1 to good do
      let a = Rng.int r 0x100000 in
      Bp.Ras.push ras a;
      stack := a :: !stack
    done;
    let snapshot = Bp.Ras.save ras in
    let wrong = Rng.int r (depth - good + 1) in
    for _ = 1 to wrong do
      Bp.Ras.push ras (Rng.int r 0x100000)
    done;
    Bp.Ras.restore ras snapshot;
    List.iteri
      (fun i expect ->
         match Bp.Ras.pop ras with
         | Some got when got = expect -> ()
         | Some got ->
           Alcotest.failf "seed %d pop %d after restore: %#x, expected %#x"
             seed i got expect
         | None ->
           Alcotest.failf "seed %d pop %d after restore: empty" seed i)
      !stack
  done

(* ---------- memory-dependence predictor ---------- *)

(* A tiny LSQ model: random programs of loads/stores over a small word
   space; an unresolved store is visible to younger loads only by
   address once it resolves.  First pass: a load predicted conflict-free
   that overlaps an older unresolved store is a violation (train).
   Property: the violation count equals the trained-PC count, trained
   PCs always predict a conflict afterwards, and a full second pass of
   the same program violates zero times — loads never bypass an older
   overlapping store twice. *)
let test_memdep_no_repeat_bypass () =
  for seed = 1 to iterations do
    let r = Rng.make (seed + 0x60000) in
    let md = Memdep.create ~entries:4096 () in
    let n_ops = 16 + Rng.int r 48 in
    (* op = (pc, is_load, word address, store resolve delay) *)
    let program =
      Array.init n_ops (fun i ->
          (0x1000 + (i * 4), Rng.bool r, Rng.int r 16, 1 + Rng.int r 4))
    in
    let run_pass () =
      let violations = ref 0 in
      (* stores enter a window and resolve [delay] ops later *)
      let unresolved = ref [] in
      Array.iteri
        (fun age (pc, is_load, addr, delay) ->
           unresolved :=
             List.filter (fun (_, _, until) -> until > age) !unresolved;
           if is_load then begin
             let overlap =
               List.exists (fun (_, a, _) -> a = addr) !unresolved
             in
             let waits = Memdep.predict_conflict md pc in
             if (not waits) && overlap then begin
               (* bypassed an older overlapping store: violation *)
               incr violations;
               Memdep.train_violation md pc;
               if not (Memdep.predict_conflict md pc) then
                 Alcotest.failf
                   "seed %d pc %#x: trained load still predicts no conflict"
                   seed pc
             end
           end
           else unresolved := (pc, addr, age + delay) :: !unresolved)
        program;
      !violations
    in
    let first = run_pass () in
    Alcotest.(check int)
      (Printf.sprintf "seed %d: violations are counted" seed)
      first md.Memdep.violations;
    let second = run_pass () in
    if second <> 0 then
      Alcotest.failf "seed %d: %d repeat bypass(es) on the second pass" seed
        second
  done

(* fresh tables predict no conflict (loads speculate by default), and
   training is sticky under arbitrary interleaved training of other
   PCs (aliasing can only add conflicts, never clear one) *)
let test_memdep_sticky () =
  for seed = 1 to iterations do
    let r = Rng.make (seed + 0x70000) in
    let md = Memdep.create ~entries:4096 () in
    let pc = Rng.int r 0x100000 * 4 in
    if Memdep.predict_conflict md pc then
      Alcotest.failf "seed %d: fresh table predicts a conflict at %#x" seed pc;
    Memdep.train_violation md pc;
    for _ = 1 to 50 do
      Memdep.train_violation md (Rng.int r 0x100000 * 4)
    done;
    if not (Memdep.predict_conflict md pc) then
      Alcotest.failf "seed %d: training at %#x was lost" seed pc
  done

let suite =
  [ Alcotest.test_case "cache: LRU equals reference model (1000 seeds)" `Quick
      test_cache_lru_equivalence;
    Alcotest.test_case "cache: hit after fill (1000 seeds)" `Quick
      test_cache_hit_after_fill;
    Alcotest.test_case "cache: set/tag indexing round-trip (1000 seeds)"
      `Quick test_cache_index_roundtrip;
    Alcotest.test_case "gshare: deterministic under identical history" `Quick
      test_gshare_determinism;
    Alcotest.test_case "tage: deterministic under identical history" `Quick
      test_tage_determinism;
    Alcotest.test_case "ras: push/pop balance (1000 seeds)" `Quick
      test_ras_balance;
    Alcotest.test_case "ras: save/restore recovery (1000 seeds)" `Quick
      test_ras_save_restore;
    Alcotest.test_case "memdep: no repeated bypass (1000 seeds)" `Quick
      test_memdep_no_repeat_bypass;
    Alcotest.test_case "memdep: default-speculate, sticky training" `Quick
      test_memdep_sticky ]

let () = Alcotest.run "ooo_props" [ ("ooo_props", suite) ]
