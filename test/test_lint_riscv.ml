(* Tests for the RV32IM binary verifier (lib/riscv_lint): hand-assembled
   fixture pairs under lint_fixtures/ — one accepted and one rejected
   image per check — plus synthetic word images for the checks that
   cannot be expressed in assembly (illegal opcodes, out-of-bounds
   targets, fall-through), and the compiled-workload acceptance sweep at
   every middle-end level. *)

module Lint = Riscv_lint.Lint
module Isa = Riscv_isa.Isa
module Enc = Riscv_isa.Encoding
module Image = Assembler.Image

(* [dune runtest] runs in the stanza directory, [dune exec] wherever the
   user stands; accept both. *)
let read_fixture (name : string) : string =
  let file = Filename.concat "lint_fixtures" name in
  let path =
    if Sys.file_exists file then file else Filename.concat "test" file
  in
  In_channel.with_open_text path In_channel.input_all

let assemble_fixture (name : string) : Image.t =
  Assembler.Asm.Riscv.assemble_source ~entry:"_start" (read_fixture name)

let checks_of (findings : Lint.finding list) : string list =
  List.sort_uniq compare (List.map (fun (f : Lint.finding) -> f.Lint.check) findings)

let pp_findings findings =
  String.concat "; " (List.map Lint_report.finding_to_string findings)

(* Each pair: fixture base name, the one check its reject image must
   trip.  The accept image must produce zero findings; the reject image
   must be rejected by exactly the intended checker. *)
let fixture_pairs =
  [ ("uninit_read", "uninit-read");
    ("callee_saved", "callee-saved-clobbered");
    ("sp_balance", "stack-imbalance");
    ("frame_bounds", "frame-bounds");
    ("target_align", "target-align") ]

let test_fixtures_accepted () =
  List.iter
    (fun (name, _) ->
       let image = assemble_fixture ("accept_" ^ name ^ ".s") in
       match Lint.lint image with
       | [] -> ()
       | fs ->
         Alcotest.failf "accept_%s.s should lint clean, got: %s" name
           (pp_findings fs))
    fixture_pairs

let test_fixtures_rejected () =
  List.iter
    (fun (name, check) ->
       let image = assemble_fixture ("reject_" ^ name ^ ".s") in
       let findings = Lint.lint image in
       Alcotest.(check bool)
         (Printf.sprintf "reject_%s.s has findings" name)
         true (findings <> []);
       Alcotest.(check (list string))
         (Printf.sprintf "reject_%s.s rejected by %s only" name check)
         [ check ] (checks_of findings))
    fixture_pairs

(* ---------- synthetic word images ---------- *)

let image_of_words ?(entry_word = 0) words =
  let base = Assembler.Layout.text_base in
  { Image.entry = base + (4 * entry_word);
    text_base = base;
    text = Array.of_list words;
    data_base = Assembler.Layout.data_base;
    data = [||];
    symbols = [] }

let has_check name findings =
  List.exists (fun (f : Lint.finding) -> f.Lint.check = name) findings

let nop = Enc.encode (Isa.Alui (Isa.Addi, 0, 0, 0))

let test_lint_rejects_words () =
  (* a word with no RV32IM decoding *)
  let bad = image_of_words [ 0xFFFFFFFFl; Enc.encode Isa.Ebreak ] in
  Alcotest.(check bool) "illegal opcode" true
    (has_check "illegal-opcode" (Lint.lint bad));
  Alcotest.(check bool) "roundtrip check flags it too" true
    (has_check "illegal-opcode" (Lint.lint_roundtrip bad));
  (* jump far outside the text section *)
  let bad = image_of_words [ Enc.encode (Isa.Jal (0, 2048)); Enc.encode Isa.Ebreak ] in
  Alcotest.(check bool) "target bounds" true
    (has_check "target-bounds" (Lint.lint bad));
  (* last instruction is not a terminator *)
  let bad = image_of_words [ nop ] in
  Alcotest.(check bool) "fall through" true
    (has_check "fall-through" (Lint.lint bad));
  (* a trailing call falls through when the callee returns *)
  let bad = image_of_words [ nop; Enc.encode (Isa.Jal (1, -4)) ] in
  Alcotest.(check bool) "trailing call" true
    (has_check "fall-through" (Lint.lint bad));
  (* reading a temporary that nothing wrote *)
  let bad =
    image_of_words
      [ Enc.encode (Isa.Alu (Isa.Add, 10, 5, 0)); Enc.encode Isa.Ebreak ]
  in
  Alcotest.(check bool) "uninit temp read" true
    (has_check "uninit-read" (Lint.lint bad));
  (* sp written by something other than addi *)
  let bad =
    image_of_words
      [ Enc.encode (Isa.Alu (Isa.Add, 2, 10, 0)); Enc.encode Isa.Ebreak ]
  in
  Alcotest.(check bool) "sp discipline" true
    (has_check "sp-discipline" (Lint.lint bad));
  (* a clean halt-only image has nothing to say *)
  let good = image_of_words [ nop; Enc.encode Isa.Ebreak ] in
  Alcotest.(check (list string)) "clean image" [] (checks_of (Lint.lint good))

(* sp displacement that depends on the path taken *)
let test_lint_path_dependent_sp () =
  let enc = Enc.encode in
  (* f: beq a0, zero, +8 ; addi sp, sp, -16 ; ret *)
  let bad =
    image_of_words
      [ enc (Isa.Jal (1, 8));               (* _start: jal ra, f *)
        enc Isa.Ebreak;
        enc (Isa.Branch (Isa.Beq, 10, 0, 8));  (* f: skip the frame push *)
        enc (Isa.Alui (Isa.Addi, 2, 2, -16));
        enc (Isa.Jalr (0, 1, 0)) ]
  in
  let findings = Lint.lint bad in
  Alcotest.(check bool) "path-dependent sp flagged" true
    (has_check "stack-imbalance" findings)

(* ---------- compiled workloads stay clean at every level ---------- *)

let test_workloads_clean_all_levels () =
  List.iter
    (fun (w : Workloads.t) ->
       List.iter
         (fun opt ->
            let image =
              Straight_core.Compile.to_riscv ~opt ~checked:true
                w.Workloads.source
            in
            match Lint.lint image with
            | [] -> ()
            | f :: _ ->
              Alcotest.failf "%s: %s" w.Workloads.name
                (Lint_report.finding_to_string f))
         [ Ssa_ir.Passes.O0; Ssa_ir.Passes.O1; Ssa_ir.Passes.O2 ])
    [ Workloads.fib ~n:10 ();
      Workloads.iota ~n:16 ();
      Workloads.sort ~n:16 ();
      Workloads.quicksort ~n:24 ();
      Workloads.pointer_chase () ]

let suite =
  [ ("fixtures accepted", `Quick, test_fixtures_accepted);
    ("fixtures rejected by intended check", `Quick, test_fixtures_rejected);
    ("synthetic broken images rejected", `Quick, test_lint_rejects_words);
    ("path-dependent sp rejected", `Quick, test_lint_path_dependent_sp);
    ("compiled workloads clean at O0/O1/O2", `Slow, test_workloads_clean_all_levels) ]

let () = Alcotest.run "riscv_lint" [ ("riscv_lint", suite) ]
