(* End-to-end tests of assembler + functional simulators on hand-written
   programs for both ISAs. *)

module SAsm = Assembler.Asm.Straight
module RAsm = Assembler.Asm.Riscv

let run_straight ?(collect_dist = false) src =
  let image = SAsm.assemble_source src in
  Iss.Straight_iss.run
    ~config:{ Iss.Straight_iss.default_config with
              collect_dist; max_insns = 1_000_000 }
    image

let run_riscv src =
  let image = RAsm.assemble_source src in
  Iss.Riscv_iss.run
    ~config:{ Iss.Riscv_iss.default_config with max_insns = 1_000_000 }
    image

(* Fig. 1(a) of the paper: Fibonacci by repeated ADD [1] [2]. *)
let test_straight_fib () =
  let src = {|
.text
main:
  ADDi [0] 1
  ADDi [0] 1
  ADD [1] [2]
  ADD [1] [2]
  ADD [1] [2]
  ADD [1] [2]
  ADD [1] [2]
  LUI 0xFFFF0
  ST [2] [1] 0
  HALT
|} in
  let r = run_straight src in
  Alcotest.(check string) "fib(7)=13" "13\n" r.Iss.Trace.output

let test_straight_loop_and_branch () =
  (* Sum 1..10 with a loop; mirrors the distance-fixing shape of Fig. 9:
     the entry frame of [loop] is (pad, i, sum) on both incoming paths —
     the NOP below aligns the fall-through path with the back edge's J. *)
  let src = {|
.text
main:
  ADDi [0] 0        # sum = 0
  ADDi [0] 1        # i = 1
  NOP               # distance fixing: align with the back edge J
loop:
  ADD [3] [2]       # sum' = sum + i
  ADDi [3] 1        # i' = i + 1
  SLTi [1] 11       # i' < 11
  BEZ [1] done
  RMOV [4]          # re-produce sum'
  RMOV [4]          # re-produce i'
  J loop
done:
  LUI 0xFFFF0
  ST [5] [1] 0      # print sum' (BEZ, cond, i', sum' = 4 back + LUI)
  HALT
|} in
  let r = run_straight src in
  Alcotest.(check string) "sum 1..10" "55\n" r.Iss.Trace.output

let test_straight_spadd_and_memory () =
  let src = {|
.text
main:
  SPADD -16         # allocate frame; result = new SP
  ADDi [0] 42
  ST [1] [2] 4      # mem[sp+4] = 42
  LD [3] 4          # load it back
  LUI 0xFFFF0
  ST [2] [1] 0
  SPADD 16
  HALT
|} in
  let r = run_straight src in
  Alcotest.(check string) "stack roundtrip" "42\n" r.Iss.Trace.output

let test_straight_call_return () =
  (* JAL/JR calling convention: callee refers to the JAL by distance. *)
  let src = {|
.text
main:
  ADDi [0] 20       # arg0 producer
  ADDi [0] 22       # arg1 producer
  JAL callee
  LUI 0xFFFF0
  ST [3] [1] 0      # retval was produced just before JR: dist 2 at return
  HALT
callee:
  ADD [3] [2]       # arg0 + arg1
  JR [2]            # return via JAL value
|} in
  let r = run_straight src in
  Alcotest.(check string) "call/return" "42\n" r.Iss.Trace.output

let test_straight_store_returns_value () =
  (* Paper: "store value is returned in the current specification". *)
  let src = {|
.text
main:
  LUI 0x100
  ADDi [0] 7
  ST [1] [2] 0
  LUI 0xFFFF0
  ST [2] [1] 0      # print the ST result (= 7)
  HALT
|} in
  let r = run_straight src in
  Alcotest.(check string) "st result" "7\n" r.Iss.Trace.output

let test_straight_zero_register () =
  let src = {|
.text
main:
  ADDi [0] 5
  ADD [1] [0]       # [0] reads zero
  LUI 0xFFFF0
  ST [2] [1] 0
  HALT
|} in
  let r = run_straight src in
  Alcotest.(check string) "zero reg" "5\n" r.Iss.Trace.output

let test_distance_histogram () =
  let src = {|
.text
main:
  ADDi [0] 1
  ADDi [0] 1
  ADD [1] [2]
  HALT
|} in
  let r = run_straight ~collect_dist:true src in
  Alcotest.(check int) "dist 1 count" 1 r.Iss.Trace.dist_histogram.(1);
  Alcotest.(check int) "dist 2 count" 1 r.Iss.Trace.dist_histogram.(2)

let test_straight_putchar () =
  let src = {|
.text
main:
  LUI 0xFFFF0
  ADDi [0] 72
  ST [1] [2] 4
  ADDi [0] 105
  ST [1] [4] 4
  HALT
|} in
  let r = run_straight src in
  Alcotest.(check string) "putchar" "Hi" r.Iss.Trace.output

let test_riscv_loop () =
  let src = {|
.text
main:
  li a0, 0
  li t0, 1
loop:
  add a0, a0, t0
  addi t0, t0, 1
  slti t1, t0, 11
  bne t1, zero, loop
  lui t2, 0xFFFF0
  sw a0, 0(t2)
  ebreak
|} in
  let r = run_riscv src in
  Alcotest.(check string) "sum 1..10" "55\n" r.Iss.Trace.output

let test_riscv_call () =
  let src = {|
.text
main:
  li a0, 20
  li a1, 22
  jal ra, callee
  lui t2, 0xFFFF0
  sw a0, 0(t2)
  ebreak
callee:
  add a0, a0, a1
  ret
|} in
  let r = run_riscv src in
  Alcotest.(check string) "call" "42\n" r.Iss.Trace.output

let test_riscv_memory_and_data () =
  let src = {|
.data
table:
  .word 10
  .word 20
  .word 12
.text
main:
  lui t0, 0x100      # data_base = 0x100000
  lw a0, 0(t0)
  lw a1, 4(t0)
  lw a2, 8(t0)
  add a0, a0, a1
  add a0, a0, a2
  lui t2, 0xFFFF0
  sw a0, 0(t2)
  ebreak
|} in
  let r = run_riscv src in
  Alcotest.(check string) "data section" "42\n" r.Iss.Trace.output

let test_trace_collection () =
  let src = {|
.text
main:
  ADDi [0] 1
  ADDi [0] 1
  ADD [1] [2]
  HALT
|} in
  let image = SAsm.assemble_source src in
  let r =
    Iss.Straight_iss.run
      ~config:{ Iss.Straight_iss.default_config with collect_trace = true }
      image
  in
  Alcotest.(check int) "trace length" 4 (Array.length r.Iss.Trace.trace);
  let add = r.Iss.Trace.trace.(2) in
  Alcotest.(check bool) "add deps" true (add.Iss.Trace.srcs_dist = [| 1; 2 |])

(* Precise interrupts (Section III-A): interrupting at any instruction
   boundary and resuming from {PC, SP, RP, register window} must be
   indistinguishable from an uninterrupted run. *)
let test_precise_interrupt () =
  let src = {|
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int buf[8];
int main() {
  for (int i = 0; i < 8; i++) buf[i] = fib(i + 3);
  int s = 0;
  for (int i = 0; i < 8; i++) s += buf[i] * i;
  putint(s);
}
|} in
  let prog = Minic.Lower.compile src in
  List.iter Ssa_ir.Passes.optimize prog.Ssa_ir.Ir.funcs;
  let config =
    { Straight_cc.Codegen.max_dist = 31; level = Straight_cc.Codegen.Re_plus }
  in
  let image = Straight_cc.Codegen.compile_to_image ~config prog in
  let reference = Iss.Straight_iss.run image in
  List.iter
    (fun at ->
       let r = Iss.Straight_iss.run_with_interrupt ~at image in
       Alcotest.(check string)
         (Printf.sprintf "interrupt at %d: same output" at)
         reference.Iss.Trace.output r.Iss.Trace.output;
       Alcotest.(check int)
         (Printf.sprintf "interrupt at %d: same retired count" at)
         reference.Iss.Trace.retired r.Iss.Trace.retired)
    [ 1; 7; 50; 123; 500; 1234 ]

let test_checkpoint_window_only () =
  (* the checkpoint really is bounded: PC/SP/RP + max_dist values *)
  let src = ".text\nmain:\n  ADDi [0] 1\n  ADDi [0] 2\n  HALT\n" in
  let image = SAsm.assemble_source src in
  let s = Iss.Straight_iss.start image in
  Iss.Straight_iss.run_session ~until:2 s;
  let st = Iss.Straight_iss.checkpoint s in
  Alcotest.(check int) "window length"
    Straight_isa.Isa.max_dist
    (Array.length st.Iss.Straight_iss.a_window);
  Alcotest.(check int) "rp" 2 st.Iss.Straight_iss.a_rp;
  (* value at distance 1 is the last result *)
  Alcotest.(check int32) "window.(0)" 2l st.Iss.Straight_iss.a_window.(0);
  Alcotest.(check int32) "window.(1)" 1l st.Iss.Straight_iss.a_window.(1)

(* ---------- structured memory/fuel faults (Diag) ---------- *)

let expect_diag code f =
  match f () with
  | _ -> Alcotest.fail ("expected " ^ code ^ " diagnostic")
  | exception Diag.Error d ->
    Alcotest.(check string) "diag code" code (Diag.code_name d.Diag.code);
    d

let test_straight_memory_faults () =
  (* unaligned word access *)
  let d =
    expect_diag "MEM_UNALIGNED" (fun () ->
        run_straight
          ".text\nmain:\n  LUI 0x100\n  ADDi [1] 2\n  LD [1] 0\n  HALT\n")
  in
  Alcotest.(check (option string)) "faulting address"
    (Some "0x100002") (List.assoc_opt "addr" d.Diag.context);
  (* store to an unmapped MMIO address *)
  ignore
    (expect_diag "MEM_MMIO" (fun () ->
         run_straight
           ".text\nmain:\n  LUI 0xFFFF0\n  ADDi [0] 1\n  ST [1] [2] 8\n  HALT\n"));
  (* load from the write-only MMIO window *)
  ignore
    (expect_diag "MEM_MMIO" (fun () ->
         run_straight ".text\nmain:\n  LUI 0xFFFF0\n  LD [1] 0\n  HALT\n"))

let test_riscv_memory_faults () =
  let d =
    expect_diag "MEM_UNALIGNED" (fun () ->
        run_riscv
          ".text\nmain:\n  lui t0, 0x100\n  addi t0, t0, 2\n  lw a0, 0(t0)\n  ebreak\n")
  in
  Alcotest.(check (option string)) "faulting address"
    (Some "0x100002") (List.assoc_opt "addr" d.Diag.context);
  ignore
    (expect_diag "MEM_MMIO" (fun () ->
         run_riscv
           ".text\nmain:\n  lui t2, 0xFFFF0\n  sw zero, 8(t2)\n  ebreak\n"));
  ignore
    (expect_diag "MEM_MMIO" (fun () ->
         run_riscv
           ".text\nmain:\n  lui t2, 0xFFFF0\n  lw a0, 0(t2)\n  ebreak\n"))

let test_fuel_exhaustion () =
  (* both ISSes must report a budget overrun as FUEL_EXHAUSTED carrying
     the retired count, not as a generic execution error *)
  let ds =
    expect_diag "FUEL_EXHAUSTED" (fun () ->
        let image =
          SAsm.assemble_source ".text\nmain:\nloop:\n  J loop\n  HALT\n"
        in
        Iss.Straight_iss.run
          ~config:{ Iss.Straight_iss.default_config with max_insns = 100 }
          image)
  in
  Alcotest.(check (option string)) "straight retired count"
    (Some "100") (List.assoc_opt "retired" ds.Diag.context);
  let dr =
    expect_diag "FUEL_EXHAUSTED" (fun () ->
        let image =
          RAsm.assemble_source ".text\nmain:\nloop:\n  j loop\n  ebreak\n"
        in
        Iss.Riscv_iss.run
          ~config:{ Iss.Riscv_iss.default_config with max_insns = 100 }
          image)
  in
  Alcotest.(check (option string)) "riscv retired count"
    (Some "100") (List.assoc_opt "retired" dr.Diag.context)

let test_asm_errors () =
  (try
     ignore (SAsm.assemble_source ".text\nmain:\n  J nowhere\n  HALT\n");
     Alcotest.fail "undefined symbol accepted"
   with Assembler.Asm.Asm_error _ -> ());
  (try
     ignore (SAsm.assemble_source ".text\nx:\nx:\n  HALT\n");
     Alcotest.fail "duplicate label accepted"
   with Assembler.Asm.Asm_error _ -> ())

let suite =
  [ ("straight fib (fig 1a)", `Quick, test_straight_fib);
    ("straight loop + distance fixing", `Quick, test_straight_loop_and_branch);
    ("straight spadd/stack", `Quick, test_straight_spadd_and_memory);
    ("straight call/return", `Quick, test_straight_call_return);
    ("straight ST returns value", `Quick, test_straight_store_returns_value);
    ("straight zero register", `Quick, test_straight_zero_register);
    ("straight distance histogram", `Quick, test_distance_histogram);
    ("straight putchar", `Quick, test_straight_putchar);
    ("riscv loop", `Quick, test_riscv_loop);
    ("riscv call", `Quick, test_riscv_call);
    ("riscv data section", `Quick, test_riscv_memory_and_data);
    ("trace collection", `Quick, test_trace_collection);
    ("precise interrupt resume", `Quick, test_precise_interrupt);
    ("checkpoint window", `Quick, test_checkpoint_window_only);
    ("straight memory faults", `Quick, test_straight_memory_faults);
    ("riscv memory faults", `Quick, test_riscv_memory_faults);
    ("fuel exhaustion", `Quick, test_fuel_exhaustion);
    ("assembler errors", `Quick, test_asm_errors) ]

let () = Alcotest.run "iss" [ ("iss", suite) ]
