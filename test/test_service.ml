(* straightd protocol tests.

   Each test forks a real daemon (Service.Server.run in the child, on a
   fresh socket + cache under a temp directory) and drives it over the
   wire with Service.Client:

   - pure codec properties (unknown ops, field-shape violations, the
     point-request round trip preserving the store content address);
   - malformed request lines get a structured PROTO_ERROR reply and the
     server keeps serving;
   - a client disconnecting mid-job kills neither the job nor the
     server, and the job's record still lands in the store;
   - N identical concurrent requests coalesce onto one job: every
     client gets the record, the daemon's own counters show exactly one
     simulation;
   - a shutdown request drains cleanly: exit 0, socket unlinked. *)

module J = Ooo_common.Stats.Json
module Proto = Service.Proto
module Client = Service.Client

let tmpdir prefix = Filename.temp_dir prefix ""

let sleep s = ignore (Unix.select [] [] [] s)

(* fork a daemon; hand the socket path to [f]; always tear down *)
let with_daemon ?(procs = 2) f =
  let dir = tmpdir "straightd-test" in
  let sock = Filename.concat dir "d.sock" in
  let cache = Filename.concat dir "cache" in
  match Unix.fork () with
  | 0 ->
    (match
       Service.Server.run ~socket_path:sock ~procs ~cache_dir:cache ()
     with
     | () -> Unix._exit 0
     | exception _ -> Unix._exit 1)
  | pid ->
    let rec wait_up n =
      if Sys.file_exists sock then ()
      else if n = 0 then Alcotest.fail "daemon never came up"
      else begin
        sleep 0.05;
        wait_up (n - 1)
      end
    in
    wait_up 100;
    Fun.protect
      ~finally:(fun () ->
          (* idempotent teardown whatever the test already did *)
          (try
             let c = Client.connect sock in
             ignore (Client.request c (J.Obj [ ("op", J.Str "shutdown") ]));
             Client.close c
           with _ -> ());
          (match Unix.waitpid [ Unix.WNOHANG ] pid with
           | 0, _ ->
             (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
             (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
           | _ -> ()
           | exception Unix.Unix_error _ -> () (* the test reaped it *)))
      (fun () -> f ~sock ~cache ~pid)

let get_status c =
  let reply = Client.request c (J.Obj [ ("op", J.Str "status") ]) in
  match J.member "result" reply with
  | Some r -> r
  | None -> Alcotest.fail "status reply without a result"

let status_int name st =
  match J.get_int (J.member name st) with
  | Some n -> n
  | None -> Alcotest.failf "status without %S" name

let simulate_req ?(id = "-") workload =
  J.Obj
    [ ("id", J.Str id);
      ("op", J.Str "simulate");
      ("machine", J.Str "ss");
      ("workload", J.Str workload);
      ("quick", J.Bool true) ]

(* ---------- pure codec ---------- *)

let test_proto_codec () =
  (match Proto.request_of_json (J.Obj [ ("op", J.Str "frobnicate") ]) with
   | _ -> Alcotest.fail "unknown op must be rejected"
   | exception Proto.Bad_request (Diag.Proto_error, _) -> ());
  (match Proto.request_of_json (J.Str "simulate") with
   | _ -> Alcotest.fail "non-object requests must be rejected"
   | exception Proto.Bad_request (Diag.Proto_error, _) -> ());
  (match
     Proto.request_of_json
       (J.Obj [ ("op", J.Str "simulate"); ("workload", J.Str "fib");
                ("width", J.Str "two") ])
   with
   | _ -> Alcotest.fail "a string width must be rejected"
   | exception Proto.Bad_request (Diag.Proto_error, _) -> ());
  (match
     Proto.request_of_json
       (J.Obj [ ("op", J.Str "simulate"); ("workload", J.Str "fib");
                ("machine", J.Str "valiant") ])
   with
   | _ -> Alcotest.fail "an unknown machine must be rejected"
   | exception Proto.Bad_request (Diag.Config_error, _) -> ());
  (* "sample" without a spec is a protocol violation *)
  (match
     Proto.request_of_json
       (J.Obj [ ("op", J.Str "sample"); ("workload", J.Str "fib") ])
   with
   | _ -> Alcotest.fail "sample without a spec must be rejected"
   | exception Proto.Bad_request (Diag.Proto_error, _) -> ());
  (* the canonical-JSON round trip preserves the store content address:
     the scheduler and the pool worker must derive the same key *)
  List.iter
    (fun req ->
       match Proto.request_of_json req with
       | Proto.Point preq ->
         let pt = Proto.grid_point preq in
         let preq' = Proto.point_req_of_json (Proto.point_req_to_json preq) in
         let pt' = Proto.grid_point preq' in
         Alcotest.(check string)
           (J.to_string ~indent:false req ^ ": key stable across the wire")
           (Sweep.Store.key pt) (Sweep.Store.key pt')
       | _ -> Alcotest.fail "expected a point request")
    [ simulate_req "fib";
      J.Obj
        [ ("op", J.Str "sample"); ("workload", J.Str "dhrystone");
          ("machine", J.Str "straight-re"); ("width", J.Int 4);
          ("predictor", J.Str "tage"); ("ideal", J.Bool true);
          ("sample", J.Str "interval=2k,warmup=500,every=2") ] ]

let test_sweep_point_roundtrip () =
  (* every preset-grid point must survive the requote-as-request trip
     with its content address intact (this is what lets a daemon sweep
     share cache entries with bin/sweep) *)
  List.iter
    (fun (spec : Sweep.Grid.spec) ->
       List.iter
         (fun pt ->
            let preq = Proto.point_req_of_grid_point spec.Sweep.Grid.quick pt in
            let pt' =
              Proto.grid_point
                (Proto.point_req_of_json (Proto.point_req_to_json preq))
            in
            Alcotest.(check string) "store key preserved"
              (Sweep.Store.key pt) (Sweep.Store.key pt'))
         (Sweep.Grid.expand spec))
    [ Sweep.Grid.smoke; Sweep.Grid.default ~quick:true ]

(* ---------- live daemon ---------- *)

let test_malformed_requests () =
  with_daemon (fun ~sock ~cache:_ ~pid:_ ->
      let c = Client.connect sock in
      (* unparseable line -> structured PROTO_ERROR, not a dead server *)
      Client.send_raw c "{this is not json";
      (match Client.recv c with
       | Some reply ->
         Alcotest.(check (option string)) "error reply" (Some "error")
           (J.get_string (J.member "type" reply));
         Alcotest.(check (option string)) "PROTO_ERROR code"
           (Some "PROTO_ERROR")
           (J.get_string (J.member "code" reply))
       | None -> Alcotest.fail "server closed on a malformed line");
      (* unknown op on the same connection *)
      let reply =
        Client.request c
          (J.Obj [ ("id", J.Str "x"); ("op", J.Str "frobnicate") ])
      in
      Alcotest.(check (option string)) "unknown op is PROTO_ERROR"
        (Some "PROTO_ERROR")
        (J.get_string (J.member "code" reply));
      (* unknown workload is a config error, not a crash *)
      let reply = Client.request c (simulate_req "no-such-workload") in
      Alcotest.(check (option string)) "unknown workload is CONFIG_ERROR"
        (Some "CONFIG_ERROR")
        (J.get_string (J.member "code" reply));
      (* the server survived all of it *)
      let st = get_status c in
      Alcotest.(check bool) "server still answers" true
        (status_int "requests" st >= 3);
      Client.close c)

let test_disconnect_mid_job () =
  with_daemon (fun ~sock ~cache:_ ~pid:_ ->
      (* client A queues a simulation and vanishes *)
      let a = Client.connect sock in
      Client.send a (simulate_req ~id:"a" "fib");
      (match Client.recv a with
       | Some ev ->
         Alcotest.(check (option string)) "job was queued" (Some "queued")
           (J.get_string (J.member "event" ev))
       | None -> Alcotest.fail "no queued event");
      Client.close a;
      (* the job must finish anyway and land in the store: client B
         asks for the same point and gets a result (fresh or cached,
         but simulated exactly once) *)
      let b = Client.connect sock in
      let reply = Client.request b (simulate_req ~id:"b" "fib") in
      Alcotest.(check (option string)) "B gets a result" (Some "result")
        (J.get_string (J.member "type" reply));
      let rec settled tries =
        let st = get_status b in
        let sims = status_int "simulations" st in
        let running = status_int "jobs_running" st in
        if running = 0 && sims >= 1 then sims
        else if tries = 0 then sims
        else begin
          sleep 0.1;
          settled (tries - 1)
        end
      in
      Alcotest.(check int) "the abandoned job ran exactly once" 1
        (settled 100);
      Client.close b)

let test_concurrent_coalescing () =
  with_daemon ~procs:4 (fun ~sock ~cache:_ ~pid:_ ->
      (* N identical requests, all on the wire before any completes *)
      let n = 6 in
      let cs = List.init n (fun _ -> Client.connect sock) in
      List.iteri
        (fun i c -> Client.send c (simulate_req ~id:(string_of_int i) "iota"))
        cs;
      let replies =
        List.mapi (fun i c -> Client.wait c ~id:(string_of_int i)) cs
      in
      List.iteri
        (fun i reply ->
           Alcotest.(check (option string))
             (Printf.sprintf "client %d got a result" i)
             (Some "result")
             (J.get_string (J.member "type" reply));
           (* every waiter receives the same record *)
           Alcotest.(check (option string)) "same workload" (Some "iota")
             (J.get_string (J.member "workload"
                              (Option.value ~default:J.Null
                                 (J.member "result" reply)))))
        replies;
      let c = List.hd cs in
      let st = get_status c in
      Alcotest.(check int) "exactly one simulation ran" 1
        (status_int "simulations" st);
      Alcotest.(check bool) "the rest coalesced or hit the cache" true
        (status_int "coalesced" st + status_int "cache_hits" st >= n - 1);
      List.iter Client.close cs)

let test_clean_shutdown () =
  with_daemon (fun ~sock ~cache:_ ~pid ->
      let c = Client.connect sock in
      let reply = Client.request c (J.Obj [ ("op", J.Str "shutdown") ]) in
      Alcotest.(check (option string)) "shutdown acknowledged"
        (Some "result")
        (J.get_string (J.member "type" reply));
      Client.close c;
      (match Unix.waitpid [] pid with
       | _, Unix.WEXITED 0 -> ()
       | _, _ -> Alcotest.fail "daemon did not exit cleanly");
      Alcotest.(check bool) "socket unlinked" false (Sys.file_exists sock))

let suite =
  [ Alcotest.test_case "proto: codec rejects bad requests" `Quick
      test_proto_codec;
    Alcotest.test_case "proto: grid point key round-trip" `Quick
      test_sweep_point_roundtrip;
    Alcotest.test_case "daemon: malformed requests get errors" `Quick
      test_malformed_requests;
    Alcotest.test_case "daemon: disconnect mid-job" `Slow
      test_disconnect_mid_job;
    Alcotest.test_case "daemon: identical requests coalesce" `Slow
      test_concurrent_coalescing;
    Alcotest.test_case "daemon: clean shutdown" `Quick test_clean_shutdown ]

let () = Alcotest.run "service" [ ("service", suite) ]
