(* Robustness harness: seeded fault-injection campaigns over the four
   Table-I models, watchdog deadlock detection, and lockstep-checker
   divergence.  The contract under test: every injected fault is either
   absorbed (the run completes and the golden-model checker sees a full,
   exact retirement) or reported as a structured Diag.Error — never an
   uncaught exception, never a hang. *)

module Params = Ooo_common.Params
module Inject = Ooo_common.Inject
module Checker = Ooo_common.Checker
module Engine = Ooo_common.Engine
module Trace = Iss.Trace

let compile_straight src =
  let p = Minic.Lower.compile src in
  List.iter Ssa_ir.Passes.optimize p.Ssa_ir.Ir.funcs;
  let config =
    { Straight_cc.Codegen.max_dist = 31; level = Straight_cc.Codegen.Re_plus }
  in
  Straight_cc.Codegen.compile_to_image ~config p

let compile_riscv src =
  let p = Minic.Lower.compile src in
  List.iter Ssa_ir.Passes.optimize p.Ssa_ir.Ir.funcs;
  Riscv_cc.Codegen.compile_to_image p

(* a small workload with branches, calls, loads, stores, and a multiply:
   every fault kind has targets, and 100 runs stay fast *)
let campaign_source = (Workloads.sort ~n:40 ()).Workloads.source

let straight_image = lazy (compile_straight campaign_source)
let riscv_image = lazy (compile_riscv campaign_source)

let all_kinds =
  [ Inject.Flip_prediction; Inject.Corrupt_cache_tag;
    Inject.Spurious_recovery; Inject.Stretch_fu_latency ]

(* One campaign run: returns [Ok faults_injected] when the faults were
   absorbed (the checker validated a full exact retirement) or
   [Error diag] when the simulator reported structured divergence or
   deadlock.  Anything else escapes and fails the test. *)
let campaign_run (model : Params.t) ~seed : (int, Diag.t) result =
  let model = Params.with_faults (Inject.plan ~period:200 ~kinds:all_kinds seed) model in
  match model.Params.rename with
  | Params.Rp ->
    (try
       let r = Ooo_straight.Pipeline.run model (Lazy.force straight_image) in
       Ok r.Ooo_straight.Pipeline.stats.Engine.faults_injected
     with Diag.Error d -> Error d)
  | Params.Rmt _ | Params.Rmt_checkpoint _ ->
    (try
       let r = Ooo_riscv.Pipeline.run model (Lazy.force riscv_image) in
       Ok r.Ooo_riscv.Pipeline.stats.Engine.faults_injected
     with Diag.Error d -> Error d)

let test_fault_campaign () =
  let models =
    [ Params.ss_2way; Params.straight_2way; Params.ss_4way;
      Params.straight_4way ]
  in
  let runs = ref 0 and absorbed = ref 0 and diagnosed = ref 0 in
  let faults = ref 0 in
  List.iter
    (fun model ->
       for seed = 1 to 25 do
         incr runs;
         match campaign_run model ~seed with
         | Ok n -> incr absorbed; faults := !faults + n
         | Error _ -> incr diagnosed
       done)
    models;
  Alcotest.(check int) "100-run campaign" 100 !runs;
  Alcotest.(check int) "every run absorbed or diagnosed" !runs
    (!absorbed + !diagnosed);
  (* the campaign must actually inject: an idle fault plan proves nothing *)
  Alcotest.(check bool)
    (Printf.sprintf "faults were injected (%d)" !faults)
    true (!faults > 100);
  (* these fault kinds perturb timing, never architectural state, so the
     lockstep checker should absorb every run *)
  Alcotest.(check int) "timing faults are absorbed" 0 !diagnosed

let test_campaign_determinism () =
  let r1 = campaign_run Params.straight_4way ~seed:11 in
  let r2 = campaign_run Params.straight_4way ~seed:11 in
  (match r1, r2 with
   | Ok f1, Ok f2 ->
     Alcotest.(check int) "same seed, same fault count" f1 f2
   | _ -> Alcotest.fail "seeded campaign run did not complete")

(* ---------- watchdog ---------- *)

let test_watchdog_deadlock () =
  (* a scheduler with zero entries can never dispatch: no commit ever
     happens and the forward-progress watchdog must trip with a
     structured snapshot instead of hanging *)
  let model =
    { Params.straight_2way with Params.scheduler_entries = 0; name = "wedged" }
  in
  match Ooo_straight.Pipeline.run model (Lazy.force straight_image) with
  | _ -> Alcotest.fail "deadlocked configuration completed"
  | exception Diag.Error d ->
    Alcotest.(check string) "deadlock code" "SIM_DEADLOCK"
      (Diag.code_name d.Diag.code);
    Alcotest.(check int) "deadlock exit code" 6 (Diag.exit_code d.Diag.code);
    let ctx k = List.assoc_opt k d.Diag.context in
    Alcotest.(check (option string)) "no forward progress"
      (Some "no-forward-progress") (ctx "reason");
    (* the snapshot names the stuck instruction and the queue occupancies *)
    Alcotest.(check bool) "names the stuck instruction" true
      (ctx "head_pc" <> None && ctx "head_fu" <> None);
    List.iter
      (fun k ->
         Alcotest.(check bool) (k ^ " present") true (ctx k <> None))
      [ "rob_occupancy"; "iq_occupancy"; "ldq_occupancy"; "stq_occupancy";
        "frontend_occupancy"; "fetch_mode"; "last_commits" ]

(* ---------- checker divergence ---------- *)

let test_checker_divergence () =
  (* feed the checker a tampered golden trace: the engine's (correct)
     commit stream must be reported as divergence at the first commit *)
  let image = Lazy.force straight_image in
  let r =
    Iss.Straight_iss.run
      ~config:{ Iss.Straight_iss.collect_trace = true; collect_dist = false;
                max_insns = 10_000_000 }
      image
  in
  let trace = r.Trace.trace in
  let tampered = Array.copy trace in
  tampered.(0) <- { tampered.(0) with Trace.pc = tampered.(0).Trace.pc + 4 };
  let checker =
    Checker.create ~rename:Params.Rp ~trace:tampered ()
  in
  match
    Engine.run Params.straight_2way ~trace
      ~decode_static:(Ooo_straight.Pipeline.static_uop image) ~checker ()
  with
  | _ -> Alcotest.fail "checker accepted a divergent golden trace"
  | exception Diag.Error d ->
    Alcotest.(check string) "divergence code" "CHECKER_DIVERGENCE"
      (Diag.code_name d.Diag.code);
    Alcotest.(check int) "divergence exit code" 7 (Diag.exit_code d.Diag.code);
    Alcotest.(check (option string)) "pc-lockstep invariant"
      (Some "pc-lockstep")
      (List.assoc_opt "invariant" d.Diag.context)

(* ---------- exit-code scheme ---------- *)

let test_exit_codes_distinct () =
  (* one representative per failure class a driver can exit with *)
  let codes =
    [ Diag.Config_error; Diag.Parse_error; Diag.Exec_error;
      Diag.Fuel_exhausted; Diag.Sim_deadlock; Diag.Checker_divergence ]
  in
  let exits = List.map Diag.exit_code codes in
  Alcotest.(check int) "distinct exit codes"
    (List.length exits)
    (List.length (List.sort_uniq compare exits));
  List.iter
    (fun e -> Alcotest.(check bool) "nonzero, non-1 exit" true (e >= 2))
    exits

let suite =
  [ ("fault campaign (100 seeded runs, 4 models)", `Slow, test_fault_campaign);
    ("campaign determinism", `Quick, test_campaign_determinism);
    ("watchdog: deadlock snapshot", `Quick, test_watchdog_deadlock);
    ("checker: divergence reported", `Quick, test_checker_divergence);
    ("exit codes distinct", `Quick, test_exit_codes_distinct) ]

let () = Alcotest.run "robustness" [ ("robustness", suite) ]
