(* Robustness harness: seeded fault-injection campaigns over the four
   Table-I models, watchdog deadlock detection, and lockstep-checker
   divergence.  The contract under test: every injected fault is either
   absorbed (the run completes and the golden-model checker sees a full,
   exact retirement) or reported as a structured Diag.Error — never an
   uncaught exception, never a hang. *)

module Params = Ooo_common.Params
module Inject = Ooo_common.Inject
module Checker = Ooo_common.Checker
module Engine = Ooo_common.Engine
module Trace = Iss.Trace

let compile_straight src =
  let p = Minic.Lower.compile src in
  List.iter Ssa_ir.Passes.optimize p.Ssa_ir.Ir.funcs;
  let config =
    { Straight_cc.Codegen.max_dist = 31; level = Straight_cc.Codegen.Re_plus }
  in
  Straight_cc.Codegen.compile_to_image ~config p

let compile_riscv src =
  let p = Minic.Lower.compile src in
  List.iter Ssa_ir.Passes.optimize p.Ssa_ir.Ir.funcs;
  Riscv_cc.Codegen.compile_to_image p

(* a small workload with branches, calls, loads, stores, and a multiply:
   every fault kind has targets, and 100 runs stay fast *)
let campaign_source = (Workloads.sort ~n:40 ()).Workloads.source

let straight_image = lazy (compile_straight campaign_source)
let riscv_image = lazy (compile_riscv campaign_source)

let all_kinds =
  [ Inject.Flip_prediction; Inject.Corrupt_cache_tag;
    Inject.Spurious_recovery; Inject.Stretch_fu_latency ]

(* One campaign run: returns [Ok faults_injected] when the faults were
   absorbed (the checker validated a full exact retirement) or
   [Error diag] when the simulator reported structured divergence or
   deadlock.  Anything else escapes and fails the test. *)
let campaign_run (model : Params.t) ~seed : (int, Diag.t) result =
  let model = Params.with_faults (Inject.plan ~period:200 ~kinds:all_kinds seed) model in
  match model.Params.rename with
  | Params.Rp ->
    (try
       let r = Ooo_straight.Pipeline.run model (Lazy.force straight_image) in
       Ok r.Ooo_straight.Pipeline.stats.Engine.faults_injected
     with Diag.Error d -> Error d)
  | Params.Rmt _ | Params.Rmt_checkpoint _ ->
    (try
       let r = Ooo_riscv.Pipeline.run model (Lazy.force riscv_image) in
       Ok r.Ooo_riscv.Pipeline.stats.Engine.faults_injected
     with Diag.Error d -> Error d)

let test_fault_campaign () =
  let models =
    [ Params.ss_2way; Params.straight_2way; Params.ss_4way;
      Params.straight_4way ]
  in
  let runs = ref 0 and absorbed = ref 0 and diagnosed = ref 0 in
  let faults = ref 0 in
  List.iter
    (fun model ->
       for seed = 1 to 25 do
         incr runs;
         match campaign_run model ~seed with
         | Ok n -> incr absorbed; faults := !faults + n
         | Error _ -> incr diagnosed
       done)
    models;
  Alcotest.(check int) "100-run campaign" 100 !runs;
  Alcotest.(check int) "every run absorbed or diagnosed" !runs
    (!absorbed + !diagnosed);
  (* the campaign must actually inject: an idle fault plan proves nothing *)
  Alcotest.(check bool)
    (Printf.sprintf "faults were injected (%d)" !faults)
    true (!faults > 100);
  (* these fault kinds perturb timing, never architectural state, so the
     lockstep checker should absorb every run *)
  Alcotest.(check int) "timing faults are absorbed" 0 !diagnosed

let test_campaign_determinism () =
  let r1 = campaign_run Params.straight_4way ~seed:11 in
  let r2 = campaign_run Params.straight_4way ~seed:11 in
  (match r1, r2 with
   | Ok f1, Ok f2 ->
     Alcotest.(check int) "same seed, same fault count" f1 f2
   | _ -> Alcotest.fail "seeded campaign run did not complete")

(* ---------- watchdog ---------- *)

let test_watchdog_deadlock () =
  (* a scheduler with zero entries can never dispatch: no commit ever
     happens and the forward-progress watchdog must trip with a
     structured snapshot instead of hanging *)
  let model =
    { Params.straight_2way with Params.scheduler_entries = 0; name = "wedged" }
  in
  match Ooo_straight.Pipeline.run model (Lazy.force straight_image) with
  | _ -> Alcotest.fail "deadlocked configuration completed"
  | exception Diag.Error d ->
    Alcotest.(check string) "deadlock code" "SIM_DEADLOCK"
      (Diag.code_name d.Diag.code);
    Alcotest.(check int) "deadlock exit code" 6 (Diag.exit_code d.Diag.code);
    let ctx k = List.assoc_opt k d.Diag.context in
    Alcotest.(check (option string)) "no forward progress"
      (Some "no-forward-progress") (ctx "reason");
    (* the snapshot names the stuck instruction and the queue occupancies *)
    Alcotest.(check bool) "names the stuck instruction" true
      (ctx "head_pc" <> None && ctx "head_fu" <> None);
    List.iter
      (fun k ->
         Alcotest.(check bool) (k ^ " present") true (ctx k <> None))
      [ "rob_occupancy"; "iq_occupancy"; "ldq_occupancy"; "stq_occupancy";
        "frontend_occupancy"; "fetch_mode"; "last_commits" ]

(* ---------- checker divergence ---------- *)

let test_checker_divergence () =
  (* feed the checker a tampered golden trace: the engine's (correct)
     commit stream must be reported as divergence at the first commit *)
  let image = Lazy.force straight_image in
  let r =
    Iss.Straight_iss.run
      ~config:{ Iss.Straight_iss.collect_trace = true; collect_dist = false;
                max_insns = 10_000_000 }
      image
  in
  let trace = r.Trace.trace in
  let tampered = Array.copy trace in
  tampered.(0) <- { tampered.(0) with Trace.pc = tampered.(0).Trace.pc + 4 };
  let checker =
    Checker.create ~rename:Params.Rp ~trace:tampered ()
  in
  match
    Engine.run Params.straight_2way ~trace
      ~decode_static:(Ooo_straight.Pipeline.static_uop image) ~checker ()
  with
  | _ -> Alcotest.fail "checker accepted a divergent golden trace"
  | exception Diag.Error d ->
    Alcotest.(check string) "divergence code" "CHECKER_DIVERGENCE"
      (Diag.code_name d.Diag.code);
    Alcotest.(check int) "divergence exit code" 7 (Diag.exit_code d.Diag.code);
    Alcotest.(check (option string)) "pc-lockstep invariant"
      (Some "pc-lockstep")
      (List.assoc_opt "invariant" d.Diag.context)

(* ---------- restore then re-inject ---------- *)

let test_restore_then_reinject () =
  (* checkpoint a faulted run mid-flight, restore, and let the plan keep
     firing: the injection cursor travels with the snapshot, so faults
     land after the restore point too and the recovered run's outcome
     (absorbed, with the same fault count) matches the uninterrupted
     one *)
  let module Sim = Snapshot.Sim in
  let model =
    Params.with_faults (Inject.plan ~period:120 ~kinds:all_kinds 3)
      Params.straight_2way
  in
  let spec =
    Sim.spec ~model ~target:Straight_core.Experiment.Straight_re
      (Workloads.sort ~n:40 ())
  in
  let baseline =
    match Sim.run spec with
    | Sim.Completed r -> r
    | Sim.Stopped _ -> assert false
  in
  let total = baseline.Straight_core.Experiment.stats.Engine.faults_injected in
  Alcotest.(check bool) "plan injects enough to straddle the save" true
    (total >= 4);
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "straight-reinject.%d.snap" (Unix.getpid ()))
  in
  let stop = baseline.Straight_core.Experiment.cycles / 2 in
  (match Sim.run ~checkpoint_path:path ~stop_at:stop spec with
   | Sim.Stopped _ -> ()
   | Sim.Completed _ -> Alcotest.fail "run completed before the kill point");
  let session = Sim.restore path in
  Sys.remove path;
  let mid = Sim.cycle session in
  while not (Sim.finished session) do Sim.step session done;
  let r = Sim.finish session in
  let after = r.Straight_core.Experiment.stats.Engine.faults_injected in
  Alcotest.(check int) "restored run replays the full fault schedule"
    total after;
  Alcotest.(check bool) "faults fired before the restore point" true
    (mid > 0 && total > 0);
  Alcotest.(check bool) "stats identical to the uninterrupted run" true
    (baseline.Straight_core.Experiment.stats
     = r.Straight_core.Experiment.stats);
  Alcotest.(check string) "output identical"
    baseline.Straight_core.Experiment.output
    r.Straight_core.Experiment.output

(* ---------- pool shutdown ---------- *)

let test_pool_sigterm_cleanup () =
  (* SIGTERM mid-sweep: Pool.run must kill and reap every worker (no
     orphans), fire on_interrupt (the temp-file sweep hook), and raise
     Interrupted — with partial results already delivered still valid *)
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "straight-pool-test.%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let pidfile j = Filename.concat dir (Printf.sprintf "worker-%d.pid" j) in
  (* worker: record the child pid, pretend to checkpoint (a torn temp
     file), then hang until killed *)
  let worker j =
    let oc = open_out (pidfile j) in
    Printf.fprintf oc "%d\n" (Unix.getpid ());
    close_out oc;
    let oc = open_out (Filename.concat dir
                         (Printf.sprintf "ckpt-%d.snap.tmp.%d" j
                            (Unix.getpid ()))) in
    close_out oc;
    Unix.sleepf 60.;
    "never"
  in
  (* the killer: a helper child that SIGTERMs us shortly after start *)
  let me = Unix.getpid () in
  flush stdout; flush stderr;
  let killer =
    match Unix.fork () with
    | 0 ->
      Unix.sleepf 0.5;
      (try Unix.kill me Sys.sigterm with _ -> ());
      Stdlib.exit 0
    | pid -> pid
  in
  let interrupted_hook = ref false in
  let outcome =
    try
      Sweep.Pool.run ~jobs:4 ~worker ~procs:2 ~timeout:120. ~retries:0
        ~on_interrupt:(fun () ->
            interrupted_hook := true;
            (* the sweep driver's hook: sweep torn temp files *)
            Array.iter
              (fun f ->
                 if String.length f > 5 && String.sub f 0 5 = "ckpt-" then
                   try Sys.remove (Filename.concat dir f)
                   with Sys_error _ -> ())
              (Sys.readdir dir))
        ~on_result:(fun _ _ -> ()) ();
      `Finished
    with Sweep.Pool.Interrupted s -> `Interrupted s
  in
  ignore (Unix.waitpid [] killer);
  (match outcome with
   | `Interrupted s ->
     Alcotest.(check bool) "raised Interrupted with the signal" true
       (s = Sys.sigterm)
   | `Finished -> Alcotest.fail "pool survived SIGTERM");
  Alcotest.(check bool) "on_interrupt hook ran" true !interrupted_hook;
  (* every recorded worker pid must be dead AND reaped: kill 0 raises
     ESRCH once the zombie is gone *)
  let still_alive = ref [] in
  Array.iter
    (fun f ->
       if Filename.check_suffix f ".pid" then begin
         let p = Filename.concat dir f in
         let pid =
           In_channel.with_open_text p (fun ic ->
               int_of_string (String.trim (Option.get (In_channel.input_line ic))))
         in
         (match Unix.kill pid 0 with
          | () -> still_alive := pid :: !still_alive
          | exception Unix.Unix_error (Unix.ESRCH, _, _) -> ());
         Sys.remove p
       end)
    (Sys.readdir dir);
  Alcotest.(check (list int)) "no orphan worker processes" [] !still_alive;
  (* the interrupt hook swept the torn checkpoint temp files *)
  let strays =
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun f -> String.length f > 5 && String.sub f 0 5 = "ckpt-")
  in
  Alcotest.(check (list string)) "no stray checkpoint temp files" [] strays;
  Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with _ -> ())
    (Sys.readdir dir);
  (try Unix.rmdir dir with _ -> ());
  (* the pool restored the previous handlers on the way out *)
  let prev = Sys.signal Sys.sigterm Sys.Signal_default in
  Alcotest.(check bool) "SIGTERM handler restored to default" true
    (prev = Sys.Signal_default)

(* ---------- exit-code scheme ---------- *)

let test_exit_codes_distinct () =
  (* one representative per failure class a driver can exit with *)
  let codes =
    [ Diag.Config_error; Diag.Parse_error; Diag.Exec_error;
      Diag.Fuel_exhausted; Diag.Sim_deadlock; Diag.Checker_divergence ]
  in
  let exits = List.map Diag.exit_code codes in
  Alcotest.(check int) "distinct exit codes"
    (List.length exits)
    (List.length (List.sort_uniq compare exits));
  List.iter
    (fun e -> Alcotest.(check bool) "nonzero, non-1 exit" true (e >= 2))
    exits

let suite =
  [ ("fault campaign (100 seeded runs, 4 models)", `Slow, test_fault_campaign);
    ("campaign determinism", `Quick, test_campaign_determinism);
    ("watchdog: deadlock snapshot", `Quick, test_watchdog_deadlock);
    ("restore then re-inject (fault schedule survives the snapshot)",
     `Slow, test_restore_then_reinject);
    ("pool: SIGTERM reaps workers and sweeps temp files", `Quick,
     test_pool_sigterm_cleanup);
    ("checker: divergence reported", `Quick, test_checker_divergence);
    ("exit codes distinct", `Quick, test_exit_codes_distinct) ]

let () = Alcotest.run "robustness" [ ("robustness", suite) ]
