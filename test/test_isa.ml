(* Unit and property tests for both instruction sets:
   encode/decode round-trips, parser/printer round-trips, field limits. *)

module S = Straight_isa.Isa
module SE = Straight_isa.Encoding
module SP = Straight_isa.Parser
module R = Riscv_isa.Isa
module RE = Riscv_isa.Encoding
module RP = Riscv_isa.Parser

let straight_insn = Alcotest.testable S.pp_resolved ( = )
let riscv_insn =
  Alcotest.testable (R.pp (fun fmt o -> Format.fprintf fmt "%+d" o)) ( = )

(* ---------- generators ---------- *)

let gen_dist = QCheck2.Gen.int_range 0 S.max_dist

let gen_straight : S.resolved QCheck2.Gen.t =
  let open QCheck2.Gen in
  let alu_ops =
    [ S.Add; S.Sub; S.And; S.Or; S.Xor; S.Sll; S.Srl; S.Sra; S.Slt; S.Sltu;
      S.Mul; S.Mulh; S.Div; S.Divu; S.Rem; S.Remu ]
  in
  let alui_ops =
    [ S.Addi; S.Andi; S.Ori; S.Xori; S.Slli; S.Srli; S.Srai; S.Slti; S.Sltui ]
  in
  let imm16 = int_range (-32768) 32767 in
  oneof
    [ (let* op = oneofl alu_ops and* a = gen_dist and* b = gen_dist in
       return (S.Alu (op, a, b)));
      (let* op = oneofl alui_ops and* a = gen_dist in
       (* shift immediates only encode in [0,31] *)
       let* i =
         match op with
         | S.Slli | S.Srli | S.Srai -> int_range 0 31
         | _ -> imm16
       in
       return (S.Alui (op, a, Int32.of_int i)));
      (let* i = int_range 0 0xFFFFF in return (S.Lui (Int32.of_int i)));
      (let* a = gen_dist in return (S.Rmov a));
      return S.Nop;
      (let* b = gen_dist and* o = imm16 in return (S.Ld (b, o)));
      (let* v = gen_dist and* b = gen_dist and* o = int_range (-32) 31 in
       return (S.St (v, b, o * 4)));
      (let* a = gen_dist and* o = imm16 in return (S.Bez (a, o)));
      (let* a = gen_dist and* o = imm16 in return (S.Bnz (a, o)));
      (let* o = int_range (-(1 lsl 25)) ((1 lsl 25) - 1) in return (S.J o));
      (let* o = int_range (-(1 lsl 25)) ((1 lsl 25) - 1) in return (S.Jal o));
      (let* a = gen_dist in return (S.Jr a));
      (let* i = imm16 in return (S.Spadd i));
      return S.Halt ]

let gen_reg = QCheck2.Gen.int_range 0 31

let gen_riscv : R.resolved QCheck2.Gen.t =
  let open QCheck2.Gen in
  let alu_ops =
    [ R.Add; R.Sub; R.Sll; R.Slt; R.Sltu; R.Xor; R.Srl; R.Sra; R.Or; R.And;
      R.Mul; R.Mulh; R.Mulhsu; R.Mulhu; R.Div; R.Divu; R.Rem; R.Remu ]
  in
  let conds = [ R.Beq; R.Bne; R.Blt; R.Bge; R.Bltu; R.Bgeu ] in
  let imm12 = int_range (-2048) 2047 in
  oneof
    [ (let* rd = gen_reg and* i = int_range 0 0xFFFFF in
       return (R.Lui (rd, Int32.of_int i)));
      (let* rd = gen_reg and* i = int_range 0 0xFFFFF in
       return (R.Auipc (rd, Int32.of_int i)));
      (let* rd = gen_reg and* o = int_range (-(1 lsl 19)) ((1 lsl 19) - 1) in
       return (R.Jal (rd, o * 2)));
      (let* rd = gen_reg and* rs = gen_reg and* i = imm12 in
       return (R.Jalr (rd, rs, i)));
      (let* c = oneofl conds and* a = gen_reg and* b = gen_reg
       and* o = int_range (-(1 lsl 11)) ((1 lsl 11) - 1) in
       return (R.Branch (c, a, b, o * 2)));
      (let* rd = gen_reg and* rs = gen_reg and* i = imm12 in
       return (R.Lw (rd, rs, i)));
      (let* rs2 = gen_reg and* rs1 = gen_reg and* i = imm12 in
       return (R.Sw (rs2, rs1, i)));
      (let* rd = gen_reg and* rs = gen_reg and* i = imm12 in
       return (R.Alui (R.Addi, rd, rs, i)));
      (let* rd = gen_reg and* rs = gen_reg and* sh = int_range 0 31 in
       let* op = oneofl [ R.Slli; R.Srli; R.Srai ] in
       return (R.Alui (op, rd, rs, sh)));
      (let* op = oneofl alu_ops and* rd = gen_reg and* rs1 = gen_reg
       and* rs2 = gen_reg in
       return (R.Alu (op, rd, rs1, rs2)));
      return R.Ebreak ]

(* ---------- property tests ---------- *)

let prop_straight_roundtrip =
  QCheck2.Test.make ~count:2000 ~name:"straight encode/decode roundtrip"
    ~print:S.to_string_resolved gen_straight (fun insn ->
      match SE.decode (SE.encode insn) with
      | Some insn' -> insn = insn'
      | None -> false)

let prop_riscv_roundtrip =
  QCheck2.Test.make ~count:2000 ~name:"riscv encode/decode roundtrip"
    ~print:(fun i -> Format.asprintf "%a" R.pp_resolved i)
    gen_riscv (fun insn ->
      match RE.decode (RE.encode insn) with
      | Some insn' -> insn = insn'
      | None -> false)

(* Printer/parser round-trip: print a symbolic instruction and re-parse it.
   We reuse the resolved generator and stringify targets. *)
let prop_straight_parse_roundtrip =
  QCheck2.Test.make ~count:1000 ~name:"straight print/parse roundtrip"
    ~print:S.to_string_resolved gen_straight (fun insn ->
      let sym = S.map_label string_of_int insn in
      let text = S.to_string_sym sym in
      let tokens = String.split_on_char ' ' text |> List.filter (( <> ) "") in
      SP.parse_insn tokens = sym)

(* ---------- unit tests ---------- *)

let test_straight_examples () =
  (* Fig. 1(a): Fibonacci via ADD [1] [2]. *)
  let i = SP.parse_insn [ "ADD"; "[1]"; "[2]" ] in
  Alcotest.check straight_insn "fib add" (S.Alu (S.Add, 1, 2))
    (S.map_label int_of_string i);
  let i = SP.parse_insn [ "ADDi"; "[0]"; "0" ] in
  Alcotest.check straight_insn "iota init" (S.Alui (S.Addi, 0, 0l))
    (S.map_label int_of_string i);
  Alcotest.check_raises "distance range"
    (SP.Parse_error "distance 1024 out of range") (fun () ->
      ignore (SP.parse_insn [ "RMOV"; "[1024]" ]))

let test_straight_field_limits () =
  (* 10-bit source fields: 1023 encodes, 1024 must be rejected. *)
  ignore (SE.encode (S.Rmov 1023));
  Alcotest.check_raises "dist overflow"
    (SE.Encode_error "rmov distance 1024 out of [0,1023]") (fun () ->
      ignore (SE.encode (S.Rmov 1024)));
  (* ST offset is 6 signed bits of words. *)
  ignore (SE.encode (S.St (1, 2, 124)));
  (try
     ignore (SE.encode (S.St (1, 2, 128)));
     Alcotest.fail "st offset 128 should not encode"
   with SE.Encode_error _ -> ())

(* ---------- exhaustive boundary round-trips ----------

   For EVERY opcode of both ISAs, encode -> decode -> encode at the
   extreme representable immediates (and just past them, which must be
   rejected).  The shift-amount cases pin the silent-truncation bug: an
   out-of-range shamt used to encode by dropping bits, so the word
   decoded back to a different instruction. *)

let roundtrips insn =
  match SE.decode (SE.encode insn) with
  | Some insn' -> insn = insn'
  | None -> false

let rejects insn =
  match SE.encode insn with
  | exception SE.Encode_error _ -> true
  | _ -> false

let check_rt name insn = Alcotest.(check bool) name true (roundtrips insn)
let check_rej name insn = Alcotest.(check bool) name true (rejects insn)

let test_straight_boundaries () =
  let all_alu =
    [ S.Add; S.Sub; S.And; S.Or; S.Xor; S.Sll; S.Srl; S.Sra; S.Slt; S.Sltu;
      S.Mul; S.Mulh; S.Div; S.Divu; S.Rem; S.Remu ]
  in
  List.iter
    (fun op ->
       check_rt "alu dists" (S.Alu (op, 0, S.max_dist));
       check_rt "alu dists" (S.Alu (op, S.max_dist, 1));
       check_rej "alu dist over" (S.Alu (op, S.max_dist + 1, 0)))
    all_alu;
  List.iter
    (fun op ->
       check_rt "alui imm16 min" (S.Alui (op, 0, -32768l));
       check_rt "alui imm16 max" (S.Alui (op, S.max_dist, 32767l));
       check_rej "alui imm16 under" (S.Alui (op, 0, -32769l));
       check_rej "alui imm16 over" (S.Alui (op, 0, 32768l)))
    [ S.Addi; S.Andi; S.Ori; S.Xori; S.Slti; S.Sltui ];
  (* shifts: only [0,31] encodes; 32/100/-1 used to truncate silently *)
  List.iter
    (fun op ->
       check_rt "shamt 0" (S.Alui (op, 1, 0l));
       check_rt "shamt 31" (S.Alui (op, 1, 31l));
       check_rej "shamt 32" (S.Alui (op, 1, 32l));
       check_rej "shamt 100" (S.Alui (op, 1, 100l));
       check_rej "shamt -1" (S.Alui (op, 1, -1l)))
    [ S.Slli; S.Srli; S.Srai ];
  check_rt "lui 0" (S.Lui 0l);
  check_rt "lui max" (S.Lui 0xFFFFFl);
  check_rej "lui over" (S.Lui 0x100000l);
  check_rej "lui neg" (S.Lui (-1l));
  check_rt "rmov max" (S.Rmov S.max_dist);
  check_rej "rmov over" (S.Rmov (S.max_dist + 1));
  check_rt "nop" S.Nop;
  check_rt "ld min" (S.Ld (1, -32768));
  check_rt "ld max" (S.Ld (S.max_dist, 32767));
  check_rej "ld over" (S.Ld (1, 32768));
  (* ST: signed 6-bit word offset => bytes in [-128, 124], word aligned *)
  check_rt "st min" (S.St (1, 2, SE.st_min_offset));
  check_rt "st max" (S.St (1, 2, SE.st_max_offset));
  check_rt "st 0" (S.St (S.max_dist, S.max_dist, 0));
  check_rej "st under" (S.St (1, 2, SE.st_min_offset - 4));
  check_rej "st over" (S.St (1, 2, SE.st_max_offset + 4));
  check_rej "st unaligned" (S.St (1, 2, 2));
  check_rej "st unaligned max" (S.St (1, 2, SE.st_max_offset + 1));
  check_rt "bez edges" (S.Bez (1, -32768));
  check_rt "bnz edges" (S.Bnz (S.max_dist, 32767));
  check_rej "bez over" (S.Bez (1, 32768));
  check_rej "bnz under" (S.Bnz (1, -32769));
  check_rt "j min" (S.J (-(1 lsl 25)));
  check_rt "j max" (S.J ((1 lsl 25) - 1));
  check_rej "j over" (S.J (1 lsl 25));
  check_rt "jal min" (S.Jal (-(1 lsl 25)));
  check_rt "jal max" (S.Jal ((1 lsl 25) - 1));
  check_rej "jal under" (S.Jal (-(1 lsl 25) - 1));
  check_rt "jr max" (S.Jr S.max_dist);
  check_rej "jr over" (S.Jr (S.max_dist + 1));
  check_rt "spadd min" (S.Spadd (-32768));
  check_rt "spadd max" (S.Spadd 32767);
  check_rej "spadd over" (S.Spadd 32768);
  check_rt "halt" S.Halt

let r_roundtrips insn =
  match RE.decode (RE.encode insn) with
  | Some insn' -> insn = insn'
  | None -> false

let r_rejects insn =
  match RE.encode insn with
  | exception RE.Encode_error _ -> true
  | _ -> false

let r_rt name insn = Alcotest.(check bool) name true (r_roundtrips insn)
let r_rej name insn = Alcotest.(check bool) name true (r_rejects insn)

let test_riscv_boundaries () =
  let all_alu =
    [ R.Add; R.Sub; R.Sll; R.Slt; R.Sltu; R.Xor; R.Srl; R.Sra; R.Or; R.And;
      R.Mul; R.Mulh; R.Mulhsu; R.Mulhu; R.Div; R.Divu; R.Rem; R.Remu ]
  in
  List.iter
    (fun op ->
       r_rt "alu regs" (R.Alu (op, 0, 31, 1));
       r_rt "alu regs" (R.Alu (op, 31, 0, 31)))
    all_alu;
  List.iter
    (fun op ->
       r_rt "alui imm12 min" (R.Alui (op, 1, 2, -2048));
       r_rt "alui imm12 max" (R.Alui (op, 31, 31, 2047));
       r_rej "alui imm12 under" (R.Alui (op, 1, 2, -2049));
       r_rej "alui imm12 over" (R.Alui (op, 1, 2, 2048)))
    [ R.Addi; R.Slti; R.Sltiu; R.Xori; R.Ori; R.Andi ];
  (* the pinned bug: slli/srli/srai used to mask the shamt to 5 bits, so
     e.g. slli rd, rs, 32 encoded as a shift by 0 *)
  List.iter
    (fun op ->
       r_rt "shamt 0" (R.Alui (op, 1, 2, 0));
       r_rt "shamt 31" (R.Alui (op, 1, 2, 31));
       r_rej "shamt 32" (R.Alui (op, 1, 2, 32));
       r_rej "shamt 33" (R.Alui (op, 1, 2, 33));
       r_rej "shamt 100" (R.Alui (op, 1, 2, 100));
       r_rej "shamt -1" (R.Alui (op, 1, 2, -1)))
    [ R.Slli; R.Srli; R.Srai ];
  r_rt "lui 0" (R.Lui (0, 0l));
  r_rt "lui max" (R.Lui (31, 0xFFFFFl));
  r_rej "lui over" (R.Lui (1, 0x100000l));
  r_rt "auipc max" (R.Auipc (31, 0xFFFFFl));
  r_rej "auipc over" (R.Auipc (1, 0x100000l));
  r_rt "jal min" (R.Jal (1, -(1 lsl 20)));
  r_rt "jal max" (R.Jal (31, (1 lsl 20) - 2));
  r_rej "jal odd" (R.Jal (1, 3));
  r_rej "jal over" (R.Jal (1, 1 lsl 20));
  r_rt "jalr edges" (R.Jalr (1, 2, -2048));
  r_rt "jalr edges" (R.Jalr (31, 31, 2047));
  r_rej "jalr over" (R.Jalr (1, 2, 2048));
  List.iter
    (fun c ->
       r_rt "branch min" (R.Branch (c, 1, 2, -4096));
       r_rt "branch max" (R.Branch (c, 31, 0, 4094));
       r_rej "branch odd" (R.Branch (c, 1, 2, 6 + 1));
       r_rej "branch over" (R.Branch (c, 1, 2, 4096)))
    [ R.Beq; R.Bne; R.Blt; R.Bge; R.Bltu; R.Bgeu ];
  r_rt "lw edges" (R.Lw (1, 2, -2048));
  r_rt "lw edges" (R.Lw (31, 31, 2047));
  r_rej "lw over" (R.Lw (1, 2, 2048));
  r_rt "sw edges" (R.Sw (1, 2, -2048));
  r_rt "sw edges" (R.Sw (31, 31, 2047));
  r_rej "sw under" (R.Sw (1, 2, -2049));
  r_rt "ebreak" R.Ebreak

let test_riscv_known_words () =
  (* Cross-checked against the RISC-V spec: addi x1, x2, 3. *)
  Alcotest.(check int32) "addi x1,x2,3" 0x00310093l
    (RE.encode (R.Alui (R.Addi, 1, 2, 3)));
  (* add x3, x4, x5 *)
  Alcotest.(check int32) "add x3,x4,x5" 0x005201B3l
    (RE.encode (R.Alu (R.Add, 3, 4, 5)));
  (* lw x6, 8(x7) *)
  Alcotest.(check int32) "lw x6,8(x7)" 0x0083A303l
    (RE.encode (R.Lw (6, 7, 8)));
  (* sw x8, 12(x9) *)
  Alcotest.(check int32) "sw x8,12(x9)" 0x0084A623l
    (RE.encode (R.Sw (8, 9, 12)));
  (* beq x10, x11, +16 *)
  Alcotest.(check int32) "beq x10,x11,+16" 0x00B50863l
    (RE.encode (R.Branch (R.Beq, 10, 11, 16)));
  (* jal x1, +2048 *)
  Alcotest.(check int32) "jal x1,+2048" 0x001000EFl
    (RE.encode (R.Jal (1, 2048)));
  (* mul x1, x2, x3: funct7=1 *)
  Alcotest.(check int32) "mul x1,x2,x3" 0x023100B3l
    (RE.encode (R.Alu (R.Mul, 1, 2, 3)));
  Alcotest.(check int32) "ebreak" 0x00100073l (RE.encode R.Ebreak)

let test_riscv_parser () =
  Alcotest.check riscv_insn "lw a0, 8(sp)"
    (R.Lw (10, 2, 8))
    (R.map_label (fun _ -> 0) (RP.parse_insn [ "lw"; "a0"; "8(sp)" ]));
  Alcotest.check riscv_insn "ret" (R.Jalr (0, 1, 0))
    (R.map_label (fun _ -> 0) (RP.parse_insn [ "ret" ]));
  Alcotest.check riscv_insn "mv t0, t1"
    (R.Alui (R.Addi, 5, 6, 0))
    (R.map_label (fun _ -> 0) (RP.parse_insn [ "mv"; "t0"; "t1" ]))

let test_kind_classification () =
  Alcotest.(check bool) "rmov kind" true (S.kind (S.Rmov 1) = S.Krmov);
  Alcotest.(check bool) "mul kind" true (S.kind (S.Alu (S.Mul, 1, 2)) = S.Kmul);
  Alcotest.(check bool) "div kind" true (S.kind (S.Alu (S.Rem, 1, 2)) = S.Kdiv);
  Alcotest.(check bool) "spadd kind" true (S.kind (S.Spadd 8) = S.Kalu);
  Alcotest.(check bool) "jr kind" true (S.kind (S.Jr 3) = S.Kjump);
  Alcotest.(check bool) "riscv branch" true
    (R.kind (R.Branch (R.Beq, 1, 2, 0)) = R.Kbranch)

let test_eval_alu_corners () =
  Alcotest.(check int32) "div overflow" Int32.min_int
    (S.eval_alu S.Div Int32.min_int (-1l));
  Alcotest.(check int32) "div by zero" (-1l) (S.eval_alu S.Div 7l 0l);
  Alcotest.(check int32) "rem by zero" 7l (S.eval_alu S.Rem 7l 0l);
  Alcotest.(check int32) "sltu" 1l (S.eval_alu S.Sltu 1l (-1l));
  Alcotest.(check int32) "slt" 0l (S.eval_alu S.Slt 1l (-1l));
  Alcotest.(check int32) "sra" (-1l) (S.eval_alu S.Sra (-16l) 4l);
  Alcotest.(check int32) "srl" 0x0FFFFFFFl (S.eval_alu S.Srl (-1l) 4l);
  Alcotest.(check int32) "mulh" 1l (S.eval_alu S.Mulh 0x10000l 0x10000l);
  Alcotest.(check int32) "divu by zero" (-1l) (R.eval_alu R.Divu 5l 0l);
  Alcotest.(check int32) "mulhu" 0xFFFFFFFEl (R.eval_alu R.Mulhu (-1l) (-1l))

let suite =
  [ ("straight examples", `Quick, test_straight_examples);
    ("straight field limits", `Quick, test_straight_field_limits);
    ("straight boundary roundtrips", `Quick, test_straight_boundaries);
    ("riscv boundary roundtrips", `Quick, test_riscv_boundaries);
    ("riscv known encodings", `Quick, test_riscv_known_words);
    ("riscv parser", `Quick, test_riscv_parser);
    ("kind classification", `Quick, test_kind_classification);
    ("alu corner cases", `Quick, test_eval_alu_corners);
    QCheck_alcotest.to_alcotest prop_straight_roundtrip;
    QCheck_alcotest.to_alcotest prop_riscv_roundtrip;
    QCheck_alcotest.to_alcotest prop_straight_parse_roundtrip ]

let () = Alcotest.run "isa" [ ("isa", suite) ]
