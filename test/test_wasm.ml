(* WASM front-end battery (DESIGN.md §15).

   Three layers:
   - conformance fixtures under wasm_fixtures/: accept cases carry their
     expected console output (`;; expect:` lines) and exit code
     (`;; expect-exit:`), checked against the IR interpreter at O0/O1/O2
     and against both back ends; reject cases carry the structured Diag
     check class (`;; expect-reject:`) the front-end must raise;
   - translation validation + static lint over every WASM workload at
     every optimization level on both back ends, zero Error findings;
   - QCheck properties of the seeded WASM fuzz generator: determinism
     (same seed, same source, same SSA digest) and validity (every
     generated module type-checks and lowers). *)

module Ir = Ssa_ir.Ir

(* [dune runtest] runs in the stanza directory, [dune exec] wherever the
   user stands; accept both. *)
let fixtures_dir =
  if Sys.file_exists "wasm_fixtures" then "wasm_fixtures"
  else Filename.concat "test" "wasm_fixtures"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let fixture_files prefix =
  Sys.readdir fixtures_dir
  |> Array.to_list
  |> List.filter (fun f ->
      String.length f > 0 && f.[0] = prefix && Filename.check_suffix f ".wat")
  |> List.sort compare

(* ---------- fixture header expectations ---------- *)

type expect = {
  output : string;          (* concatenated `;; expect:` lines *)
  exit_code : int32;        (* `;; expect-exit:`, default 0 *)
  reject : string option;   (* `;; expect-reject:` Diag check class *)
}

let strip_prefix p s =
  let lp = String.length p in
  if String.length s >= lp && String.sub s 0 lp = p then
    Some (String.trim (String.sub s lp (String.length s - lp)))
  else None

let expectations src : expect =
  let out = Buffer.create 64 in
  let exit_code = ref 0l in
  let reject = ref None in
  List.iter
    (fun line ->
       let line = String.trim line in
       match strip_prefix ";; expect-exit:" line with
       | Some v -> exit_code := Int32.of_string v
       | None ->
         match strip_prefix ";; expect-reject:" line with
         | Some v -> reject := Some v
         | None ->
           match strip_prefix ";; expect:" line with
           | Some v -> Buffer.add_string out v; Buffer.add_char out '\n'
           | None -> ())
    (String.split_on_char '\n' src);
  { output = Buffer.contents out; exit_code = !exit_code; reject = !reject }

(* ---------- execution pipelines ---------- *)

(* The back ends mutate the IR they compile, so every consumer lowers its
   own copy from source. *)
let compile_at level src =
  let p = Wasm.Front.compile src in
  List.iter (Ssa_ir.Passes.optimize_at level) p.Ir.funcs;
  List.iter Ssa_ir.Analysis.validate p.Ir.funcs;
  p

let run_interp ~level src = Ssa_ir.Interp.run (compile_at level src)

let run_straight ~level ~max_dist ~opt src =
  let p = compile_at opt src in
  let config = { Straight_cc.Codegen.max_dist; level } in
  let image = Straight_cc.Codegen.compile_to_image ~config p in
  let r =
    Iss.Straight_iss.run
      ~config:{ Iss.Straight_iss.default_config with max_insns = 10_000_000 }
      image
  in
  r.Iss.Trace.output

let run_riscv ~opt src =
  let p = compile_at opt src in
  let image = Riscv_cc.Codegen.compile_to_image p in
  let r =
    Iss.Riscv_iss.run
      ~config:{ Iss.Riscv_iss.default_config with max_insns = 10_000_000 }
      image
  in
  r.Iss.Trace.output

(* ---------- accept fixtures ---------- *)

let test_accept_fixture file () =
  let src = read_file (Filename.concat fixtures_dir file) in
  let e = expectations src in
  (* interpreter at every optimization level: output and exit code *)
  List.iter
    (fun (lname, level) ->
       let out, code = run_interp ~level src in
       Alcotest.(check string) (file ^ " interp " ^ lname) e.output out;
       Alcotest.(check int32) (file ^ " exit " ^ lname) e.exit_code code)
    [ ("O0", Ssa_ir.Passes.O0); ("O1", Ssa_ir.Passes.O1);
      ("O2", Ssa_ir.Passes.O2) ];
  (* both back ends, both codegen levels, wide and tight distances *)
  List.iter
    (fun (cname, level, max_dist, opt) ->
       Alcotest.(check string) (file ^ " " ^ cname) e.output
         (run_straight ~level ~max_dist ~opt src))
    [ ("straight re+1023 O2", Straight_cc.Codegen.Re_plus, 1023,
       Ssa_ir.Passes.O2);
      ("straight raw1023 O0", Straight_cc.Codegen.Raw, 1023,
       Ssa_ir.Passes.O0);
      ("straight re+31 O2", Straight_cc.Codegen.Re_plus, 31,
       Ssa_ir.Passes.O2);
      ("straight raw31 O2", Straight_cc.Codegen.Raw, 31, Ssa_ir.Passes.O2) ];
  Alcotest.(check string) (file ^ " riscv O2") e.output
    (run_riscv ~opt:Ssa_ir.Passes.O2 src);
  Alcotest.(check string) (file ^ " riscv O0") e.output
    (run_riscv ~opt:Ssa_ir.Passes.O0 src)

(* ---------- reject fixtures ---------- *)

let test_reject_fixture file () =
  let src = read_file (Filename.concat fixtures_dir file) in
  let e = expectations src in
  let expected =
    match e.reject with
    | Some c -> c
    | None -> Alcotest.failf "%s: missing ;; expect-reject: header" file
  in
  match Wasm.Front.compile src with
  | _ -> Alcotest.failf "%s: accepted a module that must be rejected" file
  | exception Diag.Error d ->
    Alcotest.(check string) (file ^ " code") "WASM_ERROR"
      (Diag.code_name d.Diag.code);
    Alcotest.(check (option string)) (file ^ " check class")
      (Some expected)
      (List.assoc_opt "check" d.Diag.context)

(* ---------- TV + lint over the WASM workloads ---------- *)

let wasm_workloads =
  [ Workloads.wasm_sieve ~limit:200 ();
    Workloads.wasm_crc32 ~nbytes:32 ();
    Workloads.wasm_expr ~iters:20 () ]

let opt_levels =
  [ ("O0", Ssa_ir.Passes.O0); ("O1", Ssa_ir.Passes.O1);
    ("O2", Ssa_ir.Passes.O2) ]

let finding_to_string (f : Lint_report.finding) =
  Printf.sprintf "%s: %s" f.Lint_report.check f.Lint_report.message

let check_no_errors name findings =
  Alcotest.(check (list string)) name []
    (List.map finding_to_string (Lint_report.errors findings))

let test_tv_workloads () =
  List.iter
    (fun (w : Workloads.t) ->
       List.iter
         (fun (lname, level) ->
            let tag what =
              Printf.sprintf "%s %s %s" w.Workloads.name lname what
            in
            let prog () = compile_at level w.Workloads.source in
            check_no_errors (tag "tv straight re+")
              (Tv.Validate.validate_straight (prog ()));
            check_no_errors (tag "tv straight raw31")
              (Tv.Validate.validate_straight
                 ~config:{ Straight_cc.Codegen.max_dist = 31;
                           level = Straight_cc.Codegen.Raw }
                 (prog ()));
            check_no_errors (tag "tv riscv")
              (Tv.Validate.validate_riscv (prog ())))
         opt_levels)
    wasm_workloads

let test_lint_workloads () =
  List.iter
    (fun (w : Workloads.t) ->
       List.iter
         (fun (lname, level) ->
            let tag what =
              Printf.sprintf "%s %s %s" w.Workloads.name lname what
            in
            let simage =
              Straight_cc.Codegen.compile_to_image
                (compile_at level w.Workloads.source)
            in
            check_no_errors (tag "lint straight")
              (Straight_lint.Lint.lint simage);
            let rimage =
              Riscv_cc.Codegen.compile_to_image
                (compile_at level w.Workloads.source)
            in
            check_no_errors (tag "lint riscv") (Riscv_lint.Lint.lint rimage))
         opt_levels)
    wasm_workloads

(* ---------- fuzz generator properties ---------- *)

let ssa_digest src =
  let p = Wasm.Front.compile src in
  List.iter Ssa_ir.Passes.optimize p.Ir.funcs;
  Digest.to_hex
    (Digest.string (String.concat "\n" (List.map Ir.func_to_string p.Ir.funcs)))

let prop_gen_deterministic =
  QCheck2.Test.make ~count:60 ~name:"wasm gen: same seed, same SSA digest"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
       let s1 = Fuzz.Gen_wasm.render (Fuzz.Gen_wasm.generate seed) in
       let s2 = Fuzz.Gen_wasm.render (Fuzz.Gen_wasm.generate seed) in
       if s1 <> s2 then
         QCheck2.Test.fail_reportf "seed %d: nondeterministic source" seed
       else if ssa_digest s1 <> ssa_digest s2 then
         QCheck2.Test.fail_reportf "seed %d: nondeterministic SSA" seed
       else true)

let prop_gen_valid =
  QCheck2.Test.make ~count:120 ~name:"wasm gen: every module type-checks"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
       let src = Fuzz.Gen_wasm.render (Fuzz.Gen_wasm.generate seed) in
       match Wasm.Front.compile src with
       | p ->
         List.iter Ssa_ir.Analysis.validate p.Ir.funcs;
         true
       | exception Diag.Error d ->
         QCheck2.Test.fail_reportf "seed %d rejected: %s" seed
           d.Diag.message)

(* ---------- front-end sniffing ---------- *)

let test_sniffing () =
  Alcotest.(check bool) "wat sniffed" true
    (Wasm.Front.looks_like_wat
       ";; leading comment\n(module (func $main (export \"main\") \
        (result i32) (i32.const 0)))");
  Alcotest.(check bool) "minic not sniffed" false
    (Wasm.Front.looks_like_wat "int main() { return 0; }");
  Alcotest.(check bool) "wat filename" true
    (Wasm.Front.is_wat_filename "kernel.wat");
  Alcotest.(check bool) "minic filename" false
    (Wasm.Front.is_wat_filename "kernel.mc");
  (* compile_any routes each front end correctly *)
  let wat =
    "(module (func $main (export \"main\") (result i32) (i32.const 3)))"
  in
  let p = Wasm.Front.compile_any wat in
  Alcotest.(check int32) "wat via compile_any" 3l
    (snd (Ssa_ir.Interp.run p));
  let mc = "int main() { return 4; }" in
  let p = Wasm.Front.compile_any mc in
  Alcotest.(check int32) "minic via compile_any" 4l
    (snd (Ssa_ir.Interp.run p))

(* ---------- suite ---------- *)

let accept_cases =
  List.map
    (fun f -> Alcotest.test_case f `Quick (test_accept_fixture f))
    (fixture_files 'a')

let reject_cases =
  List.map
    (fun f -> Alcotest.test_case f `Quick (test_reject_fixture f))
    (fixture_files 'r')

let () =
  Alcotest.run "wasm"
    [ ("accept-fixtures", accept_cases);
      ("reject-fixtures", reject_cases);
      ("front-end",
       [ Alcotest.test_case "sniffing" `Quick test_sniffing ]);
      ("tv",
       [ Alcotest.test_case "wasm workloads x O0-O2 x both back ends"
           `Quick test_tv_workloads ]);
      ("lint",
       [ Alcotest.test_case "wasm workloads x O0-O2 x both back ends"
           `Quick test_lint_workloads ]);
      ("generator",
       [ QCheck_alcotest.to_alcotest prop_gen_deterministic;
         QCheck_alcotest.to_alcotest prop_gen_valid ]) ]
