(* Sweep-subsystem tests:

   - Params JSON round-trip and stable digest (the cache/memo key);
   - grid expansion (axes multiply, digests are distinct);
   - the content-addressed store (hit after save, miss across keys,
     corrupt entries degrade to misses);
   - the fork pool (results, worker exceptions, retry exhaustion,
     timeout kill);
   - the in-process driver cache contract (second run = all hits);
   - the pinned golden corpus: the 12-point 3x2x2 grid's cycles and
     CPI stacks must match test/sweep_golden.json exactly.  Regenerate
     the corpus after an intentional timing change with
     SWEEP_GOLDEN_RECORD=1 dune exec test/test_sweep.exe *)

module Params = Ooo_common.Params
module Stats = Ooo_common.Stats
module J = Stats.Json
module Inject = Ooo_common.Inject

(* ---------- Params serialization ---------- *)

let variant_models () =
  [ Params.ss_2way;
    Params.straight_2way;
    Params.ss_4way;
    Params.straight_4way;
    Params.with_tage Params.ss_4way;
    Params.with_checkpoints ~n:8 Params.ss_4way;
    Params.with_ideal_recovery Params.straight_2way;
    Params.with_faults (Inject.plan ~period:500 42) Params.ss_2way;
    Params.with_faults
      (Inject.plan ~kinds:[ Inject.Flip_prediction; Inject.Corrupt_cache_tag ]
         7)
      Params.straight_4way;
    { Params.ss_4way with Params.l3 = None; name = "SS-4way-nol3" } ]

let test_params_roundtrip () =
  List.iter
    (fun p ->
       let p' = Params.of_json (Params.to_json p) in
       Alcotest.(check bool)
         (Printf.sprintf "%s: of_json (to_json p) = p" p.Params.name)
         true (Params.equal p p');
       (* the round-trip survives the compact textual rendering too *)
       let p'' =
         Params.of_json (J.of_string (J.to_string ~indent:false (Params.to_json p)))
       in
       Alcotest.(check bool)
         (Printf.sprintf "%s: text round-trip" p.Params.name)
         true (Params.equal p p''))
    (variant_models ())

let test_params_digest () =
  (* equal configs digest equally; any field change moves the digest *)
  let d = Params.digest Params.ss_4way in
  Alcotest.(check string) "digest is deterministic" d
    (Params.digest { Params.ss_4way with Params.name = Params.ss_4way.Params.name });
  let variants =
    [ { Params.ss_4way with Params.rob_entries = 225 };
      { Params.ss_4way with Params.ideal_recovery = true };
      { Params.ss_4way with Params.predictor = Params.Tage };
      { Params.ss_4way with Params.rename = Params.Rp };
      Params.with_faults (Inject.plan 1) Params.ss_4way ]
  in
  List.iter
    (fun v ->
       Alcotest.(check bool)
         (Printf.sprintf "digest separates %s variant" v.Params.name)
         true
         (Params.digest v <> d))
    variants;
  (* malformed input is a structured error, not a crash *)
  Alcotest.(check bool) "of_json rejects junk" true
    (match Params.of_json (J.Obj [ ("name", J.Str "x") ]) with
     | _ -> false
     | exception Params.Json_error _ -> true)

(* ---------- grid expansion ---------- *)

let test_grid_expand () =
  let spec = Sweep.Grid.default ~quick:true in
  let points = Sweep.Grid.expand spec in
  Alcotest.(check int) "default grid is 2x2x2x2x2" 32 (List.length points);
  let digests =
    List.sort_uniq compare
      (List.map
         (fun (pt : Sweep.Grid.point) ->
            (Params.digest pt.Sweep.Grid.params,
             pt.Sweep.Grid.workload.Workloads.name))
         points)
  in
  Alcotest.(check int) "every point is distinct" 32 (List.length digests);
  (* axis overrides multiply *)
  let bigger =
    Sweep.Grid.expand
      { spec with Sweep.Grid.robs = [ None; Some 128 ]; widths = [ 2; 4; 8 ] }
  in
  Alcotest.(check int) "robs x widths multiply" (32 * 3) (List.length bigger);
  (* a rob override rescales the RMT register file *)
  let rob_pt =
    List.find
      (fun (pt : Sweep.Grid.point) ->
         pt.Sweep.Grid.params.Params.rob_entries = 128
         && pt.Sweep.Grid.machine = Sweep.Grid.Ss)
      bigger
  in
  (match rob_pt.Sweep.Grid.params.Params.rename with
   | Params.Rmt { phys_regs } ->
     Alcotest.(check int) "phys_regs = 32 + rob" 160 phys_regs
   | _ -> Alcotest.fail "SS point lost its RMT rename model");
  Alcotest.(check bool) "machine labels round-trip" true
    (List.for_all
       (fun m ->
          Sweep.Grid.machine_of_label (Sweep.Grid.machine_label m) = Some m)
       [ Sweep.Grid.Ss; Sweep.Grid.Ss_ckpt 8; Sweep.Grid.Straight_raw;
         Sweep.Grid.Straight_re ])

(* ---------- store ---------- *)

let tmpdir prefix = Filename.temp_dir prefix ""

let sample_record () : Sweep.Runner.record =
  { Sweep.Runner.model = "SS-2way"; target = "SS"; workload = "fib";
    iterations = 1; machine = "ss"; width = 2; rob = 64; sched = 16;
    predictor = "gshare"; ideal = false; params_hash = "abc"; cycles = 123;
    committed = 456; ipc = 3.7; branch_mispredicts = 8;
    cpi = { Stats.base = 100; frontend = 10; branch_squash = 5; memory = 6;
            structural = 2 };
    host_seconds = 0.25; cached = false; sample = None; sample_ci95 = 0.;
    sample_intervals = 0 }

let test_store () =
  let dir = tmpdir "straight-store" in
  let r = sample_record () in
  Alcotest.(check bool) "miss before save" true
    (Sweep.Store.lookup ~dir "deadbeef" = None);
  Sweep.Store.save ~dir "deadbeef" r;
  (match Sweep.Store.lookup ~dir "deadbeef" with
   | None -> Alcotest.fail "hit after save"
   | Some got ->
     Alcotest.(check bool) "lookup marks the record cached" true
       got.Sweep.Runner.cached;
     Alcotest.(check bool) "payload survives the disk round-trip" true
       ({ got with Sweep.Runner.cached = false } = r));
  Alcotest.(check bool) "other keys still miss" true
    (Sweep.Store.lookup ~dir "deadbee0" = None);
  (* a torn/corrupt entry degrades to a miss, never an exception *)
  Out_channel.with_open_text
    (Filename.concat dir "cache/corrupt.json")
    (fun oc -> output_string oc "{\"model\": \"SS");
  Alcotest.(check bool) "corrupt entry is a miss" true
    (Sweep.Store.lookup ~dir "corrupt" = None)

(* ---------- fork pool ---------- *)

let test_pool_basic () =
  let results = Array.make 20 None in
  Sweep.Pool.run ~jobs:20
    ~worker:(fun i -> string_of_int (i * i))
    ~procs:3 ~timeout:30. ~retries:0
    ~on_result:(fun i r -> results.(i) <- Some r)
    ();
  Array.iteri
    (fun i r ->
       match r with
       | Some (Ok s) ->
         Alcotest.(check string)
           (Printf.sprintf "job %d result" i)
           (string_of_int (i * i))
           s
       | Some (Error e) -> Alcotest.failf "job %d failed: %s" i e
       | None -> Alcotest.failf "job %d never reported" i)
    results

let test_pool_worker_exception () =
  let results = Array.make 6 None in
  Sweep.Pool.run ~jobs:6
    ~worker:(fun i -> if i = 3 then failwith "boom" else string_of_int i)
    ~procs:2 ~timeout:30. ~retries:1
    ~on_result:(fun i r -> results.(i) <- Some r)
    ();
  Array.iteri
    (fun i r ->
       match (i, r) with
       | 3, Some (Error msg) ->
         let contains hay needle =
           let n = String.length needle and h = String.length hay in
           let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
           at 0
         in
         Alcotest.(check bool) "failure names the exception" true
           (contains msg "boom")
       | 3, Some (Ok _) -> Alcotest.fail "job 3 should have failed"
       | _, Some (Ok _) -> ()
       | _, Some (Error e) -> Alcotest.failf "job %d failed: %s" i e
       | _, None -> Alcotest.failf "job %d never reported" i)
    results

let test_pool_timeout () =
  let results = Array.make 3 None in
  Sweep.Pool.run ~jobs:3
    ~worker:(fun i ->
        if i = 1 then
          while true do
            ignore (Unix.select [] [] [] 0.05)
          done;
        string_of_int i)
    ~procs:2 ~timeout:0.5 ~retries:0
    ~on_result:(fun i r -> results.(i) <- Some r)
    ();
  (match results.(1) with
   | Some (Error msg) ->
     Alcotest.(check bool) "hung job reports a timeout" true
       (String.length msg >= 7 && String.sub msg 0 7 = "timeout")
   | Some (Ok _) -> Alcotest.fail "hung job cannot succeed"
   | None -> Alcotest.fail "hung job never reported");
  List.iter
    (fun i ->
       match results.(i) with
       | Some (Ok _) -> ()
       | _ -> Alcotest.failf "job %d should have succeeded" i)
    [ 0; 2 ]

let test_pool_callback_exception () =
  (* an exception escaping [on_result] must not leak workers or leave
     our signal handlers hijacked (the pool swaps in its own for the
     duration of [run]) *)
  let dir = tmpdir "straight-pool-cb" in
  let mark = ref 0 in
  let f _ = incr mark in
  let h = Sys.Signal_handle f in
  let prev_int = Sys.signal Sys.sigint h in
  let prev_term = Sys.signal Sys.sigterm h in
  let escaped =
    match
      Sweep.Pool.run ~jobs:3
        ~worker:(fun i ->
            let oc =
              open_out (Filename.concat dir (Printf.sprintf "w%d.pid" i))
            in
            output_string oc (string_of_int (Unix.getpid ()));
            close_out oc;
            if i = 0 then begin
              (* give the other worker time to start and write its pid *)
              ignore (Unix.select [] [] [] 0.3);
              "fast"
            end
            else begin
              while true do
                ignore (Unix.select [] [] [] 0.05)
              done;
              assert false
            end)
        ~procs:2 ~timeout:30. ~retries:0
        ~on_result:(fun _ _ -> failwith "callback boom")
        ()
    with
    | () -> false
    | exception Failure m -> m = "callback boom"
  in
  Alcotest.(check bool) "the callback's exception escapes as-is" true escaped;
  (* every worker the pool forked must be dead and reaped *)
  let pids =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".pid")
    |> List.filter_map (fun f ->
        let ic = open_in (Filename.concat dir f) in
        let pid = int_of_string_opt (input_line ic) in
        close_in ic;
        pid)
  in
  Alcotest.(check bool) "some worker pids were recorded" true (pids <> []);
  List.iter
    (fun pid ->
       let rec dead tries =
         match Unix.kill pid 0 with
         | () -> tries > 0 && (ignore (Unix.select [] [] [] 0.05); dead (tries - 1))
         | exception Unix.Unix_error (Unix.ESRCH, _, _) -> true
         | exception Unix.Unix_error _ -> false
       in
       Alcotest.(check bool)
         (Printf.sprintf "worker %d no longer exists" pid)
         true (dead 40))
    pids;
  (match Unix.waitpid [ Unix.WNOHANG ] (-1) with
   | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
   | _ -> Alcotest.fail "an unreaped child survived the pool");
  (* the handlers we installed before [run] must be back in force *)
  let cur_int = Sys.signal Sys.sigint prev_int in
  let cur_term = Sys.signal Sys.sigterm prev_term in
  let is_ours = function Sys.Signal_handle g -> g == f | _ -> false in
  Alcotest.(check bool) "SIGINT handler restored" true (is_ours cur_int);
  Alcotest.(check bool) "SIGTERM handler restored" true (is_ours cur_term)

(* ---------- stale temp hygiene ---------- *)

let test_store_stale_tmp_sweep () =
  let dir = tmpdir "straight-store-stale" in
  (* populate the store first: [save] marks the directory swept for
     this process, so only the explicit [sweep_stale] below may clean *)
  Sweep.Store.save ~dir "cafe" (sample_record ());
  let cache = Filename.concat dir "cache" in
  (* a provably dead pid: a child that already exited and was reaped *)
  let dead_pid =
    match Unix.fork () with
    | 0 -> Unix._exit 0
    | pid ->
      ignore (Unix.waitpid [] pid);
      pid
  in
  let plant name =
    let f = Filename.concat cache name in
    let oc = open_out f in
    output_string oc "{\"torn\": true}";
    close_out oc;
    f
  in
  let stale = plant (Printf.sprintf "dead.json.tmp.%d" dead_pid) in
  let live = plant (Printf.sprintf "live.json.tmp.%d" (Unix.getpid ())) in
  Alcotest.(check int) "exactly the dead writer's file is swept" 1
    (Sweep.Store.sweep_stale ~dir);
  Alcotest.(check bool) "stale temp removed" false (Sys.file_exists stale);
  Alcotest.(check bool) "live writer's temp kept" true (Sys.file_exists live);
  Alcotest.(check bool) "real entries survive the sweep" true
    (Sweep.Store.lookup ~dir "cafe" <> None)

let test_store_rename_failure_unlinks_tmp () =
  let dir = tmpdir "straight-store-rename" in
  Sweep.Store.save ~dir "aaaa" (sample_record ());
  let cache = Filename.concat dir "cache" in
  (* an existing directory at the destination makes the rename fail *)
  Unix.mkdir (Filename.concat cache "blocked.json") 0o755;
  (match Sweep.Store.save ~dir "blocked" (sample_record ()) with
   | () -> Alcotest.fail "rename onto a directory should raise"
   | exception (Unix.Unix_error _ | Sys_error _) -> ());
  let has_tmp_marker f =
    let marker = ".tmp." in
    let n = String.length f and m = String.length marker in
    let rec has i = i + m <= n && (String.sub f i m = marker || has (i + 1)) in
    has 0
  in
  let leftovers =
    Sys.readdir cache |> Array.to_list |> List.filter has_tmp_marker
  in
  Alcotest.(check (list string)) "no temp file stranded by the failed rename"
    [] leftovers

(* ---------- driver cache contract ---------- *)

let test_driver_cache_hits () =
  let dir = tmpdir "straight-sweep" in
  let spec = Sweep.Grid.smoke in
  let r1, s1 = Sweep.Driver.sweep ~procs:0 ~cache_dir:dir spec in
  Alcotest.(check int) "first run simulates everything" 2
    s1.Sweep.Driver.executed;
  Alcotest.(check int) "first run hits nothing" 0 s1.Sweep.Driver.cached;
  let r2, s2 = Sweep.Driver.sweep ~procs:0 ~cache_dir:dir spec in
  Alcotest.(check int) "second run simulates nothing" 0
    s2.Sweep.Driver.executed;
  Alcotest.(check int) "second run is all cache hits" 2
    s2.Sweep.Driver.cached;
  List.iter2
    (fun (a : Sweep.Runner.record) (b : Sweep.Runner.record) ->
       Alcotest.(check bool)
         (Printf.sprintf "%s: cached record equals fresh" a.Sweep.Runner.workload)
         true
         ({ a with Sweep.Runner.cached = false; host_seconds = 0. }
          = { b with Sweep.Runner.cached = false; host_seconds = 0. }))
    r1 r2;
  (* sweep.json document shape *)
  let doc = Sweep.Driver.to_json spec s2 r2 in
  Alcotest.(check (option string)) "schema" (Some "straight-sweep/1")
    (J.get_string (J.member "schema" doc));
  (match J.get_list (J.member "records" doc) with
   | Some l -> Alcotest.(check int) "one record per point" 2 (List.length l)
   | None -> Alcotest.fail "records list missing")

(* ---------- golden corpus ---------- *)

(* dune runtest sandboxes the dep beside the test binary; dune exec
   from the repo root sees it under test/ *)
let golden_path =
  if Sys.file_exists "sweep_golden.json" then "sweep_golden.json"
  else "test/sweep_golden.json"

let golden_of_record (r : Sweep.Runner.record) : J.t =
  J.Obj
    [ ("model", J.Str r.Sweep.Runner.model);
      ("target", J.Str r.Sweep.Runner.target);
      ("workload", J.Str r.Sweep.Runner.workload);
      ("iterations", J.Int r.Sweep.Runner.iterations);
      ("machine", J.Str r.Sweep.Runner.machine);
      ("width", J.Int r.Sweep.Runner.width);
      ("predictor", J.Str r.Sweep.Runner.predictor);
      ("ideal", J.Bool r.Sweep.Runner.ideal);
      ("cycles", J.Int r.Sweep.Runner.cycles);
      ("committed", J.Int r.Sweep.Runner.committed);
      ("cpi_stack", Stats.cpi_to_json r.Sweep.Runner.cpi) ]

let run_golden_grid () =
  Sweep.Grid.expand Sweep.Grid.golden
  |> List.map Sweep.Runner.run
  |> List.sort Sweep.Runner.compare_order

let record_golden () =
  let rs = run_golden_grid () in
  Out_channel.with_open_text golden_path (fun oc ->
      output_string oc (J.to_string (J.List (List.map golden_of_record rs))));
  Printf.printf "recorded %d golden points to %s\n%!" (List.length rs)
    golden_path

let test_golden_corpus () =
  let text =
    try In_channel.with_open_text golden_path In_channel.input_all
    with Sys_error _ ->
      Alcotest.fail
        "test/sweep_golden.json missing; regenerate with \
         SWEEP_GOLDEN_RECORD=1 dune exec test/test_sweep.exe"
  in
  let golden =
    match J.of_string text with
    | J.List l -> l
    | _ -> Alcotest.fail "sweep_golden.json: expected a list"
  in
  let fresh = run_golden_grid () in
  Alcotest.(check int) "golden corpus covers the 3x2x2 grid" 12
    (List.length golden);
  Alcotest.(check int) "grid size unchanged" (List.length golden)
    (List.length fresh);
  List.iter2
    (fun want (got : Sweep.Runner.record) ->
       let label =
         Printf.sprintf "%s/%s/%s" got.Sweep.Runner.model
           got.Sweep.Runner.target got.Sweep.Runner.workload
       in
       (* the diff is exact: any cycle or CPI-bucket drift anywhere on
          the grid fails with the offending point named *)
       Alcotest.(check bool)
         (label ^ ": cycles and CPI stack match the pinned corpus")
         true
         (golden_of_record got = want))
    golden fresh

let props_suite =
  [ Alcotest.test_case "params: json round-trip" `Quick test_params_roundtrip;
    Alcotest.test_case "params: stable digest" `Quick test_params_digest;
    Alcotest.test_case "grid: expansion" `Quick test_grid_expand;
    Alcotest.test_case "store: content addressing" `Quick test_store;
    Alcotest.test_case "pool: fan-out/fan-in" `Quick test_pool_basic;
    Alcotest.test_case "pool: worker exception" `Quick
      test_pool_worker_exception;
    Alcotest.test_case "pool: timeout kill" `Quick test_pool_timeout;
    Alcotest.test_case "pool: callback exception leaks nothing" `Quick
      test_pool_callback_exception;
    Alcotest.test_case "store: stale temp sweep" `Quick
      test_store_stale_tmp_sweep;
    Alcotest.test_case "store: failed rename unlinks temp" `Quick
      test_store_rename_failure_unlinks_tmp;
    Alcotest.test_case "driver: cache hits on re-run" `Slow
      test_driver_cache_hits;
    Alcotest.test_case "golden corpus (12-point grid)" `Slow
      test_golden_corpus ]

let () =
  if Sys.getenv_opt "SWEEP_GOLDEN_RECORD" <> None then record_golden ()
  else Alcotest.run "sweep" [ ("sweep", props_suite) ]
