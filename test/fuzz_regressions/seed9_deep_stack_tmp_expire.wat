;; seed 9 of the first wasm campaign: straight raw at max_dist 31 raised
;; "distance 36 for value -34 out of range" -- a constant-materialization
;; temp expired when a refresh batch fired between its definition and its
;; use inside one deep-operand-stack statement.
(module
  (import "env" "putint" (func $putint (param i32)))
  (memory 1)
  (global $g0 (mut i32) (i32.const 804170973))
  (global $g1 (mut i32) (i32.const 1305718750))
  (func $h1 (param i32) (result i32) (local i32) (local i32) (local i32) (local i32)
    (drop (local.tee 2 (i32.const -406003444)))
    (local.set 4 (i32.const 0))
    (block
      (loop
        (br_if 1 (i32.ge_s (local.get 4) (i32.const 6)))
        (global.set $g0 (i32.and (i32.const 1235505267) (i32.const -1)))
        (i32.store (i32.shl (i32.and (i32.rem_u (i32.div_s (i32.const 256) (i32.const -1155442723)) (global.get $g1)) (i32.const 255)) (i32.const 2)) (i32.load (i32.shl (i32.and (i32.div_u (i32.le_s (i32.const 2) (local.get 3)) (i32.ge_s (local.get 2) (i32.const 1000))) (i32.const 255)) (i32.const 2))))
        (local.set 4 (i32.add (local.get 4) (i32.const 1)))
        (br 0)
      )
    )
    (local.set 2 (i32.gt_s (i32.gt_u (i32.load (i32.shl (i32.and (local.get 1) (i32.const 255)) (i32.const 2))) (i32.rem_u (i32.const 1450752824) (local.get 2))) (i32.or (i32.const 255) (i32.rem_u (i32.const -32769) (global.get $g0)))))
    (i32.div_s (global.get $g0) (i32.ge_u (i32.lt_s (i32.const -1428292546) (local.get 0)) (select (i32.const -847434525) (i32.const 2121078543) (local.get 0)))))
  (func $h2 (param i32) (param i32) (param i32) (result i32) (local i32) (local i32) (local i32) (local i32)
    (block
      (br_if 0 (i32.eqz (i32.load (i32.shl (i32.and (i32.le_s (i32.const -504134976) (local.get 1)) (i32.const 255)) (i32.const 2)))))
      (local.set 4 (i32.const 0))
      (block
        (loop
          (br_if 1 (i32.ge_s (local.get 4) (i32.const 8)))
          (call $putint (i32.div_u (i32.const -2) (i32.shr_s (call $h1 (local.get 0)) (i32.ge_u (global.get $g1) (i32.const 1377337406)))))
          (local.set 4 (i32.add (local.get 4) (i32.const 1)))
          (br 0)
        )
      )
    )
    (local.set 5 (i32.const 0))
    (block
      (loop
        (br_if 1 (i32.ge_s (local.get 5) (i32.const 3)))
        (call $putint (i32.ne (i32.load (i32.shl (i32.and (local.get 1) (i32.const 255)) (i32.const 2))) (call $h1 (i32.const -7759960))))
        (local.set 6 (i32.const 0))
        (block
          (loop
            (br_if 1 (i32.ge_s (local.get 6) (i32.const 8)))
            (local.set 6 (i32.add (local.get 6) (i32.const 1)))
            (br 0)
          )
        )
        (local.set 5 (i32.add (local.get 5) (i32.const 1)))
        (br 0)
      )
    )
    (i32.ne (i32.ge_s (i32.rem_u (i32.const -176014413) (i32.const 1005698810)) (i32.const -992675033)) (global.get $g1)))
  (func $h3 (param i32) (param i32) (result i32) (local i32) (local i32) (local i32) (local i32)
    (local.set 1 (i32.gt_u (i32.div_u (i32.load (i32.shl (i32.and (local.get 0) (i32.const 255)) (i32.const 2))) (i32.shr_u (global.get $g1) (global.get $g1))) (i32.xor (local.get 3) (select (i32.const -2147483648) (local.get 1) (i32.const 1977787688)))))
    (local.set 5 (i32.const 0))
    (block
      (loop
        (br_if 1 (i32.ge_s (local.get 5) (i32.const 1)))
        (call $putint (local.get 4))
        (local.set 5 (i32.add (local.get 5) (i32.const 1)))
        (br 0)
      )
    )
    (global.get $g0))
  (func $main (export "main") (result i32) (local i32) (local i32) (local i32) (local i32) (local i32) (local i32) (local i32) (local i32)
    (local.set 4 (i32.const 0))
    (block
      (loop
        (br_if 1 (i32.ge_s (local.get 4) (i32.const 7)))
        (block
          (br_if 0 (i32.eqz (i32.lt_s (i32.or (i32.const 65535) (i32.const 2048)) (i32.le_s (local.get 3) (i32.const -513798092)))))
          (local.set 0 (i32.le_s (i32.const 8) (i32.load (i32.shl (i32.and (i32.eqz (i32.const 100)) (i32.const 255)) (i32.const 2)))))
          (local.set 5 (i32.const 0))
          (block
            (loop
              (br_if 1 (i32.ge_s (local.get 5) (i32.const 4)))
              (call $putint (i32.le_s (global.get $g1) (i32.const -1249301786)))
              (local.set 5 (i32.add (local.get 5) (i32.const 1)))
              (br 0)
            )
          )
        )
        (global.set $g0 (global.get $g1))
        (local.set 6 (i32.const 0))
        (block
          (loop
            (br_if 1 (i32.ge_s (local.get 6) (i32.const 1)))
            (local.set 6 (i32.add (local.get 6) (i32.const 1)))
            (br 0)
          )
        )
        (local.set 4 (i32.add (local.get 4) (i32.const 1)))
        (br 0)
      )
    )
    (i32.const 65535)
    (local.get 3)
    (i32.load (i32.shl (i32.and (i32.le_s (local.get 2) (i32.const -1582080796)) (i32.const 255)) (i32.const 2)))
    (select (i32.le_u (global.get $g0) (i32.const -246647964)) (i32.load (i32.shl (i32.and (i32.const -1475982246) (i32.const 255)) (i32.const 2))) (select (global.get $g1) (i32.const -32769) (local.get 3)))
    (i32.div_s (select (i32.const 1784012841) (global.get $g1) (i32.const 1144767115)) (i32.ne (i32.const 2147479552) (i32.const 2027138528)))
    i32.xor
    i32.add
    i32.xor
    i32.add
    (local.set 2)
    (call $putint (i32.shr_s (i32.div_s (local.get 2) (i32.const 1151100211)) (i32.const -1519354085)))
    (local.set 7 (i32.const 0))
    (block
      (loop
        (br_if 1 (i32.ge_s (local.get 7) (i32.const 2)))
        (call $putint (call $h3 (i32.const 1933275460) (i32.eqz (i32.const 1874486912))))
        (local.set 7 (i32.add (local.get 7) (i32.const 1)))
        (br 0)
      )
    )
    (call $putint (global.get $g0))
    (call $putint (global.get $g1))
    (call $putint (i32.load (i32.shl (i32.and (i32.const 0) (i32.const 255)) (i32.const 2))))
    (call $putint (i32.load (i32.shl (i32.and (i32.const 1) (i32.const 255)) (i32.const 2))))
    (call $putint (i32.load (i32.shl (i32.and (i32.const 2) (i32.const 255)) (i32.const 2))))
    (call $putint (i32.load (i32.shl (i32.and (i32.const 3) (i32.const 255)) (i32.const 2))))
    (i32.const 65535))
)
