;; seed 75 of the first wasm campaign: straight re+/raw at max_dist 31
;; raised "distance 32 for value 0 out of range" -- pseudo temps pinned
;; to an IR value's producer position were invisible to refresh
;; batches, and aliased positions double-counted in the batch layout.
(module
  (import "env" "putint" (func $putint (param i32)))
  (memory 1)
  (global $g0 (mut i32) (i32.const 2147483647))
  (global $g1 (mut i32) (i32.const 32))
  (func $h1 (param i32) (param i32) (result i32) (local i32)
    (drop (local.tee 1 (i32.rem_u (i32.const 65535) (i32.le_s (local.get 0) (i32.const -513843246)))))
    (i32.store (i32.shl (i32.and (i32.eq (select (global.get $g0) (local.get 0) (local.get 0)) (i32.lt_u (local.get 1) (i32.const -2033865189))) (i32.const 255)) (i32.const 2)) (select (i32.eqz (i32.sub (local.get 0) (i32.const -268166998))) (i32.add (i32.ge_s (local.get 2) (local.get 2)) (i32.add (global.get $g0) (local.get 2))) (i32.div_s (i32.eqz (local.get 0)) (i32.const 256))))
    (local.set 1 (i32.ge_s (i32.ge_u (local.get 2) (i32.load (i32.shl (i32.and (local.get 1) (i32.const 255)) (i32.const 2)))) (i32.div_s (i32.mul (i32.const 973555641) (i32.const -277242186)) (i32.eq (global.get $g1) (i32.const 2147479552)))))
    (i32.load (i32.shl (i32.and (i32.mul (i32.lt_u (i32.const 1673922118) (local.get 0)) (i32.mul (local.get 2) (local.get 1))) (i32.const 255)) (i32.const 2))))
  (func $main (export "main") (result i32) (local i32) (local i32) (local i32) (local i32)
    (local.get 2)
    (local.get 2)
    (local.get 2)
    (i32.ge_u (i32.const -1) (local.get 0))
    (i32.const 1517057899)
    (i32.const -1089303788)
    (i32.gt_s (local.get 2) (local.get 2))
    i32.xor
    i32.add
    i32.xor
    i32.add
    i32.xor
    i32.add
    (local.set 1)
    (call $putint (i32.eqz (select (i32.const -1792875648) (local.get 0) (global.get $g0))))
    (local.set 3 (i32.const 0))
    (block
      (loop
        (br_if 1 (i32.ge_s (local.get 3) (i32.const 3)))
        (drop (local.tee 2 (i32.lt_s (global.get $g0) (local.get 0))))
        (local.set 3 (i32.add (local.get 3) (i32.const 1)))
        (br 0)
      )
    )
    (call $putint (global.get $g0))
    (call $putint (global.get $g1))
    (call $putint (i32.load (i32.shl (i32.and (i32.const 0) (i32.const 255)) (i32.const 2))))
    (call $putint (i32.load (i32.shl (i32.and (i32.const 1) (i32.const 255)) (i32.const 2))))
    (call $putint (i32.load (i32.shl (i32.and (i32.const 2) (i32.const 255)) (i32.const 2))))
    (call $putint (i32.load (i32.shl (i32.and (i32.const 3) (i32.const 255)) (i32.const 2))))
    (i32.const 2147483647))
)
