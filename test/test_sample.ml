(* Sampling-subsystem tests:

   - spec parsing (suffixes, defaults, canonical rendering, JSON
     round-trip, rejection of malformed input);
   - recombination properties: permutation invariance (seeded QCheck),
     exactness when the intervals tile the whole run, and the
     sampled-CPI error shrinking as the interval count grows (both
     pipelines);
   - warming: a warmed fast-forward handoff never regresses the
     measured region's CPI against a cold one on a cache-hungry
     region, and warm state save/load round-trips;
   - interval checkpoints: materialize -> run_file reproduces the
     recombined estimate from a fresh process-like path, interval files
     are rejected by the engine-image restore path and vice versa;
   - full-vs-sampled validation: on workloads small enough to simulate
     exactly, the sampled estimate lands within its reported error bars
     of the exact CPI, on both pipelines. *)

module Params = Ooo_common.Params
module Stats = Ooo_common.Stats
module J = Stats.Json
module Exp = Straight_core.Experiment
module Sim = Snapshot.Sim
module Spec = Sample.Spec
module Interval = Sample.Interval
module Recombine = Sample.Recombine

let tmpdir prefix = Filename.temp_dir prefix ""

(* ---------- spec parsing ---------- *)

let test_spec_parse () =
  let sp = Spec.parse "interval=1M,warmup=100k,every=4" in
  Alcotest.(check int) "interval 1M" 1_000_000 sp.Spec.interval;
  Alcotest.(check int) "warmup 100k" 100_000 sp.Spec.warmup;
  Alcotest.(check int) "every 4" 4 sp.Spec.every;
  let sp = Spec.parse "interval=5000" in
  Alcotest.(check int) "bare digits" 5000 sp.Spec.interval;
  Alcotest.(check int) "warmup defaults to 0" 0 sp.Spec.warmup;
  Alcotest.(check int) "every defaults to 1" 1 sp.Spec.every;
  (* canonical rendering is suffix-free and parses back to itself *)
  let sp = Spec.parse "interval=2k,warmup=1K" in
  Alcotest.(check string) "canonical to_string"
    "interval=2000,warmup=1000,every=1" (Spec.to_string sp);
  Alcotest.(check bool) "to_string round-trips" true
    (Spec.parse (Spec.to_string sp) = sp);
  Alcotest.(check bool) "json round-trips" true
    (Spec.of_json (Spec.to_json sp) = sp);
  List.iter
    (fun bad ->
       Alcotest.(check bool)
         (Printf.sprintf "%S is rejected" bad)
         true
         (match Spec.parse bad with
          | _ -> false
          | exception Spec.Parse_error _ -> true))
    [ ""; "warmup=10"; "interval=0"; "interval=-5"; "interval=1G";
      "interval=1k,warmup=-1"; "interval=1k,every=0"; "interval";
      "interval=1k,bogus=2" ]

(* ---------- recombination properties ---------- *)

let mk_result i ~len ~cycles : Interval.result =
  { Interval.r_index = i; r_start = i * len; r_len = len; r_warmup = 0;
    r_cycles = cycles; r_warm_cycles = 0;
    r_cpi = { Stats.base = cycles; frontend = 0; branch_squash = 0;
              memory = 0; structural = 0 };
    r_host_seconds = 0. }

let est_key (e : Recombine.estimate) =
  (e.Recombine.intervals, e.Recombine.measured_insns, e.Recombine.cpi,
   e.Recombine.se, e.Recombine.ci95, e.Recombine.est_cycles,
   e.Recombine.stack)

let test_recombine_permutation_invariant () =
  (* bit-identical estimates whatever order the pool delivers results *)
  let gen =
    QCheck.make ~print:QCheck.Print.(list (pair int int))
      QCheck.Gen.(
        list_size (int_range 1 12)
          (pair (int_range 1 10_000) (int_range 1 50_000)))
  in
  let prop lens_cycles =
    let results =
      List.mapi
        (fun i (len, cycles) -> mk_result i ~len ~cycles)
        lens_cycles
    in
    let total = 10 * List.fold_left (fun a r -> a + r.Interval.r_len) 0 results in
    let reference = est_key (Recombine.recombine ~total_insns:total results) in
    (* a deterministic shuffle derived from the input *)
    let shuffled =
      List.sort
        (fun a b ->
           compare
             (Hashtbl.hash (a.Interval.r_cycles, a.Interval.r_index))
             (Hashtbl.hash (b.Interval.r_cycles, b.Interval.r_index)))
        results
    in
    let rev = List.rev results in
    est_key (Recombine.recombine ~total_insns:total shuffled) = reference
    && est_key (Recombine.recombine ~total_insns:total rev) = reference
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:200 ~name:"recombine is permutation-invariant"
       gen prop)

let test_recombine_exact_tiling () =
  (* when the measured intervals tile the whole run, the estimate is
     the exact cycle count (no extrapolation error) *)
  let results =
    [ mk_result 0 ~len:100 ~cycles:250;
      mk_result 1 ~len:100 ~cycles:150;
      mk_result 2 ~len:50 ~cycles:100 ]
  in
  let e = Recombine.recombine ~total_insns:250 results in
  Alcotest.(check int) "est_cycles = sum cycles" 500
    (int_of_float e.Recombine.est_cycles);
  Alcotest.(check (float 1e-9)) "cpi = cycles/insns" 2.0 e.Recombine.cpi;
  Alcotest.(check (float 1e-9)) "stack sums to cpi" e.Recombine.cpi
    (List.fold_left (fun a (_, v) -> a +. v) 0. e.Recombine.stack);
  (* a single interval has no spread to estimate from *)
  let one = Recombine.recombine ~total_insns:100
      [ mk_result 0 ~len:100 ~cycles:300 ] in
  Alcotest.(check (float 0.)) "k=1 has zero SE" 0. one.Recombine.se

let test_merge_stacks_heterogeneous () =
  (* bucket names are unioned across intervals; an interval lacking a
     bucket contributes zero cycles instead of raising [Not_found] (the
     old code took the names from the first interval alone and then
     [List.assoc]-ed into the rest) *)
  let stacks = [ [ ("a", 2); ("b", 4) ]; [ ("b", 6); ("c", 10) ] ] in
  let merged = Recombine.merge_stacks ~measured_insns:2 stacks in
  Alcotest.(check (list string)) "union of names, first-seen order"
    [ "a"; "b"; "c" ]
    (List.map fst merged);
  let v name = List.assoc name merged in
  Alcotest.(check (float 1e-9)) "a: 2/2" 1.0 (v "a");
  Alcotest.(check (float 1e-9)) "b: (4+6)/2" 5.0 (v "b");
  Alcotest.(check (float 1e-9)) "c: 10/2" 5.0 (v "c");
  (* the merged stack still accounts for every measured cycle *)
  let total =
    List.fold_left
      (fun acc stack -> List.fold_left (fun acc (_, n) -> acc + n) acc stack)
      0 stacks
  in
  Alcotest.(check (float 1e-9)) "stack sums to total cycles / insns"
    (float_of_int total /. 2.0)
    (List.fold_left (fun acc (_, x) -> acc +. x) 0.0 merged);
  (* degenerate shapes stay total *)
  Alcotest.(check (list (pair string (float 0.)))) "no intervals" []
    (Recombine.merge_stacks ~measured_insns:1 []);
  Alcotest.(check (list (pair string (float 0.)))) "empty stacks" []
    (Recombine.merge_stacks ~measured_insns:1 [ []; [] ])

(* both pipelines share the sampling machinery end to end; the matrix
   below exercises each *)
let targets =
  [ ("straight", Exp.Straight_re, Params.straight_2way);
    ("riscv", Exp.Riscv, Params.ss_2way) ]

let sampled_estimate ~dir ~target ~model ~spec_str w =
  let sp = Spec.parse spec_str in
  let spec = Sim.spec ~model ~target w in
  let plan, _ = Interval.materialize ~dir spec sp in
  let results =
    List.map
      (fun (e : Interval.entry) -> Interval.run_file e.Interval.path)
      plan.Interval.entries
  in
  (Recombine.recombine ~total_insns:plan.Interval.total_retired results, plan)

let test_error_shrinks_with_intervals () =
  (* SMARTS: at a fixed interval length, measuring more intervals
     (every=6 -> 3 -> 1) tightens the CI by ~1/sqrt(k).  The simulator
     is deterministic, so this is a hard property of the recombiner's
     SE on real data, not a statistical coin flip.  (Shrinking the
     interval LENGTH instead would not do: shorter intervals also have
     higher per-interval variance, which can cancel the 1/sqrt(k).) *)
  let dir = tmpdir "straight-sample-shrink" in
  List.iter
    (fun (label, target, model) ->
       let w = Workloads.dhrystone ~iterations:100 () in
       let ci every =
         let e, _ =
           sampled_estimate ~dir ~target ~model
             ~spec_str:
               (Printf.sprintf "interval=2k,warmup=500,every=%d" every)
             w
         in
         (e.Recombine.intervals, e.Recombine.ci95)
       in
       let k6, ci6 = ci 6 and k3, ci3 = ci 3 and k1, ci1 = ci 1 in
       Alcotest.(check bool)
         (label ^ ": denser sampling yields more intervals") true
         (k6 < k3 && k3 < k1);
       Alcotest.(check bool)
         (Printf.sprintf
            "%s: ci95 shrinks monotonically (k=%d %.4f > k=%d %.4f > k=%d \
             %.4f)"
            label k6 ci6 k3 ci3 k1 ci1)
         true
         (ci6 > ci3 && ci3 > ci1))
    targets

(* ---------- full-vs-sampled validation ---------- *)

let test_sampled_within_error_bars () =
  let dir = tmpdir "straight-sample-validate" in
  List.iter
    (fun (label, target, model) ->
       let w = Workloads.dhrystone ~iterations:40 () in
       let est, plan =
         sampled_estimate ~dir ~target ~model
           ~spec_str:"interval=5k,warmup=1k" w
       in
       let exact = Exp.run ~model ~target w in
       Alcotest.(check int)
         (label ^ ": sampler and exact run retire the same stream")
         exact.Exp.committed plan.Interval.total_retired;
       let v =
         Recombine.check est ~exact_cycles:exact.Exp.cycles ~floor:0.02
       in
       Alcotest.(check bool)
         (Printf.sprintf
            "%s: estimate %.4f within max(ci95=%.4f, floor) of exact %.4f"
            label est.Recombine.cpi est.Recombine.ci95 v.Recombine.exact_cpi)
         true v.Recombine.ok)
    targets

(* ---------- warmed handoff ---------- *)

let test_warm_handoff_helps () =
  (* fast-forward past a cache-warming prefix: the warmed handoff must
     reproduce a region CPI no worse than the cold one (it shares every
     other input), and for this workload strictly better front-end and
     memory behavior is expected *)
  let w = Workloads.dhrystone ~iterations:40 () in
  let spec = Sim.spec ~model:Params.straight_2way ~target:Exp.Straight_re w in
  let image = Sim.compile spec in
  let region warm =
    let s =
      Ooo_straight.Pipeline.start_region ~warm ~from:15_000
        Params.straight_2way image
    in
    let e = s.Ooo_straight.Pipeline.engine in
    while not (Ooo_common.Engine.finished e) do
      Ooo_common.Engine.step e
    done;
    let r = Ooo_straight.Pipeline.finish s in
    r.Ooo_straight.Pipeline.stats.Ooo_common.Engine.cycles
  in
  let cold = region false and warmed = region true in
  Alcotest.(check bool)
    (Printf.sprintf "warmed region (%d cycles) <= cold region (%d cycles)"
       warmed cold)
    true (warmed <= cold)

let test_warm_save_load_roundtrip () =
  let w = Workloads.dhrystone ~iterations:5 () in
  let spec = Sim.spec ~model:Params.ss_2way ~target:Exp.Riscv w in
  let image = Sim.compile spec in
  let warm = Ooo_common.Warm.create Params.ss_2way in
  let s =
    Iss.Riscv_iss.start
      ~config:{ Iss.Riscv_iss.collect_trace = false; max_insns = 50_000_000 }
      ~on_retire:(fun _ u -> Ooo_common.Warm.observe warm u)
      image
  in
  Iss.Riscv_iss.run_session s;
  let b = Buffer.create 4096 in
  Ooo_common.Warm.save b warm;
  let snap = Buffer.contents b in
  let warm' = Ooo_common.Warm.create Params.ss_2way in
  Ooo_common.Warm.load (Ooo_common.Bin.reader snap) warm';
  Alcotest.(check int) "observed count survives" warm.Ooo_common.Warm.observed
    warm'.Ooo_common.Warm.observed;
  let b' = Buffer.create 4096 in
  Ooo_common.Warm.save b' warm';
  Alcotest.(check bool) "save(load(save)) is bit-identical" true
    (String.equal snap (Buffer.contents b'))

(* ---------- interval checkpoint files ---------- *)

let test_interval_files () =
  let dir = tmpdir "straight-sample-files" in
  let w = Workloads.quicksort () in
  let spec = Sim.spec ~model:Params.ss_2way ~target:Exp.Riscv w in
  let sp = Spec.parse "interval=4k,warmup=500" in
  let plan, cached = Interval.materialize ~dir spec sp in
  Alcotest.(check bool) "first materialize misses the store" false cached;
  Alcotest.(check bool) "plan has entries" true (plan.Interval.entries <> []);
  let plan2, cached2 = Interval.materialize ~dir spec sp in
  Alcotest.(check bool) "second materialize hits the store" true cached2;
  Alcotest.(check bool) "cached plan is identical" true (plan = plan2);
  (* a different sampling spec is a different plan *)
  let plan3, cached3 =
    Interval.materialize ~dir spec (Spec.parse "interval=4k,warmup=600")
  in
  Alcotest.(check bool) "different spec misses" false cached3;
  Alcotest.(check bool) "different spec, different key" true
    (plan3.Interval.key <> plan.Interval.key);
  let entry = List.hd plan.Interval.entries in
  (* per-interval results survive the pool's JSON-line transport *)
  let r = Interval.run_file entry.Interval.path in
  let r' =
    Interval.result_of_json
      (J.of_string (J.to_string ~indent:false (Interval.result_to_json r)))
  in
  Alcotest.(check bool) "result JSON round-trips" true (r = r');
  Alcotest.(check int) "measured length matches the entry"
    entry.Interval.len r.Interval.r_len;
  Alcotest.(check bool) "cpi stack sums to interval cycles" true
    (Stats.cpi_total r.Interval.r_cpi = r.Interval.r_cycles);
  (* kind confusion is rejected in both directions *)
  Alcotest.(check bool) "engine-image restore rejects an interval file" true
    (match Sim.restore entry.Interval.path with
     | _ -> false
     | exception Diag.Error d -> d.Diag.code = Diag.Snapshot_error);
  let engine_snap = Filename.concat dir "engine.snap" in
  let session = Sim.start spec in
  Sim.step session;
  Sim.save session engine_snap;
  Alcotest.(check bool) "run_file rejects an engine-image file" true
    (match Interval.run_file engine_snap with
     | _ -> false
     | exception Diag.Error d -> d.Diag.code = Diag.Snapshot_error)

(* ---------- sweep integration ---------- *)

let test_sweep_sampled_axis () =
  (* the fidelity axis multiplies the grid and sampled records carry
     their error bars through the cache's JSON round-trip *)
  let dir = tmpdir "straight-sample-sweep" in
  let spec =
    { Sweep.Grid.smoke with
      Sweep.Grid.workloads = [ "quicksort" ];
      samples = [ None; Some (Spec.parse "interval=4k,warmup=500") ] }
  in
  let records, summary = Sweep.Driver.sweep ~procs:0 ~cache_dir:dir spec in
  Alcotest.(check int) "exact x sampled = 2 points" 2
    summary.Sweep.Driver.total;
  let exact =
    List.find (fun r -> r.Sweep.Runner.sample = None) records
  in
  let sampled =
    List.find (fun r -> r.Sweep.Runner.sample <> None) records
  in
  Alcotest.(check bool) "sampled record reports intervals" true
    (sampled.Sweep.Runner.sample_intervals >= 1);
  let err =
    Float.abs
      (float_of_int sampled.Sweep.Runner.cycles
       -. float_of_int exact.Sweep.Runner.cycles)
      /. float_of_int exact.Sweep.Runner.cycles
  in
  Alcotest.(check bool)
    (Printf.sprintf "sampled cycles within 5%% of exact (err %.4f)" err)
    true (err < 0.05);
  (* records coming back from the cache keep the sample spec *)
  let records2, summary2 = Sweep.Driver.sweep ~procs:0 ~cache_dir:dir spec in
  Alcotest.(check int) "second sweep is all cache hits" 2
    summary2.Sweep.Driver.cached;
  List.iter2
    (fun (a : Sweep.Runner.record) (b : Sweep.Runner.record) ->
       Alcotest.(check bool) "cached record preserves the sample axis" true
         (a.Sweep.Runner.sample = b.Sweep.Runner.sample
          && a.Sweep.Runner.sample_ci95 = b.Sweep.Runner.sample_ci95))
    records records2

let suite =
  [ Alcotest.test_case "spec: parse/render/json" `Quick test_spec_parse;
    Alcotest.test_case "recombine: permutation invariance" `Quick
      test_recombine_permutation_invariant;
    Alcotest.test_case "recombine: exact tiling" `Quick
      test_recombine_exact_tiling;
    Alcotest.test_case "recombine: heterogeneous bucket union" `Quick
      test_merge_stacks_heterogeneous;
    Alcotest.test_case "warm: save/load round-trip" `Quick
      test_warm_save_load_roundtrip;
    Alcotest.test_case "warm: handoff no worse than cold" `Slow
      test_warm_handoff_helps;
    Alcotest.test_case "interval: files, store, rejection" `Slow
      test_interval_files;
    Alcotest.test_case "error bars shrink with interval count" `Slow
      test_error_shrinks_with_intervals;
    Alcotest.test_case "sampled CPI within error bars (both pipelines)" `Slow
      test_sampled_within_error_bars;
    Alcotest.test_case "sweep: sampled fidelity axis" `Slow
      test_sweep_sampled_axis ]

let () = Alcotest.run "sample" [ ("sample", suite) ]
