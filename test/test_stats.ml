(* Stats-layer tests: the engine's hot-path data structures (ring-buffer
   window, event-driven wakeup) must not change simulated timing by a
   single cycle, the CPI stack must account for every cycle exactly
   once, and the dependency-free JSON layer must round-trip the values
   the bench/gate pipeline exchanges. *)

module Params = Ooo_common.Params
module Engine = Ooo_common.Engine
module Stats = Ooo_common.Stats
module Exp = Straight_core.Experiment

(* ---------- golden cycle counts ---------- *)

(* Recorded from the pre-refactor engine (the list/Hashtbl seed): the
   ring-buffer/wakeup engine must reproduce them bit for bit.  Keyed by
   (model, target, workload) -> (cycles, committed). *)

let w_dhrystone () = Workloads.dhrystone ~iterations:10 ()
let w_coremark () = Workloads.coremark ~iterations:1 ()
let w_fib () = Workloads.fib ()
let w_quicksort () = Workloads.quicksort ()
let w_pointer_chase () = Workloads.pointer_chase ~nodes:256 ~hops:200 ()

let base_goldens =
  (* model, target, workload, cycles, committed *)
  [ (Params.ss_2way, Exp.Riscv, w_dhrystone, 9357, 6333);
    (Params.ss_2way, Exp.Riscv, w_coremark, 64264, 67764);
    (Params.ss_2way, Exp.Riscv, w_fib, 107806, 154688);
    (Params.ss_2way, Exp.Riscv, w_quicksort, 12269, 9906);
    (Params.ss_2way, Exp.Riscv, w_pointer_chase, 3610, 5040);
    (Params.ss_4way, Exp.Riscv, w_dhrystone, 9277, 6333);
    (Params.ss_4way, Exp.Riscv, w_coremark, 54081, 67764);
    (Params.ss_4way, Exp.Riscv, w_fib, 66572, 154688);
    (Params.ss_4way, Exp.Riscv, w_quicksort, 10053, 9906);
    (Params.ss_4way, Exp.Riscv, w_pointer_chase, 2911, 5040);
    (Params.straight_2way, Exp.Straight_re, w_dhrystone, 9297, 7404);
    (* coremark re-recorded after the refresh-batch aliasing fix in
       straight_cc: values pinned to one producer position now share a
       single RMOV slot, shifting the batch layout by a few cycles *)
    (Params.straight_2way, Exp.Straight_re, w_coremark, 62616, 80483);
    (Params.straight_2way, Exp.Straight_re, w_fib, 88404, 121239);
    (Params.straight_2way, Exp.Straight_re, w_quicksort, 11645, 12348);
    (Params.straight_2way, Exp.Straight_re, w_pointer_chase, 3591, 4837);
    (Params.straight_4way, Exp.Straight_re, w_dhrystone, 8413, 7404);
    (Params.straight_4way, Exp.Straight_re, w_coremark, 47464, 80483);
    (Params.straight_4way, Exp.Straight_re, w_fib, 59277, 121239);
    (Params.straight_4way, Exp.Straight_re, w_quicksort, 8710, 12348);
    (Params.straight_4way, Exp.Straight_re, w_pointer_chase, 2901, 4837) ]

(* variant configurations exercise TAGE, checkpoints, ideal recovery,
   a wider distance window, and the RAW code level *)
let variant_goldens =
  [ (Params.with_tage Params.ss_4way, Exp.Riscv, None, w_coremark, 54358, 67764);
    (Params.with_tage Params.straight_4way, Exp.Straight_re, None, w_coremark,
     47984, 80483);
    (Params.with_checkpoints ~n:8 Params.ss_4way, Exp.Riscv, None, w_coremark,
     47168, 67764);
    (Params.with_ideal_recovery Params.ss_2way, Exp.Riscv, None, w_coremark,
     38827, 67764);
    (Params.straight_4way, Exp.Straight_re, Some 63, w_coremark, 46864, 80208);
    (* re-recorded after the conditional-branch liveness fix in
       straight_cc: the condition value now (correctly) joins the RMOV
       refresh batch at block exits, so RAW code carries a few more
       instructions *)
    (Params.straight_4way, Exp.Straight_raw, None, w_coremark, 51879, 97258) ]

let check_result label (r : Exp.result) cycles committed =
  Alcotest.(check int) (label ^ ": cycles") cycles r.Exp.cycles;
  Alcotest.(check int) (label ^ ": committed") committed r.Exp.committed;
  (* every cycle lands in exactly one CPI bucket *)
  Alcotest.(check int)
    (label ^ ": cpi stack sums to cycles")
    r.Exp.cycles
    (Stats.cpi_total r.Exp.stats.Engine.cpi_stack)

let test_golden_base () =
  List.iter
    (fun (model, target, mk_w, cycles, committed) ->
       let w = mk_w () in
       let label =
         Printf.sprintf "%s/%s/%s" model.Params.name (Exp.target_label target)
           w.Workloads.name
       in
       check_result label (Exp.run ~model ~target w) cycles committed)
    base_goldens

let test_golden_variants () =
  List.iter
    (fun (model, target, max_dist, mk_w, cycles, committed) ->
       let w = mk_w () in
       let label =
         Printf.sprintf "%s/%s/%s%s" model.Params.name
           (Exp.target_label target) w.Workloads.name
           (match max_dist with
            | Some d -> Printf.sprintf "/maxdist%d" d
            | None -> "")
       in
       check_result label (Exp.run ?max_dist ~model ~target w) cycles committed)
    variant_goldens

(* ---------- CPI-stack shape ---------- *)

let test_cpi_shape () =
  let r =
    Exp.run ~model:Params.straight_4way ~target:Exp.Straight_re
      (w_quicksort ())
  in
  let c = r.Exp.stats.Engine.cpi_stack in
  Alcotest.(check bool) "base cycles present" true (c.Stats.base > 0);
  Alcotest.(check bool) "frontend cycles present" true (c.Stats.frontend > 0);
  (* quicksort mispredicts heavily: squash cycles must be attributed *)
  Alcotest.(check bool) "squash cycles present" true (c.Stats.branch_squash > 0);
  Alcotest.(check bool) "no negative bucket" true
    (c.Stats.base >= 0 && c.Stats.frontend >= 0 && c.Stats.branch_squash >= 0
     && c.Stats.memory >= 0 && c.Stats.structural >= 0);
  (* the association list preserves the documented order *)
  Alcotest.(check (list string))
    "assoc order"
    [ "base"; "frontend"; "branch_squash"; "memory"; "structural" ]
    (List.map fst (Stats.cpi_to_assoc c))

(* ---------- JSON ---------- *)

let test_json_roundtrip () =
  let j =
    Stats.Json.Obj
      [ ("schema", Stats.Json.Str "straight-bench/1");
        ("quick", Stats.Json.Bool true);
        ("reps", Stats.Json.Int 3);
        ("ipc", Stats.Json.Float 1.4176);
        ("label", Stats.Json.Str "esc \"quotes\" and\nnewlines");
        ("nothing", Stats.Json.Null);
        ("entries",
         Stats.Json.List
           [ Stats.Json.Obj [ ("khz_median", Stats.Json.Float 612.5) ];
             Stats.Json.List []; Stats.Json.Obj [] ]) ]
  in
  let round ~indent =
    Alcotest.(check bool)
      (Printf.sprintf "round-trip indent=%b" indent)
      true
      (Stats.Json.of_string (Stats.Json.to_string ~indent j) = j)
  in
  round ~indent:true;
  round ~indent:false;
  (* accessors used by the gate *)
  let parsed = Stats.Json.of_string (Stats.Json.to_string j) in
  Alcotest.(check (option int)) "get_int" (Some 3)
    (Stats.Json.get_int (Stats.Json.member "reps" parsed));
  Alcotest.(check (option (float 1e-9))) "get_float coerces int" (Some 3.0)
    (Stats.Json.get_float (Stats.Json.member "reps" parsed));
  Alcotest.(check (option string)) "get_string" (Some "straight-bench/1")
    (Stats.Json.get_string (Stats.Json.member "schema" parsed));
  (match Stats.Json.get_list (Stats.Json.member "entries" parsed) with
   | Some (first :: _) ->
     Alcotest.(check (option (float 1e-9))) "nested float" (Some 612.5)
       (Stats.Json.get_float (Stats.Json.member "khz_median" first))
   | _ -> Alcotest.fail "entries list lost in round-trip");
  (* cpi_stack emission is stable and parseable *)
  let cpi =
    { Stats.base = 10; frontend = 2; branch_squash = 3; memory = 4;
      structural = 0 }
  in
  Alcotest.(check bool) "cpi_to_json round-trips" true
    (Stats.Json.of_string (Stats.Json.to_string (Stats.cpi_to_json cpi))
     = Stats.cpi_to_json cpi)

let test_json_errors () =
  let rejects label s =
    Alcotest.(check bool) label true
      (match Stats.Json.of_string s with
       | _ -> false
       | exception Stats.Json.Parse_error _ -> true)
  in
  rejects "trailing garbage" "{} x";
  rejects "unterminated string" "\"abc";
  rejects "bare word" "nonsense";
  rejects "unclosed object" "{\"a\": 1";
  rejects "bad number" "1.2.3";
  Alcotest.(check bool) "numbers: int vs float" true
    (Stats.Json.of_string "42" = Stats.Json.Int 42
     && Stats.Json.of_string "42.5" = Stats.Json.Float 42.5)

let suite =
  [ Alcotest.test_case "golden cycle counts (Table-I models)" `Slow
      test_golden_base;
    Alcotest.test_case "golden cycle counts (variants)" `Slow
      test_golden_variants;
    Alcotest.test_case "cpi stack shape" `Quick test_cpi_shape;
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json parse errors" `Quick test_json_errors ]

let () = Alcotest.run "stats" [ ("stats", suite) ]
