;; expect: 12
(module
  (import "env" "putint" (func $putint (param i32)))
  (func $main (export "main") (result i32)
    (call $putint (block (result i32) (i32.add (i32.const 5) (i32.const 7))))
    (i32.const 0)))
