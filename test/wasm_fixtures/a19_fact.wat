;; expect: 3628800
(module
  (import "env" "putint" (func $putint (param i32)))
  (func $main (export "main") (result i32) (local $n i32) (local $f i32)
    (local.set $n (i32.const 10))
    (local.set $f (i32.const 1))
    (block $done
      (loop $top
        (br_if $done (i32.le_s (local.get $n) (i32.const 1)))
        (local.set $f (i32.mul (local.get $f) (local.get $n)))
        (local.set $n (i32.sub (local.get $n) (i32.const 1)))
        (br $top)))
    (call $putint (local.get $f))
    (i32.const 0)))
