;; expect: 99
(module
  (import "env" "putint" (func $putint (param i32)))
  (func $main (export "main") (result i32)
    (call $putint
      (block $out (result i32)
        (br $out (i32.const 99))))
    (i32.const 0)))
