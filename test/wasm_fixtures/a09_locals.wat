;; expect: 21
(module
  (import "env" "putint" (func $putint (param i32)))
  (func $main (export "main") (result i32) (local $a i32) (local $b i32)
    (local.set $a (i32.const 6))
    (local.set $b (i32.add (local.tee $a (i32.mul (local.get $a) (i32.const 2))) (i32.const 9)))
    (call $putint (local.get $b))
    (i32.const 0)))
