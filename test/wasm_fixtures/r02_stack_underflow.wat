;; expect-reject: stack-underflow
(module
  (func $main (export "main") (result i32)
    i32.const 1
    i32.add))
