;; expect: 2
;; expect: 4
;; expect: 6
(module
  (import "env" "putint" (func $putint (param i32)))
  (func $twice (param $v i32) (result i32)
    local.get $v
    i32.const 2
    i32.mul)
  (func $main (export "main") (result i32) (local $i i32)
    (block $done
      (loop $top
        (br_if $done (i32.ge_s (local.get $i) (i32.const 3)))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (call $putint (call $twice (local.get $i)))
        (br $top)))
    (i32.const 0)))
