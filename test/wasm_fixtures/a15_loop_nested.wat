;; expect: 100
(module
  (import "env" "putint" (func $putint (param i32)))
  (func $main (export "main") (result i32) (local $i i32) (local $j i32) (local $n i32)
    (block $oi (loop $li
      (br_if $oi (i32.ge_s (local.get $i) (i32.const 10)))
      (local.set $j (i32.const 0))
      (block $oj (loop $lj
        (br_if $oj (i32.ge_s (local.get $j) (i32.const 10)))
        (local.set $n (i32.add (local.get $n) (i32.const 1)))
        (local.set $j (i32.add (local.get $j) (i32.const 1)))
        (br $lj)))
      (local.set $i (i32.add (local.get $i) (i32.const 1)))
      (br $li)))
    (call $putint (local.get $n))
    (i32.const 0)))
