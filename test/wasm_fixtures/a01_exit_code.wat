;; expect-exit: 42
(module
  (func $main (export "main") (result i32)
    (i32.const 42)))
