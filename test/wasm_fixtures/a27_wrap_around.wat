;; expect: -2147483648
;; expect: 1
(module
  (import "env" "putint" (func $putint (param i32)))
  (func $main (export "main") (result i32)
    (call $putint (i32.add (i32.const 2147483647) (i32.const 1)))
    (call $putint (i32.mul (i32.const 0xFFFFFFFF) (i32.const -1)))
    (i32.const 0)))
