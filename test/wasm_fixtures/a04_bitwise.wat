;; expect: 6
;; expect: -2
;; expect: 536870911
(module
  (import "env" "putint" (func $putint (param i32)))
  (func $main (export "main") (result i32)
    (call $putint (i32.xor (i32.and (i32.const 12) (i32.const 7)) (i32.or (i32.const 2) (i32.const 0))))
    (call $putint (i32.shr_s (i32.const -16) (i32.const 3)))
    (call $putint (i32.shr_u (i32.const -8) (i32.const 3)))
    (i32.const 0)))
