;; expect-reject: parse
(module
  (func $main (export "main") (result i32)
    (i32.const 0))
