;; expect: 0
;; expect: 1
;; expect: 1
;; expect: 0
(module
  (import "env" "putint" (func $putint (param i32)))
  (func $main (export "main") (result i32)
    (call $putint (i32.lt_u (i32.const -1) (i32.const 3)))
    (call $putint (i32.gt_u (i32.const -1) (i32.const 3)))
    (call $putint (i32.ge_u (i32.const -1) (i32.const -1)))
    (call $putint (i32.le_u (i32.const -1) (i32.const 7)))
    (i32.const 0)))
