;; expect: 77
;; expect: 77
(module
  (import "env" "putint" (func $putint (param i32)))
  (memory 1)
  (func $main (export "main") (result i32) (local $p i32)
    (local.set $p (i32.const 16))
    (i32.store offset=8 (local.get $p) (i32.const 77))
    (call $putint (i32.load offset=8 (local.get $p)))
    (call $putint (i32.load (i32.const 24)))
    (i32.const 0)))
