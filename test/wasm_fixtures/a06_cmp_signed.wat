;; expect: 1
;; expect: 0
;; expect: 1
;; expect: 1
(module
  (import "env" "putint" (func $putint (param i32)))
  (func $main (export "main") (result i32)
    (call $putint (i32.lt_s (i32.const -5) (i32.const 3)))
    (call $putint (i32.gt_s (i32.const -5) (i32.const 3)))
    (call $putint (i32.le_s (i32.const 3) (i32.const 3)))
    (call $putint (i32.ge_s (i32.const 4) (i32.const 3)))
    (i32.const 0)))
