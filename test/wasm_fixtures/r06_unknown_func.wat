;; expect-reject: unknown-func
(module
  (func $main (export "main") (result i32)
    (call $missing)
    (i32.const 0)))
