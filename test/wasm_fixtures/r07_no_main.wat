;; expect-reject: no-main
(module
  (func $helper (result i32) (i32.const 1)))
