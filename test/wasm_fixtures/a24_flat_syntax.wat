;; expect: 55
(module
  (import "env" "putint" (func $putint (param i32)))
  (func $main (export "main") (result i32) (local $i i32) (local $sum i32)
    i32.const 1
    local.set $i
    block $done
      loop $top
        local.get $i
        i32.const 10
        i32.gt_s
        br_if $done
        local.get $sum
        local.get $i
        i32.add
        local.set $sum
        local.get $i
        i32.const 1
        i32.add
        local.set $i
        br $top
      end
    end
    local.get $sum
    call $putint
    i32.const 0))
