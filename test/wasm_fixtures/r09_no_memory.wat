;; expect-reject: no-memory
(module
  (func $main (export "main") (result i32)
    (i32.load (i32.const 0))))
