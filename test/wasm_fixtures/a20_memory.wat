;; expect: 11
;; expect: 22
(module
  (import "env" "putint" (func $putint (param i32)))
  (memory 1)
  (func $main (export "main") (result i32)
    (i32.store (i32.const 0) (i32.const 11))
    (i32.store (i32.const 4) (i32.const 22))
    (call $putint (i32.load (i32.const 0)))
    (call $putint (i32.load (i32.const 4)))
    (i32.const 0)))
