;; expect: -3
;; expect: -1
;; expect: 2
;; expect: 1
(module
  (import "env" "putint" (func $putint (param i32)))
  (func $main (export "main") (result i32)
    (call $putint (i32.div_s (i32.const -7) (i32.const 2)))
    (call $putint (i32.rem_s (i32.const -7) (i32.const 2)))
    (call $putint (i32.div_u (i32.const 5) (i32.const 2)))
    (call $putint (i32.rem_u (i32.const 5) (i32.const 2)))
    (i32.const 0)))
