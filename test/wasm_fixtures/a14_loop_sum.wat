;; expect: 55
(module
  (import "env" "putint" (func $putint (param i32)))
  (func $main (export "main") (result i32) (local $i i32) (local $sum i32)
    (local.set $i (i32.const 1))
    (block $done
      (loop $top
        (br_if $done (i32.gt_s (local.get $i) (i32.const 10)))
        (local.set $sum (i32.add (local.get $sum) (local.get $i)))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $top)))
    (call $putint (local.get $sum))
    (i32.const 0)))
