;; expect: 262
(module
  (import "env" "putint" (func $putint (param i32)))
  (func $main (export "main") (result i32) (local $x i32)
    (local.set $x (i32.const 3))
    (local.get $x)
    (i32.const 5)
    (i32.const 7)
    (i32.const 11)
    (i32.const 13)
    (i32.const 17)
    (i32.const 19)
    (i32.const 23)
    (i32.const 29)
    (i32.const 31)
    (i32.const 37)
    (i32.const 41)
    (i32.const 43)
    (i32.const 47)
    (i32.const 53)
    (i32.const 59)
    i32.add
    i32.xor
    i32.add
    i32.xor
    i32.add
    i32.xor
    i32.add
    i32.xor
    i32.add
    i32.xor
    i32.add
    i32.xor
    i32.add
    i32.xor
    i32.add
    (local.set $x)
    (call $putint (local.get $x))
    (i32.const 0)))
