;; expect: 30
(module
  (import "env" "putint" (func $putint (param i32)))
  (func $h (param i32) (result i32) (i32.add (local.get 0) (i32.const 1)))
  (func $g (param i32) (result i32) (i32.mul (call $h (local.get 0)) (i32.const 2)))
  (func $f (param i32) (result i32) (i32.add (call $g (local.get 0)) (i32.const 10)))
  (func $main (export "main") (result i32)
    (call $putint (call $f (i32.const 9)))
    (i32.const 0)))
