;; expect: 17
;; expect-exit: 0
(module
  (import "env" "putint" (func $putint (param i32)))
  (func $main (export "main") (result i32)
    (call $putint (i32.sub (i32.add (i32.mul (i32.const 3) (i32.const 4)) (i32.const 10)) (i32.const 5)))
    (i32.const 0)))
