;; expect: 20
(module
  (import "env" "putint" (func $putint (param i32)))
  (func $main (export "main") (result i32) (local $i i32) (local $sum i32)
    (block $break
      (loop $top
        (br_if $break (i32.ge_s (local.get $i) (i32.const 100)))
        (block $continue
          (br_if $continue (i32.rem_s (local.get $i) (i32.const 2)))
          (br_if $break (i32.gt_s (local.get $i) (i32.const 8)))
          (local.set $sum (i32.add (local.get $sum) (local.get $i))))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $top)))
    (call $putint (local.get $sum))
    (i32.const 0)))
