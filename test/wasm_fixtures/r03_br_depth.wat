;; expect-reject: br-depth
(module
  (func $main (export "main") (result i32)
    (block (br 5))
    (i32.const 0)))
