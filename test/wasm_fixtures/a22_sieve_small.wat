;; expect: 25
(module
  (import "env" "putint" (func $putint (param i32)))
  (memory 1)
  (func $main (export "main") (result i32) (local $i i32) (local $j i32) (local $count i32)
    (local.set $i (i32.const 2))
    (block $oi (loop $li
      (br_if $oi (i32.gt_s (local.get $i) (i32.const 97)))
      (block $skip
        (br_if $skip (i32.load (i32.shl (local.get $i) (i32.const 2))))
        (local.set $count (i32.add (local.get $count) (i32.const 1)))
        (local.set $j (i32.mul (local.get $i) (local.get $i)))
        (block $oj (loop $lj
          (br_if $oj (i32.gt_s (local.get $j) (i32.const 97)))
          (i32.store (i32.shl (local.get $j) (i32.const 2)) (i32.const 1))
          (local.set $j (i32.add (local.get $j) (local.get $i)))
          (br $lj))))
      (local.set $i (i32.add (local.get $i) (i32.const 1)))
      (br $li)))
    (call $putint (local.get $count))
    (i32.const 0)))
