;; expect: 8
;; expect: 15
(module
  (import "env" "putint" (func $putint (param i32)))
  (global $g (mut i32) (i32.const 5))
  (global $k i32 (i32.const 7))
  (func $bump
    (global.set $g (i32.add (global.get $g) (i32.const 3))))
  (func $main (export "main") (result i32)
    (call $bump)
    (call $putint (global.get $g))
    (call $putint (i32.add (global.get $g) (global.get $k)))
    (i32.const 0)))
