;; expect-reject: type
(module
  (func $main (export "main") (result i32)
    (block (result i32) (nop))
    (i32.const 0)))
