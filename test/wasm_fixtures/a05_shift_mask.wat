;; expect: 2
;; expect: 4
(module
  (import "env" "putint" (func $putint (param i32)))
  (func $main (export "main") (result i32)
    (call $putint (i32.shl (i32.const 1) (i32.const 33)))
    (call $putint (i32.shl (i32.const 1) (i32.const 66)))
    (i32.const 0)))
