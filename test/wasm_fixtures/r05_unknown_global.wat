;; expect-reject: unknown-global
(module
  (func $main (export "main") (result i32)
    (global.get $nope)))
