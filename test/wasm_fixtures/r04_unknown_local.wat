;; expect-reject: unknown-local
(module
  (func $main (export "main") (result i32) (local i32)
    (local.get 7)))
