;; expect-reject: unsupported
(module
  (func $main (export "main") (result i32)
    (if (i32.const 1) (then (nop)))
    (i32.const 0)))
