;; expect-reject: duplicate-name
(module
  (func $f (result i32) (i32.const 1))
  (func $f (result i32) (i32.const 2))
  (func $main (export "main") (result i32) (i32.const 0)))
