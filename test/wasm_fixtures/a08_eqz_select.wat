;; expect: 1
;; expect: 0
;; expect: 10
;; expect: 20
(module
  (import "env" "putint" (func $putint (param i32)))
  (func $main (export "main") (result i32)
    (call $putint (i32.eqz (i32.const 0)))
    (call $putint (i32.eqz (i32.const 7)))
    (call $putint (select (i32.const 10) (i32.const 20) (i32.const 1)))
    (call $putint (select (i32.const 10) (i32.const 20) (i32.const 0)))
    (i32.const 0)))
