;; expect: 5
;; expect-exit: 77
(module
  (import "env" "putint" (func $putint (param i32)))
  (func $main (export "main") (result i32) (local $x i32)
    (local.set $x (i32.const 5))
    (block $b
      (br_if $b (i32.eqz (local.get $x)))
      (call $putint (local.get $x))
      (return (i32.const 77)))
    (call $putint (i32.const -1))
    (i32.const 0)))
