;; expect: 7
(module
  (import "env" "putint" (func $putint (param i32)))
  (func $add (param $a i32) (param $b i32) (result i32)
    (i32.add (local.get $a) (local.get $b)))
  (func $main (export "main") (result i32)
    (call $putint (call $add (i32.const 3) (i32.const 4)))
    (i32.const 0)))
