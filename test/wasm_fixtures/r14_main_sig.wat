;; expect-reject: type
(module
  (func $main (export "main") (param i32) (result i32)
    (local.get 0)))
