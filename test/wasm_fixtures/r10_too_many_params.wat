;; expect-reject: too-many-params
(module
  (func $wide (param i32) (param i32) (param i32) (param i32) (param i32) (param i32) (param i32) (param i32) (param i32) (result i32)
    (i32.const 0))
  (func $main (export "main") (result i32)
    (call $wide (i32.const 1) (i32.const 2) (i32.const 3) (i32.const 4) (i32.const 5) (i32.const 6) (i32.const 7) (i32.const 8) (i32.const 9))))
