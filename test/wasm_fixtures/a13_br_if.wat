;; expect: 1
;; expect: 3
(module
  (import "env" "putint" (func $putint (param i32)))
  (func $main (export "main") (result i32) (local $x i32)
    (block $b
      (call $putint (i32.const 1))
      (br_if $b (i32.eqz (local.get $x)))
      (call $putint (i32.const 2)))
    (call $putint (i32.const 3))
    (i32.const 0)))
