;; expect-reject: immutable-global
(module
  (global $k i32 (i32.const 3))
  (func $main (export "main") (result i32)
    (global.set $k (i32.const 4))
    (i32.const 0)))
