(* Recovery-determinism campaign for the checkpoint subsystem.

   The contract under test (DESIGN.md §11): save the engine at an
   arbitrary cycle boundary, kill the process, restore from the file
   alone, run to completion — and every observable (cycle count, CPI
   stack, activity counters, fault counts, program output, distance
   histogram) is bit-identical to the uninterrupted run.  Kills are
   simulated with [Sim.drive ~stop_at] (checkpoint + abandon, exactly
   what a SIGKILL leaves behind); restore points are drawn from a seeded
   PRNG so the campaign covers early, mid and late cycles across both
   pipelines.  The negative half: corrupt, truncated, version-bumped,
   magic-smashed and spec-mismatched files must all be rejected as
   structured [Snapshot_error] diagnostics, never accepted and never an
   uncaught exception. *)

module Params = Ooo_common.Params
module Engine = Ooo_common.Engine
module Inject = Ooo_common.Inject
module Exp = Straight_core.Experiment
module Sim = Snapshot.Sim

let tmpdir =
  lazy
    (let d =
       Filename.concat (Filename.get_temp_dir_name ())
         (Printf.sprintf "straight-snap-test.%d" (Unix.getpid ()))
     in
     (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
     at_exit (fun () ->
         (try
            Array.iter
              (fun f -> try Sys.remove (Filename.concat d f) with _ -> ())
              (Sys.readdir d);
            Unix.rmdir d
          with _ -> ()));
     d)

let tmp name = Filename.concat (Lazy.force tmpdir) name

(* deterministic stop-cycle generator (no global Random state) *)
let lcg seed =
  let s = ref (seed land 0x3fffffff) in
  fun () ->
    s := (!s * 1103515245 + 12345) land 0x3fffffff;
    !s

(* every stat the engine exposes must survive the round trip *)
let check_result_equal label (a : Exp.result) (b : Exp.result) =
  Alcotest.(check int) (label ^ ": cycles") a.Exp.cycles b.Exp.cycles;
  Alcotest.(check int) (label ^ ": committed") a.Exp.committed b.Exp.committed;
  Alcotest.(check string) (label ^ ": output") a.Exp.output b.Exp.output;
  Alcotest.(check bool) (label ^ ": full stats record") true
    (a.Exp.stats = b.Exp.stats);
  Alcotest.(check bool) (label ^ ": cpi stack") true
    (a.Exp.stats.Engine.cpi_stack = b.Exp.stats.Engine.cpi_stack);
  Alcotest.(check bool) (label ^ ": dist histogram") true
    (a.Exp.dist_histogram = b.Exp.dist_histogram)

(* save at [stop], abandon, restore from the file alone, finish *)
let kill_and_recover label spec ~stop =
  let fname =
    String.map (fun c -> if c = '/' || c = ' ' then '_' else c) label
  in
  let path = tmp (fname ^ ".snap") in
  (match Sim.run ~checkpoint_path:path ~stop_at:stop spec with
   | Sim.Stopped { cycle; path = p } ->
     Alcotest.(check string) (label ^ ": checkpoint path") path p;
     Alcotest.(check bool) (label ^ ": stopped at/after stop_at") true
       (cycle >= stop)
   | Sim.Completed _ ->
     Alcotest.fail (label ^ ": run completed before the simulated kill"));
  let r = Sim.run_restored path in
  Sys.remove path;
  r

let campaign_points = 3  (* restore points per (workload, model, target) *)

let test_recovery_determinism () =
  let grid =
    [ ("iota", Workloads.iota ~n:40 ());
      ("sort", Workloads.sort ~n:25 ()) ]
  and configs =
    [ ("st2-re", Params.straight_2way, Exp.Straight_re);
      ("st2-raw", Params.straight_2way, Exp.Straight_raw);
      ("ss2", Params.ss_2way, Exp.Riscv) ]
  in
  List.iter
    (fun (wname, w) ->
       List.iter
         (fun (cname, model, target) ->
            let spec = Sim.spec ~model ~target w in
            let baseline =
              match Sim.run spec with
              | Sim.Completed r -> r
              | Sim.Stopped _ -> assert false
            in
            let next = lcg (Hashtbl.hash (wname, cname)) in
            for k = 1 to campaign_points do
              let stop = 1 + (next () mod (baseline.Exp.cycles - 2)) in
              let label = Printf.sprintf "%s/%s #%d@%d" wname cname k stop in
              let r = kill_and_recover label spec ~stop in
              check_result_equal label baseline r
            done)
         configs)
    grid

let fault_kinds =
  [ Inject.Flip_prediction; Inject.Corrupt_cache_tag;
    Inject.Spurious_recovery; Inject.Stretch_fu_latency ]

let test_recovery_with_faults () =
  (* faults fire both before and after the restore point: the injection
     cursor is part of the snapshot, so the restored run must replay the
     exact same fault schedule *)
  let model =
    Params.with_faults (Inject.plan ~period:150 ~kinds:fault_kinds 11)
      Params.straight_4way
  in
  let spec = Sim.spec ~model ~target:Exp.Straight_re (Workloads.sort ~n:40 ()) in
  let baseline =
    match Sim.run spec with
    | Sim.Completed r -> r
    | Sim.Stopped _ -> assert false
  in
  Alcotest.(check bool) "faults actually fired" true
    (baseline.Exp.stats.Engine.faults_injected > 2);
  List.iter
    (fun frac ->
       let stop = max 1 (baseline.Exp.cycles * frac / 100) in
       let label = Printf.sprintf "faulted@%d%%" frac in
       let r = kill_and_recover label spec ~stop in
       check_result_equal label baseline r;
       Alcotest.(check int) (label ^ ": fault count")
         baseline.Exp.stats.Engine.faults_injected
         r.Exp.stats.Engine.faults_injected)
    [ 10; 50; 90 ]

let test_periodic_checkpoints () =
  (* -checkpoint-every leaves a usable file behind; resuming from the
     last periodic checkpoint reproduces the run *)
  let spec =
    Sim.spec ~model:Params.ss_2way ~target:Exp.Riscv (Workloads.fib ~n:12 ())
  in
  let path = tmp "periodic.snap" in
  let baseline =
    match Sim.run ~checkpoint_every:500 ~checkpoint_path:path spec with
    | Sim.Completed r -> r
    | Sim.Stopped _ -> assert false
  in
  Alcotest.(check bool) "periodic checkpoint exists" true
    (Sys.file_exists path);
  let r = Sim.run_restored path in
  Sys.remove path;
  check_result_equal "periodic" baseline r

(* ---------- rejection of bad files ---------- *)

let read_bytes path =
  In_channel.with_open_bin path (fun ic ->
      Bytes.of_string (In_channel.input_all ic))

let write_bytes path b =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc b)

let expect_snapshot_error label (f : unit -> unit) =
  match f () with
  | () -> Alcotest.fail (label ^ ": bad snapshot was accepted")
  | exception Diag.Error d ->
    Alcotest.(check string) (label ^ ": code") "SNAPSHOT_ERROR"
      (Diag.code_name d.Diag.code);
    Alcotest.(check int) (label ^ ": exit code") 9
      (Diag.exit_code d.Diag.code);
    Alcotest.(check bool) (label ^ ": names the file") true
      (List.mem_assoc "snapshot" d.Diag.context)

let good_snapshot =
  lazy
    (let spec =
       Sim.spec ~model:Params.straight_2way ~target:Exp.Straight_re
         (Workloads.iota ~n:30 ())
     in
     let path = tmp "good.snap" in
     (match Sim.run ~checkpoint_path:path ~stop_at:200 spec with
      | Sim.Stopped _ -> ()
      | Sim.Completed _ -> Alcotest.fail "seed snapshot run too short");
     (spec, path))

let with_mutant name mutate k =
  let _, good = Lazy.force good_snapshot in
  let b = read_bytes good in
  let path = tmp name in
  mutate b;
  write_bytes path b;
  k path;
  Sys.remove path

let test_reject_corrupt () =
  with_mutant "corrupt.snap"
    (fun b ->
       let off = Bytes.length b - 40 in
       Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0xff)))
    (fun path ->
       expect_snapshot_error "flipped payload byte" (fun () ->
           ignore (Sim.restore path)))

let test_reject_truncated () =
  with_mutant "short.snap" ignore (fun path ->
      let b = read_bytes path in
      write_bytes path (Bytes.sub b 0 (Bytes.length b / 2));
      expect_snapshot_error "truncated payload" (fun () ->
          ignore (Sim.restore path));
      write_bytes path (Bytes.sub b 0 10);
      expect_snapshot_error "truncated header" (fun () ->
          ignore (Sim.restore path)))

let test_reject_bad_magic () =
  with_mutant "magic.snap"
    (fun b -> Bytes.blit_string "NOTASNAP" 0 b 0 8)
    (fun path ->
       expect_snapshot_error "bad magic" (fun () ->
           ignore (Sim.restore path)))

let test_reject_bad_version () =
  with_mutant "version.snap"
    (fun b -> Bytes.set b 8 (Char.chr (Snapshot.File.version + 1)))
    (fun path ->
       expect_snapshot_error "future container version" (fun () ->
           ignore (Sim.restore path)))

let test_reject_missing () =
  expect_snapshot_error "missing file" (fun () ->
      ignore (Sim.restore (tmp "does-not-exist.snap")))

let test_reject_spec_mismatch () =
  (* [resume] (the sweep's entry point) must refuse a checkpoint taken
     under any other grid point *)
  let spec, good = Lazy.force good_snapshot in
  let wrong_model = { spec with Sim.params = Params.straight_4way } in
  expect_snapshot_error "model mismatch" (fun () ->
      ignore (Sim.resume wrong_model good));
  let wrong_workload = { spec with Sim.workload = Workloads.iota ~n:31 () } in
  expect_snapshot_error "workload mismatch" (fun () ->
      ignore (Sim.resume wrong_workload good));
  let wrong_check = { spec with Sim.check = not spec.Sim.check } in
  expect_snapshot_error "checker-arming mismatch" (fun () ->
      ignore (Sim.resume wrong_check good));
  (* the self-contained restore still accepts it *)
  ignore (Sim.restore good : Sim.session)

let test_flags_need_path () =
  let spec =
    Sim.spec ~model:Params.straight_2way ~target:Exp.Straight_re
      (Workloads.iota ~n:10 ())
  in
  List.iter
    (fun f ->
       match f () with
       | (_ : Sim.outcome) ->
         Alcotest.fail "checkpoint flag without a path was accepted"
       | exception Diag.Error d ->
         Alcotest.(check string) "config error" "CONFIG_ERROR"
           (Diag.code_name d.Diag.code))
    [ (fun () -> Sim.run ~checkpoint_every:100 spec);
      (fun () -> Sim.run ~stop_at:100 spec) ]

(* ---------- the sweep's resume path ---------- *)

let sweep_point () =
  { Sweep.Grid.params = Params.straight_2way;
    target = Exp.Straight_re;
    workload = Workloads.iota ~n:40 ();
    machine = Sweep.Grid.Straight_re;
    width = 2;
    sample = None }

let scrub (r : Sweep.Runner.record) = { r with Sweep.Runner.host_seconds = 0. }

let test_sweep_resume_identical () =
  let pt = sweep_point () in
  let clean = Sweep.Runner.run pt in
  (* simulate the kill: leave a mid-run checkpoint at the keyed path *)
  let path = tmp "sweep-resume.snap" in
  let spec =
    Sim.spec ~model:pt.Sweep.Grid.params ~target:pt.Sweep.Grid.target
      pt.Sweep.Grid.workload
  in
  (match
     Sim.run ~checkpoint_path:path ~stop_at:(clean.Sweep.Runner.cycles / 2) spec
   with
   | Sim.Stopped _ -> ()
   | Sim.Completed _ -> Alcotest.fail "point too short to interrupt");
  let resumed = Sweep.Runner.run ~checkpoint:path pt in
  Alcotest.(check bool)
    "resumed record identical to a clean run's (modulo host_seconds)" true
    (scrub clean = scrub resumed)

let test_sweep_unusable_checkpoint_restarts () =
  let pt = sweep_point () in
  let clean = Sweep.Runner.run pt in
  let path = tmp "sweep-garbage.snap" in
  write_bytes path (Bytes.of_string "definitely not a snapshot");
  let recovered = Sweep.Runner.run ~checkpoint:path pt in
  Alcotest.(check bool) "garbage checkpoint -> clean restart, same record"
    true
    (scrub clean = scrub recovered);
  Alcotest.(check bool) "garbage checkpoint deleted" true
    (not (Sys.file_exists path))

let suite =
  [ ("recovery determinism (seeded campaign, both pipelines)", `Slow,
     test_recovery_determinism);
    ("recovery with faults before and after the restore point", `Slow,
     test_recovery_with_faults);
    ("periodic checkpoints are restorable", `Quick,
     test_periodic_checkpoints);
    ("reject: corrupt payload (CRC)", `Quick, test_reject_corrupt);
    ("reject: truncated file", `Quick, test_reject_truncated);
    ("reject: bad magic", `Quick, test_reject_bad_magic);
    ("reject: future version", `Quick, test_reject_bad_version);
    ("reject: missing file", `Quick, test_reject_missing);
    ("reject: resume under a different spec", `Quick,
     test_reject_spec_mismatch);
    ("checkpoint flags require a path", `Quick, test_flags_need_path);
    ("sweep: resumed point = clean point", `Slow,
     test_sweep_resume_identical);
    ("sweep: unusable checkpoint restarts clean", `Quick,
     test_sweep_unusable_checkpoint_restarts) ]

let () = Alcotest.run "snapshot" [ ("snapshot", suite) ]
