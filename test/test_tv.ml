(* lib/tv — the translation validator.

   Three layers of assurance:
   - QCheck properties pin the term normalizer's contract: it is
     value-preserving under every environment and idempotent.  These are
     the soundness keystones — a normalizer that conflated distinct
     values would let the validator "prove" wrong code correct.
   - Acceptance: every committed workload validates with zero Error
     findings on both back-ends across middle-end levels (abstentions
     would show up as Info findings and are asserted away too).
   - Rejection: pinned mutation-harness seeds must each be caught with
     an Error finding naming the mutated function — the regression net
     against the validator silently going blind. *)

module T = Tv.Term
module V = Tv.Validate
module Ir = Ssa_ir.Ir

(* ---------- term generation ---------- *)

let binops =
  [ Ir.Add; Ir.Sub; Ir.Mul; Ir.Div; Ir.Divu; Ir.Rem; Ir.Remu; Ir.And;
    Ir.Or; Ir.Xor; Ir.Shl; Ir.Lshr; Ir.Ashr ]

let cmpops = [ Ir.Eq; Ir.Ne; Ir.Lt; Ir.Le; Ir.Gt; Ir.Ge; Ir.Ltu; Ir.Geu ]

let gen_term : T.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      let leaf =
        oneof
          [ map (fun i -> T.Const (Int32.of_int i)) (int_range (-70000) 70000);
            oneofl [ T.Const 0l; T.Const 1l; T.Const (-1l);
                     T.Const Int32.min_int; T.Const Int32.max_int ];
            map (fun i -> T.Param i) (int_range 0 5);
            return T.Ra;
            map (fun r -> T.Reg0 r) (int_range 1 31);
            map (fun k -> T.Sp (4 * k)) (int_range (-32) 32);
            map (fun (b, v) -> T.Join (b, v)) (pair (int_range 0 9) (int_range 0 40));
            map (fun k -> T.Uninit (4 * k)) (int_range 0 16);
            map (fun (s, l) -> T.Dead (s, l)) (pair (int_range 0 9) (int_range 0 40));
            map (fun v -> T.Retcall v) (int_range 100000 100040) ]
      in
      if n <= 0 then leaf
      else
        frequency
          [ (2, leaf);
            (4,
             map3 (fun op a b -> T.Bin (op, a, b)) (oneofl binops)
               (self (n / 2)) (self (n / 2)));
            (2,
             map3 (fun op a b -> T.Cmp (op, a, b)) (oneofl cmpops)
               (self (n / 2)) (self (n / 2)));
            (1, map2 (fun a b -> T.Mulh (a, b)) (self (n / 2)) (self (n / 2)));
            (1,
             map2 (fun v a -> T.Load (100000 + v, a)) (int_range 0 9)
               (self (n / 2))) ])

(* A deterministic environment from an integer salt: every leaf and
   every (version, address) load gets a pseudo-random but reproducible
   32-bit value. *)
let env_of_salt (salt : int) : T.env =
  let h x = Int32.of_int (Hashtbl.hash (salt, x) * 2654435761) in
  { T.leaf = (fun t -> h (T.to_string ~depth:100 t));
    T.load = (fun v a -> h (v, a)) }

let prop_normalize_sound =
  QCheck2.Test.make ~count:2000 ~name:"normalize preserves value"
    QCheck2.Gen.(pair gen_term (int_range 0 7))
    (fun (t, salt) ->
       let env = env_of_salt salt in
       T.eval env t = T.eval env (T.normalize t))

let prop_normalize_idempotent =
  QCheck2.Test.make ~count:2000 ~name:"normalize is idempotent"
    gen_term
    (fun t ->
       let n = T.normalize t in
       T.normalize n = n)

(* ---------- normalizer unit pins ---------- *)

let check_norm name expect t () =
  Alcotest.(check string) name (T.to_string expect) (T.to_string (T.normalize t))

let p0 = T.Param 0
let p1 = T.Param 1

let norm_cases =
  [ (* the machine's xor/sltiu equality idioms meet the IR's Cmp *)
    ("eq(xor(a,b),0) = eq(a,b)",
     T.Cmp (Ir.Eq, T.Bin (Ir.Xor, p0, p1), T.Const 0l),
     T.normalize (T.Cmp (Ir.Eq, p0, p1)));
    ("ltu(x,1) = eq(x,0)",
     T.Cmp (Ir.Ltu, p0, T.Const 1l),
     T.normalize (T.Cmp (Ir.Eq, p0, T.Const 0l)));
    ("eq(cmp,1) collapses", T.Cmp (Ir.Eq, T.Cmp (Ir.Lt, p0, p1), T.Const 1l),
     T.normalize (T.Cmp (Ir.Lt, p0, p1)));
    ("ne(cmp,0) collapses", T.Cmp (Ir.Ne, T.Cmp (Ir.Lt, p0, p1), T.Const 0l),
     T.normalize (T.Cmp (Ir.Lt, p0, p1)));
    ("xori cmp 1 negates",
     T.Bin (Ir.Xor, T.Cmp (Ir.Lt, p0, p1), T.Const 1l),
     T.normalize (T.Cmp (Ir.Ge, p0, p1)));
    ("x == x is decided", T.Cmp (Ir.Eq, T.Bin (Ir.Add, p0, p1),
                                 T.Bin (Ir.Add, p0, p1)),
     T.Const 1l);
    ("x - x cancels", T.Bin (Ir.Sub, T.Bin (Ir.Add, p0, p1),
                             T.Bin (Ir.Add, p1, p0)),
     T.Const 0l);
    ("sp displacement folds",
     T.Bin (Ir.Add, T.Bin (Ir.Add, T.Sp 8, T.Const 4l), T.Const 12l),
     T.Sp 24);
    ("commutative args sort", T.Bin (Ir.Add, p1, p0),
     T.normalize (T.Bin (Ir.Add, p0, p1))) ]

let norm_tests =
  List.map
    (fun (name, t, expect) ->
       Alcotest.test_case name `Quick (check_norm name expect t))
    norm_cases

(* ---------- acceptance over committed workloads ---------- *)

let tv_config level =
  { Straight_cc.Codegen.max_dist = Straight_isa.Isa.max_dist; level }

let assert_validates label findings () =
  let errs = Lint_report.errors findings in
  Alcotest.(check (list string))
    (label ^ " validates with no findings") []
    (List.map Lint_report.finding_to_string (errs @ findings))

let accept_case (w : Workloads.t) opt oname =
  let prog () =
    Straight_core.Compile.frontend ~opt w.Workloads.source
  in
  [ Alcotest.test_case
      (Printf.sprintf "%s straight-re+ %s" w.Workloads.name oname) `Quick
      (fun () ->
         assert_validates
           (w.Workloads.name ^ ":straight-re+")
           (V.validate_straight
              ~config:(tv_config Straight_cc.Codegen.Re_plus) (prog ()))
           ());
    Alcotest.test_case
      (Printf.sprintf "%s straight-raw %s" w.Workloads.name oname) `Quick
      (fun () ->
         assert_validates
           (w.Workloads.name ^ ":straight-raw")
           (V.validate_straight
              ~config:(tv_config Straight_cc.Codegen.Raw) (prog ()))
           ());
    Alcotest.test_case
      (Printf.sprintf "%s riscv %s" w.Workloads.name oname) `Quick
      (fun () ->
         assert_validates
           (w.Workloads.name ^ ":riscv")
           (V.validate_riscv (prog ()))
           ()) ]

let accept_tests =
  List.concat
    [ accept_case (Workloads.fib ()) Ssa_ir.Passes.O0 "O0";
      accept_case (Workloads.fib ()) Ssa_ir.Passes.O2 "O2";
      accept_case (Workloads.sort ()) Ssa_ir.Passes.O2 "O2";
      accept_case (Workloads.quicksort ()) Ssa_ir.Passes.O1 "O1";
      accept_case (Workloads.pointer_chase ()) Ssa_ir.Passes.O2 "O2" ]

(* validate_straight must leave its input reusable (it clones before the
   back end's in-place mutation) *)
let test_clone_isolation () =
  let prog =
    Straight_core.Compile.frontend ~opt:Ssa_ir.Passes.O2
      (Workloads.fib ()).Workloads.source
  in
  let f1 = V.validate_straight ~config:(tv_config Straight_cc.Codegen.Re_plus) prog in
  let f2 = V.validate_straight ~config:(tv_config Straight_cc.Codegen.Re_plus) prog in
  Alcotest.(check int) "same result twice" (List.length f1) (List.length f2);
  (* and the program still compiles cleanly afterwards *)
  ignore (Straight_cc.Codegen.compile_to_image prog)

(* ---------- rejection: pinned mutation seeds ---------- *)

(* Each seed deterministically selects (program, mutation site); all of
   these were verified to produce behavior-changing breakage.  The
   validator must reject every one with an Error naming the function. *)
let pinned_mutation_seeds = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ]

let test_mutation_seed seed () =
  let fresh () =
    Straight_core.Compile.frontend ~opt:Ssa_ir.Passes.O1
      (Fuzz.Gen.render (Fuzz.Gen.generate seed))
  in
  match
    V.mutation_trial ~config:(tv_config Straight_cc.Codegen.Re_plus)
      ~fresh ~seed ()
  with
  | None -> Alcotest.failf "seed %d offered no mutation site" seed
  | Some m ->
    if not m.V.m_caught then
      Alcotest.failf "seed %d: validator missed %s" seed m.V.m_desc;
    (* the catching finding names the mutated function *)
    Alcotest.(check bool)
      "an Error finding names the mutated function" true
      (List.exists
         (fun (f : Lint_report.finding) ->
            f.Lint_report.severity = Lint_report.Error
            && f.Lint_report.func = Some m.V.m_func)
         m.V.m_findings)

let mutation_tests =
  List.map
    (fun s ->
       Alcotest.test_case (Printf.sprintf "mutation seed %d caught" s)
         `Quick (test_mutation_seed s))
    pinned_mutation_seeds

(* ---------- lint_report JSON shape ---------- *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_report_json () =
  let fs =
    [ Lint_report.finding ~pc:0x1000 ~check:"tv-retval" ~func:"main" "boom";
      Lint_report.finding ~severity:Lint_report.Info ~pc:0x1004
        ~check:"tv-abstain" "gave up" ]
  in
  let js = Lint_report.report_to_json ~schema:"straight-tv/1" [ ("img", fs) ] in
  List.iter
    (fun needle ->
       Alcotest.(check bool) ("report contains " ^ needle) true
         (contains ~needle js))
    [ "\"schema\": \"straight-tv/1\""; "\"findings_total\": 2";
      "\"errors\": 1"; "\"infos\": 1"; "\"warnings\": 0";
      "\"func\": \"main\""; "\"images\""; "\"label\": \"img\"" ];
  (* without ?schema the original shape keys survive unchanged *)
  let js0 = Lint_report.report_to_json [ ("img", fs) ] in
  Alcotest.(check bool) "no schema key when not requested" false
    (contains ~needle:"\"schema\"" js0);
  Alcotest.(check bool) "images key present" true
    (contains ~needle:"\"images\"" js0)

let test_finding_func_render () =
  let f = Lint_report.finding ~pc:16 ~check:"c" ~func:"fn" "m" in
  Alcotest.(check bool) "rendering names the function" true
    (contains ~needle:"(fn)" (Lint_report.finding_to_string f));
  let bare = Lint_report.finding ~pc:16 ~check:"c" "m" in
  Alcotest.(check string) "no-func rendering unchanged" "0x10: [c] m"
    (Lint_report.finding_to_string bare)

let () =
  Alcotest.run "tv"
    [ ("normalizer-props",
       [ QCheck_alcotest.to_alcotest prop_normalize_sound;
         QCheck_alcotest.to_alcotest prop_normalize_idempotent ]);
      ("normalizer-pins", norm_tests);
      ("acceptance", accept_tests);
      ("clone-isolation",
       [ Alcotest.test_case "input program reusable" `Quick
           test_clone_isolation ]);
      ("mutation-rejection", mutation_tests);
      ("report-json",
       [ Alcotest.test_case "straight-tv/1 shape" `Quick test_report_json;
         Alcotest.test_case "finding func rendering" `Quick
           test_finding_func_render ]) ]
