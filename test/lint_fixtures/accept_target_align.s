.text
_start:
  beq zero, zero, done
  nop
done:
  ebreak
