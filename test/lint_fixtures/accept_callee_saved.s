.text
_start:
  jal ra, f
  ebreak

f:
  addi sp, sp, -16
  sw s0, 12(sp)
  addi s0, zero, 7
  add a0, s0, zero
  lw s0, 12(sp)
  addi sp, sp, 16
  ret
