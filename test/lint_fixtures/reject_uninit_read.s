.text
_start:
  jal ra, f
  ebreak

f:
  beq a0, zero, skip
  addi t0, zero, 5
skip:
  add a0, t0, zero
  ret
