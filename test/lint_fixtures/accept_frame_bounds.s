.text
_start:
  jal ra, f
  ebreak

f:
  addi sp, sp, -16
  sw a0, 0(sp)
  lw a1, 0(sp)
  addi sp, sp, 16
  ret
