.text
_start:
  jal ra, f
  ebreak

f:
  addi sp, sp, -16
  sw a0, 12(sp)
  lw a0, 12(sp)
  addi sp, sp, 16
  ret
