.text
_start:
  jal ra, f
  ebreak

f:
  addi sp, sp, -16
  sw a0, 16(sp)
  addi sp, sp, 16
  ret
