.text
_start:
  jal ra, f
  ebreak

f:
  addi s0, zero, 7
  add a0, s0, zero
  ret
