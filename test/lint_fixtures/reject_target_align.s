.text
_start:
  beq zero, zero, 4102
  nop
  ebreak
