.text
_start:
  jal ra, f
  ebreak

f:
  addi sp, sp, -16
  ret
