(* Tests for the differential fuzzer (lib/fuzz) and the STRAIGHT binary
   verifier (lib/straight_lint): fixed-seed agreement batches, generator
   determinism, shrinker behavior, linter acceptance on every workload
   image and rejection of hand-broken images, and the pinned minimized
   reproducers from the first fuzzing campaigns. *)

module Gen = Fuzz.Gen
module Diff = Fuzz.Diff
module Shrink = Fuzz.Shrink
module Lint = Straight_lint.Lint
module RLint = Riscv_lint.Lint
module Isa = Straight_isa.Isa
module SE = Straight_isa.Encoding
module Image = Assembler.Image

(* ---------- generator ---------- *)

let test_generator_deterministic () =
  List.iter
    (fun seed ->
       let a = Gen.render (Gen.generate seed) in
       let b = Gen.render (Gen.generate seed) in
       Alcotest.(check string) (Printf.sprintf "seed %d" seed) a b)
    [ 1; 2; 42; 696; 99991 ]

let test_generator_compiles () =
  (* every generated program must at least pass the frontend *)
  for seed = 1 to 40 do
    let src = Gen.render (Gen.generate seed) in
    ignore (Minic.Lower.compile src)
  done

(* ---------- differential agreement ---------- *)

let test_fixed_seed_agreement () =
  for seed = 1 to 25 do
    match Diff.check_seed seed with
    | _, _, Diff.Agree _ -> ()
    | _, src, Diff.Diverged (d :: _) ->
      Alcotest.failf "seed %d diverged: %s\n%s" seed
        (Format.asprintf "%a" Diff.pp_divergence d)
        src
    | _, src, Diff.Diverged [] -> Alcotest.failf "seed %d: empty divergence\n%s" seed src
    | _, src, Diff.Crashed { target; message } ->
      Alcotest.failf "seed %d crashed on %s: %s\n%s" seed target message src
  done

(* the pinned reproducers from triaging the first campaigns: these
   sources crashed or diverged before the fixes they document *)
let regression_files =
  [ "fuzz_regressions/seed7_minint_call_arg.mc";
    "fuzz_regressions/seed696_condbr_refresh.mc";
    "fuzz_regressions/shift_ge32.mc";
    "fuzz_regressions/seed140_folded_phi_prefix.mc";
    (* WASM campaign reproducers (Diff.check sniffs the front-end) *)
    "fuzz_regressions/seed9_deep_stack_tmp_expire.wat";
    "fuzz_regressions/seed75_refresh_alias.wat" ]

(* [dune runtest] runs in the stanza directory, [dune exec] wherever the
   user stands; accept both. *)
let read_repo_file (file : string) : string =
  let path =
    if Sys.file_exists file then file else Filename.concat "test" file
  in
  In_channel.with_open_text path In_channel.input_all

let test_regression_corpus () =
  List.iter
    (fun file ->
       let src = read_repo_file file in
       match Diff.check src with
       | Diff.Agree n ->
         Alcotest.(check bool) (file ^ " targets compared") true (n >= 2)
       | Diff.Diverged (d :: _) ->
         Alcotest.failf "%s diverged: %s" file
           (Format.asprintf "%a" Diff.pp_divergence d)
       | Diff.Diverged [] -> Alcotest.failf "%s: empty divergence" file
       | Diff.Crashed { target; message } ->
         Alcotest.failf "%s crashed on %s: %s" file target message)
    regression_files

(* ---------- shrinker ---------- *)

let rec stmt_size (s : Gen.stmt) : int =
  match s with
  | Gen.If (_, t, e) ->
    1 + List.fold_left (fun a s -> a + stmt_size s) 0 (t @ e)
  | Gen.Loop (_, _, b) -> 1 + List.fold_left (fun a s -> a + stmt_size s) 0 b
  | _ -> 1

let prog_size (p : Gen.prog) : int =
  List.fold_left (fun a s -> a + stmt_size s) 0 p.Gen.body
  + List.fold_left
      (fun a h -> a + List.fold_left (fun a s -> a + stmt_size s) 1 h.Gen.hbody)
      0 p.Gen.helpers
  + List.length p.Gen.locals + List.length p.Gen.globals

let test_shrinker_minimizes () =
  (* a synthetic failure: "the program still prints something".  The
     shrinker must keep the property while deleting everything else. *)
  let rec has_print_s s =
    match s with
    | Gen.Print _ -> true
    | Gen.If (_, t, e) -> List.exists has_print_s (t @ e)
    | Gen.Loop (_, _, b) -> List.exists has_print_s b
    | _ -> false
  in
  let has_print (p : Gen.prog) =
    List.exists has_print_s p.Gen.body
    || List.exists (fun h -> List.exists has_print_s h.Gen.hbody) p.Gen.helpers
  in
  let p = Gen.generate 3 in
  Alcotest.(check bool) "seed 3 prints" true (has_print p);
  let small = Shrink.shrink ~still_fails:has_print p in
  Alcotest.(check bool) "shrunk still prints" true (has_print small);
  Alcotest.(check bool)
    (Printf.sprintf "size %d -> %d" (prog_size p) (prog_size small))
    true
    (prog_size small < prog_size p);
  (* greedy fixpoint for this predicate: exactly one statement left *)
  Alcotest.(check bool) "one body stmt" true
    (List.length small.Gen.body <= 1 && small.Gen.helpers = [])

let test_shrinker_preserves_failure () =
  (* predicate based on an actual differential run: re-shrinking the
     pinned seed-7 failure class (min_int reaches a call argument)
     without the fix would keep that failure; with the fix everything
     agrees, so shrink under "still agrees" must return a program that
     still agrees *)
  let agrees p =
    match Diff.check (Gen.render p) with
    | Diff.Agree _ -> true
    | _ -> false
  in
  let p = Gen.generate 7 in
  Alcotest.(check bool) "seed 7 agrees after fix" true (agrees p);
  let small = Shrink.shrink ~budget:60 ~still_fails:agrees p in
  Alcotest.(check bool) "shrunk program still agrees" true (agrees small)

(* ---------- linter: acceptance ---------- *)

let test_lint_workloads_clean () =
  List.iter
    (fun (w : Workloads.t) ->
       List.iter
         (fun (level, max_dist) ->
            let image, _ =
              Straight_core.Compile.to_straight ~max_dist ~level
                w.Workloads.source
            in
            match Lint.lint ~max_dist image with
            | [] -> ()
            | f :: _ ->
              Alcotest.failf "%s (maxdist %d): %s" w.Workloads.name max_dist
                (Format.asprintf "%a" Lint.pp_finding f))
         [ (Straight_cc.Codegen.Re_plus, 1023);
           (Straight_cc.Codegen.Raw, 1023);
           (Straight_cc.Codegen.Re_plus, 31);
           (Straight_cc.Codegen.Raw, 31) ];
       let riscv = Straight_core.Compile.to_riscv w.Workloads.source in
       match RLint.lint riscv with
       | [] -> ()
       | f :: _ ->
         Alcotest.failf "%s riscv: %s" w.Workloads.name
           (Format.asprintf "%a" RLint.pp_finding f))
    [ Workloads.dhrystone ~iterations:2 ();
      Workloads.coremark ~iterations:1 ();
      Workloads.fib ~n:10 ();
      Workloads.iota ~n:16 ();
      Workloads.sort ~n:16 ();
      Workloads.quicksort ~n:24 ();
      Workloads.pointer_chase () ]

(* ---------- linter: rejection of broken images ---------- *)

let image_of_words ?(entry_word = 0) words =
  let base = Assembler.Layout.text_base in
  { Image.entry = base + (4 * entry_word);
    text_base = base;
    text = Array.of_list words;
    data_base = Assembler.Layout.data_base;
    data = [||];
    symbols = [] }

let has_check name findings =
  List.exists (fun (f : Lint.finding) -> f.Lint.check = name) findings

let test_lint_rejects () =
  let enc = SE.encode in
  (* opcode 63 is unassigned *)
  let bad = image_of_words [ 0xFFFFFFFFl; enc Isa.Halt ] in
  Alcotest.(check bool) "illegal opcode" true
    (has_check "illegal-opcode" (Lint.lint bad));
  (* a hand-packed SLLi with imm16 = 40 decodes but cannot re-encode *)
  let slli40 = Int32.of_int ((20 lsl 26) lor (1 lsl 16) lor 40) in
  let bad = image_of_words [ enc Isa.Nop; slli40; enc Isa.Halt ] in
  Alcotest.(check bool) "truncated shamt" true
    (has_check "encode-roundtrip" (Lint.lint bad));
  (* reading distance 5 when at most one instruction has retired *)
  let bad = image_of_words [ enc Isa.Nop; enc (Isa.Rmov 5); enc Isa.Halt ] in
  Alcotest.(check bool) "live window" true
    (has_check "live-window" (Lint.lint bad));
  (* jump far outside the text section *)
  let bad = image_of_words [ enc (Isa.J 1000); enc Isa.Halt ] in
  Alcotest.(check bool) "target bounds" true
    (has_check "target-bounds" (Lint.lint bad));
  (* last instruction is not a terminator *)
  let bad = image_of_words [ enc Isa.Nop ] in
  Alcotest.(check bool) "fall through" true
    (has_check "fall-through" (Lint.lint bad));
  (* function returns with SP still displaced *)
  let bad =
    image_of_words
      [ enc (Isa.Jal 2); enc Isa.Halt;
        enc (Isa.Spadd (-16)); enc (Isa.Jr 2) ]
  in
  Alcotest.(check bool) "spadd imbalance" true
    (has_check "spadd-imbalance" (Lint.lint bad));
  (* distances above a tighter configured bound *)
  let bad = image_of_words [ enc Isa.Nop; enc (Isa.Rmov 1); enc Isa.Halt ] in
  Alcotest.(check bool) "clean small image" true (Lint.lint bad = []);
  let wide =
    image_of_words
      (List.init 70 (fun _ -> enc Isa.Nop) @ [ enc (Isa.Rmov 64); enc Isa.Halt ])
  in
  Alcotest.(check bool) "distance over tight bound" true
    (has_check "distance-range" (Lint.lint ~max_dist:31 wide))

let suite =
  [ ("generator deterministic", `Quick, test_generator_deterministic);
    ("generator compiles", `Quick, test_generator_compiles);
    ("fixed-seed agreement", `Slow, test_fixed_seed_agreement);
    ("regression corpus", `Quick, test_regression_corpus);
    ("shrinker minimizes", `Quick, test_shrinker_minimizes);
    ("shrinker preserves failure", `Slow, test_shrinker_preserves_failure);
    ("lint workloads clean", `Slow, test_lint_workloads_clean);
    ("lint rejects broken images", `Quick, test_lint_rejects) ]

let () = Alcotest.run "fuzz" [ ("fuzz", suite) ]
