(* Tests for the microarchitecture substrate: caches, branch predictors,
   RAS, memory-dependence predictor, and end-to-end engine invariants. *)

module Params = Ooo_common.Params
module Cache = Ooo_common.Cache
module BP = Ooo_common.Branch_pred
module Engine = Ooo_common.Engine

(* ---------- caches ---------- *)

let test_cache_basics () =
  let c = Cache.create { Params.size_bytes = 1024; ways = 2; line_bytes = 64;
                         hit_latency = 4 } in
  (* 1024/64 = 16 lines, 2 ways -> 8 sets *)
  Alcotest.(check bool) "cold miss" false (Cache.touch c 0x1000);
  Alcotest.(check bool) "hit after fill" true (Cache.touch c 0x1000);
  Alcotest.(check bool) "same line hit" true (Cache.touch c 0x103C);
  Alcotest.(check bool) "different line miss" false (Cache.touch c 0x2000);
  Alcotest.(check int) "miss count" 2 c.Cache.misses;
  Alcotest.(check int) "access count" 4 c.Cache.accesses

let test_cache_lru () =
  let c = Cache.create { Params.size_bytes = 1024; ways = 2; line_bytes = 64;
                         hit_latency = 4 } in
  (* three lines mapping to the same set (8 sets, 64B lines: stride 512) *)
  let a = 0x0000 and b = 0x0200 and d = 0x0400 in
  ignore (Cache.touch c a);
  ignore (Cache.touch c b);
  ignore (Cache.touch c a); (* a most recent; b is LRU *)
  ignore (Cache.touch c d); (* evicts b *)
  Alcotest.(check bool) "a survives" true (Cache.touch c a);
  Alcotest.(check bool) "b evicted" false (Cache.touch c b)

let test_cache_fill_is_silent () =
  let c = Cache.create Params.l1_32k in
  Cache.fill c 0x4000;
  Alcotest.(check int) "fill does not count accesses" 0 c.Cache.accesses;
  Alcotest.(check bool) "fill installs the line" true (Cache.touch c 0x4000)

let test_hierarchy_latencies () =
  let h = Cache.create_hierarchy Params.ss_4way in
  let lat1 = Cache.data_access h 0x10000 in
  (* first touch: L1 miss, L2 miss, L3 miss, memory *)
  Alcotest.(check int) "cold access latency" (4 + 12 + 42 + 200) lat1;
  let lat2 = Cache.data_access h 0x10000 in
  Alcotest.(check int) "L1 hit latency" 4 lat2;
  (* the stream prefetcher should have installed the next lines *)
  let lat3 = Cache.data_access h 0x10040 in
  Alcotest.(check int) "prefetched next line" 4 lat3

let test_hierarchy_no_l3 () =
  let h = Cache.create_hierarchy Params.ss_2way in
  let lat = Cache.data_access h 0x20000 in
  Alcotest.(check int) "cold latency without L3" (4 + 12 + 200) lat

(* ---------- branch predictors ---------- *)

let test_gshare_learns_loop () =
  let p = BP.gshare () in
  let pc = 0x1000 in
  (* taken 7 times, not-taken once, repeatedly (a loop with 8 iterations) *)
  for _ = 1 to 50 do
    for i = 1 to 8 do
      ignore (p.BP.predict pc);
      p.BP.update pc (i < 8)
    done
  done;
  (* after training, the inner predictions should be mostly right *)
  let correct = ref 0 in
  for i = 1 to 8 do
    if p.BP.predict pc = (i < 8) then incr correct;
    p.BP.update pc (i < 8)
  done;
  Alcotest.(check bool) "gshare learned the loop" true (!correct >= 6)

let test_gshare_biased_branch () =
  let p = BP.gshare () in
  for _ = 1 to 20 do
    p.BP.update 0x2000 true
  done;
  Alcotest.(check bool) "always-taken learned" true (p.BP.predict 0x2000)

let test_tage_learns_pattern () =
  let p = BP.tage () in
  (* a pattern gshare-with-long-history handles: period-3 sequence *)
  let pattern = [| true; true; false |] in
  let i = ref 0 in
  for _ = 1 to 300 do
    ignore (p.BP.predict 0x3000);
    p.BP.update 0x3000 pattern.(!i mod 3);
    incr i
  done;
  let correct = ref 0 in
  for _ = 1 to 30 do
    if p.BP.predict 0x3000 = pattern.(!i mod 3) then incr correct;
    p.BP.update 0x3000 pattern.(!i mod 3);
    incr i
  done;
  Alcotest.(check bool)
    (Printf.sprintf "tage learned period-3 (%d/30)" !correct)
    true (!correct >= 25)

let test_ras () =
  let r = BP.Ras.create () in
  BP.Ras.push r 0x100;
  BP.Ras.push r 0x200;
  Alcotest.(check (option int)) "lifo pop" (Some 0x200) (BP.Ras.pop r);
  let saved = BP.Ras.save r in
  BP.Ras.push r 0x300;
  ignore (BP.Ras.pop r);
  ignore (BP.Ras.pop r);
  BP.Ras.restore r saved;
  Alcotest.(check (option int)) "restored top" (Some 0x100) (BP.Ras.pop r);
  Alcotest.(check (option int)) "empty pop" None (BP.Ras.pop r)

let test_memdep () =
  let m = Ooo_common.Memdep.create () in
  Alcotest.(check bool) "initially no conflict" false
    (Ooo_common.Memdep.predict_conflict m 0x4000);
  Ooo_common.Memdep.train_violation m 0x4000;
  Alcotest.(check bool) "conflict after violation" true
    (Ooo_common.Memdep.predict_conflict m 0x4000);
  Alcotest.(check int) "violation count" 1 m.Ooo_common.Memdep.violations

(* ---------- engine invariants ---------- *)

let compile_straight src =
  let p = Minic.Lower.compile src in
  List.iter Ssa_ir.Passes.optimize p.Ssa_ir.Ir.funcs;
  let config =
    { Straight_cc.Codegen.max_dist = 31; level = Straight_cc.Codegen.Re_plus }
  in
  Straight_cc.Codegen.compile_to_image ~config p

let compile_riscv src =
  let p = Minic.Lower.compile src in
  List.iter Ssa_ir.Passes.optimize p.Ssa_ir.Ir.funcs;
  Riscv_cc.Codegen.compile_to_image p

let sim_source = {|
int data[32];
int sum(int *a, int n) {
  int s = 0;
  for (int i = 0; i < n; i++) s += a[i];
  return s;
}
int main() {
  for (int i = 0; i < 32; i++) data[i] = i * 3 - 7;
  int total = 0;
  for (int round = 0; round < 20; round++) {
    total += sum(data, 32);
    if (total > 100000) total = 0;
    data[round & 31] = total & 255;
  }
  putint(total);
  return 0;
}
|}

let test_engine_straight_runs () =
  let image = compile_straight sim_source in
  let r = Ooo_straight.Pipeline.run Params.straight_4way image in
  let s = r.Ooo_straight.Pipeline.stats in
  Alcotest.(check bool) "ipc positive" true (s.Engine.ipc > 0.0);
  Alcotest.(check bool) "ipc below issue width" true
    (s.Engine.ipc <= float_of_int Params.straight_4way.Params.issue_width);
  Alcotest.(check bool) "committed everything" true (s.Engine.committed > 0);
  (* functional output must be produced by the ISS leg unchanged *)
  Alcotest.(check bool) "output nonempty" true
    (String.length r.Ooo_straight.Pipeline.output > 0)

let test_engine_riscv_runs () =
  let image = compile_riscv sim_source in
  let r = Ooo_riscv.Pipeline.run Params.ss_4way image in
  let s = r.Ooo_riscv.Pipeline.stats in
  Alcotest.(check bool) "ipc positive" true (s.Engine.ipc > 0.0);
  Alcotest.(check bool) "ipc below issue width" true
    (s.Engine.ipc <= float_of_int Params.ss_4way.Params.issue_width)

let test_engine_commit_count_matches_trace () =
  (* every correct-path instruction commits exactly once *)
  let image = compile_straight sim_source in
  let iss =
    Iss.Straight_iss.run
      ~config:{ Iss.Straight_iss.collect_trace = true; collect_dist = false;
                max_insns = 10_000_000 }
      image
  in
  let r = Ooo_straight.Pipeline.run Params.straight_2way image in
  Alcotest.(check int) "committed = trace length" iss.Iss.Trace.retired
    r.Ooo_straight.Pipeline.stats.Engine.committed

let test_engine_determinism () =
  let image = compile_straight sim_source in
  let r1 = Ooo_straight.Pipeline.run Params.straight_4way image in
  let r2 = Ooo_straight.Pipeline.run Params.straight_4way image in
  Alcotest.(check int) "same cycles" r1.Ooo_straight.Pipeline.stats.Engine.cycles
    r2.Ooo_straight.Pipeline.stats.Engine.cycles

let test_ideal_recovery_not_slower () =
  let image = compile_riscv sim_source in
  let normal = Ooo_riscv.Pipeline.run Params.ss_2way image in
  let ideal =
    Ooo_riscv.Pipeline.run (Params.with_ideal_recovery Params.ss_2way) image
  in
  Alcotest.(check bool) "ideal recovery is not slower" true
    (ideal.Ooo_riscv.Pipeline.stats.Engine.cycles
     <= normal.Ooo_riscv.Pipeline.stats.Engine.cycles)

let test_deeper_frontend_not_faster () =
  let image = compile_straight sim_source in
  let shallow = Ooo_straight.Pipeline.run Params.straight_4way image in
  let deep =
    Ooo_straight.Pipeline.run
      { Params.straight_4way with Params.frontend_depth = 12; name = "deep" }
      image
  in
  Alcotest.(check bool) "12-deep front end is not faster" true
    (deep.Ooo_straight.Pipeline.stats.Engine.cycles
     >= shallow.Ooo_straight.Pipeline.stats.Engine.cycles)

let test_wider_machine_not_slower () =
  let image = compile_straight sim_source in
  let narrow = Ooo_straight.Pipeline.run Params.straight_2way image in
  let wide = Ooo_straight.Pipeline.run Params.straight_4way image in
  Alcotest.(check bool) "4-way is not slower than 2-way" true
    (wide.Ooo_straight.Pipeline.stats.Engine.cycles
     <= narrow.Ooo_straight.Pipeline.stats.Engine.cycles)

let test_mix_totals () =
  let image = compile_straight sim_source in
  let r = Ooo_straight.Pipeline.run Params.straight_2way image in
  let s = r.Ooo_straight.Pipeline.stats in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 s.Engine.mix in
  Alcotest.(check int) "mix sums to committed" s.Engine.committed total

let test_slow_memory_slower () =
  let image = compile_straight sim_source in
  let fast = Ooo_straight.Pipeline.run Params.straight_2way image in
  let slow =
    Ooo_straight.Pipeline.run
      { Params.straight_2way with Params.memory_latency = 800; name = "slowmem" }
      image
  in
  Alcotest.(check bool) "4x memory latency is not faster" true
    (slow.Ooo_straight.Pipeline.stats.Engine.cycles
     >= fast.Ooo_straight.Pipeline.stats.Engine.cycles)

(* the checkpointed-RMT variant (Section II-A) removes the walk but adds
   checkpoint-occupancy stalls: it must land between SS and ideal *)
let test_checkpointed_rmt_between () =
  let image = compile_riscv sim_source in
  let ss = Ooo_riscv.Pipeline.run Params.ss_4way image in
  let ck =
    Ooo_riscv.Pipeline.run (Params.with_checkpoints ~n:8 Params.ss_4way) image
  in
  let ideal =
    Ooo_riscv.Pipeline.run (Params.with_ideal_recovery Params.ss_4way) image
  in
  Alcotest.(check bool) "checkpoints not slower than walk" true
    (ck.Ooo_riscv.Pipeline.stats.Engine.cycles
     <= ss.Ooo_riscv.Pipeline.stats.Engine.cycles);
  Alcotest.(check bool) "checkpoints not faster than ideal" true
    (ck.Ooo_riscv.Pipeline.stats.Engine.cycles
     >= ideal.Ooo_riscv.Pipeline.stats.Engine.cycles);
  Alcotest.(check int) "no walk with checkpoints" 0
    ck.Ooo_riscv.Pipeline.stats.Engine.walk_stall_cycles

(* starved checkpoints must actually stall *)
let test_checkpoint_starvation () =
  let image = compile_riscv sim_source in
  let starved =
    Ooo_riscv.Pipeline.run (Params.with_checkpoints ~n:1 Params.ss_4way) image
  in
  Alcotest.(check bool) "1 checkpoint causes stalls" true
    (starved.Ooo_riscv.Pipeline.stats.Engine.checkpoint_stall_slots > 0)

(* Section III-B: the SPADD dispatch restriction is negligible *)
let test_spadd_limit_negligible () =
  let image = compile_straight sim_source in
  let r = Ooo_straight.Pipeline.run Params.straight_4way image in
  let s = r.Ooo_straight.Pipeline.stats in
  Alcotest.(check bool)
    (Printf.sprintf "spadd stalls %d < 2%% of cycles %d"
       s.Engine.spadd_stall_slots s.Engine.cycles)
    true
    (float_of_int s.Engine.spadd_stall_slots
     < 0.02 *. float_of_int s.Engine.cycles)

(* the lockstep golden-model checker is on by default in Pipeline.run;
   every built-in workload must retire through it with zero violations
   on both a STRAIGHT and a superscalar model *)
let test_checker_on_builtin_workloads () =
  let workloads =
    [ Workloads.dhrystone ~iterations:5 ();
      Workloads.coremark ~iterations:1 ();
      Workloads.fib ();
      Workloads.iota ();
      Workloads.sort ();
      Workloads.quicksort ();
      Workloads.pointer_chase ~nodes:256 ~hops:200 () ]
  in
  List.iter
    (fun w ->
       List.iter
         (fun (model, target) ->
            let r =
              Straight_core.Experiment.run ~model ~target w
            in
            Alcotest.(check bool)
              (Printf.sprintf "%s on %s: checker ran" w.Workloads.name
                 model.Params.name)
              true
              (r.Straight_core.Experiment.stats.Engine.commits_checked
               >= r.Straight_core.Experiment.stats.Engine.committed))
         [ (Params.straight_2way, Straight_core.Experiment.Straight_re);
           (Params.ss_2way, Straight_core.Experiment.Riscv) ])
    workloads

(* pointer chasing defeats the next-line prefetcher: many L1D misses *)
let test_pointer_chase_misses () =
  let w = Workloads.pointer_chase ~nodes:16384 ~hops:3000 () in
  let p = Minic.Lower.compile w.Workloads.source in
  List.iter Ssa_ir.Passes.optimize p.Ssa_ir.Ir.funcs;
  let image = Riscv_cc.Codegen.compile_to_image p in
  let r = Ooo_riscv.Pipeline.run Params.ss_2way image in
  Alcotest.(check bool) "pointer chase misses in L1D" true
    (r.Ooo_riscv.Pipeline.stats.Engine.l1d_misses > 500)

let suite =
  [ ("cache basics", `Quick, test_cache_basics);
    ("cache LRU", `Quick, test_cache_lru);
    ("cache silent fill", `Quick, test_cache_fill_is_silent);
    ("hierarchy latencies", `Quick, test_hierarchy_latencies);
    ("hierarchy without L3", `Quick, test_hierarchy_no_l3);
    ("gshare learns loop", `Quick, test_gshare_learns_loop);
    ("gshare biased branch", `Quick, test_gshare_biased_branch);
    ("tage learns pattern", `Quick, test_tage_learns_pattern);
    ("return address stack", `Quick, test_ras);
    ("memory dependence predictor", `Quick, test_memdep);
    ("engine: straight runs", `Quick, test_engine_straight_runs);
    ("engine: riscv runs", `Quick, test_engine_riscv_runs);
    ("engine: commit count", `Quick, test_engine_commit_count_matches_trace);
    ("engine: determinism", `Quick, test_engine_determinism);
    ("engine: ideal recovery", `Quick, test_ideal_recovery_not_slower);
    ("engine: deeper frontend", `Quick, test_deeper_frontend_not_faster);
    ("engine: wider machine", `Quick, test_wider_machine_not_slower);
    ("engine: mix totals", `Quick, test_mix_totals);
    ("engine: slow memory", `Quick, test_slow_memory_slower);
    ("engine: checkpointed RMT", `Quick, test_checkpointed_rmt_between);
    ("engine: checkpoint starvation", `Quick, test_checkpoint_starvation);
    ("engine: spadd limit negligible", `Quick, test_spadd_limit_negligible);
    ("engine: checker on built-in workloads", `Slow, test_checker_on_builtin_workloads);
    ("engine: pointer chase misses", `Slow, test_pointer_chase_misses) ]

let () = Alcotest.run "ooo" [ ("ooo", suite) ]
