(* Reproduction harness: regenerates every table and figure of the paper's
   evaluation (Sections V-VI).  Each subcommand prints the rows/series the
   paper reports; `all` runs everything (the default).

     dune exec bench/main.exe [-- table1|fig10|fig11|fig12|fig13|fig14|
                                  fig15|fig16|fig17|sweep_maxdist|ablation|
                                  micro|all] [--quick] [--json OUT]

   With [--json OUT] the perf suite also runs: every Table-I model on
   dhrystone and coremark, several repetitions each, timing the engine
   alone (compile and the functional ISS run are hoisted out of the
   timed region).  OUT receives the median host throughput (simulated
   kilocycles per host second), IPC, and the CPI stack per model x
   workload — the format scripts/bench_gate.ml consumes (see
   EXPERIMENTS.md for the schema).  With --json and no subcommand, only
   the perf suite runs.

   Absolute cycle counts differ from the paper (our substrate is our own
   simulator, not the authors' testbed); the reproduced quantities are the
   relative-performance shapes.  See EXPERIMENTS.md for paper-vs-measured
   numbers. *)

module Models = Straight_core.Models
module Exp = Straight_core.Experiment
module Engine = Ooo_common.Engine
module Stats = Ooo_common.Stats

let quick = ref false

let dhrystone () = Workloads.dhrystone ~iterations:(if !quick then 30 else 200) ()
let coremark () = Workloads.coremark ~iterations:(if !quick then 2 else 5) ()

let header title =
  Printf.printf "\n==================== %s ====================\n%!" title

(* memoize experiment runs: several figures reuse the same configurations.
   The key is the stable params digest (which covers every model field,
   fault-injection plan included) plus the run knobs that live outside
   Params.t — the same key family the sweep subsystem's on-disk cache
   uses, so a config change can never alias a stale result through a
   shared model name.  The checkpoint knobs are part of the key even
   though the fixpoint contract says a resumed run is bit-identical: the
   perf gate times these runs, and a run that saved snapshots or resumed
   mid-flight must never be served where an uninterrupted measurement is
   expected (or vice versa). *)
let cache : (string, Exp.result) Hashtbl.t = Hashtbl.create 32

let run ?max_dist ?(check = true) ?(checkpoint_every = 0) ?restore_from
    ~model ~target w =
  let key =
    Printf.sprintf "%s/%s/%s/%d/%b/ck%d/%s"
      (Ooo_common.Params.digest model)
      (Exp.target_label target) w.Workloads.name
      (Option.value ~default:Ooo_common.Params.straight_max_dist max_dist)
      check checkpoint_every
      (Option.value ~default:"" restore_from)
  in
  match Hashtbl.find_opt cache key with
  | Some r -> r
  | None ->
    let r =
      if checkpoint_every = 0 && restore_from = None then
        Exp.run ?max_dist ~check ~model ~target w
      else
        let spec = Snapshot.Sim.spec ?max_dist ~check ~model ~target w in
        let checkpoint_path =
          Filename.temp_file "straight-bench" ".snap"
        in
        match
          Snapshot.Sim.run ~checkpoint_every ~checkpoint_path ?restore_from
            spec
        with
        | Snapshot.Sim.Completed r ->
          (try Sys.remove checkpoint_path with Sys_error _ -> ());
          r
        | Snapshot.Sim.Stopped _ -> assert false (* no stop_at here *)
    in
    Hashtbl.replace cache key r;
    r

let rel ~base r = float_of_int base.Exp.cycles /. float_of_int r.Exp.cycles

(* ---------- Table I ---------- *)

let table1 () =
  header "Table I: evaluated models";
  let p fmt = Printf.printf fmt in
  let row name f =
    p "%-18s" name;
    List.iter (fun m -> p " %14s" (f m)) Models.all;
    p "\n"
  in
  p "%-18s" "";
  List.iter (fun m -> p " %14s" m.Ooo_common.Params.name) Models.all;
  p "\n";
  let s = string_of_int in
  row "ISA" (fun m ->
      match m.Ooo_common.Params.rename with
      | Ooo_common.Params.Rmt _ | Ooo_common.Params.Rmt_checkpoint _ ->
        "RV32IM"
      | Ooo_common.Params.Rp -> "STRAIGHT");
  row "Fetch width" (fun m -> s m.Ooo_common.Params.fetch_width);
  row "Front-end latency" (fun m -> s m.Ooo_common.Params.frontend_depth);
  row "ROB capacity" (fun m -> s m.Ooo_common.Params.rob_entries);
  row "Scheduler" (fun m ->
      Printf.sprintf "%d way, %d ent" m.Ooo_common.Params.issue_width
        m.Ooo_common.Params.scheduler_entries);
  row "Register file" (fun m ->
      match m.Ooo_common.Params.rename with
      | Ooo_common.Params.Rmt { phys_regs }
      | Ooo_common.Params.Rmt_checkpoint { phys_regs; _ } -> s phys_regs
      | Ooo_common.Params.Rp ->
        Printf.sprintf "%d (31+%d)"
          (Ooo_common.Params.straight_max_dist + m.Ooo_common.Params.rob_entries)
          m.Ooo_common.Params.rob_entries);
  row "LSQ" (fun m ->
      Printf.sprintf "LD %d / ST %d" m.Ooo_common.Params.ldq_entries
        m.Ooo_common.Params.stq_entries);
  row "Exec units" (fun m ->
      Printf.sprintf "A%d M%d D%d B%d Mem%d" m.Ooo_common.Params.n_alu
        m.Ooo_common.Params.n_mul m.Ooo_common.Params.n_div
        m.Ooo_common.Params.n_bc m.Ooo_common.Params.n_mem);
  row "Commit width" (fun m -> s m.Ooo_common.Params.commit_width);
  row "L3 cache" (fun m ->
      match m.Ooo_common.Params.l3 with
      | Some _ -> "2 MiB/42cyc"
      | None -> "N/A")

(* ---------- Fig. 10: RAW vs RE+ code for iota ---------- *)

let fig10 () =
  header "Fig. 10: iota() compiled RAW vs RE+";
  let src = (Workloads.iota ~n:16 ()).Workloads.source in
  let show level label =
    let asm = Straight_core.Compile.straight_asm ~max_dist:1023 ~level src in
    let image, stats =
      Straight_core.Compile.to_straight ~max_dist:1023 ~level src
    in
    let r = Iss.Straight_iss.run image in
    Printf.printf "--- %s: %d static instructions (%d RMOV, %d NOP), %d retired ---\n"
      label stats.Straight_cc.Codegen.total stats.Straight_cc.Codegen.rmov
      stats.Straight_cc.Codegen.nop r.Iss.Trace.retired;
    (* print only the iota function body *)
    let lines = String.split_on_char '\n' asm in
    let in_f = ref false in
    List.iter
      (fun l ->
         if l = "f_iota:" then in_f := true
         else if String.length l > 2 && l.[0] = 'f' && l.[1] = '_' then in_f := false;
         if !in_f then print_endline l)
      lines
  in
  show Straight_cc.Codegen.Raw "RAW (basic algorithm, Sections IV-A..C)";
  show Straight_cc.Codegen.Re_plus "RE+ (redundancy elimination, Section IV-D)"

(* ---------- Figs. 11/12: relative performance ---------- *)

let perf_figure ~title ~(ss : Ooo_common.Params.t) ~(straight : Ooo_common.Params.t) =
  header title;
  Printf.printf "%-12s %-18s %10s %10s %14s\n" "workload" "config" "cycles"
    "insts" "rel. perf";
  List.iter
    (fun w ->
       let base = run ~model:ss ~target:Exp.Riscv w in
       let show label r =
         Printf.printf "%-12s %-18s %10d %10d %14.3f\n%!" w.Workloads.name
           label r.Exp.cycles r.Exp.committed (rel ~base r)
       in
       show "SS" base;
       show "STRAIGHT(RAW)" (run ~model:straight ~target:Exp.Straight_raw w);
       show "STRAIGHT(RE+)" (run ~model:straight ~target:Exp.Straight_re w))
    [ dhrystone (); coremark () ]

let fig11 () =
  perf_figure
    ~title:"Fig. 11: performance, 4-way (normalized to SS-4way)"
    ~ss:Models.ss_4way ~straight:Models.straight_4way

let fig12 () =
  perf_figure
    ~title:"Fig. 12: performance, 2-way (normalized to SS-2way)"
    ~ss:Models.ss_2way ~straight:Models.straight_2way

(* ---------- Fig. 13: effect of the misprediction penalty ---------- *)

let fig13 () =
  header "Fig. 13: misprediction-penalty effect (CoreMark, normalized to SS-2way)";
  let w = coremark () in
  let base = run ~model:Models.ss_2way ~target:Exp.Riscv w in
  let show label r =
    Printf.printf "%-24s %10d %14.3f\n%!" label r.Exp.cycles (rel ~base r)
  in
  show "SS 2-way" base;
  show "SS 2-way no-penalty"
    (run ~model:(Models.with_ideal_recovery Models.ss_2way) ~target:Exp.Riscv w);
  show "STRAIGHT 2-way (RE+)"
    (run ~model:Models.straight_2way ~target:Exp.Straight_re w);
  show "SS 4-way" (run ~model:Models.ss_4way ~target:Exp.Riscv w);
  show "SS 4-way no-penalty"
    (run ~model:(Models.with_ideal_recovery Models.ss_4way) ~target:Exp.Riscv w);
  show "STRAIGHT 4-way (RE+)"
    (run ~model:Models.straight_4way ~target:Exp.Straight_re w)

(* ---------- Fig. 14: TAGE ---------- *)

let fig14 () =
  header "Fig. 14: with an 8-component TAGE predictor (CoreMark, norm. to SS)";
  let w = coremark () in
  List.iter
    (fun (ss, straight, label) ->
       let ss_t = Models.with_tage ss in
       let straight_t = Models.with_tage straight in
       let base = run ~model:ss_t ~target:Exp.Riscv w in
       let show l r =
         Printf.printf "%-26s %10d misp=%6d %14.3f\n%!" l r.Exp.cycles
           r.Exp.stats.Engine.branch_mispredicts (rel ~base r)
       in
       Printf.printf "-- %s --\n" label;
       show "SS+TAGE" base;
       show "STRAIGHT(RAW)+TAGE" (run ~model:straight_t ~target:Exp.Straight_raw w);
       show "STRAIGHT(RE+)+TAGE" (run ~model:straight_t ~target:Exp.Straight_re w))
    [ (Models.ss_2way, Models.straight_2way, "2-way");
      (Models.ss_4way, Models.straight_4way, "4-way") ]

(* ---------- Fig. 15: retired instruction mix ---------- *)

let fig15 () =
  header "Fig. 15: retired instruction mix (CoreMark, normalized to SS total)";
  let w = coremark () in
  let categories = [ "Jump+Branch"; "ALU"; "LD"; "ST"; "RMOV"; "NOP" ] in
  let get r cat =
    Option.value ~default:0 (List.assoc_opt cat r.Exp.stats.Engine.mix)
  in
  let ss = run ~model:Models.ss_4way ~target:Exp.Riscv w in
  let raw = run ~model:Models.straight_4way ~target:Exp.Straight_raw w in
  let re = run ~model:Models.straight_4way ~target:Exp.Straight_re w in
  let total_ss = float_of_int ss.Exp.committed in
  Printf.printf "%-12s %10s %14s %14s\n" "category" "SS" "STRAIGHT(RAW)"
    "STRAIGHT(RE+)";
  List.iter
    (fun cat ->
       Printf.printf "%-12s %10.3f %14.3f %14.3f\n"
         cat
         (float_of_int (get ss cat) /. total_ss)
         (float_of_int (get raw cat) /. total_ss)
         (float_of_int (get re cat) /. total_ss))
    categories;
  Printf.printf "%-12s %10.3f %14.3f %14.3f\n" "TOTAL"
    (float_of_int ss.Exp.committed /. total_ss)
    (float_of_int raw.Exp.committed /. total_ss)
    (float_of_int re.Exp.committed /. total_ss)

(* ---------- Fig. 16: cumulative source-distance distribution ---------- *)

let fig16 () =
  header "Fig. 16: cumulative fraction of source operand distances (max dist 1023)";
  let points = [ 1; 2; 4; 8; 16; 32; 64; 128 ] in
  Printf.printf "%-12s" "distance";
  List.iter (fun d -> Printf.printf " %8d" d) points;
  Printf.printf "\n";
  List.iter
    (fun (w : Workloads.t) ->
       let image, _ =
         Straight_core.Compile.to_straight ~max_dist:1023
           ~level:Straight_cc.Codegen.Re_plus w.Workloads.source
       in
       let r =
         Iss.Straight_iss.run
           ~config:{ Iss.Straight_iss.collect_trace = false;
                     collect_dist = true; max_insns = 50_000_000 }
           image
       in
       let hist = r.Iss.Trace.dist_histogram in
       let total = Array.fold_left ( + ) 0 hist in
       let max_used = ref 0 in
       Array.iteri (fun d n -> if n > 0 then max_used := d) hist;
       Printf.printf "%-12s" w.Workloads.name;
       List.iter
         (fun limit ->
            let below = ref 0 in
            for d = 0 to min limit (Array.length hist - 1) do
              below := !below + hist.(d)
            done;
            Printf.printf " %8.3f" (float_of_int !below /. float_of_int total))
         points;
       Printf.printf "   (max distance used: %d)\n%!" !max_used)
    [ coremark (); dhrystone () ]

(* ---------- Section VI-B: max-distance sweep ---------- *)

let sweep_maxdist () =
  header "Section VI-B: sensitivity to the maximum distance (CoreMark, RE+, 4-way)";
  let w = coremark () in
  let base = ref 0 in
  List.iter
    (fun md ->
       let r =
         run ~max_dist:md ~model:Models.straight_4way ~target:Exp.Straight_re w
       in
       if !base = 0 then base := r.Exp.cycles;
       Printf.printf "max distance %5d: cycles=%8d insts=%8d (%+.2f%% cycles vs 1023)\n%!"
         md r.Exp.cycles r.Exp.committed
         (100.0 *. (float_of_int r.Exp.cycles /. float_of_int !base -. 1.0)))
    [ 1023; 127; 63; 31 ]

(* ---------- Fig. 17: relative power ---------- *)

let fig17 () =
  header "Fig. 17: relative power, 2-way cores (normalized per module to SS@1.0x)";
  (* the paper uses a test code on the 2-way RTL designs without mul/div;
     we use the CoreMark kernel (the paper's evaluation workload) *)
  let w = Workloads.coremark ~iterations:1 () in
  let ss = run ~model:Models.ss_2way ~target:Exp.Riscv w in
  let straight = run ~model:Models.straight_2way ~target:Exp.Straight_re w in
  let ss_rep = Power.analyze ~cycles:ss.Exp.cycles ss.Exp.stats.Engine.activity in
  let st_rep =
    Power.analyze ~cycles:straight.Exp.cycles
      straight.Exp.stats.Engine.activity
  in
  Printf.printf "rename/other ratio (SS, paper anchor 5.7%%): %.1f%%\n"
    (100.0 *. ss_rep.Power.rename /. ss_rep.Power.other);
  Printf.printf "%-16s %6s %10s %10s\n" "module" "freq" "SS" "STRAIGHT";
  List.iter
    (fun (row : Power.figure17_row) ->
       Printf.printf "%-16s %5.1fx %10.3f %10.3f\n" row.Power.module_name
         row.Power.freq row.Power.ss row.Power.straight)
    (Power.figure17 ~ss:ss_rep ~straight:st_rep);
  Printf.printf
    "(STRAIGHT regfile/other exceed SS slightly: higher IPC — Section VI-C)\n"

(* ---------- ablation: where does STRAIGHT's advantage come from? ---------- *)

let ablation () =
  header "Ablation: front-end depth vs. recovery mechanism (CoreMark, 4-way)";
  let w = coremark () in
  let base = run ~model:Models.ss_4way ~target:Exp.Riscv w in
  let show label r =
    Printf.printf "%-44s %10d %8.3f\n%!" label r.Exp.cycles (rel ~base r)
  in
  show "SS (8-deep front end, RMT walk recovery)" base;
  let ss_fe6 =
    { Models.ss_4way with Ooo_common.Params.frontend_depth = 6;
      name = "SS-4way-fe6" }
  in
  show "SS + 6-deep front end (walk kept)" (run ~model:ss_fe6 ~target:Exp.Riscv w);
  let straight_fe8 =
    { Models.straight_4way with Ooo_common.Params.frontend_depth = 8;
      name = "STRAIGHT-4way-fe8" }
  in
  show "STRAIGHT RE+ + 8-deep front end (no walk)"
    (run ~model:straight_fe8 ~target:Exp.Straight_re w);
  show "STRAIGHT RE+ (6-deep front end, no walk)"
    (run ~model:Models.straight_4way ~target:Exp.Straight_re w);
  header "Ablation: RE+ contribution (CoreMark, 4-way)";
  let raw = run ~model:Models.straight_4way ~target:Exp.Straight_raw w in
  let re = run ~model:Models.straight_4way ~target:Exp.Straight_re w in
  Printf.printf "RAW retired: %d; RE+ retired: %d (%.1f%% fewer)\n"
    raw.Exp.committed re.Exp.committed
    (100.0 *. (1.0 -. float_of_int re.Exp.committed /. float_of_int raw.Exp.committed));
  (* middle-end optimization levels affect the two architectures
     differently: CSE/LICM lengthen live ranges, which the register-rich
     superscalar absorbs but STRAIGHT pays for in frame relays — the
     back end's localization pass recovers most of it *)
  header "Ablation: IR optimization level (CoreMark, 4-way, cycles)";
  Printf.printf "%-6s %12s %14s\n" "level" "SS" "STRAIGHT RE+";
  List.iter
    (fun (name, opt) ->
       let compile_run target =
         let p = Minic.Lower.compile w.Workloads.source in
         List.iter (Ssa_ir.Passes.optimize_at opt) p.Ssa_ir.Ir.funcs;
         match target with
         | `Riscv ->
           let image = Riscv_cc.Codegen.compile_to_image p in
           (Ooo_riscv.Pipeline.run Models.ss_4way image)
             .Ooo_riscv.Pipeline.stats.Engine.cycles
         | `Straight ->
           let image =
             Straight_cc.Codegen.compile_to_image
               ~config:{ Straight_cc.Codegen.max_dist =
                           Ooo_common.Params.straight_max_dist;
                         level = Straight_cc.Codegen.Re_plus }
               p
           in
           (Ooo_straight.Pipeline.run Models.straight_4way image)
             .Ooo_straight.Pipeline.stats.Engine.cycles
       in
       Printf.printf "%-6s %12d %14d\n%!" name (compile_run `Riscv)
         (compile_run `Straight))
    [ ("O0", Ssa_ir.Passes.O0); ("O1", Ssa_ir.Passes.O1);
      ("O2", Ssa_ir.Passes.O2) ]

(* ---------- window (ROB) scalability ---------- *)

(* The paper's scalability argument (Sections II-B/III-B): STRAIGHT's
   instruction window can grow because recovery cost does not grow with the
   ROB and the register file is a plain queue, while the superscalar's
   walk penalty and physical register pressure grow with it.  We sweep the
   ROB (scaling the physical registers and MAX_RP accordingly) and also
   show the checkpointed-RMT alternative the paper discusses (II-A). *)
let rob_sweep () =
  header "Window scalability: ROB sweep (CoreMark, 4-way, cycles)";
  let w = coremark () in
  Printf.printf "%-8s %12s %12s %14s
" "ROB" "SS" "STRAIGHT RE+" "SS+checkpoints";
  List.iter
    (fun rob ->
       let ss =
         { Models.ss_4way with
           Ooo_common.Params.rob_entries = rob;
           rename = Ooo_common.Params.Rmt { phys_regs = 32 + rob };
           name = Printf.sprintf "SS-4way-rob%d" rob }
       in
       let ckpt = Models.with_checkpoints ~n:8 ss in
       let straight =
         { Models.straight_4way with
           Ooo_common.Params.rob_entries = rob;
           name = Printf.sprintf "STRAIGHT-4way-rob%d" rob }
       in
       let r_ss = run ~model:ss ~target:Exp.Riscv w in
       let r_ck = run ~model:ckpt ~target:Exp.Riscv w in
       let r_st = run ~model:straight ~target:Exp.Straight_re w in
       Printf.printf "%-8d %12d %12d %14d
%!" rob r_ss.Exp.cycles
         r_st.Exp.cycles r_ck.Exp.cycles)
    [ 32; 64; 128; 224; 448 ];
  (* the paper's III-B claim: the SPADD dispatch restriction is negligible *)
  let r = run ~model:Models.straight_4way ~target:Exp.Straight_re w in
  Printf.printf
    "SPADD dispatch-limit stall slots: %d (%.4f%% of cycles) — \
     'negligible because the SPADD interval is very long' (III-B)
"
    r.Exp.stats.Engine.spadd_stall_slots
    (100.0 *. float_of_int r.Exp.stats.Engine.spadd_stall_slots
     /. float_of_int r.Exp.cycles)

(* ---------- Bechamel microbenchmarks ---------- *)

let micro () =
  header "Microbenchmarks (Bechamel): simulator primitives";
  let open Bechamel in
  let gshare = Ooo_common.Branch_pred.gshare () in
  let tage = Ooo_common.Branch_pred.tage () in
  let cache = Ooo_common.Cache.create Ooo_common.Params.l1_32k in
  let pc = ref 0 in
  let tests =
    [ Test.make ~name:"gshare predict+update"
        (Staged.stage (fun () ->
             pc := (!pc + 4) land 0xFFFF;
             let t = gshare.Ooo_common.Branch_pred.predict !pc in
             gshare.Ooo_common.Branch_pred.update !pc (not t)));
      Test.make ~name:"tage predict+update"
        (Staged.stage (fun () ->
             pc := (!pc + 4) land 0xFFFF;
             let t = tage.Ooo_common.Branch_pred.predict !pc in
             tage.Ooo_common.Branch_pred.update !pc (not t)));
      Test.make ~name:"L1 cache touch"
        (Staged.stage (fun () ->
             pc := (!pc + 64) land 0xFFFFF;
             ignore (Ooo_common.Cache.touch cache !pc)));
      Test.make ~name:"straight encode+decode"
        (Staged.stage (fun () ->
             let w =
               Straight_isa.Encoding.encode
                 (Straight_isa.Isa.Alu (Straight_isa.Isa.Add, 1, 2))
             in
             ignore (Straight_isa.Encoding.decode w)));
      Test.make ~name:"riscv encode+decode"
        (Staged.stage (fun () ->
             let w =
               Riscv_isa.Encoding.encode
                 (Riscv_isa.Isa.Alu (Riscv_isa.Isa.Add, 1, 2, 3))
             in
             ignore (Riscv_isa.Encoding.decode w))) ]
  in
  List.iter
    (fun test ->
       let instances = Toolkit.Instance.[ monotonic_clock ] in
       let cfg =
         Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
       in
       let raw = Benchmark.all cfg instances test in
       let ols =
         Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
       in
       let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
       Hashtbl.iter
         (fun name result ->
            match Analyze.OLS.estimates result with
            | Some [ est ] -> Printf.printf "%-28s %10.1f ns/op\n%!" name est
            | _ -> Printf.printf "%-28s (no estimate)\n%!" name)
         results)
    tests

(* ---------- perf suite (--json): host throughput + CPI stack ---------- *)

(* Times the cycle engine alone: compilation and the functional ISS run
   happen once per configuration outside the timed region, and each
   repetition re-creates only the lockstep checker (part of the default
   simulation loop, so it stays inside the measurement).  Throughput is
   reported as simulated kilocycles per host second. *)
let json_suite out =
  header (Printf.sprintf "perf suite --> %s" out);
  let reps = if !quick then 7 else 9 in
  let combos =
    [ (Models.ss_2way, Exp.Riscv);
      (Models.ss_4way, Exp.Riscv);
      (Models.straight_2way, Exp.Straight_re);
      (Models.straight_4way, Exp.Straight_re) ]
  in
  let workloads = [ dhrystone (); coremark () ] in
  let median xs =
    let a = Array.of_list xs in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let time_engine (model : Ooo_common.Params.t) target (w : Workloads.t) =
    let run_reps mk_checker trace decode_static =
      (* one untimed warmup settles the heap before measuring *)
      ignore (Engine.run model ~trace ~decode_static ~checker:(mk_checker ()) ());
      List.init reps (fun _ ->
          let checker = mk_checker () in
          let t0 = Unix.gettimeofday () in
          let s = Engine.run model ~trace ~decode_static ~checker () in
          let dt = Unix.gettimeofday () -. t0 in
          (float_of_int s.Engine.cycles /. dt /. 1000., s))
    in
    match target with
    | Exp.Riscv ->
      let image = Straight_core.Compile.to_riscv w.Workloads.source in
      let r =
        Iss.Riscv_iss.run
          ~config:{ Iss.Riscv_iss.collect_trace = true;
                    max_insns = 50_000_000 }
          image
      in
      run_reps
        (fun () ->
           Ooo_common.Checker.create ~rename:model.Ooo_common.Params.rename
             ~trace:r.Iss.Trace.trace ())
        r.Iss.Trace.trace
        (Ooo_riscv.Pipeline.static_uop image)
    | Exp.Straight_re | Exp.Straight_raw ->
      let level =
        match target with
        | Exp.Straight_raw -> Straight_cc.Codegen.Raw
        | _ -> Straight_cc.Codegen.Re_plus
      in
      let image, _ =
        Straight_core.Compile.to_straight ~level w.Workloads.source
      in
      let r =
        Iss.Straight_iss.run
          ~config:{ Iss.Straight_iss.collect_trace = true;
                    collect_dist = false; max_insns = 50_000_000 }
          image
      in
      run_reps
        (fun () ->
           Ooo_common.Checker.create
             ~max_dist:Ooo_common.Params.straight_max_dist
             ~rename:model.Ooo_common.Params.rename ~trace:r.Iss.Trace.trace ())
        r.Iss.Trace.trace
        (Ooo_straight.Pipeline.static_uop image)
  in
  let entries =
    List.concat_map
      (fun (model, target) ->
         List.map
           (fun (w : Workloads.t) ->
              let results = time_engine model target w in
              let khz = List.map fst results in
              let s = snd (List.hd results) in
              let med = median khz in
              (* best-of-N: the noise-robust statistic the gate compares *)
              let best = List.fold_left Float.max 0.0 khz in
              Printf.printf "%-14s %-14s %-10s %9d cyc  ipc %5.3f  %8.1f kc/s\n%!"
                model.Ooo_common.Params.name (Exp.target_label target)
                w.Workloads.name s.Engine.cycles s.Engine.ipc med;
              Stats.Json.Obj
                [ ("model", Stats.Json.Str model.Ooo_common.Params.name);
                  ("target", Stats.Json.Str (Exp.target_label target));
                  ("workload", Stats.Json.Str w.Workloads.name);
                  ("cycles", Stats.Json.Int s.Engine.cycles);
                  ("instructions", Stats.Json.Int s.Engine.committed);
                  ("ipc", Stats.Json.Float s.Engine.ipc);
                  ("khz_reps",
                   Stats.Json.List (List.map (fun k -> Stats.Json.Float k) khz));
                  ("khz_median", Stats.Json.Float med);
                  ("khz_best", Stats.Json.Float best);
                  ("cpi_stack", Stats.cpi_to_json s.Engine.cpi_stack) ])
           workloads)
      combos
  in
  let label =
    let base = Filename.remove_extension (Filename.basename out) in
    if String.length base > 6 && String.sub base 0 6 = "BENCH_" then
      String.sub base 6 (String.length base - 6)
    else base
  in
  let json =
    Stats.Json.Obj
      [ ("schema", Stats.Json.Str "straight-bench/1");
        ("label", Stats.Json.Str label);
        ("quick", Stats.Json.Bool !quick);
        ("reps", Stats.Json.Int reps);
        ("entries", Stats.Json.List entries) ]
  in
  Out_channel.with_open_text out (fun oc ->
      output_string oc (Stats.Json.to_string json));
  Printf.printf "wrote %s (%d entries)\n%!" out (List.length entries)

(* ---------- driver ---------- *)

let all () =
  table1 (); fig10 (); fig11 (); fig12 (); fig13 (); fig14 (); fig15 ();
  fig16 (); sweep_maxdist (); fig17 (); ablation (); rob_sweep ()

let () =
  let cmds =
    [ ("table1", table1); ("fig10", fig10); ("fig11", fig11); ("fig12", fig12);
      ("fig13", fig13); ("fig14", fig14); ("fig15", fig15); ("fig16", fig16);
      ("fig17", fig17); ("sweep_maxdist", sweep_maxdist);
      ("ablation", ablation); ("rob_sweep", rob_sweep); ("micro", micro);
      ("all", all) ]
  in
  let json_out = ref "" in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--quick" :: rest -> quick := true; parse acc rest
    | "--json" :: out :: rest -> json_out := out; parse acc rest
    | [ "--json" ] ->
      prerr_endline "--json needs an output path"; exit 2
    | a :: rest -> parse (a :: acc) rest
  in
  let names = parse [] (Array.to_list Sys.argv |> List.tl) in
  (match names with
   | [] -> if !json_out = "" then all ()
   | names ->
     List.iter
       (fun name ->
          match List.assoc_opt name cmds with
          | Some f -> f ()
          | None ->
            Printf.eprintf "unknown bench %S; available: %s\n" name
              (String.concat ", " (List.map fst cmds));
            exit 2)
       names);
  if !json_out <> "" then json_suite !json_out
