(* Power report: compare the activity-based power of the two 2-way cores
   over several workloads (the paper's Fig. 17 methodology).

     dune exec examples/power_report.exe *)

module Params = Ooo_common.Params
module Exp = Straight_core.Experiment
module Engine = Ooo_common.Engine

let () =
  Printf.printf "%-14s %-10s %8s %8s %8s %10s\n" "workload" "core" "rename"
    "regfile" "other" "cycles";
  List.iter
    (fun (w : Workloads.t) ->
       let ss = Exp.run ~model:Params.ss_2way ~target:Exp.Riscv w in
       let st = Exp.run ~model:Params.straight_2way ~target:Exp.Straight_re w in
       let show name (r : Exp.result) =
         let rep = Power.analyze ~cycles:r.Exp.cycles r.Exp.stats.Engine.activity in
         Printf.printf "%-14s %-10s %8.2f %8.2f %8.2f %10d\n%!"
           w.Workloads.name name rep.Power.rename rep.Power.regfile
           rep.Power.other r.Exp.cycles
       in
       show "SS" ss;
       show "STRAIGHT" st)
    [ Workloads.sort ~n:32 ();
      Workloads.fib ~n:15 ();
      Workloads.coremark ~iterations:1 () ];
  Printf.printf
    "\n(energy units are arbitrary; the rename column is the paper's point:\n\
    \ STRAIGHT removes the RMT/free-list power and replaces it with narrow\n\
    \ RP adders — Fig. 17.)\n"
