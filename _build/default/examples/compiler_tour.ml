(* Compiler tour: how the same function looks as SSA IR, as naive STRAIGHT
   code (RAW), after redundancy elimination (RE+), and as RV32IM — the
   pipeline of the paper's Fig. 7, with Fig. 10's iota example.

     dune exec examples/compiler_tour.exe *)

let source = (Workloads.iota ~n:16 ()).Workloads.source

let banner title =
  Printf.printf "\n---------- %s ----------\n" title

let () =
  banner "MiniC source";
  print_string source;
  banner "SSA IR (the LLVM-IR stage of Fig. 7)";
  let prog = Straight_core.Compile.frontend source in
  List.iter
    (fun f ->
       if f.Ssa_ir.Ir.name = "iota" then
         print_string (Ssa_ir.Ir.func_to_string f))
    prog.Ssa_ir.Ir.funcs;
  banner "STRAIGHT, RAW (distance fixing with RMOV/NOP padding)";
  print_string
    (Straight_core.Compile.straight_asm ~max_dist:1023
       ~level:Straight_cc.Codegen.Raw source);
  banner "STRAIGHT, RE+ (producers sunk into frame slots, stack relays)";
  print_string
    (Straight_core.Compile.straight_asm ~max_dist:1023
       ~level:Straight_cc.Codegen.Re_plus source);
  banner "RV32IM (the superscalar baseline)";
  print_string (Straight_core.Compile.riscv_asm source);
  banner "dynamic instruction counts";
  let retired level =
    let image, _ = Straight_core.Compile.to_straight ~max_dist:1023 ~level source in
    (Iss.Straight_iss.run image).Iss.Trace.retired
  in
  let riscv_retired =
    let image = Straight_core.Compile.to_riscv source in
    (Iss.Riscv_iss.run image).Iss.Trace.retired
  in
  Printf.printf "RV32IM: %d, STRAIGHT RAW: %d, STRAIGHT RE+: %d\n"
    riscv_retired
    (retired Straight_cc.Codegen.Raw)
    (retired Straight_cc.Codegen.Re_plus)
