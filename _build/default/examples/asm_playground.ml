(* Assembly playground: hand-written STRAIGHT programs straight out of the
   paper, assembled, disassembled, and executed — the lowest-level entry
   point into the library.

     dune exec examples/asm_playground.exe *)

(* The paper's Fig. 1(a): "this code calculates a Fibonacci series as long
   as the ADD [1] [2] instruction is repeated". *)
let fig1a = {|
.text
main:
  ADDi [0] 1        # F(1)
  ADDi [0] 1        # F(2)
  ADD [1] [2]       # F(3) = F(2) + F(1)
  ADD [1] [2]
  ADD [1] [2]
  ADD [1] [2]
  ADD [1] [2]
  ADD [1] [2]
  ADD [1] [2]       # F(9)
  LUI 0xFFFF0       # console base
  ST [2] [1] 0      # putint F(9)
  HALT
|}

(* The calling convention of Fig. 5/6: argument producers immediately
   before JAL; the callee names them by fixed distances; the return value
   sits immediately before JR. *)
let calling_convention = {|
.text
main:
  ADDi [0] 30       # producer of arg0
  ADDi [0] 12       # producer of arg1 (immediately before JAL)
  JAL callee
  LUI 0xFFFF0
  ST [3] [1] 0      # retval is at distance 2 right after return
  HALT
callee:
  ADD [3] [2]       # arg0 + arg1: JAL at [1], arg1 at [2], arg0 at [3]
  JR [2]            # return through the JAL's link value
|}

(* A loop with explicit distance fixing (Figs. 8/9): both entries of the
   loop header present (pad, i, sum) at identical distances. *)
let loop_with_frames = {|
.text
main:
  ADDi [0] 0        # sum
  ADDi [0] 1        # i
  NOP               # aligns the fall-through with the back edge's J
loop:
  ADD [3] [2]       # sum' = sum + i
  ADDi [3] 1        # i'   = i + 1
  SLTi [1] 101      # i' <= 100
  BEZ [1] done
  RMOV [4]          # frame slot: sum'
  RMOV [4]          # frame slot: i'
  J loop
done:
  LUI 0xFFFF0
  ST [5] [1] 0      # print sum' = 5050
  HALT
|}

let show title src =
  Printf.printf "\n===== %s =====\n" title;
  let image = Assembler.Asm.Straight.assemble_source src in
  print_string (Assembler.Asm.disassemble_straight image);
  let r = Iss.Straight_iss.run image in
  Printf.printf "--- output ---\n%s--- %d instructions retired ---\n"
    r.Iss.Trace.output r.Iss.Trace.retired

let () =
  show "Fig. 1(a): Fibonacci by ADD [1] [2]" fig1a;
  show "Figs. 5/6: calling convention" calling_convention;
  show "Figs. 8/9: loop with distance fixing" loop_with_frames
