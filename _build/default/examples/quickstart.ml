(* Quickstart: compile a MiniC program for STRAIGHT, inspect the generated
   distance-operand assembly, and run it end to end.

     dune exec examples/quickstart.exe *)

let source = {|
int fib(int n) {
  int a = 0;
  int b = 1;
  for (int i = 0; i < n; i++) {
    int t = a + b;
    a = b;
    b = t;
  }
  return a;
}

int main() {
  for (int n = 0; n < 10; n++) putint(fib(n));
  return 0;
}
|}

let () =
  print_endline "=== STRAIGHT assembly (RE+, max distance 31) ===";
  print_string
    (Straight_core.Compile.straight_asm ~max_dist:31
       ~level:Straight_cc.Codegen.Re_plus source);
  (* compile to a loadable image and execute on the functional simulator *)
  let image, stats =
    Straight_core.Compile.to_straight ~max_dist:31
      ~level:Straight_cc.Codegen.Re_plus source
  in
  let run = Iss.Straight_iss.run image in
  Printf.printf "=== program output ===\n%s" run.Iss.Trace.output;
  Printf.printf "=== statistics ===\n";
  Printf.printf "static instructions : %d (%d RMOV, %d NOP)\n"
    stats.Straight_cc.Codegen.total stats.Straight_cc.Codegen.rmov
    stats.Straight_cc.Codegen.nop;
  Printf.printf "retired instructions: %d\n" run.Iss.Trace.retired;
  (* and time it on the 2-way STRAIGHT core of Table I *)
  let r = Ooo_straight.Pipeline.run Straight_core.Models.straight_2way image in
  Printf.printf "STRAIGHT-2way cycles: %d (IPC %.2f)\n"
    r.Ooo_straight.Pipeline.stats.Ooo_common.Engine.cycles
    r.Ooo_straight.Pipeline.stats.Ooo_common.Engine.ipc
