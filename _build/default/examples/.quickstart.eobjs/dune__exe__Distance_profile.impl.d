examples/distance_profile.ml: Array Iss List Printf Straight_cc Straight_core String Workloads
