examples/quickstart.ml: Iss Ooo_common Ooo_straight Printf Straight_cc Straight_core
