examples/compiler_tour.ml: Iss List Printf Ssa_ir Straight_cc Straight_core Workloads
