examples/quickstart.mli:
