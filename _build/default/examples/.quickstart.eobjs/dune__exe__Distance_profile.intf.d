examples/distance_profile.mli:
