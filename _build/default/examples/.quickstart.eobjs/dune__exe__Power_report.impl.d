examples/power_report.ml: List Ooo_common Power Printf Straight_core Workloads
