examples/asm_playground.ml: Assembler Iss Printf
