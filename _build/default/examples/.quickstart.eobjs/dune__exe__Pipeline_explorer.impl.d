examples/pipeline_explorer.ml: List Ooo_common Ooo_straight Printf Straight_cc Straight_core Workloads
