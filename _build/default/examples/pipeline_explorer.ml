(* Pipeline explorer: sweep microarchitectural parameters of the STRAIGHT
   core and watch the effect on cycles/IPC — e.g. how much of the paper's
   gain comes from the shorter front end vs. the cheap recovery.

     dune exec examples/pipeline_explorer.exe *)

module Params = Ooo_common.Params
module Engine = Ooo_common.Engine

let workload = Workloads.coremark ~iterations:1 ()

let compile () =
  let image, _ =
    Straight_core.Compile.to_straight ~max_dist:Params.straight_max_dist
      ~level:Straight_cc.Codegen.Re_plus workload.Workloads.source
  in
  image

let () =
  let image = compile () in
  Printf.printf "%-34s %10s %8s %8s %8s\n" "configuration" "cycles" "IPC"
    "bmisp" "L1D-miss";
  let show (p : Params.t) =
    let r = Ooo_straight.Pipeline.run p image in
    let s = r.Ooo_straight.Pipeline.stats in
    Printf.printf "%-34s %10d %8.2f %8d %8d\n%!" p.Params.name
      s.Engine.cycles s.Engine.ipc s.Engine.branch_mispredicts
      s.Engine.l1d_misses
  in
  show Params.straight_2way;
  show Params.straight_4way;
  (* front-end depth sweep *)
  List.iter
    (fun depth ->
       show { Params.straight_4way with
              Params.frontend_depth = depth;
              name = Printf.sprintf "STRAIGHT-4way fe=%d" depth })
    [ 4; 8; 10 ];
  (* scheduler size sweep *)
  List.iter
    (fun entries ->
       show { Params.straight_4way with
              Params.scheduler_entries = entries;
              name = Printf.sprintf "STRAIGHT-4way IQ=%d" entries })
    [ 16; 48; 192 ];
  (* ROB sweep: STRAIGHT's window can grow without walk penalty *)
  List.iter
    (fun rob ->
       show { Params.straight_4way with
              Params.rob_entries = rob;
              name = Printf.sprintf "STRAIGHT-4way ROB=%d" rob })
    [ 64; 448 ];
  (* TAGE predictor *)
  show (Params.with_tage Params.straight_4way)
