(* Distance profile: measure the source-operand distance distribution of a
   program (the paper's Fig. 16) and check how tight an operand field the
   code would actually need.

     dune exec examples/distance_profile.exe *)

let () =
  List.iter
    (fun (w : Workloads.t) ->
       let image, _ =
         Straight_core.Compile.to_straight ~max_dist:1023
           ~level:Straight_cc.Codegen.Re_plus w.Workloads.source
       in
       let r =
         Iss.Straight_iss.run
           ~config:{ Iss.Straight_iss.collect_trace = false;
                     collect_dist = true; max_insns = 50_000_000 }
           image
       in
       let hist = r.Iss.Trace.dist_histogram in
       let total = Array.fold_left ( + ) 0 hist in
       Printf.printf "\n=== %s: %d operands ===\n" w.Workloads.name total;
       (* textual histogram of the first 32 distances *)
       let maxv = Array.fold_left max 1 hist in
       for d = 1 to 32 do
         let n = hist.(d) in
         let bar = String.make (60 * n / maxv) '#' in
         if n > 0 then Printf.printf "%4d %8d %s\n" d n bar
       done;
       let cumulative = ref 0 in
       let reported = ref [ 1; 2; 4; 8; 16; 32 ] in
       for d = 0 to Array.length hist - 1 do
         cumulative := !cumulative + hist.(d);
         match !reported with
         | r :: rest when d = r ->
           Printf.printf "<= %-4d : %5.1f%%\n" d
             (100.0 *. float_of_int !cumulative /. float_of_int total);
           reported := rest
         | _ -> ()
       done)
    [ Workloads.coremark ~iterations:1 ();
      Workloads.dhrystone ~iterations:20 ();
      Workloads.sort ~n:32 () ]
