(** The STRAIGHT instruction set (Irie et al., MICRO 2018, Section III-A).

    STRAIGHT instructions name their source operands by {e distance}: the
    operand [[k]] denotes the result of the [k]-th previous instruction in
    the dynamic (control-flow) order.  Each instruction implicitly occupies
    exactly one destination register identified by its fetch order, so no
    destination field exists; registers are written once and expire after
    [max_dist] younger instructions have executed.  The stack pointer is
    the only overwritable register and is manipulated exclusively by
    [Spadd]. *)

type dist = int
(** A source-operand distance.  Valid range: [0, max_dist]; distance [0]
    reads the hard-wired zero register. *)

val max_dist : int
(** The farthest referable producer, [2{^10} - 1 = 1023]: a source field
    spans 10 bits and [[0]] is the zero register. *)

(** Register-register ALU operations (RV32IM-equivalent semantics). *)
type alu_op =
  | Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu
  | Mul | Mulh | Div | Divu | Rem | Remu

(** Register-immediate ALU operations. *)
type alui_op =
  | Addi | Andi | Ori | Xori | Slli | Srli | Srai | Slti | Sltui

(** Instructions, parameterized by the representation of code targets:
    ['lab = string] for symbolic assembly, ['lab = int] once the assembler
    has resolved every target to a PC-relative word offset. *)
type 'lab t =
  | Alu of alu_op * dist * dist
  | Alui of alui_op * dist * int32
  | Lui of int32                      (** dest := imm20 lsl 12 *)
  | Rmov of dist                      (** dest := [[d]] (move padding) *)
  | Nop
  | Ld of dist * int                  (** dest := mem32[[[base]] + imm16] *)
  | St of dist * dist * int
      (** [St (value, base, offset)]: mem32[[[base]] + offset] := [[value]];
          the destination receives the stored value (Section III-A). *)
  | Bez of dist * 'lab                (** branch if [[d]] = 0 *)
  | Bnz of dist * 'lab                (** branch if [[d]] <> 0 *)
  | J of 'lab
  | Jal of 'lab                       (** dest := PC + 4; jump (call) *)
  | Jr of dist                        (** jump to [[d]] (function return) *)
  | Spadd of int                      (** SP := SP + imm; dest := new SP *)
  | Halt

type resolved = int t
(** An instruction whose control-flow targets are PC-relative word
    offsets. *)

(** Coarse classification used by the assembler, the simulators, and the
    instruction-mix statistics (Fig. 15 buckets RMOV and NOP apart). *)
type kind =
  | Kalu | Kmul | Kdiv | Kload | Kstore | Kbranch | Kjump | Krmov | Knop
  | Khalt

val kind : 'lab t -> kind

val sources : 'lab t -> dist list
(** Source distances of an instruction, in operand order (distance 0
    entries included). *)

val map_label : ('a -> 'b) -> 'a t -> 'b t
(** Rewrite the control-flow targets of an instruction. *)

val alu_op_name : alu_op -> string
val alui_op_name : alui_op -> string

val eval_alu : alu_op -> int32 -> int32 -> int32
(** RV32-style evaluation (shared by the functional simulator and constant
    folding): shifts use the low 5 bits, division by zero yields [-1]
    ([Div])/the dividend ([Rem]), [min_int / -1 = min_int]. *)

val alu_of_alui : alui_op -> alu_op
(** The register-register operation computing the same function. *)

val pp_operand : Format.formatter -> dist -> unit
val pp : (Format.formatter -> 'lab -> unit) -> Format.formatter -> 'lab t -> unit
val pp_sym : Format.formatter -> string t -> unit
val pp_resolved : Format.formatter -> resolved -> unit
val to_string_sym : string t -> string
val to_string_resolved : resolved -> string

val insn_bytes : int
(** Every STRAIGHT instruction is one 32-bit word. *)
