(* Parser for one STRAIGHT assembly statement, already split into tokens.
   Syntax mirrors the paper's listings: `ADD [1] [2]`, `ADDi [0] 42`,
   `LD [3] 8`, `ST [4] [7] 0`, `BEZ [1] label`, `JAL func`, `SPADD 16`. *)

open Isa

exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

let parse_dist tok =
  let n = String.length tok in
  if n >= 3 && tok.[0] = '[' && tok.[n - 1] = ']' then
    match int_of_string_opt (String.sub tok 1 (n - 2)) with
    | Some d when d >= 0 && d <= max_dist -> d
    | Some d -> fail "distance %d out of range" d
    | None -> fail "malformed distance %S" tok
  else fail "expected distance operand, got %S" tok

let parse_imm tok =
  match int_of_string_opt tok with
  | Some i -> i
  | None -> fail "expected immediate, got %S" tok

let parse_imm32 tok = Int32.of_int (parse_imm tok)

let alu_ops =
  [ ("ADD", Add); ("SUB", Sub); ("AND", And); ("OR", Or); ("XOR", Xor);
    ("SLL", Sll); ("SRL", Srl); ("SRA", Sra); ("SLT", Slt); ("SLTU", Sltu);
    ("MUL", Mul); ("MULH", Mulh); ("DIV", Div); ("DIVU", Divu);
    ("REM", Rem); ("REMU", Remu) ]

let alui_ops =
  [ ("ADDI", Addi); ("ANDI", Andi); ("ORI", Ori); ("XORI", Xori);
    ("SLLI", Slli); ("SRLI", Srli); ("SRAI", Srai); ("SLTI", Slti);
    ("SLTUI", Sltui) ]

(* [parse_insn tokens] parses a mnemonic plus operand tokens into a symbolic
   instruction.  Mnemonics are case-insensitive (the paper mixes `ADDi` and
   `ADDI` styles).  Raises [Parse_error] on malformed input. *)
let parse_insn (tokens : string list) : string t =
  match tokens with
  | [] -> fail "empty instruction"
  | mnemonic :: operands ->
    let m = String.uppercase_ascii mnemonic in
    (match List.assoc_opt m alu_ops, List.assoc_opt m alui_ops, operands with
     | Some op, _, [ a; b ] -> Alu (op, parse_dist a, parse_dist b)
     | Some _, _, _ -> fail "%s expects two register operands" m
     | _, Some op, [ a; i ] -> Alui (op, parse_dist a, parse_imm32 i)
     | _, Some _, _ -> fail "%s expects a register and an immediate" m
     | None, None, _ ->
       (match m, operands with
        | "LUI", [ i ] -> Lui (parse_imm32 i)
        | "RMOV", [ a ] -> Rmov (parse_dist a)
        | "NOP", [] -> Nop
        | "LD", [ b; o ] -> Ld (parse_dist b, parse_imm o)
        | "ST", [ v; b; o ] -> St (parse_dist v, parse_dist b, parse_imm o)
        | "ST", [ v; b ] -> St (parse_dist v, parse_dist b, 0)
        | "BEZ", [ a; l ] -> Bez (parse_dist a, l)
        | "BNZ", [ a; l ] -> Bnz (parse_dist a, l)
        | "J", [ l ] -> J l
        | "JAL", [ l ] -> Jal l
        | "JR", [ a ] -> Jr (parse_dist a)
        | "SPADD", [ i ] -> Spadd (parse_imm i)
        | "HALT", [] -> Halt
        | _ -> fail "unknown or malformed instruction %S" (String.concat " " tokens)))
