lib/straight_isa/parser.mli: Isa
