lib/straight_isa/isa.ml: Format Int32 Int64
