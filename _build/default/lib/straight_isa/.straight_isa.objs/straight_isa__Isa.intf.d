lib/straight_isa/isa.mli: Format
