lib/straight_isa/encoding.mli: Isa
