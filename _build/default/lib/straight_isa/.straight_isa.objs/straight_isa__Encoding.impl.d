lib/straight_isa/encoding.ml: Format Hashtbl Int32 Isa List
