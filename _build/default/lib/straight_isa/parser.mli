(** Parser for one STRAIGHT assembly statement.  Syntax mirrors the
    paper's listings: [ADD [1] [2]], [ADDi [0] 42], [LD [3] 8],
    [ST [4] [7] 0], [BEZ [1] label], [JAL func], [SPADD 16]. *)

exception Parse_error of string

val parse_insn : string list -> string Isa.t
(** [parse_insn tokens] parses a mnemonic plus operand tokens (as produced
    by the assembler's tokenizer) into a symbolic instruction.  Mnemonics
    are case-insensitive.
    @raise Parse_error on malformed input. *)
