(** Binary bit-field formats for STRAIGHT (our concrete realization of the
    paper's Fig. 1(b)).  Every instruction is one 32-bit word with a 6-bit
    opcode and 10-bit source-distance fields; because no destination field
    exists, immediates get the remaining bits (16-bit for ALU/load/branch,
    20-bit for LUI, 26-bit for jumps, 6-bit word-granular for stores). *)

exception Encode_error of string

val encode : Isa.resolved -> int32
(** [encode insn] packs a resolved instruction into its 32-bit word.
    @raise Encode_error when a field does not fit (distance out of
    [0, 1023], immediate out of range, misaligned store offset). *)

val decode : int32 -> Isa.resolved option
(** [decode w] unpacks a word; [None] on an illegal opcode.  Inverse of
    {!encode} on its range. *)

val st_max_offset : int
(** Largest byte offset representable in the ST format (word granular). *)

val st_min_offset : int
