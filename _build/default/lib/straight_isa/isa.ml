(* STRAIGHT instruction set (Irie et al., MICRO 2018, Section III-A).

   Source operands are *distances*: "[k]" denotes the result value of the
   k-th previous instruction in the dynamic (control-flow) order.  Distance 0
   is the hard-wired zero register.  Every instruction occupies exactly one
   destination register (identified implicitly by its fetch order), so no
   destination field exists in the format.  The only overwritable
   architectural register is SP, manipulated exclusively by SPADD. *)

type dist = int
(** A source-operand distance. Valid range: [0, max_dist]; 0 reads zero. *)

let max_dist = 1023
(* A source field spans 10 bits; [0] is the zero register, so the farthest
   referable producer is 2^10 - 1 = 1023 instructions back (Section III-A). *)

type alu_op =
  | Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu
  | Mul | Mulh | Div | Divu | Rem | Remu

type alui_op =
  | Addi | Andi | Ori | Xori | Slli | Srli | Srai | Slti | Sltui

(* Instructions are parameterized by the representation of code targets:
   ['lab = string] for symbolic assembly, ['lab = int] once the assembler
   has resolved every target to a word-granular PC-relative offset. *)
type 'lab t =
  | Alu of alu_op * dist * dist
  | Alui of alui_op * dist * int32
  | Lui of int32                      (* dest := imm20 lsl 12 *)
  | Rmov of dist                      (* dest := [d] (register move padding) *)
  | Nop
  | Ld of dist * int                  (* dest := mem32[[base] + imm16] *)
  | St of dist * dist * int           (* mem32[[base] + 4*imm6] := [value]; dest := [value] *)
  | Bez of dist * 'lab                (* branch if [d] = 0 *)
  | Bnz of dist * 'lab                (* branch if [d] <> 0 *)
  | J of 'lab
  | Jal of 'lab                       (* dest := PC + 4; jump *)
  | Jr of dist                        (* jump to [d] (function return) *)
  | Spadd of int                      (* SP := SP + imm; dest := new SP *)
  | Halt

type resolved = int t
(** Instruction whose control-flow targets are PC-relative word offsets. *)

(* Classification used by the assembler, simulators and statistics
   (instruction-mix figure 15 buckets RMOV and NOP separately). *)
type kind = Kalu | Kmul | Kdiv | Kload | Kstore | Kbranch | Kjump | Krmov | Knop | Khalt

let kind = function
  | Alu ((Mul | Mulh), _, _) -> Kmul
  | Alu ((Div | Divu | Rem | Remu), _, _) -> Kdiv
  | Alu (_, _, _) | Alui (_, _, _) | Lui _ | Spadd _ -> Kalu
  | Rmov _ -> Krmov
  | Nop -> Knop
  | Ld (_, _) -> Kload
  | St (_, _, _) -> Kstore
  | Bez (_, _) | Bnz (_, _) -> Kbranch
  | J _ | Jal _ | Jr _ -> Kjump
  | Halt -> Khalt

(* Source distances of an instruction, in operand order. *)
let sources = function
  | Alu (_, a, b) -> [ a; b ]
  | Alui (_, a, _) -> [ a ]
  | Lui _ | Nop | J _ | Jal _ | Spadd _ | Halt -> []
  | Rmov a -> [ a ]
  | Ld (b, _) -> [ b ]
  | St (v, b, _) -> [ v; b ]
  | Bez (a, _) | Bnz (a, _) -> [ a ]
  | Jr a -> [ a ]

let map_label f = function
  | Bez (d, l) -> Bez (d, f l)
  | Bnz (d, l) -> Bnz (d, f l)
  | J l -> J (f l)
  | Jal l -> Jal (f l)
  | Alu (op, a, b) -> Alu (op, a, b)
  | Alui (op, a, i) -> Alui (op, a, i)
  | Lui i -> Lui i
  | Rmov d -> Rmov d
  | Nop -> Nop
  | Ld (b, o) -> Ld (b, o)
  | St (v, b, o) -> St (v, b, o)
  | Jr d -> Jr d
  | Spadd i -> Spadd i
  | Halt -> Halt

let alu_op_name = function
  | Add -> "ADD" | Sub -> "SUB" | And -> "AND" | Or -> "OR" | Xor -> "XOR"
  | Sll -> "SLL" | Srl -> "SRL" | Sra -> "SRA" | Slt -> "SLT" | Sltu -> "SLTU"
  | Mul -> "MUL" | Mulh -> "MULH" | Div -> "DIV" | Divu -> "DIVU"
  | Rem -> "REM" | Remu -> "REMU"

let alui_op_name = function
  | Addi -> "ADDi" | Andi -> "ANDi" | Ori -> "ORi" | Xori -> "XORi"
  | Slli -> "SLLi" | Srli -> "SRLi" | Srai -> "SRAi" | Slti -> "SLTi"
  | Sltui -> "SLTUi"

(* Evaluate a register-register ALU operation with RV32-style semantics
   (shared by the functional simulator and constant folding). *)
let eval_alu op (a : int32) (b : int32) : int32 =
  let sh = Int32.to_int (Int32.logand b 31l) in
  match op with
  | Add -> Int32.add a b
  | Sub -> Int32.sub a b
  | And -> Int32.logand a b
  | Or -> Int32.logor a b
  | Xor -> Int32.logxor a b
  | Sll -> Int32.shift_left a sh
  | Srl -> Int32.shift_right_logical a sh
  | Sra -> Int32.shift_right a sh
  | Slt -> if Int32.compare a b < 0 then 1l else 0l
  | Sltu ->
    let ua = Int32.logxor a Int32.min_int and ub = Int32.logxor b Int32.min_int in
    if Int32.compare ua ub < 0 then 1l else 0l
  | Mul -> Int32.mul a b
  | Mulh ->
    let p = Int64.mul (Int64.of_int32 a) (Int64.of_int32 b) in
    Int64.to_int32 (Int64.shift_right p 32)
  | Div ->
    if b = 0l then -1l
    else if a = Int32.min_int && b = -1l then Int32.min_int
    else Int32.div a b
  | Divu ->
    if b = 0l then -1l else Int64.to_int32 (Int64.div (Int64.logand (Int64.of_int32 a) 0xFFFFFFFFL) (Int64.logand (Int64.of_int32 b) 0xFFFFFFFFL))
  | Rem ->
    if b = 0l then a
    else if a = Int32.min_int && b = -1l then 0l
    else Int32.rem a b
  | Remu ->
    if b = 0l then a else Int64.to_int32 (Int64.rem (Int64.logand (Int64.of_int32 a) 0xFFFFFFFFL) (Int64.logand (Int64.of_int32 b) 0xFFFFFFFFL))

let alu_of_alui = function
  | Addi -> Add | Andi -> And | Ori -> Or | Xori -> Xor
  | Slli -> Sll | Srli -> Srl | Srai -> Sra | Slti -> Slt | Sltui -> Sltu

let pp_operand fmt (d : dist) = Format.fprintf fmt "[%d]" d

let pp pp_lab fmt = function
  | Alu (op, a, b) ->
    Format.fprintf fmt "%s %a %a" (alu_op_name op) pp_operand a pp_operand b
  | Alui (op, a, i) ->
    Format.fprintf fmt "%s %a %ld" (alui_op_name op) pp_operand a i
  | Lui i -> Format.fprintf fmt "LUI %ld" i
  | Rmov a -> Format.fprintf fmt "RMOV %a" pp_operand a
  | Nop -> Format.fprintf fmt "NOP"
  | Ld (b, o) -> Format.fprintf fmt "LD %a %d" pp_operand b o
  | St (v, b, o) -> Format.fprintf fmt "ST %a %a %d" pp_operand v pp_operand b o
  | Bez (a, l) -> Format.fprintf fmt "BEZ %a %a" pp_operand a pp_lab l
  | Bnz (a, l) -> Format.fprintf fmt "BNZ %a %a" pp_operand a pp_lab l
  | J l -> Format.fprintf fmt "J %a" pp_lab l
  | Jal l -> Format.fprintf fmt "JAL %a" pp_lab l
  | Jr a -> Format.fprintf fmt "JR %a" pp_operand a
  | Spadd i -> Format.fprintf fmt "SPADD %d" i
  | Halt -> Format.fprintf fmt "HALT"

let pp_sym fmt i = pp Format.pp_print_string fmt i
let pp_resolved fmt i = pp (fun fmt o -> Format.fprintf fmt "%+d" o) fmt i
let to_string_sym i = Format.asprintf "%a" pp_sym i
let to_string_resolved i = Format.asprintf "%a" pp_resolved i

(* The word-aligned size in bytes of every STRAIGHT instruction. *)
let insn_bytes = 4
