lib/ooo_common/branch_pred.mli: Params
