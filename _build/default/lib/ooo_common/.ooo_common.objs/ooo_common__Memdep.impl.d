lib/ooo_common/memdep.ml: Bytes
