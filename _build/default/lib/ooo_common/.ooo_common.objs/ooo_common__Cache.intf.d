lib/ooo_common/cache.mli: Params
