lib/ooo_common/cache.ml: Array Option Params
