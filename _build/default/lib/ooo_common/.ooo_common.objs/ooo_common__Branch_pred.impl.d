lib/ooo_common/branch_pred.ml: Array Bytes Char Params
