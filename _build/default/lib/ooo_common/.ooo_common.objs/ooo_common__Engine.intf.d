lib/ooo_common/engine.mli: Iss Params
