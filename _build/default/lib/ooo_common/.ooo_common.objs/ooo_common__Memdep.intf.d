lib/ooo_common/memdep.mli: Bytes
