lib/ooo_common/params.mli:
