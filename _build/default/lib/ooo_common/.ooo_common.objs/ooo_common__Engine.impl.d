lib/ooo_common/engine.ml: Array Branch_pred Cache Format Hashtbl Iss List Memdep Option Params Printf Queue String
