lib/ooo_common/params.ml: Printf
