(** Recursive-descent parser for MiniC: C expression precedence,
    statements ([if]/[while]/[do]/[for]/[break]/[continue]/[return]),
    compound assignment and increment sugar, global scalars/arrays with
    initializers, function definitions and prototypes. *)

exception Parse_error of string

val parse : string -> Ast.program
(** [parse src] parses a full translation unit.
    @raise Parse_error (or {!Lexer.Lex_error}) on malformed input. *)
