(** Abstract syntax of MiniC, the C subset the workloads are written in
    (the substitute for the paper's C + clang front end; DESIGN.md
    "Substitutions").  All values are 32-bit [int]s; arrays and pointers
    are 4-byte-element word addresses. *)

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr          (** [>>] is arithmetic, as C on int *)
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor                          (** short-circuit [&&] and [||] *)

type unop = Neg | Not | Bnot            (** [-e], [!e], [~e] *)

type expr =
  | Num of int32
  | Char of char
  | Var of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list
  | Index of expr * expr                (** [base[index]], 4-byte scaled *)
  | Ternary of expr * expr * expr       (** [c ? a : b], short-circuit *)

type lvalue =
  | Lvar of string
  | Lindex of expr * expr

type stmt =
  | Decl of string * decl_init
  | Assign of lvalue * expr
  | If of expr * stmt * stmt option
  | While of expr * stmt
  | Do_while of stmt * expr
  | For of stmt option * expr option * stmt option * stmt
  | Return of expr
  | Break
  | Continue
  | Block of stmt list
  | Expr_stmt of expr

and decl_init =
  | Scalar of expr option               (** [int x;] / [int x = e;] *)
  | Array of int                        (** [int a[n];] *)

type global =
  | Gvar of string * int32              (** [int g = c;] *)
  | Garray of string * int * int32 list (** [int a[n] = {...};] *)

type func = {
  name : string;
  params : string list;
  body : stmt list;
}

type program = {
  globals : global list;
  funcs : func list;
}
