(* AST -> SSA lowering, following Braun et al.'s simple and efficient SSA
   construction: per-block variable definitions, operandless phis in
   not-yet-sealed blocks (loop headers), sealing once all predecessors are
   known, and trivial-phi elimination afterwards. *)

open Ast
module Ir = Ssa_ir.Ir

exception Lower_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Lower_error s)) fmt

type binding =
  | Bscalar of int                 (* SSA variable key *)
  | Blocal_array of int            (* frame byte offset *)
  | Bglobal_scalar of string
  | Bglobal_array of string

type loop_targets = { break_to : Ir.block_id; continue_to : Ir.block_id }

type env = {
  func : Ir.func;
  blocks : (Ir.block_id, Ir.block) Hashtbl.t;
  mutable next_bid : int;
  mutable cur : Ir.block;
  mutable terminated : bool;
  (* Braun state *)
  defs : (int * Ir.block_id, Ir.operand) Hashtbl.t;   (* (var, block) -> def *)
  sealed : (Ir.block_id, unit) Hashtbl.t;
  preds : (Ir.block_id, Ir.block_id list) Hashtbl.t;
  incomplete : (Ir.block_id, (int * Ir.value) list) Hashtbl.t;
  (* scoping *)
  mutable scopes : (string, binding) Hashtbl.t list;
  mutable next_var : int;
  mutable loops : loop_targets list;
  globals : (string, binding) Hashtbl.t;
  known_funcs : (string, int) Hashtbl.t;               (* name -> arity *)
}

let new_block env =
  let b = { Ir.bid = env.next_bid; insts = []; term = Ir.Ret (Ir.Const 0l) } in
  env.next_bid <- env.next_bid + 1;
  Hashtbl.replace env.blocks b.Ir.bid b;
  Hashtbl.replace env.preds b.Ir.bid [];
  env.func.Ir.blocks <- env.func.Ir.blocks @ [ b ];
  b

let add_pred env ~target ~pred =
  let ps = try Hashtbl.find env.preds target with Not_found -> [] in
  Hashtbl.replace env.preds target (pred :: ps)

(* Set the terminator of the current block and record CFG edges. *)
let terminate env term =
  if not env.terminated then begin
    env.cur.Ir.term <- term;
    List.iter
      (fun s -> add_pred env ~target:s ~pred:env.cur.Ir.bid)
      (Ir.successors term);
    env.terminated <- true
  end

let switch_to env b =
  env.cur <- b;
  env.terminated <- false

let emit env inst : Ir.operand =
  if env.terminated then begin
    (* unreachable code after return/break: emit into a fresh dead block so
       the construction stays well-formed; it is dropped later *)
    let b = new_block env in
    Hashtbl.replace env.sealed b.Ir.bid ();
    switch_to env b
  end;
  let v = Ir.fresh_value env.func in
  env.cur.Ir.insts <- env.cur.Ir.insts @ [ (v, inst) ];
  Ir.Val v

(* ---------- Braun SSA construction ---------- *)

let write_variable env var bid op = Hashtbl.replace env.defs (var, bid) op

let new_phi env bid : Ir.value =
  let v = Ir.fresh_value env.func in
  let b = Hashtbl.find env.blocks bid in
  (* phis live at the block head *)
  b.Ir.insts <- (v, Ir.Phi []) :: b.Ir.insts;
  v

let set_phi_args env bid phi args =
  let b = Hashtbl.find env.blocks bid in
  b.Ir.insts <-
    List.map
      (fun (v, inst) -> if v = phi then (v, Ir.Phi args) else (v, inst))
      b.Ir.insts

let rec read_variable env var bid : Ir.operand =
  match Hashtbl.find_opt env.defs (var, bid) with
  | Some op -> op
  | None -> read_recursive env var bid

and read_recursive env var bid : Ir.operand =
  if not (Hashtbl.mem env.sealed bid) then begin
    let phi = new_phi env bid in
    let pending = try Hashtbl.find env.incomplete bid with Not_found -> [] in
    Hashtbl.replace env.incomplete bid ((var, phi) :: pending);
    write_variable env var bid (Ir.Val phi);
    Ir.Val phi
  end
  else
    match Hashtbl.find env.preds bid with
    | [] ->
      (* read of an uninitialized variable in the entry block: C leaves this
         undefined; we define it as 0 to keep both back ends deterministic *)
      Ir.Const 0l
    | [ p ] ->
      let op = read_variable env var p in
      write_variable env var bid op;
      op
    | ps ->
      let phi = new_phi env bid in
      write_variable env var bid (Ir.Val phi);
      let args = List.map (fun p -> (p, read_variable env var p)) ps in
      set_phi_args env bid phi args;
      Ir.Val phi

let seal_block env bid =
  if not (Hashtbl.mem env.sealed bid) then begin
    let pending = try Hashtbl.find env.incomplete bid with Not_found -> [] in
    Hashtbl.replace env.sealed bid ();
    List.iter
      (fun (var, phi) ->
         let ps = Hashtbl.find env.preds bid in
         let args = List.map (fun p -> (p, read_variable env var p)) ps in
         set_phi_args env bid phi args)
      (List.rev pending);
    Hashtbl.remove env.incomplete bid
  end

(* ---------- scoping ---------- *)

let push_scope env = env.scopes <- Hashtbl.create 8 :: env.scopes
let pop_scope env =
  match env.scopes with
  | _ :: rest -> env.scopes <- rest
  | [] -> fail "scope underflow"

let declare env name binding =
  match env.scopes with
  | scope :: _ ->
    if Hashtbl.mem scope name then fail "redeclaration of %s" name;
    Hashtbl.replace scope name binding
  | [] -> fail "no scope"

let lookup env name : binding =
  let rec go = function
    | scope :: rest ->
      (match Hashtbl.find_opt scope name with
       | Some b -> b
       | None -> go rest)
    | [] ->
      (match Hashtbl.find_opt env.globals name with
       | Some b -> b
       | None -> fail "undefined variable %s" name)
  in
  go env.scopes

(* ---------- expression lowering ---------- *)

let binop_ir : Ast.binop -> Ir.binop = function
  | Add -> Ir.Add | Sub -> Ir.Sub | Mul -> Ir.Mul | Div -> Ir.Div
  | Rem -> Ir.Rem | And -> Ir.And | Or -> Ir.Or | Xor -> Ir.Xor
  | Shl -> Ir.Shl | Shr -> Ir.Ashr
  | Eq | Ne | Lt | Le | Gt | Ge | Land | Lor -> assert false

let cmpop_ir : Ast.binop -> Ir.cmpop = function
  | Eq -> Ir.Eq | Ne -> Ir.Ne | Lt -> Ir.Lt | Le -> Ir.Le | Gt -> Ir.Gt
  | Ge -> Ir.Ge
  | _ -> assert false

let mmio_addr addr = Ir.Const (Int32.of_int addr)

let rec lower_expr env (e : expr) : Ir.operand =
  match e with
  | Num n -> Ir.Const n
  | Char c -> Ir.Const (Int32.of_int (Char.code c))
  | Var name ->
    (match lookup env name with
     | Bscalar var -> read_variable env var env.cur.Ir.bid
     | Blocal_array off -> emit env (Ir.Frame_addr off)
     | Bglobal_array sym -> emit env (Ir.Global_addr sym)
     | Bglobal_scalar sym ->
       let addr = emit env (Ir.Global_addr sym) in
       emit env (Ir.Load (addr, 0)))
  | Binop (Land, a, b) -> lower_short_circuit env ~is_and:true a b
  | Binop (Lor, a, b) -> lower_short_circuit env ~is_and:false a b
  | Binop (((Eq | Ne | Lt | Le | Gt | Ge) as op), a, b) ->
    let va = lower_expr env a in
    let vb = lower_expr env b in
    emit env (Ir.Cmp (cmpop_ir op, va, vb))
  | Binop (op, a, b) ->
    let va = lower_expr env a in
    let vb = lower_expr env b in
    emit env (Ir.Bin (binop_ir op, va, vb))
  | Unop (Neg, a) ->
    let va = lower_expr env a in
    emit env (Ir.Bin (Ir.Sub, Ir.Const 0l, va))
  | Unop (Not, a) ->
    let va = lower_expr env a in
    emit env (Ir.Cmp (Ir.Eq, va, Ir.Const 0l))
  | Unop (Bnot, a) ->
    let va = lower_expr env a in
    emit env (Ir.Bin (Ir.Xor, va, Ir.Const (-1l)))
  | Call ("putint", [ a ]) ->
    let va = lower_expr env a in
    emit env (Ir.Store (va, mmio_addr Assembler.Layout.mmio_putint, 0))
  | Call ("putchar", [ a ]) ->
    let va = lower_expr env a in
    emit env (Ir.Store (va, mmio_addr Assembler.Layout.mmio_putchar, 0))
  | Call (name, args) ->
    (match Hashtbl.find_opt env.known_funcs name with
     | Some arity when arity = List.length args -> ()
     | Some arity ->
       fail "call %s: expected %d arguments, got %d" name arity
         (List.length args)
     | None -> fail "call to undefined function %s" name);
    let vargs = List.map (lower_expr env) args in
    emit env (Ir.Call (name, vargs))
  | Index (base, idx) ->
    let addr, off = lower_address env base idx in
    emit env (Ir.Load (addr, off))
  | Ternary (cond, te, fe) ->
    let c = lower_expr env cond in
    let tbb = new_block env in
    let fbb = new_block env in
    let join = new_block env in
    terminate env (Ir.Cond_br (c, tbb.Ir.bid, fbb.Ir.bid));
    seal_block env tbb.Ir.bid;
    seal_block env fbb.Ir.bid;
    switch_to env tbb;
    let tv = lower_expr env te in
    let t_end = env.cur.Ir.bid in
    terminate env (Ir.Br join.Ir.bid);
    switch_to env fbb;
    let fv = lower_expr env fe in
    let f_end = env.cur.Ir.bid in
    terminate env (Ir.Br join.Ir.bid);
    seal_block env join.Ir.bid;
    switch_to env join;
    let v = Ir.fresh_value env.func in
    join.Ir.insts <- (v, Ir.Phi [ (t_end, tv); (f_end, fv) ]) :: join.Ir.insts;
    Ir.Val v

(* Compute (address operand, constant byte offset) for base[idx]. *)
and lower_address env base idx : Ir.operand * int =
  let vbase = lower_expr env base in
  match idx with
  | Num n when Int32.to_int n >= -512 && Int32.to_int n < 512 ->
    (vbase, 4 * Int32.to_int n)
  | _ ->
    let vidx = lower_expr env idx in
    let scaled = emit env (Ir.Bin (Ir.Shl, vidx, Ir.Const 2l)) in
    (emit env (Ir.Bin (Ir.Add, vbase, scaled)), 0)

and lower_short_circuit env ~is_and a b : Ir.operand =
  let va = lower_expr env a in
  let ca = emit env (Ir.Cmp (Ir.Ne, va, Ir.Const 0l)) in
  let from_bid = env.cur.Ir.bid in
  let rhs = new_block env in
  let join = new_block env in
  if is_and then terminate env (Ir.Cond_br (ca, rhs.Ir.bid, join.Ir.bid))
  else terminate env (Ir.Cond_br (ca, join.Ir.bid, rhs.Ir.bid));
  seal_block env rhs.Ir.bid;
  switch_to env rhs;
  let vb = lower_expr env b in
  let cb = emit env (Ir.Cmp (Ir.Ne, vb, Ir.Const 0l)) in
  let rhs_end = env.cur.Ir.bid in
  terminate env (Ir.Br join.Ir.bid);
  seal_block env join.Ir.bid;
  switch_to env join;
  let short_val = if is_and then Ir.Const 0l else Ir.Const 1l in
  let v = Ir.fresh_value env.func in
  join.Ir.insts <-
    (v, Ir.Phi [ (from_bid, short_val); (rhs_end, cb) ]) :: join.Ir.insts;
  Ir.Val v

(* ---------- statement lowering ---------- *)

let rec lower_stmt env (s : stmt) : unit =
  match s with
  | Block stmts ->
    push_scope env;
    List.iter (lower_stmt env) stmts;
    pop_scope env
  | Decl (name, Scalar init) ->
    let value =
      match init with
      | Some e -> lower_expr env e
      | None -> Ir.Const 0l
    in
    let var = env.next_var in
    env.next_var <- var + 1;
    declare env name (Bscalar var);
    write_variable env var env.cur.Ir.bid value
  | Decl (name, Array n) ->
    if n <= 0 then fail "array %s has non-positive size" name;
    let off = env.func.Ir.frame_bytes in
    env.func.Ir.frame_bytes <- off + (4 * n);
    declare env name (Blocal_array off)
  | Assign (Lvar name, e) ->
    let v = lower_expr env e in
    (match lookup env name with
     | Bscalar var -> write_variable env var env.cur.Ir.bid v
     | Bglobal_scalar sym ->
       let addr = emit env (Ir.Global_addr sym) in
       ignore (emit env (Ir.Store (v, addr, 0)))
     | Blocal_array _ | Bglobal_array _ -> fail "cannot assign to array %s" name)
  | Assign (Lindex (base, idx), e) ->
    (* C evaluates the RHS and the address in unspecified order; we fix
       address-then-value order *)
    let addr, off = lower_address env base idx in
    let v = lower_expr env e in
    ignore (emit env (Ir.Store (v, addr, off)))
  | If (cond, then_s, else_s) ->
    let c = lower_expr env cond in
    let tbb = new_block env in
    let fbb = new_block env in
    (match else_s with
     | None ->
       terminate env (Ir.Cond_br (c, tbb.Ir.bid, fbb.Ir.bid));
       seal_block env tbb.Ir.bid;
       switch_to env tbb;
       lower_stmt env then_s;
       terminate env (Ir.Br fbb.Ir.bid);
       seal_block env fbb.Ir.bid;
       switch_to env fbb
     | Some else_s ->
       let join = new_block env in
       terminate env (Ir.Cond_br (c, tbb.Ir.bid, fbb.Ir.bid));
       seal_block env tbb.Ir.bid;
       seal_block env fbb.Ir.bid;
       switch_to env tbb;
       lower_stmt env then_s;
       terminate env (Ir.Br join.Ir.bid);
       switch_to env fbb;
       lower_stmt env else_s;
       terminate env (Ir.Br join.Ir.bid);
       seal_block env join.Ir.bid;
       switch_to env join)
  | While (cond, body) ->
    let header = new_block env in
    let body_bb = new_block env in
    let exit_bb = new_block env in
    terminate env (Ir.Br header.Ir.bid);
    switch_to env header;
    let c = lower_expr env cond in
    (* the condition may itself create blocks (short circuit) *)
    terminate env (Ir.Cond_br (c, body_bb.Ir.bid, exit_bb.Ir.bid));
    seal_block env body_bb.Ir.bid;
    switch_to env body_bb;
    env.loops <-
      { break_to = exit_bb.Ir.bid; continue_to = header.Ir.bid } :: env.loops;
    lower_stmt env body;
    env.loops <- List.tl env.loops;
    terminate env (Ir.Br header.Ir.bid);
    seal_block env header.Ir.bid;
    seal_block env exit_bb.Ir.bid;
    switch_to env exit_bb
  | Do_while (body, cond) ->
    let body_bb = new_block env in
    let cond_bb = new_block env in
    let exit_bb = new_block env in
    terminate env (Ir.Br body_bb.Ir.bid);
    switch_to env body_bb;
    env.loops <-
      { break_to = exit_bb.Ir.bid; continue_to = cond_bb.Ir.bid } :: env.loops;
    lower_stmt env body;
    env.loops <- List.tl env.loops;
    terminate env (Ir.Br cond_bb.Ir.bid);
    seal_block env cond_bb.Ir.bid;
    switch_to env cond_bb;
    let c = lower_expr env cond in
    terminate env (Ir.Cond_br (c, body_bb.Ir.bid, exit_bb.Ir.bid));
    seal_block env body_bb.Ir.bid;
    seal_block env exit_bb.Ir.bid;
    switch_to env exit_bb
  | For (init, cond, step, body) ->
    push_scope env;
    (match init with Some s -> lower_stmt env s | None -> ());
    let header = new_block env in
    let body_bb = new_block env in
    let step_bb = new_block env in
    let exit_bb = new_block env in
    terminate env (Ir.Br header.Ir.bid);
    switch_to env header;
    let c =
      match cond with
      | Some e -> lower_expr env e
      | None -> Ir.Const 1l
    in
    terminate env (Ir.Cond_br (c, body_bb.Ir.bid, exit_bb.Ir.bid));
    seal_block env body_bb.Ir.bid;
    switch_to env body_bb;
    env.loops <-
      { break_to = exit_bb.Ir.bid; continue_to = step_bb.Ir.bid } :: env.loops;
    lower_stmt env body;
    env.loops <- List.tl env.loops;
    terminate env (Ir.Br step_bb.Ir.bid);
    seal_block env step_bb.Ir.bid;
    switch_to env step_bb;
    (match step with Some s -> lower_stmt env s | None -> ());
    terminate env (Ir.Br header.Ir.bid);
    seal_block env header.Ir.bid;
    seal_block env exit_bb.Ir.bid;
    switch_to env exit_bb;
    pop_scope env
  | Return e ->
    let v = lower_expr env e in
    terminate env (Ir.Ret v)
  | Break ->
    (match env.loops with
     | { break_to; _ } :: _ -> terminate env (Ir.Br break_to)
     | [] -> fail "break outside loop")
  | Continue ->
    (match env.loops with
     | { continue_to; _ } :: _ -> terminate env (Ir.Br continue_to)
     | [] -> fail "continue outside loop")
  | Expr_stmt e -> ignore (lower_expr env e)

(* ---------- trivial phi elimination ---------- *)

(* Braun's construction leaves phis of the shape phi(x, x, self) — replace
   them by x, to a fixpoint. *)
let remove_trivial_phis (f : Ir.func) : unit =
  let changed = ref true in
  while !changed do
    changed := false;
    let replacement : (Ir.value, Ir.operand) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun b ->
         List.iter
           (fun (v, inst) ->
              match inst with
              | Ir.Phi args ->
                let non_self =
                  List.filter_map
                    (fun (_, op) -> if op = Ir.Val v then None else Some op)
                    args
                in
                (match non_self with
                 | [] -> ()
                 | first :: rest when List.for_all (( = ) first) rest ->
                   Hashtbl.replace replacement v first
                 | _ -> ())
              | _ -> ())
           b.Ir.insts)
      f.Ir.blocks;
    if Hashtbl.length replacement > 0 then begin
      changed := true;
      let rec resolve op =
        match op with
        | Ir.Val v ->
          (match Hashtbl.find_opt replacement v with
           | Some op' -> resolve op'
           | None -> op)
        | Ir.Const _ -> op
      in
      List.iter
        (fun b ->
           b.Ir.insts <-
             List.filter_map
               (fun (v, inst) ->
                  if Hashtbl.mem replacement v then None
                  else
                    Some
                      (v,
                       match inst with
                       | Ir.Bin (op, a, x) -> Ir.Bin (op, resolve a, resolve x)
                       | Ir.Cmp (op, a, x) -> Ir.Cmp (op, resolve a, resolve x)
                       | Ir.Load (a, o) -> Ir.Load (resolve a, o)
                       | Ir.Store (x, a, o) -> Ir.Store (resolve x, resolve a, o)
                       | Ir.Call (g, args) -> Ir.Call (g, List.map resolve args)
                       | Ir.Phi args ->
                         Ir.Phi (List.map (fun (p, o) -> (p, resolve o)) args)
                       | Ir.Frame_addr _ | Ir.Global_addr _ -> inst))
               b.Ir.insts;
           b.Ir.term <-
             (match b.Ir.term with
              | Ir.Ret op -> Ir.Ret (resolve op)
              | Ir.Br t -> Ir.Br t
              | Ir.Cond_br (c, t1, t2) -> Ir.Cond_br (resolve c, t1, t2)))
        f.Ir.blocks
    end
  done

(* ---------- function and program lowering ---------- *)

let lower_func ~globals ~known_funcs (fd : Ast.func) : Ir.func =
  let nparams = List.length fd.params in
  let f =
    { Ir.name = fd.name; nparams; nvalues = nparams; blocks = [];
      frame_bytes = 0 }
  in
  let env =
    { func = f;
      blocks = Hashtbl.create 16;
      next_bid = 0;
      cur = { Ir.bid = -1; insts = []; term = Ir.Ret (Ir.Const 0l) };
      terminated = true;
      defs = Hashtbl.create 64;
      sealed = Hashtbl.create 16;
      preds = Hashtbl.create 16;
      incomplete = Hashtbl.create 8;
      scopes = [];
      next_var = 0;
      loops = [];
      globals;
      known_funcs }
  in
  let entry = new_block env in
  Hashtbl.replace env.sealed entry.Ir.bid ();
  switch_to env entry;
  push_scope env;
  List.iteri
    (fun i p ->
       let var = env.next_var in
       env.next_var <- var + 1;
       declare env p (Bscalar var);
       write_variable env var entry.Ir.bid (Ir.Val i))
    fd.params;
  List.iter (lower_stmt env) fd.body;
  (* implicit `return 0` at the end of the body *)
  terminate env (Ir.Ret (Ir.Const 0l));
  pop_scope env;
  remove_trivial_phis f;
  ignore (Ssa_ir.Passes.remove_unreachable f);
  Ssa_ir.Analysis.validate f;
  f

let builtin_names = [ "putint"; "putchar" ]

(* [lower_program ast] produces the IR program: all functions lowered and
   validated, globals turned into data definitions. *)
let lower_program (ast : Ast.program) : Ir.program =
  let globals = Hashtbl.create 16 in
  let data =
    List.map
      (fun g ->
         match g with
         | Gvar (name, init) ->
           if Hashtbl.mem globals name then fail "duplicate global %s" name;
           Hashtbl.replace globals name (Bglobal_scalar name);
           { Ir.sym = name; words = [ init ]; extra_bytes = 0 }
         | Garray (name, size, init) ->
           if Hashtbl.mem globals name then fail "duplicate global %s" name;
           if List.length init > size then
             fail "global array %s: too many initializers" name;
           Hashtbl.replace globals name (Bglobal_array name);
           { Ir.sym = name;
             words = init;
             extra_bytes = 4 * (size - List.length init) })
      ast.globals
  in
  let known_funcs = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace known_funcs n 1) builtin_names;
  List.iter
    (fun (fd : Ast.func) ->
       if Hashtbl.mem known_funcs fd.name then fail "duplicate function %s" fd.name;
       Hashtbl.replace known_funcs fd.name (List.length fd.params))
    ast.funcs;
  if not (Hashtbl.mem known_funcs "main") then fail "no main function";
  let funcs = List.map (lower_func ~globals ~known_funcs) ast.funcs in
  { Ir.funcs; data }

(* [compile src] is the front half of the paper's Fig. 7 flow: C-subset
   source -> SSA IR (the LLVM-IR stage). *)
let compile (src : string) : Ir.program =
  lower_program (Parser.parse src)
