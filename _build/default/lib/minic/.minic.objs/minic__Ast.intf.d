lib/minic/ast.mli:
