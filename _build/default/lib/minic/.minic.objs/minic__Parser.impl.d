lib/minic/parser.ml: Array Ast Char Format Int32 Lexer List Printf
