lib/minic/ast.ml:
