lib/minic/lower.mli: Ast Ssa_ir
