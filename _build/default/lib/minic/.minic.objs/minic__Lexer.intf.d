lib/minic/lexer.mli:
