lib/minic/lower.ml: Assembler Ast Char Format Hashtbl Int32 List Parser Ssa_ir
