(* Recursive-descent parser for MiniC. *)

open Ast
open Lexer

exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

type state = { tokens : token array; mutable pos : int }

let peek st = st.tokens.(st.pos)
let peek2 st =
  if st.pos + 1 < Array.length st.tokens then st.tokens.(st.pos + 1) else EOF
let advance st = st.pos <- st.pos + 1

let token_name = function
  | INT_KW -> "int" | IF -> "if" | ELSE -> "else" | WHILE -> "while"
  | DO -> "do" | FOR -> "for" | RETURN -> "return" | BREAK -> "break"
  | CONTINUE -> "continue" | IDENT s -> "identifier " ^ s
  | NUM n -> Printf.sprintf "number %ld" n | CHARLIT c -> Printf.sprintf "%C" c
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]" | SEMI -> ";" | COMMA -> ","
  | ASSIGN -> "=" | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/"
  | PERCENT -> "%" | AMP -> "&" | PIPE -> "|" | CARET -> "^" | TILDE -> "~"
  | BANG -> "!" | SHL -> "<<" | SHR -> ">>" | EQ -> "==" | NE -> "!="
  | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">=" | LAND -> "&&"
  | LOR -> "||" | PLUSEQ -> "+=" | MINUSEQ -> "-=" | PLUSPLUS -> "++"
  | MINUSMINUS -> "--" | QUESTION -> "?" | COLON -> ":"
  | EOF -> "end of input"

let expect st t =
  if peek st = t then advance st
  else fail "expected %s, found %s" (token_name t) (token_name (peek st))

let expect_ident st =
  match peek st with
  | IDENT s -> advance st; s
  | t -> fail "expected identifier, found %s" (token_name t)

(* ---------- expressions (precedence climbing) ---------- *)

let rec parse_expr st =
  let cond = parse_lor st in
  if peek st = QUESTION then begin
    advance st;
    let t = parse_expr st in
    expect st COLON;
    let f = parse_expr st in
    Ternary (cond, t, f)
  end
  else cond

and parse_lor st =
  let lhs = ref (parse_land st) in
  while peek st = LOR do
    advance st;
    lhs := Binop (Lor, !lhs, parse_land st)
  done;
  !lhs

and parse_land st =
  let lhs = ref (parse_bitor st) in
  while peek st = LAND do
    advance st;
    lhs := Binop (Land, !lhs, parse_bitor st)
  done;
  !lhs

and parse_bitor st =
  let lhs = ref (parse_bitxor st) in
  while peek st = PIPE do
    advance st;
    lhs := Binop (Or, !lhs, parse_bitxor st)
  done;
  !lhs

and parse_bitxor st =
  let lhs = ref (parse_bitand st) in
  while peek st = CARET do
    advance st;
    lhs := Binop (Xor, !lhs, parse_bitand st)
  done;
  !lhs

and parse_bitand st =
  let lhs = ref (parse_equality st) in
  while peek st = AMP do
    advance st;
    lhs := Binop (And, !lhs, parse_equality st)
  done;
  !lhs

and parse_equality st =
  let lhs = ref (parse_rel st) in
  let rec go () =
    match peek st with
    | EQ -> advance st; lhs := Binop (Eq, !lhs, parse_rel st); go ()
    | NE -> advance st; lhs := Binop (Ne, !lhs, parse_rel st); go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_rel st =
  let lhs = ref (parse_shift st) in
  let rec go () =
    match peek st with
    | LT -> advance st; lhs := Binop (Lt, !lhs, parse_shift st); go ()
    | LE -> advance st; lhs := Binop (Le, !lhs, parse_shift st); go ()
    | GT -> advance st; lhs := Binop (Gt, !lhs, parse_shift st); go ()
    | GE -> advance st; lhs := Binop (Ge, !lhs, parse_shift st); go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_shift st =
  let lhs = ref (parse_additive st) in
  let rec go () =
    match peek st with
    | SHL -> advance st; lhs := Binop (Shl, !lhs, parse_additive st); go ()
    | SHR -> advance st; lhs := Binop (Shr, !lhs, parse_additive st); go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_additive st =
  let lhs = ref (parse_mult st) in
  let rec go () =
    match peek st with
    | PLUS -> advance st; lhs := Binop (Add, !lhs, parse_mult st); go ()
    | MINUS -> advance st; lhs := Binop (Sub, !lhs, parse_mult st); go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_mult st =
  let lhs = ref (parse_unary st) in
  let rec go () =
    match peek st with
    | STAR -> advance st; lhs := Binop (Mul, !lhs, parse_unary st); go ()
    | SLASH -> advance st; lhs := Binop (Div, !lhs, parse_unary st); go ()
    | PERCENT -> advance st; lhs := Binop (Rem, !lhs, parse_unary st); go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_unary st =
  match peek st with
  | MINUS -> advance st; Unop (Neg, parse_unary st)
  | BANG -> advance st; Unop (Not, parse_unary st)
  | TILDE -> advance st; Unop (Bnot, parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  while peek st = LBRACKET do
    advance st;
    let idx = parse_expr st in
    expect st RBRACKET;
    e := Index (!e, idx)
  done;
  !e

and parse_primary st =
  match peek st with
  | NUM n -> advance st; Num n
  | CHARLIT c -> advance st; Char c
  | LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st RPAREN;
    e
  | IDENT name when peek2 st = LPAREN ->
    advance st; advance st;
    let args = ref [] in
    if peek st <> RPAREN then begin
      args := [ parse_expr st ];
      while peek st = COMMA do
        advance st;
        args := parse_expr st :: !args
      done
    end;
    expect st RPAREN;
    Call (name, List.rev !args)
  | IDENT name -> advance st; Var name
  | t -> fail "expected expression, found %s" (token_name t)

(* ---------- statements ---------- *)

let parse_lvalue_from_expr = function
  | Var v -> Lvar v
  | Index (base, idx) -> Lindex (base, idx)
  | _ -> fail "expression is not assignable"

let rec parse_stmt st : stmt =
  match peek st with
  | SEMI -> advance st; Block []   (* empty statement *)
  | LBRACE ->
    advance st;
    let stmts = ref [] in
    while peek st <> RBRACE do
      stmts := parse_stmt st :: !stmts
    done;
    advance st;
    Block (List.rev !stmts)
  | INT_KW ->
    advance st;
    (* consume an optional * — pointers and ints are not distinguished *)
    if peek st = STAR then advance st;
    let name = expect_ident st in
    let decl =
      if peek st = LBRACKET then begin
        advance st;
        let size =
          match peek st with
          | NUM n -> advance st; Int32.to_int n
          | t -> fail "expected array size, found %s" (token_name t)
        in
        expect st RBRACKET;
        Array size
      end
      else if peek st = ASSIGN then begin
        advance st;
        Scalar (Some (parse_expr st))
      end
      else Scalar None
    in
    expect st SEMI;
    Decl (name, decl)
  | IF ->
    advance st;
    expect st LPAREN;
    let cond = parse_expr st in
    expect st RPAREN;
    let then_s = parse_stmt st in
    if peek st = ELSE then begin
      advance st;
      If (cond, then_s, Some (parse_stmt st))
    end
    else If (cond, then_s, None)
  | WHILE ->
    advance st;
    expect st LPAREN;
    let cond = parse_expr st in
    expect st RPAREN;
    While (cond, parse_stmt st)
  | DO ->
    advance st;
    let body = parse_stmt st in
    expect st WHILE;
    expect st LPAREN;
    let cond = parse_expr st in
    expect st RPAREN;
    expect st SEMI;
    Do_while (body, cond)
  | FOR ->
    advance st;
    expect st LPAREN;
    let init = if peek st = SEMI then None else Some (parse_simple st) in
    expect st SEMI;
    let cond = if peek st = SEMI then None else Some (parse_expr st) in
    expect st SEMI;
    let step = if peek st = RPAREN then None else Some (parse_simple st) in
    expect st RPAREN;
    For (init, cond, step, parse_stmt st)
  | RETURN ->
    advance st;
    let e = if peek st = SEMI then Num 0l else parse_expr st in
    expect st SEMI;
    Return e
  | BREAK -> advance st; expect st SEMI; Break
  | CONTINUE -> advance st; expect st SEMI; Continue
  | _ ->
    let s = parse_simple st in
    expect st SEMI;
    s

(* A "simple" statement (no trailing `;`): assignment, compound assignment,
   increment/decrement, declaration-free expression. *)
and parse_simple st : stmt =
  match peek st with
  | INT_KW ->
    advance st;
    if peek st = STAR then advance st;
    let name = expect_ident st in
    expect st ASSIGN;
    Decl (name, Scalar (Some (parse_expr st)))
  | _ ->
    let e = parse_expr st in
    (match peek st with
     | ASSIGN ->
       advance st;
       Assign (parse_lvalue_from_expr e, parse_expr st)
     | PLUSEQ ->
       advance st;
       let lv = parse_lvalue_from_expr e in
       Assign (lv, Binop (Add, e, parse_expr st))
     | MINUSEQ ->
       advance st;
       let lv = parse_lvalue_from_expr e in
       Assign (lv, Binop (Sub, e, parse_expr st))
     | PLUSPLUS ->
       advance st;
       Assign (parse_lvalue_from_expr e, Binop (Add, e, Num 1l))
     | MINUSMINUS ->
       advance st;
       Assign (parse_lvalue_from_expr e, Binop (Sub, e, Num 1l))
     | _ -> Expr_stmt e)

(* ---------- top level ---------- *)

let parse_global_init st =
  if peek st = LBRACE then begin
    advance st;
    let values = ref [] in
    let rec go () =
      match peek st with
      | NUM n -> advance st; values := n :: !values;
        if peek st = COMMA then begin advance st; go () end
      | MINUS ->
        advance st;
        (match peek st with
         | NUM n -> advance st; values := Int32.neg n :: !values;
           if peek st = COMMA then begin advance st; go () end
         | t -> fail "expected number, found %s" (token_name t))
      | CHARLIT c -> advance st; values := Int32.of_int (Char.code c) :: !values;
        if peek st = COMMA then begin advance st; go () end
      | RBRACE -> ()
      | t -> fail "expected initializer element, found %s" (token_name t)
    in
    go ();
    expect st RBRACE;
    List.rev !values
  end
  else
    match peek st with
    | NUM n -> advance st; [ n ]
    | MINUS ->
      advance st;
      (match peek st with
       | NUM n -> advance st; [ Int32.neg n ]
       | t -> fail "expected number, found %s" (token_name t))
    | t -> fail "expected initializer, found %s" (token_name t)

(* [parse src] parses a full translation unit. *)
let parse (src : string) : program =
  let st = { tokens = Array.of_list (Lexer.tokenize src); pos = 0 } in
  let globals = ref [] and funcs = ref [] in
  while peek st <> EOF do
    expect st INT_KW;
    if peek st = STAR then advance st;
    let name = expect_ident st in
    match peek st with
    | LPAREN ->
      advance st;
      let params = ref [] in
      if peek st <> RPAREN then begin
        let param () =
          expect st INT_KW;
          if peek st = STAR then advance st;
          let p = expect_ident st in
          params := p :: !params
        in
        param ();
        while peek st = COMMA do
          advance st;
          param ()
        done
      end;
      expect st RPAREN;
      if peek st = SEMI then advance st (* prototype: body defined later *)
      else
        (match parse_stmt st with
         | Block body ->
           funcs := { name; params = List.rev !params; body } :: !funcs
         | _ -> fail "function body must be a block")
    | LBRACKET ->
      advance st;
      let size =
        match peek st with
        | NUM n -> advance st; Int32.to_int n
        | t -> fail "expected array size, found %s" (token_name t)
      in
      expect st RBRACKET;
      let init =
        if peek st = ASSIGN then begin
          advance st;
          parse_global_init st
        end
        else []
      in
      expect st SEMI;
      globals := Garray (name, size, init) :: !globals
    | ASSIGN ->
      advance st;
      (match parse_global_init st with
       | [ v ] -> globals := Gvar (name, v) :: !globals
       | _ -> fail "scalar global %s needs a single initializer" name);
      expect st SEMI
    | SEMI ->
      advance st;
      globals := Gvar (name, 0l) :: !globals
    | t -> fail "unexpected %s after global %s" (token_name t) name
  done;
  { globals = List.rev !globals; funcs = List.rev !funcs }
