(* Hand-written lexer for MiniC. *)

type token =
  | INT_KW | IF | ELSE | WHILE | DO | FOR | RETURN | BREAK | CONTINUE
  | IDENT of string
  | NUM of int32
  | CHARLIT of char
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | ASSIGN
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | BANG
  | SHL | SHR
  | EQ | NE | LT | LE | GT | GE
  | LAND | LOR
  | PLUSEQ | MINUSEQ
  | PLUSPLUS | MINUSMINUS
  | QUESTION | COLON
  | EOF

exception Lex_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Lex_error s)) fmt

let keyword = function
  | "int" -> Some INT_KW
  | "if" -> Some IF
  | "else" -> Some ELSE
  | "while" -> Some WHILE
  | "do" -> Some DO
  | "for" -> Some FOR
  | "return" -> Some RETURN
  | "break" -> Some BREAK
  | "continue" -> Some CONTINUE
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(* [tokenize src] produces the token list, `//` and C comments stripped. *)
let tokenize (src : string) : token list =
  let n = String.length src in
  let tokens = ref [] in
  let push t = tokens := t :: !tokens in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '/' && peek 1 = Some '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      i := !i + 2;
      let rec skip () =
        if !i + 1 >= n then fail "unterminated comment"
        else if src.[!i] = '*' && src.[!i + 1] = '/' then i := !i + 2
        else begin incr i; skip () end
      in
      skip ()
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      let word = String.sub src start (!i - start) in
      push (match keyword word with Some t -> t | None -> IDENT word)
    end
    else if is_digit c then begin
      let start = !i in
      if c = '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') then begin
        i := !i + 2;
        while
          !i < n
          && (is_digit src.[!i]
              || (Char.lowercase_ascii src.[!i] >= 'a'
                  && Char.lowercase_ascii src.[!i] <= 'f'))
        do incr i done
      end
      else while !i < n && is_digit src.[!i] do incr i done;
      let text = String.sub src start (!i - start) in
      (match Int64.of_string_opt text with
       | Some v when Int64.compare v 0x1_0000_0000L < 0 ->
         push (NUM (Int64.to_int32 v))
       | _ -> fail "bad number literal %S" text)
    end
    else if c = '\'' then begin
      (* char literal, with \n \t \0 \\ \' escapes *)
      if !i + 2 >= n then fail "unterminated char literal";
      let ch, len =
        if src.[!i + 1] = '\\' then
          ((match src.[!i + 2] with
            | 'n' -> '\n' | 't' -> '\t' | '0' -> '\000' | '\\' -> '\\'
            | '\'' -> '\'' | 'r' -> '\r'
            | c -> fail "unknown escape \\%c" c), 4)
        else (src.[!i + 1], 3)
      in
      if !i + len - 1 >= n || src.[!i + len - 1] <> '\'' then
        fail "unterminated char literal";
      push (CHARLIT ch);
      i := !i + len
    end
    else begin
      let two t = push t; i := !i + 2 in
      let one t = push t; incr i in
      match c, peek 1 with
      | '<', Some '<' -> two SHL
      | '>', Some '>' -> two SHR
      | '<', Some '=' -> two LE
      | '>', Some '=' -> two GE
      | '=', Some '=' -> two EQ
      | '!', Some '=' -> two NE
      | '&', Some '&' -> two LAND
      | '|', Some '|' -> two LOR
      | '+', Some '=' -> two PLUSEQ
      | '-', Some '=' -> two MINUSEQ
      | '+', Some '+' -> two PLUSPLUS
      | '-', Some '-' -> two MINUSMINUS
      | '(', _ -> one LPAREN
      | ')', _ -> one RPAREN
      | '{', _ -> one LBRACE
      | '}', _ -> one RBRACE
      | '[', _ -> one LBRACKET
      | ']', _ -> one RBRACKET
      | ';', _ -> one SEMI
      | ',', _ -> one COMMA
      | '=', _ -> one ASSIGN
      | '+', _ -> one PLUS
      | '-', _ -> one MINUS
      | '*', _ -> one STAR
      | '/', _ -> one SLASH
      | '%', _ -> one PERCENT
      | '&', _ -> one AMP
      | '|', _ -> one PIPE
      | '^', _ -> one CARET
      | '~', _ -> one TILDE
      | '!', _ -> one BANG
      | '<', _ -> one LT
      | '>', _ -> one GT
      | '?', _ -> one QUESTION
      | ':', _ -> one COLON
      | c, _ -> fail "unexpected character %C" c
    end
  done;
  List.rev (EOF :: !tokens)
