(** Hand-written lexer for MiniC. *)

type token =
  | INT_KW | IF | ELSE | WHILE | DO | FOR | RETURN | BREAK | CONTINUE
  | IDENT of string
  | NUM of int32
  | CHARLIT of char
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | ASSIGN
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | BANG
  | SHL | SHR
  | EQ | NE | LT | LE | GT | GE
  | LAND | LOR
  | PLUSEQ | MINUSEQ
  | PLUSPLUS | MINUSMINUS
  | QUESTION | COLON
  | EOF

exception Lex_error of string

val tokenize : string -> token list
(** [tokenize src] produces the token list, [//] and [/* */] comments
    stripped, decimal/hex numbers and ['c'] literals (with [\n \t \0 \\ \'
    \r] escapes) recognized.
    @raise Lex_error on stray characters or unterminated literals. *)
