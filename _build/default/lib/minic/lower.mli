(** AST -> SSA lowering, following Braun et al.'s simple and efficient SSA
    construction: per-block variable definitions, operandless phis in
    not-yet-sealed blocks (loop headers), sealing once all predecessors
    are known, then trivial-phi elimination.

    Builtins: [putint(e)] and [putchar(e)] lower to MMIO stores
    ({!Assembler.Layout.mmio_putint} / [mmio_putchar]). *)

exception Lower_error of string

val remove_trivial_phis : Ssa_ir.Ir.func -> unit
(** Replace [phi(x, x, self)]-shaped phis by [x], to a fixpoint. *)

val lower_program : Ast.program -> Ssa_ir.Ir.program
(** Lower all functions (each validated) and turn globals into data
    definitions.
    @raise Lower_error on undefined variables/functions, arity mismatches,
    redeclarations, or a missing [main]. *)

val compile : string -> Ssa_ir.Ir.program
(** [compile src] is the front half of the paper's Fig. 7 flow: C-subset
    source -> SSA IR (the LLVM-IR stage).  Combines {!Parser.parse} and
    {!lower_program}. *)
