(* Activity-based power model — the substitute for the paper's RTL power
   analysis with Cadence Joules (Section V-B / Fig. 17; see DESIGN.md
   substitution notes).

   The cycle simulator counts the micro-events an RTL implementation would
   exercise; this module multiplies them by per-event energy coefficients
   and reports *relative* power for the three module groups of Fig. 17:
   the rename logic (RMT reads/writes + free list vs. STRAIGHT's RP
   operand-determination adders), the register file, and "other modules"
   (scheduler wakeup/select, ROB, functional units, bypass).

   Coefficients are in arbitrary energy units; they are calibrated so that
   on the 2-way superscalar the rename logic consumes ~5.7 % of the "other
   modules" power — the paper's own anchor ("the proportion of the renaming
   power is 5.7% to the other modules in this analysis"). *)

type coefficients = {
  e_rmt_read : float;          (* one RMT read port access *)
  e_rmt_write : float;
  e_freelist : float;
  e_walk_step : float;         (* one ROB-walk RMT repair step *)
  e_rp_add : float;            (* one RP-relative operand adder op *)
  e_rf_read : float;
  e_rf_write : float;
  e_iq_wakeup : float;         (* wakeup broadcast + select per issue *)
  e_rob_write : float;
  e_alu : float;
  e_agu : float;
  e_clock_per_cycle : float;   (* clock tree + idle overhead per cycle *)
}

let default_coefficients =
  { e_rmt_read = 0.46;
    e_rmt_write = 0.55;
    e_freelist = 0.27;
    e_walk_step = 0.69;
    (* the RP adder is a narrow subtractor on a short wire: a small
       fraction of a multiported RAM access *)
    e_rp_add = 0.04;
    e_rf_read = 1.6;
    e_rf_write = 2.0;
    e_iq_wakeup = 6.0;
    e_rob_write = 3.0;
    e_alu = 8.0;
    e_agu = 5.0;
    e_clock_per_cycle = 24.0 }

type report = {
  rename : float;     (* energy per cycle (relative power at 1.0x) *)
  regfile : float;
  other : float;
}

(* [analyze ?coeffs ~cycles activity] converts activity counts into
   per-module relative power at the baseline frequency. *)
let analyze ?(coeffs = default_coefficients)
    ~(cycles : int) (a : Ooo_common.Engine.activity) : report =
  let c = float_of_int (max 1 cycles) in
  let f x = float_of_int x in
  let rename_energy =
    (coeffs.e_rmt_read *. f a.Ooo_common.Engine.rename_reads)
    +. (coeffs.e_rmt_write *. f a.Ooo_common.Engine.rename_writes)
    +. (coeffs.e_freelist *. f a.Ooo_common.Engine.freelist_ops)
    +. (coeffs.e_walk_step *. f a.Ooo_common.Engine.rob_walk_steps)
    +. (coeffs.e_rp_add *. f a.Ooo_common.Engine.rp_ops)
  in
  let regfile_energy =
    (coeffs.e_rf_read *. f a.Ooo_common.Engine.rf_reads)
    +. (coeffs.e_rf_write *. f a.Ooo_common.Engine.rf_writes)
  in
  let other_energy =
    (coeffs.e_iq_wakeup *. f a.Ooo_common.Engine.iq_wakeups)
    +. (coeffs.e_rob_write *. f a.Ooo_common.Engine.rob_writes)
    +. (coeffs.e_alu *. f a.Ooo_common.Engine.alu_ops)
    +. (coeffs.e_agu *. f a.Ooo_common.Engine.agu_ops)
    +. (coeffs.e_clock_per_cycle *. c)
  in
  { rename = rename_energy /. c;
    regfile = regfile_energy /. c;
    other = other_energy /. c }

(* Frequency scaling: meeting a tighter clock constraint costs superlinear
   power (more buffering / sizing), observed in the paper's synthesized
   design points as a mildly superlinear curve.  We model
   P(m) = P(1) * m^freq_exponent. *)
let freq_exponent = 1.07

let scale_power (p : float) (multiplier : float) : float =
  p *. (multiplier ** freq_exponent)

(* Fig. 17's frequency points. *)
let multipliers = [ 1.0; 2.5; 4.0 ]

type figure17_row = {
  module_name : string;       (* "Rename Logic" | "Register File" | "Other" *)
  freq : float;
  ss : float;                 (* normalized to SS at 1.0x, per module *)
  straight : float;
}

(* [figure17 ~ss ~straight] builds the nine bar pairs of Fig. 17 from the
   two cores' reports, each module normalized to the SS value at 1.0x. *)
let figure17 ~(ss : report) ~(straight : report) : figure17_row list =
  let rows name ss_val straight_val =
    List.map
      (fun m ->
         { module_name = name;
           freq = m;
           ss = scale_power ss_val m /. ss_val;
           straight = scale_power straight_val m /. ss_val })
      multipliers
  in
  rows "Rename Logic" ss.rename straight.rename
  @ rows "Register File" ss.regfile straight.regfile
  @ rows "Other Modules" ss.other straight.other
