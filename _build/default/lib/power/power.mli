(** Activity-based power model — the substitute for the paper's RTL power
    analysis with Cadence Joules (Section V-B / Fig. 17; DESIGN.md
    substitution notes).

    The cycle simulator counts the micro-events an RTL implementation
    would exercise; this module multiplies them by per-event energy
    coefficients and reports relative power for the three module groups
    of Fig. 17: rename logic, register file, and "other modules". *)

type coefficients = {
  e_rmt_read : float;          (** one RMT read-port access *)
  e_rmt_write : float;
  e_freelist : float;
  e_walk_step : float;         (** one ROB-walk RMT repair step *)
  e_rp_add : float;            (** one RP operand-determination add *)
  e_rf_read : float;
  e_rf_write : float;
  e_iq_wakeup : float;         (** wakeup broadcast + select per issue *)
  e_rob_write : float;
  e_alu : float;
  e_agu : float;
  e_clock_per_cycle : float;   (** clock tree + idle overhead per cycle *)
}

val default_coefficients : coefficients
(** Calibrated so that on the 2-way superscalar the rename logic consumes
    ~5.7 % of the "other modules" power — the paper's own anchor. *)

type report = {
  rename : float;     (** energy per cycle = relative power at 1.0x *)
  regfile : float;
  other : float;
}

val analyze :
  ?coeffs:coefficients -> cycles:int -> Ooo_common.Engine.activity -> report

val freq_exponent : float
(** P(m) = P(1) * m{^freq_exponent}: meeting a tighter clock constraint
    costs superlinear power, as in the paper's synthesized design
    points. *)

val scale_power : float -> float -> float
val multipliers : float list
(** Fig. 17's frequency points: 1.0x, 2.5x, 4.0x. *)

type figure17_row = {
  module_name : string;
  freq : float;
  ss : float;                 (** normalized to SS at 1.0x, per module *)
  straight : float;
}

val figure17 : ss:report -> straight:report -> figure17_row list
(** The nine bar pairs of Fig. 17, each module normalized to the SS value
    at 1.0x. *)
