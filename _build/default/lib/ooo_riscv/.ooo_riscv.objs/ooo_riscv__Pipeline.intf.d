lib/ooo_riscv/pipeline.mli: Assembler Iss Ooo_common
