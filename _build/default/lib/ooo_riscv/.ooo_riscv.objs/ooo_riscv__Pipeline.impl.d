lib/ooo_riscv/pipeline.ml: Array Assembler Iss List Ooo_common Riscv_isa
