lib/assembler/image.mli:
