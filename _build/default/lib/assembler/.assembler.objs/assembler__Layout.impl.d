lib/assembler/layout.ml:
