lib/assembler/layout.mli:
