lib/assembler/asm.ml: Array Buffer Format Hashtbl Image Int32 Layout List Printf Riscv_isa Straight_isa String
