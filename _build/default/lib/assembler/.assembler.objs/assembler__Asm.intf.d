lib/assembler/asm.mli: Format Image Riscv_isa Straight_isa
