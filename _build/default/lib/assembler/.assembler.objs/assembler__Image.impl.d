lib/assembler/image.ml: Array List
