(* Memory layout shared by both targets (our "linker script").

   The evaluation environment is a bare-metal 32-bit flat address space with
   a tiny MMIO console, mirroring the paper's standalone benchmark runs. *)

let text_base = 0x0000_1000
let data_base = 0x0010_0000
let stack_top = 0x0070_0000  (* initial SP, grows down *)

(* MMIO console: a 32-bit store to these addresses performs output.  The
   paper's benchmarks print their results; we need an observable channel to
   differentially test the two compiler back-ends. *)
let mmio_putint = 0xFFFF_0000
let mmio_putchar = 0xFFFF_0004

let is_mmio addr = addr land 0xFFFF_0000 = 0xFFFF_0000
