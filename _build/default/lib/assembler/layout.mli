(** Memory layout shared by both targets (the "linker script"): a
    bare-metal 32-bit flat address space with a tiny MMIO console,
    mirroring the paper's standalone benchmark runs. *)

val text_base : int
(** Base address of the .text section. *)

val data_base : int
(** Base address of the .data section. *)

val stack_top : int
(** Initial SP; the stack grows down. *)

val mmio_putint : int
(** A 32-bit store here prints the value in decimal followed by a
    newline. *)

val mmio_putchar : int
(** A 32-bit store here prints the low byte as a character. *)

val is_mmio : int -> bool
