(* Generic two-pass assembler + linker, functorized over the target ISA.
   Pass 1 lays out sections and records label addresses; pass 2 resolves
   control-flow targets to PC-relative offsets and encodes machine words. *)

exception Asm_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Asm_error s)) fmt

type section = Text | Data

(* A unit of assembly input.  Compilers build [item list] values directly;
   `.s` text files are tokenized into the same representation. *)
type 'insn item =
  | Label of string
  | Insn of 'insn                    (* instruction with symbolic targets *)
  | Section of section
  | Word of int32                    (* .word — one initialized data word *)
  | Space of int                     (* .space n — n zero bytes (word aligned) *)
  | Equ of string * int              (* .equ name value — absolute symbol *)

module type TARGET = sig
  type 'lab insn

  val parse_insn : string list -> string insn
  (** Parse a tokenized statement into a symbolic instruction. *)

  val map_label : ('a -> 'b) -> 'a insn -> 'b insn

  val encode : int insn -> int32

  val resolve_target : pc:int -> target:int -> int
  (** Turn an absolute [target] address into the offset stored in the
      instruction word (byte-granular for RISC-V, word-granular for
      STRAIGHT). *)

  val pp_sym : Format.formatter -> string insn -> unit
end

(* Tokenize one line of assembly: strip `#`/`;` comments, split on blanks
   and commas, and peel off a leading `label:`. *)
let tokenize_line line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line =
    match String.index_opt line ';' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let buf = Buffer.create 8 in
  let tokens = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := Buffer.contents buf :: !tokens;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
       match c with
       | ' ' | '\t' | ',' | '\r' -> flush ()
       | ':' -> Buffer.add_char buf ':'; flush ()
       | c -> Buffer.add_char buf c)
    line;
  flush ();
  List.rev !tokens

module Make (T : TARGET) = struct
  type program = string T.insn item list

  (* [parse_source text] converts assembly text into items. *)
  let parse_source (text : string) : program =
    let items = ref [] in
    let push i = items := i :: !items in
    String.split_on_char '\n' text
    |> List.iter (fun line ->
        let rec consume tokens =
          match tokens with
          | [] -> ()
          | tok :: rest when String.length tok > 1 && tok.[String.length tok - 1] = ':' ->
            push (Label (String.sub tok 0 (String.length tok - 1)));
            consume rest
          | ".text" :: rest -> push (Section Text); consume rest
          | ".data" :: rest -> push (Section Data); consume rest
          | ".word" :: values ->
            List.iter
              (fun v ->
                 match Int32.of_string_opt v with
                 | Some w -> push (Word w)
                 | None -> fail "bad .word value %S" v)
              values
          | [ ".space"; n ] ->
            (match int_of_string_opt n with
             | Some n -> push (Space n)
             | None -> fail "bad .space value %S" n)
          | [ ".equ"; name; v ] ->
            (match int_of_string_opt v with
             | Some v -> push (Equ (name, v))
             | None -> fail "bad .equ value %S" v)
          | ".global" :: _ | ".globl" :: _ -> ()
          | tokens -> push (Insn (T.parse_insn tokens))
        in
        consume (tokenize_line line));
    List.rev !items

  (* [assemble ?entry items] runs both passes and links a loadable image.
     [entry] names the start symbol (default ["_start"], falling back to
     ["main"], falling back to the first text address). *)
  let assemble ?(entry = "_start") (items : program) : Image.t =
    (* Pass 1: layout. *)
    let symbols = Hashtbl.create 64 in
    let text_count = ref 0 and data_bytes = ref 0 in
    let section = ref Text in
    List.iter
      (fun item ->
         match item with
         | Section s -> section := s
         | Label name ->
           let addr =
             match !section with
             | Text -> Layout.text_base + (4 * !text_count)
             | Data -> Layout.data_base + !data_bytes
           in
           if Hashtbl.mem symbols name then fail "duplicate label %S" name;
           Hashtbl.replace symbols name addr
         | Equ (name, v) ->
           if Hashtbl.mem symbols name then fail "duplicate symbol %S" name;
           Hashtbl.replace symbols name v
         | Insn _ ->
           if !section <> Text then fail "instruction outside .text";
           incr text_count
         | Word _ ->
           if !section <> Data then fail ".word outside .data";
           data_bytes := !data_bytes + 4
         | Space n ->
           if !section <> Data then fail ".space outside .data";
           if n < 0 || n land 3 <> 0 then fail ".space %d not word aligned" n;
           data_bytes := !data_bytes + n)
      items;
    (* Pass 2: resolve and encode. *)
    let text = Array.make !text_count 0l in
    let data = Array.make (!data_bytes / 4) 0l in
    let ti = ref 0 and di = ref 0 in
    let section = ref Text in
    let lookup name =
      match Hashtbl.find_opt symbols name with
      | Some a -> a
      | None ->
        (* Numeric "labels" let hand-written tests jump to absolute addresses. *)
        (match int_of_string_opt name with
         | Some a -> a
         | None -> fail "undefined symbol %S" name)
    in
    List.iter
      (fun item ->
         match item with
         | Section s -> section := s
         | Label _ | Equ _ -> ()
         | Insn insn ->
           let pc = Layout.text_base + (4 * !ti) in
           let resolved =
             T.map_label (fun l -> T.resolve_target ~pc ~target:(lookup l)) insn
           in
           text.(!ti) <- T.encode resolved;
           incr ti
         | Word w ->
           data.(!di) <- w;
           incr di
         | Space n ->
           di := !di + (n / 4))
      items;
    let entry_addr =
      match Hashtbl.find_opt symbols entry, Hashtbl.find_opt symbols "main" with
      | Some a, _ -> a
      | None, Some a -> a
      | None, None -> Layout.text_base
    in
    { Image.entry = entry_addr;
      text_base = Layout.text_base;
      text;
      data_base = Layout.data_base;
      data;
      symbols = Hashtbl.fold (fun k v acc -> (k, v) :: acc) symbols [] }

  let assemble_source ?entry text = assemble ?entry (parse_source text)

  (* Pretty-print a program back to assembly text (round-trip tested). *)
  let print_program fmt (items : program) =
    List.iter
      (fun item ->
         match item with
         | Section Text -> Format.fprintf fmt ".text@."
         | Section Data -> Format.fprintf fmt ".data@."
         | Label l -> Format.fprintf fmt "%s:@." l
         | Insn i -> Format.fprintf fmt "  %a@." T.pp_sym i
         | Word w -> Format.fprintf fmt "  .word %ld@." w
         | Space n -> Format.fprintf fmt "  .space %d@." n
         | Equ (n, v) -> Format.fprintf fmt "  .equ %s %d@." n v)
      items

  let program_to_string items = Format.asprintf "%a" print_program items
end

(* Target instantiations. *)

module Straight_target = struct
  type 'lab insn = 'lab Straight_isa.Isa.t

  let parse_insn = Straight_isa.Parser.parse_insn
  let map_label = Straight_isa.Isa.map_label
  let encode = Straight_isa.Encoding.encode

  (* STRAIGHT branch offsets are word-granular and relative to the branch
     instruction itself. *)
  let resolve_target ~pc ~target = (target - pc) / 4
  let pp_sym = Straight_isa.Isa.pp_sym
end

module Riscv_target = struct
  type 'lab insn = 'lab Riscv_isa.Isa.t

  let parse_insn = Riscv_isa.Parser.parse_insn
  let map_label = Riscv_isa.Isa.map_label
  let encode = Riscv_isa.Encoding.encode

  (* RISC-V offsets are byte-granular. *)
  let resolve_target ~pc ~target = target - pc
  let pp_sym = Riscv_isa.Isa.pp_sym
end

module Straight = Make (Straight_target)
module Riscv = Make (Riscv_target)

(* ---------- disassembly ---------- *)

(* [disassemble_with decode pp image] renders the text section one decoded
   instruction per line, with addresses and raw words. *)
let disassemble_with (type i) ~(decode : int32 -> i option)
    ~(pp : Format.formatter -> i -> unit) (image : Image.t) : string =
  let buf = Buffer.create 4096 in
  Array.iteri
    (fun idx w ->
       let addr = image.Image.text_base + (4 * idx) in
       let sym =
         List.filter_map
           (fun (name, a) -> if a = addr then Some name else None)
           image.Image.symbols
         |> List.sort compare
       in
       List.iter (fun name -> Buffer.add_string buf (name ^ ":\n")) sym;
       (match decode w with
        | Some insn ->
          Buffer.add_string buf
            (Format.asprintf "  %08x: %08lx  %a\n" addr w pp insn)
        | None ->
          Buffer.add_string buf
            (Printf.sprintf "  %08x: %08lx  <illegal>\n" addr w)))
    image.Image.text;
  Buffer.contents buf

let disassemble_straight (image : Image.t) : string =
  disassemble_with ~decode:Straight_isa.Encoding.decode
    ~pp:Straight_isa.Isa.pp_resolved image

let disassemble_riscv (image : Image.t) : string =
  disassemble_with ~decode:Riscv_isa.Encoding.decode
    ~pp:Riscv_isa.Isa.pp_resolved image
