(** Generic two-pass assembler + linker, functorized over the target ISA.
    Pass 1 lays out sections and records label addresses; pass 2 resolves
    control-flow targets to PC-relative offsets and encodes machine
    words. *)

exception Asm_error of string

type section = Text | Data

(** A unit of assembly input.  Compilers build [item list] values directly;
    [.s] text is tokenized into the same representation. *)
type 'insn item =
  | Label of string
  | Insn of 'insn                    (** instruction with symbolic targets *)
  | Section of section
  | Word of int32                    (** [.word]: one initialized data word *)
  | Space of int                     (** [.space n]: n zero bytes (aligned) *)
  | Equ of string * int              (** [.equ name value]: absolute symbol *)

(** What the assembler needs to know about a target ISA. *)
module type TARGET = sig
  type 'lab insn

  val parse_insn : string list -> string insn
  (** Parse a tokenized statement into a symbolic instruction. *)

  val map_label : ('a -> 'b) -> 'a insn -> 'b insn

  val encode : int insn -> int32

  val resolve_target : pc:int -> target:int -> int
  (** Turn an absolute [target] address into the offset stored in the
      instruction word (byte-granular for RISC-V, word-granular for
      STRAIGHT). *)

  val pp_sym : Format.formatter -> string insn -> unit
end

val tokenize_line : string -> string list
(** Tokenize one line of assembly: strip [#]/[;] comments, split on blanks
    and commas, and peel off leading [label:] tokens. *)

module Make (T : TARGET) : sig
  type program = string T.insn item list

  val parse_source : string -> program
  (** Convert assembly text into items.
      @raise Asm_error on malformed directives. *)

  val assemble : ?entry:string -> program -> Image.t
  (** Run both passes and link a loadable image.  [entry] names the start
      symbol (default ["_start"], falling back to ["main"], falling back
      to the first text address).
      @raise Asm_error on undefined or duplicate symbols. *)

  val assemble_source : ?entry:string -> string -> Image.t

  val print_program : Format.formatter -> program -> unit
  (** Pretty-print a program back to assembly text (round-trip tested). *)

  val program_to_string : program -> string
end

(** The two target instantiations. *)

module Straight_target : TARGET with type 'lab insn = 'lab Straight_isa.Isa.t
module Riscv_target : TARGET with type 'lab insn = 'lab Riscv_isa.Isa.t

module Straight : sig
  type program = string Straight_isa.Isa.t item list

  val parse_source : string -> program
  val assemble : ?entry:string -> program -> Image.t
  val assemble_source : ?entry:string -> string -> Image.t
  val print_program : Format.formatter -> program -> unit
  val program_to_string : program -> string
end

module Riscv : sig
  type program = string Riscv_isa.Isa.t item list

  val parse_source : string -> program
  val assemble : ?entry:string -> program -> Image.t
  val assemble_source : ?entry:string -> string -> Image.t
  val print_program : Format.formatter -> program -> unit
  val program_to_string : program -> string
end

val disassemble_with :
  decode:(int32 -> 'i option) ->
  pp:(Format.formatter -> 'i -> unit) ->
  Image.t -> string
(** Render the text section one decoded instruction per line, with symbol
    labels, addresses, and raw words. *)

val disassemble_straight : Image.t -> string
val disassemble_riscv : Image.t -> string
