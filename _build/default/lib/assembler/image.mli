(** A loadable program image: the output of the assembler/linker and the
    input of the functional and cycle-level simulators. *)

type t = {
  entry : int;                    (** PC of the first executed instruction *)
  text_base : int;
  text : int32 array;             (** encoded instruction words *)
  data_base : int;
  data : int32 array;             (** initialized data words *)
  symbols : (string * int) list;  (** label -> absolute address *)
}

val find_symbol : t -> string -> int option
val text_end : t -> int
val data_end : t -> int

val fetch_word : t -> int -> int32 option
(** [fetch_word t addr] reads an instruction word; [None] outside .text or
    misaligned. *)
