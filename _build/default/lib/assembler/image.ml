(* A loadable program image: the output of the assembler/linker and the
   input of the functional and cycle-accurate simulators. *)

type t = {
  entry : int;                    (* PC of the first executed instruction *)
  text_base : int;
  text : int32 array;             (* encoded instruction words *)
  data_base : int;
  data : int32 array;             (* initialized data words *)
  symbols : (string * int) list;  (* label -> absolute address *)
}

let find_symbol t name = List.assoc_opt name t.symbols

let text_end t = t.text_base + (4 * Array.length t.text)
let data_end t = t.data_base + (4 * Array.length t.data)

(* [fetch_word t addr] reads an instruction word; [None] outside .text. *)
let fetch_word t addr =
  if addr >= t.text_base && addr < text_end t && addr land 3 = 0 then
    Some t.text.((addr - t.text_base) / 4)
  else None
