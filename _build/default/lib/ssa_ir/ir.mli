(** SSA-form intermediate representation — the role LLVM IR plays in the
    paper (Section IV-A): basic blocks, phi nodes, explicit memory
    operations.  Every value is a 32-bit integer (the evaluation is a
    32-bit integer-only setting, Section V-A). *)

type value = int
(** Dense per-function SSA value id; ids [0 .. nparams-1] are the
    parameters. *)

type block_id = int

type binop =
  | Add | Sub | Mul | Div | Divu | Rem | Remu
  | And | Or | Xor | Shl | Lshr | Ashr

type cmpop = Eq | Ne | Lt | Le | Gt | Ge | Ltu | Geu

type operand =
  | Const of int32
  | Val of value

(** Non-terminator instructions.  Every instruction defines a value; for
    [Store] the defined value is the stored value — mirroring STRAIGHT's
    "every instruction occupies one destination register" and keeping the
    back ends uniform. *)
type inst =
  | Bin of binop * operand * operand
  | Cmp of cmpop * operand * operand
  | Load of operand * int              (** address operand + byte offset *)
  | Store of operand * operand * int   (** value, address, byte offset *)
  | Call of string * operand list
  | Frame_addr of int                  (** frame base + byte offset *)
  | Global_addr of string              (** address of a data symbol *)
  | Phi of (block_id * operand) list   (** one arm per predecessor *)

type terminator =
  | Ret of operand
  | Br of block_id
  | Cond_br of operand * block_id * block_id
      (** if the operand is nonzero, the first target *)

type block = {
  bid : block_id;
  mutable insts : (value * inst) list;  (** program order; phis first *)
  mutable term : terminator;
}

type func = {
  name : string;
  nparams : int;
  mutable nvalues : int;         (** next fresh value id *)
  mutable blocks : block list;   (** entry block first *)
  mutable frame_bytes : int;     (** local (alloca) stack-frame area *)
}

(** One initialized data symbol: [words] then [extra_bytes] of zeros. *)
type data_def = { sym : string; words : int32 list; extra_bytes : int }

type program = {
  funcs : func list;
  data : data_def list;
}

val entry_block : func -> block
val block : func -> block_id -> block
val fresh_value : func -> value
val successors : terminator -> block_id list
val operand_value : operand -> value option

val inst_uses : inst -> value list
(** Values read by an instruction (multiplicity preserved). *)

val term_uses : terminator -> value list
val is_phi : inst -> bool

val is_pure : inst -> bool
(** Pure instructions can be folded, dead-code-eliminated, and sunk;
    division counts as pure because our semantics define division by
    zero. *)

val has_side_effect : inst -> bool

val eval_binop : binop -> int32 -> int32 -> int32
val eval_cmpop : cmpop -> int32 -> int32 -> bool

val binop_name : binop -> string
val cmpop_name : cmpop -> string
val pp_operand : Format.formatter -> operand -> unit
val pp_inst : Format.formatter -> value * inst -> unit
val pp_term : Format.formatter -> terminator -> unit
val pp_func : Format.formatter -> func -> unit
val func_to_string : func -> string
