lib/ssa_ir/analysis.mli: Hashtbl Ir Map Set
