lib/ssa_ir/passes.ml: Analysis Array Hashtbl Int Ir List Set
