lib/ssa_ir/ir.mli: Format
