lib/ssa_ir/passes.mli: Ir
