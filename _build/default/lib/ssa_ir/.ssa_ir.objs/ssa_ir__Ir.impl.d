lib/ssa_ir/ir.ml: Format Int32 Int64 List Printf Straight_isa
