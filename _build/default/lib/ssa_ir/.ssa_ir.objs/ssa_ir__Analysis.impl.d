lib/ssa_ir/analysis.ml: Array Format Fun Hashtbl Int Ir List Map Printf Set String
