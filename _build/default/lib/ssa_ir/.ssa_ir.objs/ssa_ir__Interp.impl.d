lib/ssa_ir/interp.ml: Array Assembler Buffer Char Format Hashtbl Int32 Ir List Printf
