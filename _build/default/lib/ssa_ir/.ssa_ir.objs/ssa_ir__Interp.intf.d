lib/ssa_ir/interp.mli: Ir
