(* SSA-form intermediate representation.

   This plays the role LLVM IR plays in the paper (Section IV-A): an
   SSA-formed program with basic blocks, phi nodes and explicit memory
   operations, from which both the STRAIGHT and the RISC-V back ends
   generate code.  Every value is a 32-bit integer (the evaluation is a
   32-bit, integer-only setting, Section V-A). *)

type value = int
(** Dense per-function SSA value id. *)

type block_id = int

type binop =
  | Add | Sub | Mul | Div | Divu | Rem | Remu
  | And | Or | Xor | Shl | Lshr | Ashr

type cmpop = Eq | Ne | Lt | Le | Gt | Ge | Ltu | Geu

type operand =
  | Const of int32
  | Val of value

(* Non-terminator instructions.  Every instruction defines a value (for
   [Store] the defined value is unused — this mirrors STRAIGHT's "every
   instruction occupies one destination register" and keeps the backend
   uniform). *)
type inst =
  | Bin of binop * operand * operand
  | Cmp of cmpop * operand * operand
  | Load of operand * int              (* address operand + byte offset *)
  | Store of operand * operand * int   (* value, address, byte offset *)
  | Call of string * operand list
  | Frame_addr of int                  (* frame_base + byte offset (alloca) *)
  | Global_addr of string              (* address of a data symbol *)
  | Phi of (block_id * operand) list   (* one entry per predecessor *)

type terminator =
  | Ret of operand
  | Br of block_id
  | Cond_br of operand * block_id * block_id  (* if <> 0 then b1 else b2 *)

type block = {
  bid : block_id;
  mutable insts : (value * inst) list;  (* in program order; phis first *)
  mutable term : terminator;
}

type func = {
  name : string;
  nparams : int;                 (* params are values 0 .. nparams-1 *)
  mutable nvalues : int;         (* next fresh value id *)
  mutable blocks : block list;   (* entry block first *)
  mutable frame_bytes : int;     (* local (alloca) area of the stack frame *)
}

(* A whole program: functions plus initialized global data. *)
type data_def = { sym : string; words : int32 list; extra_bytes : int }

type program = {
  funcs : func list;
  data : data_def list;
}

let entry_block f =
  match f.blocks with
  | b :: _ -> b
  | [] -> invalid_arg "entry_block: empty function"

let block f bid =
  match List.find_opt (fun b -> b.bid = bid) f.blocks with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "block %d not found in %s" bid f.name)

let fresh_value f =
  let v = f.nvalues in
  f.nvalues <- v + 1;
  v

let successors term =
  match term with
  | Ret _ -> []
  | Br b -> [ b ]
  | Cond_br (_, b1, b2) -> [ b1; b2 ]

let operand_value = function
  | Const _ -> None
  | Val v -> Some v

(* Values read by an instruction (phi handled separately by analyses). *)
let inst_uses = function
  | Bin (_, a, b) | Cmp (_, a, b) -> List.filter_map operand_value [ a; b ]
  | Load (a, _) -> List.filter_map operand_value [ a ]
  | Store (v, a, _) -> List.filter_map operand_value [ v; a ]
  | Call (_, args) -> List.filter_map operand_value args
  | Frame_addr _ | Global_addr _ -> []
  | Phi ins -> List.filter_map (fun (_, op) -> operand_value op) ins

let term_uses = function
  | Ret op -> List.filter_map operand_value [ op ]
  | Br _ -> []
  | Cond_br (c, _, _) -> List.filter_map operand_value [ c ]

let is_phi = function Phi _ -> true | _ -> false

(* Pure instructions can be folded, eliminated when dead, and sunk by the
   RE+ optimizer; loads/stores/calls cannot. *)
let is_pure = function
  | Bin ((Div | Divu | Rem | Remu), _, _) ->
    true (* our semantics define division by zero, so it cannot trap *)
  | Bin (_, _, _) | Cmp (_, _, _) | Frame_addr _ | Global_addr _ | Phi _ -> true
  | Load (_, _) | Store (_, _, _) | Call (_, _) -> false

let has_side_effect = function
  | Store (_, _, _) | Call (_, _) -> true
  | _ -> false

(* ---------- evaluation helpers (shared by folding and tests) ---------- *)

let eval_binop op (a : int32) (b : int32) : int32 =
  let module S = Straight_isa.Isa in
  match op with
  | Add -> S.eval_alu S.Add a b
  | Sub -> S.eval_alu S.Sub a b
  | Mul -> S.eval_alu S.Mul a b
  | Div -> S.eval_alu S.Div a b
  | Divu -> S.eval_alu S.Divu a b
  | Rem -> S.eval_alu S.Rem a b
  | Remu -> S.eval_alu S.Remu a b
  | And -> S.eval_alu S.And a b
  | Or -> S.eval_alu S.Or a b
  | Xor -> S.eval_alu S.Xor a b
  | Shl -> S.eval_alu S.Sll a b
  | Lshr -> S.eval_alu S.Srl a b
  | Ashr -> S.eval_alu S.Sra a b

let eval_cmpop op (a : int32) (b : int32) : bool =
  let u x = Int64.logand (Int64.of_int32 x) 0xFFFFFFFFL in
  match op with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> Int32.compare a b < 0
  | Le -> Int32.compare a b <= 0
  | Gt -> Int32.compare a b > 0
  | Ge -> Int32.compare a b >= 0
  | Ltu -> Int64.compare (u a) (u b) < 0
  | Geu -> Int64.compare (u a) (u b) >= 0

(* ---------- printing ---------- *)

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Divu -> "divu"
  | Rem -> "rem" | Remu -> "remu" | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Lshr -> "lshr" | Ashr -> "ashr"

let cmpop_name = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"
  | Ltu -> "ltu" | Geu -> "geu"

let pp_operand fmt = function
  | Const c -> Format.fprintf fmt "%ld" c
  | Val v -> Format.fprintf fmt "%%%d" v

let pp_inst fmt (v, inst) =
  match inst with
  | Bin (op, a, b) ->
    Format.fprintf fmt "%%%d = %s %a, %a" v (binop_name op) pp_operand a
      pp_operand b
  | Cmp (op, a, b) ->
    Format.fprintf fmt "%%%d = cmp %s %a, %a" v (cmpop_name op) pp_operand a
      pp_operand b
  | Load (a, o) -> Format.fprintf fmt "%%%d = load %a + %d" v pp_operand a o
  | Store (x, a, o) ->
    Format.fprintf fmt "%%%d = store %a -> %a + %d" v pp_operand x pp_operand a o
  | Call (f, args) ->
    Format.fprintf fmt "%%%d = call @%s(%a)" v f
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
         pp_operand)
      args
  | Frame_addr o -> Format.fprintf fmt "%%%d = frame + %d" v o
  | Global_addr s -> Format.fprintf fmt "%%%d = global @%s" v s
  | Phi ins ->
    Format.fprintf fmt "%%%d = phi %a" v
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
         (fun fmt (b, op) -> Format.fprintf fmt "[bb%d: %a]" b pp_operand op))
      ins

let pp_term fmt = function
  | Ret op -> Format.fprintf fmt "ret %a" pp_operand op
  | Br b -> Format.fprintf fmt "br bb%d" b
  | Cond_br (c, b1, b2) ->
    Format.fprintf fmt "condbr %a, bb%d, bb%d" pp_operand c b1 b2

let pp_func fmt f =
  Format.fprintf fmt "func @%s(%d params), frame %d bytes@." f.name f.nparams
    f.frame_bytes;
  List.iter
    (fun b ->
       Format.fprintf fmt "bb%d:@." b.bid;
       List.iter (fun i -> Format.fprintf fmt "  %a@." pp_inst i) b.insts;
       Format.fprintf fmt "  %a@." pp_term b.term)
    f.blocks

let func_to_string f = Format.asprintf "%a" pp_func f
