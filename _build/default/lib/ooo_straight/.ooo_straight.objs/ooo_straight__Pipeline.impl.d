lib/ooo_straight/pipeline.ml: Array Assembler Iss List Ooo_common Straight_isa
