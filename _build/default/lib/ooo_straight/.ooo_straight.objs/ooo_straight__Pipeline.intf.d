lib/ooo_straight/pipeline.mli: Assembler Iss Ooo_common
