lib/iss/trace.mli:
