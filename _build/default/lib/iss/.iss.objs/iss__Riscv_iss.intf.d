lib/iss/riscv_iss.mli: Assembler Trace
