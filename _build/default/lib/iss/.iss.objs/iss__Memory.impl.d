lib/iss/memory.ml: Array Assembler Buffer Char Hashtbl Int32 Printf
