lib/iss/straight_iss.ml: Array Assembler Format Int32 List Memory Straight_isa Trace
