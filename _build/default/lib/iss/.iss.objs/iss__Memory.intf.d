lib/iss/memory.mli: Assembler
