lib/iss/riscv_iss.ml: Array Assembler Format Int32 List Memory Riscv_isa Trace
