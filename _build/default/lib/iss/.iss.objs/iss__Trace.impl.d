lib/iss/trace.ml:
