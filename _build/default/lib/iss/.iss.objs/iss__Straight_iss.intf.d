lib/iss/straight_iss.mli: Assembler Memory Trace
