(* Normalized dynamic-instruction records.

   The functional simulators retire instructions in program order and emit
   one [uop] per retired instruction.  The cycle-accurate models replay this
   correct-path trace (oracle outcomes for branches and memory addresses)
   while fetching wrong-path instructions from the static image — see
   DESIGN.md "Substitutions" for the wrong-path modelling note. *)

type fu_class =
  | FU_alu          (* 1-cycle integer op (incl. RMOV and NOP slots) *)
  | FU_mul
  | FU_div
  | FU_branch       (* conditional branch / jump resolution unit *)
  | FU_load
  | FU_store

type ctrl =
  | Not_ctrl
  | Cond of { taken : bool; target : int }   (* target = taken destination *)
  | Uncond of { target : int; is_call : bool; is_ret : bool }

type uop = {
  pc : int;
  fu : fu_class;
  (* STRAIGHT dependence representation: source distances (0 = zero reg,
     i.e. no dependence).  Empty for RISC-V traces. *)
  srcs_dist : int array;
  (* RISC-V dependence representation: source logical registers (x0 = no
     dependence) and destination (0 = none).  Empty/0 for STRAIGHT traces. *)
  srcs_reg : int array;
  dest_reg : int;
  has_dest : bool;        (* STRAIGHT: always true; RISC-V: rd <> x0 *)
  is_rmov : bool;         (* instruction-mix bucket of Fig. 15 *)
  is_nop : bool;
  is_spadd : bool;        (* SPADD: serialized in-order at decode (III-B) *)
  mem_addr : int;         (* byte address for load/store; 0 otherwise *)
  ctrl : ctrl;
}

let kind_label u =
  match u.fu with
  | FU_load -> "LD"
  | FU_store -> "ST"
  | FU_branch -> "Jump+Branch"
  | FU_mul | FU_div -> "ALU"
  | FU_alu -> if u.is_rmov then "RMOV" else if u.is_nop then "NOP" else "ALU"

(* A completed program run. *)
type run = {
  output : string;             (* MMIO console output *)
  retired : int;               (* dynamic instruction count (HALT included) *)
  trace : uop array;           (* empty unless tracing was requested *)
  dist_histogram : int array;  (* source-distance counts, index = distance;
                                  only filled for STRAIGHT runs *)
}
