lib/riscv_cc/codegen.mli: Assembler Hashtbl Riscv_isa Ssa_ir
