lib/riscv_cc/codegen.ml: Array Assembler Format Hashtbl Int32 List Option Printf Riscv_isa Ssa_ir
