lib/riscv_isa/parser.ml: Format Int32 Isa List String
