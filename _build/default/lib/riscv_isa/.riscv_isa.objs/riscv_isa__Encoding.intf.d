lib/riscv_isa/encoding.mli: Isa
