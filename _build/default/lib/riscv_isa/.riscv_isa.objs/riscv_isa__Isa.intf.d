lib/riscv_isa/isa.mli: Format
