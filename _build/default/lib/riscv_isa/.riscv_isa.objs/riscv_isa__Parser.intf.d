lib/riscv_isa/parser.mli: Isa
