lib/riscv_isa/encoding.ml: Format Int32 Isa Option
