lib/riscv_isa/isa.ml: Format Hashtbl Int32 Int64
