(** The RV32IM subset used by the superscalar baseline (the paper's
    counterpart core, Section V-A): user-level integer + M-extension
    instructions with standard RISC-V semantics. *)

type reg = int
(** Architectural register x0..x31; x0 is hard-wired to zero. *)

type branch_cond = Beq | Bne | Blt | Bge | Bltu | Bgeu

type alu_op =
  | Add | Sub | Sll | Slt | Sltu | Xor | Srl | Sra | Or | And
  | Mul | Mulh | Mulhsu | Mulhu | Div | Divu | Rem | Remu

type alui_op = Addi | Slti | Sltiu | Xori | Ori | Andi | Slli | Srli | Srai

(** Instructions, parameterized by the code-target representation:
    [string] labels in symbolic assembly, [int] byte-granular PC-relative
    offsets once resolved. *)
type 'lab t =
  | Lui of reg * int32                (** rd := imm20 lsl 12 *)
  | Auipc of reg * int32
  | Jal of reg * 'lab
  | Jalr of reg * reg * int           (** rd := PC+4; PC := (rs1+imm) & ~1 *)
  | Branch of branch_cond * reg * reg * 'lab
  | Lw of reg * reg * int             (** rd := mem32[rs1 + imm] *)
  | Sw of reg * reg * int             (** mem32[rs1 + imm] := rs2 *)
  | Alui of alui_op * reg * reg * int (** rd, rs1, imm12 *)
  | Alu of alu_op * reg * reg * reg   (** rd, rs1, rs2 *)
  | Ebreak                            (** used as HALT in our environment *)

type resolved = int t

type kind = Kalu | Kmul | Kdiv | Kload | Kstore | Kbranch | Kjump | Khalt

val kind : 'lab t -> kind

val dest : 'lab t -> reg option
(** Destination register, if any ([x0] writes are discarded). *)

val sources : 'lab t -> reg list
(** Source registers read by the instruction (x0 reads included). *)

val map_label : ('a -> 'b) -> 'a t -> 'b t

val eval_alu : alu_op -> int32 -> int32 -> int32
(** RV32IM semantics: 5-bit shifts, division by zero yields [-1]/dividend,
    [min_int / -1 = min_int]. *)

val eval_branch : branch_cond -> int32 -> int32 -> bool

val reg_name : reg -> string
(** ABI name ([zero], [ra], [sp], [t0], [a0], [s0], ...). *)

val reg_of_name : string -> reg option
(** Accepts ABI names and [x0]..[x31]. *)

val branch_name : branch_cond -> string
val alu_name : alu_op -> string
val alui_name : alui_op -> string
val alu_of_alui : alui_op -> alu_op

val pp : (Format.formatter -> 'lab -> unit) -> Format.formatter -> 'lab t -> unit
val pp_sym : Format.formatter -> string t -> unit
val pp_resolved : Format.formatter -> resolved -> unit
val to_string_sym : string t -> string

val insn_bytes : int
