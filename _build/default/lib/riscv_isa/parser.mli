(** Parser for one RV32IM assembly statement in GNU-style syntax:
    [addi a0, a0, 1], [lw a1, 8(sp)], [beq a0, zero, label], plus the
    pseudo-instructions [li] (small immediates), [mv], [j], [ret], [nop]. *)

exception Parse_error of string

val parse_insn : string list -> string Isa.t
(** [parse_insn tokens] parses a mnemonic and its comma-stripped operands.
    @raise Parse_error on malformed input. *)
