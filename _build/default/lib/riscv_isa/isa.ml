(* RV32IM subset used by the superscalar baseline (Section V-A: the paper's
   counterpart is an in-house cycle-accurate RV32IM core fed by clang/LLVM).
   We implement the user-level integer + M-extension instructions our
   compiler back-end emits, with the standard RISC-V encodings. *)

type reg = int
(** Architectural register x0..x31. x0 is hard-wired to zero. *)

type branch_cond = Beq | Bne | Blt | Bge | Bltu | Bgeu

type alu_op =
  | Add | Sub | Sll | Slt | Sltu | Xor | Srl | Sra | Or | And
  | Mul | Mulh | Mulhsu | Mulhu | Div | Divu | Rem | Remu

type alui_op = Addi | Slti | Sltiu | Xori | Ori | Andi | Slli | Srli | Srai

(* ['lab] is [string] in symbolic assembly, [int] (byte-granular PC-relative
   offset) once resolved. *)
type 'lab t =
  | Lui of reg * int32                (* rd := imm20 lsl 12 *)
  | Auipc of reg * int32
  | Jal of reg * 'lab
  | Jalr of reg * reg * int           (* rd := PC+4; PC := (rs1 + imm) & ~1 *)
  | Branch of branch_cond * reg * reg * 'lab
  | Lw of reg * reg * int             (* rd := mem32[rs1 + imm] *)
  | Sw of reg * reg * int             (* mem32[rs1 + imm] := rs2 *)
  | Alui of alui_op * reg * reg * int (* rd, rs1, imm12 *)
  | Alu of alu_op * reg * reg * reg   (* rd, rs1, rs2 *)
  | Ebreak                            (* used as HALT in our environment *)

type resolved = int t

type kind = Kalu | Kmul | Kdiv | Kload | Kstore | Kbranch | Kjump | Khalt

let kind = function
  | Alu ((Mul | Mulh | Mulhsu | Mulhu), _, _, _) -> Kmul
  | Alu ((Div | Divu | Rem | Remu), _, _, _) -> Kdiv
  | Alu (_, _, _, _) | Alui (_, _, _, _) | Lui (_, _) | Auipc (_, _) -> Kalu
  | Lw (_, _, _) -> Kload
  | Sw (_, _, _) -> Kstore
  | Branch (_, _, _, _) -> Kbranch
  | Jal (_, _) | Jalr (_, _, _) -> Kjump
  | Ebreak -> Khalt

(* Destination register, if any ([x0] writes are discarded). *)
let dest = function
  | Lui (rd, _) | Auipc (rd, _) | Jal (rd, _) | Jalr (rd, _, _)
  | Lw (rd, _, _) | Alui (_, rd, _, _) | Alu (_, rd, _, _) ->
    if rd = 0 then None else Some rd
  | Branch (_, _, _, _) | Sw (_, _, _) | Ebreak -> None

(* Source registers read by the instruction (x0 reads included; they are
   always ready). *)
let sources = function
  | Lui (_, _) | Auipc (_, _) | Jal (_, _) | Ebreak -> []
  | Jalr (_, rs1, _) | Lw (_, rs1, _) | Alui (_, _, rs1, _) -> [ rs1 ]
  | Branch (_, rs1, rs2, _) | Sw (rs2, rs1, _) -> [ rs1; rs2 ]
  | Alu (_, _, rs1, rs2) -> [ rs1; rs2 ]

let map_label f = function
  | Jal (rd, l) -> Jal (rd, f l)
  | Branch (c, a, b, l) -> Branch (c, a, b, f l)
  | Lui (rd, i) -> Lui (rd, i)
  | Auipc (rd, i) -> Auipc (rd, i)
  | Jalr (rd, rs, i) -> Jalr (rd, rs, i)
  | Lw (rd, rs, i) -> Lw (rd, rs, i)
  | Sw (rs2, rs1, i) -> Sw (rs2, rs1, i)
  | Alui (op, rd, rs, i) -> Alui (op, rd, rs, i)
  | Alu (op, rd, rs1, rs2) -> Alu (op, rd, rs1, rs2)
  | Ebreak -> Ebreak

let eval_alu op (a : int32) (b : int32) : int32 =
  let sh = Int32.to_int (Int32.logand b 31l) in
  let u x = Int64.logand (Int64.of_int32 x) 0xFFFFFFFFL in
  match op with
  | Add -> Int32.add a b
  | Sub -> Int32.sub a b
  | Sll -> Int32.shift_left a sh
  | Slt -> if Int32.compare a b < 0 then 1l else 0l
  | Sltu -> if Int64.compare (u a) (u b) < 0 then 1l else 0l
  | Xor -> Int32.logxor a b
  | Srl -> Int32.shift_right_logical a sh
  | Sra -> Int32.shift_right a sh
  | Or -> Int32.logor a b
  | And -> Int32.logand a b
  | Mul -> Int32.mul a b
  | Mulh -> Int64.to_int32 (Int64.shift_right (Int64.mul (Int64.of_int32 a) (Int64.of_int32 b)) 32)
  | Mulhsu -> Int64.to_int32 (Int64.shift_right (Int64.mul (Int64.of_int32 a) (u b)) 32)
  | Mulhu -> Int64.to_int32 (Int64.shift_right (Int64.mul (u a) (u b)) 32)
  | Div ->
    if b = 0l then -1l
    else if a = Int32.min_int && b = -1l then Int32.min_int
    else Int32.div a b
  | Divu -> if b = 0l then -1l else Int64.to_int32 (Int64.div (u a) (u b))
  | Rem ->
    if b = 0l then a
    else if a = Int32.min_int && b = -1l then 0l
    else Int32.rem a b
  | Remu -> if b = 0l then a else Int64.to_int32 (Int64.rem (u a) (u b))

let eval_branch cond (a : int32) (b : int32) : bool =
  let u x = Int64.logand (Int64.of_int32 x) 0xFFFFFFFFL in
  match cond with
  | Beq -> a = b
  | Bne -> a <> b
  | Blt -> Int32.compare a b < 0
  | Bge -> Int32.compare a b >= 0
  | Bltu -> Int64.compare (u a) (u b) < 0
  | Bgeu -> Int64.compare (u a) (u b) >= 0

(* ABI register names, used by the printer and parser. *)
let reg_name r =
  match r with
  | 0 -> "zero" | 1 -> "ra" | 2 -> "sp" | 3 -> "gp" | 4 -> "tp"
  | 5 -> "t0" | 6 -> "t1" | 7 -> "t2" | 8 -> "s0" | 9 -> "s1"
  | r when r >= 10 && r <= 17 -> "a" ^ string_of_int (r - 10)
  | r when r >= 18 && r <= 27 -> "s" ^ string_of_int (r - 16)
  | r when r >= 28 && r <= 31 -> "t" ^ string_of_int (r - 25)
  | r -> "x" ^ string_of_int r

let reg_of_name =
  let table = Hashtbl.create 64 in
  for r = 0 to 31 do
    Hashtbl.replace table (reg_name r) r;
    Hashtbl.replace table ("x" ^ string_of_int r) r
  done;
  fun s -> Hashtbl.find_opt table s

let branch_name = function
  | Beq -> "beq" | Bne -> "bne" | Blt -> "blt" | Bge -> "bge"
  | Bltu -> "bltu" | Bgeu -> "bgeu"

let alu_name = function
  | Add -> "add" | Sub -> "sub" | Sll -> "sll" | Slt -> "slt" | Sltu -> "sltu"
  | Xor -> "xor" | Srl -> "srl" | Sra -> "sra" | Or -> "or" | And -> "and"
  | Mul -> "mul" | Mulh -> "mulh" | Mulhsu -> "mulhsu" | Mulhu -> "mulhu"
  | Div -> "div" | Divu -> "divu" | Rem -> "rem" | Remu -> "remu"

let alui_name = function
  | Addi -> "addi" | Slti -> "slti" | Sltiu -> "sltiu" | Xori -> "xori"
  | Ori -> "ori" | Andi -> "andi" | Slli -> "slli" | Srli -> "srli"
  | Srai -> "srai"

let alu_of_alui = function
  | Addi -> Add | Slti -> Slt | Sltiu -> Sltu | Xori -> Xor | Ori -> Or
  | Andi -> And | Slli -> Sll | Srli -> Srl | Srai -> Sra

let pp pp_lab fmt insn =
  let r = reg_name in
  match insn with
  | Lui (rd, i) -> Format.fprintf fmt "lui %s, %ld" (r rd) i
  | Auipc (rd, i) -> Format.fprintf fmt "auipc %s, %ld" (r rd) i
  | Jal (rd, l) -> Format.fprintf fmt "jal %s, %a" (r rd) pp_lab l
  | Jalr (rd, rs, i) -> Format.fprintf fmt "jalr %s, %s, %d" (r rd) (r rs) i
  | Branch (c, a, b, l) ->
    Format.fprintf fmt "%s %s, %s, %a" (branch_name c) (r a) (r b) pp_lab l
  | Lw (rd, rs, i) -> Format.fprintf fmt "lw %s, %d(%s)" (r rd) i (r rs)
  | Sw (rs2, rs1, i) -> Format.fprintf fmt "sw %s, %d(%s)" (r rs2) i (r rs1)
  | Alui (op, rd, rs, i) ->
    Format.fprintf fmt "%s %s, %s, %d" (alui_name op) (r rd) (r rs) i
  | Alu (op, rd, rs1, rs2) ->
    Format.fprintf fmt "%s %s, %s, %s" (alu_name op) (r rd) (r rs1) (r rs2)
  | Ebreak -> Format.fprintf fmt "ebreak"

let pp_sym fmt i = pp Format.pp_print_string fmt i
let pp_resolved fmt i = pp (fun fmt o -> Format.fprintf fmt "%+d" o) fmt i
let to_string_sym i = Format.asprintf "%a" pp_sym i

let insn_bytes = 4
