(** Standard RV32IM binary encodings (R/I/S/B/U/J formats). *)

exception Encode_error of string

val encode : Isa.resolved -> int32
(** [encode insn] produces the 32-bit RISC-V machine word.
    @raise Encode_error when an immediate does not fit its field or a
    branch/jump offset is odd. *)

val decode : int32 -> Isa.resolved option
(** [decode w] is the inverse of {!encode}; [None] on unsupported words. *)
