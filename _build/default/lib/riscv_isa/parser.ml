(* Parser for one RV32IM assembly statement, already split into tokens by the
   shared assembler front end.  Accepts the usual GNU-style syntax:
   `addi a0, a0, 1`, `lw a1, 8(sp)`, `beq a0, zero, label`. *)

open Isa

exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

let parse_reg tok =
  match reg_of_name (String.lowercase_ascii tok) with
  | Some r -> r
  | None -> fail "unknown register %S" tok

let parse_imm tok =
  match int_of_string_opt tok with
  | Some i -> i
  | None -> fail "expected immediate, got %S" tok

(* "8(sp)" -> (8, reg sp) *)
let parse_mem tok =
  match String.index_opt tok '(' with
  | Some i when String.length tok > i + 1 && tok.[String.length tok - 1] = ')' ->
    let off = if i = 0 then 0 else parse_imm (String.sub tok 0 i) in
    let r = parse_reg (String.sub tok (i + 1) (String.length tok - i - 2)) in
    (off, r)
  | _ -> fail "expected mem operand like 8(sp), got %S" tok

let branches =
  [ ("beq", Beq); ("bne", Bne); ("blt", Blt); ("bge", Bge);
    ("bltu", Bltu); ("bgeu", Bgeu) ]

let alus =
  [ ("add", Add); ("sub", Sub); ("sll", Sll); ("slt", Slt); ("sltu", Sltu);
    ("xor", Xor); ("srl", Srl); ("sra", Sra); ("or", Or); ("and", And);
    ("mul", Mul); ("mulh", Mulh); ("mulhsu", Mulhsu); ("mulhu", Mulhu);
    ("div", Div); ("divu", Divu); ("rem", Rem); ("remu", Remu) ]

let aluis =
  [ ("addi", Addi); ("slti", Slti); ("sltiu", Sltiu); ("xori", Xori);
    ("ori", Ori); ("andi", Andi); ("slli", Slli); ("srli", Srli);
    ("srai", Srai) ]

(* [parse_insn tokens] parses a mnemonic and its comma-stripped operands.
   Raises [Parse_error] on malformed input. *)
let parse_insn (tokens : string list) : string t =
  match tokens with
  | [] -> fail "empty instruction"
  | mnemonic :: operands ->
    let m = String.lowercase_ascii mnemonic in
    (match List.assoc_opt m branches, List.assoc_opt m alus,
           List.assoc_opt m aluis, operands with
     | Some c, _, _, [ a; b; l ] -> Branch (c, parse_reg a, parse_reg b, l)
     | Some _, _, _, _ -> fail "%s expects rs1, rs2, label" m
     | _, Some op, _, [ rd; rs1; rs2 ] ->
       Alu (op, parse_reg rd, parse_reg rs1, parse_reg rs2)
     | _, Some _, _, _ -> fail "%s expects rd, rs1, rs2" m
     | _, _, Some op, [ rd; rs1; i ] ->
       Alui (op, parse_reg rd, parse_reg rs1, parse_imm i)
     | _, _, Some _, _ -> fail "%s expects rd, rs1, imm" m
     | None, None, None, _ ->
       (match m, operands with
        | "lui", [ rd; i ] -> Lui (parse_reg rd, Int32.of_int (parse_imm i))
        | "auipc", [ rd; i ] -> Auipc (parse_reg rd, Int32.of_int (parse_imm i))
        | "jal", [ rd; l ] -> Jal (parse_reg rd, l)
        | "jal", [ l ] -> Jal (1, l)
        | "j", [ l ] -> Jal (0, l)
        | "jalr", [ rd; rs; i ] -> Jalr (parse_reg rd, parse_reg rs, parse_imm i)
        | "ret", [] -> Jalr (0, 1, 0)
        | "lw", [ rd; mem ] ->
          let off, rs = parse_mem mem in
          Lw (parse_reg rd, rs, off)
        | "sw", [ rs2; mem ] ->
          let off, rs1 = parse_mem mem in
          Sw (parse_reg rs2, rs1, off)
        | "mv", [ rd; rs ] -> Alui (Addi, parse_reg rd, parse_reg rs, 0)
        | "li", [ rd; i ] ->
          let v = parse_imm i in
          if v >= -2048 && v < 2048 then Alui (Addi, parse_reg rd, 0, v)
          else fail "li immediate %d too large for a single addi" v
        | "nop", [] -> Alui (Addi, 0, 0, 0)
        | "ebreak", [] -> Ebreak
        | _ -> fail "unknown or malformed instruction %S" (String.concat " " tokens)))
