lib/straight_cc/codegen.mli: Assembler Hashtbl Ssa_ir Straight_isa
