lib/straight_cc/codegen.ml: Array Assembler Format Hashtbl Int32 List Option Printf Ssa_ir Straight_isa String
