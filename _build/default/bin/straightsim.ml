(* Cycle-level simulation driver: compile a MiniC file (or a built-in
   workload) for a chosen Table-I model and report timing statistics.

     straightsim [-model ss-2way|straight-2way|ss-4way|straight-4way]
                 [-target straight|straight-raw|riscv] [-tage] [-ideal]
                 [-maxdist N] [-workload dhrystone|coremark|fib|sort] [FILE] *)

module Params = Ooo_common.Params
module Exp = Straight_core.Experiment
module Engine = Ooo_common.Engine

let () =
  let model_name = ref "straight-4way" in
  let target_name = ref "straight" in
  let tage = ref false in
  let ideal = ref false in
  let maxdist = ref Params.straight_max_dist in
  let workload = ref "" in
  let file = ref "" in
  let spec =
    [ ("-model", Arg.Set_string model_name, "ss-2way|straight-2way|ss-4way|straight-4way");
      ("-target", Arg.Set_string target_name, "straight|straight-raw|riscv");
      ("-tage", Arg.Set tage, "use the TAGE branch predictor");
      ("-ideal", Arg.Set ideal, "idealize misprediction recovery (fig 13)");
      ("-maxdist", Arg.Set_int maxdist, "maximum source distance (STRAIGHT)");
      ("-workload", Arg.Set_string workload, "built-in workload name") ]
  in
  Arg.parse spec (fun f -> file := f) "straightsim [options] [FILE]";
  let model =
    match !model_name with
    | "ss-2way" -> Params.ss_2way
    | "straight-2way" -> Params.straight_2way
    | "ss-4way" -> Params.ss_4way
    | "straight-4way" -> Params.straight_4way
    | m -> Printf.eprintf "unknown model %s\n" m; exit 2
  in
  let model = if !tage then Params.with_tage model else model in
  let model = if !ideal then Params.with_ideal_recovery model else model in
  let target =
    match !target_name with
    | "straight" -> Exp.Straight_re
    | "straight-raw" -> Exp.Straight_raw
    | "riscv" -> Exp.Riscv
    | t -> Printf.eprintf "unknown target %s\n" t; exit 2
  in
  (match target, model.Params.rename with
   | Exp.Riscv, Params.Rp
   | (Exp.Straight_re | Exp.Straight_raw), (Params.Rmt _ | Params.Rmt_checkpoint _) ->
     Printf.eprintf "warning: %s target on %s model mixes the ISA and the core\n"
       !target_name model.Params.name
   | _ -> ());
  let w =
    match !workload, !file with
    | "dhrystone", _ -> Workloads.dhrystone ~iterations:100 ()
    | "coremark", _ -> Workloads.coremark ~iterations:2 ()
    | "fib", _ -> Workloads.fib ()
    | "sort", _ -> Workloads.sort ()
    | "", f when f <> "" ->
      { Workloads.name = Filename.basename f;
        source = In_channel.with_open_text f In_channel.input_all;
        iterations = 1 }
    | _ ->
      prerr_endline "need a FILE or -workload"; exit 2
  in
  let r = Exp.run ~max_dist:!maxdist ~model ~target w in
  let s = r.Exp.stats in
  Printf.printf "model        : %s\n" r.Exp.model;
  Printf.printf "target       : %s\n" (Exp.target_label r.Exp.target);
  Printf.printf "cycles       : %d\n" r.Exp.cycles;
  Printf.printf "instructions : %d\n" r.Exp.committed;
  Printf.printf "IPC          : %.3f\n" r.Exp.ipc;
  Printf.printf "branch misp  : %d (+%d returns)\n" s.Engine.branch_mispredicts
    s.Engine.return_mispredicts;
  Printf.printf "memdep viols : %d\n" s.Engine.memdep_violations;
  Printf.printf "walk stalls  : %d cycles\n" s.Engine.walk_stall_cycles;
  Printf.printf "L1I misses   : %d\n" s.Engine.l1i_misses;
  Printf.printf "L1D misses   : %d / %d accesses\n" s.Engine.l1d_misses
    s.Engine.l1d_accesses;
  Printf.printf "wrong-path   : %d fetched\n" s.Engine.wrong_path_fetched;
  Printf.printf "mix          : %s\n"
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) s.Engine.mix));
  print_string "--- program output ---\n";
  print_string r.Exp.output
