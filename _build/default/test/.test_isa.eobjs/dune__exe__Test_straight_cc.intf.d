test/test_straight_cc.mli:
