test/test_analysis.ml: Alcotest Array Assembler List Minic Printf QCheck2 QCheck_alcotest Riscv_cc Riscv_isa Ssa_ir Straight_cc Straight_isa String Workloads
