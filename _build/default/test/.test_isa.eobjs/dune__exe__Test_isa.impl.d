test/test_isa.ml: Alcotest Format Int32 List QCheck2 QCheck_alcotest Riscv_isa Straight_isa String
