test/test_workloads.ml: Alcotest Array Iss List Minic Ooo_common Power Printf Ssa_ir Straight_cc Straight_core String Workloads
