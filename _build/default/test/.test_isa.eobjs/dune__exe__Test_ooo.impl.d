test/test_ooo.ml: Alcotest Array Iss List Minic Ooo_common Ooo_riscv Ooo_straight Printf Riscv_cc Ssa_ir Straight_cc String Workloads
