test/test_power.ml: Alcotest List Ooo_common Power Printf Straight_core Workloads
