test/test_straight_cc.ml: Alcotest Assembler Iss List Minic Printf Ssa_ir Straight_cc Straight_isa String Workloads
