test/test_backends.ml: Alcotest Assembler Buffer Iss List Minic Printexc Printf QCheck2 QCheck_alcotest Riscv_cc Ssa_ir Straight_cc Straight_isa String
