test/test_riscv_cc.mli:
