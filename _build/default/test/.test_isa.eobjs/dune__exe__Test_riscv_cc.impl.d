test/test_riscv_cc.ml: Alcotest Assembler Iss List Minic Printf Riscv_cc Riscv_isa Ssa_ir Straight_cc String Workloads
