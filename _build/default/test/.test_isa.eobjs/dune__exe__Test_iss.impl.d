test/test_iss.ml: Alcotest Array Assembler Iss List Minic Printf Ssa_ir Straight_cc Straight_isa
