(* Workload-level integration tests: the Dhrystone-like and CoreMark-like
   benchmarks must compile and produce identical output on the IR
   interpreter and on all compiled targets, and key paper shapes must hold
   on the cycle models. *)

module Ir = Ssa_ir.Ir
module Params = Ooo_common.Params
module Exp = Straight_core.Experiment
module Engine = Ooo_common.Engine

let interp src =
  let p = Minic.Lower.compile src in
  List.iter Ssa_ir.Passes.optimize p.Ir.funcs;
  fst (Ssa_ir.Interp.run p)

let straight_out ~level ~max_dist src =
  let image, _ = Straight_core.Compile.to_straight ~max_dist ~level src in
  (Iss.Straight_iss.run image).Iss.Trace.output

let riscv_out src =
  let image = Straight_core.Compile.to_riscv src in
  (Iss.Riscv_iss.run image).Iss.Trace.output

let check_workload (w : Workloads.t) =
  let reference = interp w.Workloads.source in
  Alcotest.(check bool)
    (w.Workloads.name ^ " produces output") true
    (String.length reference > 0);
  List.iter
    (fun (label, out) ->
       Alcotest.(check string) (w.Workloads.name ^ " " ^ label) reference out)
    [ ("straight re+ 31",
       straight_out ~level:Straight_cc.Codegen.Re_plus ~max_dist:31
         w.Workloads.source);
      ("straight raw 31",
       straight_out ~level:Straight_cc.Codegen.Raw ~max_dist:31
         w.Workloads.source);
      ("straight re+ 1023",
       straight_out ~level:Straight_cc.Codegen.Re_plus ~max_dist:1023
         w.Workloads.source);
      ("riscv", riscv_out w.Workloads.source) ]

let test_dhrystone () = check_workload (Workloads.dhrystone ~iterations:5 ())
let test_coremark () = check_workload (Workloads.coremark ~iterations:1 ())
let test_micro_kernels () =
  check_workload (Workloads.fib ~n:12 ());
  check_workload (Workloads.iota ~n:20 ());
  check_workload (Workloads.sort ~n:16 ());
  check_workload (Workloads.quicksort ~n:40 ());
  check_workload (Workloads.pointer_chase ~nodes:64 ~hops:100 ())

(* determinstic results for the same iteration count *)
let test_workload_determinism () =
  let a = interp (Workloads.coremark ~iterations:1 ()).Workloads.source in
  let b = interp (Workloads.coremark ~iterations:1 ()).Workloads.source in
  Alcotest.(check string) "coremark deterministic" a b

(* ---------- paper-shape assertions on the cycle models ---------- *)

let coremark2 = Workloads.coremark ~iterations:2 ()

let test_shape_raw_worse_than_re () =
  let raw =
    Exp.run ~model:Params.straight_4way ~target:Exp.Straight_raw coremark2
  in
  let re =
    Exp.run ~model:Params.straight_4way ~target:Exp.Straight_re coremark2
  in
  Alcotest.(check bool) "RE+ retires fewer instructions" true
    (re.Exp.committed < raw.Exp.committed);
  Alcotest.(check bool) "RE+ is faster" true (re.Exp.cycles <= raw.Exp.cycles)

let test_shape_straight_wins_4way_coremark () =
  (* the headline: STRAIGHT RE+ beats same-size SS on CoreMark at 4-way *)
  let ss = Exp.run ~model:Params.ss_4way ~target:Exp.Riscv coremark2 in
  let st =
    Exp.run ~model:Params.straight_4way ~target:Exp.Straight_re coremark2
  in
  Alcotest.(check bool)
    (Printf.sprintf "STRAIGHT(RE+) %d < SS %d cycles" st.Exp.cycles ss.Exp.cycles)
    true (st.Exp.cycles < ss.Exp.cycles)

let test_shape_no_penalty_gap () =
  (* Fig. 13: removing the misprediction penalty must speed up SS, and
     STRAIGHT must sit between SS and SS-no-penalty *)
  let ss = Exp.run ~model:Params.ss_4way ~target:Exp.Riscv coremark2 in
  let ideal =
    Exp.run ~model:(Params.with_ideal_recovery Params.ss_4way) ~target:Exp.Riscv
      coremark2
  in
  let st =
    Exp.run ~model:Params.straight_4way ~target:Exp.Straight_re coremark2
  in
  Alcotest.(check bool) "no-penalty is fastest" true
    (ideal.Exp.cycles < ss.Exp.cycles && ideal.Exp.cycles < st.Exp.cycles);
  Alcotest.(check bool) "STRAIGHT between SS and ideal" true
    (st.Exp.cycles < ss.Exp.cycles)

let test_shape_distance_distribution () =
  (* Fig. 16: ~30-50% of operands at distance 1, >90% within 32 *)
  let image, _ =
    Straight_core.Compile.to_straight ~max_dist:1023
      ~level:Straight_cc.Codegen.Re_plus coremark2.Workloads.source
  in
  let r =
    Iss.Straight_iss.run
      ~config:{ Iss.Straight_iss.collect_trace = false; collect_dist = true;
                max_insns = 50_000_000 }
      image
  in
  let hist = r.Iss.Trace.dist_histogram in
  let total = float_of_int (Array.fold_left ( + ) 0 hist) in
  let frac_1 = float_of_int hist.(1) /. total in
  let within_32 = ref 0 in
  for d = 0 to 32 do within_32 := !within_32 + hist.(d) done;
  Alcotest.(check bool)
    (Printf.sprintf "distance-1 fraction %.2f in [0.2, 0.6]" frac_1)
    true (frac_1 > 0.2 && frac_1 < 0.6);
  Alcotest.(check bool) "90%+ within distance 32" true
    (float_of_int !within_32 /. total > 0.9)

let test_shape_power () =
  (* Fig. 17: rename power nearly removed; regfile/other rise modestly *)
  let w = Workloads.sort ~n:24 () in
  let ss = Exp.run ~model:Params.ss_2way ~target:Exp.Riscv w in
  let st = Exp.run ~model:Params.straight_2way ~target:Exp.Straight_re w in
  let ss_rep = Power.analyze ~cycles:ss.Exp.cycles ss.Exp.stats.Engine.activity in
  let st_rep = Power.analyze ~cycles:st.Exp.cycles st.Exp.stats.Engine.activity in
  Alcotest.(check bool) "rename power nearly removed" true
    (st_rep.Power.rename < 0.2 *. ss_rep.Power.rename);
  (* the register-file rise tracks the RMOV share of the kernel: the
     paper reports < 18 % on its RTL test code; across our kernels it
     ranges ~5-50 % (see EXPERIMENTS.md) *)
  Alcotest.(check bool) "regfile rises less than 60%" true
    (st_rep.Power.regfile < 1.6 *. ss_rep.Power.regfile);
  Alcotest.(check bool) "other rises less than 25%" true
    (st_rep.Power.other < 1.25 *. ss_rep.Power.other);
  (* frequency scaling is monotone and superlinear *)
  Alcotest.(check bool) "scaling superlinear" true
    (Power.scale_power 1.0 4.0 > 4.0)

let test_maxdist_sweep_small_cost () =
  (* Section VI-B: max distance 31 costs only a few percent over 1023 *)
  let r31 =
    Exp.run ~max_dist:31 ~model:Params.straight_4way ~target:Exp.Straight_re
      coremark2
  in
  let r1023 =
    Exp.run ~max_dist:1023 ~model:Params.straight_4way ~target:Exp.Straight_re
      coremark2
  in
  let cost =
    float_of_int r31.Exp.cycles /. float_of_int r1023.Exp.cycles -. 1.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "maxdist-31 cost %.1f%% < 8%%" (100. *. cost))
    true (cost < 0.08)

let suite =
  [ ("dhrystone all targets", `Slow, test_dhrystone);
    ("coremark all targets", `Slow, test_coremark);
    ("micro kernels all targets", `Quick, test_micro_kernels);
    ("workload determinism", `Quick, test_workload_determinism);
    ("shape: RAW worse than RE+", `Slow, test_shape_raw_worse_than_re);
    ("shape: STRAIGHT wins 4-way coremark", `Slow,
     test_shape_straight_wins_4way_coremark);
    ("shape: no-penalty gap", `Slow, test_shape_no_penalty_gap);
    ("shape: distance distribution", `Slow, test_shape_distance_distribution);
    ("shape: power", `Quick, test_shape_power);
    ("shape: maxdist sweep", `Slow, test_maxdist_sweep_small_cost) ]

let () = Alcotest.run "workloads" [ ("workloads", suite) ]
