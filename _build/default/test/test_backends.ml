(* Differential tests of the two compiler back ends.

   Oracle: the SSA IR interpreter.  Every program must print identical
   console output when (a) interpreted, (b) compiled to STRAIGHT (RAW and
   RE+, max distance 1023 and 31) and run on the STRAIGHT ISS, and
   (c) compiled to RV32IM and run on the RISC-V ISS.  Random programs are
   generated structurally (bounded loops) so they always terminate. *)

module Ir = Ssa_ir.Ir
module Ast = Minic.Ast

let compile_ir src =
  let p = Minic.Lower.compile src in
  List.iter Ssa_ir.Passes.optimize p.Ir.funcs;
  p

(* IR programs are mutated by the back ends (edge splitting, layout), so
   each consumer compiles its own copy from source. *)
let run_interp src = fst (Ssa_ir.Interp.run (compile_ir src))

let run_straight ~level ~max_dist src =
  let p = compile_ir src in
  let config = { Straight_cc.Codegen.max_dist; level } in
  let image = Straight_cc.Codegen.compile_to_image ~config p in
  let r =
    Iss.Straight_iss.run
      ~config:{ Iss.Straight_iss.default_config with max_insns = 10_000_000 }
      image
  in
  r.Iss.Trace.output

let run_riscv src =
  let p = compile_ir src in
  let image = Riscv_cc.Codegen.compile_to_image p in
  let r =
    Iss.Riscv_iss.run
      ~config:{ Iss.Riscv_iss.default_config with max_insns = 10_000_000 }
      image
  in
  r.Iss.Trace.output

let all_ways_equal ?expected src =
  let reference = run_interp src in
  (match expected with
   | Some e -> Alcotest.(check string) "interp matches expected" e reference
   | None -> ());
  Alcotest.(check string) "straight re+ 1023" reference
    (run_straight ~level:Straight_cc.Codegen.Re_plus ~max_dist:1023 src);
  Alcotest.(check string) "straight raw 1023" reference
    (run_straight ~level:Straight_cc.Codegen.Raw ~max_dist:1023 src);
  Alcotest.(check string) "straight re+ 31" reference
    (run_straight ~level:Straight_cc.Codegen.Re_plus ~max_dist:31 src);
  Alcotest.(check string) "straight raw 31" reference
    (run_straight ~level:Straight_cc.Codegen.Raw ~max_dist:31 src);
  (* a tight maximum distance stresses the refresh / memory-tail /
     pressure-spill machinery *)
  Alcotest.(check string) "straight re+ 21" reference
    (run_straight ~level:Straight_cc.Codegen.Re_plus ~max_dist:21 src);
  Alcotest.(check string) "straight raw 21" reference
    (run_straight ~level:Straight_cc.Codegen.Raw ~max_dist:21 src);
  Alcotest.(check string) "riscv" reference (run_riscv src)

(* ---------- fixed programs ---------- *)

let fixed_programs : (string * string * string option) list =
  [ ("iota (paper fig 10)",
     {|
int arr[16];
int iota(int *a, int n) {
  int i;
  for (i = 0; i < n; i++) a[i] = i;
  return 0;
}
int main() {
  iota(arr, 16);
  int s = 0;
  for (int i = 0; i < 16; i++) s += arr[i];
  putint(s);
}
|},
     Some "120\n");
    ("fib iterative", {|
int main() {
  int a = 0; int b = 1;
  for (int i = 0; i < 20; i++) { int t = a + b; a = b; b = t; }
  putint(a);
}
|}, Some "6765\n");
    ("fib recursive", {|
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() { putint(fib(12)); }
|}, Some "144\n");
    ("gcd / modulo", {|
int gcd(int a, int b) { while (b != 0) { int t = a % b; a = b; b = t; } return a; }
int main() { putint(gcd(1071, 462)); putint(gcd(17, 5)); }
|}, Some "21\n1\n");
    ("bubble sort", {|
int data[8] = {42, 7, 23, 1, 99, 15, 3, 60};
int main() {
  for (int i = 0; i < 8; i++)
    for (int j = 0; j + 1 < 8 - i; j++)
      if (data[j] > data[j + 1]) {
        int t = data[j];
        data[j] = data[j + 1];
        data[j + 1] = t;
      }
  for (int i = 0; i < 8; i++) putint(data[i]);
}
|}, Some "1\n3\n7\n15\n23\n42\n60\n99\n");
    ("collatz", {|
int main() {
  int n = 27;
  int steps = 0;
  while (n != 1) {
    if (n % 2) n = 3 * n + 1; else n = n / 2;
    steps++;
  }
  putint(steps);
}
|}, Some "111\n");
    ("nested calls with many live values", {|
int f(int a, int b, int c, int d) { return a * b + c * d; }
int main() {
  int p = f(1, 2, 3, 4);
  int q = f(p, p + 1, p - 1, 2);
  int r = f(q, p, 3, q - p);
  putint(p); putint(q); putint(r);
}
|}, None);
    ("deep expression pressure", {|
int main() {
  int a = 1; int b = 2; int c = 3; int d = 4; int e = 5; int f = 6;
  int g = 7; int h = 8; int i = 9; int j = 10; int k = 11; int l = 12;
  int x = (a+b)*(c+d)+(e+f)*(g+h)+(i+j)*(k+l)+(a*l)-(b*k)+(c*j)-(d*i);
  putint(x);
  int y = 0;
  for (int t = 0; t < 5; t++) {
    y += a + b + c + d + e + f + g + h + i + j + k + l + x;
  }
  putint(y);
}
|}, None);
    ("global state machine", {|
int state = 0;
int step(int input) {
  if (state == 0) { if (input) state = 1; return 10; }
  if (state == 1) { if (!input) state = 2; return 20; }
  state = 0;
  return 30;
}
int main() {
  int acc = 0;
  acc += step(1); acc += step(1); acc += step(0); acc += step(1);
  putint(acc); putint(state);
}
|}, None);
    ("shift and bit tricks", {|
int popcount(int x) {
  int n = 0;
  for (int i = 0; i < 32; i++) { n += x & 1; x = (x >> 1) & 0x7FFFFFFF; }
  return n;
}
int main() {
  putint(popcount(0xFF));
  putint(popcount(123456789));
  putint(1 << 30);
  putint((-8) >> 2);
}
|}, None);
    ("unsigned-ish wraparound", {|
int main() {
  int x = 0x7FFFFFFF;
  putint(x + 1);
  putint(x * 2);
  putint(0 - x - 1);
}
|}, None);
    ("division corner cases", {|
int main() {
  putint(7 / -2); putint(7 % -2);
  putint(-7 / 2); putint(-7 % 2);
  int z = 0;
  putint(5 / z);   // defined as -1 by the ISA
  putint(5 % z);   // defined as 5
}
|}, None);
    ("do-while with break", {|
int main() {
  int i = 0; int s = 0;
  do {
    s += i;
    if (s > 30) break;
    i++;
  } while (i < 100);
  putint(s); putint(i);
}
|}, None);
    ("mutually recursive with array", {|
int memo[30];
int even(int n);
int odd(int n) { if (n == 0) return 0; return even(n - 1); }
int even(int n) { if (n == 0) return 1; return odd(n - 1); }
int main() {
  for (int i = 0; i < 10; i++) memo[i] = even(i) * 100 + odd(i);
  int s = 0;
  for (int i = 0; i < 10; i++) s += memo[i];
  putint(s);
}
|}, None);
    ("matrix multiply 4x4", {|
int a[16]; int b[16]; int c[16];
int main() {
  for (int i = 0; i < 16; i++) { a[i] = i + 1; b[i] = 16 - i; }
  for (int i = 0; i < 4; i++)
    for (int j = 0; j < 4; j++) {
      int s = 0;
      for (int k = 0; k < 4; k++) s += a[i * 4 + k] * b[k * 4 + j];
      c[i * 4 + j] = s;
    }
  int t = 0;
  for (int i = 0; i < 16; i++) t += c[i];
  putint(t);
}
|}, None);
    ("string-ish char loop", {|
int msg[6] = {'h','e','l','l','o','\n'};
int main() {
  for (int i = 0; i < 6; i++) putchar(msg[i]);
}
|}, Some "hello\n") ]

let test_fixed () =
  List.iter
    (fun (name, src, expected) ->
       try all_ways_equal ?expected src
       with e ->
         Alcotest.failf "program %S failed: %s" name (Printexc.to_string e))
    fixed_programs

(* ---------- random program generation ---------- *)

(* Terminating-by-construction MiniC generator: all loops are
   `for (i = 0; i < K; i++)` with K <= 6 and a loop variable never written
   in the body; indices into the global array are masked with `& 7`. *)
let gen_program : string QCheck2.Gen.t =
  let open QCheck2.Gen in
  let var_names = [ "v0"; "v1"; "v2"; "v3" ] in
  let rec gen_expr depth =
    if depth = 0 then
      oneof
        [ map (fun n -> Printf.sprintf "%d" (n - 50)) (int_range 0 100);
          oneofl var_names;
          map (fun e -> Printf.sprintf "g[(%s) & 7]" e)
            (oneofl var_names) ]
    else
      let sub = gen_expr (depth - 1) in
      oneof
        [ sub;
          (let* op = oneofl [ "+"; "-"; "*"; "&"; "|"; "^" ] in
           let* a = sub and* b = sub in
           return (Printf.sprintf "(%s %s %s)" a op b));
          (let* op = oneofl [ "/"; "%" ] in
           let* a = sub and* b = sub in
           (* divisor forced nonzero-ish but zero is defined anyway *)
           return (Printf.sprintf "(%s %s (%s | 1))" a op b));
          (let* a = sub and* b = sub in
           return (Printf.sprintf "helper(%s, %s)" a b));
          (let* op = oneofl [ "<"; "<="; ">"; ">="; "=="; "!=" ] in
           let* a = sub and* b = sub in
           return (Printf.sprintf "(%s %s %s)" a op b));
          (let* c = sub and* a = sub and* b = sub in
           return (Printf.sprintf "(%s ? %s : %s)" c a b));
          (let* a = sub in return (Printf.sprintf "(%s << 1)" a));
          (let* a = sub in return (Printf.sprintf "(0 - %s)" a)) ]
  in
  let rec gen_stmt depth loopvar =
    let assign =
      let* v = oneofl var_names in
      let* e = gen_expr 2 in
      return (Printf.sprintf "%s = %s;" v e)
    in
    let arr_assign =
      let* i = gen_expr 1 in
      let* e = gen_expr 2 in
      return (Printf.sprintf "g[(%s) & 7] = %s;" i e)
    in
    let print =
      let* e = gen_expr 1 in
      return (Printf.sprintf "putint(%s);" e)
    in
    if depth = 0 then oneof [ assign; arr_assign; print ]
    else
      let sub () = gen_stmt (depth - 1) loopvar in
      oneof
        [ assign; arr_assign; print;
          (let* c = gen_expr 1 in
           let* t = sub () and* f = sub () in
           return (Printf.sprintf "if (%s) { %s } else { %s }" c t f));
          (let* c = gen_expr 1 in
           let* t = sub () in
           return (Printf.sprintf "if (%s) { %s }" c t));
          (let* k = int_range 1 6 in
           let* body = sub () in
           let iv = Printf.sprintf "i%d" loopvar in
           return
             (Printf.sprintf "for (int %s = 0; %s < %d; %s++) { %s %s = %s + %s; }"
                iv iv k iv body (List.hd var_names) (List.hd var_names) iv)) ]
  in
  let* stmts =
    list_size (int_range 3 8)
      (let* d = int_range 0 2 in
       let* l = int_range 0 1000 in
       gen_stmt d l)
  in
  let* inits = list_repeat 4 (int_range (-20) 20) in
  let body =
    List.mapi (fun i v -> Printf.sprintf "int v%d = %d;" i v) inits
    @ stmts
    @ List.map (fun v -> Printf.sprintf "putint(%s);" v) var_names
  in
  return
    (Printf.sprintf
       "int g[8] = {3, 1, 4, 1, 5, 9, 2, 6};\n\
        int helper(int a, int b) {\n\
        \  if (a > b) return a - b + g[(a) & 7];\n\
        \  return (a ^ b) + 1;\n\
        }\n\
        int main() {\n%s\n}\n"
       (String.concat "\n" body))

(* Loop variables may collide between sibling loops at the same nesting
   level; regenerate names deterministically instead of rejecting. *)
let uniquify_loops src =
  let counter = ref 0 in
  let buf = Buffer.create (String.length src) in
  let n = String.length src in
  let i = ref 0 in
  while !i < n do
    if !i + 7 < n && String.sub src !i 8 = "for (int" then begin
      (* rename i<digits> consistently within this loop header+body is hard
         textually; instead give every loop header a fresh variable name and
         rely on the generator only using the loop var in the header *)
      Buffer.add_string buf "for (int";
      i := !i + 8
    end
    else begin
      Buffer.add_char buf src.[!i];
      incr i
    end
  done;
  ignore counter;
  Buffer.contents buf

let prop_differential =
  QCheck2.Test.make ~count:120 ~name:"random program: all pipelines agree"
    ~print:(fun s -> s)
    gen_program
    (fun src ->
       let src = uniquify_loops src in
       match run_interp src with
       | exception Minic.Lower.Lower_error _ -> QCheck2.assume_fail ()
       | reference ->
         let s1 = run_straight ~level:Straight_cc.Codegen.Re_plus ~max_dist:1023 src in
         let s2 = run_straight ~level:Straight_cc.Codegen.Raw ~max_dist:1023 src in
         let s3 = run_straight ~level:Straight_cc.Codegen.Re_plus ~max_dist:31 src in
         let s4 = run_straight ~level:Straight_cc.Codegen.Raw ~max_dist:31 src in
         let s5 = run_straight ~level:Straight_cc.Codegen.Re_plus ~max_dist:21 src in
         let rv = run_riscv src in
         if s1 <> reference then QCheck2.Test.fail_reportf "re+1023:\n%s\nvs\n%s" s1 reference
         else if s2 <> reference then QCheck2.Test.fail_reportf "raw1023:\n%s\nvs\n%s" s2 reference
         else if s3 <> reference then QCheck2.Test.fail_reportf "re+31:\n%s\nvs\n%s" s3 reference
         else if s4 <> reference then QCheck2.Test.fail_reportf "raw31:\n%s\nvs\n%s" s4 reference
         else if s5 <> reference then QCheck2.Test.fail_reportf "re+21:\n%s\nvs\n%s" s5 reference
         else if rv <> reference then QCheck2.Test.fail_reportf "riscv:\n%s\nvs\n%s" rv reference
         else true)

(* ---------- structural checks on generated STRAIGHT code ---------- *)

(* RAW must never emit fewer RMOVs than RE+ on merge-heavy code, and RE+
   must reduce the static instruction count (the Fig. 10 claim). *)
let test_re_plus_reduces_code () =
  let src =
    {|
int arr[16];
int iota(int *a, int n) {
  int i;
  for (i = 0; i < n; i++) a[i] = i;
  return 0;
}
int main() { iota(arr, 16); putint(arr[7]); }
|}
  in
  let stats level =
    let p = compile_ir src in
    let config = { Straight_cc.Codegen.max_dist = 1023; level } in
    Straight_cc.Codegen.stats_of_items (Straight_cc.Codegen.compile ~config p)
  in
  let raw = stats Straight_cc.Codegen.Raw in
  let re = stats Straight_cc.Codegen.Re_plus in
  Alcotest.(check bool) "re+ emits fewer rmovs" true
    (re.Straight_cc.Codegen.rmov < raw.Straight_cc.Codegen.rmov);
  (* the meaningful Fig. 10 claim is dynamic: RE+ retires fewer
     instructions (static code can grow slightly from the prologue spill) *)
  let retired level =
    let p = compile_ir src in
    let config = { Straight_cc.Codegen.max_dist = 1023; level } in
    let image = Straight_cc.Codegen.compile_to_image ~config p in
    (Iss.Straight_iss.run image).Iss.Trace.retired
  in
  Alcotest.(check bool) "re+ retires fewer instructions" true
    (retired Straight_cc.Codegen.Re_plus < retired Straight_cc.Codegen.Raw)

(* Every distance in generated code must respect the configured maximum. *)
let test_distance_bound_respected () =
  let src =
    {|
int main() {
  int a = 1; int b = 2; int c = 3; int d = 4; int e = 5;
  int f = 6; int g = 7; int h = 8;
  int s = 0;
  for (int i = 0; i < 50; i++) {
    s += a + b + c + d + e + f + g + h;
    if (s > 1000) s = s - 999;
  }
  putint(s + a + b + c + d + e + f + g + h);
}
|}
  in
  List.iter
    (fun max_dist ->
       let p = compile_ir src in
       let config =
         { Straight_cc.Codegen.max_dist; level = Straight_cc.Codegen.Raw }
       in
       let items = Straight_cc.Codegen.compile ~config p in
       List.iter
         (fun it ->
            match it with
            | Assembler.Asm.Insn insn ->
              List.iter
                (fun d ->
                   Alcotest.(check bool)
                     (Printf.sprintf "distance %d <= %d" d max_dist)
                     true (d <= max_dist))
                (Straight_isa.Isa.sources insn)
            | _ -> ())
         items)
    [ 31; 63; 1023 ]

let suite =
  [ ("fixed programs, all pipelines", `Slow, test_fixed);
    ("re+ reduces code (fig 10)", `Quick, test_re_plus_reduces_code);
    ("distance bound respected", `Quick, test_distance_bound_respected);
    QCheck_alcotest.to_alcotest prop_differential ]

let () = Alcotest.run "backends" [ ("backends", suite) ]
