(* Front-end tests: MiniC -> SSA IR -> reference interpreter.  The
   interpreter output is the oracle later reused against both back ends. *)

module Ir = Ssa_ir.Ir

let interp src =
  let p = Minic.Lower.compile src in
  List.iter Ssa_ir.Analysis.validate p.Ir.funcs;
  fst (Ssa_ir.Interp.run p)

let interp_opt src =
  let p = Minic.Lower.compile src in
  List.iter Ssa_ir.Passes.optimize p.Ir.funcs;
  List.iter Ssa_ir.Analysis.validate p.Ir.funcs;
  fst (Ssa_ir.Interp.run p)

let check name expected src =
  Alcotest.(check string) (name ^ " (raw)") expected (interp src);
  Alcotest.(check string) (name ^ " (optimized)") expected (interp_opt src)

let test_arith () =
  check "arith" "17\n" {|
int main() {
  int x = 3;
  int y = 4;
  putint(x * y + 10 - 5);
  return 0;
}
|};
  check "precedence" "14\n" {| int main() { putint(2 + 3 * 4); } |};
  check "division" "-3\n" {| int main() { putint(-7 / 2); } |};
  check "modulo" "-1\n" {| int main() { putint(-7 % 2); } |};
  check "shifts" "-2\n" {| int main() { putint((-16 >> 3)); } |};
  check "bitops" "6\n" {| int main() { putint((12 & 7) ^ (2 | 0)); } |}

let test_control_flow () =
  check "if else" "1\n" {|
int main() { int x = 5; if (x > 3) putint(1); else putint(0); }
|};
  check "if no else" "7\n" {|
int main() { int x = 0; if (x) x = 99; putint(x + 7); }
|};
  check "while" "55\n" {|
int main() {
  int sum = 0;
  int i = 1;
  while (i <= 10) { sum += i; i++; }
  putint(sum);
}
|};
  check "for" "45\n" {|
int main() {
  int sum = 0;
  for (int i = 0; i < 10; i++) sum += i;
  putint(sum);
}
|};
  check "do while" "1\n" {|
int main() { int n = 0; do { n++; } while (n < 1); putint(n); }
|};
  check "break continue" "20\n" {|
int main() {
  int sum = 0;
  for (int i = 0; i < 100; i++) {
    if (i % 2) continue;
    if (i > 8) break;
    sum += i;
  }
  putint(sum);
}
|};
  check "nested loops" "100\n" {|
int main() {
  int count = 0;
  for (int i = 0; i < 10; i++)
    for (int j = 0; j < 10; j++)
      count++;
  putint(count);
}
|}

let test_short_circuit () =
  (* the RHS division would trap-ish (we define it, but the count proves
     the RHS did not evaluate) *)
  check "and short" "0\n" {|
int g = 0;
int touch() { g = g + 1; return 1; }
int main() {
  int x = 0;
  if (x && touch()) putint(99);
  putint(g);
}
|};
  check "or short" "0\n" {|
int g = 0;
int touch() { g = g + 1; return 1; }
int main() {
  int x = 1;
  if (x || touch()) ;
  putint(g);
}
|};
  check "and value" "1\n" {| int main() { putint(2 && 3); } |};
  check "or value" "1\n" {| int main() { putint(0 || 5); } |};
  check "not" "1\n" {| int main() { putint(!0); } |};
  check "ternary" "7\n3\n" {|
int main() {
  int x = 5;
  putint(x > 3 ? 7 : 9);
  putint(x < 3 ? 7 : 3);
}
|};
  check "ternary short circuit" "1\n0\n" {|
int g = 0;
int touch() { g = g + 1; return 42; }
int main() {
  putint(1 ? 1 : touch());
  putint(g);
}
|};
  check "nested ternary" "2\n" {|
int main() { int a = 0; int b = 1; putint(a ? 1 : b ? 2 : 3); }
|}

let test_functions () =
  check "call" "42\n" {|
int add(int a, int b) { return a + b; }
int main() { putint(add(20, 22)); }
|};
  check "recursion" "120\n" {|
int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
int main() { putint(fact(5)); }
|};
  check "fib recursive" "55\n" {|
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() { putint(fib(10)); }
|};
  check "mutual recursion" "1\n" {|
int is_odd(int n);
int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
int main() { putint(is_even(10)); }
|}

let test_arrays_and_globals () =
  check "local array" "6\n" {|
int main() {
  int a[3];
  a[0] = 1; a[1] = 2; a[2] = 3;
  putint(a[0] + a[1] + a[2]);
}
|};
  check "global array init" "30\n" {|
int table[4] = {5, 10, 15};
int main() { putint(table[0] + table[1] + table[2] + table[3]); }
|};
  check "global scalar" "8\n" {|
int counter = 3;
int bump() { counter += 5; return 0; }
int main() { bump(); putint(counter); }
|};
  check "array via pointer param" "10\n" {|
int sum(int *a, int n) {
  int s = 0;
  for (int i = 0; i < n; i++) s += a[i];
  return s;
}
int data[4] = {1, 2, 3, 4};
int main() { putint(sum(data, 4)); }
|};
  check "variable index" "11\n" {|
int main() {
  int a[5];
  for (int i = 0; i < 5; i++) a[i] = i * 2;
  int k = 2;
  putint(a[k] + a[k + 1] - a[0] + 1);
}
|}

let test_chars_and_output () =
  check "putchar" "OK" {|
int main() { putchar('O'); putchar('K'); }
|};
  check "char arithmetic" "97\n" {| int main() { putint('a'); } |}

let test_scoping () =
  check "shadowing" "5\n3\n" {|
int main() {
  int x = 3;
  { int x = 5; putint(x); }
  putint(x);
}
|};
  check "loop variable scoped" "3\n" {|
int main() {
  int i = 3;
  for (int i = 0; i < 2; i++) ;
  putint(i);
}
|}

(* Functions can be "declared" by defining them later: check that forward
   calls work because arity checking uses the whole program. *)
let test_forward_calls () =
  check "forward call" "9\n" {|
int main() { putint(sq(3)); }
int sq(int x) { return x * x; }
|}

let test_errors () =
  let expect_fail src =
    match Minic.Lower.compile src with
    | exception (Minic.Lower.Lower_error _ | Minic.Parser.Parse_error _
                | Minic.Lexer.Lex_error _) -> ()
    | _ -> Alcotest.fail ("should not compile: " ^ src)
  in
  expect_fail {| int main() { return undefined_var; } |};
  expect_fail {| int main() { foo(1); } |};
  expect_fail {| int f(int a) { return a; } int main() { return f(1, 2); } |};
  expect_fail {| int main() { break; } |};
  expect_fail {| int main() { int x = 1; int x = 2; } |};
  expect_fail {| int x = 1; int x = 2; int main() {} |};
  expect_fail {| int main() { 3 = 4; } |};
  expect_fail {| int f() {} |} (* no main *)

let test_ssa_wellformed () =
  (* lowering must produce valid SSA for a gnarly CFG *)
  let p = Minic.Lower.compile {|
int collatz(int n) {
  int steps = 0;
  while (n != 1) {
    if (n % 2) n = 3 * n + 1;
    else n = n / 2;
    steps++;
  }
  return steps;
}
int main() {
  int total = 0;
  for (int i = 1; i < 30; i++) {
    int s = collatz(i);
    if (s > 100) break;
    total += s;
  }
  putint(total);
  return 0;
}
|} in
  List.iter Ssa_ir.Analysis.validate p.Ir.funcs;
  (* critical edge splitting preserves semantics and validity *)
  let out_before = fst (Ssa_ir.Interp.run p) in
  List.iter Ssa_ir.Passes.split_critical_edges p.Ir.funcs;
  List.iter Ssa_ir.Analysis.validate p.Ir.funcs;
  let out_after = fst (Ssa_ir.Interp.run p) in
  Alcotest.(check string) "split preserves semantics" out_before out_after;
  (* after splitting, no edge is critical *)
  List.iter
    (fun f ->
       let cfg = Ssa_ir.Analysis.build f in
       Array.iteri
         (fun i _ ->
            if List.length cfg.Ssa_ir.Analysis.succs.(i) > 1 then
              List.iter
                (fun s ->
                   Alcotest.(check bool)
                     "no critical edge" true
                     (List.length cfg.Ssa_ir.Analysis.preds.(s) <= 1))
                cfg.Ssa_ir.Analysis.succs.(i))
         cfg.Ssa_ir.Analysis.blocks)
    p.Ir.funcs

let test_optimizer () =
  (* constant folding collapses a constant pipeline to a single return *)
  let p = Minic.Lower.compile {|
int main() {
  int a = 2 * 3;
  int b = a + 4;
  int c = b * b;
  putint(c);
}
|} in
  List.iter Ssa_ir.Passes.optimize p.Ir.funcs;
  let main = List.find (fun f -> f.Ir.name = "main") p.Ir.funcs in
  let n_insts =
    List.fold_left (fun acc b -> acc + List.length b.Ir.insts) 0 main.Ir.blocks
  in
  (* after folding: only the putint store (plus possibly its value) remains *)
  Alcotest.(check bool) "folded to few insts" true (n_insts <= 2);
  Alcotest.(check string) "still correct" "100\n" (fst (Ssa_ir.Interp.run p))

let suite =
  [ ("arithmetic", `Quick, test_arith);
    ("control flow", `Quick, test_control_flow);
    ("short circuit", `Quick, test_short_circuit);
    ("functions", `Quick, test_functions);
    ("arrays and globals", `Quick, test_arrays_and_globals);
    ("chars and output", `Quick, test_chars_and_output);
    ("scoping", `Quick, test_scoping);
    ("forward calls", `Quick, test_forward_calls);
    ("front-end errors", `Quick, test_errors);
    ("ssa wellformedness", `Quick, test_ssa_wellformed);
    ("optimizer", `Quick, test_optimizer) ]

let () = Alcotest.run "minic" [ ("minic", suite) ]
