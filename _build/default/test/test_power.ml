(* Unit tests of the activity-based power model (the Fig. 17 substitute). *)

module Engine = Ooo_common.Engine

let activity ~rename_reads ~rp_ops ~rf_reads ~alu_ops =
  let a = Engine.fresh_activity () in
  a.Engine.rename_reads <- rename_reads;
  a.Engine.rp_ops <- rp_ops;
  a.Engine.rf_reads <- rf_reads;
  a.Engine.alu_ops <- alu_ops;
  a

let test_analyze_basics () =
  let a = activity ~rename_reads:1000 ~rp_ops:0 ~rf_reads:500 ~alu_ops:400 in
  let r = Power.analyze ~cycles:100 a in
  Alcotest.(check bool) "rename positive" true (r.Power.rename > 0.0);
  Alcotest.(check bool) "regfile positive" true (r.Power.regfile > 0.0);
  Alcotest.(check bool) "other includes clock floor" true
    (r.Power.other >= Power.default_coefficients.Power.e_clock_per_cycle)

let test_rp_much_cheaper_than_rmt () =
  (* equal event counts: RP adders must be far cheaper than RMT ports *)
  let rmt = activity ~rename_reads:10_000 ~rp_ops:0 ~rf_reads:0 ~alu_ops:0 in
  let rp = activity ~rename_reads:0 ~rp_ops:10_000 ~rf_reads:0 ~alu_ops:0 in
  let r1 = Power.analyze ~cycles:1000 rmt in
  let r2 = Power.analyze ~cycles:1000 rp in
  Alcotest.(check bool) "rp < 15% of rmt" true
    (r2.Power.rename < 0.15 *. r1.Power.rename)

let test_energy_per_cycle_normalization () =
  (* doubling both events and cycles leaves power unchanged *)
  let a1 = activity ~rename_reads:1000 ~rp_ops:0 ~rf_reads:800 ~alu_ops:600 in
  let a2 = activity ~rename_reads:2000 ~rp_ops:0 ~rf_reads:1600 ~alu_ops:1200 in
  let r1 = Power.analyze ~cycles:500 a1 in
  let r2 = Power.analyze ~cycles:1000 a2 in
  Alcotest.(check (float 1e-9)) "rename power invariant" r1.Power.rename
    r2.Power.rename;
  Alcotest.(check (float 1e-9)) "regfile power invariant" r1.Power.regfile
    r2.Power.regfile

let test_frequency_scaling () =
  Alcotest.(check (float 1e-9)) "identity at 1x" 2.5 (Power.scale_power 2.5 1.0);
  Alcotest.(check bool) "superlinear at 4x" true
    (Power.scale_power 1.0 4.0 > 4.0);
  Alcotest.(check bool) "monotone" true
    (Power.scale_power 1.0 2.5 < Power.scale_power 1.0 4.0)

let test_figure17_shape () =
  let ss = { Power.rename = 2.0; regfile = 4.0; other = 40.0 } in
  let straight = { Power.rename = 0.1; regfile = 4.5; other = 42.0 } in
  let rows = Power.figure17 ~ss ~straight in
  Alcotest.(check int) "nine bar pairs" 9 (List.length rows);
  (* SS at 1.0x normalizes to 1.0 per module *)
  List.iter
    (fun (row : Power.figure17_row) ->
       if row.Power.freq = 1.0 then
         Alcotest.(check (float 1e-9)) "ss normalized" 1.0 row.Power.ss)
    rows;
  (* the rename bar pair shows the removal *)
  let rename_1x =
    List.find
      (fun (r : Power.figure17_row) ->
         r.Power.module_name = "Rename Logic" && r.Power.freq = 1.0)
      rows
  in
  Alcotest.(check (float 1e-9)) "straight rename ratio" 0.05
    rename_1x.Power.straight

let test_calibration_anchor () =
  (* the committed coefficients keep the SS rename/other ratio near the
     paper's published 5.7 % anchor on the Fig. 17 kernel *)
  let w = Workloads.coremark ~iterations:1 () in
  let r =
    Straight_core.Experiment.run ~model:Straight_core.Models.ss_2way
      ~target:Straight_core.Experiment.Riscv w
  in
  let rep =
    Power.analyze ~cycles:r.Straight_core.Experiment.cycles
      r.Straight_core.Experiment.stats.Engine.activity
  in
  let ratio = rep.Power.rename /. rep.Power.other in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.3f within [0.04, 0.08]" ratio)
    true
    (ratio > 0.04 && ratio < 0.08)

let suite =
  [ ("analyze basics", `Quick, test_analyze_basics);
    ("rp cheaper than rmt", `Quick, test_rp_much_cheaper_than_rmt);
    ("per-cycle normalization", `Quick, test_energy_per_cycle_normalization);
    ("frequency scaling", `Quick, test_frequency_scaling);
    ("figure17 shape", `Quick, test_figure17_shape);
    ("calibration anchor", `Quick, test_calibration_anchor) ]

let () = Alcotest.run "power" [ ("power", suite) ]
