(* White-box tests of the RV32IM back end: ABI discipline of the register
   allocator, prologue/epilogue balance, compare-and-branch fusion, and
   spill-path correctness under extreme pressure. *)

module Isa = Riscv_isa.Isa
module CC = Riscv_cc.Codegen
module Ir = Ssa_ir.Ir

let compile_items src =
  let p = Minic.Lower.compile src in
  List.iter Ssa_ir.Passes.optimize p.Ir.funcs;
  CC.compile p

let insns items =
  List.filter_map
    (function Assembler.Asm.Insn i -> Some i | _ -> None)
    items

let run_items items =
  let image = Assembler.Asm.Riscv.assemble ~entry:"_start" items in
  (Iss.Riscv_iss.run image).Iss.Trace.output

(* the allocator must never hand out reserved registers as destinations of
   ordinary computation: zero/ra/sp/gp/tp; scratches t5/t6 appear only for
   spill code, a-registers only around calls/returns *)
let test_abi_discipline () =
  let src = (Workloads.coremark ~iterations:1 ()).Workloads.source in
  let items = compile_items src in
  List.iter
    (fun insn ->
       match Isa.dest insn with
       | Some rd ->
         Alcotest.(check bool)
           (Printf.sprintf "dest %s not gp/tp" (Isa.reg_name rd))
           true
           (rd <> 3 && rd <> 4)
       | None -> ())
    (insns items)

(* every sp decrement in a prologue is matched by an increment (stack
   balance), dynamically verified: sp returns to the initial value *)
let test_stack_balance () =
  let src = (Workloads.quicksort ~n:32 ()).Workloads.source in
  let items = compile_items src in
  Alcotest.(check bool) "program runs" true (String.length (run_items items) > 0);
  (* static check: the count of addi sp,sp,-N equals addi sp,sp,+N *)
  let dec, inc =
    List.fold_left
      (fun (d, i) insn ->
         match insn with
         | Isa.Alui (Isa.Addi, 2, 2, n) when n < 0 -> (d + 1, i)
         | Isa.Alui (Isa.Addi, 2, 2, n) when n > 0 -> (d, i + 1)
         | _ -> (d, i))
      (0, 0) (insns items)
  in
  (* one prologue per function, one epilogue per function (single exit) *)
  Alcotest.(check int) "balanced sp adjustments" dec inc

(* single-use comparisons feeding a branch must fuse into one
   compare-and-branch instead of slt+bne *)
let test_branch_fusion () =
  let src = {|
int main() {
  int s = 0;
  for (int i = 0; i < 100; i++) s += i;
  putint(s);
}
|} in
  let items = compile_items src in
  Alcotest.(check string) "output" "4950\n" (run_items items);
  let has_blt =
    List.exists
      (function Isa.Branch (Isa.Blt, _, _, _) -> true | _ -> false)
      (insns items)
  in
  let slt_count =
    List.length
      (List.filter
         (function
           | Isa.Alu (Isa.Slt, _, _, _) | Isa.Alui (Isa.Slti, _, _, _) -> true
           | _ -> false)
         (insns items))
  in
  Alcotest.(check bool) "fused blt present" true has_blt;
  Alcotest.(check int) "no standalone slt" 0 slt_count

(* extreme pressure: more simultaneously-live values than allocatable
   registers forces spills, and the result must stay correct *)
let test_spill_pressure () =
  (* 20 values all live until the end: more than t0-t4 + s0-s11 *)
  let decls =
    String.concat "\n"
      (List.init 20 (fun i ->
           Printf.sprintf "  int v%d = %d * (x + %d);" i (i + 1) i))
  in
  let uses =
    String.concat " + " (List.init 20 (fun i -> Printf.sprintf "v%d" i))
  in
  let src =
    Printf.sprintf
      {|
int f(int x) {
%s
  int a = %s;
  int b = 0;
  for (int i = 0; i < 3; i++) b += a + %s;
  return b;
}
int main() { putint(f(3)); }
|}
      decls uses uses
  in
  let reference =
    let p = Minic.Lower.compile src in
    List.iter Ssa_ir.Passes.optimize p.Ir.funcs;
    fst (Ssa_ir.Interp.run p)
  in
  Alcotest.(check string) "spilled program output" reference
    (run_items (compile_items src));
  (* and the same program must also survive the STRAIGHT back end *)
  let p2 = Minic.Lower.compile src in
  List.iter Ssa_ir.Passes.optimize p2.Ir.funcs;
  let image =
    Straight_cc.Codegen.compile_to_image
      ~config:{ Straight_cc.Codegen.max_dist = 31;
                level = Straight_cc.Codegen.Re_plus }
      p2
  in
  Alcotest.(check string) "straight too" reference
    (Iss.Straight_iss.run image).Iss.Trace.output

(* calls preserve callee-saved state: a function clobbering many s-regs is
   called from a loop carrying many live values *)
let test_callee_saved_roundtrip () =
  let src = {|
int noisy(int x) {
  int a = x; int b = x * 2; int c = x * 3; int d = x * 4;
  int e = x * 5; int f = x * 6; int g = x * 7; int h = x * 8;
  return a + b + c + d + e + f + g + h;
}
int main() {
  int p = 1; int q = 2; int r = 3; int s = 4; int t = 5;
  int acc = 0;
  for (int i = 0; i < 5; i++) {
    acc += noisy(i) + p + q + r + s + t;
  }
  putint(acc); putint(p + q + r + s + t);
}
|} in
  let reference =
    let p = Minic.Lower.compile src in
    List.iter Ssa_ir.Passes.optimize p.Ir.funcs;
    fst (Ssa_ir.Interp.run p)
  in
  Alcotest.(check string) "callee-saved preserved" reference
    (run_items (compile_items src))

let suite =
  [ ("ABI discipline", `Quick, test_abi_discipline);
    ("stack balance", `Quick, test_stack_balance);
    ("branch fusion", `Quick, test_branch_fusion);
    ("spill pressure (both back ends)", `Quick, test_spill_pressure);
    ("callee-saved roundtrip", `Quick, test_callee_saved_roundtrip) ]

let () = Alcotest.run "riscv_cc" [ ("riscv_cc", suite) ]
