.PHONY: check build test bench bench-json bench-gate fuzz-smoke lint fmt clean

check: build test

build:
	dune build

test:
	dune runtest

fmt:
	dune build @fmt

bench:
	dune exec bench/main.exe -- --quick

# Measure the perf suite (engine host throughput + CPI stacks) into
# bench.json.  Pass QUICK= (empty) for the full workload sizes.
QUICK ?= --quick
bench-json:
	dune exec bench/main.exe -- $(QUICK) --json bench.json

# Perf-regression gate: fresh measurement vs the checked-in baseline.
# Host throughput is noisy, so a failing comparison gets one fresh
# re-measurement before the verdict sticks.
bench-gate: bench-json
	dune exec scripts/bench_gate.exe -- BENCH_baseline.json bench.json \
	  || { echo "bench-gate: retrying with a fresh measurement"; \
	       $(MAKE) bench-json; \
	       dune exec scripts/bench_gate.exe -- BENCH_baseline.json bench.json; }

# Static verification: both binary verifiers (STRAIGHT distance/SPADD
# invariants, RV32IM dataflow/ABI/stack invariants) over every
# benchmark image at O0/O1/O2, plus a JSON report for archiving.
lint:
	dune exec bin/fuzz.exe -- -lint-workloads -json lint-report.json

# Differential-fuzz smoke run: a fixed-seed batch (deterministic, so a
# failure is reproducible by seed number) plus the binary verifiers over
# every benchmark image.
fuzz-smoke: lint
	dune exec bin/fuzz.exe -- -seed 1 -count 200

clean:
	dune clean
