.PHONY: check build test bench bench-json bench-gate fuzz-smoke \
	wasm-smoke lint lint-workloads tv fmt \
	sweep-quick sweep-smoke snapshot-smoke sample-smoke daemon-smoke \
	coverage clean

check: build test

build:
	dune build

test:
	dune runtest

fmt:
	dune build @fmt

bench:
	dune exec bench/main.exe -- --quick

# Measure the perf suite (engine host throughput + CPI stacks) into
# bench.json.  Pass QUICK= (empty) for the full workload sizes.
# Includes the micro suite so the measurement set matches the CI gate's
# first invocation exactly.
QUICK ?= --quick
bench-json:
	dune exec bench/main.exe -- micro $(QUICK) --json bench.json

# Perf-regression gate: fresh measurement vs the checked-in baseline.
# Host throughput is noisy, so a failing comparison gets one fresh
# re-measurement before the verdict sticks.
bench-gate: bench-json
	dune exec scripts/bench_gate.exe -- BENCH_baseline.json bench.json \
	  || { echo "bench-gate: retrying with a fresh measurement"; \
	       $(MAKE) bench-json; \
	       dune exec scripts/bench_gate.exe -- BENCH_baseline.json bench.json; }

# Static verification umbrella: the binary verifiers plus the
# translation validator.
lint: lint-workloads tv

# Both binary verifiers (STRAIGHT distance/SPADD invariants, RV32IM
# dataflow/ABI/stack invariants) over every benchmark image at O0/O1/O2,
# plus a JSON report for archiving.
lint-workloads:
	dune exec bin/fuzz.exe -- -lint-workloads -json lint-report.json

# Translation validation (straight-tv/1): symbolically re-execute every
# benchmark's IR and linked machine code in lockstep at O0/O1/O2 through
# both back ends, requiring every observable to agree; then inject
# seeded codegen bugs and require each to be rejected.
tv:
	dune exec bin/fuzz.exe -- -tv-workloads -json tv-report.json
	dune exec bin/fuzz.exe -- -tv-mutations 12

# Differential-fuzz smoke run: a fixed-seed batch (deterministic, so a
# failure is reproducible by seed number) with the translation validator
# armed on every seed, plus the static verifiers over every benchmark
# image.
fuzz-smoke: lint
	dune exec bin/fuzz.exe -- -seed 1 -count 200 -tv
	dune exec bin/fuzz.exe -- -target wasm -seed 1 -count 200 -tv

# WASM front-end smoke (see DESIGN.md, "The WASM front end"): the
# conformance fixture battery plus the generator properties and the
# TV/lint sweep over the WASM workloads (test/test_wasm.ml), then a
# deterministic 200-seed WASM differential batch with the translation
# validator armed on every seed.
wasm-smoke:
	dune exec test/test_wasm.exe
	dune exec bin/fuzz.exe -- -target wasm -seed 1 -count 200 -tv

# Design-space sweep (see EXPERIMENTS.md, "Design-space sweeps").
# The default 32-point grid at quick iteration counts; results land in
# sweep.json and the per-figure tables in FIGURES.md.  Re-runs are
# served from the _sweep/ cache; JOBS= overrides the worker count.
JOBS ?= 0
SWEEP_JOBS = $(if $(filter 0,$(JOBS)),,-j $(JOBS))
sweep-quick:
	dune exec bin/sweep.exe -- -quick $(SWEEP_JOBS) -no-stream \
	  -out sweep.json -figures FIGURES.md

# CI cache-hit smoke: the 2-point smoke grid twice against a scratch
# cache.  The second invocation must be served entirely from the cache
# (-expect-cached exits 3 if any point simulates again).
sweep-smoke:
	rm -rf _sweep_smoke
	dune exec bin/sweep.exe -- -grid smoke -j 2 -cache-dir _sweep_smoke \
	  -figures none -out /dev/null -no-stream
	dune exec bin/sweep.exe -- -grid smoke -j 2 -cache-dir _sweep_smoke \
	  -figures none -out /dev/null -no-stream -expect-cached

# Crash-recovery smoke: on two workloads x two pipelines, checkpoint a
# run mid-flight and abandon it (-stop-at, a simulated kill), restore
# from the file alone, and require the recovered run's -stats-json to
# be byte-identical to an uninterrupted baseline's.
SNAP_DIR = _snapshot_smoke
snapshot-smoke:
	rm -rf $(SNAP_DIR) && mkdir -p $(SNAP_DIR)
	@set -e; \
	for cfg in "straight-2way straight iota" "ss-2way riscv iota" \
	           "straight-4way straight sort" "ss-4way riscv sort"; do \
	  set -- $$cfg; model=$$1; target=$$2; wl=$$3; tag=$$model-$$wl; \
	  echo "snapshot-smoke: $$model/$$target/$$wl"; \
	  dune exec bin/straightsim.exe -- -model $$model -target $$target \
	    -workload $$wl -stats-json $(SNAP_DIR)/$$tag.base.json >/dev/null; \
	  dune exec bin/straightsim.exe -- -model $$model -target $$target \
	    -workload $$wl -checkpoint $(SNAP_DIR)/$$tag.snap -stop-at 400 \
	    >/dev/null; \
	  dune exec bin/straightsim.exe -- -restore $(SNAP_DIR)/$$tag.snap \
	    -stats-json $(SNAP_DIR)/$$tag.resumed.json >/dev/null; \
	  cmp $(SNAP_DIR)/$$tag.base.json $(SNAP_DIR)/$$tag.resumed.json || \
	    { echo "snapshot-smoke: $$tag diverged after restore"; exit 1; }; \
	done
	@echo "snapshot-smoke: recovered runs bit-identical on all 4 configs"
	rm -rf $(SNAP_DIR)

# Sampling smoke: on one workload x both pipelines, exercise the
# fast-forward warmed handoff, then run the interval sampler over a
# 4-worker pool and require the recombined CPI estimate to land within
# its reported error bars of an exact simulation of the same run
# (-sample-check exits 1 otherwise).  The straight-sample/1 reports are
# left in $(SAMPLE_DIR) for CI to archive.
SAMPLE_DIR = _sample_smoke
sample-smoke:
	rm -rf $(SAMPLE_DIR) && mkdir -p $(SAMPLE_DIR)
	dune exec bin/straightsim.exe -- -model straight-2way -target straight \
	  -workload dhrystone -fast-forward 20000 -warm >/dev/null
	dune exec bin/straightsim.exe -- -model ss-2way -target riscv \
	  -workload dhrystone -fast-forward 20000 -warm >/dev/null
	dune exec bin/straightsim.exe -- -model straight-2way -target straight \
	  -workload dhrystone -sample interval=5k,warmup=1k -j 4 \
	  -store $(SAMPLE_DIR) -sample-json $(SAMPLE_DIR)/sample-straight.json \
	  -sample-check
	dune exec bin/straightsim.exe -- -model ss-2way -target riscv \
	  -workload dhrystone -sample interval=5k,warmup=1k -j 4 \
	  -store $(SAMPLE_DIR) -sample-json $(SAMPLE_DIR)/sample-riscv.json \
	  -sample-check
	@echo "sample-smoke: sampled CPI within error bars on both pipelines"

# Resident-daemon smoke (see EXPERIMENTS.md, "The resident daemon"):
# start straightd on a scratch socket, drive the load generator twice
# with an identical request mix, and require the warm run to be served
# >= 90% from the memo cache plus a clean shutdown.  The
# straightd-bench/1 reports land in _daemon_smoke/ for CI to archive.
daemon-smoke:
	sh scripts/daemon_smoke.sh

# Line coverage for the test suite via bisect_ppx (not vendored: the
# target is a no-op with a hint when the tooling is absent).  The HTML
# report lands in _coverage/.
coverage:
	@command -v bisect-ppx-report >/dev/null 2>&1 || \
	  { echo "coverage: bisect_ppx not installed (opam install bisect_ppx)"; exit 1; }
	find . -name '*.coverage' -delete
	dune runtest --force --instrument-with bisect_ppx
	bisect-ppx-report summary
	bisect-ppx-report html -o _coverage
	@echo "coverage: HTML report in _coverage/index.html"

clean:
	dune clean
