.PHONY: check build test bench clean

check: build test

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe -- --quick

clean:
	dune clean
