.PHONY: check build test bench bench-json bench-gate fmt clean

check: build test

build:
	dune build

test:
	dune runtest

fmt:
	dune build @fmt

bench:
	dune exec bench/main.exe -- --quick

# Measure the perf suite (engine host throughput + CPI stacks) into
# bench.json.  Pass QUICK= (empty) for the full workload sizes.
QUICK ?= --quick
bench-json:
	dune exec bench/main.exe -- $(QUICK) --json bench.json

# Perf-regression gate: fresh measurement vs the checked-in baseline.
# Host throughput is noisy, so a failing comparison gets one fresh
# re-measurement before the verdict sticks.
bench-gate: bench-json
	dune exec scripts/bench_gate.exe -- BENCH_baseline.json bench.json \
	  || { echo "bench-gate: retrying with a fresh measurement"; \
	       $(MAKE) bench-json; \
	       dune exec scripts/bench_gate.exe -- BENCH_baseline.json bench.json; }

clean:
	dune clean
