(** Public facade of the STRAIGHT reproduction library.

    {[
      let exp =
        Straight_core.Experiment.run
          ~model:Straight_core.Models.straight_4way
          ~target:Straight_core.Experiment.Straight_re
          (Workloads.coremark ())
      in
      Printf.printf "IPC %.2f\n" exp.Straight_core.Experiment.ipc
    ]}

    See [examples/] for runnable programs and [bench/] for the per-figure
    reproduction harness. *)

(** The Table-I model configurations (re-exports {!Ooo_common.Params}). *)
module Models : sig
  include module type of Ooo_common.Params

  val all : t list
  (** [ss_2way; straight_2way; ss_4way; straight_4way]. *)
end

(** Structured diagnostics (re-exports {!Diag}, plus the mapping from
    the legacy per-library exceptions). *)
module Diagnostics : sig
  include module type of struct include Diag end

  val of_exn : exn -> Diag.t option
  (** Map any toolchain or simulator exception to its structured
      diagnostic: [Diag.Error] payloads pass through, the legacy
      [..._error of string] exceptions are classified by origin, and
      anything unrecognized yields [None]. *)
end

(** Compilation pipelines: MiniC source -> SSA IR -> either target. *)
module Compile : sig
  type target =
    | Straight of Straight_cc.Codegen.opt_level
    | Riscv

  val frontend :
    ?opt:Ssa_ir.Passes.opt_level -> ?checked:bool -> string ->
    Ssa_ir.Ir.program
  (** Parse + lower + optimize.  Each call returns a fresh program (the
      back ends mutate the IR).  [opt] selects the middle-end level
      (default [O2]); [checked] (default [false]) runs
      {!Ssa_ir.Passes.checked_at}, validating the SSA after every pass so
      a violation blames the culprit pass by name. *)

  val to_straight :
    ?opt:Ssa_ir.Passes.opt_level -> ?checked:bool ->
    ?max_dist:int -> level:Straight_cc.Codegen.opt_level -> string ->
    Assembler.Image.t * Straight_cc.Codegen.stats
  (** Compile MiniC to a STRAIGHT image (default max distance: the
      Table-I value, 31). *)

  val to_riscv :
    ?opt:Ssa_ir.Passes.opt_level -> ?checked:bool -> string ->
    Assembler.Image.t

  val straight_asm :
    ?opt:Ssa_ir.Passes.opt_level -> ?checked:bool ->
    ?max_dist:int -> level:Straight_cc.Codegen.opt_level -> string -> string
  (** The generated assembly text (Fig. 10-style inspection). *)

  val riscv_asm :
    ?opt:Ssa_ir.Passes.opt_level -> ?checked:bool -> string -> string
end

(** Running a workload on a cycle-level model. *)
module Experiment : sig
  type target =
    | Straight_raw        (** STRAIGHT compiled by the basic algorithm *)
    | Straight_re         (** STRAIGHT with RE+ redundancy elimination *)
    | Riscv               (** the superscalar baseline *)

  val target_label : target -> string

  type result = {
    workload : string;
    model : string;
    target : target;
    cycles : int;
    committed : int;
    ipc : float;
    output : string;                 (** program console output *)
    stats : Ooo_common.Engine.stats;
    dist_histogram : int array;      (** STRAIGHT targets only *)
  }

  val run :
    ?max_dist:int -> ?check:bool ->
    model:Ooo_common.Params.t -> target:target ->
    Workloads.t -> result
  (** Compile the workload for the target ISA and simulate it.  [check]
      (default [true]) arms the lockstep golden-model checker. *)

  val relative_perf : baseline:result -> result -> float
  (** Inverse-cycles relative performance, the metric of Figs. 11-14. *)
end
