(* Public facade of the STRAIGHT reproduction library.

   Typical use:

   {[
     let exp = Straight_core.Experiment.run
         ~model:Straight_core.Models.straight_4way
         ~target:(Straight `Re_plus)
         (Workloads.coremark ())
     in
     Printf.printf "IPC %.2f\n" exp.ipc
   ]}

   See examples/ for runnable programs and bench/ for the per-figure
   reproduction harness. *)

module Models = struct
  include Ooo_common.Params

  let all = [ ss_2way; straight_2way; ss_4way; straight_4way ]
end

(* Structured diagnostics: one place that understands every error the
   toolchain and the simulators can produce.  New code raises
   [Diag.Error] directly; the per-library [..._error of string]
   exceptions predate [Diag] and are mapped here so drivers and tests
   can report uniformly and pick exit codes without a catch-all. *)
module Diagnostics = struct
  include Diag

  let of_exn : exn -> Diag.t option = function
    | Diag.Error d -> Some d
    | Minic.Lexer.Lex_error m -> Some (Diag.make Diag.Lex_error m)
    | Minic.Parser.Parse_error m -> Some (Diag.make Diag.Parse_error m)
    | Minic.Lower.Lower_error m -> Some (Diag.make Diag.Lower_error m)
    | Ssa_ir.Analysis.Invalid_ir m -> Some (Diag.make Diag.Invalid_ir m)
    | Ssa_ir.Interp.Interp_error m -> Some (Diag.make Diag.Interp_error m)
    | Straight_cc.Codegen.Codegen_error m ->
      Some (Diag.make ~context:[ ("target", "straight") ] Diag.Codegen_error m)
    | Riscv_cc.Codegen.Codegen_error m ->
      Some (Diag.make ~context:[ ("target", "riscv") ] Diag.Codegen_error m)
    | Straight_isa.Encoding.Encode_error m ->
      Some (Diag.make ~context:[ ("target", "straight") ] Diag.Encode_error m)
    | Riscv_isa.Encoding.Encode_error m ->
      Some (Diag.make ~context:[ ("target", "riscv") ] Diag.Encode_error m)
    | Straight_isa.Parser.Parse_error m ->
      Some (Diag.make ~context:[ ("source", "straight-asm") ] Diag.Parse_error m)
    | Riscv_isa.Parser.Parse_error m ->
      Some (Diag.make ~context:[ ("source", "riscv-asm") ] Diag.Parse_error m)
    | Assembler.Asm.Asm_error m -> Some (Diag.make Diag.Asm_error m)
    | Iss.Straight_iss.Exec_error m ->
      Some (Diag.make ~context:[ ("iss", "straight") ] Diag.Exec_error m)
    | Iss.Riscv_iss.Exec_error m ->
      Some (Diag.make ~context:[ ("iss", "riscv") ] Diag.Exec_error m)
    | _ -> None
end

module Compile = struct
  type target =
    | Straight of Straight_cc.Codegen.opt_level   (* RAW or RE+ *)
    | Riscv

  (* [frontend ?opt ?checked src] parses + lowers + optimizes source
     into SSA IR (each call returns a fresh program: back ends mutate
     the IR).  The front-end is sniffed from the content — WAT modules
     start with '(' (lib/wasm), anything else is MiniC — so WASM
     workloads flow through every consumer of this entry point.  [opt]
     selects the middle-end level (default O2, matching the paper's
     clang -O2); [checked] validates the SSA after every pass, blaming
     the culprit pass on violation. *)
  let frontend ?(opt = Ssa_ir.Passes.O2) ?(checked = false) (src : string) :
    Ssa_ir.Ir.program =
    let p = Wasm.Front.compile_any src in
    let run =
      if checked then Ssa_ir.Passes.checked_at else Ssa_ir.Passes.optimize_at
    in
    List.iter (run opt) p.Ssa_ir.Ir.funcs;
    p

  (* [to_straight ?max_dist ~level src] compiles MiniC to a STRAIGHT
     image. *)
  let to_straight ?opt ?checked
      ?(max_dist = Ooo_common.Params.straight_max_dist)
      ~(level : Straight_cc.Codegen.opt_level) (src : string) :
    Assembler.Image.t * Straight_cc.Codegen.stats =
    let p = frontend ?opt ?checked src in
    let config = { Straight_cc.Codegen.max_dist; level } in
    let items = Straight_cc.Codegen.compile ~config p in
    let stats = Straight_cc.Codegen.stats_of_items items in
    (Assembler.Asm.Straight.assemble ~entry:"_start" items, stats)

  (* [to_riscv src] compiles MiniC to an RV32IM image. *)
  let to_riscv ?opt ?checked (src : string) : Assembler.Image.t =
    Riscv_cc.Codegen.compile_to_image (frontend ?opt ?checked src)

  (* [straight_asm ...] returns the generated assembly text (Fig. 10). *)
  let straight_asm ?opt ?checked
      ?(max_dist = Ooo_common.Params.straight_max_dist)
      ~level (src : string) : string =
    let config = { Straight_cc.Codegen.max_dist; level } in
    Assembler.Asm.Straight.program_to_string
      (Straight_cc.Codegen.compile ~config (frontend ?opt ?checked src))

  let riscv_asm ?opt ?checked (src : string) : string =
    Assembler.Asm.Riscv.program_to_string
      (Riscv_cc.Codegen.compile (frontend ?opt ?checked src))
end

module Experiment = struct
  type target =
    | Straight_raw
    | Straight_re
    | Riscv

  let target_label = function
    | Straight_raw -> "STRAIGHT(RAW)"
    | Straight_re -> "STRAIGHT(RE+)"
    | Riscv -> "SS"

  type result = {
    workload : string;
    model : string;
    target : target;
    cycles : int;
    committed : int;
    ipc : float;
    output : string;
    stats : Ooo_common.Engine.stats;
    dist_histogram : int array;        (* STRAIGHT targets only *)
  }

  (* [run ~model ~target ?max_dist workload] compiles the workload for the
     target ISA and simulates it on the cycle-level model. *)
  let run ?(max_dist = Ooo_common.Params.straight_max_dist) ?(check = true)
      ~(model : Ooo_common.Params.t) ~(target : target)
      (w : Workloads.t) : result =
    match target with
    | Riscv ->
      let image = Compile.to_riscv w.Workloads.source in
      let r = Ooo_riscv.Pipeline.run ~check model image in
      { workload = w.Workloads.name;
        model = model.Ooo_common.Params.name;
        target;
        cycles = r.Ooo_riscv.Pipeline.stats.Ooo_common.Engine.cycles;
        committed = r.Ooo_riscv.Pipeline.stats.Ooo_common.Engine.committed;
        ipc = r.Ooo_riscv.Pipeline.stats.Ooo_common.Engine.ipc;
        output = r.Ooo_riscv.Pipeline.output;
        stats = r.Ooo_riscv.Pipeline.stats;
        dist_histogram = [||] }
    | Straight_raw | Straight_re ->
      let level =
        match target with
        | Straight_raw -> Straight_cc.Codegen.Raw
        | _ -> Straight_cc.Codegen.Re_plus
      in
      let image, _ = Compile.to_straight ~max_dist ~level w.Workloads.source in
      let r = Ooo_straight.Pipeline.run ~check ~max_dist model image in
      { workload = w.Workloads.name;
        model = model.Ooo_common.Params.name;
        target;
        cycles = r.Ooo_straight.Pipeline.stats.Ooo_common.Engine.cycles;
        committed = r.Ooo_straight.Pipeline.stats.Ooo_common.Engine.committed;
        ipc = r.Ooo_straight.Pipeline.stats.Ooo_common.Engine.ipc;
        output = r.Ooo_straight.Pipeline.output;
        stats = r.Ooo_straight.Pipeline.stats;
        dist_histogram = r.Ooo_straight.Pipeline.dist_histogram }

  (* Relative performance (inverse cycles), the metric of Figs. 11-14. *)
  let relative_perf ~(baseline : result) (r : result) : float =
    float_of_int baseline.cycles /. float_of_int r.cycles
end
