(* CFG analyses over the SSA IR: predecessors, reverse postorder,
   dominators (Cooper–Harvey–Kennedy), liveness with phi-aware edge
   semantics, and natural loops. *)

open Ir

module IntSet = Set.Make (Int)
module IntMap = Map.Make (Int)

type cfg = {
  func : func;
  blocks : block array;            (* indexed by position in RPO *)
  index_of : (block_id, int) Hashtbl.t;
  preds : int list array;          (* in RPO indices *)
  succs : int list array;
  rpo : int array;                 (* identity permutation, kept for clarity *)
}

(* [build f] computes the CFG in reverse postorder.  Unreachable blocks are
   dropped (they cannot affect execution and break dominance reasoning). *)
let build (f : func) : cfg =
  let by_id = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace by_id b.bid b) f.blocks;
  let entry = entry_block f in
  let visited = Hashtbl.create 16 in
  let post = ref [] in
  let rec dfs bid =
    if not (Hashtbl.mem visited bid) then begin
      Hashtbl.replace visited bid ();
      let b = Hashtbl.find by_id bid in
      List.iter dfs (successors b.term);
      post := b :: !post
    end
  in
  dfs entry.bid;
  let blocks = Array.of_list !post in
  let n = Array.length blocks in
  let index_of = Hashtbl.create 16 in
  Array.iteri (fun i b -> Hashtbl.replace index_of b.bid i) blocks;
  let preds = Array.make n [] and succs = Array.make n [] in
  Array.iteri
    (fun i b ->
       let ss =
         List.filter_map (fun s -> Hashtbl.find_opt index_of s)
           (successors b.term)
       in
       succs.(i) <- ss;
       List.iter (fun s -> preds.(s) <- i :: preds.(s)) ss)
    blocks;
  { func = f; blocks; index_of; preds; succs; rpo = Array.init n Fun.id }

let block_index cfg bid =
  match Hashtbl.find_opt cfg.index_of bid with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "block %d unreachable/unknown" bid)

(* ---------- dominators ---------- *)

(* [idom cfg] returns the immediate-dominator array (RPO indices; entry maps
   to itself), using the Cooper–Harvey–Kennedy iterative algorithm. *)
let idom (cfg : cfg) : int array =
  let n = Array.length cfg.blocks in
  let idom = Array.make n (-1) in
  idom.(0) <- 0;
  let intersect b1 b2 =
    let f1 = ref b1 and f2 = ref b2 in
    while !f1 <> !f2 do
      while !f1 > !f2 do f1 := idom.(!f1) done;
      while !f2 > !f1 do f2 := idom.(!f2) done
    done;
    !f1
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 1 to n - 1 do
      let processed = List.filter (fun p -> idom.(p) >= 0) cfg.preds.(i) in
      match processed with
      | [] -> ()
      | first :: rest ->
        let new_idom = List.fold_left intersect first rest in
        if idom.(i) <> new_idom then begin
          idom.(i) <- new_idom;
          changed := true
        end
    done
  done;
  idom

(* [dominates idom a b] — does RPO index [a] dominate [b]? *)
let dominates (idom : int array) a b =
  let rec up b = if b = a then true else if b = 0 then a = 0 else up idom.(b) in
  up b

(* ---------- liveness ---------- *)

type liveness = {
  live_in : IntSet.t array;   (* at block entry, phi defs NOT included *)
  live_out : IntSet.t array;  (* at block exit; includes phi inputs the
                                 successors consume from this block *)
  phi_defs : IntSet.t array;  (* values defined by phis of the block *)
}

(* [liveness cfg] computes per-block live sets with the usual SSA edge
   convention: a phi use is live-out of the corresponding predecessor only,
   and a phi def becomes live at the phi block itself (it materializes "on
   the edge", which for STRAIGHT means: in the predecessor's frame tail). *)
let liveness (cfg : cfg) : liveness =
  let n = Array.length cfg.blocks in
  let uses = Array.make n IntSet.empty in
  let defs = Array.make n IntSet.empty in
  let phi_defs = Array.make n IntSet.empty in
  (* phi_in.(p) = values consumed by successors' phis when coming from p *)
  let phi_in = Array.make n IntSet.empty in
  Array.iteri
    (fun i b ->
       let local_defs = ref IntSet.empty in
       List.iter
         (fun (v, inst) ->
            (match inst with
             | Phi ins ->
               phi_defs.(i) <- IntSet.add v phi_defs.(i);
               List.iter
                 (fun (pred_bid, op) ->
                    match operand_value op, Hashtbl.find_opt cfg.index_of pred_bid with
                    | Some u, Some p -> phi_in.(p) <- IntSet.add u phi_in.(p)
                    | _ -> ())
                 ins
             | _ ->
               List.iter
                 (fun u ->
                    if not (IntSet.mem u !local_defs) then
                      uses.(i) <- IntSet.add u uses.(i))
                 (inst_uses inst));
            local_defs := IntSet.add v !local_defs)
         b.insts;
       List.iter
         (fun u ->
            if not (IntSet.mem u !local_defs) then
              uses.(i) <- IntSet.add u uses.(i))
         (term_uses b.term);
       defs.(i) <- !local_defs)
    cfg.blocks;
  let live_in = Array.make n IntSet.empty in
  let live_out = Array.make n IntSet.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      let out =
        List.fold_left
          (fun acc s -> IntSet.union acc (IntSet.diff live_in.(s) phi_defs.(s)))
          phi_in.(i) cfg.succs.(i)
      in
      let inn = IntSet.union uses.(i) (IntSet.diff out defs.(i)) in
      if not (IntSet.equal out live_out.(i)) || not (IntSet.equal inn live_in.(i))
      then begin
        live_out.(i) <- out;
        live_in.(i) <- inn;
        changed := true
      end
    done
  done;
  { live_in; live_out; phi_defs }

(* The STRAIGHT "entry frame" of a block: every value that must sit at a
   fixed distance when control enters — non-phi live-ins plus phi defs. *)
let entry_frame (lv : liveness) i : IntSet.t =
  IntSet.union lv.live_in.(i) lv.phi_defs.(i)

(* ---------- natural loops ---------- *)

type loop = {
  header : int;               (* RPO index *)
  body : IntSet.t;            (* RPO indices, header included *)
  exits : IntSet.t;           (* blocks outside reached from the body *)
}

(* [natural_loops cfg idom] finds one loop per back edge (loops sharing a
   header are merged). *)
let natural_loops (cfg : cfg) (idom : int array) : loop list =
  let n = Array.length cfg.blocks in
  let loops = Hashtbl.create 8 in
  for b = 0 to n - 1 do
    List.iter
      (fun s ->
         if dominates idom s b then begin
           (* back edge b -> s *)
           let body = ref (IntSet.of_list [ s; b ]) in
           let stack = ref (if b = s then [] else [ b ]) in
           let rec walk () =
             match !stack with
             | [] -> ()
             | x :: rest ->
               stack := rest;
               List.iter
                 (fun p ->
                    if not (IntSet.mem p !body) then begin
                      body := IntSet.add p !body;
                      stack := p :: !stack
                    end)
                 cfg.preds.(x);
               walk ()
           in
           walk ();
           let prev =
             match Hashtbl.find_opt loops s with
             | Some set -> set
             | None -> IntSet.empty
           in
           Hashtbl.replace loops s (IntSet.union prev !body)
         end)
      cfg.succs.(b)
  done;
  Hashtbl.fold
    (fun header body acc ->
       let exits =
         IntSet.fold
           (fun b acc ->
              List.fold_left
                (fun acc s ->
                   if IntSet.mem s body then acc else IntSet.add s acc)
                acc cfg.succs.(b))
           body IntSet.empty
       in
       { header; body; exits } :: acc)
    loops []

(* ---------- validation ---------- *)

exception Invalid_ir of string

let fail fmt = Format.kasprintf (fun s -> raise (Invalid_ir s)) fmt

(* [validate f] checks the SSA invariants we rely on: well-formed CFG
   (every terminator targets an existing block), single assignment with
   value ids inside [0, nvalues), defs dominate uses, phi arms match
   predecessors, no phis in the entry block.  Every violation raises
   [Invalid_ir] (never [Not_found]/[Invalid_argument]), so callers can
   classify a broken pass uniformly. *)
let validate (f : func) : unit =
  if f.blocks = [] then fail "%s: function has no blocks" f.name;
  (* structural checks first: [build] itself assumes terminator targets
     exist, so a dangling target must be diagnosed before the CFG walk *)
  let by_id = Hashtbl.create 16 in
  List.iter
    (fun b ->
       if Hashtbl.mem by_id b.bid then
         fail "%s: duplicate block id bb%d" f.name b.bid;
       Hashtbl.replace by_id b.bid ())
    f.blocks;
  List.iter
    (fun b ->
       List.iter
         (fun t ->
            if not (Hashtbl.mem by_id t) then
              fail "%s: bb%d terminator targets nonexistent block bb%d"
                f.name b.bid t)
         (successors b.term))
    f.blocks;
  let cfg = build f in
  let idom_arr = idom cfg in
  let def_site = Hashtbl.create 64 in
  for p = 0 to f.nparams - 1 do
    Hashtbl.replace def_site p (`Param, 0)
  done;
  Array.iteri
    (fun i b ->
       List.iteri
         (fun pos (v, inst) ->
            if v < 0 || v >= f.nvalues then
              fail "%s: value id %%%d outside [0, %d)" f.name v f.nvalues;
            if Hashtbl.mem def_site v then fail "%s: value %%%d defined twice" f.name v;
            Hashtbl.replace def_site v (`Block (i, pos), 0);
            (match inst with
             | Phi [] -> fail "%s: phi %%%d has no arms" f.name v
             | Phi _ when i = 0 ->
               (* the entry has an implicit in-edge from the caller that no
                  phi arm can name, so entry phis are meaningless *)
               fail "%s: phi %%%d in the entry block" f.name v
             | Phi ins ->
               let arm_ids = List.map fst ins in
               let rec dup = function
                 | a :: (b :: _ as t) -> if a = b then Some a else dup t
                 | _ -> None
               in
               (match dup (List.sort compare arm_ids) with
                | Some d ->
                  fail "%s: phi %%%d has two arms for bb%d" f.name v d
                | None -> ());
               let pred_ids =
                 List.map (fun p -> cfg.blocks.(p).bid) cfg.preds.(i)
               in
               List.iter
                 (fun p ->
                    if not (List.mem p arm_ids) then
                      fail "%s: phi %%%d has no arm for predecessor bb%d of bb%d"
                        f.name v p cfg.blocks.(i).bid)
                 pred_ids;
               (* an arm naming a reachable non-predecessor is a real
                  disagreement with the CFG; an arm naming an unreachable
                  block is the legal transient between a branch fold and
                  the next unreachable-block sweep (execution can never
                  take that edge) *)
               List.iter
                 (fun a ->
                    if not (List.mem a pred_ids) && Hashtbl.mem cfg.index_of a
                    then
                      fail "%s: phi %%%d arm bb%d is not a predecessor of bb%d"
                        f.name v a cfg.blocks.(i).bid)
                 arm_ids
             | _ -> ()))
         b.insts)
    cfg.blocks;
  (* defs dominate uses *)
  let check_use ~user_block ~user_pos v =
    match Hashtbl.find_opt def_site v with
    | None -> fail "%s: use of undefined value %%%d" f.name v
    | Some (`Param, _) -> ()
    | Some (`Block (db, dpos), _) ->
      if db = user_block then begin
        if dpos >= user_pos then
          fail "%s: value %%%d used at or before its definition" f.name v
      end
      else if not (dominates idom_arr db user_block) then
        fail "%s: def of %%%d (bb idx %d) does not dominate use (bb idx %d)"
          f.name v db user_block
  in
  Array.iteri
    (fun i b ->
       List.iteri
         (fun pos (_, inst) ->
            match inst with
            | Phi ins ->
              List.iter
                (fun (pred_bid, op) ->
                   match operand_value op with
                   | None -> ()
                   | Some u ->
                     (* arms from unreachable blocks carry no dataflow *)
                     (match Hashtbl.find_opt cfg.index_of pred_bid with
                      | None -> ()
                      | Some p ->
                        (* the input must be available at the end of pred *)
                        (match Hashtbl.find_opt def_site u with
                         | None -> fail "%s: phi input %%%d undefined" f.name u
                         | Some (`Param, _) -> ()
                         | Some (`Block (db, _), _) ->
                           if not (dominates idom_arr db p) then
                             fail "%s: phi input %%%d does not dominate pred"
                               f.name u)))
                ins
            | _ ->
              List.iter (fun u -> check_use ~user_block:i ~user_pos:pos u)
                (inst_uses inst))
         b.insts;
       List.iter
         (fun u -> check_use ~user_block:i ~user_pos:(List.length b.insts) u)
         (term_uses b.term);
       (* phis must be a prefix of the block *)
       let seen_nonphi = ref false in
       List.iter
         (fun (_, inst) ->
            if is_phi inst then begin
              if !seen_nonphi then fail "%s: phi after non-phi in bb%d" f.name b.bid
            end
            else seen_nonphi := true)
         b.insts)
    cfg.blocks
