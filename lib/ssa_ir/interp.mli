(** Reference interpreter for the SSA IR — the semantic oracle of the
    test suite: a MiniC program must print identical console output when
    interpreted here, when compiled to STRAIGHT and run on the STRAIGHT
    ISS, and when compiled to RV32IM and run on the RISC-V ISS.

    Global data is laid out exactly like the back ends lay it out
    (declaration order from {!Assembler.Layout.data_base}), so address
    arithmetic agrees across all three executions. *)

exception Interp_error of string

val run : ?max_steps:int -> Ir.program -> string * int32
(** [run p] interprets the program from [main]; returns the console output
    and [main]'s return value.
    @raise Interp_error on unknown globals/functions, unaligned accesses,
    or when [max_steps] (default 50M) is exceeded. *)

(** Final state of an interpreted program, for differential comparison
    against the compiled executions of the same source. *)
type snapshot = {
  output : string;               (** console output *)
  ret : int32;                   (** [main]'s return value *)
  read_word : int -> int32;      (** byte address -> word, 0 if untouched *)
  global_addr : string -> int option;  (** data-symbol byte address *)
}

val run_snapshot : ?max_steps:int -> Ir.program -> snapshot
(** Like {!run}, but also exposes the final memory.
    @raise Interp_error as {!run}. *)
