(* Reference interpreter for the SSA IR.

   This is the semantic oracle: a MiniC program must produce the same
   console output when (a) interpreted here, (b) compiled to STRAIGHT and
   run on the STRAIGHT ISS, and (c) compiled to RV32IM and run on the
   RISC-V ISS.  The tests exploit this three-way agreement. *)

open Ir

exception Interp_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Interp_error s)) fmt

type state = {
  mem : (int, int32) Hashtbl.t;       (* word-addressed *)
  console : Buffer.t;
  globals : (string, int) Hashtbl.t;  (* symbol -> byte address *)
  funcs : (string, func) Hashtbl.t;
  mutable sp : int;
  mutable steps : int;
  max_steps : int;
}

let read_mem st addr =
  if addr land 3 <> 0 then fail "unaligned load at 0x%x" addr;
  match Hashtbl.find_opt st.mem (addr lsr 2) with
  | Some v -> v
  | None -> 0l

let write_mem st addr v =
  if addr land 3 <> 0 then fail "unaligned store at 0x%x" addr;
  if addr = Assembler.Layout.mmio_putint then
    Buffer.add_string st.console (Printf.sprintf "%ld\n" v)
  else if addr = Assembler.Layout.mmio_putchar then
    Buffer.add_char st.console (Char.chr (Int32.to_int v land 0xFF))
  else Hashtbl.replace st.mem (addr lsr 2) v

let rec call st (f : func) (args : int32 list) : int32 =
  let values = Array.make (max f.nvalues 1) 0l in
  List.iteri (fun i a -> if i < f.nparams then values.(i) <- a) args;
  let frame_base = st.sp - f.frame_bytes in
  st.sp <- frame_base;
  let eval = function Const c -> c | Val v -> values.(v) in
  let by_id = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace by_id b.bid b) f.blocks;
  let rec run_block (b : block) (came_from : block_id option) : int32 =
    st.steps <- st.steps + 1;
    if st.steps > st.max_steps then fail "interpreter step budget exceeded";
    (* phis evaluate simultaneously against the incoming edge *)
    let phi_updates =
      List.filter_map
        (fun (v, inst) ->
           match inst, came_from with
           | Phi arms, Some pred ->
             (match List.assoc_opt pred arms with
              | Some op -> Some (v, eval op)
              | None -> fail "%s: phi %%%d has no arm for bb%d" f.name v pred)
           | Phi _, None -> fail "%s: phi in entry block" f.name
           | _ -> None)
        b.insts
    in
    List.iter (fun (v, x) -> values.(v) <- x) phi_updates;
    List.iter
      (fun (v, inst) ->
         match inst with
         | Phi _ -> ()
         | Bin (op, a, x) -> values.(v) <- eval_binop op (eval a) (eval x)
         | Cmp (op, a, x) ->
           values.(v) <- (if eval_cmpop op (eval a) (eval x) then 1l else 0l)
         | Load (a, o) ->
           values.(v) <- read_mem st ((Int32.to_int (eval a) + o) land 0xFFFFFFFF)
         | Store (x, a, o) ->
           let value = eval x in
           write_mem st ((Int32.to_int (eval a) + o) land 0xFFFFFFFF) value;
           values.(v) <- value
         | Call (g, cargs) ->
           let argv = List.map eval cargs in
           (match g with
            | "putint" ->
              (match argv with
               | [ x ] ->
                 write_mem st Assembler.Layout.mmio_putint x;
                 values.(v) <- x
               | _ -> fail "putint arity")
            | "putchar" ->
              (match argv with
               | [ x ] ->
                 write_mem st Assembler.Layout.mmio_putchar x;
                 values.(v) <- x
               | _ -> fail "putchar arity")
            | _ ->
              (match Hashtbl.find_opt st.funcs g with
               | Some callee -> values.(v) <- call st callee argv
               | None -> fail "call to unknown function %s" g))
         | Frame_addr o -> values.(v) <- Int32.of_int (frame_base + o)
         | Global_addr s ->
           (match Hashtbl.find_opt st.globals s with
            | Some a -> values.(v) <- Int32.of_int a
            | None -> fail "unknown global %s" s))
      b.insts;
    match b.term with
    | Ret op -> eval op
    | Br t -> run_block (Hashtbl.find by_id t) (Some b.bid)
    | Cond_br (c, t1, t2) ->
      let t = if eval c <> 0l then t1 else t2 in
      run_block (Hashtbl.find by_id t) (Some b.bid)
  in
  let result = run_block (entry_block f) None in
  st.sp <- frame_base + f.frame_bytes;
  result

(* Final state of an interpreted program: console output, main's return
   value, and a word-granular reader over the final memory (used by the
   differential fuzzer to compare global data against the ISS runs). *)
type snapshot = {
  output : string;
  ret : int32;
  read_word : int -> int32;      (* byte address -> word, 0 if untouched *)
  global_addr : string -> int option;
}

let run_snapshot ?(max_steps = 50_000_000) (p : program) : snapshot =
  let st =
    { mem = Hashtbl.create 1024;
      console = Buffer.create 256;
      globals = Hashtbl.create 16;
      funcs = Hashtbl.create 16;
      sp = Assembler.Layout.stack_top;
      steps = 0;
      max_steps }
  in
  (* lay out global data exactly like the backends: in declaration order
     from data_base *)
  let cursor = ref Assembler.Layout.data_base in
  List.iter
    (fun d ->
       Hashtbl.replace st.globals d.sym !cursor;
       List.iteri
         (fun i w -> Hashtbl.replace st.mem ((!cursor + (4 * i)) lsr 2) w)
         d.words;
       cursor := !cursor + (4 * List.length d.words) + d.extra_bytes)
    p.data;
  List.iter (fun f -> Hashtbl.replace st.funcs f.name f) p.funcs;
  let main =
    match Hashtbl.find_opt st.funcs "main" with
    | Some f -> f
    | None -> fail "no main"
  in
  let ret = call st main [] in
  { output = Buffer.contents st.console;
    ret;
    read_word =
      (fun addr ->
         match Hashtbl.find_opt st.mem (addr lsr 2) with
         | Some v -> v
         | None -> 0l);
    global_addr = (fun sym -> Hashtbl.find_opt st.globals sym) }

(* [run p] interprets the program from [main] and returns (console output,
   main's return value). *)
let run ?max_steps (p : program) : string * int32 =
  let s = run_snapshot ?max_steps p in
  (s.output, s.ret)
