(** CFG analyses over the SSA IR: reverse postorder, dominators
    (Cooper–Harvey–Kennedy), phi-aware liveness, natural loops, and SSA
    validation. *)

module IntSet : Set.S with type elt = int
module IntMap : Map.S with type key = int

type cfg = {
  func : Ir.func;
  blocks : Ir.block array;             (** indexed by RPO position *)
  index_of : (Ir.block_id, int) Hashtbl.t;
  preds : int list array;              (** RPO indices *)
  succs : int list array;
  rpo : int array;
}

val build : Ir.func -> cfg
(** Compute the CFG in reverse postorder; unreachable blocks are
    dropped. *)

val block_index : cfg -> Ir.block_id -> int
(** @raise Invalid_argument for unknown/unreachable blocks. *)

val idom : cfg -> int array
(** Immediate-dominator array over RPO indices (the entry maps to
    itself). *)

val dominates : int array -> int -> int -> bool
(** [dominates idom a b]: does RPO index [a] dominate [b]? *)

type liveness = {
  live_in : IntSet.t array;   (** at block entry; phi defs NOT included *)
  live_out : IntSet.t array;  (** at block exit; includes the phi inputs
                                  consumed by successors from this block *)
  phi_defs : IntSet.t array;
}

val liveness : cfg -> liveness
(** Per-block live sets with the usual SSA edge convention: a phi use is
    live-out of the corresponding predecessor only, and a phi def
    materializes at its block (for STRAIGHT: in the predecessors' frame
    tails). *)

val entry_frame : liveness -> int -> IntSet.t
(** The STRAIGHT "entry frame" of a block: every value that must sit at a
    fixed distance when control enters — non-phi live-ins plus phi defs. *)

type loop = {
  header : int;               (** RPO index *)
  body : IntSet.t;            (** RPO indices, header included *)
  exits : IntSet.t;           (** blocks outside, reached from the body *)
}

val natural_loops : cfg -> int array -> loop list
(** One loop per back edge; loops sharing a header are merged. *)

exception Invalid_ir of string

val validate : Ir.func -> unit
(** Check the SSA invariants the back ends rely on: every terminator
    targets an existing block, single assignment with value ids inside
    [0, nvalues), defs dominate uses, phi arms match predecessors, no
    phis (and no empty phis) in the entry block, phis form a block
    prefix.  Every violation raises [Invalid_ir] — never [Not_found] or
    [Invalid_argument] — so a broken pass is classified uniformly.
    @raise Invalid_ir with a diagnostic otherwise. *)
