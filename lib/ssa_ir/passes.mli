(** IR-to-IR passes: constant folding with algebraic simplification, dead
    code elimination, CFG cleanup, and critical-edge splitting (required
    by both back ends before phi lowering / distance fixing).

    All passes mutate the function in place and preserve SSA validity. *)

val const_fold : Ir.func -> bool
(** Rewrite through known constants, fold pure instructions and constant
    conditional branches (pruning the dropped targets' phi arms).  Returns
    [true] if anything changed. *)

val dce : Ir.func -> bool
(** Remove pure instructions whose results are never (transitively)
    used. *)

val remove_unreachable : Ir.func -> bool
(** Drop blocks unreachable from the entry and prune the phi arms that
    referenced them. *)

val merge_blocks : Ir.func -> bool
(** Merge straight-line pairs [b -> s] where [s]'s only predecessor is
    [b]. *)

val simplify_cfg : Ir.func -> bool

val cse : Ir.func -> bool
(** Dominator-scoped common-subexpression elimination over pure
    instructions (commutative operands normalized). *)

val licm : Ir.func -> bool
(** Hoist pure loop-invariant instructions into the loop preheader.
    Speculative hoisting is safe because no pure instruction can trap
    (division by zero is defined). *)

(** Optimization levels, mirroring -O0/-O1/-O2. *)
type opt_level = O0 | O1 | O2

(** A named IR-to-IR pass; the name is what checked runs blame when the
    IR stops validating. *)
type pass = {
  pass_name : string;
  pass_run : Ir.func -> bool;   (** [true] iff the function changed *)
}

val pipeline : opt_level -> pass list
(** The pass list the fixpoint iterates: [O0] nothing, [O1] folding +
    DCE + CFG cleanup, [O2] additionally CSE and LICM. *)

val run_passes : ?validate:bool -> pass list -> Ir.func -> unit
(** Iterate a pass list in order until a whole round changes nothing
    (bounded).  With [~validate:true], {!Analysis.validate} runs before
    the first pass and after every pass application; a violation is
    re-raised as {!Analysis.Invalid_ir} with the culprit pass's name
    prepended.  Public so tests can inject a deliberately broken pass
    and check it is blamed by name. *)

val optimize_at : opt_level -> Ir.func -> unit
(** [run_passes (pipeline level)]. *)

val optimize : Ir.func -> unit
(** [optimize = optimize_at O2].  Both back ends receive the same
    optimized IR — the paper compiles with clang -O2 for both targets, so
    RAW-vs-RE+ differences come from the STRAIGHT-specific back end
    only. *)

val checked_at : opt_level -> Ir.func -> unit
(** [run_passes ~validate:true (pipeline level)]: the same pipeline with
    pass-by-pass SSA validation, so a miscompile names the exact pass. *)

val checked : Ir.func -> unit
(** [checked = checked_at O2]. *)

val split_critical_edges : Ir.func -> unit
(** Insert an empty block on every edge [P -> S] where [P] has several
    successors and [S] several predecessors.  STRAIGHT needs this to give
    every merge predecessor its own frame tail; RISC-V to place phi
    moves. *)

val layout_rpo : Ir.func -> unit
(** Order [f.blocks] in reverse postorder (entry first), dropping
    unreachable blocks; the back ends use this as their layout order. *)
