(* IR-to-IR passes: constant folding with algebraic simplification, dead
   code elimination, CFG cleanup, and critical-edge splitting (required by
   both back ends before phi lowering / distance fixing). *)

open Ir
module IntSet = Set.Make (Int)

(* ---------- constant folding ---------- *)

let fold_identities op a b =
  (* Algebraic identities that do not change bit-exact semantics. *)
  match op, a, b with
  | Add, x, Const 0l | Add, Const 0l, x -> Some (`Op x)
  | Sub, x, Const 0l -> Some (`Op x)
  | Mul, _, Const 0l | Mul, Const 0l, _ -> Some (`Const 0l)
  | Mul, x, Const 1l | Mul, Const 1l, x -> Some (`Op x)
  | (And | Or), x, y when x = y -> Some (`Op x)
  | And, _, Const 0l | And, Const 0l, _ -> Some (`Const 0l)
  | Or, x, Const 0l | Or, Const 0l, x -> Some (`Op x)
  | Xor, x, Const 0l | Xor, Const 0l, x -> Some (`Op x)
  | Xor, Val x, Val y when x = y -> Some (`Const 0l)
  | (Shl | Lshr | Ashr), x, Const 0l -> Some (`Op x)
  | (Shl | Lshr), Const 0l, _ -> Some (`Const 0l)
  | _ -> None

(* [const_fold f] rewrites through known constants and folds pure
   instructions; returns [true] if anything changed. *)
let const_fold (f : func) : bool =
  let known : (value, int32) Hashtbl.t = Hashtbl.create 32 in
  let changed = ref false in
  let subst op =
    match op with
    | Val v ->
      (match Hashtbl.find_opt known v with
       | Some c -> changed := true; Const c
       | None -> op)
    | Const _ -> op
  in
  (* two sweeps so constants discovered late propagate into earlier blocks
     (phis); callers loop this pass to a fixpoint anyway *)
  for _sweep = 1 to 2 do
    List.iter
      (fun b ->
         b.insts <-
           List.map
             (fun (v, inst) ->
                let inst =
                  match inst with
                  | Bin (op, a, x) -> Bin (op, subst a, subst x)
                  | Cmp (op, a, x) -> Cmp (op, subst a, subst x)
                  | Load (a, o) -> Load (subst a, o)
                  | Store (x, a, o) -> Store (subst x, subst a, o)
                  | Call (g, args) -> Call (g, List.map subst args)
                  | Phi ins -> Phi (List.map (fun (p, o) -> (p, subst o)) ins)
                  | Frame_addr _ | Global_addr _ -> inst
                in
                (match inst with
                 | Bin (op, Const a, Const x) ->
                   Hashtbl.replace known v (eval_binop op a x)
                 | Cmp (op, Const a, Const x) ->
                   Hashtbl.replace known v (if eval_cmpop op a x then 1l else 0l)
                 | Bin (op, a, x) ->
                   (match fold_identities op a x with
                    | Some (`Const c) -> Hashtbl.replace known v c
                    | Some (`Op (Const c)) -> Hashtbl.replace known v c
                    | Some (`Op (Val _)) | None -> ())
                 | Phi ins ->
                   (* a phi whose inputs are all the same constant *)
                   (match ins with
                    | (_, Const c) :: rest
                      when List.for_all (fun (_, o) -> o = Const c) rest ->
                      Hashtbl.replace known v c
                    | _ -> ())
                 | _ -> ());
                (v, inst))
             b.insts;
         b.term <-
           (match b.term with
            | Ret op -> Ret (subst op)
            | Br t -> Br t
            | Cond_br (c, t1, t2) ->
              (match subst c with
               | Const c ->
                 changed := true;
                 let kept = if c <> 0l then t1 else t2 in
                 let dropped = if c <> 0l then t2 else t1 in
                 (* the dropped target loses this predecessor: prune arms *)
                 if dropped <> kept then
                   List.iter
                     (fun tb ->
                        if tb.bid = dropped then
                          tb.insts <-
                            List.map
                              (fun (v, inst) ->
                                 match inst with
                                 | Phi arms ->
                                   (v, Phi (List.filter
                                              (fun (p, _) -> p <> b.bid)
                                              arms))
                                 | _ -> (v, inst))
                              tb.insts)
                     f.blocks;
                 Br kept
               | c -> Cond_br (c, t1, t2))))
      f.blocks
  done;
  (* Replace folded definitions by trivial constants so DCE can drop them
     once all uses are rewritten.  Folded phis keep their shape: [subst]
     already rewrote every arm to the constant, and turning one into a
     [Bin] mid-block would put later phis after a non-phi. *)
  List.iter
    (fun b ->
       b.insts <-
         List.map
           (fun (v, inst) ->
              match Hashtbl.find_opt known v, inst with
              | Some c, (Bin _ | Cmp _) -> (v, Bin (Add, Const c, Const 0l))
              | _ -> (v, inst))
           b.insts)
    f.blocks;
  (* rewrite uses of identity-folded values: x + 0 -> x *)
  let copy_of : (value, operand) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun b ->
       List.iter
         (fun (v, inst) ->
            match inst with
            | Bin (op, a, x) ->
              (match fold_identities op a x with
               | Some (`Op o) -> Hashtbl.replace copy_of v o
               | _ -> ())
            | Phi [ (_, o) ] -> Hashtbl.replace copy_of v o
            | _ -> ())
         b.insts)
    f.blocks;
  if Hashtbl.length copy_of > 0 then begin
    let rec resolve o =
      match o with
      | Val v ->
        (match Hashtbl.find_opt copy_of v with
         | Some o' -> resolve o'
         | None -> o)
      | Const _ -> o
    in
    let subst2 o =
      let o' = resolve o in
      if o' <> o then changed := true;
      o'
    in
    List.iter
      (fun b ->
         b.insts <-
           List.map
             (fun (v, inst) ->
                let inst =
                  match inst with
                  | Bin (op, a, x) -> Bin (op, subst2 a, subst2 x)
                  | Cmp (op, a, x) -> Cmp (op, subst2 a, subst2 x)
                  | Load (a, o) -> Load (subst2 a, o)
                  | Store (x, a, o) -> Store (subst2 x, subst2 a, o)
                  | Call (g, args) -> Call (g, List.map subst2 args)
                  | Phi ins -> Phi (List.map (fun (p, o) -> (p, subst2 o)) ins)
                  | Frame_addr _ | Global_addr _ -> inst
                in
                (v, inst))
             b.insts;
         b.term <-
           (match b.term with
            | Ret op -> Ret (subst2 op)
            | Br t -> Br t
            | Cond_br (c, t1, t2) -> Cond_br (subst2 c, t1, t2)))
      f.blocks
  end;
  !changed

(* ---------- dead code elimination ---------- *)

(* [dce f] removes pure instructions whose results are never used. *)
let dce (f : func) : bool =
  let used = Hashtbl.create 64 in
  let mark op = match op with Val v -> Hashtbl.replace used v () | Const _ -> () in
  let mark_inst inst = List.iter (fun v -> Hashtbl.replace used v ()) (inst_uses inst) in
  (* seed: side effects and terminators *)
  List.iter
    (fun b ->
       List.iter (fun (_, inst) -> if has_side_effect inst then mark_inst inst) b.insts;
       List.iter (fun v -> Hashtbl.replace used v ()) (term_uses b.term);
       ignore mark)
    f.blocks;
  (* propagate backwards to a fixpoint *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
         List.iter
           (fun (v, inst) ->
              if Hashtbl.mem used v && not (has_side_effect inst) then
                List.iter
                  (fun u ->
                     if not (Hashtbl.mem used u) then begin
                       Hashtbl.replace used u ();
                       changed := true
                     end)
                  (inst_uses inst))
           b.insts)
      f.blocks
  done;
  let removed = ref false in
  List.iter
    (fun b ->
       let keep, drop =
         List.partition
           (fun (v, inst) -> has_side_effect inst || Hashtbl.mem used v)
           b.insts
       in
       if drop <> [] then removed := true;
       b.insts <- keep)
    f.blocks;
  !removed

(* ---------- CFG cleanup ---------- *)

(* Remove blocks unreachable from the entry and prune phi arms that
   referenced them. *)
let remove_unreachable (f : func) : bool =
  let cfg = Analysis.build f in
  let reachable = Hashtbl.create 16 in
  Array.iter (fun b -> Hashtbl.replace reachable b.bid ()) cfg.Analysis.blocks;
  let before = List.length f.blocks in
  f.blocks <- List.filter (fun b -> Hashtbl.mem reachable b.bid) f.blocks;
  List.iter
    (fun b ->
       b.insts <-
         List.map
           (fun (v, inst) ->
              match inst with
              | Phi ins ->
                let ins = List.filter (fun (p, _) -> Hashtbl.mem reachable p) ins in
                (match ins with
                 | [ (_, op) ] -> (v, Bin (Add, op, Const 0l))
                 | _ -> (v, Phi ins))
              | _ -> (v, inst))
           b.insts)
    f.blocks;
  List.length f.blocks <> before

(* Merge a straight-line pair b -> s when s's only predecessor is b. *)
let merge_blocks (f : func) : bool =
  let cfg = Analysis.build f in
  let n = Array.length cfg.Analysis.blocks in
  let merged = ref false in
  let removed = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    let b = cfg.Analysis.blocks.(i) in
    if not (Hashtbl.mem removed b.bid) then
      match b.term with
      | Br t when t <> b.bid ->
        let ti = Analysis.block_index cfg t in
        let s = cfg.Analysis.blocks.(ti) in
        if cfg.Analysis.preds.(ti) = [ i ] && not (Hashtbl.mem removed s.bid)
           && not (List.exists (fun (_, inst) -> is_phi inst) s.insts)
           && s.bid <> (entry_block f).bid
        then begin
          b.insts <- b.insts @ s.insts;
          b.term <- s.term;
          (* successors of s now have predecessor b instead of s *)
          List.iter
            (fun b' ->
               b'.insts <-
                 List.map
                   (fun (v, inst) ->
                      match inst with
                      | Phi ins ->
                        (v, Phi (List.map
                                   (fun (p, o) -> ((if p = s.bid then b.bid else p), o))
                                   ins))
                      | _ -> (v, inst))
                   b'.insts)
            f.blocks;
          Hashtbl.replace removed s.bid ();
          merged := true
        end
      | _ -> ()
  done;
  if !merged then
    f.blocks <- List.filter (fun b -> not (Hashtbl.mem removed b.bid)) f.blocks;
  !merged

let simplify_cfg (f : func) : bool =
  let a = remove_unreachable f in
  let b = merge_blocks f in
  a || b

(* forward declaration placeholder: [optimize] is defined after cse/licm
   at the end of this file. *)

(* ---------- critical edge splitting ---------- *)

(* [split_critical_edges f] inserts an empty block on every edge P->S where
   P has several successors and S several predecessors.  Both back ends
   need this: STRAIGHT to give every merge predecessor its own frame tail,
   RISC-V to place phi moves. *)
let split_critical_edges (f : func) : unit =
  let next_bid =
    ref (List.fold_left (fun acc b -> max acc b.bid) 0 f.blocks + 1)
  in
  let cfg = Analysis.build f in
  let npreds = Hashtbl.create 16 in
  Array.iteri
    (fun i b ->
       Hashtbl.replace npreds b.bid (List.length cfg.Analysis.preds.(i)))
    cfg.Analysis.blocks;
  let new_blocks = ref [] in
  List.iter
    (fun b ->
       match b.term with
       | Cond_br (c, t1, t2) ->
         let maybe_split target =
           if (match Hashtbl.find_opt npreds target with
               | Some n -> n > 1
               | None -> false)
           then begin
             let e = { bid = !next_bid; insts = []; term = Br target } in
             incr next_bid;
             new_blocks := e :: !new_blocks;
             (* phi arms in target that pointed at b now come from e *)
             let tb = block f target in
             tb.insts <-
               List.map
                 (fun (v, inst) ->
                    match inst with
                    | Phi ins ->
                      (v, Phi (List.map
                                 (fun (p, o) -> ((if p = b.bid then e.bid else p), o))
                                 ins))
                    | _ -> (v, inst))
                 tb.insts;
             e.bid
           end
           else target
         in
         (* Split each leg independently; a conditional with two identical
            targets is normalized first. *)
         if t1 = t2 then b.term <- Br t1
         else begin
           let t1' = maybe_split t1 in
           let t2' = maybe_split t2 in
           b.term <- Cond_br (c, t1', t2')
         end
       | Br _ | Ret _ -> ())
    f.blocks;
  f.blocks <- f.blocks @ List.rev !new_blocks

(* Order blocks in reverse postorder (entry first); drops unreachable
   blocks.  Back ends use this as their layout order. *)
let layout_rpo (f : func) : unit =
  ignore (remove_unreachable f);
  let cfg = Analysis.build f in
  f.blocks <- Array.to_list cfg.Analysis.blocks

(* ---------- common subexpression elimination ---------- *)

(* Canonical key for pure, non-phi instructions (commutative operands
   normalized). *)
let cse_key (inst : inst) : inst option =
  let norm_pair a b =
    if a <= b then (a, b) else (b, a)
  in
  match inst with
  | Bin (op, a, b) ->
    (match op with
     | Add | Mul | And | Or | Xor ->
       let a, b = norm_pair a b in
       Some (Bin (op, a, b))
     | _ -> Some inst)
  | Cmp (_, _, _) | Frame_addr _ | Global_addr _ -> Some inst
  | Load _ | Store _ | Call _ | Phi _ -> None

(* [cse f] removes redundant pure computations: an instruction is replaced
   by an identical earlier one whose definition block dominates it. *)
let cse (f : func) : bool =
  let cfg = Analysis.build f in
  let idom = Analysis.idom cfg in
  let table : (inst, value * int) Hashtbl.t = Hashtbl.create 64 in
  let replacement : (value, value) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun bi b ->
       b.insts <-
         List.filter
           (fun (v, inst) ->
              (* rewrite operands through earlier replacements so chains of
                 equal expressions collapse in one pass *)
              match cse_key inst with
              | None -> true
              | Some key ->
                (match Hashtbl.find_opt table key with
                 | Some (v0, b0) when Analysis.dominates idom b0 bi ->
                   Hashtbl.replace replacement v v0;
                   false
                 | _ ->
                   Hashtbl.replace table key (v, bi);
                   true))
           b.insts)
    cfg.Analysis.blocks;
  if Hashtbl.length replacement = 0 then false
  else begin
    let rec resolve op =
      match op with
      | Val v ->
        (match Hashtbl.find_opt replacement v with
         | Some v' -> resolve (Val v')
         | None -> op)
      | Const _ -> op
    in
    List.iter
      (fun b ->
         b.insts <-
           List.map
             (fun (v, inst) ->
                ( v,
                  match inst with
                  | Bin (op, a, x) -> Bin (op, resolve a, resolve x)
                  | Cmp (op, a, x) -> Cmp (op, resolve a, resolve x)
                  | Load (a, o) -> Load (resolve a, o)
                  | Store (x, a, o) -> Store (resolve x, resolve a, o)
                  | Call (g, args) -> Call (g, List.map resolve args)
                  | Phi arms -> Phi (List.map (fun (p, o) -> (p, resolve o)) arms)
                  | Frame_addr _ | Global_addr _ -> inst ))
             b.insts;
         b.term <-
           (match b.term with
            | Ret op -> Ret (resolve op)
            | Br t -> Br t
            | Cond_br (c, t1, t2) -> Cond_br (resolve c, t1, t2)))
      f.blocks;
    true
  end

(* ---------- loop-invariant code motion ---------- *)

(* [licm f] hoists pure instructions whose operands are loop-invariant
   into the loop preheader (the unique out-of-loop predecessor of the
   header).  Our pure instructions cannot trap (division by zero is
   defined), so speculative hoisting is safe. *)
let licm (f : func) : bool =
  let cfg = Analysis.build f in
  let idom = Analysis.idom cfg in
  let loops = Analysis.natural_loops cfg idom in
  let changed = ref false in
  List.iter
    (fun (l : Analysis.loop) ->
       let header = cfg.Analysis.blocks.(l.Analysis.header) in
       let preds_outside =
         List.filter
           (fun p -> not (Analysis.IntSet.mem p l.Analysis.body))
           cfg.Analysis.preds.(l.Analysis.header)
       in
       match preds_outside with
       | [ p ] ->
         let pre = cfg.Analysis.blocks.(p) in
         (* only a dedicated preheader (its sole successor is the header):
            hoisting into a block with other successors would execute the
            code on unrelated paths *)
         if successors pre.term = [ header.bid ] then begin
           (* values defined inside the loop *)
           let defined_in = Hashtbl.create 32 in
           Analysis.IntSet.iter
             (fun bi ->
                List.iter
                  (fun (v, _) -> Hashtbl.replace defined_in v ())
                  cfg.Analysis.blocks.(bi).insts)
             l.Analysis.body;
           let invariant_op = function
             | Const _ -> true
             | Val v -> not (Hashtbl.mem defined_in v)
           in
           (* iterate: hoisting one instruction can make another invariant.
              Hoisting extends live ranges across the whole loop, which is
              register pressure STRAIGHT pays for in frame slots — cap the
              number of hoisted values per loop. *)
           let budget = ref 6 in
           let again = ref true in
           while !again do
             again := false;
             Analysis.IntSet.iter
               (fun bi ->
                  let b = cfg.Analysis.blocks.(bi) in
                  let hoisted, kept =
                    List.partition
                      (fun (_, inst) ->
                         !budget > 0
                         && (match inst with
                             | Bin _ | Cmp _ | Frame_addr _ | Global_addr _ ->
                               true
                             | Load _ | Store _ | Call _ | Phi _ -> false)
                         && List.for_all invariant_op
                           (match inst with
                            | Bin (_, a, x) | Cmp (_, a, x) -> [ a; x ]
                            | _ -> [])
                         && (decr budget; true))
                      b.insts
                  in
                  if hoisted <> [] then begin
                    again := true;
                    changed := true;
                    pre.insts <- pre.insts @ hoisted;
                    b.insts <- kept;
                    List.iter
                      (fun (v, _) -> Hashtbl.remove defined_in v)
                      hoisted
                  end)
               l.Analysis.body
           done
         end
       | _ -> ())
    loops;
  !changed


(* ---------- the pass pipeline ---------- *)

(* Optimization levels, mirroring -O0/-O1/-O2. *)
type opt_level = O0 | O1 | O2

(* A named IR-to-IR pass.  The name is what [run_passes ~validate] blames
   when the IR stops validating, so every entry in [pipeline] (and every
   test-injected pass) must carry a stable, human-meaningful name. *)
type pass = {
  pass_name : string;
  pass_run : func -> bool;      (* true iff the function changed *)
}

let mk name run = { pass_name = name; pass_run = run }

(* [pipeline level] is the pass list [optimize_at]/[checked_at] iterate:
   O0 nothing, O1 folding + DCE + CFG cleanup, O2 additionally CSE and
   LICM.  Both back ends receive the same optimized IR (the paper
   compiles both targets with clang -O2). *)
let pipeline (level : opt_level) : pass list =
  match level with
  | O0 -> []
  | O1 ->
    [ mk "const-fold" const_fold; mk "dce" dce; mk "simplify-cfg" simplify_cfg ]
  | O2 ->
    [ mk "const-fold" const_fold; mk "cse" cse; mk "licm" licm;
      mk "dce" dce; mk "simplify-cfg" simplify_cfg ]

(* Bound on fixpoint rounds; in practice the pipeline converges in 2-3. *)
let max_rounds = 8

(* [run_passes ?validate passes f] iterates [passes] in order until a
   whole round changes nothing (or [max_rounds] is hit).  With
   [~validate:true], [Analysis.validate] runs before the first pass and
   after every pass application, and a violation is re-raised with the
   culprit pass's name prepended — turning "the O2 pipeline miscompiles"
   into "cse broke the IR: ...". *)
let run_passes ?(validate = false) (passes : pass list) (f : func) : unit =
  let check blame =
    if validate then
      try Analysis.validate f
      with Analysis.Invalid_ir msg ->
        raise (Analysis.Invalid_ir (Printf.sprintf "%s: %s" blame msg))
  in
  check "before optimization";
  let rec go n =
    if n > 0 then begin
      let changed =
        List.fold_left
          (fun acc p ->
             let c = p.pass_run f in
             check (Printf.sprintf "pass %s broke the IR" p.pass_name);
             acc || c)
          false passes
      in
      if changed then go (n - 1)
    end
  in
  go max_rounds

let optimize_at (level : opt_level) (f : func) : unit =
  run_passes (pipeline level) f

let optimize (f : func) : unit = optimize_at O2 f

(* Checked variants: same pipeline, SSA-validated after every pass. *)
let checked_at (level : opt_level) (f : func) : unit =
  run_passes ~validate:true (pipeline level) f

let checked (f : func) : unit = checked_at O2 f
