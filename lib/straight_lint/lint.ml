(* Static verifier for linked STRAIGHT images.

   The STRAIGHT contract is easy for a code generator to violate
   silently: a distance that is legal on one path but reaches past the
   values actually produced on another, an SPADD imbalance that only
   corrupts SP three calls deep, a branch into the middle of nowhere.
   [lint] re-derives these invariants directly from the encoded words,
   independent of the compiler that produced them:

   - every text word decodes, and re-encodes to the identical word
     (field-truncation bugs show up here);
   - every source distance is within [0, max_dist];
   - no instruction reads a distance larger than the minimum number of
     instructions that can have retired before it on ANY path from the
     entry (reading past that window observes garbage ring slots);
   - SPADD offsets balance: along every path through a function the
     accumulated SP displacement at a given PC is unique, and zero at
     every JR;
   - branch/jump/JAL targets land inside the text section;
   - execution cannot fall off the end of the text section.

   The analysis is conservative over an over-approximated CFG: JAL edges
   flow into the callee, and every JR may return to any JAL's return
   point.  That makes the minimum-retired count a true lower bound, so a
   flagged read really can observe an undefined slot on some path of the
   over-approximation. *)

module Isa = Straight_isa.Isa
module Enc = Straight_isa.Encoding
module Image = Assembler.Image

(* Findings share the severity + JSON shape of lib/riscv_lint via
   [Lint_report], so drivers and CI consume both verifiers' output
   uniformly. *)
type finding = Lint_report.finding = {
  pc : int;          (* byte address of the offending instruction *)
  check : string;    (* short machine-stable name of the check *)
  severity : Lint_report.severity;
  message : string;
  func : string option;
}

let pp_finding = Lint_report.pp_finding

(* ---------- decode phase ---------- *)

(* Decode the whole text section; undecodable slots stay [None]. *)
let decode_text (image : Image.t) :
  Isa.resolved option array * finding list =
  let findings = ref [] in
  let add pc check message =
    findings := Lint_report.finding ~pc ~check message :: !findings
  in
  let insns =
    Array.mapi
      (fun i w ->
         let pc = image.Image.text_base + (4 * i) in
         match Enc.decode w with
         | None ->
           add pc "illegal-opcode"
             (Printf.sprintf "word 0x%08lx has no STRAIGHT decoding" w);
           None
         | Some insn ->
           (match Enc.encode insn with
            | w' when w' = w -> ()
            | w' ->
              add pc "encode-roundtrip"
                (Printf.sprintf
                   "decoded instruction re-encodes to 0x%08lx, image has 0x%08lx"
                   w' w)
            | exception Enc.Encode_error msg ->
              add pc "encode-roundtrip"
                (Printf.sprintf "decoded instruction does not re-encode: %s" msg));
           Some insn)
      image.Image.text
  in
  (insns, List.rev !findings)

(* ---------- CFG helpers ---------- *)

(* Static successor word-indices of instruction [i]; [`Jr] and [`Halt]
   need caller-specific handling. *)
let successors (len : int) (i : int) (insn : Isa.resolved) :
  [ `Idx of int list | `Jr | `Halt ] =
  let t off = i + off in
  match insn with
  | Isa.J off -> `Idx [ t off ]
  | Isa.Jal off -> `Idx [ t off ]
  | Isa.Jr _ -> `Jr
  | Isa.Halt -> `Halt
  | Isa.Bez (_, off) | Isa.Bnz (_, off) -> `Idx [ i + 1; t off ]
  | _ -> `Idx [ i + 1 ]
  [@@warning "-27"]

let in_text (len : int) (idx : int) = idx >= 0 && idx < len

(* ---------- the checks ---------- *)

let check_targets (image : Image.t) (insns : Isa.resolved option array) :
  finding list =
  let len = Array.length insns in
  let findings = ref [] in
  let add pc check message =
    findings := Lint_report.finding ~pc ~check message :: !findings
  in
  Array.iteri
    (fun i insn ->
       let pc = image.Image.text_base + (4 * i) in
       match insn with
       | None -> ()
       | Some insn ->
         (match insn with
          | Isa.Bez (_, off) | Isa.Bnz (_, off) | Isa.J off | Isa.Jal off ->
            if not (in_text len (i + off)) then
              add pc "target-bounds"
                (Printf.sprintf
                   "control target 0x%x outside text [0x%x, 0x%x)"
                   (pc + (4 * off))
                   image.Image.text_base
                   (Image.text_end image))
          | _ -> ());
         (* falling past the last word means fetching outside .text *)
         if i = len - 1 then begin
           match insn with
           | Isa.J _ | Isa.Jal _ | Isa.Jr _ | Isa.Halt -> ()
           | _ ->
             add pc "fall-through"
               "last text instruction can fall through past the end of .text"
         end)
    insns;
  List.rev !findings

let check_distances ?(max_dist = Isa.max_dist) (image : Image.t)
    (insns : Isa.resolved option array) : finding list =
  let findings = ref [] in
  Array.iteri
    (fun i insn ->
       let pc = image.Image.text_base + (4 * i) in
       match insn with
       | None -> ()
       | Some insn ->
         List.iter
           (fun d ->
              if d > max_dist then
                findings :=
                  Lint_report.finding ~pc ~check:"distance-range"
                    (Printf.sprintf "source distance %d exceeds max_dist %d" d
                       max_dist)
                  :: !findings)
           (Isa.sources insn))
    insns;
  List.rev !findings

(* Minimum number of retired instructions before each instruction over
   any path from the entry, saturated at [cap].  A source distance
   larger than this bound can read a ring slot no instruction has
   written yet. *)
let min_retired (image : Image.t) (insns : Isa.resolved option array)
    ~(cap : int) : int array =
  let len = Array.length insns in
  let v = Array.make len max_int in
  (* return points: every JAL's [i + 1] (JAL writes the link there) *)
  let return_points =
    let acc = ref [] in
    Array.iteri
      (fun i insn ->
         match insn with
         | Some (Isa.Jal _) when i + 1 < len -> acc := (i + 1) :: !acc
         | _ -> ())
      insns;
    !acc
  in
  let entry_idx = (image.Image.entry - image.Image.text_base) / 4 in
  let work = Queue.create () in
  let relax idx value =
    if in_text len idx && value < v.(idx) then begin
      v.(idx) <- value;
      Queue.push idx work
    end
  in
  relax entry_idx 0;
  while not (Queue.is_empty work) do
    let i = Queue.pop work in
    match insns.(i) with
    | None -> ()
    | Some insn ->
      let value = min (v.(i) + 1) cap in
      (match successors len i insn with
       | `Idx succ -> List.iter (fun j -> relax j value) succ
       | `Halt -> ()
       | `Jr ->
         (* a return may resume at any call's return point *)
         List.iter (fun j -> relax j value) return_points)
  done;
  v

let check_live_window ?(max_dist = Isa.max_dist) (image : Image.t)
    (insns : Isa.resolved option array) : finding list =
  let v = min_retired image insns ~cap:max_dist in
  let findings = ref [] in
  Array.iteri
    (fun i insn ->
       let pc = image.Image.text_base + (4 * i) in
       match insn with
       | None -> ()
       | Some insn ->
         if v.(i) < max_int then
           List.iter
             (fun d ->
                if d > 0 && d > v.(i) then
                  findings :=
                    Lint_report.finding ~pc ~check:"live-window"
                      (Printf.sprintf
                         "distance %d reaches before the live window (at most \
                          %d instructions retired on the shortest path here)"
                         d v.(i))
                    :: !findings)
             (Isa.sources insn))
    insns;
  List.rev !findings

(* SPADD balance: DFS from the image entry and from every JAL target,
   tracking the accumulated SP displacement.  A JAL is summarized as
   "callee returns with SP restored" (its own traversal checks that),
   so the walk continues at the return point with an unchanged offset. *)
let check_spadd (image : Image.t) (insns : Isa.resolved option array) :
  finding list =
  let len = Array.length insns in
  let findings = ref [] in
  let add pc check message =
    findings := Lint_report.finding ~pc ~check message :: !findings
  in
  let seen : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let rec walk (i : int) (offset : int) : unit =
    if in_text len i then begin
      let pc = image.Image.text_base + (4 * i) in
      match Hashtbl.find_opt seen i with
      | Some o ->
        if o <> offset then
          add pc "spadd-imbalance"
            (Printf.sprintf
               "SP displacement depends on the path taken here (%d vs %d)" o
               offset)
      | None ->
        Hashtbl.replace seen i offset;
        (match insns.(i) with
         | None -> ()
         | Some insn ->
           let offset' =
             match insn with Isa.Spadd k -> offset + k | _ -> offset
           in
           (match insn with
            | Isa.Jr _ ->
              if offset' <> 0 then
                add pc "spadd-imbalance"
                  (Printf.sprintf
                     "function returns with SP displaced by %d bytes" offset')
            | Isa.Halt -> ()
            | Isa.Jal _ -> walk (i + 1) offset'
            | _ ->
              (match successors len i insn with
               | `Idx succ -> List.iter (fun j -> walk j offset') succ
               | `Jr | `Halt -> ())))
    end
  in
  let entry_idx = (image.Image.entry - image.Image.text_base) / 4 in
  walk entry_idx 0;
  Array.iteri
    (fun i insn ->
       match insn with
       | Some (Isa.Jal off) when in_text len (i + off) -> walk (i + off) 0
       | _ -> ())
    insns;
  List.rev !findings

(* ---------- entry points ---------- *)

(* [lint ?max_dist image] runs every check over a linked STRAIGHT image
   and returns the findings, sorted by [pc] then [check] (stably, so
   same-pc same-check findings keep their emission order). *)
let lint ?(max_dist = Isa.max_dist) (image : Image.t) : finding list =
  let insns, decode_findings = decode_text image in
  decode_findings
  @ check_distances ~max_dist image insns
  @ check_targets image insns
  @ check_live_window ~max_dist image insns
  @ check_spadd image insns
  |> List.stable_sort (fun a b -> compare (a.pc, a.check) (b.pc, b.check))
