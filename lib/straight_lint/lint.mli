(** Static verifier for linked STRAIGHT images — the counterpart of
    {!Riscv_lint}.  Re-derives the STRAIGHT contract directly from the
    encoded words, independent of the compiler that produced them: every
    text word decodes and re-encodes identically, every source distance
    is in range, no instruction reads past the minimum number of
    instructions retired before it on any path (the live window), SPADD
    displacements balance on all paths and are zero at every JR, and
    control targets stay inside the text section.  The analysis is
    conservative over an over-approximated CFG (JAL flows into the
    callee; every JR may resume at any JAL's return point). *)

type finding = Lint_report.finding = {
  pc : int;
  check : string;
  severity : Lint_report.severity;
  message : string;
  func : string option;
}

val pp_finding : Format.formatter -> finding -> unit

val lint : ?max_dist:int -> Assembler.Image.t -> finding list
(** Run every check over a linked STRAIGHT image; findings come back
    sorted by [pc] then [check].  [max_dist] defaults to
    {!Straight_isa.Isa.max_dist}.  Check names: ["illegal-opcode"],
    ["encode-roundtrip"], ["distance-range"], ["target-bounds"],
    ["fall-through"], ["live-window"], ["spadd-imbalance"]. *)
