(* Functional (instruction-set level) simulator for STRAIGHT.

   The architectural register file is modelled as the paper describes it: a
   key-value ring indexed by the register pointer (RP).  Instruction number
   [k] writes slot [k mod ring]; a source distance [d] reads slot
   [(k - d) mod ring]; distance 0 reads the hard-wired zero.  SP is the only
   overwritable register and is updated in order by SPADD.

   STRAIGHT offers precise interrupts (Section III-A): the architectural
   state is exactly {PC, SP, RP} plus the bounded window of the last
   [max_dist] register values (older values can never be referenced).
   [checkpoint]/[resume] implement that contract and are exercised by the
   test suite: interrupting a run at any instruction boundary and resuming
   from the captured state is indistinguishable from an uninterrupted run. *)

module Isa = Straight_isa.Isa
module Encoding = Straight_isa.Encoding
module Layout = Assembler.Layout
module Image = Assembler.Image

exception Exec_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Exec_error s)) fmt

(* Ring size: any power of two strictly greater than the maximum referable
   distance works functionally (the microarchitectural MAX_RP sizing rule is
   checked by the cycle model, not here). *)
let ring = 2048
let ring_mask = ring - 1

type config = {
  max_insns : int;       (* abort runaway programs *)
  collect_trace : bool;  (* keep the full uop trace for the timing models *)
  collect_dist : bool;   (* fill the source-distance histogram (Fig. 16) *)
}

let default_config =
  { max_insns = 50_000_000; collect_trace = false; collect_dist = false }

(* Pre-decoded text section for fast dispatch. *)
let decode_text (image : Image.t) : Isa.resolved array =
  Array.mapi
    (fun i w ->
       match Encoding.decode w with
       | Some insn -> insn
       | None ->
         fail "illegal instruction word 0x%lx at 0x%x" w
           (image.Image.text_base + (4 * i)))
    image.Image.text

type session = {
  code : Isa.resolved array;
  text_base : int;
  mem : Memory.t;
  regs : int32 array;
  mutable sp : int32;
  mutable pc : int;
  mutable count : int;          (* retired instructions = architectural RP *)
  mutable halted : bool;
  config : config;
  mutable uops : Trace.uop list;
  dist_hist : int array;
  on_retire : (int -> Trace.uop -> unit) option;
      (* observer fed (index, uop) at every retirement, independent of
         trace collection — the functional-warming / sampling tap *)
}

(* [start ?config image] loads the image and returns a fresh session at the
   reset state (SP at the stack top, PC at the entry point). *)
let start ?(config = default_config) ?on_retire (image : Image.t) : session =
  let mem = Memory.create () in
  Memory.load_image mem image;
  { code = decode_text image;
    text_base = image.Image.text_base;
    mem;
    regs = Array.make ring 0l;
    sp = Int32.of_int Layout.stack_top;
    pc = image.Image.entry;
    count = 0;
    halted = false;
    config;
    uops = [];
    dist_hist = Array.make (Isa.max_dist + 1) 0;
    on_retire }

(* The precise architectural state at an instruction boundary: PC, SP, RP,
   and the last [max_dist] register values (window.(i) is the value at
   distance i+1). *)
type arch_state = {
  a_pc : int;
  a_sp : int32;
  a_rp : int;
  a_window : int32 array;
}

(* [checkpoint s] captures the architectural state (e.g. to take an
   interrupt).  Memory is shared state and is not part of the register
   checkpoint, as in a conventional CPU. *)
let checkpoint (s : session) : arch_state =
  { a_pc = s.pc;
    a_sp = s.sp;
    a_rp = s.count;
    a_window =
      Array.init Isa.max_dist (fun i ->
          let d = i + 1 in
          if d > s.count then 0l else s.regs.((s.count - d) land ring_mask)) }

(* [resume ?config image mem state] rebuilds a session from a checkpoint:
   only {PC, SP, RP, window} are needed — the paper's precise-interrupt
   property. *)
let resume ?(config = default_config) ?on_retire (image : Image.t)
    (mem : Memory.t) (st : arch_state) : session =
  let s =
    { code = decode_text image;
      text_base = image.Image.text_base;
      mem;
      regs = Array.make ring 0l;
      sp = st.a_sp;
      pc = st.a_pc;
      count = st.a_rp;
      halted = false;
      config;
      uops = [];
      dist_hist = Array.make (Isa.max_dist + 1) 0;
      on_retire }
  in
  Array.iteri
    (fun i v ->
       let d = i + 1 in
       if d <= st.a_rp then s.regs.((st.a_rp - d) land ring_mask) <- v)
    st.a_window;
  s

(* [step s] executes one instruction. *)
let step (s : session) : unit =
  if s.count >= s.config.max_insns then
    Diag.error
      ~context:[ ("retired", string_of_int s.count);
                 ("max_insns", string_of_int s.config.max_insns);
                 ("pc", Printf.sprintf "0x%x" s.pc) ]
      Diag.Fuel_exhausted
      "instruction budget exceeded: %d instructions retired (max_insns=%d)"
      s.count s.config.max_insns;
  let idx = (s.pc - s.text_base) asr 2 in
  if idx < 0 || idx >= Array.length s.code then fail "PC out of text: 0x%x" s.pc;
  let insn = s.code.(idx) in
  let here = s.pc in
  let next = ref (here + 4) in
  let result = ref 0l in
  let mem_addr = ref 0 in
  let ctrl = ref Trace.Not_ctrl in
  let read_src d = if d = 0 then 0l else s.regs.((s.count - d) land ring_mask) in
  let record_dist d =
    if s.config.collect_dist && d > 0 then
      s.dist_hist.(d) <- s.dist_hist.(d) + 1
  in
  (match insn with
   | Isa.Alu (op, a, b) ->
     record_dist a; record_dist b;
     result := Isa.eval_alu op (read_src a) (read_src b)
   | Isa.Alui (op, a, i) ->
     record_dist a;
     result := Isa.eval_alu (Isa.alu_of_alui op) (read_src a) i
   | Isa.Lui i -> result := Int32.shift_left i 12
   | Isa.Rmov a -> record_dist a; result := read_src a
   | Isa.Nop -> result := 0l
   | Isa.Ld (b, off) ->
     record_dist b;
     let addr = Int32.to_int (read_src b) + off in
     mem_addr := addr land 0xFFFFFFFF;
     result := Memory.read s.mem !mem_addr
   | Isa.St (v, b, off) ->
     record_dist v; record_dist b;
     let addr = Int32.to_int (read_src b) + off in
     mem_addr := addr land 0xFFFFFFFF;
     let value = read_src v in
     Memory.write s.mem !mem_addr value;
     (* The paper: "store value is returned in the current specification" *)
     result := value
   | Isa.Bez (a, off) ->
     record_dist a;
     let taken = read_src a = 0l in
     let target = here + (4 * off) in
     if taken then next := target;
     ctrl := Trace.Cond { taken; target }
   | Isa.Bnz (a, off) ->
     record_dist a;
     let taken = read_src a <> 0l in
     let target = here + (4 * off) in
     if taken then next := target;
     ctrl := Trace.Cond { taken; target }
   | Isa.J off ->
     let target = here + (4 * off) in
     next := target;
     ctrl := Trace.Uncond { target; is_call = false; is_ret = false }
   | Isa.Jal off ->
     let target = here + (4 * off) in
     result := Int32.of_int (here + 4);
     next := target;
     ctrl := Trace.Uncond { target; is_call = true; is_ret = false }
   | Isa.Jr a ->
     record_dist a;
     let target = Int32.to_int (read_src a) land 0xFFFFFFFF in
     next := target;
     result := Int32.of_int (here + 4);
     ctrl := Trace.Uncond { target; is_call = false; is_ret = true }
   | Isa.Spadd i ->
     s.sp <- Int32.add s.sp (Int32.of_int i);
     result := s.sp
   | Isa.Halt -> s.halted <- true);
  s.regs.(s.count land ring_mask) <- !result;
  if s.config.collect_trace || s.on_retire <> None then begin
    let fu =
      match Isa.kind insn with
      | Isa.Kmul -> Trace.FU_mul
      | Isa.Kdiv -> Trace.FU_div
      | Isa.Kload -> Trace.FU_load
      | Isa.Kstore -> Trace.FU_store
      | Isa.Kbranch | Isa.Kjump -> Trace.FU_branch
      | Isa.Kalu | Isa.Krmov | Isa.Knop | Isa.Khalt -> Trace.FU_alu
    in
    let u =
      { Trace.pc = here;
        fu;
        srcs_dist = Array.of_list (List.filter (fun d -> d > 0) (Isa.sources insn));
        srcs_reg = [||];
        dest_reg = 0;
        has_dest = true;
        is_rmov = (match insn with Isa.Rmov _ -> true | _ -> false);
        is_nop = (match insn with Isa.Nop -> true | _ -> false);
        is_spadd = (match insn with Isa.Spadd _ -> true | _ -> false);
        mem_addr = !mem_addr;
        ctrl = !ctrl }
    in
    if s.config.collect_trace then s.uops <- u :: s.uops;
    match s.on_retire with Some f -> f s.count u | None -> ()
  end;
  s.count <- s.count + 1;
  s.pc <- !next

(* [run_session ?until s] executes until HALT (or until the retired count
   reaches [until]). *)
let run_session ?(until = max_int) (s : session) : unit =
  while (not s.halted) && s.count < until do
    step s
  done

let session_memory (s : session) : Memory.t = s.mem

let finish (s : session) : Trace.run =
  { Trace.output = Memory.output s.mem;
    retired = s.count;
    trace = Array.of_list (List.rev s.uops);
    dist_histogram = s.dist_hist }

(* [run ?config image] executes the whole program. *)
let run ?(config = default_config) (image : Image.t) : Trace.run =
  let s = start ~config image in
  run_session s;
  finish s

(* Exit value of a halted session.  The startup stub is
   [_start: JAL f_main; HALT] and the epilogue places the return value
   immediately before JR, so once HALT retires the three youngest slots
   are HALT, JR, retval — main's result sits at distance 3. *)
let exit_value (s : session) : int32 =
  if s.count < 3 then 0l else s.regs.((s.count - 3) land ring_mask)

(* [run_with_interrupt ~at image] takes a precise interrupt after [at]
   retired instructions: the session is checkpointed, destroyed, and
   rebuilt from only {PC, SP, RP, window} + memory before continuing.
   The combined run must equal an uninterrupted one. *)
let run_with_interrupt ?(config = default_config) ~(at : int)
    (image : Image.t) : Trace.run =
  let s = start ~config image in
  run_session ~until:at s;
  if s.halted then finish s
  else begin
    let st = checkpoint s in
    let s' = resume ~config image s.mem st in
    run_session s';
    let r = finish s' in
    (* the console is in shared memory state; retired counts accumulate *)
    { r with Trace.retired = r.Trace.retired }
  end
