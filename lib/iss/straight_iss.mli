(** Functional (instruction-set level) simulator for STRAIGHT.

    The architectural register file is the paper's key-value ring indexed
    by the register pointer (RP): instruction number [k] writes slot
    [k mod ring], a source distance [d] reads slot [(k - d) mod ring],
    distance 0 reads zero.  SP is the only overwritable register, updated
    in order by SPADD.

    The precise-interrupt contract (Section III-A) is exposed via
    {!checkpoint}/{!resume}: the architectural state is exactly
    {PC, SP, RP} plus the bounded window of the last
    {!Straight_isa.Isa.max_dist} register values. *)

exception Exec_error of string

type config = {
  max_insns : int;       (** abort runaway programs *)
  collect_trace : bool;  (** keep the uop trace for the timing models *)
  collect_dist : bool;   (** fill the source-distance histogram (Fig. 16) *)
}

val default_config : config

type session
(** An in-progress execution. *)

val start :
  ?config:config -> ?on_retire:(int -> Trace.uop -> unit) ->
  Assembler.Image.t -> session
(** Load the image; SP at the stack top, PC at the entry point.
    [on_retire], when given, is fed [(index, uop)] at every retirement —
    independently of [collect_trace] — so functional warming and the
    interval sampler can observe a full-speed run without accumulating
    the whole trace in memory. *)

val step : session -> unit
(** Execute one instruction.
    @raise Exec_error on illegal instructions or PC out of text.
    @raise Diag.Error with code [Fuel_exhausted] (context carries the
    retired count) on budget overrun, or [Mem_unaligned]/[Mem_mmio] on
    memory faults. *)

val run_session : ?until:int -> session -> unit
(** Execute until HALT, or until the retired count reaches [until]. *)

val finish : session -> Trace.run

val session_memory : session -> Memory.t
(** The session's (shared, mutable) memory — inspect after HALT for
    differential comparison of final data. *)

val exit_value : session -> int32
(** [main]'s return value after a completed run of a compiled image: the
    startup stub is [_start: JAL f_main; HALT] and the epilogue places
    the return value immediately before JR, so it sits at distance 3
    once HALT has retired. *)

(** The precise architectural state at an instruction boundary:
    [a_window.(i)] is the register value at distance [i + 1]. *)
type arch_state = {
  a_pc : int;
  a_sp : int32;
  a_rp : int;
  a_window : int32 array;
}

val checkpoint : session -> arch_state
(** Capture the architectural state (memory is shared state and is not
    part of the register checkpoint, as on a conventional CPU). *)

val resume :
  ?config:config -> ?on_retire:(int -> Trace.uop -> unit) ->
  Assembler.Image.t -> Memory.t -> arch_state -> session
(** Rebuild a session from a checkpoint: only {PC, SP, RP, window} are
    needed — the paper's precise-interrupt property. *)

val run : ?config:config -> Assembler.Image.t -> Trace.run
(** Execute a whole program. *)

val run_with_interrupt :
  ?config:config -> at:int -> Assembler.Image.t -> Trace.run
(** Take a precise interrupt after [at] retired instructions: checkpoint,
    destroy the session, rebuild from the checkpoint, continue.  The
    result must equal an uninterrupted {!run} (tested). *)
