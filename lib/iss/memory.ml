(* Word-granular sparse memory with MMIO console.  Pages keep functional
   simulation fast over millions of accesses. *)

module Layout = Assembler.Layout
module Image = Assembler.Image

let page_words = 1024
let page_shift = 10 (* log2 page_words *)

type t = {
  pages : (int, int32 array) Hashtbl.t;
  console : Buffer.t;
}

let create () = { pages = Hashtbl.create 64; console = Buffer.create 256 }

let page t index =
  match Hashtbl.find_opt t.pages index with
  | Some p -> p
  | None ->
    let p = Array.make page_words 0l in
    Hashtbl.replace t.pages index p;
    p

let check_aligned addr =
  if addr land 3 <> 0 then
    Diag.error
      ~context:[ ("addr", Printf.sprintf "0x%x" addr) ]
      Diag.Mem_unaligned "unaligned word access at 0x%x" addr

(* [read t addr] reads the 32-bit word at byte address [addr]. *)
let read t addr =
  check_aligned addr;
  if Layout.is_mmio addr then
    Diag.error
      ~context:[ ("addr", Printf.sprintf "0x%x" addr) ]
      Diag.Mem_mmio "load from write-only MMIO address 0x%x" addr;
  let w = addr lsr 2 in
  (page t (w lsr page_shift)).(w land (page_words - 1))

(* [write t addr v] writes [v]; MMIO addresses drive the console instead. *)
let write t addr v =
  check_aligned addr;
  if Layout.is_mmio addr then begin
    if addr = Layout.mmio_putint then
      Buffer.add_string t.console (Printf.sprintf "%ld\n" v)
    else if addr = Layout.mmio_putchar then
      Buffer.add_char t.console (Char.chr (Int32.to_int v land 0xFF))
    else
      Diag.error
        ~context:[ ("addr", Printf.sprintf "0x%x" addr) ]
        Diag.Mem_mmio "unknown MMIO store at 0x%x" addr
  end
  else begin
    let w = addr lsr 2 in
    (page t (w lsr page_shift)).(w land (page_words - 1)) <- v
  end

(* [load_image t image] copies .text and .data into memory. *)
let load_image t (image : Image.t) =
  Array.iteri
    (fun i w -> write t (image.Image.text_base + (4 * i)) w)
    image.Image.text;
  Array.iteri
    (fun i w -> write t (image.Image.data_base + (4 * i)) w)
    image.Image.data

let output t = Buffer.contents t.console
