(* Functional simulator for the RV32IM baseline.

   Organized as a stepwise session (start / step / run_session / finish),
   mirroring Straight_iss, so the sampling machinery can drive both ISSes
   through one shape: run at full speed, observe every retirement through
   [on_retire], stop at instruction boundaries. *)

module Isa = Riscv_isa.Isa
module Encoding = Riscv_isa.Encoding
module Layout = Assembler.Layout
module Image = Assembler.Image

exception Exec_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Exec_error s)) fmt

type config = { max_insns : int; collect_trace : bool }

let default_config = { max_insns = 50_000_000; collect_trace = false }

let decode_text (image : Image.t) : Isa.resolved array =
  Array.mapi
    (fun i w ->
       match Encoding.decode w with
       | Some insn -> insn
       | None ->
         fail "illegal instruction word 0x%lx at 0x%x" w
           (image.Image.text_base + (4 * i)))
    image.Image.text

type session = {
  code : Isa.resolved array;
  text_base : int;
  mem : Memory.t;
  regs : int32 array;
  mutable pc : int;
  mutable count : int;
  mutable halted : bool;
  config : config;
  mutable uops : Trace.uop list;
  on_retire : (int -> Trace.uop -> unit) option;
}

let start ?(config = default_config) ?on_retire (image : Image.t) : session =
  let mem = Memory.create () in
  Memory.load_image mem image;
  let regs = Array.make 32 0l in
  regs.(2) <- Int32.of_int Layout.stack_top;
  { code = decode_text image;
    text_base = image.Image.text_base;
    mem;
    regs;
    pc = image.Image.entry;
    count = 0;
    halted = false;
    config;
    uops = [];
    on_retire }

(* [step s] executes one instruction. *)
let step (s : session) : unit =
  if s.count >= s.config.max_insns then
    Diag.error
      ~context:[ ("retired", string_of_int s.count);
                 ("max_insns", string_of_int s.config.max_insns);
                 ("pc", Printf.sprintf "0x%x" s.pc) ]
      Diag.Fuel_exhausted
      "instruction budget exceeded: %d instructions retired (max_insns=%d)"
      s.count s.config.max_insns;
  let idx = (s.pc - s.text_base) asr 2 in
  if idx < 0 || idx >= Array.length s.code then
    fail "PC out of text: 0x%x" s.pc;
  let insn = s.code.(idx) in
  let here = s.pc in
  let next = ref (here + 4) in
  let mem_addr = ref 0 in
  let ctrl = ref Trace.Not_ctrl in
  let regs = s.regs in
  let set rd v = if rd <> 0 then regs.(rd) <- v in
  (match insn with
   | Isa.Lui (rd, i) -> set rd (Int32.shift_left i 12)
   | Isa.Auipc (rd, i) ->
     set rd (Int32.add (Int32.of_int here) (Int32.shift_left i 12))
   | Isa.Jal (rd, off) ->
     let target = here + off in
     set rd (Int32.of_int (here + 4));
     next := target;
     ctrl := Trace.Uncond { target; is_call = rd = 1; is_ret = false }
   | Isa.Jalr (rd, rs1, imm) ->
     let target = (Int32.to_int regs.(rs1) + imm) land 0xFFFFFFFE in
     set rd (Int32.of_int (here + 4));
     next := target;
     ctrl := Trace.Uncond { target; is_call = rd = 1; is_ret = rd = 0 && rs1 = 1 }
   | Isa.Branch (cond, rs1, rs2, off) ->
     let taken = Isa.eval_branch cond regs.(rs1) regs.(rs2) in
     let target = here + off in
     if taken then next := target;
     ctrl := Trace.Cond { taken; target }
   | Isa.Lw (rd, rs1, imm) ->
     let addr = (Int32.to_int regs.(rs1) + imm) land 0xFFFFFFFF in
     mem_addr := addr;
     set rd (Memory.read s.mem addr)
   | Isa.Sw (rs2, rs1, imm) ->
     let addr = (Int32.to_int regs.(rs1) + imm) land 0xFFFFFFFF in
     mem_addr := addr;
     Memory.write s.mem addr regs.(rs2)
   | Isa.Alui (op, rd, rs1, imm) ->
     set rd (Isa.eval_alu (Isa.alu_of_alui op) regs.(rs1) (Int32.of_int imm))
   | Isa.Alu (op, rd, rs1, rs2) -> set rd (Isa.eval_alu op regs.(rs1) regs.(rs2))
   | Isa.Ebreak -> s.halted <- true);
  if s.config.collect_trace || s.on_retire <> None then begin
    let fu =
      match Isa.kind insn with
      | Isa.Kmul -> Trace.FU_mul
      | Isa.Kdiv -> Trace.FU_div
      | Isa.Kload -> Trace.FU_load
      | Isa.Kstore -> Trace.FU_store
      | Isa.Kbranch | Isa.Kjump -> Trace.FU_branch
      | Isa.Kalu | Isa.Khalt -> Trace.FU_alu
    in
    let dest = match Isa.dest insn with Some rd -> rd | None -> 0 in
    let u =
      { Trace.pc = here;
        fu;
        srcs_dist = [||];
        srcs_reg = Array.of_list (List.filter (fun r -> r <> 0) (Isa.sources insn));
        dest_reg = dest;
        has_dest = dest <> 0;
        is_rmov = false;
        is_nop = false;
        is_spadd = false;
        mem_addr = !mem_addr;
        ctrl = !ctrl }
    in
    if s.config.collect_trace then s.uops <- u :: s.uops;
    match s.on_retire with Some f -> f s.count u | None -> ()
  end;
  s.count <- s.count + 1;
  s.pc <- !next

let run_session ?(until = max_int) (s : session) : unit =
  while (not s.halted) && s.count < until do
    step s
  done

let session_memory (s : session) : Memory.t = s.mem

let finish (s : session) : Trace.run =
  { Trace.output = Memory.output s.mem;
    retired = s.count;
    trace = Array.of_list (List.rev s.uops);
    dist_histogram = [||] }

(* Full outcome of a run: the trace plus the final architectural state,
   for differential comparison against the other executions of the same
   program (the fuzzer compares exit values and final memory). *)
type outcome = {
  run : Trace.run;
  mem : Memory.t;
  regs : int32 array;
}

let run_outcome ?(config = default_config) (image : Image.t) : outcome =
  let s = start ~config image in
  run_session s;
  { run = finish s; mem = s.mem; regs = s.regs }

let run ?config (image : Image.t) : Trace.run = (run_outcome ?config image).run

(* Exit value of a completed run: main's return register a0. *)
let exit_value (o : outcome) : int32 = o.regs.(10)
