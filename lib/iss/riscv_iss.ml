(* Functional simulator for the RV32IM baseline. *)

module Isa = Riscv_isa.Isa
module Encoding = Riscv_isa.Encoding
module Layout = Assembler.Layout
module Image = Assembler.Image

exception Exec_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Exec_error s)) fmt

type config = { max_insns : int; collect_trace : bool }

let default_config = { max_insns = 50_000_000; collect_trace = false }

let decode_text (image : Image.t) : Isa.resolved array =
  Array.mapi
    (fun i w ->
       match Encoding.decode w with
       | Some insn -> insn
       | None ->
         fail "illegal instruction word 0x%lx at 0x%x" w
           (image.Image.text_base + (4 * i)))
    image.Image.text

(* Full outcome of a run: the trace plus the final architectural state,
   for differential comparison against the other executions of the same
   program (the fuzzer compares exit values and final memory). *)
type outcome = {
  run : Trace.run;
  mem : Memory.t;
  regs : int32 array;
}

let run_outcome ?(config = default_config) (image : Image.t) : outcome =
  let code = decode_text image in
  let mem = Memory.create () in
  Memory.load_image mem image;
  let regs = Array.make 32 0l in
  regs.(2) <- Int32.of_int Layout.stack_top;
  let pc = ref image.Image.entry in
  let count = ref 0 in
  let uops = ref [] in
  let halted = ref false in
  let text_base = image.Image.text_base in
  let text_len = Array.length code in
  let set rd v = if rd <> 0 then regs.(rd) <- v in
  while not !halted do
    if !count >= config.max_insns then
      Diag.error
        ~context:[ ("retired", string_of_int !count);
                   ("max_insns", string_of_int config.max_insns);
                   ("pc", Printf.sprintf "0x%x" !pc) ]
        Diag.Fuel_exhausted
        "instruction budget exceeded: %d instructions retired (max_insns=%d)"
        !count config.max_insns;
    let idx = (!pc - text_base) asr 2 in
    if idx < 0 || idx >= text_len then fail "PC out of text: 0x%x" !pc;
    let insn = code.(idx) in
    let here = !pc in
    let next = ref (here + 4) in
    let mem_addr = ref 0 in
    let ctrl = ref Trace.Not_ctrl in
    (match insn with
     | Isa.Lui (rd, i) -> set rd (Int32.shift_left i 12)
     | Isa.Auipc (rd, i) ->
       set rd (Int32.add (Int32.of_int here) (Int32.shift_left i 12))
     | Isa.Jal (rd, off) ->
       let target = here + off in
       set rd (Int32.of_int (here + 4));
       next := target;
       ctrl := Trace.Uncond { target; is_call = rd = 1; is_ret = false }
     | Isa.Jalr (rd, rs1, imm) ->
       let target = (Int32.to_int regs.(rs1) + imm) land 0xFFFFFFFE in
       set rd (Int32.of_int (here + 4));
       next := target;
       ctrl := Trace.Uncond { target; is_call = rd = 1; is_ret = rd = 0 && rs1 = 1 }
     | Isa.Branch (cond, rs1, rs2, off) ->
       let taken = Isa.eval_branch cond regs.(rs1) regs.(rs2) in
       let target = here + off in
       if taken then next := target;
       ctrl := Trace.Cond { taken; target }
     | Isa.Lw (rd, rs1, imm) ->
       let addr = (Int32.to_int regs.(rs1) + imm) land 0xFFFFFFFF in
       mem_addr := addr;
       set rd (Memory.read mem addr)
     | Isa.Sw (rs2, rs1, imm) ->
       let addr = (Int32.to_int regs.(rs1) + imm) land 0xFFFFFFFF in
       mem_addr := addr;
       Memory.write mem addr regs.(rs2)
     | Isa.Alui (op, rd, rs1, imm) ->
       set rd (Isa.eval_alu (Isa.alu_of_alui op) regs.(rs1) (Int32.of_int imm))
     | Isa.Alu (op, rd, rs1, rs2) -> set rd (Isa.eval_alu op regs.(rs1) regs.(rs2))
     | Isa.Ebreak -> halted := true);
    if config.collect_trace then begin
      let fu =
        match Isa.kind insn with
        | Isa.Kmul -> Trace.FU_mul
        | Isa.Kdiv -> Trace.FU_div
        | Isa.Kload -> Trace.FU_load
        | Isa.Kstore -> Trace.FU_store
        | Isa.Kbranch | Isa.Kjump -> Trace.FU_branch
        | Isa.Kalu | Isa.Khalt -> Trace.FU_alu
      in
      let dest = match Isa.dest insn with Some rd -> rd | None -> 0 in
      let u =
        { Trace.pc = here;
          fu;
          srcs_dist = [||];
          srcs_reg = Array.of_list (List.filter (fun r -> r <> 0) (Isa.sources insn));
          dest_reg = dest;
          has_dest = dest <> 0;
          is_rmov = false;
          is_nop = false;
          is_spadd = false;
          mem_addr = !mem_addr;
          ctrl = !ctrl }
      in
      uops := u :: !uops
    end;
    incr count;
    pc := !next
  done;
  { run =
      { Trace.output = Memory.output mem;
        retired = !count;
        trace = Array.of_list (List.rev !uops);
        dist_histogram = [||] };
    mem;
    regs }

let run ?config (image : Image.t) : Trace.run = (run_outcome ?config image).run

(* Exit value of a completed run: main's return register a0. *)
let exit_value (o : outcome) : int32 = o.regs.(10)
