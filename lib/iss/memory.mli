(** Word-granular sparse memory with the MMIO console, shared by both
    functional simulators. *)

type t

val create : unit -> t

val read : t -> int -> int32
(** [read t addr] reads the 32-bit word at byte address [addr].
    @raise Diag.Error with code [Mem_unaligned] on unaligned access, or
    [Mem_mmio] on a load from the write-only MMIO window. *)

val write : t -> int -> int32 -> unit
(** [write t addr v] writes [v]; MMIO addresses drive the console instead
    ({!Assembler.Layout.mmio_putint} / [mmio_putchar]).
    @raise Diag.Error with code [Mem_unaligned] on unaligned access, or
    [Mem_mmio] on a store to an unmapped MMIO address. *)

val load_image : t -> Assembler.Image.t -> unit
(** Copy .text and .data into memory. *)

val output : t -> string
(** Console output accumulated so far. *)
