(** Functional simulator for the RV32IM baseline ISA. *)

exception Exec_error of string

type config = { max_insns : int; collect_trace : bool }

val default_config : config

val run : ?config:config -> Assembler.Image.t -> Trace.run
(** Execute from the entry point until [ebreak]; SP (x2) starts at the
    stack top.
    @raise Exec_error on illegal instructions or PC out of text.
    @raise Diag.Error with code [Fuel_exhausted] (context carries the
    retired count) on budget overrun, or [Mem_unaligned]/[Mem_mmio] on
    memory faults. *)

(** Trace plus final architectural state, for differential comparison
    against the other executions of the same program. *)
type outcome = {
  run : Trace.run;
  mem : Memory.t;       (** final memory *)
  regs : int32 array;   (** final register file, x0..x31 *)
}

val run_outcome : ?config:config -> Assembler.Image.t -> outcome
(** Like {!run}, but also exposes the final memory and registers.
    @raise Exec_error / Diag.Error as {!run}. *)

val exit_value : outcome -> int32
(** [main]'s return value: register a0 at [ebreak]. *)
