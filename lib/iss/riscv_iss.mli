(** Functional simulator for the RV32IM baseline ISA. *)

exception Exec_error of string

type config = { max_insns : int; collect_trace : bool }

val default_config : config

type session
(** An in-progress execution, mirroring {!Straight_iss}'s session shape
    so the sampling machinery drives both ISSes identically. *)

val start :
  ?config:config -> ?on_retire:(int -> Trace.uop -> unit) ->
  Assembler.Image.t -> session
(** Load the image; SP (x2) at the stack top, PC at the entry point.
    [on_retire], when given, is fed [(index, uop)] at every retirement —
    independently of [collect_trace]. *)

val step : session -> unit
(** Execute one instruction.
    @raise Exec_error on illegal instructions or PC out of text.
    @raise Diag.Error with code [Fuel_exhausted] (context carries the
    retired count) on budget overrun, or [Mem_unaligned]/[Mem_mmio] on
    memory faults. *)

val run_session : ?until:int -> session -> unit
(** Execute until [ebreak], or until the retired count reaches
    [until]. *)

val finish : session -> Trace.run

val session_memory : session -> Memory.t

val run : ?config:config -> Assembler.Image.t -> Trace.run
(** Execute from the entry point until [ebreak]; SP (x2) starts at the
    stack top.
    @raise Exec_error on illegal instructions or PC out of text.
    @raise Diag.Error with code [Fuel_exhausted] (context carries the
    retired count) on budget overrun, or [Mem_unaligned]/[Mem_mmio] on
    memory faults. *)

(** Trace plus final architectural state, for differential comparison
    against the other executions of the same program. *)
type outcome = {
  run : Trace.run;
  mem : Memory.t;       (** final memory *)
  regs : int32 array;   (** final register file, x0..x31 *)
}

val run_outcome : ?config:config -> Assembler.Image.t -> outcome
(** Like {!run}, but also exposes the final memory and registers.
    @raise Exec_error / Diag.Error as {!run}. *)

val exit_value : outcome -> int32
(** [main]'s return value: register a0 at [ebreak]. *)
