(** Functional simulator for the RV32IM baseline ISA. *)

exception Exec_error of string

type config = { max_insns : int; collect_trace : bool }

val default_config : config

val run : ?config:config -> Assembler.Image.t -> Trace.run
(** Execute from the entry point until [ebreak]; SP (x2) starts at the
    stack top.
    @raise Exec_error on illegal instructions or PC out of text.
    @raise Diag.Error with code [Fuel_exhausted] (context carries the
    retired count) on budget overrun, or [Mem_unaligned]/[Mem_mmio] on
    memory faults. *)
