(* Normalized dynamic-instruction records.

   The functional simulators retire instructions in program order and emit
   one [uop] per retired instruction.  The cycle-accurate models replay this
   correct-path trace (oracle outcomes for branches and memory addresses)
   while fetching wrong-path instructions from the static image — see
   DESIGN.md "Substitutions" for the wrong-path modelling note. *)

type fu_class =
  | FU_alu          (* 1-cycle integer op (incl. RMOV and NOP slots) *)
  | FU_mul
  | FU_div
  | FU_branch       (* conditional branch / jump resolution unit *)
  | FU_load
  | FU_store

type ctrl =
  | Not_ctrl
  | Cond of { taken : bool; target : int }   (* target = taken destination *)
  | Uncond of { target : int; is_call : bool; is_ret : bool }

type uop = {
  pc : int;
  fu : fu_class;
  (* STRAIGHT dependence representation: source distances (0 = zero reg,
     i.e. no dependence).  Empty for RISC-V traces. *)
  srcs_dist : int array;
  (* RISC-V dependence representation: source logical registers (x0 = no
     dependence) and destination (0 = none).  Empty/0 for STRAIGHT traces. *)
  srcs_reg : int array;
  dest_reg : int;
  has_dest : bool;        (* STRAIGHT: always true; RISC-V: rd <> x0 *)
  is_rmov : bool;         (* instruction-mix bucket of Fig. 15 *)
  is_nop : bool;
  is_spadd : bool;        (* SPADD: serialized in-order at decode (III-B) *)
  mem_addr : int;         (* byte address for load/store; 0 otherwise *)
  ctrl : ctrl;
}

let kind_label u =
  match u.fu with
  | FU_load -> "LD"
  | FU_store -> "ST"
  | FU_branch -> "Jump+Branch"
  | FU_mul | FU_div -> "ALU"
  | FU_alu -> if u.is_rmov then "RMOV" else if u.is_nop then "NOP" else "ALU"

(* Canonical digest of a uop trace, used by the snapshot machinery to
   prove that a regenerated trace matches the one a checkpoint was taken
   against.  Every field participates, so any behavioural change to the
   ISS or the compilers changes the digest. *)
let digest (trace : uop array) : string =
  let b = Buffer.create (64 * Array.length trace) in
  let add_int n = Buffer.add_string b (string_of_int n); Buffer.add_char b ',' in
  let add_bool v = Buffer.add_char b (if v then '1' else '0') in
  let fu_code = function
    | FU_alu -> 0 | FU_mul -> 1 | FU_div -> 2 | FU_branch -> 3
    | FU_load -> 4 | FU_store -> 5
  in
  Array.iter
    (fun u ->
       add_int u.pc;
       add_int (fu_code u.fu);
       Array.iter add_int u.srcs_dist;
       Buffer.add_char b ';';
       Array.iter add_int u.srcs_reg;
       Buffer.add_char b ';';
       add_int u.dest_reg;
       add_bool u.has_dest;
       add_bool u.is_rmov;
       add_bool u.is_nop;
       add_bool u.is_spadd;
       add_int u.mem_addr;
       (match u.ctrl with
        | Not_ctrl -> Buffer.add_char b 'n'
        | Cond { taken; target } ->
          Buffer.add_char b 'c'; add_bool taken; add_int target
        | Uncond { target; is_call; is_ret } ->
          Buffer.add_char b 'u'; add_int target; add_bool is_call;
          add_bool is_ret);
       Buffer.add_char b '\n')
    trace;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* A completed program run. *)
type run = {
  output : string;             (* MMIO console output *)
  retired : int;               (* dynamic instruction count (HALT included) *)
  trace : uop array;           (* empty unless tracing was requested *)
  dist_histogram : int array;  (* source-distance counts, index = distance;
                                  only filled for STRAIGHT runs *)
}
