(** Normalized dynamic-instruction records.

    The functional simulators retire instructions in program order and emit
    one {!uop} per retired instruction; the cycle-level models replay this
    correct-path trace (oracle outcomes for branches and memory addresses)
    while fetching wrong-path instructions from the static image. *)

type fu_class =
  | FU_alu          (** 1-cycle integer op (incl. RMOV and NOP slots) *)
  | FU_mul
  | FU_div
  | FU_branch       (** conditional branch / jump resolution unit *)
  | FU_load
  | FU_store

type ctrl =
  | Not_ctrl
  | Cond of { taken : bool; target : int }
      (** conditional branch; [target] is the taken destination *)
  | Uncond of { target : int; is_call : bool; is_ret : bool }
      (** [target = -1] when statically unknown (indirect/return) *)

type uop = {
  pc : int;
  fu : fu_class;
  srcs_dist : int array;
      (** STRAIGHT dependences: source distances (zero-distance operands
          dropped).  Empty for RISC-V traces. *)
  srcs_reg : int array;
      (** RISC-V dependences: source logical registers (x0 dropped).
          Empty for STRAIGHT traces. *)
  dest_reg : int;          (** RISC-V destination; 0 = none *)
  has_dest : bool;         (** STRAIGHT: always true; RISC-V: rd <> x0 *)
  is_rmov : bool;          (** instruction-mix bucket of Fig. 15 *)
  is_nop : bool;
  is_spadd : bool;         (** SPADD: serialized in order at decode (III-B) *)
  mem_addr : int;          (** byte address for load/store; 0 otherwise *)
  ctrl : ctrl;
}

val kind_label : uop -> string
(** The Fig. 15 bucket: ["ALU"], ["LD"], ["ST"], ["Jump+Branch"],
    ["RMOV"], or ["NOP"]. *)

val digest : uop array -> string
(** Canonical MD5 hex digest over every field of every uop.  The
    snapshot machinery regenerates the trace from the workload source on
    restore and uses this to prove it matches the one the checkpoint was
    taken against. *)

(** A completed program run. *)
type run = {
  output : string;             (** MMIO console output *)
  retired : int;               (** dynamic instruction count *)
  trace : uop array;           (** empty unless tracing was requested *)
  dist_histogram : int array;  (** source-distance counts by distance;
                                   filled for STRAIGHT runs only *)
}
