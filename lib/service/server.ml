(* straightd's resident server (see server.mli and DESIGN.md §13).

   Single-process event loop: one [Unix.select] watches the listen
   socket, every connected client, and the result pipes of a
   [Sweep.Pool.Persistent] worker session.  Requests are parsed off
   complete lines, served from the content-addressed [_sweep/] store
   when possible, and otherwise turned into pool jobs; identical
   in-flight requests coalesce onto one job, whose single result fans
   out to every waiter.  The server itself never simulates — the loop
   only parses, schedules, and replies, so it stays responsive while
   the workers grind. *)

module Params = Ooo_common.Params
module J = Ooo_common.Stats.Json
module Grid = Sweep.Grid
module Store = Sweep.Store
module Runner = Sweep.Runner
module Persistent = Sweep.Pool.Persistent
module Compile = Straight_core.Compile

let max_line = 1 lsl 20 (* a request line this long is an attack, not a job *)

type client = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  mutable alive : bool;
}

type sweep_agg = {
  sa_client : client;
  sa_id : string;
  sa_grid : string;
  sa_total : int;
  sa_records : Runner.record option array;
  sa_t0 : float;
  mutable sa_done : int;
  mutable sa_cached : int;
  mutable sa_executed : int;
  mutable sa_failed : int;
}

type waiter =
  | Direct of client * string * string  (* client, request id, op *)
  | Sweep_point of sweep_agg * int      (* aggregate, point index *)

type job = {
  j_id : int;          (* pool job id *)
  j_key : string;      (* store content address *)
  mutable j_waiters : waiter list;
}

type counters = {
  mutable requests : int;
  mutable cache_hits : int;
  mutable coalesced : int;
  mutable simulations : int;
  mutable sim_failures : int;
  mutable compiles : int;
  mutable compile_hits : int;
  mutable stale_swept : int;
}

(* ---------- worker side ---------- *)

(* Runs in a forked pool worker: payload -> one compact record line.
   Any exception (deadlock, checker divergence, bad workload) rides the
   pool's "err" path back as text. *)
let worker_job ~cache_dir payload =
  let req = Proto.point_req_of_json (J.of_string payload) in
  let pt = Proto.grid_point req in
  let r = Runner.run ~sample_store:cache_dir pt in
  J.to_string ~indent:false (Runner.to_json r)

(* ---------- compile memoization ---------- *)

let compile_key ~target ~(w : Workloads.t) =
  Digest.to_hex
    (Digest.string
       (String.concat "\n"
          [ "straightd-compile/1";
            target;
            w.Workloads.name;
            string_of_int w.Workloads.iterations;
            Digest.to_hex (Digest.string w.Workloads.source);
            Store.code_digest () ]))

let compile_doc ~target ~(w : Workloads.t) : J.t =
  let label, asm =
    match target with
    | "ss" | "riscv" ->
      ("SS", Compile.riscv_asm w.Workloads.source)
    | "straight-raw" ->
      ( "STRAIGHT(RAW)",
        Compile.straight_asm ~level:Straight_cc.Codegen.Raw
          w.Workloads.source )
    | "straight" | "straight-re" ->
      ( "STRAIGHT(RE+)",
        Compile.straight_asm ~level:Straight_cc.Codegen.Re_plus
          w.Workloads.source )
    | t -> raise (Proto.Bad_request (Diag.Config_error, "unknown target " ^ t))
  in
  J.Obj
    [ ("schema", J.Str "straightd-compile/1");
      ("target", J.Str label);
      ("workload", J.Str w.Workloads.name);
      ("iterations", J.Int w.Workloads.iterations);
      ("asm_lines",
       J.Int (List.length (String.split_on_char '\n' asm)));
      ("asm", J.Str asm) ]

(* ---------- server ---------- *)

let run ~socket_path ?(procs = 2) ?(cache_dir = "_sweep")
    ?(timeout_job = 600.) ?(log = fun _ -> ()) () : unit =
  let t0 = Unix.gettimeofday () in
  let ctr =
    { requests = 0; cache_hits = 0; coalesced = 0; simulations = 0;
      sim_failures = 0; compiles = 0; compile_hits = 0; stale_swept = 0 }
  in
  ctr.stale_swept <- Store.sweep_stale ~dir:cache_dir;
  if ctr.stale_swept > 0 then
    log (Printf.sprintf "swept %d stale cache temp file(s)" ctr.stale_swept);
  let clients : (Unix.file_descr, client) Hashtbl.t = Hashtbl.create 16 in
  let listen_fd = ref None in
  (* workers fork from the daemon; they must not pin the listen socket
     or any client connection open past the parent's close *)
  let at_fork () =
    (match !listen_fd with
     | Some fd -> (try Unix.close fd with Unix.Unix_error _ -> ())
     | None -> ());
    Hashtbl.iter
      (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ())
      clients
  in
  let pool =
    Persistent.create ~procs ~at_fork
      ~worker:(fun payload -> worker_job ~cache_dir payload)
      ()
  in
  (* pool first, socket second: the initial workers never see the fd *)
  let lfd =
    if Sys.file_exists socket_path then begin
      (* a live daemon answers on the path; a dead one left a stale
         inode we can reclaim *)
      let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (match Unix.connect probe (Unix.ADDR_UNIX socket_path) with
       | () ->
         Unix.close probe;
         Persistent.shutdown pool;
         Diag.error Diag.Service_error "daemon already running on %s"
           socket_path
       | exception Unix.Unix_error _ ->
         Unix.close probe;
         (try Unix.unlink socket_path with Unix.Unix_error _ -> ()))
    end;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (match Unix.bind fd (Unix.ADDR_UNIX socket_path) with
     | () -> ()
     | exception Unix.Unix_error (e, _, _) ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       Persistent.shutdown pool;
       Diag.error Diag.Service_error "bind %s: %s" socket_path
         (Unix.error_message e));
    Unix.listen fd 64;
    fd
  in
  listen_fd := Some lfd;
  (* a client gone mid-write must not SIGPIPE the daemon; SIGINT/SIGTERM
     drain into the same graceful-shutdown path as the shutdown op *)
  let stop = ref false in
  let old_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ -> None
  in
  let install s =
    try Some (Sys.signal s (Sys.Signal_handle (fun _ -> stop := true)))
    with Invalid_argument _ -> None
  in
  let old_sigint = install Sys.sigint in
  let old_sigterm = install Sys.sigterm in
  let restore_signals () =
    let put s = function
      | Some b -> (try ignore (Sys.signal s b) with Invalid_argument _ -> ())
      | None -> ()
    in
    put Sys.sigint old_sigint;
    put Sys.sigterm old_sigterm;
    put Sys.sigpipe old_sigpipe
  in
  let jobs_by_key : (string, job) Hashtbl.t = Hashtbl.create 16 in
  let jobs_by_id : (int, job) Hashtbl.t = Hashtbl.create 16 in
  let next_job = ref 0 in
  let send (c : client) (doc : J.t) =
    if c.alive then begin
      let line = J.to_string ~indent:false doc ^ "\n" in
      let n = String.length line in
      let rec put off =
        if off < n then
          match Unix.write_substring c.fd line off (n - off) with
          | written -> put (off + written)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> put off
          | exception Unix.Unix_error _ -> c.alive <- false
      in
      put 0
    end
  in
  let status_json () =
    J.Obj
      [ ("proto", J.Str Proto.schema);
        ("uptime_seconds", J.Float (Unix.gettimeofday () -. t0));
        ("workers", J.Int (Persistent.procs pool));
        ("clients", J.Int (Hashtbl.length clients));
        ("jobs_running", J.Int (Persistent.running pool));
        ("jobs_queued", J.Int (Persistent.queued pool));
        ("requests", J.Int ctr.requests);
        ("cache_hits", J.Int ctr.cache_hits);
        ("coalesced", J.Int ctr.coalesced);
        ("simulations", J.Int ctr.simulations);
        ("sim_failures", J.Int ctr.sim_failures);
        ("compiles", J.Int ctr.compiles);
        ("compile_hits", J.Int ctr.compile_hits);
        ("stale_tmp_swept", J.Int ctr.stale_swept);
        ("cache_dir", J.Str cache_dir) ]
  in
  (* ---- job scheduling ---- *)
  let enqueue waiter key payload_json =
    match Hashtbl.find_opt jobs_by_key key with
    | Some job ->
      ctr.coalesced <- ctr.coalesced + 1;
      job.j_waiters <- waiter :: job.j_waiters;
      (match waiter with
       | Direct (c, id, _) ->
         send c
           (Proto.reply_event ~id ~event:"coalesced"
              [ ("key", J.Str key) ])
       | Sweep_point _ -> ())
    | None ->
      incr next_job;
      let job = { j_id = !next_job; j_key = key; j_waiters = [ waiter ] } in
      Hashtbl.add jobs_by_key key job;
      Hashtbl.add jobs_by_id job.j_id job;
      Persistent.submit pool ~id:job.j_id
        (J.to_string ~indent:false payload_json);
      (match waiter with
       | Direct (c, id, _) ->
         send c
           (Proto.reply_event ~id ~event:"queued" [ ("key", J.Str key) ])
       | Sweep_point _ -> ())
  in
  let finalize_sweep (agg : sweep_agg) =
    let records =
      Array.to_list agg.sa_records
      |> List.filter_map Fun.id
      |> List.sort Runner.compare_order
    in
    let result =
      J.Obj
        [ ("schema", J.Str "straight-sweep/1");
          ("grid", J.Str agg.sa_grid);
          ("summary",
           J.Obj
             [ ("total", J.Int agg.sa_total);
               ("executed", J.Int agg.sa_executed);
               ("cached", J.Int agg.sa_cached);
               ("failed", J.Int agg.sa_failed);
               ("wall_seconds",
                J.Float (Unix.gettimeofday () -. agg.sa_t0)) ]);
          ("records", J.List (List.map Runner.to_json records)) ]
    in
    send agg.sa_client
      (Proto.reply_result ~id:agg.sa_id ~op:"sweep"
         ~cached:(agg.sa_executed = 0 && agg.sa_failed = 0) result)
  in
  let sweep_point_done (agg : sweep_agg) i (res : Runner.record option) =
    (match res with
     | Some r ->
       agg.sa_records.(i) <- Some r;
       agg.sa_executed <- agg.sa_executed + 1
     | None -> agg.sa_failed <- agg.sa_failed + 1);
    agg.sa_done <- agg.sa_done + 1;
    send agg.sa_client
      (Proto.reply_event ~id:agg.sa_id ~event:"progress"
         [ ("done", J.Int agg.sa_done);
           ("total", J.Int agg.sa_total);
           ("failed", J.Int agg.sa_failed) ]);
    if agg.sa_done = agg.sa_total then finalize_sweep agg
  in
  let deliver waiter (r : Runner.record) =
    match waiter with
    | Direct (c, id, op) ->
      send c (Proto.reply_result ~id ~op ~cached:false (Runner.to_json r))
    | Sweep_point (agg, i) -> sweep_point_done agg i (Some r)
  in
  let deliver_error waiter msg =
    match waiter with
    | Direct (c, id, _) ->
      send c (Proto.reply_error ~id Diag.Service_error msg)
    | Sweep_point (agg, i) -> sweep_point_done agg i None
  in
  let handle_pool_result (jid, outcome) =
    match Hashtbl.find_opt jobs_by_id jid with
    | None -> log (Printf.sprintf "orphan pool result for job %d" jid)
    | Some job ->
      Hashtbl.remove jobs_by_id jid;
      Hashtbl.remove jobs_by_key job.j_key;
      let waiters = List.rev job.j_waiters in
      (match outcome with
       | Ok line ->
         (match Runner.of_json (J.of_string line) with
          | r ->
            ctr.simulations <- ctr.simulations + 1;
            (try Store.save ~dir:cache_dir job.j_key r
             with e ->
               log
                 (Printf.sprintf "store save failed for %s: %s" job.j_key
                    (Printexc.to_string e)));
            List.iter (fun w -> deliver w r) waiters
          | exception (J.Parse_error _ | Params.Json_error _) ->
            ctr.sim_failures <- ctr.sim_failures + 1;
            List.iter
              (fun w -> deliver_error w "worker returned a malformed record")
              waiters)
       | Error msg ->
         ctr.sim_failures <- ctr.sim_failures + 1;
         List.iter (fun w -> deliver_error w msg) waiters)
  in
  (* ---- request handlers ---- *)
  let handle_point (c : client) id (preq : Proto.point_req) =
    let op = if preq.Proto.sample = None then "simulate" else "sample" in
    match Proto.grid_point preq with
    | exception Invalid_argument m ->
      send c (Proto.reply_error ~id Diag.Config_error m)
    | pt ->
      let key = Store.key pt in
      (match Store.lookup ~dir:cache_dir key with
       | Some r ->
         ctr.cache_hits <- ctr.cache_hits + 1;
         send c (Proto.reply_result ~id ~op ~cached:true (Runner.to_json r))
       | None ->
         enqueue (Direct (c, id, op)) key (Proto.point_req_to_json preq))
  in
  let handle_sweep (c : client) id (sreq : Proto.sweep_req) =
    let base =
      match sreq.Proto.sw_grid with
      | "default" -> Some (Grid.default ~quick:sreq.Proto.sw_quick)
      | "smoke" -> Some Grid.smoke
      | "golden" -> Some Grid.golden
      | _ -> None
    in
    match base with
    | None ->
      send c
        (Proto.reply_error ~id Diag.Config_error
           ("unknown grid " ^ sreq.Proto.sw_grid
            ^ " (default|smoke|golden)"))
    | Some spec ->
      let spec =
        { spec with
          Grid.machines =
            Option.value ~default:spec.Grid.machines sreq.Proto.sw_machines;
          widths = Option.value ~default:spec.Grid.widths sreq.Proto.sw_widths;
          workloads =
            Option.value ~default:spec.Grid.workloads sreq.Proto.sw_workloads;
          quick = spec.Grid.quick || sreq.Proto.sw_quick }
      in
      (match Grid.expand spec with
       | exception Invalid_argument m ->
         send c (Proto.reply_error ~id Diag.Config_error m)
       | points ->
         let n = List.length points in
         let agg =
           { sa_client = c; sa_id = id; sa_grid = sreq.Proto.sw_grid;
             sa_total = n; sa_records = Array.make (max 1 n) None;
             sa_t0 = Unix.gettimeofday (); sa_done = 0; sa_cached = 0;
             sa_executed = 0; sa_failed = 0 }
         in
         send c
           (Proto.reply_event ~id ~event:"queued" [ ("total", J.Int n) ]);
         List.iteri
           (fun i pt ->
              let key = Store.key pt in
              match Store.lookup ~dir:cache_dir key with
              | Some r ->
                ctr.cache_hits <- ctr.cache_hits + 1;
                agg.sa_records.(i) <- Some r;
                agg.sa_cached <- agg.sa_cached + 1;
                agg.sa_done <- agg.sa_done + 1
              | None ->
                let preq =
                  Proto.point_req_of_grid_point spec.Grid.quick pt
                in
                enqueue (Sweep_point (agg, i)) key
                  (Proto.point_req_to_json preq))
           points;
         if agg.sa_done = agg.sa_total then finalize_sweep agg)
  in
  let handle_compile (c : client) id target workload quick =
    match Grid.workload ~quick workload with
    | exception Invalid_argument m ->
      send c (Proto.reply_error ~id Diag.Config_error m)
    | w ->
      let key = compile_key ~target ~w in
      (match Store.lookup_doc ~dir:cache_dir ~sub:"compile" key with
       | Some doc ->
         ctr.compile_hits <- ctr.compile_hits + 1;
         send c (Proto.reply_result ~id ~op:"compile" ~cached:true doc)
       | None ->
         (match compile_doc ~target ~w with
          | doc ->
            ctr.compiles <- ctr.compiles + 1;
            (try Store.save_doc ~dir:cache_dir ~sub:"compile" key doc
             with e ->
               log
                 (Printf.sprintf "compile cache save failed: %s"
                    (Printexc.to_string e)));
            send c (Proto.reply_result ~id ~op:"compile" ~cached:false doc)
          | exception Proto.Bad_request (code, m) ->
            send c (Proto.reply_error ~id code m)
          | exception Diag.Error d ->
            send c (Proto.reply_error ~id d.Diag.code (Diag.to_string d))))
  in
  let shutdown_requested = ref false in
  let handle_line (c : client) line =
    if String.trim line <> "" then begin
      ctr.requests <- ctr.requests + 1;
      match J.of_string line with
      | exception J.Parse_error m ->
        send c
          (Proto.reply_error ~id:"-" Diag.Proto_error
             ("malformed request: " ^ m))
      | j ->
        let id = Proto.request_id j in
        (match Proto.request_of_json j with
         | exception Proto.Bad_request (code, m) ->
           send c (Proto.reply_error ~id code m)
         | exception e ->
           send c
             (Proto.reply_error ~id Diag.Service_error (Printexc.to_string e))
         | Proto.Compile { target; workload; quick } ->
           handle_compile c id target workload quick
         | Proto.Point preq -> handle_point c id preq
         | Proto.Sweep sreq -> handle_sweep c id sreq
         | Proto.Status ->
           send c
             (Proto.reply_result ~id ~op:"status" ~cached:false
                (status_json ()))
         | Proto.Shutdown ->
           send c
             (Proto.reply_result ~id ~op:"shutdown" ~cached:false
                (J.Obj [ ("ok", J.Bool true) ]));
           shutdown_requested := true)
    end
  in
  (* ---- client lifecycle ---- *)
  let drop_client (c : client) =
    c.alive <- false;
    Hashtbl.remove clients c.fd;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    (* its pending direct requests die with it; pool jobs keep running
       (the result still lands in the store for the next asker) *)
    Hashtbl.iter
      (fun _ job ->
         job.j_waiters <-
           List.filter
             (function
               | Direct (c', _, _) -> c' != c
               | Sweep_point (agg, _) -> agg.sa_client != c)
             job.j_waiters)
      jobs_by_key
  in
  let read_client (c : client) =
    let buf = Bytes.create 65536 in
    match Unix.read c.fd buf 0 (Bytes.length buf) with
    | 0 -> drop_client c
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> drop_client c
    | n ->
      Buffer.add_subbytes c.inbuf buf 0 n;
      if Buffer.length c.inbuf > max_line then begin
        send c
          (Proto.reply_error ~id:"-" Diag.Proto_error "request line too long");
        drop_client c
      end
      else begin
        let s = Buffer.contents c.inbuf in
        let rec split start acc =
          match String.index_from_opt s start '\n' with
          | Some i -> split (i + 1) (String.sub s start (i - start) :: acc)
          | None -> (List.rev acc, String.sub s start (String.length s - start))
        in
        let lines, rest = split 0 [] in
        Buffer.clear c.inbuf;
        Buffer.add_string c.inbuf rest;
        List.iter
          (fun line ->
             (* one bad request must never take the daemon down *)
             try handle_line c line
             with e ->
               send c
                 (Proto.reply_error ~id:"-" Diag.Service_error
                    (Printexc.to_string e)))
          lines
      end
  in
  log
    (Printf.sprintf "listening on %s (%d worker(s), cache %s)" socket_path
       (Persistent.procs pool) cache_dir);
  (* ---- event loop ---- *)
  Fun.protect
    ~finally:(fun () ->
        (* abort whatever is still pending, then tear everything down *)
        let pending = Hashtbl.fold (fun _ j acc -> j :: acc) jobs_by_id [] in
        Hashtbl.reset jobs_by_id;
        Hashtbl.reset jobs_by_key;
        List.iter
          (fun job ->
             List.iter
               (fun w -> deliver_error w "daemon shutting down")
               (List.rev job.j_waiters))
          pending;
        Persistent.shutdown pool;
        Hashtbl.iter
          (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ())
          clients;
        Hashtbl.reset clients;
        (try Unix.close lfd with Unix.Unix_error _ -> ());
        (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
        restore_signals ();
        log "shut down")
  @@ fun () ->
  while not (!stop || !shutdown_requested) do
    let client_fds = Hashtbl.fold (fun fd _ acc -> fd :: acc) clients [] in
    let fds = (lfd :: client_fds) @ Persistent.result_fds pool in
    let readable =
      match Unix.select fds [] [] 0.2 with
      | r, _, _ -> r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
    in
    if List.mem lfd readable then begin
      match Unix.accept lfd with
      | fd, _ ->
        Hashtbl.replace clients fd
          { fd; inbuf = Buffer.create 256; alive = true }
      | exception Unix.Unix_error _ -> ()
    end;
    List.iter
      (fun fd ->
         match Hashtbl.find_opt clients fd with
         | Some c when List.mem fd readable -> read_client c
         | _ -> ())
      client_fds;
    List.iter handle_pool_result (Persistent.poll ~timeout_job pool);
    (* writes can discover a dead peer at any point; collect them *)
    let dead =
      Hashtbl.fold (fun _ c acc -> if c.alive then acc else c :: acc) clients []
    in
    List.iter drop_client dead
  done
