(** straightd — the resident simulation service.

    A single-process event loop on a Unix-domain socket speaking
    {!Proto} ([straightd-proto/1]): clients send one JSON request per
    line; the server answers with streamed ["event"] lines and one
    terminal ["result"]/["error"] line per request.  Simulation and
    compilation never run in the event loop — points become jobs on a
    [-j]-bounded {!Sweep.Pool.Persistent} worker session, results are
    memoized in the content-addressed [_sweep/] store, and identical
    in-flight requests coalesce onto one job whose single result fans
    out to every waiter.  A client disconnecting mid-job only removes
    its waiters; the job runs on and its record still lands in the
    store. *)

val run :
  socket_path:string ->
  ?procs:int ->
  ?cache_dir:string ->
  ?timeout_job:float ->
  ?log:(string -> unit) ->
  unit -> unit
(** Serve until a ["shutdown"] request, SIGINT, or SIGTERM, then reply
    ["daemon shutting down"] to any pending waiters, dismiss the
    workers, close every connection, and unlink [socket_path].  Signal
    dispositions are restored on every exit path.

    [procs] bounds concurrent jobs (default 2); [cache_dir] roots the
    store (default ["_sweep"], stale temp files swept at startup);
    [timeout_job] kills a worker stuck on one job longer than this many
    seconds (default 600); [log] receives one-line progress messages.

    @raise Diag.Error code [Service_error] when [socket_path] cannot be
    bound — including when a live daemon already answers on it. *)

val worker_job : cache_dir:string -> string -> string
(** The pool-worker body: canonical {!Proto.point_req} JSON in, one
    compact [Runner.record] JSON line out.  Exposed for tests. *)

val compile_key : target:string -> w:Workloads.t -> string
(** Content address of a compile artifact: target, workload identity,
    and the simulator's own {!Sweep.Store.code_digest}. *)

val compile_doc : target:string -> w:Workloads.t -> Ooo_common.Stats.Json.t
(** Compile [w] for [target] ("ss"/"riscv", "straight-raw",
    "straight"/"straight-re") and wrap the listing as a
    [straightd-compile/1] document.
    @raise Proto.Bad_request on an unknown target. *)
