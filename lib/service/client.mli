(** Client-side plumbing for the [straightd-proto/1] socket protocol:
    line framing, streamed-event draining, and request/terminal-reply
    pairing.  Shared by [bin/straightd-client] and the protocol
    tests. *)

type t

val connect : string -> t
(** Connect to a daemon socket.
    @raise Diag.Error code [Service_error] when nothing answers. *)

val close : t -> unit

val send : t -> Ooo_common.Stats.Json.t -> unit
(** One request, one line.  @raise Diag.Error on a write failure. *)

val send_raw : t -> string -> unit
(** Ship an arbitrary line verbatim (protocol-abuse tests). *)

val recv : t -> Ooo_common.Stats.Json.t option
(** Next reply line, [None] at EOF.
    @raise Diag.Error code [Proto_error] on an unparseable line. *)

val recv_line : t -> string option
(** Next raw line, [None] at EOF. *)

val wait : ?on_event:(Ooo_common.Stats.Json.t -> unit) -> t ->
  id:string -> Ooo_common.Stats.Json.t
(** Read replies until the terminal ["result"]/["error"] for [id],
    feeding each ["event"] to [on_event].  Replies for other ids are
    skipped.  @raise Diag.Error if the connection dies first. *)

val request : ?on_event:(Ooo_common.Stats.Json.t -> unit) -> t ->
  Ooo_common.Stats.Json.t -> Ooo_common.Stats.Json.t
(** [send] then [wait] on the request's own ["id"] (default ["-"]). *)
