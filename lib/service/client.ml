(* Client-side plumbing for straightd-proto/1: connect, frame one JSON
   object per line, and collect streamed replies until the terminal
   one.  Used by bin/straightd-client and the protocol tests. *)

module J = Ooo_common.Stats.Json

type t = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
}

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> { fd; inbuf = Buffer.create 256 }
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Diag.error Diag.Service_error "connect %s: %s" path (Unix.error_message e)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send t (doc : J.t) =
  let line = J.to_string ~indent:false doc ^ "\n" in
  let n = String.length line in
  let rec put off =
    if off < n then
      match Unix.write_substring t.fd line off (n - off) with
      | written -> put (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> put off
      | exception Unix.Unix_error (e, _, _) ->
        Diag.error Diag.Service_error "send: %s" (Unix.error_message e)
  in
  put 0

let send_raw t line =
  let line = line ^ "\n" in
  let n = String.length line in
  let rec put off =
    if off < n then
      match Unix.write_substring t.fd line off (n - off) with
      | written -> put (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> put off
      | exception Unix.Unix_error (e, _, _) ->
        Diag.error Diag.Service_error "send: %s" (Unix.error_message e)
  in
  put 0

(* one complete line off the buffered stream, reading as needed *)
let recv_line t : string option =
  let rec take () =
    let s = Buffer.contents t.inbuf in
    match String.index_opt s '\n' with
    | Some i ->
      Buffer.clear t.inbuf;
      Buffer.add_string t.inbuf
        (String.sub s (i + 1) (String.length s - i - 1));
      Some (String.sub s 0 i)
    | None ->
      let buf = Bytes.create 65536 in
      (match Unix.read t.fd buf 0 (Bytes.length buf) with
       | 0 -> None
       | n ->
         Buffer.add_subbytes t.inbuf buf 0 n;
         take ()
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> take ()
       | exception Unix.Unix_error _ -> None)
  in
  take ()

let recv t : J.t option =
  match recv_line t with
  | None -> None
  | Some line ->
    (match J.of_string line with
     | j -> Some j
     | exception J.Parse_error m ->
       Diag.error Diag.Proto_error "unparseable reply %S: %s" line m)

(* drain events until the terminal reply for [id] *)
let wait ?on_event t ~id : J.t =
  let rec go () =
    match recv t with
    | None ->
      Diag.error Diag.Service_error "daemon closed the connection mid-request"
    | Some j ->
      let jid =
        match J.get_string (J.member "id" j) with Some s -> s | None -> "-"
      in
      let ty = J.get_string (J.member "type" j) in
      if jid <> id then go () (* a straggler from an earlier request *)
      else
        match ty with
        | Some "event" ->
          (match on_event with Some f -> f j | None -> ());
          go ()
        | Some ("result" | "error") -> j
        | _ -> Diag.error Diag.Proto_error "reply without a type"
  in
  go ()

let request ?on_event t (doc : J.t) : J.t =
  let id =
    match J.get_string (J.member "id" doc) with Some s -> s | None -> "-"
  in
  send t doc;
  wait ?on_event t ~id
