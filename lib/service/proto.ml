(* straightd-proto/1: the wire protocol of the resident simulation
   service (see proto.mli and DESIGN.md §13).

   One JSON object per line in both directions.  Requests name an [op];
   replies echo the request [id] and carry a [type] of "event" (streamed
   progress), "result" (terminal success) or "error" (terminal failure,
   with a Diag code name). *)

module Params = Ooo_common.Params
module J = Ooo_common.Stats.Json
module Grid = Sweep.Grid

let schema = "straightd-proto/1"
let bench_schema = "straightd-bench/1"

(* ---------- requests ---------- *)

type point_req = {
  machine : Grid.machine;
  width : int;
  rob : int option;
  sched : int option;
  predictor : Params.predictor_kind;
  ideal : bool;
  workload : string;
  quick : bool;
  sample : Sample.Spec.t option;
}

type sweep_req = {
  sw_grid : string;
  sw_machines : Grid.machine list option;
  sw_widths : int list option;
  sw_workloads : string list option;
  sw_quick : bool;
}

type request =
  | Compile of { target : string; workload : string; quick : bool }
  | Point of point_req  (* simulate (sample = None) or sample (Some) *)
  | Sweep of sweep_req
  | Status
  | Shutdown

exception Bad_request of Diag.code * string

let bad code fmt = Printf.ksprintf (fun m -> raise (Bad_request (code, m))) fmt

let str_field ?default name j =
  match J.get_string (J.member name j) with
  | Some s -> s
  | None ->
    (match default with
     | Some d -> d
     | None -> bad Diag.Proto_error "missing string field %S" name)

let int_field ~default name j =
  match J.member name j with
  | None | Some J.Null -> default
  | Some (J.Int n) -> n
  | Some _ -> bad Diag.Proto_error "field %S must be an integer" name

let opt_int_field name j =
  match J.member name j with
  | None | Some J.Null -> None
  | Some (J.Int n) -> Some n
  | Some _ -> bad Diag.Proto_error "field %S must be an integer or null" name

let bool_field ~default name j =
  match J.member name j with
  | None | Some J.Null -> default
  | Some (J.Bool b) -> b
  | Some _ -> bad Diag.Proto_error "field %S must be a boolean" name

let request_id j =
  match J.get_string (J.member "id" j) with Some s -> s | None -> "-"

let point_req_of_json ?(require_sample = false) j : point_req =
  let machine_label = str_field ~default:"ss" "machine" j in
  let machine =
    match Grid.machine_of_label machine_label with
    | Some m -> m
    | None -> bad Diag.Config_error "unknown machine %S" machine_label
  in
  let predictor_name = str_field ~default:"gshare" "predictor" j in
  let predictor =
    match Params.predictor_of_name predictor_name with
    | Some p -> p
    | None -> bad Diag.Config_error "unknown predictor %S" predictor_name
  in
  let sample =
    match J.member "sample" j with
    | None | Some J.Null ->
      if require_sample then
        bad Diag.Proto_error "op \"sample\" requires a \"sample\" spec"
      else None
    | Some (J.Str s) ->
      (try Some (Sample.Spec.parse s)
       with Sample.Spec.Parse_error m ->
         bad Diag.Config_error "bad sample spec %S: %s" s m)
    | Some _ -> bad Diag.Proto_error "field \"sample\" must be a spec string"
  in
  { machine;
    width = int_field ~default:2 "width" j;
    rob = opt_int_field "rob" j;
    sched = opt_int_field "sched" j;
    predictor;
    ideal = bool_field ~default:false "ideal" j;
    workload = str_field "workload" j;
    quick = bool_field ~default:true "quick" j;
    sample }

let split_list s = String.split_on_char ',' s |> List.filter (fun x -> x <> "")

let sweep_req_of_json j : sweep_req =
  let machines =
    match J.member "machines" j with
    | None | Some J.Null -> None
    | Some (J.Str s) ->
      Some
        (List.map
           (fun m ->
              match Grid.machine_of_label m with
              | Some m -> m
              | None -> bad Diag.Config_error "unknown machine %S" m)
           (split_list s))
    | Some _ -> bad Diag.Proto_error "field \"machines\" must be a comma list"
  in
  let widths =
    match J.member "widths" j with
    | None | Some J.Null -> None
    | Some (J.Str s) ->
      Some
        (List.map
           (fun w ->
              match int_of_string_opt w with
              | Some n -> n
              | None -> bad Diag.Config_error "bad width %S" w)
           (split_list s))
    | Some _ -> bad Diag.Proto_error "field \"widths\" must be a comma list"
  in
  let workloads =
    match J.member "workloads" j with
    | None | Some J.Null -> None
    | Some (J.Str s) -> Some (split_list s)
    | Some _ -> bad Diag.Proto_error "field \"workloads\" must be a comma list"
  in
  { sw_grid = str_field ~default:"smoke" "grid" j;
    sw_machines = machines;
    sw_widths = widths;
    sw_workloads = workloads;
    sw_quick = bool_field ~default:true "quick" j }

let request_of_json j : request =
  match j with
  | J.Obj _ ->
    (match str_field "op" j with
     | "compile" ->
       Compile
         { target = str_field ~default:"straight-re" "target" j;
           workload = str_field "workload" j;
           quick = bool_field ~default:true "quick" j }
     | "simulate" -> Point (point_req_of_json j)
     | "sample" -> Point (point_req_of_json ~require_sample:true j)
     | "sweep" -> Sweep (sweep_req_of_json j)
     | "status" -> Status
     | "shutdown" -> Shutdown
     | op -> bad Diag.Proto_error "unknown op %S" op)
  | _ -> bad Diag.Proto_error "request must be a JSON object"

(* ---------- point <-> grid ---------- *)

let grid_point (r : point_req) : Grid.point =
  let spec =
    { Grid.machines = [ r.machine ];
      widths = [ r.width ];
      robs = [ r.rob ];
      scheds = [ r.sched ];
      predictors = [ r.predictor ];
      ideal = [ r.ideal ];
      workloads = [ r.workload ];
      samples = [ r.sample ];
      quick = r.quick }
  in
  match Grid.expand spec with
  | [ pt ] -> pt
  | _ -> assert false (* singleton axes expand to exactly one point *)

let point_req_of_grid_point quick (pt : Grid.point) : point_req =
  let p = pt.Grid.params in
  { machine = pt.Grid.machine;
    width = pt.Grid.width;
    (* rob/sched overrides rename the model ("-robN"), so re-deriving
       them from the expanded params would shift the content address;
       the daemon's sweep op only reaches preset grids, which keep the
       model defaults — [grid_point (point_req_of_grid_point pt)] must
       reproduce [pt]'s digest exactly *)
    rob = None;
    sched = None;
    predictor = p.Params.predictor;
    ideal = p.Params.ideal_recovery;
    workload = pt.Grid.workload.Workloads.name;
    quick;
    sample = pt.Grid.sample }

let point_req_to_json (r : point_req) : J.t =
  J.Obj
    [ ("op", J.Str (if r.sample = None then "simulate" else "sample"));
      ("machine", J.Str (Grid.machine_label r.machine));
      ("width", J.Int r.width);
      ("rob", match r.rob with None -> J.Null | Some n -> J.Int n);
      ("sched", match r.sched with None -> J.Null | Some n -> J.Int n);
      ("predictor", J.Str (Params.predictor_name r.predictor));
      ("ideal", J.Bool r.ideal);
      ("workload", J.Str r.workload);
      ("quick", J.Bool r.quick);
      ("sample",
       match r.sample with
       | None -> J.Null
       | Some sp -> J.Str (Sample.Spec.to_string sp)) ]

(* ---------- replies ---------- *)

let reply_event ~id ~event detail : J.t =
  J.Obj
    ([ ("schema", J.Str schema);
       ("id", J.Str id);
       ("type", J.Str "event");
       ("event", J.Str event) ]
     @ detail)

let reply_result ~id ~op ~cached (result : J.t) : J.t =
  J.Obj
    [ ("schema", J.Str schema);
      ("id", J.Str id);
      ("type", J.Str "result");
      ("op", J.Str op);
      ("cached", J.Bool cached);
      ("result", result) ]

let reply_error ~id code message : J.t =
  J.Obj
    [ ("schema", J.Str schema);
      ("id", J.Str id);
      ("type", J.Str "error");
      ("code", J.Str (Diag.code_name code));
      ("message", J.Str message) ]
