(** [straightd-proto/1] — the wire protocol of the resident simulation
    service.

    One JSON object per line in both directions over the daemon's Unix
    socket.  A request names an [op] ("compile", "simulate", "sample",
    "sweep", "status", "shutdown") and may carry a client-chosen ["id"]
    string (default ["-"]) that every reply echoes.  Replies carry a
    ["type"]: ["event"] (streamed progress: "queued", "coalesced",
    "started", "progress"), ["result"] (terminal success, with the
    payload under ["result"] and a ["cached"] flag), or ["error"]
    (terminal failure, ["code"] a {!Diag.code_name} and ["message"]).
    Schema details in EXPERIMENTS.md. *)

val schema : string
(** ["straightd-proto/1"]. *)

val bench_schema : string
(** ["straightd-bench/1"] — the load generator's report schema. *)

(** A single simulation point: the daemon-facing mirror of
    {!Sweep.Grid.point}, kept in request form so the scheduler can ship
    it to a pool worker verbatim and both sides derive the same
    content address. *)
type point_req = {
  machine : Sweep.Grid.machine;
  width : int;
  rob : int option;
  sched : int option;
  predictor : Ooo_common.Params.predictor_kind;
  ideal : bool;
  workload : string;
  quick : bool;
  sample : Sample.Spec.t option;  (** [Some] = interval-sampled run *)
}

type sweep_req = {
  sw_grid : string;                            (** preset name *)
  sw_machines : Sweep.Grid.machine list option;
  sw_widths : int list option;
  sw_workloads : string list option;
  sw_quick : bool;
}

type request =
  | Compile of { target : string; workload : string; quick : bool }
  | Point of point_req
  | Sweep of sweep_req
  | Status
  | Shutdown

exception Bad_request of Diag.code * string
(** Raised by the parsers below; the server turns it into an ["error"]
    reply ([Proto_error] for shape violations, [Config_error] for
    well-formed requests naming unknown machines/predictors/specs). *)

val request_id : Ooo_common.Stats.Json.t -> string
(** The ["id"] field, or ["-"]. *)

val request_of_json : Ooo_common.Stats.Json.t -> request
(** @raise Bad_request on an unknown op or malformed fields. *)

val grid_point : point_req -> Sweep.Grid.point
(** Expand to the concrete grid point (params resolved, workload
    source generated).  @raise Invalid_argument on an unknown workload
    or invalid width, as {!Sweep.Grid.expand} does. *)

val point_req_of_grid_point : bool -> Sweep.Grid.point -> point_req
(** [point_req_of_grid_point quick pt] — requote a preset-grid point as
    a request, such that [grid_point] reproduces [pt]'s content address
    exactly. *)

val point_req_to_json : point_req -> Ooo_common.Stats.Json.t
(** Canonical form: also the pool-worker job payload. *)

val point_req_of_json :
  ?require_sample:bool -> Ooo_common.Stats.Json.t -> point_req
(** @raise Bad_request (also when [require_sample] and no spec). *)

val sweep_req_of_json : Ooo_common.Stats.Json.t -> sweep_req

val reply_event :
  id:string -> event:string ->
  (string * Ooo_common.Stats.Json.t) list -> Ooo_common.Stats.Json.t

val reply_result :
  id:string -> op:string -> cached:bool ->
  Ooo_common.Stats.Json.t -> Ooo_common.Stats.Json.t

val reply_error :
  id:string -> Diag.code -> string -> Ooo_common.Stats.Json.t
