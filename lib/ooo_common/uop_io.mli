(** Binary serialization of {!Iss.Trace.uop} values, shared between the
    engine checkpoint image and the interval-sampling checkpoints. *)

val fu_code : Iss.Trace.fu_class -> int
val fu_of_code : int -> Iss.Trace.fu_class
(** @raise Bin.Corrupt on an unknown code. *)

val write : Buffer.t -> Iss.Trace.uop -> unit

val read : Bin.reader -> Iss.Trace.uop
(** @raise Bin.Corrupt on malformed input. *)
