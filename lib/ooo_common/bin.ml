(* Compact binary codec shared by the snapshot machinery (see bin.mli). *)

exception Corrupt of string

type reader = { data : string; mutable pos : int }

let reader ?(pos = 0) data = { data; pos }
let remaining r = String.length r.data - r.pos

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

let need r n =
  if r.pos + n > String.length r.data then
    corrupt "truncated input: need %d bytes at offset %d of %d" n r.pos
      (String.length r.data)

(* ---------- integers ---------- *)

(* LEB128 over the unsigned 64-bit image of the value: negative OCaml
   ints sign-extend into Int64 and cost 10 bytes, small counters one. *)
let w_i64_leb b (v : int64) =
  let v = ref v in
  let fini = ref false in
  while not !fini do
    let byte = Int64.to_int (Int64.logand !v 0x7FL) in
    v := Int64.shift_right_logical !v 7;
    if Int64.equal !v 0L then begin
      Buffer.add_char b (Char.chr byte);
      fini := true
    end
    else Buffer.add_char b (Char.chr (byte lor 0x80))
  done

let r_i64_leb r : int64 =
  let acc = ref 0L in
  let shift = ref 0 in
  let fini = ref false in
  while not !fini do
    if !shift > 63 then corrupt "overlong varint at offset %d" r.pos;
    need r 1;
    let byte = Char.code r.data.[r.pos] in
    r.pos <- r.pos + 1;
    acc :=
      Int64.logor !acc
        (Int64.shift_left (Int64.of_int (byte land 0x7F)) !shift);
    shift := !shift + 7;
    if byte land 0x80 = 0 then fini := true
  done;
  !acc

let w_int b n = w_i64_leb b (Int64.of_int n)
let r_int r = Int64.to_int (r_i64_leb r)
let w_i64 = w_i64_leb
let r_i64 = r_i64_leb

(* ---------- scalars ---------- *)

let w_bool b v = Buffer.add_char b (if v then '\001' else '\000')

let r_bool r =
  need r 1;
  let c = r.data.[r.pos] in
  r.pos <- r.pos + 1;
  match c with
  | '\000' -> false
  | '\001' -> true
  | c -> corrupt "bad bool byte %d at offset %d" (Char.code c) (r.pos - 1)

let w_string b s =
  w_int b (String.length s);
  Buffer.add_string b s

let r_string r =
  let n = r_int r in
  if n < 0 then corrupt "negative string length at offset %d" r.pos;
  need r n;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let w_bytes b s = w_string b (Bytes.unsafe_to_string s)
let r_bytes r = Bytes.of_string (r_string r)

(* ---------- aggregates ---------- *)

let w_int_array b a =
  w_int b (Array.length a);
  Array.iter (w_int b) a

let r_int_array r =
  let n = r_int r in
  if n < 0 || n > remaining r then
    corrupt "bad array length %d at offset %d" n r.pos;
  Array.init n (fun _ -> r_int r)

let r_int_array_into r dst =
  let a = r_int_array r in
  if Array.length a <> Array.length dst then
    corrupt "array length %d does not match expected %d" (Array.length a)
      (Array.length dst);
  Array.blit a 0 dst 0 (Array.length a)

let r_bytes_into r dst =
  let s = r_string r in
  if String.length s <> Bytes.length dst then
    corrupt "byte-buffer length %d does not match expected %d"
      (String.length s) (Bytes.length dst);
  Bytes.blit_string s 0 dst 0 (String.length s)

let w_list b f xs =
  w_int b (List.length xs);
  List.iter (f b) xs

let r_list r f =
  let n = r_int r in
  if n < 0 || n > remaining r then
    corrupt "bad list length %d at offset %d" n r.pos;
  List.init n (fun _ -> f r)

let expect_end r =
  if r.pos <> String.length r.data then
    corrupt "trailing garbage: %d bytes left at offset %d" (remaining r) r.pos

(* ---------- CRC-32 ---------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

let crc32 (s : string) : int =
  let table = Lazy.force crc_table in
  let crc = ref 0xFFFFFFFF in
  String.iter
    (fun ch ->
       crc := table.((!crc lxor Char.code ch) land 0xFF) lxor (!crc lsr 8))
    s;
  !crc lxor 0xFFFFFFFF
