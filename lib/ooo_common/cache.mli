(** Set-associative caches with LRU replacement, the three-level hierarchy
    of Table I, and a next-line stream prefetcher on the data side
    (Section V-A). *)

type cache = {
  sets : int;
  ways : int;
  line_shift : int;
  tags : int array;
  lru : int array;
  hit_latency : int;
  mutable accesses : int;
  mutable misses : int;
  mutable stamp : int;
}

val create : Params.cache_params -> cache

val touch : cache -> int -> bool
(** [touch c addr] looks up and fills on miss; [true] on hit. *)

val fill : cache -> int -> unit
(** Silent install (prefetch): no access/miss accounting. *)

val corrupt_tag : cache -> victim:int -> flip:int -> unit
(** Fault injection: xor [flip] (low 8 bits, at least 1) into the tag of
    line [victim mod lines].  Timing-only — the model stores no data, so
    a corrupted tag induces extra misses or false hits, never wrong
    values.  Invalid lines are left untouched. *)

val save_cache : Buffer.t -> cache -> unit
(** Serialize the mutable portion of a cache (tags, LRU stamps,
    counters).  Geometry comes from [Params] on restore. *)

val load_cache : Bin.reader -> cache -> unit
(** Inverse of {!save_cache} into a freshly [create]d cache of the same
    geometry.  @raise Bin.Corrupt on malformed input or a shape
    mismatch. *)

type hierarchy = {
  l1i : cache;
  l1d : cache;
  l2 : cache;
  l3 : cache option;
  memory_latency : int;
  prefetch_degree : int;
  mutable prefetches : int;
}

val create_hierarchy : Params.t -> hierarchy

val save_hierarchy : Buffer.t -> hierarchy -> unit
(** Serialize every level plus the prefetch counter. *)

val load_hierarchy : Bin.reader -> hierarchy -> unit
(** Inverse of {!save_hierarchy} into a freshly built hierarchy of the
    same configuration.  @raise Bin.Corrupt on malformed input or an
    L3-presence mismatch. *)

val access_below : hierarchy -> int -> int
(** Walk L2/L3/memory; returns the additional latency beyond L1. *)

val data_access : hierarchy -> int -> int
(** Total load-to-use latency for a data access; trains the next-line
    stream prefetcher on L1D misses. *)

val inst_access : hierarchy -> int -> int
(** Instruction-fetch penalty for the line at [pc]: 0 on an L1I hit (the
    hit latency is pipelined into the front-end depth), the miss latency
    otherwise. *)

val warm_inst : hierarchy -> int -> unit
(** Functional warming of the instruction path: same lookup, fill and
    next-line prefetch as {!inst_access}, latency discarded. *)

val warm_data : hierarchy -> int -> unit
(** Functional warming of the data path: same lookup, fill and stream
    prefetch as {!data_access}, latency discarded. *)

val reset_stats : hierarchy -> unit
(** Zero the access/miss/prefetch counters at every level while keeping
    tags and LRU ordering — called at the warm-to-detailed handoff so
    warming never pollutes measured miss rates. *)
