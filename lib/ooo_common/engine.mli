(** Cycle-level out-of-order core model, shared between the STRAIGHT and
    superscalar pipelines (Section V-A: "both simulators share common
    codes for the most part").

    Trace-driven on the correct path; fetches wrong-path instructions from
    the static image after a misprediction so that squash cost (walk
    length, resource pollution) is modeled.  The two cores differ exactly
    where the paper says they do: operand determination (RMT + free list
    vs. RP arithmetic), front-end depth, and recovery (serialized ROB walk
    vs. a single ROB read).  See DESIGN.md for the modeling notes. *)

(** Micro-event counters consumed by the power model (Fig. 17). *)
type activity = {
  mutable rename_reads : int;      (** RMT read ports exercised *)
  mutable rename_writes : int;
  mutable freelist_ops : int;
  mutable rp_ops : int;            (** STRAIGHT operand-determination adds *)
  mutable rf_reads : int;
  mutable rf_writes : int;
  mutable iq_wakeups : int;
  mutable rob_writes : int;
  mutable rob_walk_steps : int;
  mutable alu_ops : int;
  mutable agu_ops : int;
}

val fresh_activity : unit -> activity

type stats = {
  cycles : int;
  committed : int;                 (** correct-path retired instructions *)
  wrong_path_fetched : int;
  branch_mispredicts : int;
  return_mispredicts : int;
  memdep_violations : int;
  walk_stall_cycles : int;
  spadd_stall_slots : int;         (** dispatch slots lost to the SPADD limit *)
  checkpoint_stall_slots : int;
  l1i_misses : int;
  l1d_misses : int;
  l1d_accesses : int;
  mix : (string * int) list;       (** retired kinds (Fig. 15 buckets) *)
  activity : activity;
  ipc : float;
  faults_injected : int;           (** fault-injection events fired *)
  commits_checked : int;           (** lockstep-checker validations; 0 = off *)
  cpi_stack : Stats.cpi_stack;
      (** per-cycle attribution; buckets sum to [cycles] *)
}

type t
(** A live simulation: the full engine state, advanced one cycle at a
    time.  [run] is [create] + [step] to completion + [finish]. *)

val create :
  Params.t ->
  trace:Iss.Trace.uop array ->
  decode_static:(int -> Iss.Trace.uop option) ->
  ?checker:Checker.t ->
  ?warm:Warm.t ->
  unit -> t
(** Fresh engine at cycle 0.  When [warm] is supplied the engine adopts
    its functionally warmed caches, branch predictor and RAS instead of
    cold ones (their access/miss counters are zeroed first so measured
    stats cover only the detailed region) — the fast-forward/sampling
    handoff.  [trace] may be any contiguous slice of a program's
    retirement stream: RP-relative producers that precede the slice are
    treated as already committed, matching a mid-program start.
    @raise Diag.Error with code [Config_error] on an empty trace. *)

val step : t -> unit
(** Simulate one cycle.  The watchdog runs first, at the cycle boundary,
    so a [Sim_deadlock] raise leaves the engine in a consistent,
    checkpointable state.
    @raise Diag.Error with code [Sim_deadlock] when the watchdog trips
    (total cycle budget exceeded, or no commit for 20k cycles) — the
    diagnostic context is a pipeline snapshot naming the stuck
    instruction and all queue occupancies — and code
    [Checker_divergence] from the checker. *)

val finished : t -> bool
(** The last trace entry has committed; [step] is no longer meaningful. *)

val cycle : t -> int
val committed_count : t -> int

val cpi_now : t -> Stats.cpi_stack
(** Mid-run snapshot of the cycle-accounting buckets (buckets sum to
    {!cycle}).  The interval sampler subtracts the snapshot taken at the
    warmup boundary from the final stack via {!Stats.cpi_sub}. *)

val finish : t -> stats
(** Run the checker's end-of-run validation (when present) and freeze
    the statistics.  @raise Diag.Error code [Checker_divergence]. *)

val run :
  Params.t ->
  trace:Iss.Trace.uop array ->
  decode_static:(int -> Iss.Trace.uop option) ->
  ?checker:Checker.t ->
  unit -> stats
(** [run p ~trace ~decode_static ?checker ()] simulates the whole
    correct-path [trace] on model [p]; [decode_static pc] supplies
    wrong-path instructions from the program image ([None] stalls
    wrong-path fetch).  [checker], when present, is fed every commit and
    the end-of-run state (lockstep golden-model checking).  Faults from
    [p.inject] are injected at fetch and issue opportunities.

    @raise Diag.Error with code [Config_error] on an empty trace, code
    [Sim_deadlock] when the watchdog trips (total cycle budget exceeded,
    or no commit for 20k cycles) — the diagnostic context is a pipeline
    snapshot naming the stuck instruction and all queue occupancies —
    and code [Checker_divergence] from the checker. *)

val save : Buffer.t -> t -> unit
(** Serialize the complete engine state (window, deques, issue queue,
    timing wheel, predictors, caches, fault injector, CPI accounting)
    at a cycle boundary.  Fixpoint contract: restoring the image and
    stepping [n] cycles is bit-identical — every stat, every cycle — to
    stepping the original [n] cycles. *)

val restore :
  Params.t ->
  trace:Iss.Trace.uop array ->
  decode_static:(int -> Iss.Trace.uop option) ->
  ?checker:Checker.t ->
  Bin.reader -> t
(** Inverse of {!save}.  [p] and [trace] must be the ones the image was
    saved under (the snapshot file layer enforces this; the engine layer
    shape-checks trace length, wheel geometry, and internal references).
    A checkpoint taken with a lockstep checker must be restored with
    one, and vice versa.
    @raise Bin.Corrupt on any malformed or mismatched image. *)
