(** Lockstep golden-model checker for the cycle-accurate engines.

    The cycle models are trace-driven: the ISS retirement trace is the
    golden model.  The checker observes every commit and validates, in
    lockstep, the invariants the paper's correctness story rests on:

    - {b program-order retirement}: correct-path commits walk the trace
      indices 0, 1, 2, ... with no skip and no repeat (exactly one
      commit per uop);
    - {b golden lockstep}: the committed uop's PC and FU class equal the
      golden trace entry at that index;
    - {b ROB FIFO discipline}: commit seq numbers strictly increase and
      commit cycles never decrease;
    - {b STRAIGHT register discipline} (Rp models): every instruction
      writes exactly one fresh register (write-once) and every source
      distance lies in [1, max_dist] — the bounded register window;
    - {b RMT consistency} (superscalar models): RISC-V uop shape
      (dest in x0..x31, has_dest iff dest <> x0, no distance operands)
      and free-list accounting: the free physical-register count stays
      in [0, phys_regs - 32] at every commit and returns to exactly
      phys_regs - 32 once the run drains (no leak, no double free).

    A violation raises {!Diag.Error} with code [Checker_divergence] and
    the full divergence context — a structured diagnostic, not a crash. *)

type t

val create :
  ?max_dist:int ->
  rename:Params.rename_model ->
  trace:Iss.Trace.uop array ->
  unit -> t
(** [max_dist] bounds STRAIGHT source distances (default
    {!Straight_isa.Isa.max_dist} via the pipelines); ignored for RMT
    models. *)

val on_commit :
  t ->
  cycle:int -> seq:int -> trace_idx:int -> wrong_path:bool ->
  free_regs:int ->
  Iss.Trace.uop -> unit
(** Validate one commit.  [trace_idx] is [-1] on the wrong path;
    [free_regs] is the engine's free physical-register count after the
    commit (ignored for Rp models).
    @raise Diag.Error on any invariant violation. *)

val on_finish : t -> cycles:int -> committed:int -> free_regs:int -> unit
(** End-of-run checks: every trace entry committed exactly once and the
    free list is whole again.
    @raise Diag.Error on violation. *)

val commits_checked : t -> int
(** Number of commit events validated so far. *)

val save : Buffer.t -> t -> unit
(** Serialize the lockstep cursor (last trace index / seq / cycle and
    the commit count).  The trace and configuration are rebuilt from the
    workload on restore. *)

val load : Bin.reader -> t -> unit
(** Inverse of {!save} into a checker [create]d over the regenerated
    trace.  @raise Bin.Corrupt on malformed input. *)
