(* Microarchitectural model parameters (Table I of the paper). *)

type predictor_kind = Gshare | Tage

type cache_params = {
  size_bytes : int;
  ways : int;
  line_bytes : int;
  hit_latency : int;
}

type rename_model =
  | Rmt of { phys_regs : int }
  (* RAM-based register mapping table + free list; misprediction recovery
     walks the ROB at the front-end width (Section V-A). *)
  | Rmt_checkpoint of { phys_regs : int; checkpoints : int }
  (* CAM/checkpointed RMT (Section II-A): recovery restores a checkpoint
     instead of walking, but dispatch stalls when all checkpoints are held
     by in-flight control instructions, and the physical register file
     cannot grow (the paper's ROB-scalability argument). *)
  | Rp
  (* STRAIGHT: operand determination by register-pointer arithmetic
     (Fig. 3); recovery is a single ROB read (Fig. 4). *)

type t = {
  name : string;
  fetch_width : int;
  frontend_depth : int;       (* fetch-to-dispatch latency in cycles *)
  rob_entries : int;
  scheduler_entries : int;
  issue_width : int;          (* scheduler width *)
  commit_width : int;
  ldq_entries : int;
  stq_entries : int;
  n_alu : int;
  n_mul : int;
  n_div : int;
  n_bc : int;                 (* branch units *)
  n_mem : int;
  rename : rename_model;
  predictor : predictor_kind;
  l1i : cache_params;
  l1d : cache_params;
  l2 : cache_params;
  l3 : cache_params option;
  memory_latency : int;
  (* experiment knobs *)
  ideal_recovery : bool;      (* Fig. 13: zero misprediction penalty *)
  latency_alu : int;
  latency_mul : int;
  latency_div : int;
  branch_resolve_latency : int;
  (* issue-to-redirect depth (issue, register read, execute, redirect) *)
  dispatch_issue_latency : int;
  (* dispatch-to-earliest-issue depth (schedule + issue stages, Fig. 2) *)
  inject : Inject.plan option;
  (* seeded fault-injection plan; None = no faults (robustness harness) *)
}

let l1_32k = { size_bytes = 32 * 1024; ways = 4; line_bytes = 64; hit_latency = 4 }
let l2_256k = { size_bytes = 256 * 1024; ways = 4; line_bytes = 64; hit_latency = 12 }
let l3_2m = { size_bytes = 2 * 1024 * 1024; ways = 4; line_bytes = 64; hit_latency = 42 }

(* The "SS" (superscalar RV32IM) and "STRAIGHT" models of Table I.  The
   4-way class models a high-end desktop/server core, the 2-way class a
   small mobile core.  Sizes are equalized between the pair to isolate the
   architectural difference, exactly as in the paper. *)

let base =
  { name = "base";
    fetch_width = 2;
    frontend_depth = 8;
    rob_entries = 64;
    scheduler_entries = 16;
    issue_width = 2;
    commit_width = 3;
    ldq_entries = 48;
    stq_entries = 48;
    n_alu = 2; n_mul = 1; n_div = 1; n_bc = 2; n_mem = 2;
    rename = Rmt { phys_regs = 96 };
    predictor = Gshare;
    l1i = l1_32k; l1d = l1_32k; l2 = l2_256k; l3 = None;
    memory_latency = 200;
    ideal_recovery = false;
    latency_alu = 1; latency_mul = 3; latency_div = 20;
    branch_resolve_latency = 3;
    dispatch_issue_latency = 2;
    inject = None }

let ss_2way = { base with name = "SS-2way" }

let straight_2way =
  { base with
    name = "STRAIGHT-2way";
    frontend_depth = 6;
    rename = Rp }

let ss_4way =
  { base with
    name = "SS-4way";
    fetch_width = 6;
    rob_entries = 224;
    scheduler_entries = 96;
    issue_width = 4;
    commit_width = 4;
    ldq_entries = 72;
    stq_entries = 56;
    n_alu = 4; n_mul = 2; n_div = 1; n_bc = 4; n_mem = 4;
    rename = Rmt { phys_regs = 256 };
    l3 = Some l3_2m }

let straight_4way =
  { ss_4way with
    name = "STRAIGHT-4way";
    frontend_depth = 6;
    rename = Rp }

(* STRAIGHT's maximum source distance for the evaluated models: chosen so
   that max_dist + ROB entries matches the SS physical register file
   (Section V-A: 31 + 64 ~ 96 and 31 + 224 ~ 256). *)
let straight_max_dist = 31

let with_tage p = { p with predictor = Tage; name = p.name ^ "+TAGE" }

(* Checkpointed-RMT variant of a superscalar model (Section II-A). *)
let with_checkpoints ?(n = 8) p =
  match p.rename with
  | Rmt { phys_regs } ->
    { p with rename = Rmt_checkpoint { phys_regs; checkpoints = n };
      name = Printf.sprintf "%s-ckpt%d" p.name n }
  | Rmt_checkpoint _ | Rp -> p

(* Maximum SPADD instructions dispatched per cycle (Section III-B: cascaded
   SPADD computations in one fetch group would stretch the clock, so the
   decoder restricts them by stalling; the paper argues the effect is
   negligible because SPADDs are rare). *)
let spadd_per_cycle = 1
let with_ideal_recovery p =
  { p with ideal_recovery = true; name = p.name ^ "-nopenalty" }

(* Arm a seeded fault-injection plan (robustness campaigns). *)
let with_faults plan p =
  { p with inject = Some plan;
    name = Printf.sprintf "%s-faults@%d" p.name plan.Inject.seed }

(* ---------- JSON round-trip and stable hashing ----------

   The sweep subsystem content-addresses simulation results by
   configuration, so [t] needs a canonical serialization: [to_json] is
   total over every field (including the fault-injection plan), and
   [digest] is the MD5 of the compact rendering — stable across
   processes, unlike [Hashtbl.hash] on a record containing closures'
   worth of nested data.  [of_json] inverts [to_json] exactly;
   [equal] is structural. *)

exception Json_error of string

module J = Stats.Json

let cache_to_json (c : cache_params) : J.t =
  J.Obj
    [ ("size_bytes", J.Int c.size_bytes);
      ("ways", J.Int c.ways);
      ("line_bytes", J.Int c.line_bytes);
      ("hit_latency", J.Int c.hit_latency) ]

let jfail fmt = Printf.ksprintf (fun m -> raise (Json_error m)) fmt

let jint name j =
  match J.get_int (J.member name j) with
  | Some n -> n
  | None -> jfail "missing int field %S" name

let jstr name j =
  match J.get_string (J.member name j) with
  | Some s -> s
  | None -> jfail "missing string field %S" name

let jbool name j =
  match J.member name j with
  | Some (J.Bool b) -> b
  | _ -> jfail "missing bool field %S" name

let cache_of_json j =
  { size_bytes = jint "size_bytes" j;
    ways = jint "ways" j;
    line_bytes = jint "line_bytes" j;
    hit_latency = jint "hit_latency" j }

let rename_to_json = function
  | Rmt { phys_regs } ->
    J.Obj [ ("kind", J.Str "rmt"); ("phys_regs", J.Int phys_regs) ]
  | Rmt_checkpoint { phys_regs; checkpoints } ->
    J.Obj
      [ ("kind", J.Str "rmt_checkpoint");
        ("phys_regs", J.Int phys_regs);
        ("checkpoints", J.Int checkpoints) ]
  | Rp -> J.Obj [ ("kind", J.Str "rp") ]

let rename_of_json j =
  match jstr "kind" j with
  | "rmt" -> Rmt { phys_regs = jint "phys_regs" j }
  | "rmt_checkpoint" ->
    Rmt_checkpoint
      { phys_regs = jint "phys_regs" j; checkpoints = jint "checkpoints" j }
  | "rp" -> Rp
  | k -> jfail "unknown rename kind %S" k

let predictor_name = function Gshare -> "gshare" | Tage -> "tage"

let predictor_of_name = function
  | "gshare" -> Some Gshare
  | "tage" -> Some Tage
  | _ -> None

let inject_to_json = function
  | None -> J.Null
  | Some (pl : Inject.plan) ->
    J.Obj
      [ ("seed", J.Int pl.Inject.seed);
        ("period", J.Int pl.Inject.period);
        ("kinds",
         J.List
           (List.map (fun k -> J.Str (Inject.kind_name k)) pl.Inject.kinds)) ]

let inject_of_json = function
  | None | Some J.Null -> None
  | Some j ->
    let kinds =
      match J.get_list (J.member "kinds" j) with
      | Some ks ->
        List.map
          (fun k ->
             match J.get_string (Some k) with
             | Some s ->
               (match Inject.kind_of_string s with
                | Some kind -> kind
                | None -> jfail "unknown fault kind %S" s)
             | None -> jfail "fault kind is not a string")
          ks
      | None -> jfail "missing fault kinds"
    in
    Some { Inject.seed = jint "seed" j; period = jint "period" j; kinds }

let to_json (p : t) : J.t =
  J.Obj
    [ ("name", J.Str p.name);
      ("fetch_width", J.Int p.fetch_width);
      ("frontend_depth", J.Int p.frontend_depth);
      ("rob_entries", J.Int p.rob_entries);
      ("scheduler_entries", J.Int p.scheduler_entries);
      ("issue_width", J.Int p.issue_width);
      ("commit_width", J.Int p.commit_width);
      ("ldq_entries", J.Int p.ldq_entries);
      ("stq_entries", J.Int p.stq_entries);
      ("n_alu", J.Int p.n_alu);
      ("n_mul", J.Int p.n_mul);
      ("n_div", J.Int p.n_div);
      ("n_bc", J.Int p.n_bc);
      ("n_mem", J.Int p.n_mem);
      ("rename", rename_to_json p.rename);
      ("predictor", J.Str (predictor_name p.predictor));
      ("l1i", cache_to_json p.l1i);
      ("l1d", cache_to_json p.l1d);
      ("l2", cache_to_json p.l2);
      ("l3", (match p.l3 with None -> J.Null | Some c -> cache_to_json c));
      ("memory_latency", J.Int p.memory_latency);
      ("ideal_recovery", J.Bool p.ideal_recovery);
      ("latency_alu", J.Int p.latency_alu);
      ("latency_mul", J.Int p.latency_mul);
      ("latency_div", J.Int p.latency_div);
      ("branch_resolve_latency", J.Int p.branch_resolve_latency);
      ("dispatch_issue_latency", J.Int p.dispatch_issue_latency);
      ("inject", inject_to_json p.inject) ]

let of_json (j : J.t) : t =
  let sub name =
    match J.member name j with
    | Some s -> s
    | None -> jfail "missing field %S" name
  in
  { name = jstr "name" j;
    fetch_width = jint "fetch_width" j;
    frontend_depth = jint "frontend_depth" j;
    rob_entries = jint "rob_entries" j;
    scheduler_entries = jint "scheduler_entries" j;
    issue_width = jint "issue_width" j;
    commit_width = jint "commit_width" j;
    ldq_entries = jint "ldq_entries" j;
    stq_entries = jint "stq_entries" j;
    n_alu = jint "n_alu" j;
    n_mul = jint "n_mul" j;
    n_div = jint "n_div" j;
    n_bc = jint "n_bc" j;
    n_mem = jint "n_mem" j;
    rename = rename_of_json (sub "rename");
    predictor =
      (let s = jstr "predictor" j in
       match predictor_of_name s with
       | Some p -> p
       | None -> jfail "unknown predictor %S" s);
    l1i = cache_of_json (sub "l1i");
    l1d = cache_of_json (sub "l1d");
    l2 = cache_of_json (sub "l2");
    l3 =
      (match J.member "l3" j with
       | None | Some J.Null -> None
       | Some c -> Some (cache_of_json c));
    memory_latency = jint "memory_latency" j;
    ideal_recovery = jbool "ideal_recovery" j;
    latency_alu = jint "latency_alu" j;
    latency_mul = jint "latency_mul" j;
    latency_div = jint "latency_div" j;
    branch_resolve_latency = jint "branch_resolve_latency" j;
    dispatch_issue_latency = jint "dispatch_issue_latency" j;
    inject = inject_of_json (J.member "inject" j) }

(* [t] is first-order data (ints, strings, lists of enums), so the
   structural comparison is exactly configuration equality. *)
let equal (a : t) (b : t) = a = b

let digest (p : t) : string =
  Digest.to_hex (Digest.string (J.to_string ~indent:false (to_json p)))
