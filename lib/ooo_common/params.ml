(* Microarchitectural model parameters (Table I of the paper). *)

type predictor_kind = Gshare | Tage

type cache_params = {
  size_bytes : int;
  ways : int;
  line_bytes : int;
  hit_latency : int;
}

type rename_model =
  | Rmt of { phys_regs : int }
  (* RAM-based register mapping table + free list; misprediction recovery
     walks the ROB at the front-end width (Section V-A). *)
  | Rmt_checkpoint of { phys_regs : int; checkpoints : int }
  (* CAM/checkpointed RMT (Section II-A): recovery restores a checkpoint
     instead of walking, but dispatch stalls when all checkpoints are held
     by in-flight control instructions, and the physical register file
     cannot grow (the paper's ROB-scalability argument). *)
  | Rp
  (* STRAIGHT: operand determination by register-pointer arithmetic
     (Fig. 3); recovery is a single ROB read (Fig. 4). *)

type t = {
  name : string;
  fetch_width : int;
  frontend_depth : int;       (* fetch-to-dispatch latency in cycles *)
  rob_entries : int;
  scheduler_entries : int;
  issue_width : int;          (* scheduler width *)
  commit_width : int;
  ldq_entries : int;
  stq_entries : int;
  n_alu : int;
  n_mul : int;
  n_div : int;
  n_bc : int;                 (* branch units *)
  n_mem : int;
  rename : rename_model;
  predictor : predictor_kind;
  l1i : cache_params;
  l1d : cache_params;
  l2 : cache_params;
  l3 : cache_params option;
  memory_latency : int;
  (* experiment knobs *)
  ideal_recovery : bool;      (* Fig. 13: zero misprediction penalty *)
  latency_alu : int;
  latency_mul : int;
  latency_div : int;
  branch_resolve_latency : int;
  (* issue-to-redirect depth (issue, register read, execute, redirect) *)
  dispatch_issue_latency : int;
  (* dispatch-to-earliest-issue depth (schedule + issue stages, Fig. 2) *)
  inject : Inject.plan option;
  (* seeded fault-injection plan; None = no faults (robustness harness) *)
}

let l1_32k = { size_bytes = 32 * 1024; ways = 4; line_bytes = 64; hit_latency = 4 }
let l2_256k = { size_bytes = 256 * 1024; ways = 4; line_bytes = 64; hit_latency = 12 }
let l3_2m = { size_bytes = 2 * 1024 * 1024; ways = 4; line_bytes = 64; hit_latency = 42 }

(* The "SS" (superscalar RV32IM) and "STRAIGHT" models of Table I.  The
   4-way class models a high-end desktop/server core, the 2-way class a
   small mobile core.  Sizes are equalized between the pair to isolate the
   architectural difference, exactly as in the paper. *)

let base =
  { name = "base";
    fetch_width = 2;
    frontend_depth = 8;
    rob_entries = 64;
    scheduler_entries = 16;
    issue_width = 2;
    commit_width = 3;
    ldq_entries = 48;
    stq_entries = 48;
    n_alu = 2; n_mul = 1; n_div = 1; n_bc = 2; n_mem = 2;
    rename = Rmt { phys_regs = 96 };
    predictor = Gshare;
    l1i = l1_32k; l1d = l1_32k; l2 = l2_256k; l3 = None;
    memory_latency = 200;
    ideal_recovery = false;
    latency_alu = 1; latency_mul = 3; latency_div = 20;
    branch_resolve_latency = 3;
    dispatch_issue_latency = 2;
    inject = None }

let ss_2way = { base with name = "SS-2way" }

let straight_2way =
  { base with
    name = "STRAIGHT-2way";
    frontend_depth = 6;
    rename = Rp }

let ss_4way =
  { base with
    name = "SS-4way";
    fetch_width = 6;
    rob_entries = 224;
    scheduler_entries = 96;
    issue_width = 4;
    commit_width = 4;
    ldq_entries = 72;
    stq_entries = 56;
    n_alu = 4; n_mul = 2; n_div = 1; n_bc = 4; n_mem = 4;
    rename = Rmt { phys_regs = 256 };
    l3 = Some l3_2m }

let straight_4way =
  { ss_4way with
    name = "STRAIGHT-4way";
    frontend_depth = 6;
    rename = Rp }

(* STRAIGHT's maximum source distance for the evaluated models: chosen so
   that max_dist + ROB entries matches the SS physical register file
   (Section V-A: 31 + 64 ~ 96 and 31 + 224 ~ 256). *)
let straight_max_dist = 31

let with_tage p = { p with predictor = Tage; name = p.name ^ "+TAGE" }

(* Checkpointed-RMT variant of a superscalar model (Section II-A). *)
let with_checkpoints ?(n = 8) p =
  match p.rename with
  | Rmt { phys_regs } ->
    { p with rename = Rmt_checkpoint { phys_regs; checkpoints = n };
      name = Printf.sprintf "%s-ckpt%d" p.name n }
  | Rmt_checkpoint _ | Rp -> p

(* Maximum SPADD instructions dispatched per cycle (Section III-B: cascaded
   SPADD computations in one fetch group would stretch the clock, so the
   decoder restricts them by stalling; the paper argues the effect is
   negligible because SPADDs are rare). *)
let spadd_per_cycle = 1
let with_ideal_recovery p =
  { p with ideal_recovery = true; name = p.name ^ "-nopenalty" }

(* Arm a seeded fault-injection plan (robustness campaigns). *)
let with_faults plan p =
  { p with inject = Some plan;
    name = Printf.sprintf "%s-faults@%d" p.name plan.Inject.seed }
