(** Seeded microarchitectural fault injection for the cycle models.

    A {!plan} names which fault classes to arm, a deterministic seed,
    and a mean injection period (one fault per [period] opportunities).
    The engine consults {!fire} at each opportunity — a branch
    prediction, a cache probe, a functional-unit completion — and the
    run must either absorb the fault through the normal recovery
    machinery or trip the lockstep checker / watchdog with a structured
    diagnostic.  All faults are timing-level: architectural results come
    from the ISS oracle, so a survived campaign demonstrates that the
    squash/recovery paths (the paper's "hazardless recovery" claim) are
    robust, not that wrong values are tolerated.

    Randomness is a private splitmix64 stream: runs are reproducible
    from the seed alone, independent of the OCaml stdlib [Random]
    state. *)

type kind =
  | Flip_prediction     (** invert a branch predictor's answer at fetch *)
  | Corrupt_cache_tag   (** flip bits in a random L1 tag-array entry *)
  | Spurious_recovery   (** force a full mispredict-recovery on a
                            correctly-predicted branch *)
  | Stretch_fu_latency  (** stretch a functional unit's latency *)

val all_kinds : kind list

val kind_name : kind -> string
val kind_of_string : string -> kind option
(** Accepts the short names ["flip"], ["tag"], ["spurious"],
    ["stretch"] (and ["all"] is handled by callers). *)

type plan = {
  seed : int;
  period : int;        (** mean opportunities between injections *)
  kinds : kind list;   (** armed fault classes *)
}

val plan : ?period:int -> ?kinds:kind list -> int -> plan
(** [plan seed] arms every fault class at the default period (1000). *)

type t
(** Runtime injector state (PRNG + per-kind counters). *)

val disabled : unit -> t

val make : plan option -> t
(** [make None] never fires. *)

val active : t -> bool

val fire : t -> kind -> bool
(** Decide whether to inject at this opportunity; advances the PRNG and
    counts the injection when it fires. *)

val draw : t -> int -> int
(** [draw t n] is a uniform victim index in [\[0, n)]; [0] when [n <= 0]. *)

val counts : t -> (kind * int) list
(** Injections fired so far, per armed kind. *)

val total : t -> int

val save : Buffer.t -> t -> unit
(** Serialize the PRNG position and the per-kind counters.  The plan
    itself (period, armed kinds) is rebuilt from [Params] on restore. *)

val load : Bin.reader -> t -> unit
(** Inverse of {!save} into an injector built from the same plan.
    @raise Bin.Corrupt on malformed input. *)
