(* Cycle-level out-of-order core model, shared between the STRAIGHT and the
   superscalar RV32IM pipelines (Section V-A: "both simulators share common
   codes for the most part").

   The model is trace-driven on the correct path (the functional simulator
   supplies oracle branch outcomes and memory addresses) and fetches
   wrong-path instructions from the static image after a misprediction, so
   that squash cost — the ROB walk whose length is the number of squashed
   entries — is modeled faithfully.  See DESIGN.md for the wrong-path
   modelling notes.

   Differences between the two cores are concentrated in:
   - operand determination (RMT lookups + free list vs. RP arithmetic),
   - front-end depth (8 vs. 6 stages),
   - misprediction recovery (ROB walk at fetch width + RMT restore vs. a
     single ROB read).

   Hot-path organization: because sequence numbers are allocated
   monotonically, committed at the head, and squashed as a suffix, every
   pipeline structure is a seq-sorted sequence.  The in-flight window is
   an open-addressed ring indexed by [seq land mask]; the ROB, front-end
   queue, and LSQs are ring deques whose squash is a suffix truncation;
   the issue queue is an age-sorted array compacted in place.  Operand
   readiness is event-driven: a consumer holds a count of outstanding
   producers, producers hold wakeup edges fired either from a timing
   wheel when the value becomes available or when the producer leaves
   the window.  None of this changes simulated timing — cycle counts are
   bit-identical to the original list/Hashtbl engine (asserted by
   test_stats.ml against recorded golden counts). *)

module Trace = Iss.Trace

type activity = {
  mutable rename_reads : int;      (* RMT read ports exercised *)
  mutable rename_writes : int;     (* RMT writes *)
  mutable freelist_ops : int;
  mutable rp_ops : int;            (* STRAIGHT operand-determination adds *)
  mutable rf_reads : int;
  mutable rf_writes : int;
  mutable iq_wakeups : int;
  mutable rob_writes : int;
  mutable rob_walk_steps : int;
  mutable alu_ops : int;
  mutable agu_ops : int;
}

let fresh_activity () =
  { rename_reads = 0; rename_writes = 0; freelist_ops = 0; rp_ops = 0;
    rf_reads = 0; rf_writes = 0; iq_wakeups = 0; rob_writes = 0;
    rob_walk_steps = 0; alu_ops = 0; agu_ops = 0 }

type dyn = {
  seq : int;
  uop : Trace.uop;
  wrong_path : bool;
  trace_idx : int;                  (* -1 on the wrong path *)
  fetched_at : int;
  mutable producers : int list;     (* producer seq numbers *)
  mutable dispatched : bool;
  mutable dispatched_at : int;
  mutable issued : bool;
  mutable ready_at : int;           (* cycle the result is available *)
  mutable replay_bump : int;        (* extra wakeup delay for consumers *)
  mutable mispredicted : bool;
  mutable resume_idx : int;         (* trace index to resume after squash *)
  mutable addr_known : bool;        (* stores: address resolved *)
  mutable executed_load : bool;
  mutable recovery_at : int;        (* pending recovery event; -1 = none *)
  mutable ras_snapshot : int;       (* RAS top-of-stack for recovery *)
  mutable n_unready : int;          (* producers whose value is pending *)
  mutable waiters : edge list;      (* consumers to wake on availability *)
}

(* A wakeup edge fires exactly once: either from the timing wheel at the
   producer's availability cycle, or when the producer leaves the window
   (commit — the value is then readable from the register file). *)
and edge = { consumer : dyn; mutable fired : bool }

type stats = {
  cycles : int;
  committed : int;
  wrong_path_fetched : int;
  branch_mispredicts : int;
  return_mispredicts : int;
  memdep_violations : int;
  walk_stall_cycles : int;
  spadd_stall_slots : int;    (* dispatch slots lost to the SPADD limit *)
  checkpoint_stall_slots : int;
  l1i_misses : int;
  l1d_misses : int;
  l1d_accesses : int;
  mix : (string * int) list;        (* retired instruction kinds (Fig. 15) *)
  activity : activity;
  ipc : float;
  faults_injected : int;            (* fault-injection events fired *)
  commits_checked : int;            (* lockstep-checker validations; 0 = off *)
  cpi_stack : Stats.cpi_stack;      (* per-cycle attribution; sums to cycles *)
}

type fetch_mode =
  | Fetch_correct of int            (* next trace index *)
  | Fetch_wrong of int              (* wrong-path static pc *)
  | Fetch_stalled                   (* waiting for a redirect *)

let fu_latency (p : Params.t) = function
  | Trace.FU_alu -> p.latency_alu
  | Trace.FU_mul -> p.latency_mul
  | Trace.FU_div -> p.latency_div
  | Trace.FU_branch -> 1
  | Trace.FU_load -> 1 (* + cache *)
  | Trace.FU_store -> 1

(* Seq-sorted ring deque: push at the back, commit pops the front, squash
   truncates the back.  Capacity grows on demand (the front-end queue is
   unbounded while dispatch stalls). *)
module Ring = struct
  type t = {
    dummy : dyn;
    mutable buf : dyn array;
    mutable head : int;
    mutable len : int;
  }

  let create dummy = { dummy; buf = Array.make 64 dummy; head = 0; len = 0 }
  let length t = t.len
  let is_empty t = t.len = 0
  let get t i = t.buf.((t.head + i) land (Array.length t.buf - 1))
  let front t = t.buf.(t.head)
  let back t = get t (t.len - 1)

  let grow t =
    let cap = Array.length t.buf in
    let nbuf = Array.make (2 * cap) t.dummy in
    for i = 0 to t.len - 1 do nbuf.(i) <- t.buf.((t.head + i) land (cap - 1)) done;
    t.buf <- nbuf;
    t.head <- 0

  let push_back t x =
    if t.len = Array.length t.buf then grow t;
    t.buf.((t.head + t.len) land (Array.length t.buf - 1)) <- x;
    t.len <- t.len + 1

  let pop_front t =
    let x = t.buf.(t.head) in
    t.buf.(t.head) <- t.dummy;
    t.head <- (t.head + 1) land (Array.length t.buf - 1);
    t.len <- t.len - 1;
    x

  let pop_back t =
    let i = (t.head + t.len - 1) land (Array.length t.buf - 1) in
    let x = t.buf.(i) in
    t.buf.(i) <- t.dummy;
    t.len <- t.len - 1;
    x

  let iter f t = for i = 0 to t.len - 1 do f (get t i) done
end

let next_pow2 n =
  let r = ref 1 in
  while !r < n do r := !r * 2 done;
  !r

(* [run p ~trace ~decode_static ?checker ()] simulates the whole trace
   and returns timing statistics.  [decode_static pc] supplies wrong-path
   instructions.  [checker] is the lockstep golden-model checker, fed at
   every commit.  Faults from [p.inject] are injected at fetch/issue
   opportunities; a deadlock or lack of forward progress trips the
   watchdog, which raises [Diag.Error Sim_deadlock] carrying a full
   machine-readable pipeline snapshot. *)
let run (p : Params.t) ~(trace : Trace.uop array)
    ~(decode_static : int -> Trace.uop option)
    ?(checker : Checker.t option) () : stats =
  let n_trace = Array.length trace in
  if n_trace = 0 then
    Diag.error Diag.Config_error "empty trace: nothing to simulate";
  let hier = Cache.create_hierarchy p in
  let pred = Branch_pred.make p.predictor in
  let ras = Branch_pred.Ras.create () in
  let memdep = Memdep.create () in
  let inj = Inject.make p.inject in
  let act = fresh_activity () in
  let dummy_uop =
    { Trace.pc = -1; fu = Trace.FU_alu; srcs_dist = [||]; srcs_reg = [||];
      dest_reg = 0; has_dest = false; is_rmov = false; is_nop = false;
      is_spadd = false; mem_addr = 0; ctrl = Trace.Not_ctrl }
  in
  let dummy =
    { seq = -1; uop = dummy_uop; wrong_path = false; trace_idx = -1;
      fetched_at = 0; producers = []; dispatched = false; dispatched_at = 0;
      issued = false; ready_at = 0; replay_bump = 0; mispredicted = false;
      resume_idx = -1; addr_known = false; executed_load = false;
      recovery_at = -1; ras_snapshot = 0; n_unready = 0; waiters = [] }
  in
  (* in-flight window: open-addressed ring indexed by seq.  A slot is
     occupied only by a live entry (cleared at commit and squash), so a
     collision on insert means the window span outgrew the capacity. *)
  let win = ref (Array.make 1024 dummy) in
  let win_mask = ref 1023 in
  (* allocation-free lookup: [dummy] plays the role of [None] *)
  let win_get s =
    let d = !win.(s land !win_mask) in
    if d.seq = s then d else dummy
  in
  let win_mem s = (!win.(s land !win_mask)).seq = s in
  let win_clear d =
    let i = d.seq land !win_mask in
    if !win.(i) == d then !win.(i) <- dummy
  in
  let win_grow () =
    (* live seqs are pairwise distinct modulo the old capacity, hence
       also modulo the doubled capacity: rehashing cannot collide *)
    let old = !win in
    let ncap = 2 * Array.length old in
    win := Array.make ncap dummy;
    win_mask := ncap - 1;
    Array.iter (fun d -> if d != dummy then !win.(d.seq land !win_mask) <- d) old
  in
  let rec win_insert d =
    let i = d.seq land !win_mask in
    if !win.(i) != dummy then begin win_grow (); win_insert d end
    else !win.(i) <- d
  in
  let next_seq = ref 0 in
  let trace_seq = Array.make n_trace (-1) in
  (* pipeline structures, all seq-sorted *)
  let frontend_q = Ring.create dummy in
  let rob = Ring.create dummy in
  let ldq = Ring.create dummy in
  let stq = Ring.create dummy in
  (* issue queue: age-sorted array, compacted in place after selection *)
  let iq_buf = ref (Array.make 128 dummy) in
  let iq_len = ref 0 in
  let iq_push d =
    if !iq_len = Array.length !iq_buf then begin
      let nbuf = Array.make (2 * !iq_len) dummy in
      Array.blit !iq_buf 0 nbuf 0 !iq_len;
      iq_buf := nbuf
    end;
    !iq_buf.(!iq_len) <- d;
    incr iq_len
  in
  (* timing wheel for operand wakeups: every issued instruction is
     scheduled at the cycle its value becomes available; the wheel spans
     the worst-case latency (full memory hierarchy + fault stretch) *)
  let wheel_size =
    let mem =
      p.l1d.Params.hit_latency + p.l2.Params.hit_latency
      + (match p.l3 with Some c -> c.Params.hit_latency | None -> 0)
      + p.memory_latency
    in
    let lat =
      max (max p.latency_alu (max p.latency_mul p.latency_div)) (1 + mem)
    in
    (* + injected stretch (<= 9), replay bump, issue cycle, margin *)
    next_pow2 (lat + 32)
  in
  let wheel : dyn list array = Array.make wheel_size [] in
  let wheel_mask = wheel_size - 1 in
  (* rename state (superscalar) *)
  let rmt = Array.make 32 (-1) in
  let arch_regs = 32 in
  let free_regs =
    ref (match p.rename with
         | Params.Rmt { phys_regs } | Params.Rmt_checkpoint { phys_regs; _ } ->
           phys_regs - arch_regs
         | Params.Rp -> max_int / 2)
  in
  let is_rmt = match p.rename with Params.Rmt _ | Params.Rmt_checkpoint _ -> true
                                 | Params.Rp -> false in
  let checkpoint_limit =
    match p.rename with
    | Params.Rmt_checkpoint { checkpoints; _ } -> checkpoints
    | _ -> max_int
  in
  let inflight_ctrl = ref 0 in
  let spadd_stalls = ref 0 in
  let checkpoint_stalls = ref 0 in
  let rename_blocked_until = ref 0 in
  let fetch_stall_until = ref 0 in
  let mode = ref (Fetch_correct 0) in
  let now = ref 0 in
  let done_ = ref false in
  let committed = ref 0 in
  let commits_now = ref 0 in        (* correct-path commits this cycle *)
  let wrong_fetched = ref 0 in
  let branch_misp = ref 0 in
  let ret_misp = ref 0 in
  let walk_stalls = ref 0 in
  let cpi = Stats.fresh_acc () in
  let redirect_until = ref 0 in     (* CPI attribution of post-squash refill *)
  (* retired-kind mix, counted without hashing (labels from
     Trace.kind_label: LD ST Jump+Branch ALU RMOV NOP) *)
  let mix_counts = Array.make 6 0 in
  let mix_slot (u : Trace.uop) =
    match u.Trace.fu with
    | Trace.FU_load -> 0
    | Trace.FU_store -> 1
    | Trace.FU_branch -> 2
    | Trace.FU_mul | Trace.FU_div -> 3
    | Trace.FU_alu ->
      if u.Trace.is_rmov then 4 else if u.Trace.is_nop then 5 else 3
  in
  let mix_labels = [| "LD"; "ST"; "Jump+Branch"; "ALU"; "RMOV"; "NOP" |] in
  (* pending recovery events: (cycle, seq of faulting instr, resume idx,
     refetch_including_self) *)
  let recoveries : (int * int * int * bool) list ref = ref [] in
  (* watchdog + diagnostics state; last 8 commits kept in a ring *)
  let last_commit_cycle = ref 0 in
  let lc_idx = Array.make 8 0 in
  let lc_pc = Array.make 8 0 in
  let lc_n = ref 0 in

  (* ---------- wakeup plumbing ---------- *)
  let fire_edges d =
    List.iter
      (fun e ->
         if not e.fired then begin
           e.fired <- true;
           e.consumer.n_unready <- e.consumer.n_unready - 1
         end)
      d.waiters;
    d.waiters <- []
  in
  (* called once per issued instruction, with the final availability
     cycle (base latency + cache + injected stretch + replay bump) *)
  let schedule_wakeup d =
    let avail = d.ready_at + d.replay_bump in
    assert (avail - !now < wheel_size);
    let i = avail land wheel_mask in
    wheel.(i) <- d :: wheel.(i)
  in
  let drain_wheel () =
    let i = !now land wheel_mask in
    match wheel.(i) with
    | [] -> ()
    | ds -> wheel.(i) <- []; List.iter fire_edges ds
  in
  (* register d's dependence edges at dispatch: a producer outside the
     window (committed or never renamed) is readable immediately; one
     already issued with an availability in the past likewise *)
  let register_producers d =
    List.iter
      (fun s ->
         let pr = win_get s in
         if pr == dummy then ()
         else if pr.issued && pr.ready_at + pr.replay_bump <= !now then ()
         else begin
           d.n_unready <- d.n_unready + 1;
           pr.waiters <- { consumer = d; fired = false } :: pr.waiters
         end)
      d.producers
  in

  let mk_dyn ~uop ~wrong_path ~trace_idx =
    let d =
      { seq = !next_seq;
        uop; wrong_path; trace_idx;
        fetched_at = !now;
        producers = [];
        dispatched = false;
        dispatched_at = 0;
        issued = false;
        ready_at = max_int / 2;
        replay_bump = 0;
        mispredicted = false;
        resume_idx = -1;
        addr_known = false;
        executed_load = false;
        recovery_at = -1;
        ras_snapshot = 0;
        n_unready = 0;
        waiters = [] }
    in
    incr next_seq;
    win_insert d;
    d
  in

  (* ---------- squash ---------- *)
  (* Every structure is seq-sorted, so a squash is a suffix truncation:
     O(squashed) instead of a full-window walk.  Returns the number of
     physical registers released: one per renamed (ROB-resident) squashed
     instruction with a destination. *)
  let squash_from first_bad_seq =
    while !iq_len > 0 && !iq_buf.(!iq_len - 1).seq >= first_bad_seq do
      decr iq_len;
      !iq_buf.(!iq_len) <- dummy
    done;
    while Ring.length ldq > 0 && (Ring.back ldq).seq >= first_bad_seq do
      ignore (Ring.pop_back ldq)
    done;
    while Ring.length stq > 0 && (Ring.back stq).seq >= first_bad_seq do
      ignore (Ring.pop_back stq)
    done;
    let freed = ref 0 in
    while Ring.length rob > 0 && (Ring.back rob).seq >= first_bad_seq do
      let d = Ring.pop_back rob in
      if d.uop.Trace.has_dest && d.uop.Trace.dest_reg <> 0 then incr freed;
      win_clear d
    done;
    while Ring.length frontend_q > 0
          && (Ring.back frontend_q).seq >= first_bad_seq do
      win_clear (Ring.pop_back frontend_q)
    done;
    !freed
  in

  (* RAM-based RMT recovery walks the ROB over the squashed (younger)
     entries, undoing each mapping (Section II-A; [14] reports the penalty
     as several tens of cycles with a 256-entry ROB).  The checkpoint-free
     RMT cannot rename newly fetched instructions until the walk finishes,
     so the walk serializes with the refetch. *)
  let walk_entries_after seqno =
    (* the ROB is seq-sorted: binary-search the first younger entry *)
    let lo = ref 0 and hi = ref (Ring.length rob) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if (Ring.get rob mid).seq > seqno then hi := mid else lo := mid + 1
    done;
    Ring.length rob - !lo
  in

  (* ---------- recovery ---------- *)
  let do_recovery ~(faulting : dyn) ~(resume_idx : int) ~(include_self : bool) =
    let first_bad = if include_self then faulting.seq else faulting.seq + 1 in
    let walk_len =
      match p.rename with
      | Params.Rmt _ ->
        let n = walk_entries_after (first_bad - 1) in
        act.rob_walk_steps <- act.rob_walk_steps + n;
        (n + p.fetch_width - 1) / p.fetch_width
      | Params.Rmt_checkpoint _ -> 0 (* checkpoint restore *)
      | Params.Rp -> 0 (* a single ROB entry read restores RP/SP/PC (Fig. 4) *)
    in
    let freed = squash_from first_bad in
    (* recount in-flight control instructions (checkpoint occupancy) *)
    inflight_ctrl := 0;
    Ring.iter
      (fun d ->
         match d.uop.Trace.ctrl with
         | Trace.Cond _ | Trace.Uncond _ -> incr inflight_ctrl
         | Trace.Not_ctrl -> ())
      rob;
    (match p.rename with
     | Params.Rmt _ | Params.Rmt_checkpoint _ ->
       (* functionally rebuild the RMT from the surviving ROB (the hardware
          walk does this incrementally; the walk time is modeled below) *)
       Array.fill rmt 0 32 (-1);
       Ring.iter
         (fun d ->
            if d.uop.Trace.has_dest && d.uop.Trace.dest_reg <> 0 then
              rmt.(d.uop.Trace.dest_reg) <- d.seq)
         rob;
       (* the walk returns the squashed instructions' registers *)
       free_regs := !free_regs + freed;
       (* refetch is gated on walk completion (checkpoint-free RMT) *)
       rename_blocked_until := max !rename_blocked_until (!now + walk_len);
       fetch_stall_until := max !fetch_stall_until (!now + walk_len);
       if walk_len > 0 then walk_stalls := !walk_stalls + walk_len
     | Params.Rp ->
       fetch_stall_until := max !fetch_stall_until !now);
    ignore is_rmt;
    (* CPI: walk + refetch pipe refill are squash cost *)
    redirect_until :=
      max !redirect_until (!now + walk_len + p.frontend_depth);
    Branch_pred.Ras.restore ras faulting.ras_snapshot;
    mode := Fetch_correct resume_idx
  in

  (* ---------- commit ---------- *)
  let commit () =
    let budget = ref p.commit_width in
    let continue_ = ref true in
    while !continue_ && !budget > 0 && not (Ring.is_empty rob) do
      let d = Ring.front rob in
      (* an instruction with a pending recovery must not retire before the
         redirect has been processed *)
      if d.issued && d.ready_at <= !now
         && (d.recovery_at < 0 || !now >= d.recovery_at)
      then begin
        ignore (Ring.pop_front rob);
        win_clear d;
        (* the value is now in the committed register file: consumers
           still counting on this producer become ready *)
        fire_edges d;
        decr budget;
        (match d.uop.Trace.fu with
         | Trace.FU_load ->
           if Ring.length ldq > 0 && (Ring.front ldq).seq = d.seq then
             ignore (Ring.pop_front ldq)
         | Trace.FU_store ->
           if Ring.length stq > 0 && (Ring.front stq).seq = d.seq then
             ignore (Ring.pop_front stq)
         | _ -> ());
        (* orphaned wrong-path instructions drain through commit; their
           registers must return to the free list *)
        (match p.rename with
         | (Params.Rmt _ | Params.Rmt_checkpoint _)
           when d.wrong_path && d.uop.Trace.has_dest
                && d.uop.Trace.dest_reg <> 0 ->
           incr free_regs
         | _ -> ());
        (match d.uop.Trace.ctrl with
         | Trace.Cond _ | Trace.Uncond _ ->
           if !inflight_ctrl > 0 then decr inflight_ctrl
         | Trace.Not_ctrl -> ());
        last_commit_cycle := !now;
        if not d.wrong_path then begin
          lc_idx.(!lc_n land 7) <- d.trace_idx;
          lc_pc.(!lc_n land 7) <- d.uop.Trace.pc;
          incr lc_n;
          incr committed;
          incr commits_now;
          mix_counts.(mix_slot d.uop) <- mix_counts.(mix_slot d.uop) + 1;
          (match d.uop.Trace.fu with
           | Trace.FU_store when d.uop.Trace.mem_addr <> 0 ->
             (* drain through the store buffer: cache effects only *)
             ignore (Cache.data_access hier d.uop.Trace.mem_addr)
           | _ -> ());
          (match p.rename with
           | (Params.Rmt _ | Params.Rmt_checkpoint _) when d.uop.Trace.has_dest ->
             (* the previous mapping of the destination becomes free *)
             incr free_regs;
             act.freelist_ops <- act.freelist_ops + 1
           | _ -> ());
          if d.uop.Trace.fu = Trace.FU_alu && d.uop.Trace.is_nop
             && d.trace_idx = n_trace - 1
          then done_ := true;
          if d.trace_idx = n_trace - 1 then done_ := true
        end;
        (match checker with
         | Some ck ->
           Checker.on_commit ck ~cycle:!now ~seq:d.seq
             ~trace_idx:d.trace_idx ~wrong_path:d.wrong_path
             ~free_regs:!free_regs d.uop
         | None -> ())
      end
      else continue_ := false
    done
  in

  (* ---------- issue ---------- *)
  let issue () =
    let ports_alu = ref p.n_alu and ports_mul = ref p.n_mul in
    let ports_div = ref p.n_div and ports_bc = ref p.n_bc in
    let ports_mem = ref p.n_mem in
    let total = ref p.issue_width in
    let n = !iq_len in
    let kept = ref 0 in
    let i = ref 0 in
    while !i < n && !total > 0 do
      let d = !iq_buf.(!i) in
      if not d.issued && !now >= d.dispatched_at + p.dispatch_issue_latency
      then begin
        let port =
          match d.uop.Trace.fu with
          | Trace.FU_alu -> ports_alu
          | Trace.FU_mul -> ports_mul
          | Trace.FU_div -> ports_div
          | Trace.FU_branch -> ports_bc
          | Trace.FU_load | Trace.FU_store -> ports_mem
        in
        if !port > 0 then begin
          if d.n_unready = 0 then begin
            (* loads may have to hold for the memory-dependence
               predictor *)
            let lsq_hold =
              match d.uop.Trace.fu with
              | Trace.FU_load
                when (not d.wrong_path) && d.uop.Trace.mem_addr <> 0 ->
                let older_unknown = ref false in
                Ring.iter
                  (fun s ->
                     if s.seq < d.seq && not s.addr_known then
                       older_unknown := true)
                  stq;
                !older_unknown && Memdep.predict_conflict memdep d.uop.Trace.pc
              | _ -> false
            in
            if not lsq_hold then begin
              d.issued <- true;
              decr port;
              decr total;
              act.rf_reads <- act.rf_reads + List.length d.producers;
              act.iq_wakeups <- act.iq_wakeups + 1;
              if d.uop.Trace.has_dest then
                act.rf_writes <- act.rf_writes + 1;
              (match d.uop.Trace.fu with
               | Trace.FU_alu | Trace.FU_mul | Trace.FU_div ->
                 act.alu_ops <- act.alu_ops + 1;
                 d.ready_at <- !now + fu_latency p d.uop.Trace.fu
               | Trace.FU_branch ->
                 act.alu_ops <- act.alu_ops + 1;
                 d.ready_at <- !now + 1;
                 (* resolution happens one cycle later *)
                 if not d.wrong_path then begin
                   if d.mispredicted then begin
                     d.recovery_at <- !now + p.branch_resolve_latency;
                     recoveries :=
                       (d.recovery_at, d.seq, d.resume_idx, false)
                       :: !recoveries
                   end
                   else if d.trace_idx >= 0 && d.trace_idx < n_trace - 1
                           && Inject.fire inj Inject.Spurious_recovery
                   then begin
                     (* fault: a correctly predicted branch resolves as
                        mispredicted, forcing a full squash-and-refetch
                        from its own fall-through point *)
                     d.recovery_at <- !now + p.branch_resolve_latency;
                     recoveries :=
                       (d.recovery_at, d.seq, d.trace_idx + 1, false)
                       :: !recoveries
                   end
                 end
               | Trace.FU_store ->
                 act.agu_ops <- act.agu_ops + 1;
                 d.ready_at <- !now + 1;
                 d.addr_known <- true;
                 (* memory-order violation check against younger,
                    already-executed loads at the same word *)
                 if (not d.wrong_path) && d.uop.Trace.mem_addr <> 0 then begin
                   let addr_w = d.uop.Trace.mem_addr lsr 2 in
                   let victim = ref dummy in
                   Ring.iter
                     (fun (l : dyn) ->
                        if l.seq > d.seq && l.executed_load
                           && (not l.wrong_path)
                           && l.uop.Trace.mem_addr lsr 2 = addr_w
                           && (!victim == dummy || l.seq < !victim.seq)
                        then victim := l)
                     ldq;
                   if !victim != dummy then begin
                     let l = !victim in
                     Memdep.train_violation memdep l.uop.Trace.pc;
                     l.recovery_at <- !now + p.branch_resolve_latency;
                     recoveries :=
                       (l.recovery_at, l.seq, l.trace_idx, true)
                       :: !recoveries
                   end
                 end
               | Trace.FU_load ->
                 act.agu_ops <- act.agu_ops + 1;
                 if d.wrong_path || d.uop.Trace.mem_addr = 0 then
                   d.ready_at <- !now + 1 + hier.Cache.l1d.Cache.hit_latency
                 else begin
                   let addr = d.uop.Trace.mem_addr in
                   let addr_w = addr lsr 2 in
                   (* store-to-load forwarding from the youngest older
                      resolved store to the same word *)
                   let forward = ref false in
                   Ring.iter
                     (fun (s : dyn) ->
                        if s.seq < d.seq && s.addr_known
                           && s.uop.Trace.mem_addr lsr 2 = addr_w
                        then forward := true)
                     stq;
                   if !forward then d.ready_at <- !now + 2
                   else begin
                     if Inject.fire inj Inject.Corrupt_cache_tag then
                       Cache.corrupt_tag hier.Cache.l1d
                         ~victim:
                           (Inject.draw inj
                              (Array.length hier.Cache.l1d.Cache.tags))
                         ~flip:(Inject.draw inj 256);
                     let lat = Cache.data_access hier addr in
                     d.ready_at <- !now + 1 + lat;
                     (* cache-hit speculation: consumers woken for a hit
                        pay a replay penalty on a miss *)
                     if lat > p.l1d.Params.hit_latency then d.replay_bump <- 1
                   end;
                   d.executed_load <- true
                 end);
              (* fault: a transiently slow functional unit *)
              if Inject.fire inj Inject.Stretch_fu_latency then
                d.ready_at <- d.ready_at + 1 + Inject.draw inj 8;
              schedule_wakeup d
            end
          end
        end
      end;
      if not d.issued then begin
        !iq_buf.(!kept) <- d;
        incr kept
      end;
      incr i
    done;
    (* issue width exhausted: shift the unscanned tail down in place *)
    if !kept < !i then begin
      if !i < n then Array.blit !iq_buf !i !iq_buf !kept (n - !i);
      let nlen = n - (!i - !kept) in
      for j = nlen to n - 1 do !iq_buf.(j) <- dummy done;
      iq_len := nlen
    end
  in

  (* ---------- dispatch (rename) ---------- *)
  let dispatch () =
    let budget = ref p.fetch_width in
    let continue_ = ref true in
    let spadds_this_cycle = ref 0 in
    while !continue_ && !budget > 0 && not (Ring.is_empty frontend_q) do
      let d = Ring.front frontend_q in
      if d.fetched_at + p.frontend_depth > !now then continue_ := false
      else if !now < !rename_blocked_until then continue_ := false
      else if Ring.length rob >= p.rob_entries then continue_ := false
      else if !iq_len >= p.scheduler_entries then continue_ := false
      else if d.uop.Trace.fu = Trace.FU_load
              && Ring.length ldq >= p.ldq_entries then continue_ := false
      else if d.uop.Trace.fu = Trace.FU_store
              && Ring.length stq >= p.stq_entries then continue_ := false
      else if (match p.rename with
          | Params.Rmt _ | Params.Rmt_checkpoint _ ->
            d.uop.Trace.has_dest && !free_regs <= 0
          | Params.Rp -> false)
      then continue_ := false
      else if (match d.uop.Trace.ctrl with
          | (Trace.Cond _ | Trace.Uncond _) when !inflight_ctrl >= checkpoint_limit ->
            incr checkpoint_stalls; true
          | _ -> false)
      then continue_ := false
      else if p.rename = Params.Rp && d.uop.Trace.is_spadd
              && !spadds_this_cycle >= Params.spadd_per_cycle
      then begin incr spadd_stalls; continue_ := false end
      else begin
        ignore (Ring.pop_front frontend_q);
        decr budget;
        (* operand determination *)
        if d.uop.Trace.is_spadd then incr spadds_this_cycle;
        (match d.uop.Trace.ctrl with
         | Trace.Cond _ | Trace.Uncond _ -> incr inflight_ctrl
         | Trace.Not_ctrl -> ());
        (match p.rename with
         | Params.Rmt _ | Params.Rmt_checkpoint _ ->
           let srcs = d.uop.Trace.srcs_reg in
           let ps = ref [] in
           for k = Array.length srcs - 1 downto 0 do
             let r = srcs.(k) in
             if r <> 0 then
               match rmt.(r) with -1 -> () | s -> ps := s :: !ps
           done;
           d.producers <- !ps;
           act.rename_reads <- act.rename_reads + Array.length srcs + 1;
           d.ras_snapshot <- Branch_pred.Ras.save ras;
           if d.uop.Trace.has_dest && d.uop.Trace.dest_reg <> 0 then begin
             decr free_regs;
             act.freelist_ops <- act.freelist_ops + 1;
             rmt.(d.uop.Trace.dest_reg) <- d.seq;
             act.rename_writes <- act.rename_writes + 1
           end
         | Params.Rp ->
           (* RP arithmetic keyed by distance; only still-in-flight
              producers are kept *)
           let srcs = d.uop.Trace.srcs_dist in
           let ps = ref [] in
           for k = Array.length srcs - 1 downto 0 do
             let dist = srcs.(k) in
             if d.wrong_path then begin
               let s = d.seq - dist in
               if win_mem s then ps := s :: !ps
             end
             else begin
               let pidx = d.trace_idx - dist in
               if pidx >= 0 then begin
                 let s = trace_seq.(pidx) in
                 if s >= 0 && win_mem s then ps := s :: !ps
               end
             end
           done;
           d.producers <- !ps;
           act.rp_ops <- act.rp_ops + Array.length srcs + 1;
           d.ras_snapshot <- Branch_pred.Ras.save ras);
        register_producers d;
        if not d.wrong_path then trace_seq.(d.trace_idx) <- d.seq;
        d.dispatched <- true;
        d.dispatched_at <- !now;
        Ring.push_back rob d;
        act.rob_writes <- act.rob_writes + 1;
        iq_push d;
        (match d.uop.Trace.fu with
         | Trace.FU_load -> Ring.push_back ldq d
         | Trace.FU_store -> Ring.push_back stq d
         | _ -> ())
      end
    done
  in

  (* ---------- fetch ---------- *)
  let fetch () =
    if !now >= !fetch_stall_until then begin
      let budget = ref p.fetch_width in
      let continue_ = ref true in
      let line_touched = ref (-1) in
      while !continue_ && !budget > 0 do
        match !mode with
        | Fetch_stalled -> continue_ := false
        | Fetch_correct idx ->
          if idx >= n_trace then continue_ := false
          else begin
            let uop = trace.(idx) in
            (* instruction cache: one probe per line per group *)
            let line = uop.Trace.pc lsr hier.Cache.l1i.Cache.line_shift in
            if line <> !line_touched then begin
              line_touched := line;
              if Inject.fire inj Inject.Corrupt_cache_tag then
                Cache.corrupt_tag hier.Cache.l1i
                  ~victim:
                    (Inject.draw inj (Array.length hier.Cache.l1i.Cache.tags))
                  ~flip:(Inject.draw inj 256);
              let lat = Cache.inst_access hier uop.Trace.pc in
              if lat > 0 then begin
                fetch_stall_until := !now + lat;
                continue_ := false
              end
            end;
            if !continue_ then begin
              let d = mk_dyn ~uop ~wrong_path:false ~trace_idx:idx in
              Ring.push_back frontend_q d;
              decr budget;
              (match uop.Trace.ctrl with
               | Trace.Not_ctrl -> mode := Fetch_correct (idx + 1)
               | Trace.Cond { taken; target } ->
                 let predicted = pred.Branch_pred.predict uop.Trace.pc in
                 (* train at fetch with the oracle outcome: models perfect
                    speculative-history repair (see DESIGN.md) *)
                 pred.Branch_pred.update uop.Trace.pc taken;
                 (* fault: a bit flip in the predictor output *)
                 let predicted =
                   if Inject.fire inj Inject.Flip_prediction then not predicted
                   else predicted
                 in
                 if p.ideal_recovery || predicted = taken then begin
                   mode := Fetch_correct (idx + 1);
                   if taken then continue_ := false (* group ends *)
                 end
                 else begin
                   incr branch_misp;
                   d.mispredicted <- true;
                   d.resume_idx <- idx + 1;
                   mode :=
                     Fetch_wrong (if predicted then target else uop.Trace.pc + 4);
                   continue_ := false
                 end
               | Trace.Uncond { target; is_call; is_ret } ->
                 if is_call then
                   Branch_pred.Ras.push ras (uop.Trace.pc + 4);
                 if is_ret then begin
                   let predicted = Branch_pred.Ras.pop ras in
                   if p.ideal_recovery || predicted = Some target then
                     mode := Fetch_correct (idx + 1)
                   else begin
                     incr ret_misp;
                     d.mispredicted <- true;
                     d.resume_idx <- idx + 1;
                     mode := Fetch_stalled
                   end
                 end
                 else mode := Fetch_correct (idx + 1);
                 continue_ := false (* taken transfer ends the group *))
            end
          end
        | Fetch_wrong pc ->
          (match decode_static pc with
           | None -> mode := Fetch_stalled; continue_ := false
           | Some uop ->
             let line = pc lsr hier.Cache.l1i.Cache.line_shift in
             if line <> !line_touched then begin
               line_touched := line;
               let lat = Cache.inst_access hier pc in
               if lat > 0 then begin
                 fetch_stall_until := !now + lat;
                 continue_ := false
               end
             end;
             if !continue_ then begin
               let d = mk_dyn ~uop ~wrong_path:true ~trace_idx:(-1) in
               incr wrong_fetched;
               Ring.push_back frontend_q d;
               decr budget;
               (match uop.Trace.ctrl with
                | Trace.Not_ctrl -> mode := Fetch_wrong (pc + 4)
                | Trace.Cond { target; _ } ->
                  let predicted = pred.Branch_pred.predict pc in
                  if predicted then begin
                    mode := Fetch_wrong target;
                    continue_ := false
                  end
                  else mode := Fetch_wrong (pc + 4)
                | Trace.Uncond { target; is_call; is_ret } ->
                  if is_call then Branch_pred.Ras.push ras (pc + 4);
                  if is_ret || target < 0 then begin
                    match Branch_pred.Ras.pop ras with
                    | Some t -> mode := Fetch_wrong t
                    | None -> mode := Fetch_stalled
                  end
                  else mode := Fetch_wrong target;
                  continue_ := false)
             end)
      done
    end
  in

  (* ---------- CPI-stack classification ---------- *)
  (* One bucket per cycle, judged at the head of the window after commit
     and issue have run (see Stats and EXPERIMENTS.md for the
     heuristics).  Observability only: no effect on simulated timing. *)
  let classify_cycle () : Stats.bucket =
    if !commits_now > 0 then Stats.Base
    else if not (Ring.is_empty rob) then begin
      let d = Ring.front rob in
      if d.recovery_at >= 0 && !now < d.recovery_at then Stats.Branch_squash
      else if d.issued then
        (match d.uop.Trace.fu with
         | Trace.FU_load | Trace.FU_store -> Stats.Memory
         | _ -> Stats.Base)
      else if d.n_unready > 0 then begin
        (* a dependence stall: charge memory when waiting (directly) on
           an in-flight load, otherwise count it against base ILP *)
        let on_load =
          List.exists
            (fun s -> (win_get s).uop.Trace.fu = Trace.FU_load)
            d.producers
        in
        if on_load then Stats.Memory else Stats.Base
      end
      else Stats.Structural
    end
    else if not (Ring.is_empty frontend_q) then
      (if !now < !redirect_until then Stats.Branch_squash else Stats.Frontend)
    else if !now < !redirect_until then Stats.Branch_squash
    else Stats.Frontend
  in

  (* ---------- watchdog ---------- *)
  (* Two trip wires: a total cycle budget scaled to the trace length, and
     a forward-progress limit (no commit for [watchdog_limit] cycles —
     the worst legitimate commit gap, a serialized chain of full-memory-
     latency loads, is more than an order of magnitude shorter).  Either
     raises [Diag.Error Sim_deadlock] carrying a machine-readable
     pipeline snapshot that names the stuck instruction. *)
  let max_cycles = 40 * n_trace + 200_000 in
  let watchdog_limit = 20_000 in
  let fu_name = function
    | Trace.FU_alu -> "alu" | Trace.FU_mul -> "mul" | Trace.FU_div -> "div"
    | Trace.FU_branch -> "br" | Trace.FU_load -> "ld" | Trace.FU_store -> "st"
  in
  let snapshot reason =
    let i = string_of_int in
    let base =
      [ ("reason", reason);
        ("cycle", i !now);
        ("committed", i !committed);
        ("trace_length", i n_trace);
        ("rob_occupancy", i (Ring.length rob));
        ("iq_occupancy", i !iq_len);
        ("ldq_occupancy", i (Ring.length ldq));
        ("stq_occupancy", i (Ring.length stq));
        ("frontend_occupancy", i (Ring.length frontend_q));
        ("free_regs", if is_rmt then i !free_regs else "n/a");
        ("fetch_mode",
         (match !mode with
          | Fetch_correct idx -> Printf.sprintf "correct@%d" idx
          | Fetch_wrong pc -> Printf.sprintf "wrong@0x%x" pc
          | Fetch_stalled -> "stalled"));
        ("fetch_stall_until", i !fetch_stall_until);
        ("rename_blocked_until", i !rename_blocked_until);
        ("pending_recoveries", i (List.length !recoveries));
        ("faults_injected", i (Inject.total inj));
        ("last_commits",
         if !lc_n = 0 then "none"
         else begin
           let k = min !lc_n 8 in
           String.concat ","
             (List.init k (fun j ->
                  let i = (!lc_n - k + j) land 7 in
                  Printf.sprintf "%d:0x%x" lc_idx.(i) lc_pc.(i)))
         end) ]
    in
    let head =
      if not (Ring.is_empty rob) then
        let d = Ring.front rob in
        [ ("stuck_at", "rob_head");
          ("head_seq", i d.seq);
          ("head_pc", Printf.sprintf "0x%x" d.uop.Trace.pc);
          ("head_fu", fu_name d.uop.Trace.fu);
          ("head_wrong_path", string_of_bool d.wrong_path);
          ("head_trace_idx", i d.trace_idx);
          ("head_issued", string_of_bool d.issued);
          ("head_ready_at", i d.ready_at);
          ("head_recovery_at", i d.recovery_at);
          ("head_producers",
           if d.producers = [] then "none"
           else
             String.concat ","
               (List.map
                  (fun s ->
                     Printf.sprintf "%d%s" s
                       (if win_mem s then "(inflight)" else ""))
                  d.producers)) ]
      else if not (Ring.is_empty frontend_q) then
        let d = Ring.front frontend_q in
        [ ("stuck_at", "frontend_head");
          ("head_seq", i d.seq);
          ("head_pc", Printf.sprintf "0x%x" d.uop.Trace.pc);
          ("head_fu", fu_name d.uop.Trace.fu) ]
      else [ ("stuck_at", "fetch") ]
    in
    base @ head
  in
  (* ---------- main loop ---------- *)
  while not !done_ do
    if !now > max_cycles then
      Diag.error ~context:(snapshot "cycle-budget") Diag.Sim_deadlock
        "simulation did not converge: %d cycles elapsed, %d/%d committed"
        !now !committed n_trace;
    if !now - !last_commit_cycle > watchdog_limit then
      Diag.error ~context:(snapshot "no-forward-progress") Diag.Sim_deadlock
        "pipeline deadlock: no commit for %d cycles (cycle %d, %d/%d \
         committed)"
        (!now - !last_commit_cycle) !now !committed n_trace;
    drain_wheel ();
    (* process recovery events due this cycle, oldest faulting seq first *)
    if !recoveries <> [] then begin
      let due, later =
        List.partition (fun (c, _, _, _) -> c <= !now) !recoveries
      in
      recoveries := later;
      let due =
        List.sort (fun (_, s1, _, _) (_, s2, _, _) -> compare s1 s2) due
      in
      List.iter
        (fun (_, seqno, resume_idx, include_self) ->
           let d = win_get seqno in
           if d != dummy then do_recovery ~faulting:d ~resume_idx ~include_self
           (* otherwise: already squashed by an older recovery *))
        due
    end;
    commits_now := 0;
    commit ();
    issue ();
    Stats.charge cpi (classify_cycle ());
    dispatch ();
    fetch ();
    incr now
  done;
  (match checker with
   | Some ck ->
     Checker.on_finish ck ~cycles:!now ~committed:!committed
       ~free_regs:!free_regs
   | None -> ());
  { cycles = !now;
    committed = !committed;
    wrong_path_fetched = !wrong_fetched;
    branch_mispredicts = !branch_misp;
    return_mispredicts = !ret_misp;
    memdep_violations = memdep.Memdep.violations;
    walk_stall_cycles = !walk_stalls;
    spadd_stall_slots = !spadd_stalls;
    checkpoint_stall_slots = !checkpoint_stalls;
    l1i_misses = hier.Cache.l1i.Cache.misses;
    l1d_misses = hier.Cache.l1d.Cache.misses;
    l1d_accesses = hier.Cache.l1d.Cache.accesses;
    mix =
      (let acc = ref [] in
       for i = 5 downto 0 do
         if mix_counts.(i) > 0 then acc := (mix_labels.(i), mix_counts.(i)) :: !acc
       done;
       !acc);
    activity = act;
    ipc = float_of_int !committed /. float_of_int (max 1 !now);
    faults_injected = Inject.total inj;
    commits_checked =
      (match checker with Some ck -> Checker.commits_checked ck | None -> 0);
    cpi_stack = Stats.freeze cpi }
