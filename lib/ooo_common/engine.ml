(* Cycle-level out-of-order core model, shared between the STRAIGHT and the
   superscalar RV32IM pipelines (Section V-A: "both simulators share common
   codes for the most part").

   The model is trace-driven on the correct path (the functional simulator
   supplies oracle branch outcomes and memory addresses) and fetches
   wrong-path instructions from the static image after a misprediction, so
   that squash cost — the ROB walk whose length is the number of squashed
   entries — is modeled faithfully.  See DESIGN.md for the wrong-path
   modelling notes.

   Differences between the two cores are concentrated in:
   - operand determination (RMT lookups + free list vs. RP arithmetic),
   - front-end depth (8 vs. 6 stages),
   - misprediction recovery (ROB walk at fetch width + RMT restore vs. a
     single ROB read).

   Hot-path organization: because sequence numbers are allocated
   monotonically, committed at the head, and squashed as a suffix, every
   pipeline structure is a seq-sorted sequence.  The in-flight window is
   an open-addressed ring indexed by [seq land mask]; the ROB, front-end
   queue, and LSQs are ring deques whose squash is a suffix truncation;
   the issue queue is an age-sorted array compacted in place.  Operand
   readiness is event-driven: a consumer holds a count of outstanding
   producers, producers hold wakeup edges fired either from a timing
   wheel when the value becomes available or when the producer leaves
   the window.  None of this changes simulated timing — cycle counts are
   bit-identical to the original list/Hashtbl engine (asserted by
   test_stats.ml against recorded golden counts).

   All simulation state lives in an explicit record [t] so a run can be
   advanced one cycle at a time ([create] / [step] / [finish]) and
   checkpointed mid-flight ([save] / [restore]): the serialized image
   covers every structure above plus the predictors, caches, fault
   injector, and CPI accounting, with the fixpoint contract
   [restore (save t); run n  ==  run n] cycle-for-cycle. *)

module Trace = Iss.Trace

type activity = {
  mutable rename_reads : int;      (* RMT read ports exercised *)
  mutable rename_writes : int;     (* RMT writes *)
  mutable freelist_ops : int;
  mutable rp_ops : int;            (* STRAIGHT operand-determination adds *)
  mutable rf_reads : int;
  mutable rf_writes : int;
  mutable iq_wakeups : int;
  mutable rob_writes : int;
  mutable rob_walk_steps : int;
  mutable alu_ops : int;
  mutable agu_ops : int;
}

let fresh_activity () =
  { rename_reads = 0; rename_writes = 0; freelist_ops = 0; rp_ops = 0;
    rf_reads = 0; rf_writes = 0; iq_wakeups = 0; rob_writes = 0;
    rob_walk_steps = 0; alu_ops = 0; agu_ops = 0 }

type dyn = {
  seq : int;
  uop : Trace.uop;
  wrong_path : bool;
  trace_idx : int;                  (* -1 on the wrong path *)
  fetched_at : int;
  mutable producers : int list;     (* producer seq numbers *)
  mutable dispatched : bool;
  mutable dispatched_at : int;
  mutable issued : bool;
  mutable ready_at : int;           (* cycle the result is available *)
  mutable replay_bump : int;        (* extra wakeup delay for consumers *)
  mutable mispredicted : bool;
  mutable resume_idx : int;         (* trace index to resume after squash *)
  mutable addr_known : bool;        (* stores: address resolved *)
  mutable executed_load : bool;
  mutable recovery_at : int;        (* pending recovery event; -1 = none *)
  mutable ras_snapshot : int;       (* RAS top-of-stack for recovery *)
  mutable n_unready : int;          (* producers whose value is pending *)
  mutable waiters : edge list;      (* consumers to wake on availability *)
}

(* A wakeup edge fires exactly once: either from the timing wheel at the
   producer's availability cycle, or when the producer leaves the window
   (commit — the value is then readable from the register file). *)
and edge = { consumer : dyn; mutable fired : bool }

type stats = {
  cycles : int;
  committed : int;
  wrong_path_fetched : int;
  branch_mispredicts : int;
  return_mispredicts : int;
  memdep_violations : int;
  walk_stall_cycles : int;
  spadd_stall_slots : int;    (* dispatch slots lost to the SPADD limit *)
  checkpoint_stall_slots : int;
  l1i_misses : int;
  l1d_misses : int;
  l1d_accesses : int;
  mix : (string * int) list;        (* retired instruction kinds (Fig. 15) *)
  activity : activity;
  ipc : float;
  faults_injected : int;            (* fault-injection events fired *)
  commits_checked : int;            (* lockstep-checker validations; 0 = off *)
  cpi_stack : Stats.cpi_stack;      (* per-cycle attribution; sums to cycles *)
}

type fetch_mode =
  | Fetch_correct of int            (* next trace index *)
  | Fetch_wrong of int              (* wrong-path static pc *)
  | Fetch_stalled                   (* waiting for a redirect *)

let fu_latency (p : Params.t) = function
  | Trace.FU_alu -> p.latency_alu
  | Trace.FU_mul -> p.latency_mul
  | Trace.FU_div -> p.latency_div
  | Trace.FU_branch -> 1
  | Trace.FU_load -> 1 (* + cache *)
  | Trace.FU_store -> 1

(* Seq-sorted ring deque: push at the back, commit pops the front, squash
   truncates the back.  Capacity grows on demand (the front-end queue is
   unbounded while dispatch stalls). *)
module Ring = struct
  type t = {
    dummy : dyn;
    mutable buf : dyn array;
    mutable head : int;
    mutable len : int;
  }

  let create dummy = { dummy; buf = Array.make 64 dummy; head = 0; len = 0 }
  let length t = t.len
  let is_empty t = t.len = 0
  let get t i = t.buf.((t.head + i) land (Array.length t.buf - 1))
  let front t = t.buf.(t.head)
  let back t = get t (t.len - 1)

  let grow t =
    let cap = Array.length t.buf in
    let nbuf = Array.make (2 * cap) t.dummy in
    for i = 0 to t.len - 1 do nbuf.(i) <- t.buf.((t.head + i) land (cap - 1)) done;
    t.buf <- nbuf;
    t.head <- 0

  let push_back t x =
    if t.len = Array.length t.buf then grow t;
    t.buf.((t.head + t.len) land (Array.length t.buf - 1)) <- x;
    t.len <- t.len + 1

  let pop_front t =
    let x = t.buf.(t.head) in
    t.buf.(t.head) <- t.dummy;
    t.head <- (t.head + 1) land (Array.length t.buf - 1);
    t.len <- t.len - 1;
    x

  let pop_back t =
    let i = (t.head + t.len - 1) land (Array.length t.buf - 1) in
    let x = t.buf.(i) in
    t.buf.(i) <- t.dummy;
    t.len <- t.len - 1;
    x

  let iter f t = for i = 0 to t.len - 1 do f (get t i) done
end

let next_pow2 n =
  let r = ref 1 in
  while !r < n do r := !r * 2 done;
  !r

(* ---------- simulation state ---------- *)

type t = {
  p : Params.t;
  trace : Trace.uop array;
  n_trace : int;
  decode_static : int -> Trace.uop option;
  checker : Checker.t option;
  hier : Cache.hierarchy;
  pred : Branch_pred.t;
  ras : Branch_pred.Ras.t;
  memdep : Memdep.t;
  inj : Inject.t;
  act : activity;
  dummy : dyn;
  (* in-flight window: open-addressed ring indexed by seq.  A slot is
     occupied only by a live entry (cleared at commit and squash), so a
     collision on insert means the window span outgrew the capacity. *)
  mutable win : dyn array;
  mutable win_mask : int;
  mutable next_seq : int;
  trace_seq : int array;
  (* pipeline structures, all seq-sorted *)
  frontend_q : Ring.t;
  rob : Ring.t;
  ldq : Ring.t;
  stq : Ring.t;
  (* issue queue: age-sorted array, compacted in place after selection *)
  mutable iq_buf : dyn array;
  mutable iq_len : int;
  (* timing wheel for operand wakeups (spans the worst-case latency) *)
  wheel : dyn list array;
  wheel_mask : int;
  (* rename state (superscalar) *)
  rmt : int array;
  mutable free_regs : int;
  is_rmt : bool;
  checkpoint_limit : int;
  mutable inflight_ctrl : int;
  mutable spadd_stalls : int;
  mutable checkpoint_stalls : int;
  mutable rename_blocked_until : int;
  mutable fetch_stall_until : int;
  mutable mode : fetch_mode;
  mutable now : int;
  mutable done_ : bool;
  mutable committed : int;
  mutable commits_now : int;        (* correct-path commits this cycle *)
  mutable wrong_fetched : int;
  mutable branch_misp : int;
  mutable ret_misp : int;
  mutable walk_stalls : int;
  cpi : Stats.cpi_acc;
  mutable redirect_until : int;     (* CPI attribution of post-squash refill *)
  mix_counts : int array;
  (* pending recovery events: (cycle, seq of faulting instr, resume idx,
     refetch_including_self) *)
  mutable recoveries : (int * int * int * bool) list;
  (* watchdog + diagnostics state; last 8 commits kept in a ring *)
  mutable last_commit_cycle : int;
  lc_idx : int array;
  lc_pc : int array;
  mutable lc_n : int;
  max_cycles : int;
}

let watchdog_limit = 20_000

(* retired-kind mix, counted without hashing (labels from
   Trace.kind_label: LD ST Jump+Branch ALU RMOV NOP) *)
let mix_slot (u : Trace.uop) =
  match u.Trace.fu with
  | Trace.FU_load -> 0
  | Trace.FU_store -> 1
  | Trace.FU_branch -> 2
  | Trace.FU_mul | Trace.FU_div -> 3
  | Trace.FU_alu ->
    if u.Trace.is_rmov then 4 else if u.Trace.is_nop then 5 else 3

let mix_labels = [| "LD"; "ST"; "Jump+Branch"; "ALU"; "RMOV"; "NOP" |]

let create (p : Params.t) ~(trace : Trace.uop array)
    ~(decode_static : int -> Trace.uop option)
    ?(checker : Checker.t option) ?(warm : Warm.t option) () : t =
  let n_trace = Array.length trace in
  if n_trace = 0 then
    Diag.error Diag.Config_error "empty trace: nothing to simulate";
  let dummy_uop =
    { Trace.pc = -1; fu = Trace.FU_alu; srcs_dist = [||]; srcs_reg = [||];
      dest_reg = 0; has_dest = false; is_rmov = false; is_nop = false;
      is_spadd = false; mem_addr = 0; ctrl = Trace.Not_ctrl }
  in
  let dummy =
    { seq = -1; uop = dummy_uop; wrong_path = false; trace_idx = -1;
      fetched_at = 0; producers = []; dispatched = false; dispatched_at = 0;
      issued = false; ready_at = 0; replay_bump = 0; mispredicted = false;
      resume_idx = -1; addr_known = false; executed_load = false;
      recovery_at = -1; ras_snapshot = 0; n_unready = 0; waiters = [] }
  in
  (* the wheel spans the worst-case latency (full memory hierarchy +
     fault stretch) *)
  let wheel_size =
    let mem =
      p.l1d.Params.hit_latency + p.l2.Params.hit_latency
      + (match p.l3 with Some c -> c.Params.hit_latency | None -> 0)
      + p.memory_latency
    in
    let lat =
      max (max p.latency_alu (max p.latency_mul p.latency_div)) (1 + mem)
    in
    (* + injected stretch (<= 9), replay bump, issue cycle, margin *)
    next_pow2 (lat + 32)
  in
  let arch_regs = 32 in
  (* Warmed handoff: adopt the functionally warmed tables instead of
     cold ones, with their warming-phase counters zeroed so measured
     miss rates cover only the detailed region.  Memdep stays cold — it
     trains on timing violations the ISS cannot observe. *)
  let hier, pred, ras =
    match warm with
    | None ->
      (Cache.create_hierarchy p, Branch_pred.make p.predictor,
       Branch_pred.Ras.create ())
    | Some w ->
      Cache.reset_stats w.Warm.hier;
      (w.Warm.hier, w.Warm.pred, w.Warm.ras)
  in
  { p; trace; n_trace; decode_static; checker;
    hier; pred; ras;
    memdep = Memdep.create ();
    inj = Inject.make p.inject;
    act = fresh_activity ();
    dummy;
    win = Array.make 1024 dummy;
    win_mask = 1023;
    next_seq = 0;
    trace_seq = Array.make n_trace (-1);
    frontend_q = Ring.create dummy;
    rob = Ring.create dummy;
    ldq = Ring.create dummy;
    stq = Ring.create dummy;
    iq_buf = Array.make 128 dummy;
    iq_len = 0;
    wheel = Array.make wheel_size [];
    wheel_mask = wheel_size - 1;
    rmt = Array.make 32 (-1);
    free_regs =
      (match p.rename with
       | Params.Rmt { phys_regs } | Params.Rmt_checkpoint { phys_regs; _ } ->
         phys_regs - arch_regs
       | Params.Rp -> max_int / 2);
    is_rmt =
      (match p.rename with
       | Params.Rmt _ | Params.Rmt_checkpoint _ -> true
       | Params.Rp -> false);
    checkpoint_limit =
      (match p.rename with
       | Params.Rmt_checkpoint { checkpoints; _ } -> checkpoints
       | _ -> max_int);
    inflight_ctrl = 0;
    spadd_stalls = 0;
    checkpoint_stalls = 0;
    rename_blocked_until = 0;
    fetch_stall_until = 0;
    mode = Fetch_correct 0;
    now = 0;
    done_ = false;
    committed = 0;
    commits_now = 0;
    wrong_fetched = 0;
    branch_misp = 0;
    ret_misp = 0;
    walk_stalls = 0;
    cpi = Stats.fresh_acc ();
    redirect_until = 0;
    mix_counts = Array.make 6 0;
    recoveries = [];
    last_commit_cycle = 0;
    lc_idx = Array.make 8 0;
    lc_pc = Array.make 8 0;
    lc_n = 0;
    max_cycles = 40 * n_trace + 200_000 }

(* ---------- in-flight window ---------- *)

(* allocation-free lookup: [t.dummy] plays the role of [None] *)
let win_get t s =
  let d = t.win.(s land t.win_mask) in
  if d.seq = s then d else t.dummy

let win_mem t s = (t.win.(s land t.win_mask)).seq = s

let win_clear t d =
  let i = d.seq land t.win_mask in
  if t.win.(i) == d then t.win.(i) <- t.dummy

let win_grow t =
  (* live seqs are pairwise distinct modulo the old capacity, hence
     also modulo the doubled capacity: rehashing cannot collide *)
  let old = t.win in
  let ncap = 2 * Array.length old in
  t.win <- Array.make ncap t.dummy;
  t.win_mask <- ncap - 1;
  Array.iter (fun d -> if d != t.dummy then t.win.(d.seq land t.win_mask) <- d)
    old

let rec win_insert t d =
  let i = d.seq land t.win_mask in
  if t.win.(i) != t.dummy then begin win_grow t; win_insert t d end
  else t.win.(i) <- d

let iq_push t d =
  if t.iq_len = Array.length t.iq_buf then begin
    let nbuf = Array.make (2 * t.iq_len) t.dummy in
    Array.blit t.iq_buf 0 nbuf 0 t.iq_len;
    t.iq_buf <- nbuf
  end;
  t.iq_buf.(t.iq_len) <- d;
  t.iq_len <- t.iq_len + 1

(* ---------- wakeup plumbing ---------- *)

let fire_edges d =
  List.iter
    (fun e ->
       if not e.fired then begin
         e.fired <- true;
         e.consumer.n_unready <- e.consumer.n_unready - 1
       end)
    d.waiters;
  d.waiters <- []

(* called once per issued instruction, with the final availability
   cycle (base latency + cache + injected stretch + replay bump) *)
let schedule_wakeup t d =
  let avail = d.ready_at + d.replay_bump in
  assert (avail - t.now < Array.length t.wheel);
  let i = avail land t.wheel_mask in
  t.wheel.(i) <- d :: t.wheel.(i)

let drain_wheel t =
  let i = t.now land t.wheel_mask in
  match t.wheel.(i) with
  | [] -> ()
  | ds -> t.wheel.(i) <- []; List.iter fire_edges ds

(* register d's dependence edges at dispatch: a producer outside the
   window (committed or never renamed) is readable immediately; one
   already issued with an availability in the past likewise *)
let register_producers t d =
  List.iter
    (fun s ->
       let pr = win_get t s in
       if pr == t.dummy then ()
       else if pr.issued && pr.ready_at + pr.replay_bump <= t.now then ()
       else begin
         d.n_unready <- d.n_unready + 1;
         pr.waiters <- { consumer = d; fired = false } :: pr.waiters
       end)
    d.producers

let mk_dyn t ~uop ~wrong_path ~trace_idx =
  let d =
    { seq = t.next_seq;
      uop; wrong_path; trace_idx;
      fetched_at = t.now;
      producers = [];
      dispatched = false;
      dispatched_at = 0;
      issued = false;
      ready_at = max_int / 2;
      replay_bump = 0;
      mispredicted = false;
      resume_idx = -1;
      addr_known = false;
      executed_load = false;
      recovery_at = -1;
      ras_snapshot = 0;
      n_unready = 0;
      waiters = [] }
  in
  t.next_seq <- t.next_seq + 1;
  win_insert t d;
  d

(* ---------- squash ---------- *)
(* Every structure is seq-sorted, so a squash is a suffix truncation:
   O(squashed) instead of a full-window walk.  Returns the number of
   physical registers released: one per renamed (ROB-resident) squashed
   instruction with a destination. *)
let squash_from t first_bad_seq =
  while t.iq_len > 0 && t.iq_buf.(t.iq_len - 1).seq >= first_bad_seq do
    t.iq_len <- t.iq_len - 1;
    t.iq_buf.(t.iq_len) <- t.dummy
  done;
  while Ring.length t.ldq > 0 && (Ring.back t.ldq).seq >= first_bad_seq do
    ignore (Ring.pop_back t.ldq)
  done;
  while Ring.length t.stq > 0 && (Ring.back t.stq).seq >= first_bad_seq do
    ignore (Ring.pop_back t.stq)
  done;
  let freed = ref 0 in
  while Ring.length t.rob > 0 && (Ring.back t.rob).seq >= first_bad_seq do
    let d = Ring.pop_back t.rob in
    if d.uop.Trace.has_dest && d.uop.Trace.dest_reg <> 0 then incr freed;
    win_clear t d
  done;
  while Ring.length t.frontend_q > 0
        && (Ring.back t.frontend_q).seq >= first_bad_seq do
    win_clear t (Ring.pop_back t.frontend_q)
  done;
  !freed

(* RAM-based RMT recovery walks the ROB over the squashed (younger)
   entries, undoing each mapping (Section II-A; [14] reports the penalty
   as several tens of cycles with a 256-entry ROB).  The checkpoint-free
   RMT cannot rename newly fetched instructions until the walk finishes,
   so the walk serializes with the refetch. *)
let walk_entries_after t seqno =
  (* the ROB is seq-sorted: binary-search the first younger entry *)
  let lo = ref 0 and hi = ref (Ring.length t.rob) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if (Ring.get t.rob mid).seq > seqno then hi := mid else lo := mid + 1
  done;
  Ring.length t.rob - !lo

(* ---------- recovery ---------- *)

let do_recovery t ~(faulting : dyn) ~(resume_idx : int) ~(include_self : bool) =
  let first_bad = if include_self then faulting.seq else faulting.seq + 1 in
  let walk_len =
    match t.p.Params.rename with
    | Params.Rmt _ ->
      let n = walk_entries_after t (first_bad - 1) in
      t.act.rob_walk_steps <- t.act.rob_walk_steps + n;
      (n + t.p.Params.fetch_width - 1) / t.p.Params.fetch_width
    | Params.Rmt_checkpoint _ -> 0 (* checkpoint restore *)
    | Params.Rp -> 0 (* a single ROB entry read restores RP/SP/PC (Fig. 4) *)
  in
  let freed = squash_from t first_bad in
  (* recount in-flight control instructions (checkpoint occupancy) *)
  t.inflight_ctrl <- 0;
  Ring.iter
    (fun d ->
       match d.uop.Trace.ctrl with
       | Trace.Cond _ | Trace.Uncond _ -> t.inflight_ctrl <- t.inflight_ctrl + 1
       | Trace.Not_ctrl -> ())
    t.rob;
  (match t.p.Params.rename with
   | Params.Rmt _ | Params.Rmt_checkpoint _ ->
     (* functionally rebuild the RMT from the surviving ROB (the hardware
        walk does this incrementally; the walk time is modeled below) *)
     Array.fill t.rmt 0 32 (-1);
     Ring.iter
       (fun d ->
          if d.uop.Trace.has_dest && d.uop.Trace.dest_reg <> 0 then
            t.rmt.(d.uop.Trace.dest_reg) <- d.seq)
       t.rob;
     (* the walk returns the squashed instructions' registers *)
     t.free_regs <- t.free_regs + freed;
     (* refetch is gated on walk completion (checkpoint-free RMT) *)
     t.rename_blocked_until <- max t.rename_blocked_until (t.now + walk_len);
     t.fetch_stall_until <- max t.fetch_stall_until (t.now + walk_len);
     if walk_len > 0 then t.walk_stalls <- t.walk_stalls + walk_len
   | Params.Rp ->
     t.fetch_stall_until <- max t.fetch_stall_until t.now);
  (* CPI: walk + refetch pipe refill are squash cost *)
  t.redirect_until <-
    max t.redirect_until (t.now + walk_len + t.p.Params.frontend_depth);
  Branch_pred.Ras.restore t.ras faulting.ras_snapshot;
  t.mode <- Fetch_correct resume_idx

(* ---------- commit ---------- *)

let commit t =
  let budget = ref t.p.Params.commit_width in
  let continue_ = ref true in
  while !continue_ && !budget > 0 && not (Ring.is_empty t.rob) do
    let d = Ring.front t.rob in
    (* an instruction with a pending recovery must not retire before the
       redirect has been processed *)
    if d.issued && d.ready_at <= t.now
       && (d.recovery_at < 0 || t.now >= d.recovery_at)
    then begin
      ignore (Ring.pop_front t.rob);
      win_clear t d;
      (* the value is now in the committed register file: consumers
         still counting on this producer become ready *)
      fire_edges d;
      decr budget;
      (match d.uop.Trace.fu with
       | Trace.FU_load ->
         if Ring.length t.ldq > 0 && (Ring.front t.ldq).seq = d.seq then
           ignore (Ring.pop_front t.ldq)
       | Trace.FU_store ->
         if Ring.length t.stq > 0 && (Ring.front t.stq).seq = d.seq then
           ignore (Ring.pop_front t.stq)
       | _ -> ());
      (* orphaned wrong-path instructions drain through commit; their
         registers must return to the free list *)
      (match t.p.Params.rename with
       | (Params.Rmt _ | Params.Rmt_checkpoint _)
         when d.wrong_path && d.uop.Trace.has_dest
              && d.uop.Trace.dest_reg <> 0 ->
         t.free_regs <- t.free_regs + 1
       | _ -> ());
      (match d.uop.Trace.ctrl with
       | Trace.Cond _ | Trace.Uncond _ ->
         if t.inflight_ctrl > 0 then t.inflight_ctrl <- t.inflight_ctrl - 1
       | Trace.Not_ctrl -> ());
      t.last_commit_cycle <- t.now;
      if not d.wrong_path then begin
        t.lc_idx.(t.lc_n land 7) <- d.trace_idx;
        t.lc_pc.(t.lc_n land 7) <- d.uop.Trace.pc;
        t.lc_n <- t.lc_n + 1;
        t.committed <- t.committed + 1;
        t.commits_now <- t.commits_now + 1;
        t.mix_counts.(mix_slot d.uop) <- t.mix_counts.(mix_slot d.uop) + 1;
        (match d.uop.Trace.fu with
         | Trace.FU_store when d.uop.Trace.mem_addr <> 0 ->
           (* drain through the store buffer: cache effects only *)
           ignore (Cache.data_access t.hier d.uop.Trace.mem_addr)
         | _ -> ());
        (match t.p.Params.rename with
         | (Params.Rmt _ | Params.Rmt_checkpoint _) when d.uop.Trace.has_dest ->
           (* the previous mapping of the destination becomes free *)
           t.free_regs <- t.free_regs + 1;
           t.act.freelist_ops <- t.act.freelist_ops + 1
         | _ -> ());
        if d.uop.Trace.fu = Trace.FU_alu && d.uop.Trace.is_nop
           && d.trace_idx = t.n_trace - 1
        then t.done_ <- true;
        if d.trace_idx = t.n_trace - 1 then t.done_ <- true
      end;
      (match t.checker with
       | Some ck ->
         Checker.on_commit ck ~cycle:t.now ~seq:d.seq
           ~trace_idx:d.trace_idx ~wrong_path:d.wrong_path
           ~free_regs:t.free_regs d.uop
       | None -> ())
    end
    else continue_ := false
  done

(* ---------- issue ---------- *)

let issue t =
  let p = t.p in
  let ports_alu = ref p.Params.n_alu and ports_mul = ref p.Params.n_mul in
  let ports_div = ref p.Params.n_div and ports_bc = ref p.Params.n_bc in
  let ports_mem = ref p.Params.n_mem in
  let total = ref p.Params.issue_width in
  let n = t.iq_len in
  let kept = ref 0 in
  let i = ref 0 in
  while !i < n && !total > 0 do
    let d = t.iq_buf.(!i) in
    if not d.issued && t.now >= d.dispatched_at + p.Params.dispatch_issue_latency
    then begin
      let port =
        match d.uop.Trace.fu with
        | Trace.FU_alu -> ports_alu
        | Trace.FU_mul -> ports_mul
        | Trace.FU_div -> ports_div
        | Trace.FU_branch -> ports_bc
        | Trace.FU_load | Trace.FU_store -> ports_mem
      in
      if !port > 0 then begin
        if d.n_unready = 0 then begin
          (* loads may have to hold for the memory-dependence
             predictor *)
          let lsq_hold =
            match d.uop.Trace.fu with
            | Trace.FU_load
              when (not d.wrong_path) && d.uop.Trace.mem_addr <> 0 ->
              let older_unknown = ref false in
              Ring.iter
                (fun s ->
                   if s.seq < d.seq && not s.addr_known then
                     older_unknown := true)
                t.stq;
              !older_unknown && Memdep.predict_conflict t.memdep d.uop.Trace.pc
            | _ -> false
          in
          if not lsq_hold then begin
            d.issued <- true;
            decr port;
            decr total;
            t.act.rf_reads <- t.act.rf_reads + List.length d.producers;
            t.act.iq_wakeups <- t.act.iq_wakeups + 1;
            if d.uop.Trace.has_dest then
              t.act.rf_writes <- t.act.rf_writes + 1;
            (match d.uop.Trace.fu with
             | Trace.FU_alu | Trace.FU_mul | Trace.FU_div ->
               t.act.alu_ops <- t.act.alu_ops + 1;
               d.ready_at <- t.now + fu_latency p d.uop.Trace.fu
             | Trace.FU_branch ->
               t.act.alu_ops <- t.act.alu_ops + 1;
               d.ready_at <- t.now + 1;
               (* resolution happens one cycle later *)
               if not d.wrong_path then begin
                 if d.mispredicted then begin
                   d.recovery_at <- t.now + p.Params.branch_resolve_latency;
                   t.recoveries <-
                     (d.recovery_at, d.seq, d.resume_idx, false)
                     :: t.recoveries
                 end
                 else if d.trace_idx >= 0 && d.trace_idx < t.n_trace - 1
                         && Inject.fire t.inj Inject.Spurious_recovery
                 then begin
                   (* fault: a correctly predicted branch resolves as
                      mispredicted, forcing a full squash-and-refetch
                      from its own fall-through point *)
                   d.recovery_at <- t.now + p.Params.branch_resolve_latency;
                   t.recoveries <-
                     (d.recovery_at, d.seq, d.trace_idx + 1, false)
                     :: t.recoveries
                 end
               end
             | Trace.FU_store ->
               t.act.agu_ops <- t.act.agu_ops + 1;
               d.ready_at <- t.now + 1;
               d.addr_known <- true;
               (* memory-order violation check against younger,
                  already-executed loads at the same word *)
               if (not d.wrong_path) && d.uop.Trace.mem_addr <> 0 then begin
                 let addr_w = d.uop.Trace.mem_addr lsr 2 in
                 let victim = ref t.dummy in
                 Ring.iter
                   (fun (l : dyn) ->
                      if l.seq > d.seq && l.executed_load
                         && (not l.wrong_path)
                         && l.uop.Trace.mem_addr lsr 2 = addr_w
                         && (!victim == t.dummy || l.seq < !victim.seq)
                      then victim := l)
                   t.ldq;
                 if !victim != t.dummy then begin
                   let l = !victim in
                   Memdep.train_violation t.memdep l.uop.Trace.pc;
                   l.recovery_at <- t.now + p.Params.branch_resolve_latency;
                   t.recoveries <-
                     (l.recovery_at, l.seq, l.trace_idx, true)
                     :: t.recoveries
                 end
               end
             | Trace.FU_load ->
               t.act.agu_ops <- t.act.agu_ops + 1;
               if d.wrong_path || d.uop.Trace.mem_addr = 0 then
                 d.ready_at <- t.now + 1 + t.hier.Cache.l1d.Cache.hit_latency
               else begin
                 let addr = d.uop.Trace.mem_addr in
                 let addr_w = addr lsr 2 in
                 (* store-to-load forwarding from the youngest older
                    resolved store to the same word *)
                 let forward = ref false in
                 Ring.iter
                   (fun (s : dyn) ->
                      if s.seq < d.seq && s.addr_known
                         && s.uop.Trace.mem_addr lsr 2 = addr_w
                      then forward := true)
                   t.stq;
                 if !forward then d.ready_at <- t.now + 2
                 else begin
                   if Inject.fire t.inj Inject.Corrupt_cache_tag then
                     Cache.corrupt_tag t.hier.Cache.l1d
                       ~victim:
                         (Inject.draw t.inj
                            (Array.length t.hier.Cache.l1d.Cache.tags))
                       ~flip:(Inject.draw t.inj 256);
                   let lat = Cache.data_access t.hier addr in
                   d.ready_at <- t.now + 1 + lat;
                   (* cache-hit speculation: consumers woken for a hit
                      pay a replay penalty on a miss *)
                   if lat > p.Params.l1d.Params.hit_latency then
                     d.replay_bump <- 1
                 end;
                 d.executed_load <- true
               end);
            (* fault: a transiently slow functional unit *)
            if Inject.fire t.inj Inject.Stretch_fu_latency then
              d.ready_at <- d.ready_at + 1 + Inject.draw t.inj 8;
            schedule_wakeup t d
          end
        end
      end
    end;
    if not d.issued then begin
      t.iq_buf.(!kept) <- d;
      incr kept
    end;
    incr i
  done;
  (* issue width exhausted: shift the unscanned tail down in place *)
  if !kept < !i then begin
    if !i < n then Array.blit t.iq_buf !i t.iq_buf !kept (n - !i);
    let nlen = n - (!i - !kept) in
    for j = nlen to n - 1 do t.iq_buf.(j) <- t.dummy done;
    t.iq_len <- nlen
  end

(* ---------- dispatch (rename) ---------- *)

let dispatch t =
  let p = t.p in
  let budget = ref p.Params.fetch_width in
  let continue_ = ref true in
  let spadds_this_cycle = ref 0 in
  while !continue_ && !budget > 0 && not (Ring.is_empty t.frontend_q) do
    let d = Ring.front t.frontend_q in
    if d.fetched_at + p.Params.frontend_depth > t.now then continue_ := false
    else if t.now < t.rename_blocked_until then continue_ := false
    else if Ring.length t.rob >= p.Params.rob_entries then continue_ := false
    else if t.iq_len >= p.Params.scheduler_entries then continue_ := false
    else if d.uop.Trace.fu = Trace.FU_load
            && Ring.length t.ldq >= p.Params.ldq_entries then continue_ := false
    else if d.uop.Trace.fu = Trace.FU_store
            && Ring.length t.stq >= p.Params.stq_entries then continue_ := false
    else if (match p.Params.rename with
        | Params.Rmt _ | Params.Rmt_checkpoint _ ->
          d.uop.Trace.has_dest && t.free_regs <= 0
        | Params.Rp -> false)
    then continue_ := false
    else if (match d.uop.Trace.ctrl with
        | (Trace.Cond _ | Trace.Uncond _)
          when t.inflight_ctrl >= t.checkpoint_limit ->
          t.checkpoint_stalls <- t.checkpoint_stalls + 1; true
        | _ -> false)
    then continue_ := false
    else if p.Params.rename = Params.Rp && d.uop.Trace.is_spadd
            && !spadds_this_cycle >= Params.spadd_per_cycle
    then begin t.spadd_stalls <- t.spadd_stalls + 1; continue_ := false end
    else begin
      ignore (Ring.pop_front t.frontend_q);
      decr budget;
      (* operand determination *)
      if d.uop.Trace.is_spadd then incr spadds_this_cycle;
      (match d.uop.Trace.ctrl with
       | Trace.Cond _ | Trace.Uncond _ -> t.inflight_ctrl <- t.inflight_ctrl + 1
       | Trace.Not_ctrl -> ());
      (match p.Params.rename with
       | Params.Rmt _ | Params.Rmt_checkpoint _ ->
         let srcs = d.uop.Trace.srcs_reg in
         let ps = ref [] in
         for k = Array.length srcs - 1 downto 0 do
           let r = srcs.(k) in
           if r <> 0 then
             match t.rmt.(r) with -1 -> () | s -> ps := s :: !ps
         done;
         d.producers <- !ps;
         t.act.rename_reads <- t.act.rename_reads + Array.length srcs + 1;
         d.ras_snapshot <- Branch_pred.Ras.save t.ras;
         if d.uop.Trace.has_dest && d.uop.Trace.dest_reg <> 0 then begin
           t.free_regs <- t.free_regs - 1;
           t.act.freelist_ops <- t.act.freelist_ops + 1;
           t.rmt.(d.uop.Trace.dest_reg) <- d.seq;
           t.act.rename_writes <- t.act.rename_writes + 1
         end
       | Params.Rp ->
         (* RP arithmetic keyed by distance; only still-in-flight
            producers are kept *)
         let srcs = d.uop.Trace.srcs_dist in
         let ps = ref [] in
         for k = Array.length srcs - 1 downto 0 do
           let dist = srcs.(k) in
           if d.wrong_path then begin
             let s = d.seq - dist in
             if win_mem t s then ps := s :: !ps
           end
           else begin
             let pidx = d.trace_idx - dist in
             if pidx >= 0 then begin
               let s = t.trace_seq.(pidx) in
               if s >= 0 && win_mem t s then ps := s :: !ps
             end
           end
         done;
         d.producers <- !ps;
         t.act.rp_ops <- t.act.rp_ops + Array.length srcs + 1;
         d.ras_snapshot <- Branch_pred.Ras.save t.ras);
      register_producers t d;
      if not d.wrong_path then t.trace_seq.(d.trace_idx) <- d.seq;
      d.dispatched <- true;
      d.dispatched_at <- t.now;
      Ring.push_back t.rob d;
      t.act.rob_writes <- t.act.rob_writes + 1;
      iq_push t d;
      (match d.uop.Trace.fu with
       | Trace.FU_load -> Ring.push_back t.ldq d
       | Trace.FU_store -> Ring.push_back t.stq d
       | _ -> ())
    end
  done

(* ---------- fetch ---------- *)

let fetch t =
  let p = t.p in
  if t.now >= t.fetch_stall_until then begin
    let budget = ref p.Params.fetch_width in
    let continue_ = ref true in
    let line_touched = ref (-1) in
    while !continue_ && !budget > 0 do
      match t.mode with
      | Fetch_stalled -> continue_ := false
      | Fetch_correct idx ->
        if idx >= t.n_trace then continue_ := false
        else begin
          let uop = t.trace.(idx) in
          (* instruction cache: one probe per line per group *)
          let line = uop.Trace.pc lsr t.hier.Cache.l1i.Cache.line_shift in
          if line <> !line_touched then begin
            line_touched := line;
            if Inject.fire t.inj Inject.Corrupt_cache_tag then
              Cache.corrupt_tag t.hier.Cache.l1i
                ~victim:
                  (Inject.draw t.inj (Array.length t.hier.Cache.l1i.Cache.tags))
                ~flip:(Inject.draw t.inj 256);
            let lat = Cache.inst_access t.hier uop.Trace.pc in
            if lat > 0 then begin
              t.fetch_stall_until <- t.now + lat;
              continue_ := false
            end
          end;
          if !continue_ then begin
            let d = mk_dyn t ~uop ~wrong_path:false ~trace_idx:idx in
            Ring.push_back t.frontend_q d;
            decr budget;
            (match uop.Trace.ctrl with
             | Trace.Not_ctrl -> t.mode <- Fetch_correct (idx + 1)
             | Trace.Cond { taken; target } ->
               let predicted = t.pred.Branch_pred.predict uop.Trace.pc in
               (* train at fetch with the oracle outcome: models perfect
                  speculative-history repair (see DESIGN.md) *)
               t.pred.Branch_pred.update uop.Trace.pc taken;
               (* fault: a bit flip in the predictor output *)
               let predicted =
                 if Inject.fire t.inj Inject.Flip_prediction then not predicted
                 else predicted
               in
               if p.Params.ideal_recovery || predicted = taken then begin
                 t.mode <- Fetch_correct (idx + 1);
                 if taken then continue_ := false (* group ends *)
               end
               else begin
                 t.branch_misp <- t.branch_misp + 1;
                 d.mispredicted <- true;
                 d.resume_idx <- idx + 1;
                 t.mode <-
                   Fetch_wrong (if predicted then target else uop.Trace.pc + 4);
                 continue_ := false
               end
             | Trace.Uncond { target; is_call; is_ret } ->
               if is_call then
                 Branch_pred.Ras.push t.ras (uop.Trace.pc + 4);
               if is_ret then begin
                 let predicted = Branch_pred.Ras.pop t.ras in
                 if p.Params.ideal_recovery || predicted = Some target then
                   t.mode <- Fetch_correct (idx + 1)
                 else begin
                   t.ret_misp <- t.ret_misp + 1;
                   d.mispredicted <- true;
                   d.resume_idx <- idx + 1;
                   t.mode <- Fetch_stalled
                 end
               end
               else t.mode <- Fetch_correct (idx + 1);
               continue_ := false (* taken transfer ends the group *))
          end
        end
      | Fetch_wrong pc ->
        (match t.decode_static pc with
         | None -> t.mode <- Fetch_stalled; continue_ := false
         | Some uop ->
           let line = pc lsr t.hier.Cache.l1i.Cache.line_shift in
           if line <> !line_touched then begin
             line_touched := line;
             let lat = Cache.inst_access t.hier pc in
             if lat > 0 then begin
               t.fetch_stall_until <- t.now + lat;
               continue_ := false
             end
           end;
           if !continue_ then begin
             let d = mk_dyn t ~uop ~wrong_path:true ~trace_idx:(-1) in
             t.wrong_fetched <- t.wrong_fetched + 1;
             Ring.push_back t.frontend_q d;
             decr budget;
             (match uop.Trace.ctrl with
              | Trace.Not_ctrl -> t.mode <- Fetch_wrong (pc + 4)
              | Trace.Cond { target; _ } ->
                let predicted = t.pred.Branch_pred.predict pc in
                if predicted then begin
                  t.mode <- Fetch_wrong target;
                  continue_ := false
                end
                else t.mode <- Fetch_wrong (pc + 4)
              | Trace.Uncond { target; is_call; is_ret } ->
                if is_call then Branch_pred.Ras.push t.ras (pc + 4);
                if is_ret || target < 0 then begin
                  match Branch_pred.Ras.pop t.ras with
                  | Some tgt -> t.mode <- Fetch_wrong tgt
                  | None -> t.mode <- Fetch_stalled
                end
                else t.mode <- Fetch_wrong target;
                continue_ := false)
           end)
    done
  end

(* ---------- CPI-stack classification ---------- *)
(* One bucket per cycle, judged at the head of the window after commit
   and issue have run (see Stats and EXPERIMENTS.md for the
   heuristics).  Observability only: no effect on simulated timing. *)
let classify_cycle t : Stats.bucket =
  if t.commits_now > 0 then Stats.Base
  else if not (Ring.is_empty t.rob) then begin
    let d = Ring.front t.rob in
    if d.recovery_at >= 0 && t.now < d.recovery_at then Stats.Branch_squash
    else if d.issued then
      (match d.uop.Trace.fu with
       | Trace.FU_load | Trace.FU_store -> Stats.Memory
       | _ -> Stats.Base)
    else if d.n_unready > 0 then begin
      (* a dependence stall: charge memory when waiting (directly) on
         an in-flight load, otherwise count it against base ILP *)
      let on_load =
        List.exists
          (fun s -> (win_get t s).uop.Trace.fu = Trace.FU_load)
          d.producers
      in
      if on_load then Stats.Memory else Stats.Base
    end
    else Stats.Structural
  end
  else if not (Ring.is_empty t.frontend_q) then
    (if t.now < t.redirect_until then Stats.Branch_squash else Stats.Frontend)
  else if t.now < t.redirect_until then Stats.Branch_squash
  else Stats.Frontend

(* ---------- watchdog diagnostics ---------- *)

let fu_name = function
  | Trace.FU_alu -> "alu" | Trace.FU_mul -> "mul" | Trace.FU_div -> "div"
  | Trace.FU_branch -> "br" | Trace.FU_load -> "ld" | Trace.FU_store -> "st"

let diag_context t reason =
  let i = string_of_int in
  let base =
    [ ("reason", reason);
      ("cycle", i t.now);
      ("committed", i t.committed);
      ("trace_length", i t.n_trace);
      ("rob_occupancy", i (Ring.length t.rob));
      ("iq_occupancy", i t.iq_len);
      ("ldq_occupancy", i (Ring.length t.ldq));
      ("stq_occupancy", i (Ring.length t.stq));
      ("frontend_occupancy", i (Ring.length t.frontend_q));
      ("free_regs", if t.is_rmt then i t.free_regs else "n/a");
      ("fetch_mode",
       (match t.mode with
        | Fetch_correct idx -> Printf.sprintf "correct@%d" idx
        | Fetch_wrong pc -> Printf.sprintf "wrong@0x%x" pc
        | Fetch_stalled -> "stalled"));
      ("fetch_stall_until", i t.fetch_stall_until);
      ("rename_blocked_until", i t.rename_blocked_until);
      ("pending_recoveries", i (List.length t.recoveries));
      ("faults_injected", i (Inject.total t.inj));
      ("last_commits",
       if t.lc_n = 0 then "none"
       else begin
         let k = min t.lc_n 8 in
         String.concat ","
           (List.init k (fun j ->
                let idx = (t.lc_n - k + j) land 7 in
                Printf.sprintf "%d:0x%x" t.lc_idx.(idx) t.lc_pc.(idx)))
       end) ]
  in
  let head =
    if not (Ring.is_empty t.rob) then
      let d = Ring.front t.rob in
      [ ("stuck_at", "rob_head");
        ("head_seq", i d.seq);
        ("head_pc", Printf.sprintf "0x%x" d.uop.Trace.pc);
        ("head_fu", fu_name d.uop.Trace.fu);
        ("head_wrong_path", string_of_bool d.wrong_path);
        ("head_trace_idx", i d.trace_idx);
        ("head_issued", string_of_bool d.issued);
        ("head_ready_at", i d.ready_at);
        ("head_recovery_at", i d.recovery_at);
        ("head_producers",
         if d.producers = [] then "none"
         else
           String.concat ","
             (List.map
                (fun s ->
                   Printf.sprintf "%d%s" s
                     (if win_mem t s then "(inflight)" else ""))
                d.producers)) ]
    else if not (Ring.is_empty t.frontend_q) then
      let d = Ring.front t.frontend_q in
      [ ("stuck_at", "frontend_head");
        ("head_seq", i d.seq);
        ("head_pc", Printf.sprintf "0x%x" d.uop.Trace.pc);
        ("head_fu", fu_name d.uop.Trace.fu) ]
    else [ ("stuck_at", "fetch") ]
  in
  base @ head

(* ---------- stepping ---------- *)

(* One simulated cycle.  Raises [Diag.Error Sim_deadlock] at the cycle
   boundary (before any state for the cycle is touched), so a caller
   catching the watchdog sees a consistent, checkpointable engine. *)
let step t =
  if t.now > t.max_cycles then
    Diag.error ~context:(diag_context t "cycle-budget") Diag.Sim_deadlock
      "simulation did not converge: %d cycles elapsed, %d/%d committed"
      t.now t.committed t.n_trace;
  if t.now - t.last_commit_cycle > watchdog_limit then
    Diag.error ~context:(diag_context t "no-forward-progress") Diag.Sim_deadlock
      "pipeline deadlock: no commit for %d cycles (cycle %d, %d/%d \
       committed)"
      (t.now - t.last_commit_cycle) t.now t.committed t.n_trace;
  drain_wheel t;
  (* process recovery events due this cycle, oldest faulting seq first *)
  if t.recoveries <> [] then begin
    let due, later =
      List.partition (fun (c, _, _, _) -> c <= t.now) t.recoveries
    in
    t.recoveries <- later;
    let due =
      List.sort (fun (_, s1, _, _) (_, s2, _, _) -> compare s1 s2) due
    in
    List.iter
      (fun (_, seqno, resume_idx, include_self) ->
         let d = win_get t seqno in
         if d != t.dummy then do_recovery t ~faulting:d ~resume_idx ~include_self
         (* otherwise: already squashed by an older recovery *))
      due
  end;
  t.commits_now <- 0;
  commit t;
  issue t;
  Stats.charge t.cpi (classify_cycle t);
  dispatch t;
  fetch t;
  t.now <- t.now + 1

let finished t = t.done_
let cycle t = t.now
let committed_count t = t.committed

(* Mid-run snapshot of the cycle-accounting buckets; the interval
   sampler subtracts the snapshot taken at the warmup boundary from the
   final stack to measure only the interval proper. *)
let cpi_now t = Stats.freeze t.cpi

let finish t : stats =
  (match t.checker with
   | Some ck ->
     Checker.on_finish ck ~cycles:t.now ~committed:t.committed
       ~free_regs:t.free_regs
   | None -> ());
  { cycles = t.now;
    committed = t.committed;
    wrong_path_fetched = t.wrong_fetched;
    branch_mispredicts = t.branch_misp;
    return_mispredicts = t.ret_misp;
    memdep_violations = t.memdep.Memdep.violations;
    walk_stall_cycles = t.walk_stalls;
    spadd_stall_slots = t.spadd_stalls;
    checkpoint_stall_slots = t.checkpoint_stalls;
    l1i_misses = t.hier.Cache.l1i.Cache.misses;
    l1d_misses = t.hier.Cache.l1d.Cache.misses;
    l1d_accesses = t.hier.Cache.l1d.Cache.accesses;
    mix =
      (let acc = ref [] in
       for i = 5 downto 0 do
         if t.mix_counts.(i) > 0 then
           acc := (mix_labels.(i), t.mix_counts.(i)) :: !acc
       done;
       !acc);
    activity = t.act;
    ipc = float_of_int t.committed /. float_of_int (max 1 t.now);
    faults_injected = Inject.total t.inj;
    commits_checked =
      (match t.checker with Some ck -> Checker.commits_checked ck | None -> 0);
    cpi_stack = Stats.freeze t.cpi }

(* [run p ~trace ~decode_static ?checker ()] simulates the whole trace
   and returns timing statistics.  [decode_static pc] supplies wrong-path
   instructions.  [checker] is the lockstep golden-model checker, fed at
   every commit.  Faults from [p.inject] are injected at fetch/issue
   opportunities; a deadlock or lack of forward progress trips the
   watchdog, which raises [Diag.Error Sim_deadlock] carrying a full
   machine-readable pipeline snapshot. *)
let run (p : Params.t) ~(trace : Trace.uop array)
    ~(decode_static : int -> Trace.uop option)
    ?(checker : Checker.t option) () : stats =
  let t = create p ~trace ~decode_static ?checker () in
  while not t.done_ do step t done;
  finish t

(* ---------- checkpointing ---------- *)

(* Binary image of the live engine.  Serialization-safety invariants the
   format relies on (all consequences of suffix-only squash and
   monotonic, never-reused sequence numbers):

   - the live window is exactly [frontend_q ∪ rob] (disjoint), so those
     two deques enumerate every live [dyn];
   - iq/ldq/stq are subsets of the ROB, serialized as seq lists;
   - an unfired wakeup edge held by a live producer targets either a
     live consumer or a squashed one (whose counters are dead state) —
     dead targets are dropped at save;
   - fired edges never persist ([fire_edges] clears the whole list);
   - timing-wheel slots may hold squashed producers, but all of their
     consumers were squashed with them, so dead entries are dropped;
   - [trace_seq] entries for committed producers are stale in exactly
     the way a [-1] is (the [win_mem] guard fails either way), so the
     array is rebuilt sparsely from live dispatched correct-path dyns;
   - correct-path uops are shared with [trace] and stored by index;
     wrong-path uops are serialized inline. *)

let engine_version = 1

(* The uop codec lives in Uop_io so the sampling checkpoints share it. *)
let w_uop = Uop_io.write
let r_uop = Uop_io.read

let w_dyn t b (d : dyn) =
  Bin.w_int b d.seq;
  Bin.w_bool b d.wrong_path;
  Bin.w_int b d.trace_idx;
  if d.trace_idx < 0 then w_uop b d.uop;
  Bin.w_int b d.fetched_at;
  Bin.w_list b Bin.w_int d.producers;
  Bin.w_bool b d.dispatched;
  Bin.w_int b d.dispatched_at;
  Bin.w_bool b d.issued;
  Bin.w_int b d.ready_at;
  Bin.w_int b d.replay_bump;
  Bin.w_bool b d.mispredicted;
  Bin.w_int b d.resume_idx;
  Bin.w_bool b d.addr_known;
  Bin.w_bool b d.executed_load;
  Bin.w_int b d.recovery_at;
  Bin.w_int b d.ras_snapshot;
  Bin.w_int b d.n_unready;
  (* unfired edges whose consumer is still live; dead consumers only
     absorb a harmless counter decrement, so they are dropped *)
  Bin.w_list b Bin.w_int
    (List.filter_map
       (fun e -> if win_mem t e.consumer.seq then Some e.consumer.seq else None)
       d.waiters)

(* first pass: reconstruct the record; waiter seqs are resolved in a
   second pass once every live dyn is back in the window *)
let r_dyn t r : dyn * int list =
  let seq = Bin.r_int r in
  let wrong_path = Bin.r_bool r in
  let trace_idx = Bin.r_int r in
  let uop =
    if trace_idx < 0 then r_uop r
    else if trace_idx < t.n_trace then t.trace.(trace_idx)
    else
      raise
        (Bin.Corrupt
           (Printf.sprintf "dyn trace index %d outside trace of %d" trace_idx
              t.n_trace))
  in
  let fetched_at = Bin.r_int r in
  let producers = Bin.r_list r Bin.r_int in
  let dispatched = Bin.r_bool r in
  let dispatched_at = Bin.r_int r in
  let issued = Bin.r_bool r in
  let ready_at = Bin.r_int r in
  let replay_bump = Bin.r_int r in
  let mispredicted = Bin.r_bool r in
  let resume_idx = Bin.r_int r in
  let addr_known = Bin.r_bool r in
  let executed_load = Bin.r_bool r in
  let recovery_at = Bin.r_int r in
  let ras_snapshot = Bin.r_int r in
  let n_unready = Bin.r_int r in
  let waiter_seqs = Bin.r_list r Bin.r_int in
  ( { seq; uop; wrong_path; trace_idx; fetched_at; producers; dispatched;
      dispatched_at; issued; ready_at; replay_bump; mispredicted; resume_idx;
      addr_known; executed_load; recovery_at; ras_snapshot; n_unready;
      waiters = [] },
    waiter_seqs )

let save b t =
  Bin.w_int b engine_version;
  Bin.w_int b t.n_trace;
  (* scalar state *)
  Bin.w_int b t.next_seq;
  Bin.w_int b t.now;
  Bin.w_bool b t.done_;
  Bin.w_int b t.committed;
  Bin.w_int b t.commits_now;
  Bin.w_int b t.wrong_fetched;
  Bin.w_int b t.branch_misp;
  Bin.w_int b t.ret_misp;
  Bin.w_int b t.walk_stalls;
  Bin.w_int b t.spadd_stalls;
  Bin.w_int b t.checkpoint_stalls;
  Bin.w_int b t.inflight_ctrl;
  Bin.w_int b t.rename_blocked_until;
  Bin.w_int b t.fetch_stall_until;
  Bin.w_int b t.redirect_until;
  Bin.w_int b t.last_commit_cycle;
  Bin.w_int b t.lc_n;
  Bin.w_int b t.free_regs;
  Bin.w_int_array b t.lc_idx;
  Bin.w_int_array b t.lc_pc;
  Bin.w_int_array b t.mix_counts;
  (match t.mode with
   | Fetch_correct idx -> Bin.w_int b 0; Bin.w_int b idx
   | Fetch_wrong pc -> Bin.w_int b 1; Bin.w_int b pc
   | Fetch_stalled -> Bin.w_int b 2);
  Bin.w_int_array b t.rmt;
  (* window capacity, so a restored run grows at the same points *)
  Bin.w_int b (Array.length t.win);
  (* every live dyn: ROB (dispatched) then front-end queue (fetched) *)
  Bin.w_int b (Ring.length t.rob);
  Ring.iter (fun d -> w_dyn t b d) t.rob;
  Bin.w_int b (Ring.length t.frontend_q);
  Ring.iter (fun d -> w_dyn t b d) t.frontend_q;
  (* ROB-subset structures as seq lists *)
  Bin.w_int b t.iq_len;
  for i = 0 to t.iq_len - 1 do Bin.w_int b t.iq_buf.(i).seq done;
  Bin.w_int b (Ring.length t.ldq);
  Ring.iter (fun d -> Bin.w_int b d.seq) t.ldq;
  Bin.w_int b (Ring.length t.stq);
  Ring.iter (fun d -> Bin.w_int b d.seq) t.stq;
  (* timing wheel: per-slot live seqs (dead producers have only dead
     consumers, so they are dropped) *)
  Bin.w_int b (Array.length t.wheel);
  Array.iter
    (fun ds ->
       Bin.w_list b Bin.w_int
         (List.filter_map
            (fun d -> if win_mem t d.seq then Some d.seq else None)
            ds))
    t.wheel;
  Bin.w_list b
    (fun b (c, s, ri, inc) ->
       Bin.w_int b c; Bin.w_int b s; Bin.w_int b ri; Bin.w_bool b inc)
    t.recoveries;
  (* sub-components *)
  t.pred.Branch_pred.save b;
  Branch_pred.Ras.save_full b t.ras;
  Memdep.save b t.memdep;
  Inject.save b t.inj;
  Cache.save_hierarchy b t.hier;
  Stats.save_acc b t.cpi;
  Bin.w_int b t.act.rename_reads;
  Bin.w_int b t.act.rename_writes;
  Bin.w_int b t.act.freelist_ops;
  Bin.w_int b t.act.rp_ops;
  Bin.w_int b t.act.rf_reads;
  Bin.w_int b t.act.rf_writes;
  Bin.w_int b t.act.iq_wakeups;
  Bin.w_int b t.act.rob_writes;
  Bin.w_int b t.act.rob_walk_steps;
  Bin.w_int b t.act.alu_ops;
  Bin.w_int b t.act.agu_ops;
  (match t.checker with
   | None -> Bin.w_bool b false
   | Some ck -> Bin.w_bool b true; Checker.save b ck)

let restore (p : Params.t) ~(trace : Trace.uop array)
    ~(decode_static : int -> Trace.uop option)
    ?(checker : Checker.t option) (r : Bin.reader) : t =
  let t = create p ~trace ~decode_static ?checker () in
  let v = Bin.r_int r in
  if v <> engine_version then
    raise
      (Bin.Corrupt
         (Printf.sprintf "engine image version %d, this build reads %d" v
            engine_version));
  let n = Bin.r_int r in
  if n <> t.n_trace then
    raise
      (Bin.Corrupt
         (Printf.sprintf "engine image covers a %d-uop trace, workload \
                          regenerated %d uops" n t.n_trace));
  t.next_seq <- Bin.r_int r;
  t.now <- Bin.r_int r;
  t.done_ <- Bin.r_bool r;
  t.committed <- Bin.r_int r;
  t.commits_now <- Bin.r_int r;
  t.wrong_fetched <- Bin.r_int r;
  t.branch_misp <- Bin.r_int r;
  t.ret_misp <- Bin.r_int r;
  t.walk_stalls <- Bin.r_int r;
  t.spadd_stalls <- Bin.r_int r;
  t.checkpoint_stalls <- Bin.r_int r;
  t.inflight_ctrl <- Bin.r_int r;
  t.rename_blocked_until <- Bin.r_int r;
  t.fetch_stall_until <- Bin.r_int r;
  t.redirect_until <- Bin.r_int r;
  t.last_commit_cycle <- Bin.r_int r;
  t.lc_n <- Bin.r_int r;
  t.free_regs <- Bin.r_int r;
  Bin.r_int_array_into r t.lc_idx;
  Bin.r_int_array_into r t.lc_pc;
  Bin.r_int_array_into r t.mix_counts;
  (match Bin.r_int r with
   | 0 -> t.mode <- Fetch_correct (Bin.r_int r)
   | 1 -> t.mode <- Fetch_wrong (Bin.r_int r)
   | 2 -> t.mode <- Fetch_stalled
   | n -> raise (Bin.Corrupt (Printf.sprintf "bad fetch-mode tag %d" n)));
  Bin.r_int_array_into r t.rmt;
  let win_cap = Bin.r_int r in
  if win_cap < 1 || win_cap land (win_cap - 1) <> 0 then
    raise (Bin.Corrupt (Printf.sprintf "bad window capacity %d" win_cap));
  t.win <- Array.make win_cap t.dummy;
  t.win_mask <- win_cap - 1;
  (* pass 1: rebuild every live dyn, reinsert into the window *)
  let pending_waiters = ref [] in
  let read_ring ring =
    let len = Bin.r_int r in
    if len < 0 || len > Bin.remaining r then
      raise (Bin.Corrupt (Printf.sprintf "bad deque length %d" len));
    for _ = 1 to len do
      let d, waiter_seqs = r_dyn t r in
      win_insert t d;
      Ring.push_back ring d;
      if waiter_seqs <> [] then
        pending_waiters := (d, waiter_seqs) :: !pending_waiters
    done
  in
  read_ring t.rob;
  read_ring t.frontend_q;
  (* seq -> live dyn; a dangling reference means a corrupt image *)
  let live s =
    let d = win_get t s in
    if d == t.dummy then
      raise (Bin.Corrupt (Printf.sprintf "dangling seq %d in engine image" s));
    d
  in
  (* pass 2: rebuild wakeup edges (all serialized edges are unfired) *)
  List.iter
    (fun (d, waiter_seqs) ->
       d.waiters <-
         List.map (fun s -> { consumer = live s; fired = false }) waiter_seqs)
    !pending_waiters;
  let iq_n = Bin.r_int r in
  if iq_n < 0 || iq_n > Bin.remaining r then
    raise (Bin.Corrupt (Printf.sprintf "bad issue-queue length %d" iq_n));
  for _ = 1 to iq_n do iq_push t (live (Bin.r_int r)) done;
  let read_seq_ring ring =
    let len = Bin.r_int r in
    if len < 0 || len > Bin.remaining r then
      raise (Bin.Corrupt (Printf.sprintf "bad queue length %d" len));
    for _ = 1 to len do Ring.push_back ring (live (Bin.r_int r)) done
  in
  read_seq_ring t.ldq;
  read_seq_ring t.stq;
  let wheel_n = Bin.r_int r in
  if wheel_n <> Array.length t.wheel then
    raise
      (Bin.Corrupt
         (Printf.sprintf "timing wheel of %d slots, configuration builds %d"
            wheel_n (Array.length t.wheel)));
  for i = 0 to wheel_n - 1 do
    t.wheel.(i) <- List.map live (Bin.r_list r Bin.r_int)
  done;
  t.recoveries <-
    Bin.r_list r (fun r ->
        let c = Bin.r_int r in
        let s = Bin.r_int r in
        let ri = Bin.r_int r in
        let inc = Bin.r_bool r in
        (c, s, ri, inc));
  (* trace_seq: sparse rebuild from live dispatched correct-path dyns;
     stale entries behave exactly like -1 behind the win_mem guard *)
  Ring.iter
    (fun d -> if not d.wrong_path then t.trace_seq.(d.trace_idx) <- d.seq)
    t.rob;
  t.pred.Branch_pred.load r;
  Branch_pred.Ras.load_full r t.ras;
  Memdep.load r t.memdep;
  Inject.load r t.inj;
  Cache.load_hierarchy r t.hier;
  Stats.load_acc r t.cpi;
  t.act.rename_reads <- Bin.r_int r;
  t.act.rename_writes <- Bin.r_int r;
  t.act.freelist_ops <- Bin.r_int r;
  t.act.rp_ops <- Bin.r_int r;
  t.act.rf_reads <- Bin.r_int r;
  t.act.rf_writes <- Bin.r_int r;
  t.act.iq_wakeups <- Bin.r_int r;
  t.act.rob_writes <- Bin.r_int r;
  t.act.rob_walk_steps <- Bin.r_int r;
  t.act.alu_ops <- Bin.r_int r;
  t.act.agu_ops <- Bin.r_int r;
  let had_checker = Bin.r_bool r in
  (match had_checker, t.checker with
   | true, Some ck -> Checker.load r ck
   | false, None -> ()
   | true, None ->
     raise
       (Bin.Corrupt
          "checkpoint was taken with lockstep checking on; restore requires \
           a checker")
   | false, Some _ ->
     raise
       (Bin.Corrupt
          "checkpoint was taken without lockstep checking; restore must not \
           add a checker"));
  t
