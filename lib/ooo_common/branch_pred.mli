(** Branch direction predictors — gshare (Table I: 10-bit global history,
    32 K entries) and an 8-component TAGE (Fig. 14) — plus the return
    address stack.  Direct branch/jump targets are assumed to hit a
    perfect BTB; returns are predicted by the RAS. *)

type t = {
  predict : int -> bool;          (** pc -> predicted taken? *)
  update : int -> bool -> unit;   (** pc -> actual outcome *)
  save : Buffer.t -> unit;        (** serialize tables + history *)
  load : Bin.reader -> unit;
  (** inverse of [save] into a fresh predictor of the same kind and
      geometry.  @raise Bin.Corrupt on malformed input. *)
}

val gshare : ?history_bits:int -> ?entries:int -> unit -> t
val tage : unit -> t
val make : Params.predictor_kind -> t

(** Return-address stack with O(1) save/restore of the top-of-stack
    pointer for misprediction recovery.  Wrong-path pushes can still
    overwrite entries, as in real hardware. *)
module Ras : sig
  type t

  val create : ?depth:int -> unit -> t
  val push : t -> int -> unit
  val pop : t -> int option
  val save : t -> int
  val restore : t -> int -> unit

  val save_full : Buffer.t -> t -> unit
  (** Checkpointing: serialize the whole stack plus the pointer (unlike
      {!save}, which captures only the pointer for misprediction
      recovery). *)

  val load_full : Bin.reader -> t -> unit
  (** @raise Bin.Corrupt on malformed input or a depth mismatch. *)
end
