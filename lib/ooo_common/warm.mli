(** Functional warming for fast-forward and interval sampling.

    A [Warm.t] bundles the microarchitectural state the detailed model
    cares about across a region boundary — the cache hierarchy, the
    branch direction predictor and the return-address stack — and trains
    all three from the ISS retirement stream at functional-simulation
    speed.  Handing the bundle to {!Engine.create} via [?warm] starts
    detailed simulation with the tables in the state a full detailed run
    would have left them, which is what makes mid-trace measurement
    intervals meaningful (the SMARTS/Sniper "functional warming" move).

    The memory-dependence predictor is deliberately not warmed: it
    trains on timing violations, which functional simulation cannot
    observe, so a cold [Memdep] is the faithful handoff state. *)

type t = {
  hier : Cache.hierarchy;
  pred : Branch_pred.t;
  ras : Branch_pred.Ras.t;
  mutable observed : int;  (** retired instructions replayed so far *)
}

val create : Params.t -> t
(** Fresh, cold state for the given machine configuration. *)

val observe : t -> Iss.Trace.uop -> unit
(** Replay one retired instruction: touch the instruction path at its
    pc, the data path at its memory address (loads and stores), train
    the direction predictor on conditional outcomes, and push/pop the
    RAS on calls/returns — the same training the detailed engine applies
    on the correct path, minus all timing. *)

val save : Buffer.t -> t -> unit
(** Serialize the warmed tables (checkpoint "warmed-state" sections). *)

val load : Bin.reader -> t -> unit
(** Inverse of {!save} into a freshly [create]d bundle of the same
    configuration.  @raise Bin.Corrupt on malformed input. *)
