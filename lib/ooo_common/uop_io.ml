(* Binary uop codec, shared by the engine checkpoint image and the
   interval-sampling checkpoints. *)

module Trace = Iss.Trace

let fu_code = function
  | Trace.FU_alu -> 0 | Trace.FU_mul -> 1 | Trace.FU_div -> 2
  | Trace.FU_branch -> 3 | Trace.FU_load -> 4 | Trace.FU_store -> 5

let fu_of_code = function
  | 0 -> Trace.FU_alu | 1 -> Trace.FU_mul | 2 -> Trace.FU_div
  | 3 -> Trace.FU_branch | 4 -> Trace.FU_load | 5 -> Trace.FU_store
  | n -> raise (Bin.Corrupt (Printf.sprintf "bad fu code %d" n))

let write b (u : Trace.uop) =
  Bin.w_int b u.Trace.pc;
  Bin.w_int b (fu_code u.Trace.fu);
  Bin.w_int_array b u.Trace.srcs_dist;
  Bin.w_int_array b u.Trace.srcs_reg;
  Bin.w_int b u.Trace.dest_reg;
  Bin.w_bool b u.Trace.has_dest;
  Bin.w_bool b u.Trace.is_rmov;
  Bin.w_bool b u.Trace.is_nop;
  Bin.w_bool b u.Trace.is_spadd;
  Bin.w_int b u.Trace.mem_addr;
  match u.Trace.ctrl with
  | Trace.Not_ctrl -> Bin.w_int b 0
  | Trace.Cond { taken; target } ->
    Bin.w_int b 1; Bin.w_bool b taken; Bin.w_int b target
  | Trace.Uncond { target; is_call; is_ret } ->
    Bin.w_int b 2; Bin.w_int b target; Bin.w_bool b is_call;
    Bin.w_bool b is_ret

let read r : Trace.uop =
  let pc = Bin.r_int r in
  let fu = fu_of_code (Bin.r_int r) in
  let srcs_dist = Bin.r_int_array r in
  let srcs_reg = Bin.r_int_array r in
  let dest_reg = Bin.r_int r in
  let has_dest = Bin.r_bool r in
  let is_rmov = Bin.r_bool r in
  let is_nop = Bin.r_bool r in
  let is_spadd = Bin.r_bool r in
  let mem_addr = Bin.r_int r in
  let ctrl =
    match Bin.r_int r with
    | 0 -> Trace.Not_ctrl
    | 1 ->
      let taken = Bin.r_bool r in
      let target = Bin.r_int r in
      Trace.Cond { taken; target }
    | 2 ->
      let target = Bin.r_int r in
      let is_call = Bin.r_bool r in
      let is_ret = Bin.r_bool r in
      Trace.Uncond { target; is_call; is_ret }
    | n -> raise (Bin.Corrupt (Printf.sprintf "bad ctrl tag %d" n))
  in
  { Trace.pc; fu; srcs_dist; srcs_reg; dest_reg; has_dest; is_rmov; is_nop;
    is_spadd; mem_addr; ctrl }
