(* Functional warming: train caches, the branch predictor and the RAS
   from the ISS retirement stream without timing anything.  See warm.mli
   for the handoff contract. *)

module Trace = Iss.Trace

type t = {
  hier : Cache.hierarchy;
  pred : Branch_pred.t;
  ras : Branch_pred.Ras.t;
  mutable observed : int;
}

let create (p : Params.t) : t =
  { hier = Cache.create_hierarchy p;
    pred = Branch_pred.make p.predictor;
    ras = Branch_pred.Ras.create ();
    observed = 0 }

let observe t (u : Trace.uop) =
  t.observed <- t.observed + 1;
  Cache.warm_inst t.hier u.Trace.pc;
  (match u.Trace.fu with
   | Trace.FU_load | Trace.FU_store -> Cache.warm_data t.hier u.Trace.mem_addr
   | _ -> ());
  match u.Trace.ctrl with
  | Trace.Not_ctrl -> ()
  | Trace.Cond { taken; _ } -> t.pred.Branch_pred.update u.Trace.pc taken
  | Trace.Uncond { is_call; is_ret; _ } ->
    if is_call then Branch_pred.Ras.push t.ras (u.Trace.pc + 4);
    if is_ret then ignore (Branch_pred.Ras.pop t.ras)

let save b t =
  Cache.save_hierarchy b t.hier;
  t.pred.Branch_pred.save b;
  Branch_pred.Ras.save_full b t.ras;
  Bin.w_int b t.observed

let load r t =
  Cache.load_hierarchy r t.hier;
  t.pred.Branch_pred.load r;
  Branch_pred.Ras.load_full r t.ras;
  t.observed <- Bin.r_int r
