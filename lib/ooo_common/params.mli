(** Microarchitectural model parameters (the paper's Table I), plus the
    experiment knobs used by Figs. 13/14 and the ablations. *)

type predictor_kind = Gshare | Tage

type cache_params = {
  size_bytes : int;
  ways : int;
  line_bytes : int;
  hit_latency : int;
}

(** How source operands get their physical locations — the axis the paper
    is about. *)
type rename_model =
  | Rmt of { phys_regs : int }
      (** RAM-based register mapping table + free list; misprediction
          recovery walks the ROB at the front-end width, serialized with
          the refetch (Section V-A / \[14\]). *)
  | Rmt_checkpoint of { phys_regs : int; checkpoints : int }
      (** CAM/checkpointed RMT (Section II-A): recovery restores a
          checkpoint instead of walking, but dispatch stalls when all
          checkpoints are held by in-flight control instructions. *)
  | Rp
      (** STRAIGHT: operand determination by register-pointer arithmetic
          (Fig. 3); recovery is a single ROB read (Fig. 4). *)

type t = {
  name : string;
  fetch_width : int;
  frontend_depth : int;       (** fetch-to-dispatch latency in cycles *)
  rob_entries : int;
  scheduler_entries : int;
  issue_width : int;
  commit_width : int;
  ldq_entries : int;
  stq_entries : int;
  n_alu : int;
  n_mul : int;
  n_div : int;
  n_bc : int;
  n_mem : int;
  rename : rename_model;
  predictor : predictor_kind;
  l1i : cache_params;
  l1d : cache_params;
  l2 : cache_params;
  l3 : cache_params option;
  memory_latency : int;
  ideal_recovery : bool;      (** Fig. 13: zero misprediction penalty *)
  latency_alu : int;
  latency_mul : int;
  latency_div : int;
  branch_resolve_latency : int;
      (** issue-to-redirect depth (issue, register read, execute) *)
  dispatch_issue_latency : int;
      (** dispatch-to-earliest-issue depth (schedule + issue stages) *)
  inject : Inject.plan option;
      (** seeded fault-injection plan; [None] = no faults *)
}

val l1_32k : cache_params
val l2_256k : cache_params
val l3_2m : cache_params

val base : t

(** The four evaluated models of Table I.  Sizes are equalized between
    each SS/STRAIGHT pair to isolate the architectural difference. *)

val ss_2way : t
val straight_2way : t
val ss_4way : t
val straight_4way : t

val straight_max_dist : int
(** STRAIGHT's maximum source distance in the evaluated models (31), so
    that max distance + ROB entries matches the SS register file
    (Section V-A). *)

val with_tage : t -> t
val with_ideal_recovery : t -> t

val with_faults : Inject.plan -> t -> t
(** Arm a seeded fault-injection plan (robustness campaigns); the run
    must absorb every fault through normal recovery or trip the lockstep
    checker / deadlock watchdog with a structured diagnostic. *)

val with_checkpoints : ?n:int -> t -> t
(** Checkpointed-RMT variant of a superscalar model (Section II-A);
    identity on STRAIGHT models. *)

val spadd_per_cycle : int
(** Maximum SPADDs dispatched per cycle (Section III-B: cascaded SPADD
    computations in a fetch group would stretch the clock, so the decoder
    restricts them by stalling; the paper argues — and the bench harness
    confirms — the effect is negligible). *)

(** {2 Canonical serialization and stable hashing}

    The design-space sweep subsystem ([lib/sweep]) content-addresses
    cached simulation results by configuration, and the bench harness
    memoizes runs by the same key, so [t] round-trips through the
    dependency-free JSON layer and hashes stably across processes. *)

exception Json_error of string
(** Raised by {!of_json} on a malformed or incomplete configuration. *)

val to_json : t -> Stats.Json.t
(** Total over every field, including the fault-injection plan. *)

val of_json : Stats.Json.t -> t
(** Exact inverse of {!to_json}.  @raise Json_error on malformed input. *)

val equal : t -> t -> bool
(** Structural configuration equality ([t] is first-order data). *)

val digest : t -> string
(** MD5 hex of the compact {!to_json} rendering: equal configurations
    (names included) digest equally in any process. *)

val predictor_name : predictor_kind -> string
val predictor_of_name : string -> predictor_kind option
