(* Seeded microarchitectural fault injection.  See the interface for the
   model; the PRNG is splitmix64 so campaigns are reproducible from the
   seed alone. *)

type kind =
  | Flip_prediction
  | Corrupt_cache_tag
  | Spurious_recovery
  | Stretch_fu_latency

let all_kinds =
  [ Flip_prediction; Corrupt_cache_tag; Spurious_recovery;
    Stretch_fu_latency ]

let kind_name = function
  | Flip_prediction -> "flip"
  | Corrupt_cache_tag -> "tag"
  | Spurious_recovery -> "spurious"
  | Stretch_fu_latency -> "stretch"

let kind_of_string = function
  | "flip" -> Some Flip_prediction
  | "tag" -> Some Corrupt_cache_tag
  | "spurious" -> Some Spurious_recovery
  | "stretch" -> Some Stretch_fu_latency
  | _ -> None

type plan = {
  seed : int;
  period : int;
  kinds : kind list;
}

let plan ?(period = 1000) ?(kinds = all_kinds) seed = { seed; period; kinds }

type t = {
  mutable state : int64;
  period : int;
  armed : kind list;
  counters : int array;           (* indexed by kind order in all_kinds *)
}

let kind_index = function
  | Flip_prediction -> 0
  | Corrupt_cache_tag -> 1
  | Spurious_recovery -> 2
  | Stretch_fu_latency -> 3

let disabled () =
  { state = 0L; period = 0; armed = []; counters = Array.make 4 0 }

let make = function
  | None -> disabled ()
  | Some p ->
    { state = Int64.of_int ((p.seed * 2) + 1);
      period = max 1 p.period;
      armed = p.kinds;
      counters = Array.make 4 0 }

let active t = t.armed <> []

(* splitmix64 step, truncated to a nonnegative OCaml int. *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.logand z 0x3FFF_FFFF_FFFF_FFFFL)

let fire t kind =
  if t.armed = [] || not (List.mem kind t.armed) then false
  else begin
    let hit = next t mod t.period = 0 in
    if hit then begin
      let i = kind_index kind in
      t.counters.(i) <- t.counters.(i) + 1
    end;
    hit
  end

let draw t n = if n <= 0 then 0 else next t mod n

let counts t =
  List.filter_map
    (fun k ->
       let n = t.counters.(kind_index k) in
       if List.mem k t.armed then Some (k, n) else None)
    all_kinds

let total t = Array.fold_left ( + ) 0 t.counters

(* Checkpointing: the plan (period, armed kinds) is rebuilt from Params,
   so only the PRNG position and the counters travel. *)
let save b t =
  Bin.w_i64 b t.state;
  Bin.w_int_array b t.counters

let load r t =
  t.state <- Bin.r_i64 r;
  Bin.r_int_array_into r t.counters
