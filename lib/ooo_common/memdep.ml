(* Memory-dependence predictor: a PC-indexed "conflict" table in the
   spirit of store sets, trained on memory-order violations.  A load whose
   PC has a conflict bit waits for all older store addresses; otherwise it
   speculates past unresolved stores (Section V-A: "memory dependency
   prediction" with misspeculation recovery). *)

type t = {
  table : Bytes.t;
  mask : int;
  mutable violations : int;
}

let create ?(entries = 4096) () =
  { table = Bytes.make entries '\000'; mask = entries - 1; violations = 0 }

let index t pc = (pc lsr 2) land t.mask

(* Should this load wait for older unresolved stores? *)
let predict_conflict t pc = Bytes.get t.table (index t pc) <> '\000'

(* A violation was detected: the load at [pc] must wait next time. *)
let train_violation t pc =
  t.violations <- t.violations + 1;
  Bytes.set t.table (index t pc) '\001'

let save b t =
  Bin.w_bytes b t.table;
  Bin.w_int b t.violations

let load r t =
  Bin.r_bytes_into r t.table;
  t.violations <- Bin.r_int r
