(* Cycle accounting (CPI stack) and the JSON support shared by the
   observability surface: the engine attributes every simulated cycle to
   exactly one bucket, and bench/straightsim/bench_gate exchange the
   result as JSON without an external dependency. *)

type cpi_stack = {
  base : int;
  frontend : int;
  branch_squash : int;
  memory : int;
  structural : int;
}

let empty_cpi =
  { base = 0; frontend = 0; branch_squash = 0; memory = 0; structural = 0 }

let cpi_total c = c.base + c.frontend + c.branch_squash + c.memory + c.structural

let cpi_to_assoc c =
  [ ("base", c.base);
    ("frontend", c.frontend);
    ("branch_squash", c.branch_squash);
    ("memory", c.memory);
    ("structural", c.structural) ]

let cpi_sub a b =
  { base = a.base - b.base;
    frontend = a.frontend - b.frontend;
    branch_squash = a.branch_squash - b.branch_squash;
    memory = a.memory - b.memory;
    structural = a.structural - b.structural }

(* Mutable accumulator used by the engine's per-cycle classifier. *)
type bucket = Base | Frontend | Branch_squash | Memory | Structural

type cpi_acc = {
  mutable acc_base : int;
  mutable acc_frontend : int;
  mutable acc_branch : int;
  mutable acc_memory : int;
  mutable acc_structural : int;
}

let fresh_acc () =
  { acc_base = 0; acc_frontend = 0; acc_branch = 0; acc_memory = 0;
    acc_structural = 0 }

let charge acc = function
  | Base -> acc.acc_base <- acc.acc_base + 1
  | Frontend -> acc.acc_frontend <- acc.acc_frontend + 1
  | Branch_squash -> acc.acc_branch <- acc.acc_branch + 1
  | Memory -> acc.acc_memory <- acc.acc_memory + 1
  | Structural -> acc.acc_structural <- acc.acc_structural + 1

let freeze acc =
  { base = acc.acc_base;
    frontend = acc.acc_frontend;
    branch_squash = acc.acc_branch;
    memory = acc.acc_memory;
    structural = acc.acc_structural }

let save_acc b acc =
  Bin.w_int b acc.acc_base;
  Bin.w_int b acc.acc_frontend;
  Bin.w_int b acc.acc_branch;
  Bin.w_int b acc.acc_memory;
  Bin.w_int b acc.acc_structural

let load_acc r acc =
  acc.acc_base <- Bin.r_int r;
  acc.acc_frontend <- Bin.r_int r;
  acc.acc_branch <- Bin.r_int r;
  acc.acc_memory <- Bin.r_int r;
  acc.acc_structural <- Bin.r_int r

(* ---------- JSON ---------- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
         match c with
         | '"' -> Buffer.add_string b "\\\""
         | '\\' -> Buffer.add_string b "\\\\"
         | '\n' -> Buffer.add_string b "\\n"
         | '\r' -> Buffer.add_string b "\\r"
         | '\t' -> Buffer.add_string b "\\t"
         | c when Char.code c < 0x20 ->
           Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
         | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let float_repr f =
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.1f" f
    else
      (* shortest representation that parses back to the same double,
         so cached/serialized records compare exactly on reload *)
      let s = Printf.sprintf "%.12g" f in
      if float_of_string s = f then s else Printf.sprintf "%.17g" f

  let rec write b ~indent ~level t =
    let pad n = if indent then Buffer.add_string b (String.make (2 * n) ' ') in
    let nl () = if indent then Buffer.add_char b '\n' in
    match t with
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_repr f)
    | Str s -> Buffer.add_char b '"'; Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | List [] -> Buffer.add_string b "[]"
    | List xs ->
      Buffer.add_char b '[';
      nl ();
      List.iteri
        (fun i x ->
           if i > 0 then (Buffer.add_char b ','; nl ());
           pad (level + 1);
           write b ~indent ~level:(level + 1) x)
        xs;
      nl (); pad level; Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj kvs ->
      Buffer.add_char b '{';
      nl ();
      List.iteri
        (fun i (k, v) ->
           if i > 0 then (Buffer.add_char b ','; nl ());
           pad (level + 1);
           Buffer.add_char b '"'; Buffer.add_string b (escape k);
           Buffer.add_string b "\": ";
           write b ~indent ~level:(level + 1) v)
        kvs;
      nl (); pad level; Buffer.add_char b '}'

  let to_string ?(indent = true) t =
    let b = Buffer.create 1024 in
    write b ~indent ~level:0 t;
    if indent then Buffer.add_char b '\n';
    Buffer.contents b

  exception Parse_error of string

  (* Recursive-descent parser for the subset we emit (which is all of
     JSON except \u surrogate pairs, decoded as replacement bytes). *)
  let of_string (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while !pos < n
            && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do incr pos done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected %c" c)
    in
    let literal lit v =
      let l = String.length lit in
      if !pos + l <= n && String.sub s !pos l = lit then (pos := !pos + l; v)
      else fail (Printf.sprintf "expected %s" lit)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
           | '"' -> Buffer.add_char b '"'
           | '\\' -> Buffer.add_char b '\\'
           | '/' -> Buffer.add_char b '/'
           | 'n' -> Buffer.add_char b '\n'
           | 'r' -> Buffer.add_char b '\r'
           | 't' -> Buffer.add_char b '\t'
           | 'b' -> Buffer.add_char b '\b'
           | 'f' -> Buffer.add_char b '\012'
           | 'u' ->
             if !pos + 4 >= n then fail "truncated \\u escape";
             let hex = String.sub s (!pos + 1) 4 in
             pos := !pos + 4;
             (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 0x80 -> Buffer.add_char b (Char.chr code)
              | Some _ -> Buffer.add_char b '?'
              | None -> fail "bad \\u escape")
           | c -> fail (Printf.sprintf "bad escape \\%c" c));
          incr pos;
          go ()
        | c -> Buffer.add_char b c; incr pos; go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let is_num c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num s.[!pos] do incr pos done;
      let tok = String.sub s start (!pos - start) in
      match int_of_string_opt tok with
      | Some i -> Int i
      | None ->
        (match float_of_string_opt tok with
         | Some f -> Float f
         | None -> fail (Printf.sprintf "bad number %S" tok))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then (incr pos; Obj [])
        else begin
          let kvs = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            kvs := (k, v) :: !kvs;
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos; members ()
            | Some '}' -> incr pos
            | _ -> fail "expected , or }"
          in
          members ();
          Obj (List.rev !kvs)
        end
      | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then (incr pos; List [])
        else begin
          let xs = ref [] in
          let rec elements () =
            let v = parse_value () in
            xs := v :: !xs;
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos; elements ()
            | Some ']' -> incr pos
            | _ -> fail "expected , or ]"
          in
          elements ();
          List (List.rev !xs)
        end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  (* accessors *)
  let member key = function
    | Obj kvs -> List.assoc_opt key kvs
    | _ -> None

  let get_float = function
    | Some (Int i) -> Some (float_of_int i)
    | Some (Float f) -> Some f
    | _ -> None

  let get_int = function Some (Int i) -> Some i | _ -> None
  let get_string = function Some (Str s) -> Some s | _ -> None
  let get_list = function Some (List l) -> Some l | _ -> None
end

let cpi_to_json c =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (cpi_to_assoc c))
