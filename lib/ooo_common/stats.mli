(** Cycle accounting (CPI stack) and dependency-free JSON.

    The engine attributes every simulated cycle to exactly one bucket, so
    the buckets of a finished run always sum to the cycle count:

    - [base]: cycles that committed at least one instruction, plus
      head-of-ROB stalls on execution latency or true data dependences;
    - [frontend]: the window is empty (or refilling) because fetch is the
      limiter — instruction-cache misses and pipeline fill;
    - [branch_squash]: redirect, recovery-walk, and refetch-refill cycles
      after a misprediction, memory-order violation, or injected recovery;
    - [memory]: the head of the ROB is a load/store waiting on the memory
      hierarchy, or waits on an in-flight load's value;
    - [structural]: the head is ready but not selected — issue-port
      conflicts and the dispatch-to-issue depth.

    See EXPERIMENTS.md ("Reading the CPI stack") for the heuristics. *)

type cpi_stack = {
  base : int;
  frontend : int;
  branch_squash : int;
  memory : int;
  structural : int;
}

val empty_cpi : cpi_stack

val cpi_total : cpi_stack -> int
(** Sum of all buckets; equals [stats.cycles] for an engine run. *)

val cpi_to_assoc : cpi_stack -> (string * int) list
(** Stable field order: base, frontend, branch_squash, memory,
    structural. *)

val cpi_sub : cpi_stack -> cpi_stack -> cpi_stack
(** Bucket-wise difference [a - b]: the cycles charged between two
    mid-run snapshots (interval measurement excluding its detailed
    warmup prefix). *)

(** One-cycle classification, charged by the engine's per-cycle loop. *)
type bucket = Base | Frontend | Branch_squash | Memory | Structural

type cpi_acc
(** Mutable accumulator; one per engine run. *)

val fresh_acc : unit -> cpi_acc
val charge : cpi_acc -> bucket -> unit
val freeze : cpi_acc -> cpi_stack

val save_acc : Buffer.t -> cpi_acc -> unit
(** Serialize the accumulator for checkpointing. *)

val load_acc : Bin.reader -> cpi_acc -> unit
(** Inverse of {!save_acc}.  @raise Bin.Corrupt on malformed input. *)

(** Minimal JSON tree with a printer and parser — the interchange format
    of [bench --json], [straightsim -stats-json], and
    [scripts/bench_gate].  No external dependency. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : ?indent:bool -> t -> string
  (** [indent] defaults to [true] (pretty-printed, trailing newline). *)

  exception Parse_error of string

  val of_string : string -> t
  (** @raise Parse_error on malformed input. *)

  val member : string -> t -> t option
  (** Field lookup on [Obj]; [None] otherwise. *)

  val get_float : t option -> float option
  (** Numeric coercion ([Int] or [Float]). *)

  val get_int : t option -> int option
  val get_string : t option -> string option
  val get_list : t option -> t list option
end

val cpi_to_json : cpi_stack -> Json.t
