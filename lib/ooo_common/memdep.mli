(** Memory-dependence predictor: a PC-indexed conflict table in the spirit
    of store sets, trained on memory-order violations (Section V-A).  A
    load whose PC has the conflict bit waits for all older store
    addresses; otherwise it speculates past unresolved stores. *)

type t = {
  table : Bytes.t;
  mask : int;
  mutable violations : int;
}

val create : ?entries:int -> unit -> t

val predict_conflict : t -> int -> bool
(** Should the load at this PC wait for older unresolved stores? *)

val train_violation : t -> int -> unit
(** A violation was detected: the load at this PC must wait next time. *)

val save : Buffer.t -> t -> unit
(** Serialize the conflict table and the violation counter. *)

val load : Bin.reader -> t -> unit
(** Inverse of {!save} into a table of the same size.
    @raise Bin.Corrupt on malformed input or a size mismatch. *)
