(* Branch direction predictors: gshare (Table I: 10-bit global history,
   32 K entries) and an 8-component TAGE (Section VI-A, Fig. 14), plus a
   return-address stack.  Direct-jump/branch targets are assumed to hit a
   perfect BTB, as in most academic simulators; returns are predicted by
   the RAS. *)

type t = {
  predict : int -> bool;          (* pc -> taken? *)
  update : int -> bool -> unit;   (* pc -> actual outcome *)
  save : Buffer.t -> unit;        (* serialize tables + history *)
  load : Bin.reader -> unit;      (* inverse, into the same geometry *)
}

(* ---------- gshare ---------- *)

let gshare ?(history_bits = 10) ?(entries = 32768) () : t =
  let table = Bytes.make entries '\002' (* 2-bit counters, init weakly taken *) in
  let history = ref 0 in
  let index pc =
    ((pc lsr 2) lxor (!history lsl (14 - history_bits))) land (entries - 1)
  in
  let predict pc = Char.code (Bytes.get table (index pc)) >= 2 in
  let update pc taken =
    let i = index pc in
    let c = Char.code (Bytes.get table i) in
    let c' = if taken then min 3 (c + 1) else max 0 (c - 1) in
    Bytes.set table i (Char.chr c');
    history := ((!history lsl 1) lor (if taken then 1 else 0))
               land ((1 lsl history_bits) - 1)
  in
  let save b =
    Bin.w_bytes b table;
    Bin.w_int b !history
  in
  let load r =
    Bin.r_bytes_into r table;
    history := Bin.r_int r
  in
  { predict; update; save; load }

(* ---------- TAGE ---------- *)

(* A compact TAGE with a bimodal base and 7 tagged components with
   geometric history lengths (8 components total, as "8-component
   CBP-TAGE").  Counters are 3 bits, tags 11 bits, usefulness 2 bits. *)

module Tage = struct
  type entry = { mutable tag : int; mutable ctr : int; mutable useful : int }

  type component = {
    entries : entry array;
    hist_len : int;
    index_of : int -> int -> int;   (* pc -> folded history -> index *)
    tag_of : int -> int -> int;
  }

  type state = {
    bimodal : Bytes.t;
    comps : component array;
    mutable ghist : int;            (* 64-bit global history (low bits) *)
    mutable tick : int;
  }

  let log_entries = 10
  let n_tagged = 7

  let fold hist len bits =
    (* fold [len] history bits into [bits] bits *)
    let len = min len 62 in
    let masked = hist land ((1 lsl len) - 1) in
    let rec go acc h =
      if h = 0 then acc else go (acc lxor (h land ((1 lsl bits) - 1))) (h lsr bits)
    in
    go 0 masked

  let create () =
    let hist_lens = [| 4; 8; 16; 24; 32; 44; 60 |] in
    let comps =
      Array.map
        (fun hl ->
           let entries =
             Array.init (1 lsl log_entries) (fun _ ->
                 { tag = 0; ctr = 0; useful = 0 })
           in
           { entries;
             hist_len = hl;
             index_of =
               (fun pc h ->
                  ((pc lsr 2) lxor fold h hl log_entries)
                  land ((1 lsl log_entries) - 1));
             tag_of =
               (fun pc h ->
                  ((pc lsr 2) lxor fold h hl 11 lxor (fold h hl 10 lsl 1))
                  land 0x7FF) })
        hist_lens
    in
    { bimodal = Bytes.make 16384 '\002'; comps; ghist = 0; tick = 0 }

  let bimodal_index pc = (pc lsr 2) land 16383

  (* find the longest matching component; return (component idx, entry) *)
  let lookup st pc =
    let found = ref None in
    for i = n_tagged - 1 downto 0 do
      if !found = None then begin
        let c = st.comps.(i) in
        let e = c.entries.(c.index_of pc st.ghist) in
        if e.tag = c.tag_of pc st.ghist then found := Some (i, e)
      end
    done;
    !found

  let predict st pc =
    match lookup st pc with
    | Some (_, e) -> e.ctr >= 0
    | None -> Char.code (Bytes.get st.bimodal (bimodal_index pc)) >= 2

  let update st pc taken =
    let provider = lookup st pc in
    let pred =
      match provider with
      | Some (_, e) -> e.ctr >= 0
      | None -> Char.code (Bytes.get st.bimodal (bimodal_index pc)) >= 2
    in
    (match provider with
     | Some (_, e) ->
       e.ctr <- (if taken then min 3 (e.ctr + 1) else max (-4) (e.ctr - 1));
       if pred = taken then e.useful <- min 3 (e.useful + 1)
       else e.useful <- max 0 (e.useful - 1)
     | None ->
       let i = bimodal_index pc in
       let c = Char.code (Bytes.get st.bimodal i) in
       let c' = if taken then min 3 (c + 1) else max 0 (c - 1) in
       Bytes.set st.bimodal i (Char.chr c'));
    (* allocate a longer-history entry on a misprediction *)
    if pred <> taken then begin
      let start = match provider with Some (i, _) -> i + 1 | None -> 0 in
      let allocated = ref false in
      for i = start to n_tagged - 1 do
        if not !allocated then begin
          let c = st.comps.(i) in
          let e = c.entries.(c.index_of pc st.ghist) in
          if e.useful = 0 then begin
            e.tag <- c.tag_of pc st.ghist;
            e.ctr <- (if taken then 0 else -1);
            allocated := true
          end
        end
      done;
      (* periodically age usefulness so allocation cannot starve *)
      st.tick <- st.tick + 1;
      if st.tick land 1023 = 0 then
        Array.iter
          (fun c ->
             Array.iter (fun e -> e.useful <- max 0 (e.useful - 1)) c.entries)
          st.comps
    end;
    st.ghist <- ((st.ghist lsl 1) lor (if taken then 1 else 0))
                land ((1 lsl 62) - 1)

  let save b st =
    Bin.w_bytes b st.bimodal;
    Array.iter
      (fun c ->
         Array.iter
           (fun e ->
              Bin.w_int b e.tag;
              Bin.w_int b e.ctr;
              Bin.w_int b e.useful)
           c.entries)
      st.comps;
    Bin.w_int b st.ghist;
    Bin.w_int b st.tick

  let load r st =
    Bin.r_bytes_into r st.bimodal;
    Array.iter
      (fun c ->
         Array.iter
           (fun e ->
              e.tag <- Bin.r_int r;
              e.ctr <- Bin.r_int r;
              e.useful <- Bin.r_int r)
           c.entries)
      st.comps;
    st.ghist <- Bin.r_int r;
    st.tick <- Bin.r_int r
end

let tage () : t =
  let st = Tage.create () in
  { predict = (fun pc -> Tage.predict st pc);
    update = (fun pc taken -> Tage.update st pc taken);
    save = (fun b -> Tage.save b st);
    load = (fun r -> Tage.load r st) }

let make = function
  | Params.Gshare -> gshare ()
  | Params.Tage -> tage ()

(* ---------- return address stack ---------- *)

module Ras = struct
  type t = { stack : int array; mutable top : int }

  let create ?(depth = 16) () = { stack = Array.make depth 0; top = 0 }

  let push t addr =
    t.stack.(t.top mod Array.length t.stack) <- addr;
    t.top <- t.top + 1

  let pop t =
    if t.top = 0 then None
    else begin
      t.top <- t.top - 1;
      Some t.stack.(t.top mod Array.length t.stack)
    end

  (* recovery: snapshot/restore the top-of-stack pointer *)
  let save t = t.top
  let restore t top = t.top <- top

  (* checkpointing: the whole stack, not just the pointer *)
  let save_full b t =
    Bin.w_int_array b t.stack;
    Bin.w_int b t.top

  let load_full r t =
    Bin.r_int_array_into r t.stack;
    t.top <- Bin.r_int r
end
