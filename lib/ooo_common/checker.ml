(* Lockstep golden-model checker: validates commit-stream invariants
   against the ISS trace and reports divergence as a structured
   Diag.Error instead of a crash.  See the interface for the invariant
   list. *)

module Trace = Iss.Trace

type t = {
  trace : Trace.uop array;
  rename : Params.rename_model;
  max_dist : int option;
  phys_regs : int option;          (* RMT models only *)
  mutable last_trace_idx : int;    (* last correct-path index committed *)
  mutable last_seq : int;
  mutable last_cycle : int;
  mutable checked : int;
}

let create ?max_dist ~rename ~trace () =
  let phys_regs =
    match rename with
    | Params.Rmt { phys_regs } | Params.Rmt_checkpoint { phys_regs; _ } ->
      Some phys_regs
    | Params.Rp -> None
  in
  { trace; rename;
    max_dist = (match rename with Params.Rp -> max_dist | _ -> None);
    phys_regs;
    last_trace_idx = -1;
    last_seq = -1;
    last_cycle = 0;
    checked = 0 }

let fu_name = function
  | Trace.FU_alu -> "alu" | Trace.FU_mul -> "mul" | Trace.FU_div -> "div"
  | Trace.FU_branch -> "br" | Trace.FU_load -> "ld" | Trace.FU_store -> "st"

let diverge t ~invariant ~cycle ~seq ~trace_idx fmt =
  Format.kasprintf
    (fun msg ->
       raise
         (Diag.Error
            (Diag.make
               ~context:
                 [ ("invariant", invariant);
                   ("cycle", string_of_int cycle);
                   ("seq", string_of_int seq);
                   ("trace_idx", string_of_int trace_idx);
                   ("last_trace_idx", string_of_int t.last_trace_idx);
                   ("commits_checked", string_of_int t.checked) ]
               Diag.Checker_divergence msg)))
    fmt

let on_commit t ~cycle ~seq ~trace_idx ~wrong_path ~free_regs uop =
  let fail invariant fmt = diverge t ~invariant ~cycle ~seq ~trace_idx fmt in
  (* ROB FIFO discipline: seq strictly increasing, cycle nondecreasing *)
  if seq <= t.last_seq then
    fail "rob-fifo" "commit seq %d not younger than previous %d" seq t.last_seq;
  if cycle < t.last_cycle then
    fail "commit-cycle-monotone" "commit at cycle %d after cycle %d" cycle
      t.last_cycle;
  if wrong_path then begin
    if trace_idx >= 0 then
      fail "wrong-path-untraced"
        "wrong-path commit carries trace index %d" trace_idx
  end
  else begin
    (* program-order, exactly-once retirement *)
    if trace_idx <> t.last_trace_idx + 1 then
      fail "program-order"
        "committed trace index %d, expected %d" trace_idx
        (t.last_trace_idx + 1);
    if trace_idx < 0 || trace_idx >= Array.length t.trace then
      fail "trace-bounds" "trace index %d outside [0, %d)" trace_idx
        (Array.length t.trace);
    (* golden lockstep: the retired uop is the golden trace entry *)
    let g = t.trace.(trace_idx) in
    if uop.Trace.pc <> g.Trace.pc then
      fail "pc-lockstep" "retired pc 0x%x, golden model has 0x%x"
        uop.Trace.pc g.Trace.pc;
    if uop.Trace.fu <> g.Trace.fu then
      fail "fu-lockstep" "retired fu %s, golden model has %s"
        (fu_name uop.Trace.fu) (fu_name g.Trace.fu);
    (match t.rename with
     | Params.Rp ->
       (* STRAIGHT: write-once (every instruction produces exactly one
          fresh register) and the bounded distance window *)
       if not uop.Trace.has_dest then
         fail "write-once"
           "STRAIGHT uop at 0x%x retires without a destination" uop.Trace.pc;
       if Array.length uop.Trace.srcs_reg <> 0 then
         fail "isa-shape" "STRAIGHT uop at 0x%x carries register operands"
           uop.Trace.pc;
       (match t.max_dist with
        | None -> ()
        | Some md ->
          Array.iter
            (fun d ->
               if d < 1 || d > md then
                 fail "max-dist"
                   "source distance %d at 0x%x outside [1, %d]" d
                   uop.Trace.pc md)
            uop.Trace.srcs_dist)
     | Params.Rmt _ | Params.Rmt_checkpoint _ ->
       if Array.length uop.Trace.srcs_dist <> 0 then
         fail "isa-shape" "RISC-V uop at 0x%x carries distance operands"
           uop.Trace.pc;
       if uop.Trace.dest_reg < 0 || uop.Trace.dest_reg > 31 then
         fail "rmt-range" "destination register x%d out of range"
           uop.Trace.dest_reg;
       if uop.Trace.has_dest <> (uop.Trace.dest_reg <> 0) then
         fail "rmt-dest" "has_dest inconsistent with dest x%d at 0x%x"
           uop.Trace.dest_reg uop.Trace.pc);
    t.last_trace_idx <- trace_idx
  end;
  (* free-list accounting is global: wrong-path drains release too *)
  (match t.phys_regs with
   | Some phys ->
     if free_regs < 0 || free_regs > phys - 32 then
       fail "free-list"
         "free physical registers %d outside [0, %d]" free_regs (phys - 32)
   | None -> ());
  t.last_seq <- seq;
  t.last_cycle <- cycle;
  t.checked <- t.checked + 1

let on_finish t ~cycles ~committed ~free_regs =
  let n = Array.length t.trace in
  let fail invariant fmt =
    diverge t ~invariant ~cycle:cycles ~seq:t.last_seq
      ~trace_idx:t.last_trace_idx fmt
  in
  if committed <> n then
    fail "exactly-once" "committed %d instructions, trace has %d" committed n;
  if t.last_trace_idx <> n - 1 then
    fail "exactly-once" "last committed trace index %d, expected %d"
      t.last_trace_idx (n - 1);
  match t.phys_regs with
  | Some phys ->
    if free_regs <> phys - 32 then
      fail "free-list"
        "free list not whole after drain: %d free, expected %d (leak or \
         double free)" free_regs (phys - 32)
  | None -> ()

let commits_checked t = t.checked

(* Checkpointing: the trace and configuration are rebuilt on restore;
   only the lockstep cursor travels. *)
let save b t =
  Bin.w_int b t.last_trace_idx;
  Bin.w_int b t.last_seq;
  Bin.w_int b t.last_cycle;
  Bin.w_int b t.checked

let load r t =
  t.last_trace_idx <- Bin.r_int r;
  t.last_seq <- Bin.r_int r;
  t.last_cycle <- Bin.r_int r;
  t.checked <- Bin.r_int r
