(** Compact binary codec shared by the snapshot machinery.

    Writers append to a [Buffer.t]; readers consume a string through a
    mutable cursor and raise {!Corrupt} on any malformed input (short
    reads, overlong varints, bad tags), so callers can translate every
    decoding failure into one structured diagnostic instead of a crash.

    Integers are LEB128-encoded over their unsigned 64-bit image, so the
    full OCaml [int] range (negatives included) round-trips exactly and
    typical small counters cost one byte. *)

exception Corrupt of string

type reader = { data : string; mutable pos : int }

val reader : ?pos:int -> string -> reader

val remaining : reader -> int

(* writers *)
val w_int : Buffer.t -> int -> unit
val w_i64 : Buffer.t -> int64 -> unit
val w_bool : Buffer.t -> bool -> unit
val w_string : Buffer.t -> string -> unit
val w_bytes : Buffer.t -> Bytes.t -> unit
val w_int_array : Buffer.t -> int array -> unit
val w_list : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit

(* readers (exact inverses; raise {!Corrupt} on malformed input) *)
val r_int : reader -> int
val r_i64 : reader -> int64
val r_bool : reader -> bool
val r_string : reader -> string
val r_bytes : reader -> Bytes.t
val r_int_array : reader -> int array
val r_list : reader -> (reader -> 'a) -> 'a list

val r_int_array_into : reader -> int array -> unit
(** Read an int array and blit it into an existing array of the same
    length.  @raise Corrupt on a length mismatch. *)

val r_bytes_into : reader -> Bytes.t -> unit
(** Same for a byte buffer. *)

val expect_end : reader -> unit
(** @raise Corrupt unless the cursor consumed the whole input. *)

val crc32 : string -> int
(** CRC-32 (IEEE 802.3 polynomial) of the whole string, as a
    nonnegative int. *)
