(* Set-associative caches with LRU replacement, a three-level hierarchy
   (Table I), and a next-line stream prefetcher on the data side
   (Section V-A). *)

type cache = {
  sets : int;
  ways : int;
  line_shift : int;
  tags : int array;        (* sets * ways; -1 = invalid *)
  lru : int array;         (* per line: last access stamp *)
  hit_latency : int;
  mutable accesses : int;
  mutable misses : int;
  mutable stamp : int;
}

let create (p : Params.cache_params) : cache =
  let lines = p.size_bytes / p.line_bytes in
  let sets = lines / p.ways in
  let line_shift =
    let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
    log2 p.line_bytes
  in
  { sets;
    ways = p.ways;
    line_shift;
    tags = Array.make lines (-1);
    lru = Array.make lines 0;
    hit_latency = p.hit_latency;
    accesses = 0;
    misses = 0;
    stamp = 0 }

(* [touch c addr] looks up and fills on miss; returns [true] on hit. *)
let touch (c : cache) addr : bool =
  c.stamp <- c.stamp + 1;
  c.accesses <- c.accesses + 1;
  let line = addr lsr c.line_shift in
  let set = line mod c.sets in
  let tag = line / c.sets in
  let base = set * c.ways in
  let hit = ref false in
  for w = 0 to c.ways - 1 do
    if c.tags.(base + w) = tag then begin
      hit := true;
      c.lru.(base + w) <- c.stamp
    end
  done;
  if not !hit then begin
    c.misses <- c.misses + 1;
    (* evict LRU way *)
    let victim = ref base in
    for w = 1 to c.ways - 1 do
      if c.lru.(base + w) < c.lru.(!victim) then victim := base + w
    done;
    c.tags.(!victim) <- tag;
    c.lru.(!victim) <- c.stamp
  end;
  !hit

(* silent fill (prefetch): install without counting an access *)
let fill (c : cache) addr : unit =
  c.stamp <- c.stamp + 1;
  let line = addr lsr c.line_shift in
  let set = line mod c.sets in
  let tag = line / c.sets in
  let base = set * c.ways in
  let present = ref false in
  for w = 0 to c.ways - 1 do
    if c.tags.(base + w) = tag then present := true
  done;
  if not !present then begin
    let victim = ref base in
    for w = 1 to c.ways - 1 do
      if c.lru.(base + w) < c.lru.(!victim) then victim := base + w
    done;
    c.tags.(!victim) <- tag;
    c.lru.(!victim) <- c.stamp
  end

(* [corrupt_tag c ~victim ~flip] models a transient fault in the tag
   array: the tag of line [victim mod lines] is xored with [flip].  The
   model stores no data, so the effect is timing-only — the corrupted
   entry stops matching its resident line (an induced miss) or starts
   matching a different one (a false hit with the wrong latency). *)
let corrupt_tag (c : cache) ~victim ~flip : unit =
  let lines = Array.length c.tags in
  let i = ((victim mod lines) + lines) mod lines in
  if c.tags.(i) >= 0 then
    c.tags.(i) <- c.tags.(i) lxor (max 1 (flip land 0xFF))

(* ---------- snapshot ---------- *)

let save_cache b (c : cache) =
  Bin.w_int_array b c.tags;
  Bin.w_int_array b c.lru;
  Bin.w_int b c.accesses;
  Bin.w_int b c.misses;
  Bin.w_int b c.stamp

let load_cache r (c : cache) =
  Bin.r_int_array_into r c.tags;
  Bin.r_int_array_into r c.lru;
  c.accesses <- Bin.r_int r;
  c.misses <- Bin.r_int r;
  c.stamp <- Bin.r_int r

(* ---------- hierarchy ---------- *)

type hierarchy = {
  l1i : cache;
  l1d : cache;
  l2 : cache;
  l3 : cache option;
  memory_latency : int;
  prefetch_degree : int;
  mutable prefetches : int;
}

let create_hierarchy (p : Params.t) : hierarchy =
  { l1i = create p.l1i;
    l1d = create p.l1d;
    l2 = create p.l2;
    l3 = Option.map create p.l3;
    memory_latency = p.memory_latency;
    prefetch_degree = 2;
    prefetches = 0 }

let save_hierarchy b (h : hierarchy) =
  save_cache b h.l1i;
  save_cache b h.l1d;
  save_cache b h.l2;
  (match h.l3 with
   | None -> Bin.w_bool b false
   | Some l3 -> Bin.w_bool b true; save_cache b l3);
  Bin.w_int b h.prefetches

let load_hierarchy r (h : hierarchy) =
  load_cache r h.l1i;
  load_cache r h.l1d;
  load_cache r h.l2;
  (match Bin.r_bool r, h.l3 with
   | true, Some l3 -> load_cache r l3
   | false, None -> ()
   | _ -> raise (Bin.Corrupt "L3 presence does not match the configuration"));
  h.prefetches <- Bin.r_int r

(* [access_below h addr] walks L2/L3/memory and returns the additional
   latency beyond L1. *)
let access_below h addr =
  if touch h.l2 addr then h.l2.hit_latency
  else
    match h.l3 with
    | Some l3 ->
      if touch l3 addr then h.l2.hit_latency + l3.hit_latency
      else h.l2.hit_latency + l3.hit_latency + h.memory_latency
    | None -> h.l2.hit_latency + h.memory_latency

(* [data_access h addr] returns total load-to-use latency for a data access
   and trains the stream prefetcher on L1D misses. *)
let data_access h addr : int =
  if touch h.l1d addr then h.l1d.hit_latency
  else begin
    let extra = access_below h addr in
    (* next-line stream prefetch into L1D and L2 *)
    let line_bytes = 1 lsl h.l1d.line_shift in
    for k = 1 to h.prefetch_degree do
      let a = addr + (k * line_bytes) in
      fill h.l1d a;
      fill h.l2 a;
      h.prefetches <- h.prefetches + 1
    done;
    h.l1d.hit_latency + extra
  end

(* [inst_access h pc] returns instruction-fetch latency for the line at
   [pc] (L1I hit latency is pipelined away; only the miss penalty stalls
   the front end). *)
let inst_access h pc : int =
  if touch h.l1i pc then 0
  else begin
    let extra = access_below h pc in
    let line_bytes = 1 lsl h.l1i.line_shift in
    fill h.l1i (pc + line_bytes);   (* next-line instruction prefetch *)
    extra
  end

(* ---------- functional warming ----------

   Warming replays the ISS retirement stream through the same lookup/
   replacement path as detailed simulation so the tag and LRU state ends
   up exactly where a detailed run would leave it, but the latencies are
   discarded: during fast-forward nothing is timed.  [reset_stats] then
   zeroes the counters so warming never pollutes measured miss rates
   (LRU stamps are kept — they are ordering state, not statistics). *)

let warm_inst h pc =
  if not (touch h.l1i pc) then begin
    ignore (access_below h pc);
    let line_bytes = 1 lsl h.l1i.line_shift in
    fill h.l1i (pc + line_bytes)
  end

let warm_data h addr =
  if not (touch h.l1d addr) then begin
    ignore (access_below h addr);
    let line_bytes = 1 lsl h.l1d.line_shift in
    for k = 1 to h.prefetch_degree do
      let a = addr + (k * line_bytes) in
      fill h.l1d a;
      fill h.l2 a
    done
  end

let reset_cache_stats (c : cache) =
  c.accesses <- 0;
  c.misses <- 0

let reset_stats (h : hierarchy) =
  reset_cache_stats h.l1i;
  reset_cache_stats h.l1d;
  reset_cache_stats h.l2;
  Option.iter reset_cache_stats h.l3;
  h.prefetches <- 0
