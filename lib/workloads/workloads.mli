(** Benchmark programs in MiniC.

    [dhrystone] and [coremark] re-implement the algorithmic structure of
    the paper's two benchmarks (Dhrystone 2.1 and CoreMark, Section V-A)
    in our C subset — see DESIGN.md "Substitutions".  The microkernels
    serve the tests, the examples, and the ablations. *)

type t = {
  name : string;
  source : string;        (** MiniC source text *)
  iterations : int;       (** iteration count baked into the source *)
}

val dhrystone : ?iterations:int -> unit -> t
(** Record assignment, parameter passing, 30-char string comparison,
    Proc1..Proc8/Func1..Func3-style procedures. *)

val coremark : ?iterations:int -> unit -> t
(** CoreMark's three kernels — linked-list find/reverse, 8x8 matrix
    multiply with bit manipulation, a token-classifying state machine —
    chained through a CRC-16. *)

val fib : ?n:int -> unit -> t
(** Recursive Fibonacci: deep call tree. *)

val iota : ?n:int -> unit -> t
(** The paper's Fig. 10 example: fill an array with 0..n-1 through a
    pointer parameter. *)

val sort : ?n:int -> unit -> t
(** Bubble sort: nested loops, data-dependent swaps. *)

val quicksort : ?n:int -> unit -> t
(** Recursive quicksort: stresses the calling convention. *)

val pointer_chase : ?nodes:int -> ?hops:int -> unit -> t
(** Large-stride pointer chasing: defeats the stream prefetcher and
    exercises the cache hierarchy. *)

val stream : ?iterations:int -> unit -> t
(** STREAM-like phased loop kernel (copy / scale / reduce / triad /
    strided gather) whose CPI varies phase to phase — the long-workload
    showcase for interval sampling.  One outer iteration retires
    ~100k instructions; the default 100 iterations reach the
    ~10M-instruction scale that only completes under [-sample]. *)

val wasm_sieve : ?limit:int -> unit -> t
(** WAT source: sieve of Eratosthenes with composite flags in linear
    memory; prints the prime count.  Exercises the WASM front-end's
    loads/stores and nested structured control. *)

val wasm_crc32 : ?nbytes:int -> unit -> t
(** WAT source: bitwise CRC-32 over LCG bytes staged in linear memory;
    globals, an inner helper call, and unsigned shifts. *)

val wasm_expr : ?iters:int -> unit -> t
(** WAT source: deep-operand-stack expression kernel — 16 terms live
    simultaneously each round, the distance-pressure profile that
    motivated the WASM front-end (DESIGN.md §15). *)

val all_wasm : unit -> t list
(** The three WASM kernels. *)

val all_benchmarks : unit -> t list
(** The two paper benchmarks. *)
