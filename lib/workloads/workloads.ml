(* Benchmark programs, written in MiniC (see DESIGN.md substitution notes:
   these re-implement the algorithmic structure of Dhrystone 2.1 and
   CoreMark, the two benchmarks of Section V-A, in our C subset).

   Each workload is a function of the iteration count so the benches can
   trade simulation time against measurement stability; results are
   reported as cycles per iteration, matching the paper's use of relative
   performance. *)

type t = {
  name : string;
  source : string;        (* MiniC source text *)
  iterations : int;       (* default iteration count used by the benches *)
}

(* ---------- Dhrystone-like ----------

   Mirrors Dhrystone 2.1's structure: a record type (modelled as a 4-word
   array slice), Proc1..Proc8-style procedures doing record assignment,
   parameter passing, string comparison over 30-char buffers, and the
   characteristic mix of assignments / control / procedure calls. *)

let dhrystone_source n_runs =
  Printf.sprintf
    {|
// Dhrystone-like integer benchmark (records, strings, calls).
int glob_arr1[50];
int glob_arr2[50];
int record_a[8];    // { discr, enum, int_comp, str30 ptr-ish ... }
int record_b[8];
int str1[30];
int str2[30];
int int_glob = 0;
int bool_glob = 0;
int char1_glob = 0;
int char2_glob = 0;
int checksum = 0;

int func1(int c1, int c2) {
  int c = c1;
  if (c != c2) return 0;
  char1_glob = c;
  return 1;
}

int func2(int *s1, int *s2) {
  int i = 1;
  while (i < 2) {
    if (func1(s1[i], s2[i + 1])) { i += 1; }
    else { i += 3; }
  }
  int cmp = 0;
  for (int k = 0; k < 30; k++) {
    if (s1[k] != s2[k]) { cmp = s1[k] - s2[k]; break; }
  }
  if (cmp > 0) { int_glob = i; return 1; }
  return 0;
}

int func3(int enum_par) {
  if (enum_par == 2) return 1;
  return 0;
}

int proc8(int *a1, int *a2, int v1, int v2) {
  int loc = v1 + 5;
  a1[loc] = v2;
  a1[loc + 1] = a1[loc];
  a1[loc + 30] = loc;
  for (int i = loc; i <= loc + 1; i++) a2[loc + i - loc] = loc;
  a2[loc + 20] = a1[loc];
  int_glob = 5;
  return 0;
}

int proc7(int v1, int v2) { return v1 + 2 + v2; }

int proc6(int enum_par) {
  int out = enum_par;
  if (!func3(enum_par)) out = 3;
  if (enum_par == 0) out = 0;
  if (enum_par == 1) { if (int_glob > 100) out = 0; else out = 3; }
  if (enum_par == 2) out = 1;
  if (enum_par == 4) out = 2;
  return out;
}

int proc5() { char1_glob = 'A'; bool_glob = 0; return 0; }
int proc4() {
  int b = char1_glob == 'A';
  bool_glob = b | bool_glob;
  char2_glob = 'B';
  return 0;
}

int proc3(int *rec) {
  if (rec[0] != 0) rec[4] = record_a[4];
  rec[3] = proc7(10, int_glob);
  return 0;
}

int proc2(int in) {
  int loc = in + 10;
  int done = 0;
  while (!done) {
    if (char1_glob == 'A') {
      loc -= 1;
      in = loc - int_glob;
      done = 1;
    }
  }
  return in;
}

int proc1(int *rec, int *next) {
  for (int i = 0; i < 8; i++) next[i] = record_a[i];
  rec[2] = 5;
  next[2] = rec[2];
  next[1] = rec[1];
  proc3(next);
  if (next[0] == 0) {
    next[2] = 6;
    next[1] = proc6(rec[1]);
    next[3] = record_a[3];
    next[2] = proc7(next[2], 10);
  }
  else {
    for (int i = 0; i < 8; i++) rec[i] = next[i];
  }
  return 0;
}

int main() {
  // initialization, as dhrystone's main
  record_a[0] = 0; record_a[1] = 2; record_a[2] = 40;
  for (int i = 0; i < 30; i++) {
    str1[i] = 'D' + (i %% 20);
    str2[i] = 'D' + (i %% 20);
  }
  str2[5] = 'X';
  for (int run = 0; run < %d; run++) {
    proc5();
    proc4();
    int int1 = 2;
    int int2 = 3;
    int int3 = 0;
    int enum_loc = 1;
    bool_glob = !func2(str1, str2);
    while (int1 < int2) {
      int3 = 5 * int1 - int2;
      int3 = proc7(int1, int3);
      int1 += 1;
    }
    proc8(glob_arr1, glob_arr2, int1, int3);
    proc1(record_a, record_b);
    for (int ci = 'A'; ci <= char2_glob; ci++) {
      if (enum_loc == func1(ci, 'C')) enum_loc = proc6(0);
    }
    int3 = int2 * int1;
    int2 = int3 / int1;
    int2 = 7 * (int3 - int2) - int1;
    int1 = proc2(int1);
    checksum += int1 + int2 + int3 + int_glob + bool_glob;
  }
  putint(checksum);
  return 0;
}
|}
    n_runs

(* ---------- CoreMark-like ----------

   CoreMark's three kernels: linked-list processing (here with index-linked
   nodes), matrix multiply with bit manipulation, and a state machine over
   an input string, all tied together by a CRC-16. *)

let coremark_source n_runs =
  Printf.sprintf
    {|
// CoreMark-like benchmark: list / matrix / state machine + crc16.
int list_next[64];
int list_data[64];
int matrix_a[64];
int matrix_b[64];
int matrix_c[64];
int fsm_input[48];

int crc16(int value, int crc) {
  for (int k = 0; k < 16; k++) {
    int bit = (value >> k) & 1;
    int msb = (crc >> 15) & 1;
    crc = (crc << 1) & 0xFFFF;
    crc = crc | bit;
    if (msb) crc = crc ^ 0x1021;
  }
  return crc;
}

// --- list kernel: find, reverse, re-find ---
int list_find(int head, int key) {
  int cur = head;
  while (cur >= 0) {
    if (list_data[cur] == key) return cur;
    cur = list_next[cur];
  }
  return -1;
}

int list_reverse(int head) {
  int prev = 0 - 1;
  int cur = head;
  while (cur >= 0) {
    int nxt = list_next[cur];
    list_next[cur] = prev;
    prev = cur;
    cur = nxt;
  }
  return prev;
}

int bench_list(int seed) {
  int head = 0;
  for (int i = 0; i < 63; i++) list_next[i] = i + 1;
  list_next[63] = -1;
  for (int i = 0; i < 64; i++) list_data[i] = (i * seed + 3) %% 97;
  int crc = 0;
  for (int k = 0; k < 8; k++) {
    int idx = list_find(head, (k * seed) %% 97);
    crc = crc16(idx, crc);
  }
  head = list_reverse(head);
  head = list_reverse(head);
  int cur = head;
  while (cur >= 0) {
    crc = crc16(list_data[cur], crc);
    cur = list_next[cur];
  }
  return crc;
}

// --- matrix kernel: mul, add constant, bit ops ---
int bench_matrix(int seed) {
  for (int i = 0; i < 64; i++) {
    matrix_a[i] = (i * seed) %% 31 + 1;
    matrix_b[i] = (i + seed) %% 29 + 1;
  }
  // C = A * B (8x8)
  for (int i = 0; i < 8; i++)
    for (int j = 0; j < 8; j++) {
      int s = 0;
      for (int k = 0; k < 8; k++) s += matrix_a[i * 8 + k] * matrix_b[k * 8 + j];
      matrix_c[i * 8 + j] = s;
    }
  int crc = 0;
  for (int i = 0; i < 64; i++) {
    matrix_c[i] = (matrix_c[i] + seed) ^ (matrix_c[i] >> 3);
    crc = crc16(matrix_c[i] & 0xFFFF, crc);
  }
  return crc;
}

// --- state machine kernel: scan "digits/operators" classifying tokens ---
int bench_fsm(int seed) {
  for (int i = 0; i < 48; i++) {
    int r = (i * seed + 7) %% 10;
    if (r < 5) fsm_input[i] = '0' + r;
    else if (r < 7) fsm_input[i] = '+';
    else if (r < 8) fsm_input[i] = '.';
    else fsm_input[i] = ',';
  }
  int state = 0;     // 0=start 1=int 2=float 3=sep 4=invalid
  int counts0 = 0; int counts1 = 0; int counts2 = 0;
  int transitions = 0;
  for (int i = 0; i < 48; i++) {
    int c = fsm_input[i];
    int old = state;
    if (state == 0) {
      if (c >= '0' && c <= '9') state = 1;
      else if (c == '+') state = 3;
      else if (c == '.') state = 2;
      else state = 4;
    }
    else if (state == 1) {
      if (c >= '0' && c <= '9') { counts1 += 1; }
      else if (c == '.') state = 2;
      else state = 0;
    }
    else if (state == 2) {
      if (c >= '0' && c <= '9') { counts2 += 1; }
      else state = 0;
    }
    else { state = 0; counts0 += 1; }
    if (old != state) transitions += 1;
  }
  int crc = crc16(counts0, 0);
  crc = crc16(counts1, crc);
  crc = crc16(counts2, crc);
  crc = crc16(transitions, crc);
  return crc;
}

int main() {
  int crc = 0;
  for (int run = 0; run < %d; run++) {
    int seed = (run * 13 + 7) %% 251 + 1;
    crc = crc16(bench_list(seed), crc);
    crc = crc16(bench_matrix(seed), crc);
    crc = crc16(bench_fsm(seed), crc);
  }
  putint(crc);
  return 0;
}
|}
    n_runs

(* ---------- microkernels (tests / examples / ablations) ---------- *)

let fib_source n =
  Printf.sprintf
    {| int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
       int main() { putint(fib(%d)); } |}
    n

let iota_source n =
  Printf.sprintf
    {|
int arr[%d];
int iota(int *a, int n) {
  int i;
  for (i = 0; i < n; i++) a[i] = i;
  return 0;
}
int main() {
  iota(arr, %d);
  int s = 0;
  for (int i = 0; i < %d; i++) s += arr[i];
  putint(s);
}
|}
    n n n

let sort_source n =
  Printf.sprintf
    {|
int data[%d];
int main() {
  for (int i = 0; i < %d; i++) data[i] = (i * 7919 + 13) %% 1000;
  for (int i = 0; i < %d; i++)
    for (int j = 0; j + 1 < %d - i; j++)
      if (data[j] > data[j + 1]) {
        int t = data[j];
        data[j] = data[j + 1];
        data[j + 1] = t;
      }
  int s = 0;
  for (int i = 0; i < %d; i++) s += data[i] * i;
  putint(s);
}
|}
    n n n n n

(* recursive quicksort: deep call tree, stresses the calling convention *)
let quicksort_source n =
  Printf.sprintf
    {|
int data[%d];
int partition(int lo, int hi) {
  int pivot = data[hi];
  int i = lo - 1;
  for (int j = lo; j < hi; j++) {
    if (data[j] < pivot) {
      i++;
      int t = data[i]; data[i] = data[j]; data[j] = t;
    }
  }
  int t = data[i + 1]; data[i + 1] = data[hi]; data[hi] = t;
  return i + 1;
}
int qsort(int lo, int hi) {
  if (lo < hi) {
    int p = partition(lo, hi);
    qsort(lo, p - 1);
    qsort(p + 1, hi);
  }
  return 0;
}
int main() {
  int n = %d;
  for (int i = 0; i < n; i++) data[i] = (i * 6007 + 91) %% 811;
  qsort(0, n - 1);
  int bad = 0;
  int sum = 0;
  for (int i = 1; i < n; i++) {
    if (data[i - 1] > data[i]) bad++;
    sum += data[i] * (i & 7);
  }
  putint(bad);
  putint(sum);
}
|}
    n n

(* memory-intensive pointer chase: exercises the cache hierarchy *)
let pointer_chase_source n_nodes n_hops =
  Printf.sprintf
    {|
int next[%d];
int main() {
  int n = %d;
  // a permutation with large stride to defeat the stream prefetcher
  for (int i = 0; i < n; i++) next[i] = (i + 1667) %% n;
  int p = 0;
  int sum = 0;
  for (int h = 0; h < %d; h++) { p = next[p]; sum += p; }
  putint(sum);
}
|}
    n_nodes n_nodes n_hops

(* STREAM-like phased loop kernel, sized by its outer iteration count.
   Each outer iteration runs four phases with different bottlenecks —
   copy, scale, reduce, triad (plus a strided pass that defeats the
   prefetcher) — so the CPI varies phase to phase, which is what makes
   it the interval-sampling showcase: one outer iteration retires
   ~100k instructions, so iterations=100 reaches the ~10M-instruction
   scale that only completes under -sample. *)
let stream_source n_iters =
  Printf.sprintf
    {|
int a[4096];
int b[4096];
int c[4096];
int main() {
  int n = 4096;
  for (int i = 0; i < n; i++) { a[i] = i; b[i] = 2 * i + 1; c[i] = 0; }
  int checksum = 0;
  for (int it = 0; it < %d; it++) {
    // phase 1: copy
    for (int i = 0; i < n; i++) c[i] = a[i];
    // phase 2: scale
    for (int i = 0; i < n; i++) b[i] = 3 * c[i] + it;
    // phase 3: reduce (loop-carried dependence)
    int s = 0;
    for (int i = 0; i < n; i++) s += a[i] + b[i];
    // phase 4: triad
    for (int i = 0; i < n; i++) a[i] = b[i] + 2 * c[i];
    // phase 5: strided gather (defeats the stream prefetcher)
    int p = it & 1023;
    for (int i = 0; i < n; i += 4) { p = (p + 1667) & 4095; s += a[p]; }
    checksum += s & 0xFFFF;
  }
  putint(checksum);
}
|}
    n_iters

let dhrystone ?(iterations = 300) () =
  { name = "dhrystone"; source = dhrystone_source iterations; iterations }

let coremark ?(iterations = 8) () =
  { name = "coremark"; source = coremark_source iterations; iterations }

let fib ?(n = 18) () = { name = "fib"; source = fib_source n; iterations = 1 }
let iota ?(n = 64) () = { name = "iota"; source = iota_source n; iterations = 1 }
let sort ?(n = 48) () = { name = "sort"; source = sort_source n; iterations = 1 }

let quicksort ?(n = 64) () =
  { name = "quicksort"; source = quicksort_source n; iterations = 1 }

let pointer_chase ?(nodes = 8192) ?(hops = 20000) () =
  { name = "pointer_chase";
    source = pointer_chase_source nodes hops;
    iterations = 1 }

let stream ?(iterations = 100) () =
  { name = "stream"; source = stream_source iterations; iterations }

(* ---------- WASM kernels ----------

   WAT sources exercising the stack-machine front-end (lib/wasm): the
   operand stack lowers to SSA values, so deep stacks become long live
   ranges — a distance-pressure profile MiniC code never produces. *)

let wasm_sieve_source limit =
  Printf.sprintf
    {|;; sieve of Eratosthenes over [2, %d]: composite flags live in
;; linear memory (one word per candidate), prints the prime count.
(module
  (import "env" "putint" (func $putint (param i32)))
  (memory 1)
  (func (export "main") (result i32)
    (local $i i32) (local $j i32) (local $count i32)
    (local.set $i (i32.const 2))
    (block $sieved
      (loop $outer
        (br_if $sieved
          (i32.gt_s (i32.mul (local.get $i) (local.get $i)) (i32.const %d)))
        (block $composite
          (br_if $composite (i32.load (i32.shl (local.get $i) (i32.const 2))))
          (local.set $j (i32.mul (local.get $i) (local.get $i)))
          (loop $mark
            (block $marked
              (br_if $marked (i32.gt_s (local.get $j) (i32.const %d)))
              (i32.store (i32.shl (local.get $j) (i32.const 2)) (i32.const 1))
              (local.set $j (i32.add (local.get $j) (local.get $i)))
              (br $mark))))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $outer)))
    (local.set $i (i32.const 2))
    (block $counted
      (loop $count_loop
        (br_if $counted (i32.gt_s (local.get $i) (i32.const %d)))
        (local.set $count
          (i32.add (local.get $count)
                   (i32.eqz (i32.load (i32.shl (local.get $i) (i32.const 2))))))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $count_loop)))
    (call $putint (local.get $count))
    (i32.const 0)))
|}
    limit limit limit limit

let wasm_crc32_source nbytes =
  Printf.sprintf
    {|;; bitwise CRC-32 (poly 0xEDB88320) over %d LCG-generated bytes
;; staged in linear memory; prints the final checksum.
(module
  (import "env" "putint" (func $putint (param i32)))
  (memory 1)
  (global $poly i32 (i32.const 0xEDB88320))
  (func $crc_byte (param $crc i32) (param $b i32) (result i32)
    (local $k i32)
    (local.set $crc (i32.xor (local.get $crc) (local.get $b)))
    (block $done
      (loop $bits
        (br_if $done (i32.ge_s (local.get $k) (i32.const 8)))
        (local.set $crc
          (i32.xor
            (i32.shr_u (local.get $crc) (i32.const 1))
            (i32.and
              (i32.sub (i32.const 0) (i32.and (local.get $crc) (i32.const 1)))
              (global.get $poly))))
        (local.set $k (i32.add (local.get $k) (i32.const 1)))
        (br $bits)))
    (local.get $crc))
  (func (export "main") (result i32)
    (local $i i32) (local $crc i32) (local $x i32)
    (local.set $crc (i32.const -1))
    (local.set $x (i32.const 12345))
    (block $filled
      (loop $fill
        (br_if $filled (i32.ge_s (local.get $i) (i32.const %d)))
        (local.set $x
          (i32.add (i32.mul (local.get $x) (i32.const 1103515245))
                   (i32.const 12345)))
        (i32.store (i32.shl (local.get $i) (i32.const 2))
                   (i32.and (i32.shr_u (local.get $x) (i32.const 16))
                            (i32.const 255)))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $fill)))
    (local.set $i (i32.const 0))
    (block $done
      (loop $go
        (br_if $done (i32.ge_s (local.get $i) (i32.const %d)))
        (local.set $crc
          (call $crc_byte (local.get $crc)
                (i32.load (i32.shl (local.get $i) (i32.const 2)))))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $go)))
    (call $putint (i32.xor (local.get $crc) (i32.const -1)))
    (i32.const 0)))
|}
    nbytes nbytes nbytes

let wasm_expr_source iters =
  Printf.sprintf
    {|;; deep-operand-stack expression kernel: each round pushes 16
;; independent terms before reducing them, so 16 SSA values are live
;; at once — maximal distance pressure for the STRAIGHT back end.
(module
  (import "env" "putint" (func $putint (param i32)))
  (func $round (param $x i32) (result i32)
    local.get $x i32.const 1 i32.add
    local.get $x i32.const 3 i32.mul
    local.get $x i32.const 5 i32.xor
    local.get $x i32.const 7 i32.add
    local.get $x i32.const 11 i32.mul
    local.get $x i32.const 13 i32.xor
    local.get $x i32.const 17 i32.add
    local.get $x i32.const 19 i32.mul
    local.get $x i32.const 23 i32.xor
    local.get $x i32.const 29 i32.add
    local.get $x i32.const 31 i32.mul
    local.get $x i32.const 37 i32.xor
    local.get $x i32.const 41 i32.add
    local.get $x i32.const 43 i32.mul
    local.get $x i32.const 47 i32.xor
    local.get $x i32.const 53 i32.add
    i32.add i32.xor i32.add i32.xor i32.add
    i32.xor i32.add i32.xor i32.add i32.xor
    i32.add i32.xor i32.add i32.xor i32.add)
  (func (export "main") (result i32)
    (local $i i32) (local $acc i32)
    (local.set $acc (i32.const 9))
    (block $done
      (loop $go
        (br_if $done (i32.ge_s (local.get $i) (i32.const %d)))
        (local.set $acc
          (i32.xor (local.get $acc)
                   (call $round (i32.add (local.get $acc) (local.get $i)))))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $go)))
    (call $putint (local.get $acc))
    (i32.const 0)))
|}
    iters

let wasm_sieve ?(limit = 2000) () =
  { name = "wasm_sieve"; source = wasm_sieve_source limit; iterations = 1 }

let wasm_crc32 ?(nbytes = 256) () =
  { name = "wasm_crc32"; source = wasm_crc32_source nbytes; iterations = 1 }

let wasm_expr ?(iters = 600) () =
  { name = "wasm_expr"; source = wasm_expr_source iters; iterations = 1 }

let all_wasm () = [ wasm_sieve (); wasm_crc32 (); wasm_expr () ]

let all_benchmarks () = [ dhrystone (); coremark () ]
