(* Whole-run estimate from per-interval measurements.  See
   recombine.mli for the statistics. *)

module Stats = Ooo_common.Stats
module Json = Stats.Json

type estimate = {
  intervals : int;
  measured_insns : int;
  total_insns : int;
  cpi : float;
  se : float;
  ci95 : float;
  est_cycles : float;
  stack : (string * float) list;
  host_seconds : float;
}

(* Per-bucket integer cycle sums recombined exactly like the total.
   Bucket names are the union across every interval, in first-seen
   order — taking them from the first interval alone dropped buckets
   the first interval happened to lack, and a bare [List.assoc] raised
   [Not_found] when a later interval lacked one; a missing bucket
   simply contributes zero cycles. *)
let merge_stacks ~measured_insns (stacks : (string * int) list list) :
  (string * float) list =
  let names =
    List.fold_left
      (fun acc stack ->
         List.fold_left
           (fun acc (name, _) ->
              if List.mem name acc then acc else name :: acc)
           acc stack)
      [] stacks
    |> List.rev
  in
  List.map
    (fun name ->
       let sum =
         List.fold_left
           (fun acc stack ->
              acc + Option.value ~default:0 (List.assoc_opt name stack))
           0 stacks
       in
       (name, float_of_int sum /. float_of_int measured_insns))
    names

let recombine ~total_insns (results : Interval.result list) : estimate =
  if results = [] then
    Diag.error Diag.Config_error "recombine: no interval results";
  (* deterministic order whatever the pool delivered *)
  let rs =
    List.sort
      (fun a b -> compare a.Interval.r_index b.Interval.r_index)
      results
  in
  let measured_insns =
    List.fold_left (fun acc r -> acc + r.Interval.r_len) 0 rs
  in
  if measured_insns <= 0 then
    Diag.error Diag.Config_error "recombine: zero measured instructions";
  let cycles = List.fold_left (fun acc r -> acc + r.Interval.r_cycles) 0 rs in
  let k = List.length rs in
  let cpi = float_of_int cycles /. float_of_int measured_insns in
  let se =
    if k < 2 then 0.0
    else begin
      let cpis =
        List.map
          (fun r ->
             float_of_int r.Interval.r_cycles /. float_of_int r.Interval.r_len)
          rs
      in
      let mean = List.fold_left ( +. ) 0.0 cpis /. float_of_int k in
      let var =
        List.fold_left (fun acc c -> acc +. ((c -. mean) ** 2.0)) 0.0 cpis
        /. float_of_int (k - 1)
      in
      sqrt var /. sqrt (float_of_int k)
    end
  in
  let stack =
    merge_stacks ~measured_insns
      (List.map (fun r -> Stats.cpi_to_assoc r.Interval.r_cpi) rs)
  in
  { intervals = k;
    measured_insns;
    total_insns;
    cpi;
    se;
    ci95 = 1.96 *. se;
    est_cycles = cpi *. float_of_int total_insns;
    stack;
    host_seconds =
      List.fold_left (fun acc r -> acc +. r.Interval.r_host_seconds) 0.0 rs }

let report_json ~workload ~target ~(spec : Spec.t) (e : estimate) : Json.t =
  Json.Obj
    [ ("schema", Json.Str "straight-sample/1");
      ("workload", Json.Str workload);
      ("target", Json.Str target);
      ("spec", Spec.to_json spec);
      ("intervals", Json.Int e.intervals);
      ("measured_insns", Json.Int e.measured_insns);
      ("total_insns", Json.Int e.total_insns);
      ("cpi", Json.Float e.cpi);
      ("se", Json.Float e.se);
      ("ci95", Json.Float e.ci95);
      ("est_cycles", Json.Float e.est_cycles);
      ("cpi_stack",
       Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) e.stack));
      ("host_seconds", Json.Float e.host_seconds) ]

type verdict = {
  ok : bool;
  exact_cpi : float;
  err : float;
  tolerance : float;
}

let check (e : estimate) ~exact_cycles ~floor : verdict =
  let exact_cpi = float_of_int exact_cycles /. float_of_int e.total_insns in
  let err = Float.abs (e.cpi -. exact_cpi) in
  let tolerance = Float.max e.ci95 (floor *. exact_cpi) in
  { ok = err <= tolerance; exact_cpi; err; tolerance }
