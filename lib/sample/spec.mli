(** The sampling plan's shape: how a long run is sliced.

    A run of [N] retired instructions is divided into consecutive
    intervals of [interval] instructions; every [every]-th interval is
    measured (systematic sampling — [every = 1] measures all of them).
    Each measured interval is simulated with a detailed-warmup prefix of
    [warmup] instructions whose cycles are excluded from its statistics;
    caches and predictors are additionally warmed functionally over the
    entire prefix since program start. *)

type t = {
  interval : int;  (** measured interval length, retired instructions *)
  warmup : int;    (** detailed-warmup prefix per interval *)
  every : int;     (** measure every k-th interval (systematic sampling) *)
}

exception Parse_error of string

val parse : string -> t
(** Parse the CLI syntax [interval=1M,warmup=100k\[,every=4\]].  Counts
    accept [k]/[M] decimal suffixes.  [every] defaults to 1.
    @raise Parse_error on bad syntax, a non-positive interval, a
    negative warmup, or [every < 1]. *)

val to_string : t -> string
(** Canonical [interval=..,warmup=..,every=..] rendering (exact digits,
    no suffixes) — stable for content-addressing. *)

val to_json : t -> Ooo_common.Stats.Json.t
val of_json : Ooo_common.Stats.Json.t -> t
(** @raise Parse_error on a malformed object. *)
