(* Interval-checkpoint materialization and execution.  See interval.mli
   for the one-pass warming design and the store layout. *)

module Bin = Ooo_common.Bin
module Engine = Ooo_common.Engine
module Params = Ooo_common.Params
module Stats = Ooo_common.Stats
module Json = Stats.Json
module Warm = Ooo_common.Warm
module Uop_io = Ooo_common.Uop_io
module Trace = Iss.Trace
module Exp = Straight_core.Experiment
module Sim = Snapshot.Sim
module File = Snapshot.File

type entry = {
  index : int;
  start : int;
  len : int;
  warmup : int;
  path : string;
}

type plan = {
  key : string;
  total_retired : int;
  entries : entry list;
}

type result = {
  r_index : int;
  r_start : int;
  r_len : int;
  r_warmup : int;
  r_cycles : int;
  r_warm_cycles : int;
  r_cpi : Stats.cpi_stack;
  r_host_seconds : float;
}

(* ---------- content addressing ---------- *)

let code_digest =
  let memo = ref None in
  fun () ->
    match !memo with
    | Some d -> d
    | None ->
      let d =
        try Digest.to_hex (Digest.file Sys.executable_name)
        with Sys_error _ -> "unknown-executable"
      in
      memo := Some d;
      d

let plan_key (spec : Sim.spec) (sp : Spec.t) : string =
  let manifest =
    String.concat "\n"
      [ "straight-sample-key/1";
        Params.digest spec.Sim.params;
        Exp.target_label spec.Sim.target;
        spec.Sim.workload.Workloads.name;
        string_of_int spec.Sim.workload.Workloads.iterations;
        Digest.to_hex (Digest.string spec.Sim.workload.Workloads.source);
        Spec.to_string sp;
        string_of_int spec.Sim.max_insns;
        string_of_int spec.Sim.max_dist;
        string_of_bool spec.Sim.check;
        code_digest () ]
  in
  Digest.to_hex (Digest.string manifest)

(* ---------- checkpoint files ---------- *)

let reject path fmt =
  Printf.ksprintf
    (fun reason ->
       Diag.error
         ~context:[ ("snapshot", path); ("reason", reason) ]
         Diag.Snapshot_error "cannot use interval checkpoint %s: %s" path
         reason)
    fmt

let meta_of_spec (spec : Sim.spec) ~kind ~trace_digest : File.meta =
  { File.kind;
    target = Exp.target_label spec.Sim.target;
    params_json =
      Json.to_string ~indent:false (Params.to_json spec.Sim.params);
    workload_name = spec.Sim.workload.Workloads.name;
    workload_source = spec.Sim.workload.Workloads.source;
    workload_iterations = spec.Sim.workload.Workloads.iterations;
    max_insns = spec.Sim.max_insns;
    max_dist = spec.Sim.max_dist;
    check = spec.Sim.check;
    cycle = 0;
    committed = 0;
    trace_digest;
    output = "";
    retired = 0;
    dist_histogram = [||] }

let write_checkpoint (spec : Sim.spec) ~path ~index ~start ~len ~warmup
    ~(warm_snap : string) (uops : Trace.uop array) =
  let payload = Buffer.create (65536 + (String.length warm_snap)) in
  Bin.w_string payload warm_snap;
  Bin.w_int payload (Array.length uops);
  Array.iter (Uop_io.write payload) uops;
  let kind = File.Interval { index; start; len; warmup } in
  File.save path
    (meta_of_spec spec ~kind ~trace_digest:(Trace.digest uops))
    ~payload:(Buffer.contents payload)

(* ---------- manifest ---------- *)

let manifest_schema = "straight-sample-plan/1"

let plan_to_json (p : plan) : Json.t =
  Json.Obj
    [ ("schema", Json.Str manifest_schema);
      ("key", Json.Str p.key);
      ("total_retired", Json.Int p.total_retired);
      ("entries",
       Json.List
         (List.map
            (fun e ->
               Json.Obj
                 [ ("index", Json.Int e.index);
                   ("start", Json.Int e.start);
                   ("len", Json.Int e.len);
                   ("warmup", Json.Int e.warmup);
                   ("path", Json.Str e.path) ])
            p.entries)) ]

let plan_of_json (j : Json.t) : plan option =
  let open Json in
  match (get_string (member "schema" j), get_string (member "key" j),
         get_int (member "total_retired" j), get_list (member "entries" j))
  with
  | Some s, Some key, Some total_retired, Some entries
    when s = manifest_schema ->
    (try
       let entries =
         List.map
           (fun e ->
              match (get_int (member "index" e), get_int (member "start" e),
                     get_int (member "len" e), get_int (member "warmup" e),
                     get_string (member "path" e))
              with
              | Some index, Some start, Some len, Some warmup, Some path ->
                { index; start; len; warmup; path }
              | _ -> raise Exit)
           entries
       in
       Some { key; total_retired; entries }
     with Exit -> None)
  | _ -> None

let load_manifest path key : plan option =
  if not (Sys.file_exists path) then None
  else
    match
      (try
         let ic = open_in_bin path in
         let n = in_channel_length ic in
         let s = really_input_string ic n in
         close_in ic;
         Some s
       with Sys_error _ | End_of_file -> None)
    with
    | None -> None
    | Some s ->
      (match (try plan_of_json (Json.of_string s) with Json.Parse_error _ -> None)
       with
       | Some p when p.key = key -> Some p
       | _ -> None)

let write_manifest path (p : plan) =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  (try
     output_string oc (Json.to_string (plan_to_json p));
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

(* ---------- materialization ---------- *)

(* One open collection window: the warmed state was snapshotted at
   [w_substart]; uops accumulate (reversed) until the window closes at
   [w_start + interval - 1] or the program halts. *)
type window = {
  w_index : int;
  w_start : int;
  w_substart : int;
  w_snap : string;
  mutable w_buf : Trace.uop list;
}

let rec mkdir_p d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let materialize ~dir (spec : Sim.spec) (sp : Spec.t) : plan * bool =
  let key = plan_key spec sp in
  let sdir = Filename.concat dir "sample" in
  let manifest_path = Filename.concat sdir (key ^ ".plan.json") in
  match load_manifest manifest_path key with
  | Some p when List.for_all (fun e -> Sys.file_exists e.path) p.entries ->
    (p, true)
  | _ ->
    mkdir_p sdir;
    let image = Sim.compile spec in
    let warm = Warm.create spec.Sim.params in
    let period = sp.Spec.every * sp.Spec.interval in
    let next_index = ref 0 in
    let next_start = ref 0 in
    let open_windows = ref [] in
    let entries = ref [] in
    let path_of index = Filename.concat sdir (Printf.sprintf "%s.i%d.snap" key index) in
    let close (w : window) =
      let uops = Array.of_list (List.rev w.w_buf) in
      let warmup = w.w_start - w.w_substart in
      let len = Array.length uops - warmup in
      (* a window that ended before its measured region began holds only
         warmup — nothing to measure, drop it *)
      if len > 0 then begin
        let path = path_of w.w_index in
        write_checkpoint spec ~path ~index:w.w_index ~start:w.w_start ~len
          ~warmup ~warm_snap:w.w_snap uops;
        entries :=
          { index = w.w_index; start = w.w_start; len; warmup; path }
          :: !entries
      end
    in
    let on_retire idx u =
      (* open every window whose warmed-state snapshot belongs at this
         retirement (multiple can coincide at 0 when warmup >= period) *)
      while idx = max 0 (!next_start - sp.Spec.warmup) do
        let b = Buffer.create 65536 in
        Warm.save b warm;
        open_windows :=
          { w_index = !next_index; w_start = !next_start; w_substart = idx;
            w_snap = Buffer.contents b; w_buf = [] }
          :: !open_windows;
        incr next_index;
        next_start := !next_start + period
      done;
      List.iter
        (fun w ->
           if idx < w.w_start + sp.Spec.interval then w.w_buf <- u :: w.w_buf)
        !open_windows;
      let closing, still =
        List.partition
          (fun w -> idx = w.w_start + sp.Spec.interval - 1)
          !open_windows
      in
      List.iter close closing;
      open_windows := still;
      Warm.observe warm u
    in
    let total_retired =
      match spec.Sim.target with
      | Exp.Riscv ->
        let s =
          Iss.Riscv_iss.start
            ~config:{ Iss.Riscv_iss.collect_trace = false;
                      max_insns = spec.Sim.max_insns }
            ~on_retire image
        in
        Iss.Riscv_iss.run_session s;
        (Iss.Riscv_iss.finish s).Trace.retired
      | Exp.Straight_raw | Exp.Straight_re ->
        let s =
          Iss.Straight_iss.start
            ~config:{ Iss.Straight_iss.collect_trace = false;
                      collect_dist = false;
                      max_insns = spec.Sim.max_insns }
            ~on_retire image
        in
        Iss.Straight_iss.run_session s;
        (Iss.Straight_iss.finish s).Trace.retired
    in
    (* the program halted with windows still open: truncated intervals *)
    List.iter close !open_windows;
    if total_retired = 0 || !entries = [] then
      Diag.error
        ~context:[ ("workload", spec.Sim.workload.Workloads.name) ]
        Diag.Config_error "workload retired %d instructions: nothing to sample"
        total_retired;
    let p =
      { key; total_retired;
        entries = List.sort (fun a b -> compare a.index b.index) !entries }
    in
    write_manifest manifest_path p;
    (p, false)

(* ---------- running one interval ---------- *)

let run_file path : result =
  let t0 = Unix.gettimeofday () in
  let m, r = File.load path in
  match m.File.kind with
  | File.Engine_image ->
    reject path "this is an engine-image checkpoint, not a sampling interval"
  | File.Interval { index; start; len; warmup } ->
    let spec = Sim.spec_of_meta path m in
    let image = Sim.compile spec in
    let warm = Warm.create spec.Sim.params in
    let uops =
      try
        let warm_snap = Bin.r_string r in
        let wr = Bin.reader warm_snap in
        Warm.load wr warm;
        Bin.expect_end wr;
        let n = Bin.r_int r in
        if n <> warmup + len then
          raise
            (Bin.Corrupt
               (Printf.sprintf "stores %d uops, meta promises %d + %d" n
                  warmup len));
        let uops = Array.init n (fun _ -> Uop_io.read r) in
        Bin.expect_end r;
        uops
      with Bin.Corrupt msg -> reject path "payload: %s" msg
    in
    let digest = Trace.digest uops in
    if digest <> m.File.trace_digest then
      reject path "stored sub-trace digest %s differs from meta digest %s"
        digest m.File.trace_digest;
    let checker =
      if spec.Sim.check then
        Some
          (Ooo_common.Checker.create ~max_dist:spec.Sim.max_dist
             ~rename:spec.Sim.params.Params.rename ~trace:uops ())
      else None
    in
    let decode_static =
      match spec.Sim.target with
      | Exp.Riscv -> Ooo_riscv.Pipeline.static_uop image
      | Exp.Straight_raw | Exp.Straight_re ->
        Ooo_straight.Pipeline.static_uop image
    in
    let engine =
      Engine.create spec.Sim.params ~trace:uops ~decode_static ?checker ~warm
        ()
    in
    (* detailed warmup: simulate until the warmup prefix has committed,
       then snapshot the accounting so the interval is measured alone *)
    while
      Engine.committed_count engine < warmup && not (Engine.finished engine)
    do
      Engine.step engine
    done;
    let warm_cycles = Engine.cycle engine in
    let warm_stack = Engine.cpi_now engine in
    while not (Engine.finished engine) do
      Engine.step engine
    done;
    let stats = Engine.finish engine in
    { r_index = index;
      r_start = start;
      r_len = len;
      r_warmup = warmup;
      r_cycles = stats.Engine.cycles - warm_cycles;
      r_warm_cycles = warm_cycles;
      r_cpi = Stats.cpi_sub stats.Engine.cpi_stack warm_stack;
      r_host_seconds = Unix.gettimeofday () -. t0 }

(* ---------- result transport (pool JSON lines) ---------- *)

let result_to_json (r : result) : Json.t =
  Json.Obj
    [ ("index", Json.Int r.r_index);
      ("start", Json.Int r.r_start);
      ("len", Json.Int r.r_len);
      ("warmup", Json.Int r.r_warmup);
      ("cycles", Json.Int r.r_cycles);
      ("warm_cycles", Json.Int r.r_warm_cycles);
      ("cpi_stack",
       Json.Obj
         (List.map
            (fun (k, v) -> (k, Json.Int v))
            (Stats.cpi_to_assoc r.r_cpi)));
      ("host_seconds", Json.Float r.r_host_seconds) ]

let result_of_json (j : Json.t) : result =
  let bad fmt =
    Printf.ksprintf
      (fun reason ->
         Diag.error
           ~context:[ ("json", Json.to_string ~indent:false j) ]
           Diag.Config_error "malformed interval result: %s" reason)
      fmt
  in
  let geti k =
    match Json.get_int (Json.member k j) with
    | Some n -> n
    | None -> bad "missing or non-integer %S" k
  in
  let stack =
    match Json.member "cpi_stack" j with
    | Some s ->
      let b k =
        match Json.get_int (Json.member k s) with
        | Some n -> n
        | None -> bad "cpi_stack: missing %S" k
      in
      { Stats.base = b "base";
        frontend = b "frontend";
        branch_squash = b "branch_squash";
        memory = b "memory";
        structural = b "structural" }
    | None -> bad "missing cpi_stack"
  in
  { r_index = geti "index";
    r_start = geti "start";
    r_len = geti "len";
    r_warmup = geti "warmup";
    r_cycles = geti "cycles";
    r_warm_cycles = geti "warm_cycles";
    r_cpi = stack;
    r_host_seconds =
      (match Json.get_float (Json.member "host_seconds" j) with
       | Some f -> f
       | None -> bad "missing host_seconds") }
