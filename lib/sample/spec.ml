(* Sampling-plan shape and its CLI/JSON syntax.  See spec.mli. *)

module Json = Ooo_common.Stats.Json

type t = { interval : int; warmup : int; every : int }

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* "100", "100k", "1M" — decimal suffixes, as instruction counts are
   quoted in the papers. *)
let count_of_string what s =
  let s = String.trim s in
  if s = "" then fail "%s: empty count" what;
  let scale, digits =
    match s.[String.length s - 1] with
    | 'k' | 'K' -> (1_000, String.sub s 0 (String.length s - 1))
    | 'm' | 'M' -> (1_000_000, String.sub s 0 (String.length s - 1))
    | _ -> (1, s)
  in
  match int_of_string_opt digits with
  | Some n when n >= 0 -> n * scale
  | _ -> fail "%s: bad count %S" what s

let parse s =
  let fields = String.split_on_char ',' s in
  let interval = ref None and warmup = ref None and every = ref None in
  List.iter
    (fun field ->
       let field = String.trim field in
       if field <> "" then
         match String.index_opt field '=' with
         | None -> fail "expected key=value, got %S" field
         | Some i ->
           let k = String.sub field 0 i in
           let v = String.sub field (i + 1) (String.length field - i - 1) in
           (match k with
            | "interval" -> interval := Some (count_of_string k v)
            | "warmup" -> warmup := Some (count_of_string k v)
            | "every" -> every := Some (count_of_string k v)
            | _ -> fail "unknown sampling key %S" k))
    fields;
  let interval =
    match !interval with
    | Some n -> n
    | None -> fail "missing interval= in %S" s
  in
  let warmup = Option.value !warmup ~default:0 in
  let every = Option.value !every ~default:1 in
  if interval <= 0 then fail "interval must be positive, got %d" interval;
  if warmup < 0 then fail "warmup must be nonnegative, got %d" warmup;
  if every < 1 then fail "every must be at least 1, got %d" every;
  { interval; warmup; every }

let to_string t =
  Printf.sprintf "interval=%d,warmup=%d,every=%d" t.interval t.warmup t.every

let to_json t =
  Json.Obj
    [ ("interval", Json.Int t.interval);
      ("warmup", Json.Int t.warmup);
      ("every", Json.Int t.every) ]

let of_json j =
  let get k =
    match Json.get_int (Json.member k j) with
    | Some n -> n
    | None -> fail "sample spec: missing or non-integer %S" k
  in
  let t = { interval = get "interval"; warmup = get "warmup";
            every = get "every" } in
  if t.interval <= 0 || t.warmup < 0 || t.every < 1 then
    fail "sample spec: out-of-range fields in %s"
      (Json.to_string ~indent:false j);
  t
