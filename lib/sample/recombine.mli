(** Recombining per-interval CPI measurements into a whole-run
    estimate with error bars.

    The point estimate is the instruction-weighted mean CPI
    [sum cycles / sum len] — exact integer sums, so it is independent
    of the order results arrive from the pool.  The standard error
    treats the per-interval CPIs as independent draws:
    [SE = stddev(cpi_i) / sqrt k], zero when fewer than two intervals
    were measured, and [ci95 = 1.96 * SE].  With systematic sampling
    ([every > 1]) the measured intervals cover only a fraction of the
    run; [est_cycles = cpi * total_insns] extrapolates to the whole
    run. *)

type estimate = {
  intervals : int;            (** measured intervals recombined *)
  measured_insns : int;       (** sum of interval lengths *)
  total_insns : int;          (** whole-run retired instructions *)
  cpi : float;                (** instruction-weighted mean CPI *)
  se : float;                 (** standard error of the mean CPI *)
  ci95 : float;               (** 1.96 * [se] *)
  est_cycles : float;         (** [cpi * total_insns] *)
  stack : (string * float) list;
  (** per-bucket CPI contributions; sums to [cpi] *)
  host_seconds : float;       (** summed per-interval simulation time *)
}

val merge_stacks :
  measured_insns:int -> (string * int) list list -> (string * float) list
(** Recombine per-interval CPI-stack buckets into per-instruction
    contributions.  Bucket names are the union across every interval in
    first-seen order; an interval lacking a bucket contributes zero
    cycles to it (it never raises, whatever the shape). *)

val recombine : total_insns:int -> Interval.result list -> estimate
(** Order-insensitive (results are sorted by interval index before any
    float accumulates).  @raise Diag.Error code [Config_error] on an
    empty list or a nonpositive measured length. *)

val report_json :
  workload:string -> target:string -> spec:Spec.t -> estimate ->
  Ooo_common.Stats.Json.t
(** The sampled-CPI report, schema ["straight-sample/1"] — written by
    [straightsim -sample-json] and uploaded as a CI artifact.  Schema
    documented in EXPERIMENTS.md. *)

type verdict = {
  ok : bool;
  exact_cpi : float;
  err : float;        (** [|cpi - exact_cpi|] *)
  tolerance : float;  (** [max (ci95, floor * exact_cpi)] *)
}

val check : estimate -> exact_cycles:int -> floor:float -> verdict
(** Full-vs-sampled validation: does the sampled estimate land within
    its own reported confidence interval of the exact-simulation CPI?
    [floor] is a relative slack (e.g. [0.02] = 2%) below which the
    comparison cannot fail — with few intervals the CI estimate itself
    is noisy, so an absolute floor keeps the gate meaningful without
    being flaky. *)
