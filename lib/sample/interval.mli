(** Interval checkpoints: materialization, execution, and the
    per-interval result record.

    [materialize] makes ONE functional (ISS) pass over the whole
    program.  While fast-forwarding it continuously warms a
    {!Ooo_common.Warm.t}; at each measured interval's window start it
    snapshots the warmed state, collects the window's uops, and writes
    the window out as a self-contained checkpoint the moment it closes —
    peak memory is one window (interval + warmup uops), never the whole
    trace.  Checkpoints are content-addressed under [dir] (the
    [_sweep/] store): a manifest keyed on the model, workload, sampling
    spec, and executable digests lets a re-run skip the ISS pass
    entirely when every file already exists.

    [run_file] turns one checkpoint into a measured {!result} in a
    fresh process: it rebuilds the warmed state and the sub-trace from
    the file, stands up the engine via the [?warm] handoff, simulates
    the detailed-warmup prefix (excluded from statistics), then the
    interval proper. *)

type entry = {
  index : int;    (** ordinal among measured intervals *)
  start : int;    (** first measured retirement (absolute) *)
  len : int;      (** measured retirements (last interval may truncate) *)
  warmup : int;   (** detailed-warmup retirements stored before [start] *)
  path : string;  (** checkpoint file *)
}

type plan = {
  key : string;           (** content address of the whole plan *)
  total_retired : int;    (** whole-run retired instructions *)
  entries : entry list;   (** in interval order *)
}

val materialize :
  dir:string -> Snapshot.Sim.spec -> Spec.t -> plan * bool
(** Returns the plan and whether it was served from the store ([true] =
    no ISS pass ran).  @raise Diag.Error code [Config_error] when the
    workload retires zero instructions. *)

type result = {
  r_index : int;
  r_start : int;
  r_len : int;
  r_warmup : int;
  r_cycles : int;        (** interval cycles, warmup excluded *)
  r_warm_cycles : int;   (** detailed-warmup cycles, excluded *)
  r_cpi : Ooo_common.Stats.cpi_stack;  (** buckets sum to [r_cycles] *)
  r_host_seconds : float;
}

val run_file : string -> result
(** Simulate one interval checkpoint.
    @raise Diag.Error code [Snapshot_error] on a corrupt or
    non-interval file, and whatever the engine raises (deadlock,
    checker divergence). *)

val result_to_json : result -> Ooo_common.Stats.Json.t
val result_of_json : Ooo_common.Stats.Json.t -> result
(** @raise Diag.Error code [Config_error] on a malformed object (the
    pool transports results as JSON lines). *)
