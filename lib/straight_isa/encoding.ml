(* Binary bit-field formats for STRAIGHT (our concrete realization of
   Fig. 1(b)).  Every instruction is one 32-bit word.  Because there is no
   destination field, source-distance fields can span the full 10 bits the
   paper calls for.

     bits  31..26  opcode (6)
     R:    25..16 s1   15..6 s2    5..0 zero
     I:    25..16 s1   15..0 imm16 (sign-extended; also LD byte offset)
     U:    25..6  imm20              (LUI)
     S:    25..16 s1=value  15..6 s2=base  5..0 imm6 (signed *word* offset)
     B:    25..16 s1   15..0 imm16 (signed PC-relative word offset)
     J:    25..0  imm26             (signed PC-relative word offset)

   The 6-bit ST offset is deliberate: the store format has two 10-bit source
   fields, leaving 6 bits.  The compiler materializes out-of-range store
   addresses with an explicit ADDi. *)

open Isa

exception Encode_error of string

let bad fmt = Format.kasprintf (fun s -> raise (Encode_error s)) fmt

type op_code =
  | OP_ALU of alu_op
  | OP_ALUI of alui_op
  | OP_LUI | OP_RMOV | OP_NOP | OP_LD | OP_ST | OP_BEZ | OP_BNZ
  | OP_J | OP_JAL | OP_JR | OP_SPADD | OP_HALT

let opcode_num = function
  | OP_ALU Add -> 0 | OP_ALU Sub -> 1 | OP_ALU And -> 2 | OP_ALU Or -> 3
  | OP_ALU Xor -> 4 | OP_ALU Sll -> 5 | OP_ALU Srl -> 6 | OP_ALU Sra -> 7
  | OP_ALU Slt -> 8 | OP_ALU Sltu -> 9 | OP_ALU Mul -> 10 | OP_ALU Mulh -> 11
  | OP_ALU Div -> 12 | OP_ALU Divu -> 13 | OP_ALU Rem -> 14 | OP_ALU Remu -> 15
  | OP_ALUI Addi -> 16 | OP_ALUI Andi -> 17 | OP_ALUI Ori -> 18
  | OP_ALUI Xori -> 19 | OP_ALUI Slli -> 20 | OP_ALUI Srli -> 21
  | OP_ALUI Srai -> 22 | OP_ALUI Slti -> 23 | OP_ALUI Sltui -> 24
  | OP_LUI -> 25 | OP_RMOV -> 26 | OP_NOP -> 27 | OP_LD -> 28 | OP_ST -> 29
  | OP_BEZ -> 30 | OP_BNZ -> 31 | OP_J -> 32 | OP_JAL -> 33 | OP_JR -> 34
  | OP_SPADD -> 35 | OP_HALT -> 36

let all_opcodes =
  let alus = [ Add; Sub; And; Or; Xor; Sll; Srl; Sra; Slt; Sltu;
               Mul; Mulh; Div; Divu; Rem; Remu ] in
  let aluis = [ Addi; Andi; Ori; Xori; Slli; Srli; Srai; Slti; Sltui ] in
  List.map (fun o -> OP_ALU o) alus
  @ List.map (fun o -> OP_ALUI o) aluis
  @ [ OP_LUI; OP_RMOV; OP_NOP; OP_LD; OP_ST; OP_BEZ; OP_BNZ; OP_J; OP_JAL;
      OP_JR; OP_SPADD; OP_HALT ]

let opcode_of_num =
  let table = Hashtbl.create 64 in
  List.iter (fun oc -> Hashtbl.replace table (opcode_num oc) oc) all_opcodes;
  fun n -> Hashtbl.find_opt table n

(* Field packing helpers.  All arithmetic is done in int (63-bit), then the
   word is truncated to 32 bits. *)

let check_dist what d =
  if d < 0 || d > max_dist then bad "%s distance %d out of [0,%d]" what d max_dist

let check_signed what bits v =
  let lim = 1 lsl (bits - 1) in
  if v < -lim || v >= lim then bad "%s immediate %d out of signed %d bits" what v bits

let mask bits v = v land ((1 lsl bits) - 1)

let sext bits v =
  let m = 1 lsl (bits - 1) in
  (v land ((1 lsl bits) - 1) lxor m) - m

let word op f25_0 = Int32.of_int ((opcode_num op lsl 26) lor mask 26 f25_0)

let enc_r op s1 s2 = word op ((s1 lsl 16) lor (s2 lsl 6))
let enc_i op s1 imm = word op ((s1 lsl 16) lor mask 16 imm)
let enc_u op imm20 = word op (mask 20 imm20 lsl 6)
let enc_s op s1 s2 imm6 = word op ((s1 lsl 16) lor (s2 lsl 6) lor mask 6 imm6)
let enc_j op imm26 = word op (mask 26 imm26)

(* [encode insn] packs a resolved instruction into its 32-bit word.
   Raises [Encode_error] when a field does not fit. *)
let encode (insn : resolved) : int32 =
  match insn with
  | Alu (op, a, b) ->
    check_dist "alu" a; check_dist "alu" b;
    enc_r (OP_ALU op) a b
  | Alui (op, a, i) ->
    check_dist "alui" a;
    let i = Int32.to_int i in
    (match op with
     | Slli | Srli | Srai ->
       (* shifts read only the low five bits at execution; keep the
          encoded form canonical so decode(encode i) = i and the two
          ISAs agree on representable shift amounts *)
       if i < 0 || i > 31 then
         bad "%s shift amount %d out of [0,31]"
           (String.lowercase_ascii (alui_op_name op)) i
     | _ -> check_signed "alui" 16 i);
    enc_i (OP_ALUI op) a i
  | Lui i ->
    let i = Int32.to_int i in
    if i < 0 || i > 0xFFFFF then bad "lui immediate %d out of 20 bits" i;
    enc_u OP_LUI i
  | Rmov a -> check_dist "rmov" a; enc_r OP_RMOV a 0
  | Nop -> enc_r OP_NOP 0 0
  | Ld (b, o) ->
    check_dist "ld" b; check_signed "ld" 16 o;
    enc_i OP_LD b o
  | St (v, b, o) ->
    check_dist "st" v; check_dist "st" b;
    if o land 3 <> 0 then bad "st offset %d not word aligned" o;
    let ow = o asr 2 in
    check_signed "st" 6 ow;
    enc_s OP_ST v b ow
  | Bez (a, off) -> check_dist "bez" a; check_signed "bez" 16 off; enc_i OP_BEZ a off
  | Bnz (a, off) -> check_dist "bnz" a; check_signed "bnz" 16 off; enc_i OP_BNZ a off
  | J off -> check_signed "j" 26 off; enc_j OP_J off
  | Jal off -> check_signed "jal" 26 off; enc_j OP_JAL off
  | Jr a -> check_dist "jr" a; enc_r OP_JR a 0
  | Spadd i -> check_signed "spadd" 16 i; enc_i OP_SPADD 0 i
  | Halt -> enc_r OP_HALT 0 0

(* [decode w] unpacks a 32-bit word; [None] on an illegal opcode. *)
let decode (w : int32) : resolved option =
  let w = Int32.to_int w land 0xFFFFFFFF in
  let opn = (w lsr 26) land 0x3F in
  let s1 = (w lsr 16) land 0x3FF in
  let s2 = (w lsr 6) land 0x3FF in
  let imm16 = sext 16 (w land 0xFFFF) in
  let imm6 = sext 6 (w land 0x3F) in
  let imm20 = (w lsr 6) land 0xFFFFF in
  let imm26 = sext 26 (w land 0x3FFFFFF) in
  match opcode_of_num opn with
  | None -> None
  | Some oc ->
    Some
      (match oc with
       | OP_ALU op -> Alu (op, s1, s2)
       | OP_ALUI op -> Alui (op, s1, Int32.of_int imm16)
       | OP_LUI -> Lui (Int32.of_int imm20)
       | OP_RMOV -> Rmov s1
       | OP_NOP -> Nop
       | OP_LD -> Ld (s1, imm16)
       | OP_ST -> St (s1, s2, imm6 * 4)
       | OP_BEZ -> Bez (s1, imm16)
       | OP_BNZ -> Bnz (s1, imm16)
       | OP_J -> J imm26
       | OP_JAL -> Jal imm26
       | OP_JR -> Jr s1
       | OP_SPADD -> Spadd imm16
       | OP_HALT -> Halt)

(* Maximum byte offset representable in the ST format (word granular). *)
let st_max_offset = 31 * 4
let st_min_offset = -32 * 4
