(* Structured diagnostics shared by every layer of the stack: an error
   code naming the failure class, a message, and machine-readable
   key/value context.  See the interface for the unification story. *)

type code =
  | Lex_error
  | Parse_error
  | Lower_error
  | Wasm_error
  | Invalid_ir
  | Interp_error
  | Codegen_error
  | Encode_error
  | Asm_error
  | Exec_error
  | Mem_unaligned
  | Mem_mmio
  | Fuel_exhausted
  | Sim_deadlock
  | Checker_divergence
  | Lint_finding
  | Config_error
  | Snapshot_error
  | Proto_error
  | Service_error

let code_name = function
  | Lex_error -> "LEX_ERROR"
  | Parse_error -> "PARSE_ERROR"
  | Lower_error -> "LOWER_ERROR"
  | Wasm_error -> "WASM_ERROR"
  | Invalid_ir -> "INVALID_IR"
  | Interp_error -> "INTERP_ERROR"
  | Codegen_error -> "CODEGEN_ERROR"
  | Encode_error -> "ENCODE_ERROR"
  | Asm_error -> "ASM_ERROR"
  | Exec_error -> "EXEC_ERROR"
  | Mem_unaligned -> "MEM_UNALIGNED"
  | Mem_mmio -> "MEM_MMIO"
  | Fuel_exhausted -> "FUEL_EXHAUSTED"
  | Sim_deadlock -> "SIM_DEADLOCK"
  | Checker_divergence -> "CHECKER_DIVERGENCE"
  | Lint_finding -> "LINT_FINDING"
  | Config_error -> "CONFIG_ERROR"
  | Snapshot_error -> "SNAPSHOT_ERROR"
  | Proto_error -> "PROTO_ERROR"
  | Service_error -> "SERVICE_ERROR"

(* Exit codes are grouped by failure class so scripts can branch on the
   kind of failure without parsing stderr; 1 is left to uncaught
   exceptions and 2 to usage errors, per Unix convention. *)
let exit_code = function
  | Config_error -> 2
  | Lex_error | Parse_error | Lower_error | Wasm_error | Invalid_ir
  | Codegen_error | Encode_error | Asm_error -> 3
  | Exec_error | Interp_error | Mem_unaligned | Mem_mmio -> 4
  | Fuel_exhausted -> 5
  | Sim_deadlock -> 6
  | Checker_divergence -> 7
  | Lint_finding -> 8
  | Snapshot_error -> 9
  | Proto_error | Service_error -> 10

type t = {
  code : code;
  message : string;
  context : (string * string) list;
}

exception Error of t

let make ?(context = []) code message = { code; message; context }

let error ?context code fmt =
  Format.kasprintf (fun s -> raise (Error (make ?context code s))) fmt

let to_string d =
  let ctx =
    match d.context with
    | [] -> ""
    | l ->
      Printf.sprintf " (%s)"
        (String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) l))
  in
  Printf.sprintf "%s: %s%s" (code_name d.code) d.message ctx

let pp fmt d = Format.pp_print_string fmt (to_string d)

let context_dump d =
  let b = Buffer.create 256 in
  Buffer.add_string b ("code=" ^ code_name d.code ^ "\n");
  Buffer.add_string b ("message=" ^ d.message ^ "\n");
  List.iter
    (fun (k, v) -> Buffer.add_string b (k ^ "=" ^ v ^ "\n"))
    d.context;
  Buffer.contents b

(* Register a printer so an uncaught [Error] is still readable. *)
let () =
  Printexc.register_printer (function
    | Error d -> Some ("Diag.Error: " ^ to_string d)
    | _ -> None)
