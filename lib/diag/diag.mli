(** Structured diagnostics shared by every layer of the stack.

    The repository historically grew one [exception Foo_error of string]
    per library (~12 of them: parser/lexer/lowering errors, codegen
    errors, assembler errors, ISS execution errors, memory faults, and
    the cycle models' [Sim_error]).  This module unifies them behind one
    carrier: an error {!code} naming the failure class, a human-readable
    message, and a machine-readable [(key, value)] context that callers
    (e.g. [straightsim -dump-on-error]) can persist verbatim.

    New code raises {!Error} directly; the legacy per-library exceptions
    are mapped to a {!t} by [Straight_core.Diagnostics.of_exn] so the
    command-line drivers report every failure uniformly and exit with a
    {!exit_code} distinct per failure class. *)

(** The failure class.  Codes are stable identifiers: tools may match on
    {!code_name} output. *)
type code =
  | Lex_error           (** MiniC lexer *)
  | Parse_error         (** MiniC / assembly parsers *)
  | Lower_error         (** MiniC -> SSA lowering *)
  | Wasm_error          (** WASM-subset validation / lowering *)
  | Invalid_ir          (** SSA validation *)
  | Interp_error        (** SSA interpreter *)
  | Codegen_error       (** STRAIGHT / RISC-V back ends *)
  | Encode_error        (** ISA binary encoders *)
  | Asm_error           (** assembler / linker *)
  | Exec_error          (** ISS: illegal instruction, PC out of text *)
  | Mem_unaligned       (** ISS memory: unaligned word access *)
  | Mem_mmio            (** ISS memory: unknown MMIO load/store *)
  | Fuel_exhausted      (** ISS: [max_insns] budget overrun *)
  | Sim_deadlock        (** cycle model: watchdog / non-convergence *)
  | Checker_divergence  (** lockstep golden-model checker violation *)
  | Lint_finding        (** static verifier finding on a linked image *)
  | Config_error        (** invalid simulation configuration *)
  | Snapshot_error      (** checkpoint file corrupt / truncated /
                            version- or workload-mismatched *)
  | Proto_error         (** malformed [straightd] daemon request /
                            protocol violation on the wire *)
  | Service_error       (** [straightd] daemon-level failure (socket
                            bind, job scheduler, worker loss) *)

val code_name : code -> string
(** Stable upper-case identifier, e.g. ["SIM_DEADLOCK"]. *)

val exit_code : code -> int
(** Process exit code for command-line drivers.  Distinct per failure
    class: 2 usage/config, 3 compile-family, 4 execution/memory faults,
    5 fuel exhaustion, 6 simulator deadlock, 7 checker divergence,
    8 static-lint finding, 9 snapshot rejected, 10 daemon
    protocol/service failure. *)

type t = {
  code : code;
  message : string;
  context : (string * string) list;
      (** machine-readable key/value pairs, most significant first *)
}

exception Error of t

val make : ?context:(string * string) list -> code -> string -> t

val error : ?context:(string * string) list -> code ->
  ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [error ?context code fmt ...] raises {!Error} with the formatted
    message. *)

val to_string : t -> string
(** One-line rendering: ["CODE: message (k=v, ...)"]. *)

val pp : Format.formatter -> t -> unit

val context_dump : t -> string
(** Machine-readable dump: one [key=value] line per entry, preceded by
    [code=] and [message=] lines — the format written by
    [straightsim -dump-on-error]. *)
