(* Validator for the WASM subset: module-level linking rules plus a
   per-function abstract interpretation of the operand stack.

   The stack discipline follows the WASM spec's validation algorithm,
   with one documented simplification: code after an unconditional
   transfer (`br`/`return`) is dead and is skipped to the end of its
   enclosing frame rather than checked polymorphically.  The lowering
   (lower.ml) skips exactly the same instructions, so validated modules
   never reach the polymorphic-stack case there.

   Failures raise [Diag.Error] with code [Wasm_error] and a "check"
   context naming the class: "no-main", "too-many-params",
   "unknown-import", "no-memory", "immutable-global", "stack-underflow",
   "type". *)

open Ast

(* riscv_cc passes call arguments in a0..a7; the subset inherits that
   cap so WASM calls lower to plain IR calls on both back ends. *)
let max_params = 8

let fail ~check ~where fmt =
  Format.kasprintf
    (fun s ->
       raise
         (Diag.Error
            (Diag.make
               ~context:
                 [ ("frontend", "wasm"); ("check", check); ("where", where) ]
               Diag.Wasm_error s)))
    fmt

(* ---------- module-level checks ---------- *)

let known_imports = [ ("env", "putint"); ("env", "putchar") ]

let check_imports (m : module_) =
  List.iter
    (fun (im : import) ->
       let where =
         Printf.sprintf "import %s.%s" im.imp_module im.imp_name
       in
       if not (List.mem (im.imp_module, im.imp_name) known_imports) then
         fail ~check:"unknown-import" ~where
           "unknown import %s.%s (the subset links env.putint and env.putchar)"
           im.imp_module im.imp_name;
       if im.imp_params <> 1 || im.imp_result then
         fail ~check:"unknown-import" ~where
           "%s.%s must have signature (param i32) with no result"
           im.imp_module im.imp_name)
    m.imports

let find_main (m : module_) : int =
  let rec go i = function
    | [] ->
      fail ~check:"no-main" ~where:"module"
        "no exported \"main\" function"
    | (f : func) :: rest ->
      if f.export = Some "main" then begin
        if f.params <> 0 then
          fail ~check:"type" ~where:"main"
            "main must take no parameters";
        if not f.result then
          fail ~check:"type" ~where:"main"
            "main must return an i32 exit code";
        i
      end
      else go (i + 1) rest
  in
  go 0 m.funcs

(* ---------- per-function stack checking ---------- *)

type frame_kind = Fblock | Floop | Ffunc

type frame = {
  kind : frame_kind;
  result : bool;                 (* result arity of the construct *)
  base : int;                    (* operand-stack height at entry *)
}

(* A label's branch arity: branching to a loop re-enters the header and
   carries no values; branching to a block or the function frame carries
   the construct's result. *)
let label_arity (f : frame) =
  match f.kind with Floop -> 0 | Fblock | Ffunc -> if f.result then 1 else 0

let check_func (m : module_) (fidx : int) (f : func) =
  let where =
    match f.fn_name with
    | Some n -> "func $" ^ n
    | None -> Printf.sprintf "func %d" (List.length m.imports + fidx)
  in
  if f.params > max_params then
    fail ~check:"too-many-params" ~where
      "%d parameters exceed the %d-register argument convention"
      f.params max_params;
  let has_mem = m.mem_pages <> None in
  let height = ref 0 in
  let pop (fr : frame) what =
    if !height <= fr.base then
      fail ~check:"stack-underflow" ~where
        "%s needs an operand but the stack is empty" what;
    decr height
  in
  let push () = incr height in
  (* returns true when the sequence ended with an unconditional
     transfer (so the caller's fall-through is unreachable) *)
  let rec check_seq (frames : frame list) (body : instr list) : bool =
    let fr = List.hd frames in
    match body with
    | [] -> false
    | i :: rest ->
      let dead =
        match i with
        | Const _ -> push (); false
        | Bin op ->
          pop fr (binop_mnemonic op); pop fr (binop_mnemonic op);
          push (); false
        | Cmp op ->
          pop fr (cmpop_mnemonic op); pop fr (cmpop_mnemonic op);
          push (); false
        | Eqz -> pop fr "i32.eqz"; push (); false
        | Local_get _ -> push (); false
        | Local_set _ -> pop fr "local.set"; false
        | Local_tee _ -> pop fr "local.tee"; push (); false
        | Global_get _ -> push (); false
        | Global_set g ->
          if not (List.nth m.globals g).gl_mut then
            fail ~check:"immutable-global" ~where
              "global.set of immutable global %d" g;
          pop fr "global.set"; false
        | Load _ ->
          if not has_mem then
            fail ~check:"no-memory" ~where
              "i32.load without a (memory ...) declaration";
          pop fr "i32.load"; push (); false
        | Store _ ->
          if not has_mem then
            fail ~check:"no-memory" ~where
              "i32.store without a (memory ...) declaration";
          pop fr "i32.store"; pop fr "i32.store"; false
        | Call c ->
          let params, result = func_sig m c in
          for _ = 1 to params do pop fr "call" done;
          if result then push ();
          false
        | Drop -> pop fr "drop"; false
        | Select ->
          pop fr "select"; pop fr "select"; pop fr "select"; push (); false
        | Nop -> false
        | Block { result; body } ->
          let inner = { kind = Fblock; result; base = !height } in
          let dead_end = check_seq (inner :: frames) body in
          close_frame inner ~dead_end "block";
          false
        | Loop { result; body } ->
          let inner = { kind = Floop; result; base = !height } in
          let dead_end = check_seq (inner :: frames) body in
          close_frame inner ~dead_end "loop";
          false
        | Br d ->
          let target = List.nth frames d in
          for _ = 1 to label_arity target do pop fr "br" done;
          true
        | Br_if d ->
          pop fr "br_if";
          let target = List.nth frames d in
          let arity = label_arity target in
          (* the label values are both passed and kept *)
          if !height - fr.base < arity then
            fail ~check:"stack-underflow" ~where
              "br_if needs %d label value(s) but the stack is empty" arity;
          false
        | Return ->
          if f.result then pop fr "return";
          true
      in
      if dead then true   (* skip the rest of this frame: dead code *)
      else check_seq frames rest
  (* On frame exit the stack must hold exactly the construct's results
     above the entry height (unless the end is unreachable, where the
     result materializes polymorphically). *)
  and close_frame (fr : frame) ~(dead_end : bool) (what : string) =
    let want = fr.base + if fr.result then 1 else 0 in
    if dead_end then height := want
    else if !height <> want then
      fail ~check:"type" ~where
        "%s leaves %d value(s), expected %d" what (!height - fr.base)
        (want - fr.base)
  in
  let top = { kind = Ffunc; result = f.result; base = 0 } in
  let dead_end = check_seq [ top ] f.body in
  let want = if f.result then 1 else 0 in
  if (not dead_end) && !height <> want then
    fail ~check:"type" ~where
      "function body leaves %d value(s), expected %d" !height want

(* [check m] validates the module; returns the index (within
   [m.funcs]) of the exported "main". *)
let check (m : module_) : int =
  check_imports m;
  let main = find_main m in
  List.iteri (fun i f -> check_func m i f) m.funcs;
  main
