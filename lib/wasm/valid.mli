(** Validator for the WASM subset: module-level linking rules plus the
    spec's abstract operand-stack discipline per function (with dead
    code after an unconditional branch skipped, exactly as the lowering
    skips it). *)

val max_params : int
(** Parameter-count cap inherited from the 8-register argument
    convention of the RV32 back end. *)

val check : Ast.module_ -> int
(** [check m] validates [m]; returns the index within [m.funcs] of the
    exported ["main"].
    @raise Diag.Error (code [Wasm_error]) with a "check" context of
    "no-main", "too-many-params", "unknown-import", "no-memory",
    "immutable-global", "stack-underflow", or "type". *)
