(** Front-end dispatch for the WASM-subset front-end (DESIGN.md §15). *)

val looks_like_wat : string -> bool
(** True when the source's first significant character is '(' — a WAT
    module; no MiniC program starts with '('. *)

val is_wat_filename : string -> bool
(** True for paths ending in [.wat]. *)

val compile : string -> Ssa_ir.Ir.program
(** Parse, validate, and lower WAT source to SSA IR.
    @raise Diag.Error (code [Wasm_error]) on any lex/parse/validation
    failure. *)

val compile_any : string -> Ssa_ir.Ir.program
(** Front-end [src] as WAT or MiniC, sniffed by content. *)
