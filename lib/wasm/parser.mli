(** WAT parser for the subset (flat and folded instruction forms; $names
    resolved to dense indices). *)

val parse : string -> Ast.module_
(** Parse one [(module ...)] from WAT source text.
    @raise Diag.Error (code [Wasm_error]) on malformed input, with a
    "check" context of "parse", "type", "unsupported", "br-depth",
    "duplicate-name", or "unknown-{local,global,func,label}". *)
