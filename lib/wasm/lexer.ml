(* Tokenizer for the WASM text format: parentheses, atoms (keywords,
   integers, $ids, key=value immediates), quoted strings, and the two
   comment forms (`;;` to end of line, nestable `(; ... ;)`).

   Errors are structured [Diag] diagnostics (code [Wasm_error], check
   "lex") so drivers and tests report them uniformly. *)

type token =
  | Lparen of int              (* payload: 1-based source line *)
  | Rparen of int
  | Atom of string * int
  | Str of string * int

let fail ~line fmt =
  Format.kasprintf
    (fun s ->
       raise
         (Diag.Error
            (Diag.make
               ~context:
                 [ ("frontend", "wasm"); ("check", "lex");
                   ("line", string_of_int line) ]
               Diag.Wasm_error s)))
    fmt

let token_line = function
  | Lparen l | Rparen l | Atom (_, l) | Str (_, l) -> l

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'
let is_atom_char c = not (is_space c) && c <> '(' && c <> ')' && c <> '"' && c <> ';'

(* [tokenize src] produces the token list with comments stripped. *)
let tokenize (src : string) : token list =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let bump c = if c = '\n' then incr line in
  while !i < n do
    let c = src.[!i] in
    if is_space c then begin bump c; incr i end
    else if c = ';' then begin
      if !i + 1 < n && src.[!i + 1] = ';' then begin
        while !i < n && src.[!i] <> '\n' do incr i done
      end
      else fail ~line:!line "stray ';' (use ';;' or '(;' comments)"
    end
    else if c = '(' && !i + 1 < n && src.[!i + 1] = ';' then begin
      (* nestable block comment *)
      let depth = ref 1 in
      let start = !line in
      i := !i + 2;
      while !depth > 0 && !i < n do
        (if !i + 1 < n && src.[!i] = '(' && src.[!i + 1] = ';' then begin
           incr depth; incr i
         end
         else if !i + 1 < n && src.[!i] = ';' && src.[!i + 1] = ')' then begin
           decr depth; incr i
         end
         else bump src.[!i]);
        incr i
      done;
      if !depth > 0 then fail ~line:start "unterminated block comment"
    end
    else if c = '(' then begin toks := Lparen !line :: !toks; incr i end
    else if c = ')' then begin toks := Rparen !line :: !toks; incr i end
    else if c = '"' then begin
      let buf = Buffer.create 16 in
      let start = !line in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        (match src.[!i] with
         | '"' -> closed := true
         | '\\' ->
           if !i + 1 >= n then fail ~line:start "unterminated string escape";
           incr i;
           (match src.[!i] with
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | '\\' -> Buffer.add_char buf '\\'
            | '"' -> Buffer.add_char buf '"'
            | '\'' -> Buffer.add_char buf '\''
            | h1 ->
              (* \hh hex byte escape *)
              if !i + 1 >= n then fail ~line:start "bad string escape";
              let h2 = src.[!i + 1] in
              incr i;
              let hex c =
                match c with
                | '0' .. '9' -> Char.code c - Char.code '0'
                | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
                | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
                | _ -> fail ~line:start "bad string escape '\\%c%c'" h1 h2
              in
              Buffer.add_char buf (Char.chr ((16 * hex h1) + hex h2)))
         | c -> bump c; Buffer.add_char buf c);
        incr i
      done;
      if not !closed then fail ~line:start "unterminated string";
      toks := Str (Buffer.contents buf, start) :: !toks
    end
    else begin
      let start = !i in
      let l = !line in
      while !i < n && is_atom_char src.[!i] do incr i done;
      if !i = start then fail ~line:l "unexpected character %C" c;
      toks := Atom (String.sub src start (!i - start), l) :: !toks
    end
  done;
  List.rev !toks
