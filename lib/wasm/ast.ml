(* Abstract syntax for the WASM text-format subset (see DESIGN.md §15).

   The subset is the i32 fragment a stack machine needs to stress the
   distance-fixing algorithm: i32 arithmetic/compare/bitwise operators,
   locals and mutable globals, structured control (block/loop/br/br_if/
   return), direct calls, and loads/stores over one linear memory.
   Every value is an i32; other value types are rejected by the parser.

   Names ($ids) are resolved to dense indices at parse time, so the
   validator and the lowering work on indices only.  The function index
   space lists imports first, then module-defined functions, as in the
   WASM spec. *)

type binop =
  | Add | Sub | Mul | Div_s | Div_u | Rem_s | Rem_u
  | And | Or | Xor | Shl | Shr_s | Shr_u

type cmpop = Eq | Ne | Lt_s | Lt_u | Gt_s | Gt_u | Le_s | Le_u | Ge_s | Ge_u

type instr =
  | Const of int32
  | Bin of binop
  | Cmp of cmpop
  | Eqz
  | Local_get of int
  | Local_set of int
  | Local_tee of int
  | Global_get of int
  | Global_set of int
  | Load of int                      (* static byte offset *)
  | Store of int
  | Call of int                      (* function-space index *)
  | Block of { result : bool; body : instr list }
  | Loop of { result : bool; body : instr list }
  | Br of int                        (* relative label depth *)
  | Br_if of int
  | Return
  | Drop
  | Select
  | Nop

(* An imported host function; the subset only links ["env"]'s console
   primitives (putint/putchar), both [(param i32)] with no result. *)
type import = {
  imp_module : string;
  imp_name : string;
  imp_fname : string option;         (* $id, if any *)
  imp_params : int;
  imp_result : bool;
}

type func = {
  fn_name : string option;           (* $id, if any *)
  params : int;
  result : bool;
  locals : int;                      (* declared locals beyond the params *)
  body : instr list;
  export : string option;            (* inline or module-level export name *)
}

type global = {
  gl_name : string option;
  gl_mut : bool;
  gl_init : int32;
}

type module_ = {
  imports : import list;
  funcs : func list;
  globals : global list;
  mem_pages : int option;            (* linear memory size, 64 KiB pages *)
}

(* Function space: imports first, then defined functions. *)
let n_funcspace (m : module_) = List.length m.imports + List.length m.funcs

(* [func_sig m idx] is [(params, result)] of function-space index [idx]. *)
let func_sig (m : module_) (idx : int) : int * bool =
  let ni = List.length m.imports in
  if idx < ni then
    let i = List.nth m.imports idx in
    (i.imp_params, i.imp_result)
  else
    let f = List.nth m.funcs (idx - ni) in
    (f.params, f.result)

let binop_mnemonic = function
  | Add -> "i32.add" | Sub -> "i32.sub" | Mul -> "i32.mul"
  | Div_s -> "i32.div_s" | Div_u -> "i32.div_u"
  | Rem_s -> "i32.rem_s" | Rem_u -> "i32.rem_u"
  | And -> "i32.and" | Or -> "i32.or" | Xor -> "i32.xor"
  | Shl -> "i32.shl" | Shr_s -> "i32.shr_s" | Shr_u -> "i32.shr_u"

let cmpop_mnemonic = function
  | Eq -> "i32.eq" | Ne -> "i32.ne"
  | Lt_s -> "i32.lt_s" | Lt_u -> "i32.lt_u"
  | Gt_s -> "i32.gt_s" | Gt_u -> "i32.gt_u"
  | Le_s -> "i32.le_s" | Le_u -> "i32.le_u"
  | Ge_s -> "i32.ge_s" | Ge_u -> "i32.ge_u"
