(* WASM stack machine -> SSA IR lowering (DESIGN.md §15).

   The operand stack is lowered symbolically: a compile-time stack of
   [Ir.operand]s, so stack traffic costs nothing at run time.  Locals
   use the same Braun et al. SSA construction as the MiniC front-end
   (per-block defs, incomplete phis in unsealed loop headers, sealing,
   then trivial-phi elimination via [Minic.Lower.remove_trivial_phis]).

   Structured control maps onto the CFG as:
   - [block]  -> a join block; every `br` edge and the fall-through edge
     contribute one phi arm when the block has a result
   - [loop]   -> a header block, unsealed until the loop body is fully
     lowered (back edges from `br`/`br_if` land there); the loop exit is
     the plain fall-through, so no join block is needed
   - [return] / `br` to the function frame -> [Ret]
   Code after an unconditional transfer is dead and skipped, matching
   the validator (valid.ml).

   Runtime model shared with MiniC so all six execution paths agree:
   one data symbol "wasm_memory" backs the linear memory, each global
   becomes a one-word symbol "wasm_global_<i>", and the env.putint /
   env.putchar imports lower to the same MMIO stores as the MiniC
   builtins.  Division/remainder follow RV32M (no traps), shifts mask
   the count mod 32, and addresses must be 4-byte aligned. *)

open Ast
module Ir = Ssa_ir.Ir

(* Internal invariant failures only — user-facing rejects happen in
   valid.ml before lowering starts. *)
let bug fmt =
  Format.kasprintf
    (fun s ->
       raise
         (Diag.Error
            (Diag.make
               ~context:[ ("frontend", "wasm"); ("check", "lower") ]
               Diag.Wasm_error s)))
    fmt

let mem_sym = "wasm_memory"
let global_sym i = Printf.sprintf "wasm_global_%d" i
let page_bytes = 65536

(* Back-end load/store immediates are 12-bit; larger static offsets are
   folded into the address. *)
let max_fold_offset = 2040

(* ---------- lowering environment (Braun construction) ---------- *)

type env = {
  func : Ir.func;
  blocks : (Ir.block_id, Ir.block) Hashtbl.t;
  mutable next_bid : int;
  mutable cur : Ir.block;
  mutable terminated : bool;
  (* Braun state; the SSA "variables" are the WASM locals *)
  defs : (int * Ir.block_id, Ir.operand) Hashtbl.t;
  sealed : (Ir.block_id, unit) Hashtbl.t;
  preds : (Ir.block_id, Ir.block_id list) Hashtbl.t;
  incomplete : (Ir.block_id, (int * Ir.value) list) Hashtbl.t;
  (* the symbolic operand stack, top first *)
  mutable stack : Ir.operand list;
}

let new_block env =
  let b = { Ir.bid = env.next_bid; insts = []; term = Ir.Ret (Ir.Const 0l) } in
  env.next_bid <- env.next_bid + 1;
  Hashtbl.replace env.blocks b.Ir.bid b;
  Hashtbl.replace env.preds b.Ir.bid [];
  env.func.Ir.blocks <- env.func.Ir.blocks @ [ b ];
  b

let add_pred env ~target ~pred =
  let ps = try Hashtbl.find env.preds target with Not_found -> [] in
  Hashtbl.replace env.preds target (pred :: ps)

let terminate env term =
  if not env.terminated then begin
    env.cur.Ir.term <- term;
    List.iter
      (fun s -> add_pred env ~target:s ~pred:env.cur.Ir.bid)
      (Ir.successors term);
    env.terminated <- true
  end

let switch_to env b =
  env.cur <- b;
  env.terminated <- false

let emit env inst : Ir.operand =
  if env.terminated then begin
    let b = new_block env in
    Hashtbl.replace env.sealed b.Ir.bid ();
    switch_to env b
  end;
  let v = Ir.fresh_value env.func in
  env.cur.Ir.insts <- env.cur.Ir.insts @ [ (v, inst) ];
  Ir.Val v

let write_variable env var bid op = Hashtbl.replace env.defs (var, bid) op

let new_phi env bid : Ir.value =
  let v = Ir.fresh_value env.func in
  let b = Hashtbl.find env.blocks bid in
  b.Ir.insts <- (v, Ir.Phi []) :: b.Ir.insts;
  v

let set_phi_args env bid phi args =
  let b = Hashtbl.find env.blocks bid in
  b.Ir.insts <-
    List.map
      (fun (v, inst) -> if v = phi then (v, Ir.Phi args) else (v, inst))
      b.Ir.insts

let rec read_variable env var bid : Ir.operand =
  match Hashtbl.find_opt env.defs (var, bid) with
  | Some op -> op
  | None -> read_recursive env var bid

and read_recursive env var bid : Ir.operand =
  if not (Hashtbl.mem env.sealed bid) then begin
    let phi = new_phi env bid in
    let pending = try Hashtbl.find env.incomplete bid with Not_found -> [] in
    Hashtbl.replace env.incomplete bid ((var, phi) :: pending);
    write_variable env var bid (Ir.Val phi);
    Ir.Val phi
  end
  else
    match Hashtbl.find env.preds bid with
    | [] -> Ir.Const 0l   (* unreachable read; locals are zero-initialized *)
    | [ p ] ->
      let op = read_variable env var p in
      write_variable env var bid op;
      op
    | ps ->
      let phi = new_phi env bid in
      write_variable env var bid (Ir.Val phi);
      let args = List.map (fun p -> (p, read_variable env var p)) ps in
      set_phi_args env bid phi args;
      Ir.Val phi

let seal_block env bid =
  if not (Hashtbl.mem env.sealed bid) then begin
    let pending = try Hashtbl.find env.incomplete bid with Not_found -> [] in
    Hashtbl.replace env.sealed bid ();
    List.iter
      (fun (var, phi) ->
         let ps = Hashtbl.find env.preds bid in
         let args = List.map (fun p -> (p, read_variable env var p)) ps in
         set_phi_args env bid phi args)
      (List.rev pending);
    Hashtbl.remove env.incomplete bid
  end

(* ---------- operand stack ---------- *)

let push env op = env.stack <- op :: env.stack

let pop env =
  match env.stack with
  | op :: rest -> env.stack <- rest; op
  | [] -> bug "operand stack underflow escaped validation"

let peek env =
  match env.stack with
  | op :: _ -> op
  | [] -> bug "operand stack underflow escaped validation"

let set_height env h =
  let rec drop l n = if n <= 0 then l else drop (List.tl l) (n - 1) in
  let cur = List.length env.stack in
  if cur < h then bug "operand stack shorter than frame base"
  else env.stack <- drop env.stack (cur - h)

(* ---------- control frames ---------- *)

type block_ctrl = {
  bresult : bool;
  join : Ir.block_id;
  phi : Ir.value option;                         (* result phi in [join] *)
  mutable args : (Ir.block_id * Ir.operand) list;
}

type ctrl =
  | Cblock of block_ctrl
  | Cloop of { header : Ir.block_id }
  | Cfunc of { fresult : bool }

(* ---------- operator mappings ---------- *)

let binop_ir : Ast.binop -> Ir.binop = function
  | Add -> Ir.Add | Sub -> Ir.Sub | Mul -> Ir.Mul
  | Div_s -> Ir.Div | Div_u -> Ir.Divu
  | Rem_s -> Ir.Rem | Rem_u -> Ir.Remu
  | And -> Ir.And | Or -> Ir.Or | Xor -> Ir.Xor
  | Shl -> Ir.Shl | Shr_s -> Ir.Ashr | Shr_u -> Ir.Lshr

(* The IR has no Gtu/Leu: unsigned > and <= are the swapped-operand
   forms of Ltu/Geu. *)
let lower_cmp env (op : Ast.cmpop) a b : Ir.operand =
  match op with
  | Eq -> emit env (Ir.Cmp (Ir.Eq, a, b))
  | Ne -> emit env (Ir.Cmp (Ir.Ne, a, b))
  | Lt_s -> emit env (Ir.Cmp (Ir.Lt, a, b))
  | Le_s -> emit env (Ir.Cmp (Ir.Le, a, b))
  | Gt_s -> emit env (Ir.Cmp (Ir.Gt, a, b))
  | Ge_s -> emit env (Ir.Cmp (Ir.Ge, a, b))
  | Lt_u -> emit env (Ir.Cmp (Ir.Ltu, a, b))
  | Ge_u -> emit env (Ir.Cmp (Ir.Geu, a, b))
  | Gt_u -> emit env (Ir.Cmp (Ir.Ltu, b, a))
  | Le_u -> emit env (Ir.Cmp (Ir.Geu, b, a))

(* Linear-memory effective address: &wasm_memory + dynamic address,
   with the static offset folded into the access when it fits. *)
let lower_mem_addr env addr off : Ir.operand * int =
  let base = emit env (Ir.Global_addr mem_sym) in
  let ea = emit env (Ir.Bin (Ir.Add, base, addr)) in
  if off <= max_fold_offset then (ea, off)
  else (emit env (Ir.Bin (Ir.Add, ea, Ir.Const (Int32.of_int off))), 0)

(* ---------- instruction lowering ---------- *)

(* [lower_seq m env frames body] lowers one instruction sequence;
   returns true when it ended in an unconditional transfer (the
   caller's fall-through is dead). *)
let rec lower_seq (m : module_) env (frames : ctrl list) (body : instr list) :
  bool =
  match body with
  | [] -> false
  | i :: rest ->
    let dead =
      match i with
      | Const n -> push env (Ir.Const n); false
      | Bin op ->
        let b = pop env in
        let a = pop env in
        push env (emit env (Ir.Bin (binop_ir op, a, b)));
        false
      | Cmp op ->
        let b = pop env in
        let a = pop env in
        push env (lower_cmp env op a b);
        false
      | Eqz ->
        let a = pop env in
        push env (emit env (Ir.Cmp (Ir.Eq, a, Ir.Const 0l)));
        false
      | Local_get i -> push env (read_variable env i env.cur.Ir.bid); false
      | Local_set i ->
        let v = pop env in
        write_variable env i env.cur.Ir.bid v;
        false
      | Local_tee i ->
        write_variable env i env.cur.Ir.bid (peek env);
        false
      | Global_get g ->
        let addr = emit env (Ir.Global_addr (global_sym g)) in
        push env (emit env (Ir.Load (addr, 0)));
        false
      | Global_set g ->
        let v = pop env in
        let addr = emit env (Ir.Global_addr (global_sym g)) in
        ignore (emit env (Ir.Store (v, addr, 0)));
        false
      | Load off ->
        let addr = pop env in
        let ea, off = lower_mem_addr env addr off in
        push env (emit env (Ir.Load (ea, off)));
        false
      | Store off ->
        let v = pop env in
        let addr = pop env in
        let ea, off = lower_mem_addr env addr off in
        ignore (emit env (Ir.Store (v, ea, off)));
        false
      | Call idx -> lower_call m env idx; false
      | Drop -> ignore (pop env); false
      | Nop -> false
      | Select ->
        (* branchless: r = b ^ ((a ^ b) & -(c != 0)) *)
        let c = pop env in
        let b = pop env in
        let a = pop env in
        let nz = emit env (Ir.Cmp (Ir.Ne, c, Ir.Const 0l)) in
        let mask = emit env (Ir.Bin (Ir.Sub, Ir.Const 0l, nz)) in
        let diff = emit env (Ir.Bin (Ir.Xor, a, b)) in
        let sel = emit env (Ir.Bin (Ir.And, diff, mask)) in
        push env (emit env (Ir.Bin (Ir.Xor, b, sel)));
        false
      | Block { result; body } ->
        let join = new_block env in
        let phi = if result then Some (Ir.fresh_value env.func) else None in
        let base = List.length env.stack in
        let bc = { bresult = result; join = join.Ir.bid; phi; args = [] } in
        let dead_end = lower_seq m env (Cblock bc :: frames) body in
        if not dead_end then begin
          (if result then
             let v = pop env in
             bc.args <- (env.cur.Ir.bid, v) :: bc.args);
          terminate env (Ir.Br join.Ir.bid)
        end;
        (match phi with
         | Some v -> join.Ir.insts <- (v, Ir.Phi (List.rev bc.args)) :: join.Ir.insts
         | None -> ());
        seal_block env join.Ir.bid;
        switch_to env join;
        set_height env base;
        (match phi with Some v -> push env (Ir.Val v) | None -> ());
        false
      | Loop { result; body } ->
        let header = new_block env in
        let base = List.length env.stack in
        terminate env (Ir.Br header.Ir.bid);
        switch_to env header;   (* header stays unsealed for back edges *)
        let dead_end =
          lower_seq m env (Cloop { header = header.Ir.bid } :: frames) body
        in
        seal_block env header.Ir.bid;
        if dead_end then begin
          (* the loop never falls through; park the continuation in a
             fresh unreachable block (dropped by remove_unreachable) *)
          let b = new_block env in
          Hashtbl.replace env.sealed b.Ir.bid ();
          switch_to env b;
          set_height env base;
          if result then push env (Ir.Const 0l)
        end;
        (* on fall-through the result (if any) is already on top *)
        false
      | Br d -> lower_br env frames d; true
      | Br_if d ->
        let cond = pop env in
        let else_bb = new_block env in
        (match List.nth frames d with
         | Cloop { header } ->
           terminate env (Ir.Cond_br (cond, header, else_bb.Ir.bid))
         | Cblock bc ->
           (* label values are passed to the target and kept for the
              fall-through: peek, don't pop *)
           (if bc.bresult then
              bc.args <- (env.cur.Ir.bid, peek env) :: bc.args);
           terminate env (Ir.Cond_br (cond, bc.join, else_bb.Ir.bid))
         | Cfunc { fresult } ->
           let then_bb = new_block env in
           terminate env (Ir.Cond_br (cond, then_bb.Ir.bid, else_bb.Ir.bid));
           Hashtbl.replace env.sealed then_bb.Ir.bid ();
           switch_to env then_bb;
           terminate env
             (Ir.Ret (if fresult then peek env else Ir.Const 0l)));
        seal_block env else_bb.Ir.bid;
        switch_to env else_bb;
        false
      | Return -> lower_br env frames (List.length frames - 1); true
    in
    if dead then true else lower_seq m env frames rest

and lower_br env (frames : ctrl list) (d : int) : unit =
  match List.nth frames d with
  | Cfunc { fresult } ->
    let op = if fresult then pop env else Ir.Const 0l in
    terminate env (Ir.Ret op)
  | Cblock bc ->
    (if bc.bresult then
       let v = pop env in
       bc.args <- (env.cur.Ir.bid, v) :: bc.args);
    terminate env (Ir.Br bc.join)
  | Cloop { header } -> terminate env (Ir.Br header)

and lower_call (m : module_) env (idx : int) : unit =
  let ni = List.length m.imports in
  if idx < ni then begin
    let im = List.nth m.imports idx in
    let arg = pop env in
    let mmio =
      match im.imp_name with
      | "putint" -> Assembler.Layout.mmio_putint
      | "putchar" -> Assembler.Layout.mmio_putchar
      | n -> bug "unvalidated import %s" n
    in
    ignore (emit env (Ir.Store (arg, Ir.Const (Int32.of_int mmio), 0)))
  end
  else begin
    let params, result = func_sig m idx in
    let args = ref [] in
    for _ = 1 to params do args := pop env :: !args done;
    let r = emit env (Ir.Call (func_ir_name m idx, !args)) in
    if result then push env r
  end

(* IR/assembly name of function-space index [idx]: the exported main is
   "main" (required by the ISS and interpreter); everything else gets a
   positional name, collision-free by construction. *)
and func_ir_name (m : module_) (idx : int) : string =
  let ni = List.length m.imports in
  let f = List.nth m.funcs (idx - ni) in
  if f.export = Some "main" then "main" else Printf.sprintf "wf%d" idx

(* ---------- function and module lowering ---------- *)

let lower_func (m : module_) (fidx : int) (f : Ast.func) : Ir.func =
  let ni = List.length m.imports in
  let name = func_ir_name m (ni + fidx) in
  let func =
    { Ir.name; nparams = f.params; nvalues = f.params; blocks = [];
      frame_bytes = 0 }
  in
  let env =
    { func;
      blocks = Hashtbl.create 16;
      next_bid = 0;
      cur = { Ir.bid = -1; insts = []; term = Ir.Ret (Ir.Const 0l) };
      terminated = true;
      defs = Hashtbl.create 64;
      sealed = Hashtbl.create 16;
      preds = Hashtbl.create 16;
      incomplete = Hashtbl.create 8;
      stack = [] }
  in
  let entry = new_block env in
  Hashtbl.replace env.sealed entry.Ir.bid ();
  switch_to env entry;
  for i = 0 to f.params - 1 do
    write_variable env i entry.Ir.bid (Ir.Val i)
  done;
  for j = f.params to f.params + f.locals - 1 do
    write_variable env j entry.Ir.bid (Ir.Const 0l)
  done;
  let dead = lower_seq m env [ Cfunc { fresult = f.result } ] f.body in
  if not dead then begin
    let op = if f.result then pop env else Ir.Const 0l in
    terminate env (Ir.Ret op)
  end;
  Minic.Lower.remove_trivial_phis func;
  ignore (Ssa_ir.Passes.remove_unreachable func);
  Ssa_ir.Analysis.validate func;
  func

(* [lower m] validates and lowers a parsed module to an IR program.
   Data layout: one word per global ("wasm_global_<i>", declaration
   order), then the linear memory ("wasm_memory"). *)
let lower (m : module_) : Ir.program =
  ignore (Valid.check m : int);
  let funcs = List.mapi (fun i f -> lower_func m i f) m.funcs in
  let globals =
    List.mapi
      (fun i (g : global) ->
         { Ir.sym = global_sym i; words = [ g.gl_init ]; extra_bytes = 0 })
      m.globals
  in
  let mem =
    match m.mem_pages with
    | Some pages ->
      [ { Ir.sym = mem_sym; words = []; extra_bytes = pages * page_bytes } ]
    | None -> []
  in
  { Ir.funcs; data = globals @ mem }

(* [compile src] parses, validates, and lowers WAT source to SSA IR —
   the WASM twin of [Minic.Lower.compile]. *)
let compile (src : string) : Ir.program = lower (Parser.parse src)
