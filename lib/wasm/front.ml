(* Front-end dispatch: one entry point that accepts either MiniC or WAT
   source, so every consumer (drivers, workloads, fuzzer, sweep,
   snapshot, daemon) gains WASM support without per-caller changes.

   The sniff is unambiguous: a WAT module's first significant character
   is '(' (possibly after whitespace or `;;` comments), and no MiniC
   program can start with '('. *)

let looks_like_wat (src : string) : bool =
  let n = String.length src in
  let rec eol i = if i >= n || src.[i] = '\n' then i else eol (i + 1) in
  let rec go i =
    if i >= n then false
    else
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | ';' when i + 1 < n && src.[i + 1] = ';' -> go (eol (i + 2))
      | '(' -> true
      | _ -> false
  in
  go 0

let is_wat_filename (path : string) : bool =
  Filename.check_suffix path ".wat"

let compile (src : string) : Ssa_ir.Ir.program = Lower.compile src

(* [compile_any src] front-ends [src] as WAT or MiniC, by content. *)
let compile_any (src : string) : Ssa_ir.Ir.program =
  if looks_like_wat src then Lower.compile src else Minic.Lower.compile src
