(** WASM stack machine -> SSA IR lowering (DESIGN.md §15): symbolic
    operand stack, Braun SSA construction for locals, blocks as join
    blocks with explicit phi arms, loops as unsealed headers. *)

val mem_sym : string
(** Data symbol backing the linear memory ("wasm_memory"). *)

val global_sym : int -> string
(** Data symbol of global [i] ("wasm_global_<i>"). *)

val lower : Ast.module_ -> Ssa_ir.Ir.program
(** Validate and lower a parsed module.  Every function is checked with
    {!Ssa_ir.Analysis.validate} before being returned. *)

val compile : string -> Ssa_ir.Ir.program
(** [compile src] = parse, validate, lower — the WAT twin of
    [Minic.Lower.compile]. *)
