(* WAT parser for the subset: tokens -> s-expressions -> Ast.module_.

   Both instruction notations of the text format are accepted — the flat
   form (`block ... end`, operands already on the stack) and the folded
   form (`(i32.add (local.get 0) (i32.const 1))`, operands written
   inside the operator).  $names for functions, globals, locals and
   labels are resolved to dense indices here, so everything downstream
   is index-based.

   Every failure is a structured [Diag] error: code [Wasm_error] with a
   "check" context naming the failure family ("parse", "type",
   "unknown-local", "unknown-global", "unknown-func", "unknown-label",
   "unsupported") plus the source line. *)

open Ast

let fail ?(check = "parse") ~line fmt =
  Format.kasprintf
    (fun s ->
       raise
         (Diag.Error
            (Diag.make
               ~context:
                 [ ("frontend", "wasm"); ("check", check);
                   ("line", string_of_int line) ]
               Diag.Wasm_error s)))
    fmt

(* ---------- s-expressions ---------- *)

type sexp =
  | A of string * int            (* atom, source line *)
  | S of string * int            (* quoted string *)
  | L of sexp list * int         (* parenthesized list *)

let sexp_line = function A (_, l) | S (_, l) | L (_, l) -> l

let parse_sexps (toks : Lexer.token list) : sexp list =
  let rec seq acc = function
    | [] -> (List.rev acc, [])
    | Lexer.Rparen _ :: _ as rest -> (List.rev acc, rest)
    | Lexer.Lparen l :: rest ->
      let items, rest = seq [] rest in
      (match rest with
       | Lexer.Rparen _ :: rest -> seq (L (items, l) :: acc) rest
       | _ -> fail ~line:l "unclosed '('")
    | Lexer.Atom (a, l) :: rest -> seq (A (a, l) :: acc) rest
    | Lexer.Str (s, l) :: rest -> seq (S (s, l) :: acc) rest
  in
  match seq [] toks with
  | items, [] -> items
  | _, Lexer.Rparen l :: _ -> fail ~line:l "unmatched ')'"
  | _, t :: _ -> fail ~line:(Lexer.token_line t) "trailing tokens"
  | exception Stack_overflow -> fail ~line:0 "expression nesting too deep"

(* ---------- atoms ---------- *)

let is_id a = String.length a > 0 && a.[0] = '$'

(* i32 literal: optional sign, decimal or 0x hex, '_' separators; the
   value must fit [-2^31, 2^32) and is wrapped to two's complement. *)
let parse_i32 ~line (a : string) : int32 =
  let s = String.concat "" (String.split_on_char '_' a) in
  let neg, s =
    if String.length s > 0 && s.[0] = '-' then (true, String.sub s 1 (String.length s - 1))
    else if String.length s > 0 && s.[0] = '+' then (false, String.sub s 1 (String.length s - 1))
    else (false, s)
  in
  let value =
    match Int64.of_string_opt (if neg then "-" ^ s else s) with
    | Some v -> v
    | None -> fail ~line "malformed i32 literal %S" a
  in
  if Int64.compare value (-0x8000_0000L) < 0
  || Int64.compare value 0xFFFF_FFFFL > 0 then
    fail ~line "i32 constant %S out of range" a;
  Int64.to_int32 value

let parse_index ~line (a : string) : [ `Num of int | `Name of string ] =
  if is_id a then `Name (String.sub a 1 (String.length a - 1))
  else
    match int_of_string_opt a with
    | Some n when n >= 0 -> `Num n
    | _ -> fail ~line "expected an index or $name, got %S" a

(* ---------- types ---------- *)

(* The subset is i32-only; any other value type is a structured type
   error (a deliberate reject class, not a parse accident). *)
let check_valtype ~line = function
  | "i32" -> ()
  | t -> fail ~check:"type" ~line "unsupported value type %s (i32-only subset)" t

(* [(param ...)]* / [(result ...)]? / [(local ...)]* headers.  Returns
   (names in index order, count, result?) for params+locals. *)
let parse_result ~line = function
  | [ A (t, l) ] -> check_valtype ~line:l t; true
  | [] -> false
  | _ -> fail ~line "malformed (result ...)"

(* ---------- instruction parsing ---------- *)

type fenv = {
  locals : (string, int) Hashtbl.t;   (* $name -> local index *)
  nlocals : int;
  funcspace : (string, int) Hashtbl.t;
  nfuncs : int;
  globals : (string, int) Hashtbl.t;
  nglobals : int;
}

let resolve ~line ~(check : string) (table : (string, int) Hashtbl.t)
    (count : int) (what : string) (idx : [ `Num of int | `Name of string ]) :
  int =
  match idx with
  | `Num n ->
    if n >= count then fail ~check ~line "%s index %d out of range" what n;
    n
  | `Name n ->
    (match Hashtbl.find_opt table n with
     | Some i -> i
     | None -> fail ~check ~line "unknown %s $%s" what n)

let resolve_local env ~line idx =
  resolve ~line ~check:"unknown-local" env.locals env.nlocals "local" idx

let resolve_global env ~line idx =
  resolve ~line ~check:"unknown-global" env.globals env.nglobals "global" idx

let resolve_func env ~line idx =
  resolve ~line ~check:"unknown-func" env.funcspace env.nfuncs "function" idx

let resolve_label ~line (labels : string option list) idx : int =
  match idx with
  | `Num d ->
    if d >= List.length labels then
      fail ~check:"br-depth" ~line "branch depth %d exceeds %d enclosing labels"
        d (List.length labels);
    d
  | `Name n ->
    let rec go i = function
      | [] -> fail ~check:"unknown-label" ~line "unknown label $%s" n
      | Some l :: _ when l = n -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 labels

let binop_of_mnemonic = function
  | "i32.add" -> Some Add | "i32.sub" -> Some Sub | "i32.mul" -> Some Mul
  | "i32.div_s" -> Some Div_s | "i32.div_u" -> Some Div_u
  | "i32.rem_s" -> Some Rem_s | "i32.rem_u" -> Some Rem_u
  | "i32.and" -> Some And | "i32.or" -> Some Or | "i32.xor" -> Some Xor
  | "i32.shl" -> Some Shl | "i32.shr_s" -> Some Shr_s
  | "i32.shr_u" -> Some Shr_u
  | _ -> None

let cmpop_of_mnemonic = function
  | "i32.eq" -> Some Eq | "i32.ne" -> Some Ne
  | "i32.lt_s" -> Some Lt_s | "i32.lt_u" -> Some Lt_u
  | "i32.gt_s" -> Some Gt_s | "i32.gt_u" -> Some Gt_u
  | "i32.le_s" -> Some Le_s | "i32.le_u" -> Some Le_u
  | "i32.ge_s" -> Some Ge_s | "i32.ge_u" -> Some Ge_u
  | _ -> None

(* memarg immediates: `offset=N` and `align=N` atoms after a load/store
   mnemonic.  Alignment is a hint in WASM; we accept and discard it. *)
let rec parse_memarg ~line = function
  | A (a, l) :: rest when String.length a > 7 && String.sub a 0 7 = "offset=" ->
    let off =
      match int_of_string_opt (String.sub a 7 (String.length a - 7)) with
      | Some n when n >= 0 -> n
      | _ -> fail ~line:l "malformed %s" a
    in
    let _, rest = parse_memarg ~line:l rest in
    (off, rest)
  | A (a, _) :: rest when String.length a > 6 && String.sub a 0 6 = "align=" ->
    parse_memarg ~line rest
  | rest -> (0, rest)

(* [parse_instrs env labels items] parses one instruction sequence.  The
   flat form consumes `block`/`loop` ... `end` brackets from the item
   stream; the folded form recurses into nested lists. *)
let rec parse_instrs (env : fenv) (labels : string option list)
    (items : sexp list) : instr list =
  match items with
  | [] -> []
  | A (a, line) :: rest -> parse_plain env labels a line rest
  | L (A ("block", line) :: body, _) :: rest ->
    let label, result, body = parse_block_head ~line body in
    Block { result; body = parse_instrs env (label :: labels) body }
    :: parse_instrs env labels rest
  | L (A ("loop", line) :: body, _) :: rest ->
    let label, result, body = parse_block_head ~line body in
    Loop { result; body = parse_instrs env (label :: labels) body }
    :: parse_instrs env labels rest
  | L (A (("if" | "then" | "else"), line) :: _, _) :: _ ->
    fail ~check:"unsupported" ~line "'if' is outside the subset (use br_if)"
  | L (A (a, line) :: args, _) :: rest ->
    (* folded operator: immediates first, then folded operand
       expressions, which unfold in front of the operator *)
    let op, args = parse_plain_folded env labels a line args in
    let folded =
      List.concat_map
        (fun arg ->
           match arg with
           | L _ -> parse_instrs env labels [ arg ]
           | s ->
             fail ~line:(sexp_line s)
               "folded %s operand must be parenthesized" a)
        args
    in
    folded @ op @ parse_instrs env labels rest
  | s :: _ -> fail ~line:(sexp_line s) "expected an instruction"

(* block/loop header: optional $label, optional (result i32).  A block
   type in (param ...) form is out of the subset. *)
and parse_block_head ~line:_ (items : sexp list) :
  string option * bool * sexp list =
  let label, items =
    match items with
    | A (a, _) :: rest when is_id a ->
      (Some (String.sub a 1 (String.length a - 1)), rest)
    | _ -> (None, items)
  in
  match items with
  | L (A ("result", l) :: t, _) :: rest -> (label, parse_result ~line:l t, rest)
  | L (A ("param", l) :: _, _) :: _ ->
    fail ~check:"type" ~line:l "block parameters are outside the subset"
  | _ -> (label, false, items)

(* Flat-form instruction starting with atom [a]; consumes immediates
   (and, for block/loop, the bracketed body up to `end`) from [rest]. *)
and parse_plain env labels a line rest : instr list =
  match a with
  | "block" | "loop" ->
    let label, result, rest = parse_block_head ~line rest in
    let body, rest = split_flat_body ~line rest in
    let inner = parse_instrs env (label :: labels) body in
    let i =
      if a = "block" then Block { result; body = inner }
      else Loop { result; body = inner }
    in
    i :: parse_instrs env labels rest
  | "end" -> fail ~line "'end' without an open block"
  | "else" | "if" | "then" ->
    fail ~check:"unsupported" ~line "'if' is outside the subset (use br_if)"
  | _ ->
    let op, rest = parse_plain_folded env labels a line rest in
    op @ parse_instrs env labels rest

(* One operator + its immediates (shared by the flat and folded forms).
   Returns the instruction(s) and the unconsumed items. *)
and parse_plain_folded env labels a line rest : instr list * sexp list =
  let one i rest = ([ i ], rest) in
  match a with
  | "i32.const" ->
    (match rest with
     | A (x, l) :: rest -> one (Const (parse_i32 ~line:l x)) rest
     | _ -> fail ~line "i32.const expects a literal")
  | "local.get" ->
    (match rest with
     | A (x, l) :: rest ->
       one (Local_get (resolve_local env ~line:l (parse_index ~line:l x))) rest
     | _ -> fail ~line "local.get expects a local index")
  | "local.set" ->
    (match rest with
     | A (x, l) :: rest ->
       one (Local_set (resolve_local env ~line:l (parse_index ~line:l x))) rest
     | _ -> fail ~line "local.set expects a local index")
  | "local.tee" ->
    (match rest with
     | A (x, l) :: rest ->
       one (Local_tee (resolve_local env ~line:l (parse_index ~line:l x))) rest
     | _ -> fail ~line "local.tee expects a local index")
  | "global.get" ->
    (match rest with
     | A (x, l) :: rest ->
       one (Global_get (resolve_global env ~line:l (parse_index ~line:l x))) rest
     | _ -> fail ~line "global.get expects a global index")
  | "global.set" ->
    (match rest with
     | A (x, l) :: rest ->
       one (Global_set (resolve_global env ~line:l (parse_index ~line:l x))) rest
     | _ -> fail ~line "global.set expects a global index")
  | "call" ->
    (match rest with
     | A (x, l) :: rest ->
       one (Call (resolve_func env ~line:l (parse_index ~line:l x))) rest
     | _ -> fail ~line "call expects a function index")
  | "br" ->
    (match rest with
     | A (x, l) :: rest ->
       one (Br (resolve_label ~line:l labels (parse_index ~line:l x))) rest
     | _ -> fail ~line "br expects a label")
  | "br_if" ->
    (match rest with
     | A (x, l) :: rest ->
       one (Br_if (resolve_label ~line:l labels (parse_index ~line:l x))) rest
     | _ -> fail ~line "br_if expects a label")
  | "i32.load" ->
    let off, rest = parse_memarg ~line rest in
    one (Load off) rest
  | "i32.store" ->
    let off, rest = parse_memarg ~line rest in
    one (Store off) rest
  | "i32.eqz" -> one Eqz rest
  | "return" -> one Return rest
  | "drop" -> one Drop rest
  | "select" -> one Select rest
  | "nop" -> one Nop rest
  | "unreachable" | "call_indirect" | "br_table" | "memory.grow"
  | "memory.size" ->
    fail ~check:"unsupported" ~line "%s is outside the subset" a
  | _ ->
    (match binop_of_mnemonic a with
     | Some op -> one (Bin op) rest
     | None ->
       (match cmpop_of_mnemonic a with
        | Some op -> one (Cmp op) rest
        | None ->
          if String.length a > 4
          && (String.sub a 0 4 = "i64." || String.sub a 0 4 = "f32."
              || String.sub a 0 4 = "f64.")
          then fail ~check:"type" ~line "%s: i32-only subset" a
          else fail ~line "unknown instruction %S" a))

(* Flat `block ... end` bracket matching over the item stream (nested
   flat blocks tracked by depth). *)
and split_flat_body ~line (items : sexp list) : sexp list * sexp list =
  let rec go depth acc = function
    | [] -> fail ~line "missing 'end' for block opened here"
    | A ("end", _) :: rest when depth = 0 ->
      (* `end` may repeat the label *)
      (match rest with
       | A (a, _) :: rest' when is_id a -> (List.rev acc, rest')
       | _ -> (List.rev acc, rest))
    | (A (("block" | "loop"), _) as x) :: rest -> go (depth + 1) (x :: acc) rest
    | (A ("end", _) as x) :: rest -> go (depth - 1) (x :: acc) rest
    | x :: rest -> go depth (x :: acc) rest
  in
  go 0 [] items

(* ---------- module fields ---------- *)

type raw_func = {
  rf_name : string option;
  rf_export : string option;
  rf_params : (string option * int) list;   (* name, line *)
  rf_result : bool;
  rf_locals : (string option * int) list;
  rf_body : sexp list;
  rf_line : int;
}

let parse_named_decls ~(kind : string) (groups : sexp list) :
  (string option * int) list * sexp list =
  let rec go acc = function
    | L (A (k, l) :: t, _) :: rest when k = kind ->
      let decls =
        match t with
        | A (a, _) :: A (ty, lt) :: tl when is_id a ->
          if tl <> [] then
            fail ~line:l "a named (%s ...) declares exactly one %s" kind kind;
          check_valtype ~line:lt ty;
          [ (Some (String.sub a 1 (String.length a - 1)), l) ]
        | ts ->
          List.map
            (fun s ->
               match s with
               | A (ty, lt) -> check_valtype ~line:lt ty; (None, lt)
               | _ -> fail ~line:l "malformed (%s ...)" kind)
            ts
      in
      let more, rest = go acc rest in
      (decls @ more, rest)
    | rest -> (List.rev acc, rest)
  in
  go [] groups

let parse_func_head ~line (items : sexp list) : raw_func =
  let name, items =
    match items with
    | A (a, _) :: rest when is_id a ->
      (Some (String.sub a 1 (String.length a - 1)), rest)
    | _ -> (None, items)
  in
  let export, items =
    match items with
    | L ([ A ("export", _); S (e, _) ], _) :: rest -> (Some e, rest)
    | _ -> (None, items)
  in
  (match items with
   | L (A ("type", l) :: _, _) :: _ ->
     fail ~check:"unsupported" ~line:l "(type ...) uses are outside the subset"
   | _ -> ());
  let params, items = parse_named_decls ~kind:"param" items in
  let result, items =
    match items with
    | L (A ("result", l) :: t, _) :: rest -> (parse_result ~line:l t, rest)
    | _ -> (false, items)
  in
  let locals, body = parse_named_decls ~kind:"local" items in
  { rf_name = name; rf_export = export; rf_params = params;
    rf_result = result; rf_locals = locals; rf_body = body; rf_line = line }

let parse_import ~line (items : sexp list) : import =
  match items with
  | [ S (m, _); S (n, _); L (A ("func", _) :: spec, _) ] ->
    let name, spec =
      match spec with
      | A (a, _) :: rest when is_id a ->
        (Some (String.sub a 1 (String.length a - 1)), rest)
      | _ -> (None, spec)
    in
    let params, spec = parse_named_decls ~kind:"param" spec in
    let result, spec =
      match spec with
      | L (A ("result", l) :: t, _) :: rest -> (parse_result ~line:l t, rest)
      | _ -> (false, spec)
    in
    if spec <> [] then fail ~line "malformed function import";
    { imp_module = m; imp_name = n; imp_fname = name;
      imp_params = List.length params; imp_result = result }
  | _ -> fail ~line "only function imports are supported"

let parse_global ~line (items : sexp list) :
  global * int (* declaration line *) =
  let name, items =
    match items with
    | A (a, _) :: rest when is_id a ->
      (Some (String.sub a 1 (String.length a - 1)), rest)
    | _ -> (None, items)
  in
  let mut, items =
    match items with
    | L ([ A ("mut", _); A (t, lt) ], _) :: rest ->
      check_valtype ~line:lt t; (true, rest)
    | A (t, lt) :: rest -> check_valtype ~line:lt t; (false, rest)
    | _ -> fail ~line "malformed global type"
  in
  match items with
  | [ L ([ A ("i32.const", _); A (v, lv) ], _) ] ->
    ({ gl_name = name; gl_mut = mut; gl_init = parse_i32 ~line:lv v }, line)
  | _ -> fail ~line "global initializer must be (i32.const N)"

(* 64 KiB pages; the cap keeps the linear memory inside the simulator's
   data segment (data_base .. stack_top leaves ~6 MiB). *)
let max_pages = 64

let parse_memory ~line (items : sexp list) : int =
  let items =
    match items with
    | A (a, _) :: rest when is_id a -> rest
    | _ -> items
  in
  match items with
  | [ A (n, l) ] | [ A (n, l); A (_, _) ] ->
    (match int_of_string_opt n with
     | Some pages when pages >= 0 && pages <= max_pages -> pages
     | Some pages when pages > max_pages ->
       fail ~check:"memory" ~line:l "memory of %d pages exceeds the %d-page cap"
         pages max_pages
     | _ -> fail ~line:l "malformed memory size %S" n)
  | _ -> fail ~line "malformed (memory ...)"

(* ---------- module assembly ---------- *)

let parse_module (fields : sexp list) ~(line : int) : module_ =
  let imports = ref [] and raw_funcs = ref [] and globals = ref [] in
  let mem = ref None in
  let module_exports = ref [] in   (* (export name, func index spec, line) *)
  List.iter
    (fun field ->
       match field with
       | L (A ("import", l) :: items, _) ->
         if !raw_funcs <> [] then
           fail ~line:l "imports must precede function definitions";
         imports := parse_import ~line:l items :: !imports
       | L (A ("func", l) :: items, _) ->
         raw_funcs := parse_func_head ~line:l items :: !raw_funcs
       | L (A ("global", l) :: items, _) ->
         globals := fst (parse_global ~line:l items) :: !globals
       | L (A ("memory", l) :: items, _) ->
         (match !mem with
          | Some _ -> fail ~line:l "multiple memories"
          | None -> mem := Some (parse_memory ~line:l items))
       | L ([ A ("export", l); S (e, _); L ([ A ("func", _); A (fidx, lf) ], _) ], _) ->
         module_exports := (e, parse_index ~line:lf fidx, l) :: !module_exports
       | L (A ("export", l) :: _, _) -> fail ~line:l "malformed (export ...)"
       | L (A (("start" | "table" | "elem" | "data" | "type") as k, l) :: _, _) ->
         fail ~check:"unsupported" ~line:l "(%s ...) is outside the subset" k
       | s -> fail ~line:(sexp_line s) "unknown module field")
    fields;
  let imports = List.rev !imports in
  let raw_funcs = List.rev !raw_funcs in
  let globals = List.rev !globals in
  (* name tables: function space = imports then funcs *)
  let funcspace = Hashtbl.create 16 in
  let add_fname name idx line =
    match name with
    | None -> ()
    | Some n ->
      if Hashtbl.mem funcspace n then
        fail ~check:"duplicate-name" ~line "duplicate function name $%s" n;
      Hashtbl.replace funcspace n idx
  in
  List.iteri (fun i (im : import) -> add_fname im.imp_fname i line) imports;
  let ni = List.length imports in
  List.iteri (fun i rf -> add_fname rf.rf_name (ni + i) rf.rf_line) raw_funcs;
  let globals_tbl = Hashtbl.create 8 in
  List.iteri
    (fun i (g : global) ->
       match g.gl_name with
       | None -> ()
       | Some n ->
         if Hashtbl.mem globals_tbl n then
           fail ~check:"duplicate-name" ~line "duplicate global name $%s" n;
         Hashtbl.replace globals_tbl n i)
    globals;
  (* module-level exports attach to their function *)
  let exports = Array.make (max 1 (List.length raw_funcs)) None in
  List.iteri
    (fun i rf -> if rf.rf_export <> None then exports.(i) <- rf.rf_export)
    raw_funcs;
  let seen_export = Hashtbl.create 4 in
  List.iteri
    (fun i rf ->
       match rf.rf_export with
       | Some e ->
         if Hashtbl.mem seen_export e then
           fail ~check:"duplicate-name" ~line:rf.rf_line
             "duplicate export %S" e;
         Hashtbl.replace seen_export e i
       | None -> ())
    raw_funcs;
  List.iter
    (fun (e, idx, l) ->
       if Hashtbl.mem seen_export e then
         fail ~check:"duplicate-name" ~line:l "duplicate export %S" e;
       let fi =
         match idx with
         | `Num n -> n
         | `Name n ->
           (match Hashtbl.find_opt funcspace n with
            | Some i -> i
            | None -> fail ~check:"unknown-func" ~line:l "unknown function $%s" n)
       in
       if fi < ni then
         fail ~line:l "cannot export an imported function";
       if fi - ni >= List.length raw_funcs then
         fail ~check:"unknown-func" ~line:l "function index %d out of range" fi;
       Hashtbl.replace seen_export e (fi - ni);
       exports.(fi - ni) <- Some e)
    (List.rev !module_exports);
  (* function bodies *)
  let funcs =
    List.mapi
      (fun i rf ->
         let locals_tbl = Hashtbl.create 8 in
         List.iteri
           (fun j (n, l) ->
              match n with
              | Some n ->
                if Hashtbl.mem locals_tbl n then
                  fail ~check:"duplicate-name" ~line:l
                    "duplicate local name $%s" n;
                Hashtbl.replace locals_tbl n j
              | None -> ())
           (rf.rf_params @ rf.rf_locals);
         let env =
           { locals = locals_tbl;
             nlocals = List.length rf.rf_params + List.length rf.rf_locals;
             funcspace;
             nfuncs = ni + List.length raw_funcs;
             globals = globals_tbl;
             nglobals = List.length globals }
         in
         { fn_name = rf.rf_name;
           params = List.length rf.rf_params;
           result = rf.rf_result;
           locals = List.length rf.rf_locals;
           body = parse_instrs env [] rf.rf_body;
           export = exports.(i) })
      raw_funcs
  in
  { imports; funcs; globals; mem_pages = !mem }

(* [parse src] parses one `(module ...)` from WAT source text. *)
let parse (src : string) : module_ =
  match parse_sexps (Lexer.tokenize src) with
  | [ L (A ("module", l) :: fields, _) ] -> parse_module fields ~line:l
  | [ s ] -> fail ~line:(sexp_line s) "expected a (module ...)"
  | [] -> fail ~line:1 "empty input"
  | _ :: s :: _ ->
    fail ~line:(sexp_line s) "expected exactly one (module ...)"
