(** Standard RV32IM binary encodings (R/I/S/B/U/J formats). *)

exception Encode_error of string

val encode : Isa.resolved -> int32
(** [encode insn] produces the 32-bit RISC-V machine word.
    @raise Encode_error when an immediate does not fit its field, a
    branch/jump offset is odd, or a shift amount is outside [0,31]. *)

val decode : int32 -> Isa.resolved option
(** [decode w] is the inverse of {!encode}; [None] on unsupported words. *)
