(* Standard RV32IM binary encodings (R/I/S/B/U/J formats). *)

open Isa

exception Encode_error of string

let bad fmt = Format.kasprintf (fun s -> raise (Encode_error s)) fmt

let mask bits v = v land ((1 lsl bits) - 1)

let sext bits v =
  let m = 1 lsl (bits - 1) in
  (v land ((1 lsl bits) - 1) lxor m) - m

let check_signed what bits v =
  let lim = 1 lsl (bits - 1) in
  if v < -lim || v >= lim then bad "%s immediate %d out of signed %d bits" what v bits

(* Shift amounts live in the 5-bit rs2 field; anything outside [0,31] has
   no encoding (RV32I reserves shamt[5] != 0) and must be rejected rather
   than silently truncated. *)
let check_shamt what v =
  if v < 0 || v > 31 then bad "%s shift amount %d out of [0,31]" what v

(* U-format carries an unsigned 20-bit immediate. *)
let check_imm20 what v =
  if v < 0 || v > 0xFFFFF then bad "%s immediate %d out of 20 bits" what v

let enc_r ~funct7 ~funct3 ~opcode rd rs1 rs2 =
  (funct7 lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
  lor (rd lsl 7) lor opcode

let enc_i ~funct3 ~opcode rd rs1 imm =
  check_signed "I" 12 imm;
  (mask 12 imm lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12) lor (rd lsl 7) lor opcode

let enc_s ~funct3 ~opcode rs1 rs2 imm =
  check_signed "S" 12 imm;
  let imm = mask 12 imm in
  ((imm lsr 5) lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
  lor (mask 5 imm lsl 7) lor opcode

let enc_b ~funct3 ~opcode rs1 rs2 imm =
  if imm land 1 <> 0 then bad "branch offset %d not even" imm;
  check_signed "B" 13 imm;
  let imm = mask 13 imm in
  let b12 = (imm lsr 12) land 1 and b11 = (imm lsr 11) land 1 in
  let b10_5 = (imm lsr 5) land 0x3F and b4_1 = (imm lsr 1) land 0xF in
  (b12 lsl 31) lor (b10_5 lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15)
  lor (funct3 lsl 12) lor (b4_1 lsl 8) lor (b11 lsl 7) lor opcode

let enc_u ~opcode rd imm20 =
  if imm20 < 0 || imm20 > 0xFFFFF then bad "U immediate %d out of 20 bits" imm20;
  (imm20 lsl 12) lor (rd lsl 7) lor opcode

let enc_j ~opcode rd imm =
  if imm land 1 <> 0 then bad "jump offset %d not even" imm;
  check_signed "J" 21 imm;
  let imm = mask 21 imm in
  let b20 = (imm lsr 20) land 1 and b19_12 = (imm lsr 12) land 0xFF in
  let b11 = (imm lsr 11) land 1 and b10_1 = (imm lsr 1) land 0x3FF in
  (b20 lsl 31) lor (b10_1 lsl 21) lor (b11 lsl 20) lor (b19_12 lsl 12)
  lor (rd lsl 7) lor opcode

let branch_funct3 = function
  | Beq -> 0 | Bne -> 1 | Blt -> 4 | Bge -> 5 | Bltu -> 6 | Bgeu -> 7

let alu_functs = function
  | Add -> (0, 0) | Sub -> (0x20, 0) | Sll -> (0, 1) | Slt -> (0, 2)
  | Sltu -> (0, 3) | Xor -> (0, 4) | Srl -> (0, 5) | Sra -> (0x20, 5)
  | Or -> (0, 6) | And -> (0, 7)
  | Mul -> (1, 0) | Mulh -> (1, 1) | Mulhsu -> (1, 2) | Mulhu -> (1, 3)
  | Div -> (1, 4) | Divu -> (1, 5) | Rem -> (1, 6) | Remu -> (1, 7)

let alui_funct3 = function
  | Addi -> 0 | Slti -> 2 | Sltiu -> 3 | Xori -> 4 | Ori -> 6 | Andi -> 7
  | Slli -> 1 | Srli -> 5 | Srai -> 5

(* [encode insn] produces the 32-bit RISC-V machine word. *)
let encode (insn : resolved) : int32 =
  let w =
    match insn with
    | Lui (rd, i) ->
      let i = Int32.to_int i in
      check_imm20 "lui" i;
      enc_u ~opcode:0x37 rd i
    | Auipc (rd, i) ->
      let i = Int32.to_int i in
      check_imm20 "auipc" i;
      enc_u ~opcode:0x17 rd i
    | Jal (rd, off) -> enc_j ~opcode:0x6F rd off
    | Jalr (rd, rs1, imm) -> enc_i ~funct3:0 ~opcode:0x67 rd rs1 imm
    | Branch (c, rs1, rs2, off) ->
      enc_b ~funct3:(branch_funct3 c) ~opcode:0x63 rs1 rs2 off
    | Lw (rd, rs1, imm) -> enc_i ~funct3:2 ~opcode:0x03 rd rs1 imm
    | Sw (rs2, rs1, imm) -> enc_s ~funct3:2 ~opcode:0x23 rs1 rs2 imm
    | Alui (op, rd, rs1, imm) ->
      (match op with
       | Slli -> check_shamt "slli" imm; enc_r ~funct7:0 ~funct3:1 ~opcode:0x13 rd rs1 imm
       | Srli -> check_shamt "srli" imm; enc_r ~funct7:0 ~funct3:5 ~opcode:0x13 rd rs1 imm
       | Srai -> check_shamt "srai" imm; enc_r ~funct7:0x20 ~funct3:5 ~opcode:0x13 rd rs1 imm
       | _ -> enc_i ~funct3:(alui_funct3 op) ~opcode:0x13 rd rs1 imm)
    | Alu (op, rd, rs1, rs2) ->
      let funct7, funct3 = alu_functs op in
      enc_r ~funct7 ~funct3 ~opcode:0x33 rd rs1 rs2
    | Ebreak -> (1 lsl 20) lor 0x73
  in
  Int32.of_int w

let dec_alu funct7 funct3 =
  match funct7, funct3 with
  | 0, 0 -> Some Add | 0x20, 0 -> Some Sub | 0, 1 -> Some Sll
  | 0, 2 -> Some Slt | 0, 3 -> Some Sltu | 0, 4 -> Some Xor
  | 0, 5 -> Some Srl | 0x20, 5 -> Some Sra | 0, 6 -> Some Or | 0, 7 -> Some And
  | 1, 0 -> Some Mul | 1, 1 -> Some Mulh | 1, 2 -> Some Mulhsu
  | 1, 3 -> Some Mulhu | 1, 4 -> Some Div | 1, 5 -> Some Divu
  | 1, 6 -> Some Rem | 1, 7 -> Some Remu
  | _ -> None

(* [decode w] is the inverse of [encode]; [None] on unsupported words. *)
let decode (w32 : int32) : resolved option =
  let w = Int32.to_int w32 land 0xFFFFFFFF in
  let opcode = w land 0x7F in
  let rd = (w lsr 7) land 0x1F in
  let funct3 = (w lsr 12) land 0x7 in
  let rs1 = (w lsr 15) land 0x1F in
  let rs2 = (w lsr 20) land 0x1F in
  let funct7 = (w lsr 25) land 0x7F in
  let imm_i = sext 12 (w lsr 20) in
  let imm_s = sext 12 (((w lsr 25) lsl 5) lor ((w lsr 7) land 0x1F)) in
  let imm_b =
    sext 13
      ((((w lsr 31) land 1) lsl 12) lor (((w lsr 7) land 1) lsl 11)
       lor (((w lsr 25) land 0x3F) lsl 5) lor (((w lsr 8) land 0xF) lsl 1))
  in
  let imm_u = (w lsr 12) land 0xFFFFF in
  let imm_j =
    sext 21
      ((((w lsr 31) land 1) lsl 20) lor (((w lsr 12) land 0xFF) lsl 12)
       lor (((w lsr 20) land 1) lsl 11) lor (((w lsr 21) land 0x3FF) lsl 1))
  in
  match opcode with
  | 0x37 -> Some (Lui (rd, Int32.of_int imm_u))
  | 0x17 -> Some (Auipc (rd, Int32.of_int imm_u))
  | 0x6F -> Some (Jal (rd, imm_j))
  | 0x67 when funct3 = 0 -> Some (Jalr (rd, rs1, imm_i))
  | 0x63 ->
    let cond =
      match funct3 with
      | 0 -> Some Beq | 1 -> Some Bne | 4 -> Some Blt | 5 -> Some Bge
      | 6 -> Some Bltu | 7 -> Some Bgeu | _ -> None
    in
    Option.map (fun c -> Branch (c, rs1, rs2, imm_b)) cond
  | 0x03 when funct3 = 2 -> Some (Lw (rd, rs1, imm_i))
  | 0x23 when funct3 = 2 -> Some (Sw (rs2, rs1, imm_s))
  | 0x13 ->
    (match funct3 with
     | 0 -> Some (Alui (Addi, rd, rs1, imm_i))
     | 2 -> Some (Alui (Slti, rd, rs1, imm_i))
     | 3 -> Some (Alui (Sltiu, rd, rs1, imm_i))
     | 4 -> Some (Alui (Xori, rd, rs1, imm_i))
     | 6 -> Some (Alui (Ori, rd, rs1, imm_i))
     | 7 -> Some (Alui (Andi, rd, rs1, imm_i))
     | 1 when funct7 = 0 -> Some (Alui (Slli, rd, rs1, rs2))
     | 5 when funct7 = 0 -> Some (Alui (Srli, rd, rs1, rs2))
     | 5 when funct7 = 0x20 -> Some (Alui (Srai, rd, rs1, rs2))
     | _ -> None)
  | 0x33 -> Option.map (fun op -> Alu (op, rd, rs1, rs2)) (dec_alu funct7 funct3)
  | 0x73 when w = (1 lsl 20) lor 0x73 -> Some Ebreak
  | _ -> None
