(** Static verifier for linked RV32IM images — the RISC-V counterpart of
    {!Straight_lint}.  Recovers the CFG from the binary, identifies
    functions from call targets, and proves the invariants a register
    allocator can silently violate: no read of a register that is not
    definitely written on every path (reaching definitions), callee-saved
    registers (ra, s0-s11) restored at every return, sp adjusted only by
    [addi sp, sp, imm] with a displacement that balances on all paths,
    sp-relative accesses inside the live frame, and branch/jump targets
    in bounds and 4-byte aligned.  Calls are summarized by the ABI; each
    callee's own traversal discharges the summary. *)

type finding = Lint_report.finding = {
  pc : int;
  check : string;
  severity : Lint_report.severity;
  message : string;
  func : string option;
}

val pp_finding : Format.formatter -> finding -> unit

val lint : Assembler.Image.t -> finding list
(** Run every check over a linked RV32IM image.  Check names:
    ["illegal-opcode"], ["encode-roundtrip"], ["target-bounds"],
    ["target-align"], ["fall-through"], ["uninit-read"],
    ["callee-saved-clobbered"], ["stack-imbalance"], ["sp-discipline"],
    ["frame-bounds"]. *)

val lint_roundtrip : Assembler.Image.t -> finding list
(** The decode/re-encode fidelity check alone (the historical
    [Straight_lint.Lint.lint_riscv_roundtrip]). *)
